package ximd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end tests of the command-line tools, driving the shipped
// testdata programs exactly as a user would.

var toolBinDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ximd-tools")
	if err != nil {
		os.Exit(1)
	}
	// Build all tools once; individual tests exec the binaries.
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
		"./cmd/xsim", "./cmd/vsim", "./cmd/xasm", "./cmd/xcc", "./cmd/xbench")
	if out, err := cmd.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	toolBinDir = dir
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(toolBinDir, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestToolXSimRunsCountdown(t *testing.T) {
	out := runTool(t, "xsim", "-peek", "300:2", "testdata/countdown.xasm")
	if !strings.Contains(out, "halted after") {
		t.Fatalf("missing completion line:\n%s", out)
	}
	// FU0 counts 10 down to 0; FU1 doubles from 1 every other cycle while
	// FU0 runs (its exact value depends on the loop length, but it must
	// be a power of two greater than 1).
	if !strings.Contains(out, "M(300..301) = [0 ") {
		t.Fatalf("unexpected results:\n%s", out)
	}
}

func TestToolXSimTrace(t *testing.T) {
	out := runTool(t, "xsim", "-trace", "-timeline", "testdata/countdown.xasm")
	for _, needle := range []string{"Cycle 0", "Partition", "streams:", "{0,1}"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("trace output missing %q:\n%s", needle, out)
		}
	}
}

func TestToolXAsmListAndImageRoundTrip(t *testing.T) {
	img := filepath.Join(t.TempDir(), "countdown.img")
	out := runTool(t, "xasm", "-list", "-o", img, "testdata/countdown.xasm")
	if !strings.Contains(out, "2 FUs") {
		t.Fatalf("assembler summary missing:\n%s", out)
	}
	dis := runTool(t, "xasm", "-d", img)
	if !strings.Contains(dis, "if allss") || !strings.Contains(dis, "store r1, #300") {
		t.Fatalf("disassembly missing content:\n%s", dis)
	}
	// The simulator accepts the binary image directly.
	sim := runTool(t, "xsim", "-peek", "300:1", img)
	if !strings.Contains(sim, "M(300..300) = [0]") {
		t.Fatalf("image execution wrong:\n%s", sim)
	}
}

func TestToolXccCompileAndRun(t *testing.T) {
	out := runTool(t, "xcc", "-width", "4", "-run",
		"-mem", "n=10", "-peek", "out:2", "testdata/sum.mc")
	// sum of squares 1..10 = 385 > 300.
	if !strings.Contains(out, "out = [385 1]") {
		t.Fatalf("xcc run output wrong:\n%s", out)
	}
	if !strings.Contains(out, "halted after") {
		t.Fatalf("missing completion line:\n%s", out)
	}
}

func TestToolXccTiles(t *testing.T) {
	out := runTool(t, "xcc", "-tiles", "testdata/sum.mc")
	if !strings.Contains(out, "width  length  area") {
		t.Fatalf("tile table missing:\n%s", out)
	}
	for _, w := range []string{"    1  ", "    2  ", "    4  ", "    8  "} {
		if !strings.Contains(out, w) {
			t.Fatalf("tile table missing width row %q:\n%s", w, out)
		}
	}
}

func TestToolXccEmitAsmReassembles(t *testing.T) {
	out := runTool(t, "xcc", "-S", "-width", "2", "testdata/sum.mc")
	asmPath := filepath.Join(t.TempDir(), "sum.xasm")
	// Strip the stderr-style summary lines that xcc prints before the
	// assembly (they go to stderr, but CombinedOutput interleaves).
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "compiled:") || strings.HasPrefix(line, "globals:") {
			continue
		}
		keep = append(keep, line)
	}
	if err := os.WriteFile(asmPath, []byte(strings.Join(keep, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	sim := runTool(t, "xsim", "-mem", "4098=10", "-peek", "4096:2", asmPath)
	// The data layout places out at 4096 and n at 4098 (out[2] then n).
	if !strings.Contains(sim, "M(4096..4097) = [385 1]") {
		t.Fatalf("reassembled program wrong:\n%s", sim)
	}
}

func TestToolVSimRunsVLIWStyleCode(t *testing.T) {
	// Compile par-free minic, emit assembly, run it on the VLIW machine.
	out := runTool(t, "xcc", "-S", "-width", "4", "testdata/sum.mc")
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "compiled:") || strings.HasPrefix(line, "globals:") {
			continue
		}
		keep = append(keep, line)
	}
	asmPath := filepath.Join(t.TempDir(), "sum4.xasm")
	if err := os.WriteFile(asmPath, []byte(strings.Join(keep, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	sim := runTool(t, "vsim", "-mem", "4098=10", "-peek", "4096:2", asmPath)
	if !strings.Contains(sim, "M(4096..4097) = [385 1]") {
		t.Fatalf("vsim execution wrong:\n%s", sim)
	}
}

func TestToolXBenchListsAndRunsOne(t *testing.T) {
	list := runTool(t, "xbench", "-list")
	for _, name := range []string{"trace10", "speedup", "tiles", "ablation"} {
		if !strings.Contains(list, name) {
			t.Fatalf("xbench -list missing %q:\n%s", name, list)
		}
	}
	out := runTool(t, "xbench", "-exp", "trace10")
	if !strings.Contains(out, "Cycle 13") || !strings.Contains(out, "{0,1}{2}{3}") {
		t.Fatalf("trace10 output wrong:\n%s", out)
	}
}
