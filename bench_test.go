// Benchmarks: one per reproduced table/figure. Each benchmark reports
// the simulated machine-cycle count of its experiment as the
// "machine-cycles" metric (the paper-facing number; see EXPERIMENTS.md)
// alongside the usual host-side ns/op (simulator throughput). The
// paper-format tables themselves are printed by cmd/xbench.
package ximd_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"ximd"
	"ximd/internal/compiler"
	"ximd/internal/compiler/tile"
	"ximd/internal/proto"
	"ximd/internal/regfile"
	"ximd/internal/sweep"
	"ximd/internal/workloads"
)

func benchXIMD(b *testing.B, inst *workloads.Instance) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m, err := workloads.RunXIMD(inst, nil)
		if err != nil {
			b.Fatal(err)
		}
		cycles = m.Cycle()
	}
	b.ReportMetric(float64(cycles), "machine-cycles")
}

func benchVLIW(b *testing.B, inst *workloads.Instance) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m, err := workloads.RunVLIW(inst, nil)
		if err != nil {
			b.Fatal(err)
		}
		cycles = m.Cycle()
	}
	b.ReportMetric(float64(cycles), "machine-cycles")
}

// E-EX1 — Example 1: the TPROC percolation schedule vs its scalar form.
func BenchmarkTPROC4FU(b *testing.B)    { benchXIMD(b, workloads.TPROC(1, 2, 3, 4)) }
func BenchmarkTPROCScalar(b *testing.B) { benchXIMD(b, workloads.TPROCScalar(1, 2, 3, 4)) }

// E-LL12 — Livermore Loop 12, software-pipelined vs scalar.
func ll12Data() []int32 {
	y := make([]int32, 257)
	for i := range y {
		y[i] = int32(i * i % 911)
	}
	return y
}
func BenchmarkLL12Pipelined(b *testing.B) { benchXIMD(b, workloads.LL12(ll12Data())) }
func BenchmarkLL12Scalar(b *testing.B)    { benchXIMD(b, workloads.LL12Scalar(ll12Data())) }

// E-EX2 / E-F10 — Example 2: MINMAX on XIMD (three streams) and VLIW.
func minmaxData() []int32 {
	r := rand.New(rand.NewSource(3))
	data := make([]int32, 128)
	for i := range data {
		data[i] = int32(r.Intn(100000) - 50000)
	}
	return data
}
func BenchmarkMinMaxXIMD(b *testing.B) { benchXIMD(b, workloads.MinMax(minmaxData())) }
func BenchmarkMinMaxVLIW(b *testing.B) { benchVLIW(b, workloads.MinMax(minmaxData())) }

// E-EX3 / E-F11 — Example 3: BITCOUNT1 with the ALL-SS barrier.
func bitcountData() []int32 {
	r := rand.New(rand.NewSource(4))
	data := make([]int32, 32)
	for i := range data {
		data[i] = int32(r.Uint32())
	}
	return data
}
func BenchmarkBitcountXIMD(b *testing.B) { benchXIMD(b, workloads.Bitcount(bitcountData())) }
func BenchmarkBitcountVLIW(b *testing.B) { benchVLIW(b, workloads.Bitcount(bitcountData())) }

// E-F12 — Figure 12: the three synchronization mechanisms.
func BenchmarkIOPortsSyncBits(b *testing.B) {
	benchXIMD(b, workloads.IOPorts(workloads.IOPortsSS, 1, 1, 8))
}
func BenchmarkIOPortsMemFlags(b *testing.B) {
	benchXIMD(b, workloads.IOPorts(workloads.IOPortsFlags, 1, 1, 8))
}
func BenchmarkIOPortsVLIWSerial(b *testing.B) {
	benchXIMD(b, workloads.IOPorts(workloads.IOPortsVLIW, 1, 1, 8))
}

// E-F13 — Figure 13: tile generation and the packing algorithms.
func tileThreads(b *testing.B) []tile.Thread {
	b.Helper()
	srcs := []string{
		`var a[64], b[64]; func main() { var i; for (i = 0; i < 64; i = i + 1) { b[i] = a[i]*3 + a[i]/2 - 7; } }`,
		`var c[64], d[64]; func main() { var i; for (i = 0; i < 64; i = i + 1) { d[i] = (c[i] << 2) ^ (c[i] >> 1); } }`,
		`var e[32]; func main() { var i, s = 0; for (i = 0; i < 32; i = i + 1) { s = s + e[i]*e[i]; } e[0] = s; }`,
		`var f[16], g[16]; func main() { var i; for (i = 0; i < 16; i = i + 1) { if (f[i] > 0) { g[i] = f[i]; } else { g[i] = -f[i]; } } }`,
		`var h[8]; func main() { var i; for (i = 0; i < 8; i = i + 1) { h[i] = i*i*i; } }`,
		`var p[4], q[4]; func main() { q[0] = p[0] + p[1]; q[1] = p[2] * p[3]; }`,
	}
	threads := make([]tile.Thread, len(srcs))
	for i, src := range srcs {
		cands, err := compiler.TileCandidates(src, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		threads[i] = tile.Thread{Candidates: cands}
	}
	return threads
}

func benchPacker(b *testing.B, f func([]tile.Thread, int) (tile.Packing, error)) {
	threads := tileThreads(b)
	b.ResetTimer()
	var height int
	for i := 0; i < b.N; i++ {
		pk, err := f(threads, 8)
		if err != nil {
			b.Fatal(err)
		}
		height = pk.Height
	}
	b.ReportMetric(float64(height), "static-rows")
}

func BenchmarkTilePackShelfFFD(b *testing.B)   { benchPacker(b, tile.PackShelfFFD) }
func BenchmarkTilePackSkyline(b *testing.B)    { benchPacker(b, tile.PackSkyline) }
func BenchmarkTilePackExhaustive(b *testing.B) { benchPacker(b, tile.PackExhaustive) }

// E-F14/§4.3 — the prototype's 3-stage pipeline penalty on LL12.
func BenchmarkProtoPipelineLL12(b *testing.B) {
	inst := workloads.LL12(ll12Data())
	var cycles uint64
	for i := 0; i < b.N; i++ {
		env := inst.NewEnv()
		res, _, err := proto.RunPipelined(inst.VLIW, proto.Prototype, env.Mem, inst.Regs, 0)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "machine-cycles")
}

// E-§4.4 — register file composition arithmetic.
func BenchmarkRegfileCompose(b *testing.B) {
	var chips int
	for i := 0; i < b.N; i++ {
		c, err := regfile.Compose(regfile.MOSISChip, regfile.XIMD1Machine)
		if err != nil {
			b.Fatal(err)
		}
		chips = c.TotalChips
	}
	b.ReportMetric(float64(chips), "chips")
}

// Compiler throughput across widths (the Figure 13 tile-generation cost).
func BenchmarkCompileWidth8(b *testing.B) { benchCompile(b, 8) }
func BenchmarkCompileWidth2(b *testing.B) { benchCompile(b, 2) }

func benchCompile(b *testing.B, width int) {
	src := `
var a[64], b[64], n;
func main() {
    var i;
    for (i = 0; i < n; i = i + 1) { b[i] = a[i] * 5 + a[i] / 3; }
}`
	var rows int
	for i := 0; i < b.N; i++ {
		c, err := ximd.Compile(src, ximd.CompileOptions{Width: width, Unroll: 2})
		if err != nil {
			b.Fatal(err)
		}
		rows = c.Rows
	}
	b.ReportMetric(float64(rows), "static-rows")
}

// E-§4.1 (batch) — the whole evaluation suite as one sweep through the
// internal/sweep worker pool: the speedup-table workload pairs, the
// bitcount data-set ablation, the LL12 n-sweep, and the ioports seed
// sweep. Serial (1 worker) vs parallel (GOMAXPROCS) measures the
// harness speedup on multi-core hosts; machine-cycles is the summed
// simulated work, identical at any width.
func sweepSuiteTasks() []sweep.Task {
	r := rand.New(rand.NewSource(13))
	minmaxData := make([]int32, 128)
	for i := range minmaxData {
		minmaxData[i] = int32(r.Intn(100000) - 50000)
	}
	var tasks []sweep.Task
	// Speedup-table pairs.
	for _, inst := range []*workloads.Instance{
		workloads.TPROC(1, 2, 3, 4),
		workloads.MinMax(minmaxData),
		workloads.Bitcount(bitcountData()),
	} {
		tasks = append(tasks, sweep.XIMD(inst), sweep.VLIW(inst))
	}
	// Bitcount data sets (the ablation's density sweep).
	for _, gen := range []func(*rand.Rand) int32{
		func(r *rand.Rand) int32 { return int32(r.Intn(8)) },
		func(r *rand.Rand) int32 { return int32(r.Intn(1 << 16)) },
		func(r *rand.Rand) int32 { return int32(r.Uint32() | 0x80000000) },
	} {
		rr := rand.New(rand.NewSource(23))
		vals := make([]int32, 24)
		for i := range vals {
			vals[i] = gen(rr)
		}
		tasks = append(tasks,
			sweep.XIMD(workloads.Bitcount(vals)),
			sweep.XIMD(workloads.BitcountPadded(vals)))
	}
	// LL12 n-sweep.
	for _, n := range []int{8, 32, 128} {
		y := make([]int32, n+1)
		for i := range y {
			y[i] = int32(i * i % 1013)
		}
		tasks = append(tasks, sweep.XIMD(workloads.LL12(y)), sweep.XIMD(workloads.LL12Scalar(y)))
	}
	// IOPorts seed sweep.
	for seed := int64(0); seed < 8; seed++ {
		tasks = append(tasks, sweep.XIMD(workloads.IOPorts(workloads.IOPortsSS, seed, 1, 8)))
	}
	return tasks
}

func benchSweepSuite(b *testing.B, workers int) {
	tasks := sweepSuiteTasks()
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(context.Background(), tasks, sweep.Options{
			Workers: workers, Policy: sweep.FailFast,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = 0
		for _, r := range res {
			cycles += r.Cycles
		}
	}
	b.ReportMetric(float64(cycles), "machine-cycles")
}

func BenchmarkSweepSuiteSerial(b *testing.B)   { benchSweepSuite(b, 1) }
func BenchmarkSweepSuiteParallel(b *testing.B) { benchSweepSuite(b, runtime.GOMAXPROCS(0)) }

// Raw simulator throughput: host nanoseconds per simulated machine cycle
// on an 8-FU machine running a long arithmetic loop.
func benchSimulatorThroughput(b *testing.B, engine ximd.EngineKind) {
	src := `
var out[1];
func main() {
    var i, s = 0;
    for (i = 0; i < 100000; i = i + 1) { s = s + i * 3 - (i >> 1); }
    out[0] = s;
}`
	c, err := ximd.Compile(src, ximd.CompileOptions{Width: 8, Unroll: 4})
	if err != nil {
		b.Fatal(err)
	}
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := ximd.NewMachine(c.Prog, ximd.Config{Engine: engine})
		if err != nil {
			b.Fatal(err)
		}
		cycles, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		total += cycles
	}
	b.StopTimer()
	if total > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "host-ns/machine-cycle")
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	benchSimulatorThroughput(b, ximd.EngineFast)
}

func BenchmarkSimulatorThroughputReference(b *testing.B) {
	benchSimulatorThroughput(b, ximd.EngineReference)
}
