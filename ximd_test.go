package ximd_test

import (
	"strings"
	"testing"

	"ximd"
)

// TestPublicAPIQuickstart exercises the assemble/run flow end to end
// through the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	prog, err := ximd.Assemble(`
.fus 2
.fu 0
	iadd #2, #40, r1
	store r1, #100   => halt
.fu 1
	nop
	nop              => halt
`)
	if err != nil {
		t.Fatal(err)
	}
	memory := ximd.NewSharedMemory(0)
	m, err := ximd.NewMachine(prog, ximd.Config{Memory: memory})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 2 {
		t.Errorf("cycles = %d", cycles)
	}
	if got := memory.Peek(100).Int(); got != 42 {
		t.Errorf("M(100) = %d, want 42", got)
	}
}

func TestPublicAPICompileAndTrace(t *testing.T) {
	c, err := ximd.Compile(`
var out[1];
func main() {
    var i, s = 0;
    for (i = 1; i <= 4; i = i + 1) { s = s + i; }
    out[0] = s;
}`, ximd.CompileOptions{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	memory := ximd.NewSharedMemory(0)
	rec := &ximd.TraceRecorder{}
	m, err := ximd.NewMachine(c.Prog, ximd.Config{Memory: memory, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	sym, ok := c.Syms.Lookup("out")
	if !ok {
		t.Fatal("missing symbol out")
	}
	if got := memory.Peek(sym.Addr).Int(); got != 10 {
		t.Errorf("out[0] = %d, want 10", got)
	}
	table := ximd.FormatAddressTrace(rec, ximd.TraceOptions{})
	if !strings.Contains(table, "Cycle 0") || !strings.Contains(table, "Partition") {
		t.Errorf("trace table malformed:\n%s", table)
	}
	if tl := ximd.StreamTimeline(rec); len(tl) == 0 || tl[0] != 1 {
		t.Errorf("timeline = %v", tl)
	}
}

func TestPublicAPIWorkloadsAndConversion(t *testing.T) {
	inst := ximd.MinMax([]int32{4, -2, 9, 0})
	m, err := ximd.RunWorkload(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().Cycles == 0 {
		t.Error("no cycles recorded")
	}
	vm, err := ximd.RunWorkloadVLIW(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Cycle() <= m.Cycle() {
		t.Errorf("VLIW (%d) should be slower than XIMD (%d) on minmax", vm.Cycle(), m.Cycle())
	}

	// Round-trip a VLIW-style program through both converters.
	c, err := ximd.Compile(`var o[1]; func main() { o[0] = 6 * 7; }`, ximd.CompileOptions{Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	vp, err := ximd.ToVLIW(c.Prog)
	if err != nil {
		t.Fatal(err)
	}
	back := ximd.FromVLIW(vp)
	if back.NumFU != c.Prog.NumFU || len(back.Instrs) != len(c.Prog.Instrs) {
		t.Error("conversion changed geometry")
	}
}

func TestPublicAPIDisassembleRoundTrip(t *testing.T) {
	prog, err := ximd.Assemble(`
.fus 1
.fu 0
a:	iadd r1, #1, r1
	lt r1, #10
	nop => if cc0 a b
b:	nop => halt
`)
	if err != nil {
		t.Fatal(err)
	}
	src := ximd.Disassemble(prog)
	again, err := ximd.Assemble(src)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, src)
	}
	for addr := range prog.Instrs {
		if again.Instrs[addr] != prog.Instrs[addr] {
			t.Fatalf("round trip changed addr %d", addr)
		}
	}
}
