// Package ximd is the public API of the XIMD reproduction: a
// variable-instruction-stream processor simulator suite implementing
// Wolfe & Shen, "A Variable Instruction Stream Extension to the VLIW
// Architecture" (ASPLOS 1991).
//
// The package wraps the building blocks — the XIMD-1 machine model, the
// companion VLIW baseline, the assembler, the minic compiler, trace
// formatting, and the paper's workloads — behind a small surface:
//
//	prog, err := ximd.Assemble(src)          // XIMD assembly text
//	m, err := ximd.NewMachine(prog, ximd.Config{})
//	cycles, err := m.Run()
//
//	c, err := ximd.Compile(minicSrc, ximd.CompileOptions{Width: 8})
//	m, err := ximd.NewMachine(c.Prog, ximd.Config{})
//
// See the examples directory for complete programs and DESIGN.md for the
// system inventory.
package ximd

import (
	"ximd/internal/asm"
	"ximd/internal/compiler"
	"ximd/internal/compiler/tile"
	"ximd/internal/core"
	"ximd/internal/device"
	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/trace"
	"ximd/internal/vliw"
	"ximd/internal/workloads"
)

// Machine model types.
type (
	// Program is an assembled XIMD program image.
	Program = isa.Program
	// Machine is an XIMD-1 processor instance.
	Machine = core.Machine
	// Config parameterizes a machine (memory model, tracing, limits).
	Config = core.Config
	// Partition is the SSET partition notation of Section 2.4.
	Partition = core.Partition
	// Stats summarizes an execution (cycles, utilization, stream counts).
	Stats = core.Stats
	// CycleRecord is one traced machine cycle.
	CycleRecord = core.CycleRecord
	// Word is the 32-bit machine word.
	Word = isa.Word
	// Addr is an instruction-memory address.
	Addr = isa.Addr
	// EngineKind selects a simulator execution engine (Config.Engine).
	EngineKind = core.EngineKind
)

// Execution engines selectable via Config.Engine. The pre-decoded fast
// engine is the default; the reference interpreter is retained for
// differential testing and as executable documentation of the
// architecture's semantics.
const (
	// EngineFast executes from a pre-decoded micro-op table.
	EngineFast = core.EngineFast
	// EngineReference executes by interpreting parcels directly.
	EngineReference = core.EngineReference
)

// VLIW baseline types (the paper's vsim).
type (
	// VLIWProgram is a single-stream VLIW program.
	VLIWProgram = vliw.Program
	// VLIWMachine is the VLIW baseline processor.
	VLIWMachine = vliw.Machine
	// VLIWConfig parameterizes the VLIW machine.
	VLIWConfig = vliw.Config
)

// Memory and device models.
type (
	// SharedMemory is the idealized shared memory of Section 2.3.
	SharedMemory = mem.Shared
	// InPort is a polled input port with deterministic readiness
	// schedules (Figure 12 substrate).
	InPort = device.InPort
	// OutPort records output-port writes.
	OutPort = device.OutPort
)

// Tracing.
type (
	// TraceRecorder captures every executed cycle; pass as Config.Tracer.
	TraceRecorder = trace.Recorder
	// TraceOptions controls address-trace formatting.
	TraceOptions = trace.Options
)

// Compiler.
type (
	// Compiled is the result of compiling minic source.
	Compiled = compiler.Compiled
	// CompileOptions selects target width and unrolling.
	CompileOptions = compiler.Options
)

// Workloads.
type (
	// Workload is one paper workload instance with its environment and
	// result checker.
	Workload = workloads.Instance
)

// NewMachine creates an XIMD-1 machine loaded with prog.
func NewMachine(prog *Program, cfg Config) (*Machine, error) {
	return core.New(prog, cfg)
}

// NewVLIWMachine creates a VLIW baseline machine loaded with prog.
func NewVLIWMachine(prog *VLIWProgram, cfg VLIWConfig) (*VLIWMachine, error) {
	return vliw.New(prog, cfg)
}

// Assemble assembles XIMD assembly text (see internal/asm for the
// language reference).
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// Disassemble renders a program as assembler source that Assemble
// accepts.
func Disassemble(prog *Program) string { return asm.Format(prog) }

// NewSharedMemory creates an idealized shared memory of size words
// (0 selects the default 1M words).
func NewSharedMemory(size uint32) *SharedMemory { return mem.NewShared(size) }

// ToVLIW converts a VLIW-style XIMD program (identical control in every
// parcel) to a native VLIW program.
func ToVLIW(prog *Program) (*VLIWProgram, error) { return vliw.FromXIMD(prog) }

// FromVLIW converts a VLIW program to an XIMD program by duplicating the
// control operation into every parcel (Section 3.1).
func FromVLIW(prog *VLIWProgram) *Program { return prog.ToXIMD() }

// Compile compiles minic source to an XIMD program.
func Compile(src string, opts CompileOptions) (*Compiled, error) {
	return compiler.Compile(src, opts)
}

// FormatAddressTrace renders captured cycles as the paper's Figure 10
// address-trace table.
func FormatAddressTrace(rec *TraceRecorder, opts TraceOptions) string {
	return trace.FormatAddressTrace(rec.Records, opts)
}

// StreamTimeline returns the concurrent-stream count per traced cycle.
func StreamTimeline(rec *TraceRecorder) []int { return trace.StreamTimeline(rec.Records) }

// Tile-based compilation (Figure 13).
type (
	// TileCandidate is one compiled variant of a thread (width × length).
	TileCandidate = tile.Candidate
	// TileThread is one thread with its compiled candidates.
	TileThread = tile.Thread
	// TilePacking is a placement of thread tiles into instruction memory.
	TilePacking = tile.Packing
)

// TileCandidates compiles a par-free minic thread at each width,
// producing its Figure 13 tiles.
func TileCandidates(src string, widths []int) ([]TileCandidate, error) {
	return compiler.TileCandidates(src, widths)
}

// Tile packing algorithms (Figure 13).
var (
	// PackShelfFFD is the shelf first-fit-decreasing heuristic.
	PackShelfFFD = tile.PackShelfFFD
	// PackSkyline is the skyline best-fit heuristic.
	PackSkyline = tile.PackSkyline
	// PackExhaustive searches all candidate combinations (small thread
	// counts).
	PackExhaustive = tile.PackExhaustive
)

// Paper workload constructors (see internal/workloads for details).
var (
	// TPROC is Example 1: the percolation-scheduled scalar procedure.
	TPROC = workloads.TPROC
	// MinMax is Example 2: the implicit-barrier fork/join search.
	MinMax = workloads.MinMax
	// Bitcount is Example 3: the explicit ALL-SS barrier program.
	Bitcount = workloads.Bitcount
	// LL12 is Livermore Loop 12, software-pipelined.
	LL12 = workloads.LL12
	// BitcountPadded is the equal-path-length (Example 2 style) ablation
	// of Bitcount.
	BitcountPadded = workloads.BitcountPadded
	// PartialBarrier is the Section 3.3 generalization: two concurrent
	// barrier groups on masked ALL-SS conditions.
	PartialBarrier = workloads.PartialBarrier
	// Saxpy is the floating-point kernel y = a*x + y.
	Saxpy = workloads.Saxpy
	// LL1, LL3, LL7 are compiler-generated Livermore-style kernels.
	LL1 = workloads.LL1
	LL3 = workloads.LL3
	LL7 = workloads.LL7
	// RunWorkload executes a workload's XIMD variant and checks results.
	RunWorkload = workloads.RunXIMD
	// RunWorkloadVLIW executes a workload's VLIW variant.
	RunWorkloadVLIW = workloads.RunVLIW
)
