package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode feeds arbitrary bytes through the full recovery
// path — frame scan, then payload decode of every frame found. The
// property under test is the crash-safety contract: recovery code runs
// against whatever a dead process left on disk, so no input may panic
// or allocate unboundedly, and any input whose valid frame prefix
// matches a real checkpoint file must recover exactly those frames.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("XCKP"))
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 0, 'a', 'b', 'c', 'd'})
	f.Add(AppendFrame(nil, []byte("not a checkpoint")))
	// A well-formed frame around a payload that is a valid prefix of a
	// checkpoint header but truncates inside the snapshot.
	f.Add(AppendFrame(nil, []byte("\x00\x00\x00\x04XCKP\x00\x01\x00\x00\x00\x04ximd")))

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid, torn := ScanFrames(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range for %d input bytes", valid, len(data))
		}
		if !torn && valid != int64(len(data)) {
			t.Fatalf("untorn scan covered %d of %d bytes", valid, len(data))
		}
		for _, p := range payloads {
			c, err := Decode(p)
			if err != nil {
				continue
			}
			// Whatever decodes must re-encode: a checkpoint the recovery
			// path accepts is one the save path could have written.
			again, err := c.Encode()
			if err != nil {
				t.Fatalf("decoded checkpoint refuses to re-encode: %v", err)
			}
			if !bytes.Equal(again, p) {
				t.Fatal("decode/encode of fuzzed payload is not byte-stable")
			}
		}
		// The valid prefix must rescan to the identical frame set:
		// recovery after recovery is a fixed point.
		payloads2, valid2, torn2 := ScanFrames(data[:valid])
		if torn2 || valid2 != valid || len(payloads2) != len(payloads) {
			t.Fatalf("rescan of valid prefix diverged: %d/%d frames, %d/%d bytes, torn %v",
				len(payloads2), len(payloads), valid2, valid, torn2)
		}
	})
}
