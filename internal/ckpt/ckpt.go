// Package ckpt is the durable checkpoint subsystem: portable binary
// serialization of in-flight machine snapshots (core.Snapshot /
// vliw.Snapshot plus the injector's retry attempt), persisted one file
// per job under an -archive directory's ckpt/ subdirectory.
//
// The determinism contract makes a checkpoint sufficient: a run is a
// pure function of (program digest, seed, inject spec), so a snapshot
// at any cycle boundary — architectural state, statistics, memory,
// partition tracker, injector attempt — is everything a fresh process
// needs to continue the run to a terminal result document
// byte-identical to an uninterrupted run's. Fault injection included:
// transient draws are keyed on (seed, attempt, cycle, FU, address),
// all of which the checkpoint restores.
//
// File format: a sequence of frames, each
//
//	[4-byte big-endian payload length][4-byte big-endian IEEE CRC32
//	of the payload][payload]
//
// — the same framing as archive.log, so the crash story is the same:
// appends fsync, a crash can only leave a torn tail, and opening scans
// the valid prefix and uses the LAST valid frame (the newest complete
// checkpoint), discarding the torn tail. Payloads carry a magic and a
// version ahead of the snapshot bytes, so format evolution fails
// decode cleanly instead of restoring garbage. Decoding arbitrary
// bytes never panics (FuzzCheckpointDecode).
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"ximd/internal/core"
	"ximd/internal/vliw"
	"ximd/internal/wire"
)

// Format constants. Version bumps whenever any layer's encoding
// changes shape; old files then fail decode and the caller falls back
// to a cold rerun — the safe direction for a cache of resumable work.
const (
	// Magic is the first four payload bytes of every checkpoint.
	Magic = "XCKP"
	// Version is the current payload format version.
	Version = 1
)

// frameHeaderLen is the byte length of the length+CRC frame header.
const frameHeaderLen = 8

// maxPayloadBytes bounds one frame's payload; a length prefix beyond
// it is treated as corruption, not an allocation request. Checkpoints
// carry sparse memory images, so real payloads sit far below this.
const maxPayloadBytes = 256 << 20

// Arch tags of the encoded snapshot.
const (
	archTagXIMD = 1
	archTagVLIW = 2
)

// Checkpoint is one resumable position of one run: the machine
// snapshot (exactly one of Ximd/Vliw set), the cycle it was taken at,
// the injector's retry attempt, and an opaque binding key.
type Checkpoint struct {
	// Arch is "ximd" or "vliw", matching runner.Arch.
	Arch string
	// Key is an opaque binding string chosen by the writer (the service
	// uses the job's (program digest, seed, inject, ...) identity). A
	// reader that finds a different key holds a checkpoint of some other
	// run and must cold-rerun instead of restoring it.
	Key string
	// Cycle is the machine cycle the snapshot was taken at.
	Cycle uint64
	// Attempt is the injector's retry attempt at snapshot time.
	Attempt uint64
	// Ximd / Vliw is the architectural snapshot; exactly one is set.
	Ximd *core.Snapshot
	Vliw *vliw.Snapshot
}

// Encode serializes the checkpoint into one frame payload.
func (c *Checkpoint) Encode() ([]byte, error) {
	w := &wire.Writer{}
	w.String(Magic)
	w.U16(Version)
	w.String(c.Arch)
	w.String(c.Key)
	w.U64(c.Cycle)
	w.U64(c.Attempt)
	switch {
	case c.Ximd != nil && c.Vliw == nil:
		w.U8(archTagXIMD)
		if err := c.Ximd.Encode(w); err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
	case c.Vliw != nil && c.Ximd == nil:
		w.U8(archTagVLIW)
		if err := c.Vliw.Encode(w); err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
	default:
		return nil, fmt.Errorf("ckpt: checkpoint must carry exactly one snapshot")
	}
	return w.Bytes(), nil
}

// Decode parses one frame payload back into a Checkpoint. It never
// panics on arbitrary input; anything structurally wrong fails with an
// error.
func Decode(payload []byte) (*Checkpoint, error) {
	r := wire.NewReader(payload)
	if m := r.String(); m != Magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", m)
	}
	if v := r.U16(); v != Version {
		return nil, fmt.Errorf("ckpt: unsupported version %d (want %d)", v, Version)
	}
	c := &Checkpoint{
		Arch:    r.String(),
		Key:     r.String(),
		Cycle:   r.U64(),
		Attempt: r.U64(),
	}
	tag := r.U8()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	switch tag {
	case archTagXIMD:
		s, err := core.DecodeSnapshot(r)
		if err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
		c.Ximd = s
	case archTagVLIW:
		s, err := vliw.DecodeSnapshot(r)
		if err != nil {
			return nil, fmt.Errorf("ckpt: %w", err)
		}
		c.Vliw = s
	default:
		return nil, fmt.Errorf("ckpt: unknown snapshot tag %d", tag)
	}
	if rem := r.Remaining(); rem != 0 {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after snapshot", rem)
	}
	return c, nil
}

// AppendFrame appends one length+CRC framed payload to dst. Shared by
// the checkpoint store and the service's job journal, which use the
// identical on-disk framing.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ScanFrames walks the frame sequence in data, returning the payloads
// of the valid prefix, the prefix's byte length, and whether a torn or
// corrupt tail was discarded. The scan stops at the first incomplete
// frame or CRC mismatch — exactly the archive.log recovery rule — so a
// crash mid-append costs at most the frame being written.
func ScanFrames(data []byte) (payloads [][]byte, valid int64, torn bool) {
	rest := data
	for len(rest) > 0 {
		if len(rest) < frameHeaderLen {
			return payloads, valid, true
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		sum := binary.BigEndian.Uint32(rest[4:8])
		if n == 0 || n > maxPayloadBytes || uint64(len(rest)) < uint64(frameHeaderLen)+uint64(n) {
			return payloads, valid, true
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, valid, true
		}
		payloads = append(payloads, payload)
		valid += int64(frameHeaderLen + int(n))
		rest = rest[frameHeaderLen+int(n):]
	}
	return payloads, valid, false
}

// SyncDir fsyncs a directory, making a just-created, just-renamed, or
// just-removed directory entry itself durable. POSIX only promises
// that fsync of a file persists the file's bytes — the entry pointing
// at it lives in the parent directory and needs its own fsync, or a
// crash right after create can leave a durable file that no directory
// mentions. Both the checkpoint store and internal/archive call this
// after creating or renaming their files.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
