package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is a directory of per-job checkpoint files. Each job id maps
// to one append-only file DIR/<id>.ckpt holding a sequence of framed
// checkpoint payloads; the newest valid frame wins on load. Appending
// (rather than rewrite-and-rename) keeps the common-path cost to one
// write + one fsync, and means a crash mid-save leaves the previous
// checkpoint intact behind a torn tail. Files are compacted back to a
// single frame once they grow past a multiple of their latest
// checkpoint's size.
type Store struct {
	dir string

	mu    sync.Mutex
	files map[string]*os.File // open append handles, keyed by job id
}

// compactFactor triggers compaction: when a checkpoint file exceeds
// compactFactor times the size of the frame just appended, it is
// rewritten to hold only that frame. Checkpoints of one job are all
// roughly the same size, so this bounds each file to a small constant
// number of frames without measuring history.
const compactFactor = 4

// OpenStore opens (creating if needed) the checkpoint directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	// Make the directory entry itself durable: MkdirAll may have just
	// created it, and checkpoints saved under an unmentioned directory
	// would not survive a crash.
	if err := SyncDir(filepath.Dir(dir)); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &Store{dir: dir, files: make(map[string]*os.File)}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id+".ckpt")
}

// Save durably appends a checkpoint for job id. On return the
// checkpoint has been fsynced: a crash at any later point recovers at
// least this state.
func (s *Store) Save(id string, c *Checkpoint) (int, error) {
	payload, err := c.Encode()
	if err != nil {
		return 0, err
	}
	frame := AppendFrame(nil, payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	f, created, err := s.openLocked(id)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(frame); err != nil {
		return 0, fmt.Errorf("ckpt: save %s: %w", id, err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("ckpt: save %s: %w", id, err)
	}
	if created {
		// First frame of a new file: fsync the directory so the file's
		// own entry is durable, not just its bytes.
		if err := SyncDir(s.dir); err != nil {
			return 0, fmt.Errorf("ckpt: save %s: %w", id, err)
		}
	}
	if st, err := f.Stat(); err == nil && st.Size() > int64(len(frame))*compactFactor {
		if err := s.compactLocked(id, frame); err != nil {
			return 0, err
		}
	}
	return len(frame), nil
}

// openLocked returns the open append handle for id, opening (and
// reporting whether it created) the file on first use.
func (s *Store) openLocked(id string) (f *os.File, created bool, err error) {
	if f, ok := s.files[id]; ok {
		return f, false, nil
	}
	path := s.path(id)
	_, statErr := os.Stat(path)
	created = os.IsNotExist(statErr)
	f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, false, fmt.Errorf("ckpt: open %s: %w", id, err)
	}
	s.files[id] = f
	return f, created, nil
}

// compactLocked rewrites id's checkpoint file to hold only frame,
// via write-temp + fsync + rename + dir-fsync so every intermediate
// crash state still loads: either the old multi-frame file or the new
// single-frame file is in place, never a partial.
func (s *Store) compactLocked(id string, frame []byte) error {
	tmp := s.path(id) + ".tmp"
	if err := writeFileSync(tmp, frame); err != nil {
		return fmt.Errorf("ckpt: compact %s: %w", id, err)
	}
	if err := os.Rename(tmp, s.path(id)); err != nil {
		return fmt.Errorf("ckpt: compact %s: %w", id, err)
	}
	if err := SyncDir(s.dir); err != nil {
		return fmt.Errorf("ckpt: compact %s: %w", id, err)
	}
	// The old handle now points at the unlinked pre-compaction inode;
	// reopen on next save.
	if f, ok := s.files[id]; ok {
		f.Close()
		delete(s.files, id)
	}
	return nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load returns the newest valid checkpoint for job id, or (nil, nil)
// when none is usable — absent file, empty file, torn or corrupt
// frames, undecodable payloads. The caller's fallback for every "no
// checkpoint" shape is the same cold rerun, so unusable state is not
// an error.
func (s *Store) Load(id string) (*Checkpoint, error) {
	data, err := os.ReadFile(s.path(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: load %s: %w", id, err)
	}
	payloads, _, _ := ScanFrames(data)
	// Newest valid frame wins; skip backward past frames whose payload
	// fails decode (framing intact but content corrupt or stale-version).
	for i := len(payloads) - 1; i >= 0; i-- {
		if c, err := Decode(payloads[i]); err == nil {
			return c, nil
		}
	}
	return nil, nil
}

// Delete removes job id's checkpoint file (a no-op when absent) and
// makes the removal durable. Called when a job reaches a terminal
// state: its result document is archived and the checkpoint must not
// outlive it, or a crash-restart would "resume" a finished job.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	if f, ok := s.files[id]; ok {
		f.Close()
		delete(s.files, id)
	}
	s.mu.Unlock()
	err := os.Remove(s.path(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("ckpt: delete %s: %w", id, err)
	}
	if err == nil {
		if err := SyncDir(s.dir); err != nil {
			return fmt.Errorf("ckpt: delete %s: %w", id, err)
		}
	}
	return nil
}

// List returns the job ids with checkpoint files, sorted.
func (s *Store) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if id, ok := strings.CutSuffix(name, ".ckpt"); ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Close closes all open file handles. Saved state is already durable;
// Close only releases descriptors.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for id, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.files, id)
	}
	return first
}
