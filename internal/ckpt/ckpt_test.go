package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ximd/internal/core"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

// testCheckpoint builds a real checkpoint by running a small XIMD
// machine for a few cycles and snapshotting it.
func testCheckpoint(t *testing.T, cycles int) *Checkpoint {
	t.Helper()
	p := &isa.Program{NumFU: 2, Instrs: make([]isa.Instruction, 4)}
	for a := 0; a < 4; a++ {
		for fu := 0; fu < 2; fu++ {
			pc := isa.Parcel{Data: isa.DataOp{Op: isa.OpIAdd, A: isa.R(1), B: isa.I(int32(a + fu)), Dest: uint8(64 + fu)}}
			if a == 3 {
				pc.Ctrl = isa.Goto(0)
			} else {
				pc.Ctrl = isa.Goto(isa.Addr(a + 1))
			}
			p.Instrs[a][fu] = pc
		}
	}
	m, err := core.New(p, core.Config{Memory: mem.NewShared(1024), MaxCycles: 10000})
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	for i := 0; i < cycles; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	s, err := m.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return &Checkpoint{Arch: "ximd", Key: "k1", Cycle: m.Cycle(), Attempt: 3, Ximd: s}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := testCheckpoint(t, 5)
	payload, err := c.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Arch != c.Arch || got.Key != c.Key || got.Cycle != c.Cycle || got.Attempt != c.Attempt {
		t.Fatalf("header mismatch: got %+v want %+v", got, c)
	}
	if got.Ximd == nil || got.Vliw != nil {
		t.Fatal("wrong snapshot slot populated")
	}
	// Re-encoding the decoded checkpoint must reproduce the bytes: the
	// codec has one canonical form.
	again, err := got.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(payload, again) {
		t.Fatal("decode/encode is not byte-stable")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	c := testCheckpoint(t, 5)
	payload, err := c.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := Decode(payload[:len(payload)/2]); err == nil {
		t.Error("truncated payload decoded")
	}
	if _, err := Decode(append(append([]byte(nil), payload...), 0xff)); err == nil {
		t.Error("payload with trailing garbage decoded")
	}
	bad := append([]byte(nil), payload...)
	bad[0] ^= 0xff // magic
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic decoded")
	}
	bad = append([]byte(nil), payload...)
	bad[len(Magic)+4] ^= 0xff // version (after magic's length prefix)
	if _, err := Decode(bad); err == nil {
		t.Error("bad version decoded")
	}
}

func TestEncodeRefusesAmbiguousCheckpoint(t *testing.T) {
	if _, err := (&Checkpoint{Arch: "ximd"}).Encode(); err == nil {
		t.Error("checkpoint with no snapshot encoded")
	}
}

func TestScanFramesTornTail(t *testing.T) {
	var file []byte
	p1 := []byte("first payload")
	p2 := []byte("second payload")
	file = AppendFrame(file, p1)
	file = AppendFrame(file, p2)

	payloads, valid, torn := ScanFrames(file)
	if torn || len(payloads) != 2 || valid != int64(len(file)) {
		t.Fatalf("clean scan: %d payloads, valid %d, torn %v", len(payloads), valid, torn)
	}
	if !bytes.Equal(payloads[0], p1) || !bytes.Equal(payloads[1], p2) {
		t.Fatal("payload bytes corrupted")
	}

	// Every possible torn tail of a third frame: the first two frames
	// always survive.
	full := AppendFrame(append([]byte(nil), file...), []byte("third"))
	for cut := len(file) + 1; cut < len(full); cut++ {
		payloads, valid, torn := ScanFrames(full[:cut])
		if !torn || len(payloads) != 2 || valid != int64(len(file)) {
			t.Fatalf("cut %d: %d payloads, valid %d, torn %v", cut, len(payloads), valid, torn)
		}
	}

	// A flipped byte in the middle frame cuts the scan there.
	corrupt := append([]byte(nil), full...)
	corrupt[len(file)-3] ^= 0x40
	payloads, _, torn = ScanFrames(corrupt)
	if !torn || len(payloads) != 1 {
		t.Fatalf("corrupt middle: %d payloads, torn %v", len(payloads), torn)
	}
}

func TestStoreSaveLoadDelete(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer st.Close()

	if c, err := st.Load("j-1"); err != nil || c != nil {
		t.Fatalf("load of absent id: %v, %v", c, err)
	}

	c5 := testCheckpoint(t, 5)
	c9 := testCheckpoint(t, 9)
	if _, err := st.Save("j-1", c5); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := st.Save("j-1", c9); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := st.Load("j-1")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got == nil || got.Cycle != c9.Cycle {
		t.Fatalf("load returned %+v, want newest (cycle %d)", got, c9.Cycle)
	}

	ids, err := st.List()
	if err != nil || len(ids) != 1 || ids[0] != "j-1" {
		t.Fatalf("list: %v, %v", ids, err)
	}

	if err := st.Delete("j-1"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if c, err := st.Load("j-1"); err != nil || c != nil {
		t.Fatalf("load after delete: %v, %v", c, err)
	}
	if err := st.Delete("j-1"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestStoreLoadSurvivesTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer st.Close()

	c := testCheckpoint(t, 5)
	if _, err := st.Save("j-2", c); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Simulate a crash mid-append: garbage half-frame at the tail.
	path := filepath.Join(dir, "j-2.ckpt")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x12}); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	f.Close()

	got, err := st.Load("j-2")
	if err != nil || got == nil || got.Cycle != c.Cycle {
		t.Fatalf("torn-tail load: %+v, %v", got, err)
	}

	// A file of pure garbage is "no checkpoint", not an error.
	if err := os.WriteFile(filepath.Join(dir, "j-3.ckpt"), []byte("not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	if c, err := st.Load("j-3"); err != nil || c != nil {
		t.Fatalf("garbage file load: %v, %v", c, err)
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer st.Close()

	var last *Checkpoint
	for i := 1; i <= 20; i++ {
		last = testCheckpoint(t, i)
		if _, err := st.Save("j-4", last); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	payload, err := last.Encode()
	if err != nil {
		t.Fatal(err)
	}
	frame := int64(len(AppendFrame(nil, payload)))
	info, err := os.Stat(filepath.Join(dir, "j-4.ckpt"))
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if info.Size() > frame*(compactFactor+1) {
		t.Fatalf("file grew to %d bytes (frame %d): compaction never ran", info.Size(), frame)
	}
	got, err := st.Load("j-4")
	if err != nil || got == nil || got.Cycle != last.Cycle {
		t.Fatalf("post-compaction load: %+v, %v", got, err)
	}
}
