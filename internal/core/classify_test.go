package core

import (
	"testing"

	"ximd/internal/isa"
)

func TestClassifySISD(t *testing.T) {
	prog := seqProgram(t, isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(2), Dest: 1})
	style := Classify(prog)
	if !style.SISD || !style.VLIW || !style.SIMD || !style.MIMD {
		t.Fatalf("single-FU program should conform to every model: %+v", style)
	}
}

func TestClassifyVLIWStyle(t *testing.T) {
	// Different data ops per FU, identical control: VLIW but not SIMD.
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(2), Dest: 1}, isa.Goto(1)))
	b.Set(0, 1, par(isa.DataOp{Op: isa.OpISub, A: isa.I(1), B: isa.I(2), Dest: 2}, isa.Goto(1)))
	b.Set(1, 0, isa.HaltParcel)
	b.Set(1, 1, isa.HaltParcel)
	style := Classify(b.MustBuild())
	if !style.VLIW || style.SIMD || style.SISD {
		t.Fatalf("style = %+v, want VLIW only (plus MIMD: no cross-FU conditions)", style)
	}
}

func TestClassifySIMDStyle(t *testing.T) {
	// Identical data AND control in every parcel.
	b := isa.NewBuilder(4)
	op := isa.DataOp{Op: isa.OpIAdd, A: isa.R(1), B: isa.I(1), Dest: 1}
	for fu := 0; fu < 4; fu++ {
		b.Set(0, fu, par(op, isa.Goto(1)))
		b.Set(1, fu, isa.HaltParcel)
	}
	style := Classify(b.MustBuild())
	if !style.SIMD || !style.VLIW {
		t.Fatalf("style = %+v, want SIMD (and therefore VLIW)", style)
	}
}

func TestClassifyMIMDStyle(t *testing.T) {
	// Each FU branches only on its own CC: independent streams.
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpLt, A: isa.I(0), B: isa.I(1)}, isa.IfCC(0, 1, 1)))
	b.Set(0, 1, par(isa.DataOp{Op: isa.OpLt, A: isa.I(1), B: isa.I(0)}, isa.IfCC(1, 1, 1)))
	b.Set(1, 0, isa.HaltParcel)
	b.Set(1, 1, isa.HaltParcel)
	style := Classify(b.MustBuild())
	if !style.MIMD {
		t.Fatalf("style = %+v, want MIMD", style)
	}
	if style.VLIW {
		t.Fatalf("style = %+v: per-FU conditions are not identical δ", style)
	}
}

func TestClassifyXIMDRequiresNeither(t *testing.T) {
	// A cross-FU condition (FU1 branches on cc0) breaks MIMD; differing
	// controls break VLIW: the program needs the full XIMD repertoire.
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpLt, A: isa.I(0), B: isa.I(1)}, isa.Goto(1)))
	b.Set(0, 1, par(isa.Nop, isa.IfCC(0, 1, 1)))
	b.Set(1, 0, isa.HaltParcel)
	b.Set(1, 1, isa.HaltParcel)
	style := Classify(b.MustBuild())
	if style.VLIW || style.SIMD || style.MIMD || style.SISD {
		t.Fatalf("style = %+v, want none", style)
	}
}

func TestClassifyBarrierBreaksMIMD(t *testing.T) {
	b := isa.NewBuilder(2)
	for fu := 0; fu < 2; fu++ {
		b.Set(0, fu, isa.Parcel{Data: isa.Nop, Ctrl: isa.IfAllSS(1, 0), Sync: isa.Done})
		b.Set(1, fu, isa.HaltParcel)
	}
	style := Classify(b.MustBuild())
	if style.MIMD {
		t.Fatal("ALL-SS condition reads other FUs' state; not MIMD")
	}
	if !style.VLIW {
		t.Fatal("identical barrier parcels are identical δ; still VLIW-classifiable")
	}
}

func TestClassifyHolesBreakVLIW(t *testing.T) {
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.Nop, isa.Goto(1)))
	b.Set(0, 1, par(isa.Nop, isa.Goto(1)))
	b.Set(1, 0, par(isa.Nop, isa.Goto(2)))
	// FU1 hole at addr 1.
	b.Set(2, 0, isa.HaltParcel)
	b.Set(2, 1, isa.HaltParcel)
	style := Classify(b.MustBuild())
	if style.VLIW {
		t.Fatal("instruction with holes cannot be lock-step VLIW")
	}
}

// TestVLIWEmulationEquivalence demonstrates the paper's Section 2.1 claim
// operationally: a program with identical δ in every parcel executes with
// all PCs in lock step and a single SSET for the whole run — the XIMD is
// functionally a VLIW.
func TestVLIWEmulationEquivalence(t *testing.T) {
	b := isa.NewBuilder(4)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpIAdd, A: isa.I(5), B: isa.I(0), Dest: 1}, isa.Goto(1)))
	b.Set(1, 0, par(isa.DataOp{Op: isa.OpISub, A: isa.R(1), B: isa.I(1), Dest: 1}, isa.Goto(2)))
	b.Set(2, 0, par(isa.DataOp{Op: isa.OpGt, A: isa.R(1), B: isa.I(0)}, isa.Goto(3)))
	b.Set(3, 0, par(isa.Nop, isa.IfCC(0, 1, 4)))
	b.Set(4, 0, isa.HaltParcel)
	b.FillVLIWControl()
	prog := b.MustBuild()

	if style := Classify(prog); !style.VLIW {
		t.Fatalf("FillVLIWControl output not VLIW-classified: %+v", style)
	}

	tr := &recordingTracer{}
	m, err := New(prog, Config{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, pcs := range tr.pcs {
		for fu := 1; fu < 4; fu++ {
			if pcs[fu] != pcs[0] {
				t.Fatalf("cycle %d: PCs diverged: %v", i, pcs)
			}
		}
		if tr.partitions[i] != "{0,1,2,3}" {
			t.Fatalf("cycle %d: partition %s, want single SSET", i, tr.partitions[i])
		}
	}
	if m.Regs().Peek(1).Int() != 0 {
		t.Fatalf("r1 = %d, want 0 (loop ran to completion)", m.Regs().Peek(1).Int())
	}
}
