package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ximd/internal/isa"
	"ximd/internal/mem"
)

// buildDiffMachine constructs one machine over the standard
// differential register/memory image without a tracer.
func buildDiffMachine(t *testing.T, prog *isa.Program, cfg Config) (*Machine, *mem.Shared) {
	t.Helper()
	memory := mem.NewShared(diffMemWords)
	for i := uint32(0); i < diffMemWords; i++ {
		memory.Poke(i, isa.WordFromInt(int32(i)*3-700))
	}
	cfg.Memory = memory
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := uint8(0); i < 24; i++ {
		m.Regs().Poke(i, isa.WordFromInt(int32(i)*7-40))
	}
	return m, memory
}

// TestBatchMatchesSequential is the batched-vs-per-machine half of the
// equivalence contract: a Batch of random machines advanced in lockstep
// rounds must leave every machine byte-identical to running it alone.
func TestBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	const batchSize = 24
	progs := make([]*isa.Program, batchSize)
	cfgs := make([]Config, batchSize)
	bms := make([]*Machine, batchSize)
	bmems := make([]*mem.Shared, batchSize)
	for i := range progs {
		if i%3 == 0 {
			progs[i] = randomXIMDProgram(r)
		} else {
			progs[i] = randomFusibleXIMDProgram(r)
		}
		if err := progs[i].Validate(); err != nil {
			t.Fatalf("machine %d: invalid program: %v", i, err)
		}
		cfgs[i] = Config{
			MaxCycles:         300,
			TolerateConflicts: r.Intn(2) == 0,
			DetectLivelock:    r.Intn(2) == 0,
		}
		bms[i], bmems[i] = buildDiffMachine(t, progs[i], cfgs[i])
	}

	b := NewBatch(bms)
	if b.Size() != batchSize {
		t.Fatalf("Size = %d, want %d", b.Size(), batchSize)
	}
	for rounds := 0; b.StepRound(17) > 0; rounds++ {
		if rounds > 300 {
			t.Fatal("batch did not converge")
		}
	}
	if b.Live() != 0 {
		t.Fatalf("Live = %d after convergence", b.Live())
	}

	for i := range progs {
		sm, smem := buildDiffMachine(t, progs[i], cfgs[i])
		_, serr := sm.Run()
		assertMachinesAgree(t, fmt.Sprintf("machine %d", i), "batched", "sequential", progs[i],
			b.Machine(i), bmems[i], b.Machine(i).Cycle(), b.Err(i),
			sm, smem, sm.Cycle(), serr)
		if b.Running(i) {
			t.Fatalf("machine %d still marked running", i)
		}
	}
}

// TestBatchStepRoundAllocs is the 0-alloc guard for the batched path:
// steady-state lockstep rounds (fused runs engaged, observability
// disabled) must allocate nothing.
func TestBatchStepRoundAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	const batchSize = 8
	ms := make([]*Machine, batchSize)
	for i := range ms {
		m, err := New(allocProgram(), Config{Memory: mem.NewShared(1024), MaxCycles: 1 << 40})
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	b := NewBatch(ms)
	b.StepRound(128) // warm up staged-write buffers
	avg := testing.AllocsPerRun(256, func() {
		if b.StepRound(64) != batchSize {
			t.Fatal("batch retired a machine unexpectedly")
		}
	})
	if avg != 0 {
		t.Fatalf("%v allocs per steady-state batch round, want 0", avg)
	}
}

// TestResetMatchesNew holds Machine.Reset to the New contract: a pooled
// machine rebound to a different program and config must produce
// exactly the outcome of a freshly-built machine.
func TestResetMatchesNew(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	pooled := &Machine{}
	first := true
	for iter := 0; iter < 60; iter++ {
		prog := randomFusibleXIMDProgram(r)
		if err := prog.Validate(); err != nil {
			t.Fatalf("iter %d: invalid program: %v", iter, err)
		}
		cfg := Config{
			MaxCycles:         300,
			TolerateConflicts: r.Intn(2) == 0,
			DetectLivelock:    r.Intn(2) == 0,
			Engine:            EngineKind(r.Intn(2)),
		}

		pmem := mem.NewShared(diffMemWords)
		for i := uint32(0); i < diffMemWords; i++ {
			pmem.Poke(i, isa.WordFromInt(int32(i)*3-700))
		}
		pcfg := cfg
		pcfg.Memory = pmem
		if first {
			m, err := New(prog, pcfg)
			if err != nil {
				t.Fatalf("iter %d: New: %v", iter, err)
			}
			pooled = m
			first = false
		} else if err := pooled.Reset(prog, pcfg); err != nil {
			t.Fatalf("iter %d: Reset: %v", iter, err)
		}
		for i := uint8(0); i < 24; i++ {
			pooled.Regs().Poke(i, isa.WordFromInt(int32(i)*7-40))
		}
		_, perr := pooled.Run()

		fm, fmem := buildDiffMachine(t, prog, cfg)
		_, ferr := fm.Run()
		assertMachinesAgree(t, fmt.Sprintf("iter %d", iter), "reset", "new", prog,
			pooled, pmem, pooled.Cycle(), perr, fm, fmem, fm.Cycle(), ferr)
	}
}
