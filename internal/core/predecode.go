package core

import (
	"fmt"

	"ximd/internal/isa"
)

// This file exposes the fast engine's pre-decode step as a first-class,
// shareable artifact. Decoding a program — validating it, resolving
// operand kinds, baking class flags, and compiling branch conditions to
// bitmask compares — is pure: the resulting micro-op table is never
// written during execution, so one table can back any number of
// machines, including machines running concurrently. A service that
// executes the same program many times (the ximdd decoded-program
// cache) pays the validate+decode cost once and constructs every
// subsequent machine from the shared table.

// Decoded is a validated program together with its fast-engine micro-op
// table and superop fusion table. It is immutable after Predecode and
// safe for concurrent use by any number of machines.
type Decoded struct {
	prog *isa.Program
	code []uop
	fuse *fuseInfo
}

// Predecode validates prog and builds its fast-engine micro-op table
// and superop fusion table once. Machines constructed with
// Config.Decoded skip all three steps — so a decoded-program cache hit
// gets fusion for free, with no change to the cache key.
func Predecode(prog *isa.Program) (*Decoded, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid program: %w", err)
	}
	code := decodeProgram(prog)
	return &Decoded{prog: prog, code: code, fuse: fuseProgram(prog, code)}, nil
}

// Program returns the validated program the table was decoded from. The
// caller must not mutate it: the decoded table mirrors its contents.
func (d *Decoded) Program() *isa.Program { return d.prog }

// FusibleWords reports how many instruction words begin (or continue) a
// fused superop run — words the fast engine can execute without
// per-cycle dispatch. It is introspection for caches and tools; zero
// means the program has no straight-line fusible stretches.
func (d *Decoded) FusibleWords() int {
	if d.fuse == nil {
		return 0
	}
	n := 0
	for _, r := range d.fuse.runLen {
		if r > 0 {
			n++
		}
	}
	return n
}
