package core

import (
	"fmt"

	"ximd/internal/isa"
)

// This file exposes the fast engine's pre-decode step as a first-class,
// shareable artifact. Decoding a program — validating it, resolving
// operand kinds, baking class flags, and compiling branch conditions to
// bitmask compares — is pure: the resulting micro-op table is never
// written during execution, so one table can back any number of
// machines, including machines running concurrently. A service that
// executes the same program many times (the ximdd decoded-program
// cache) pays the validate+decode cost once and constructs every
// subsequent machine from the shared table.

// Decoded is a validated program together with its fast-engine micro-op
// table. It is immutable after Predecode and safe for concurrent use by
// any number of machines.
type Decoded struct {
	prog *isa.Program
	code []uop
}

// Predecode validates prog and builds its fast-engine micro-op table
// once. Machines constructed with Config.Decoded skip both steps.
func Predecode(prog *isa.Program) (*Decoded, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid program: %w", err)
	}
	return &Decoded{prog: prog, code: decodeProgram(prog)}, nil
}

// Program returns the validated program the table was decoded from. The
// caller must not mutate it: the decoded table mirrors its contents.
func (d *Decoded) Program() *isa.Program { return d.prog }
