package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ximd/internal/isa"
	"ximd/internal/mem"
)

// Differential testing of the two execution engines: random XIMD
// programs — including ones that fault (division by zero, out-of-range
// memory, register and memory write conflicts, trap parcels) and ones
// that spin until livelock detection or the cycle limit — must produce
// bit-identical outcomes on the fast and reference engines: cycle count,
// error text, statistics, the full trace stream (with parcels), the
// SSET partition, all 256 registers, and memory.

// captureTracer retains a deep copy of every cycle record, including the
// executed parcels (which trace.Recorder drops), so two engines can be
// compared cycle for cycle.
type captureTracer struct{ recs []CycleRecord }

func (c *captureTracer) Cycle(rec *CycleRecord) {
	cp := *rec
	cp.PC = append([]isa.Addr(nil), rec.PC...)
	cp.CC = append([]bool(nil), rec.CC...)
	cp.CCValid = append([]bool(nil), rec.CCValid...)
	cp.SS = append([]isa.Sync(nil), rec.SS...)
	cp.Halted = append([]bool(nil), rec.Halted...)
	cp.Parcels = append([]isa.Parcel(nil), rec.Parcels...)
	cp.Stalled = append([]bool(nil), rec.Stalled...)
	cp.Failed = append([]bool(nil), rec.Failed...)
	c.recs = append(c.recs, cp)
}

const diffMemWords = 1024

// randomXIMDProgram generates a short program with independent per-FU
// control: forward branches (with occasional self-loop spin waits), the
// full condition repertoire, sync signals, and deliberately hazardous
// operations so the error paths of both engines are exercised.
func randomXIMDProgram(r *rand.Rand) *isa.Program {
	numFU := 1 + r.Intn(isa.NumFU)
	n := 4 + r.Intn(20)
	p := &isa.Program{NumFU: numFU, Instrs: make([]isa.Instruction, n)}
	reg := func() uint8 { return uint8(r.Intn(24)) }
	operand := func() isa.Operand {
		if r.Intn(2) == 0 {
			return isa.R(reg())
		}
		return isa.I(int32(r.Intn(2001) - 1000))
	}
	// dest is mostly a per-FU private window so most runs make progress,
	// with a shared window so same-cycle write conflicts happen.
	dest := func(fu int) uint8 {
		if r.Intn(10) < 7 {
			return uint8(64 + fu*4 + r.Intn(4))
		}
		return uint8(r.Intn(12))
	}
	// addr is mostly a per-FU private data region, sometimes a shared
	// region (store conflicts), sometimes near or past the end of the
	// 1024-word memory (out-of-range faults).
	memAddr := func(fu int) int32 {
		switch r.Intn(10) {
		case 0:
			return int32(90 + r.Intn(10))
		case 1:
			return int32(1010 + r.Intn(30))
		default:
			return int32(100 + fu*16 + r.Intn(16))
		}
	}
	safeOps := []isa.Opcode{
		isa.OpIAdd, isa.OpISub, isa.OpIMult, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSra, isa.OpINeg, isa.OpIAbs, isa.OpNot,
		isa.OpFAdd, isa.OpFMult, isa.OpItoF,
	}
	cmpOps := []isa.Opcode{isa.OpEq, isa.OpNe, isa.OpLt, isa.OpLe, isa.OpGt, isa.OpGe}

	for addr := 0; addr < n; addr++ {
		for fu := 0; fu < numFU; fu++ {
			if addr > 0 && r.Intn(40) == 0 {
				p.Instrs[addr][fu] = isa.TrapParcel
				continue
			}
			var pc isa.Parcel
			switch r.Intn(10) {
			case 0:
				pc.Data = isa.Nop
			case 1:
				pc.Data = isa.DataOp{Op: cmpOps[r.Intn(len(cmpOps))], A: operand(), B: operand()}
			case 2, 3:
				if r.Intn(2) == 0 {
					pc.Data = isa.DataOp{Op: isa.OpLoad, A: isa.I(memAddr(fu)), B: isa.I(0), Dest: dest(fu)}
				} else {
					pc.Data = isa.DataOp{Op: isa.OpStore, A: operand(), B: isa.I(memAddr(fu))}
				}
			case 4:
				// Hazard: divisor immediate includes zero.
				op := isa.OpIDiv
				if r.Intn(2) == 0 {
					op = isa.OpIMod
				}
				pc.Data = isa.DataOp{Op: op, A: operand(), B: isa.I(int32(r.Intn(4) - 1)), Dest: dest(fu)}
			default:
				pc.Data = isa.DataOp{Op: safeOps[r.Intn(len(safeOps))], A: operand(), B: operand(), Dest: dest(fu)}
			}
			if r.Intn(3) == 0 {
				pc.Sync = isa.Done
			}
			if addr == n-1 {
				pc.Ctrl = isa.Halt()
				p.Instrs[addr][fu] = pc
				continue
			}
			fwd := func() isa.Addr { return isa.Addr(addr + 1 + r.Intn(n-addr-1)) }
			// tgt occasionally points back at this address: a spin wait
			// that resolves when the condition flips, or runs into
			// livelock detection / the cycle limit.
			tgt := func() isa.Addr {
				if r.Intn(8) == 0 {
					return isa.Addr(addr)
				}
				return fwd()
			}
			ccIdx := func() uint8 { return uint8(r.Intn(numFU)) }
			mask := func() uint8 { return uint8(1 + r.Intn(255)) }
			switch r.Intn(12) {
			case 0, 1:
				pc.Ctrl = isa.Goto(fwd())
			case 2:
				pc.Ctrl = isa.Halt()
			case 3:
				pc.Ctrl = isa.IfCC(ccIdx(), fwd(), tgt())
			case 4:
				pc.Ctrl = isa.IfNotCC(ccIdx(), fwd(), tgt())
			case 5:
				pc.Ctrl = isa.IfSS(ccIdx(), fwd(), tgt())
			case 6:
				pc.Ctrl = isa.IfNotSS(ccIdx(), fwd(), tgt())
			case 7:
				pc.Ctrl = isa.IfAllSS(fwd(), tgt())
			case 8:
				pc.Ctrl = isa.IfAnySS(fwd(), tgt())
			case 9:
				pc.Ctrl = isa.IfAllSSMask(mask(), fwd(), tgt())
			case 10:
				pc.Ctrl = isa.IfAnySSMask(mask(), fwd(), tgt())
			default:
				pc.Ctrl = isa.Goto(fwd())
			}
			p.Instrs[addr][fu] = pc
		}
	}
	return p
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// runEngine executes prog on one engine with a deterministic memory and
// register image and captures everything observable.
func runEngine(t *testing.T, tag string, prog *isa.Program, cfg Config, engine EngineKind) (*Machine, *captureTracer, *mem.Shared, uint64, error) {
	t.Helper()
	memory := mem.NewShared(diffMemWords)
	for i := uint32(0); i < diffMemWords; i++ {
		memory.Poke(i, isa.WordFromInt(int32(i)*3-700))
	}
	tr := &captureTracer{}
	cfg.Engine = engine
	cfg.Memory = memory
	cfg.Tracer = tr
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatalf("%s: New(engine=%d): %v", tag, engine, err)
	}
	for i := uint8(0); i < 24; i++ {
		m.Regs().Poke(i, isa.WordFromInt(int32(i)*7-40))
	}
	cycles, runErr := m.Run()
	return m, tr, memory, cycles, runErr
}

// assertEnginesAgree runs prog on both engines and asserts bit-identical
// outcomes, including faulting runs.
func assertEnginesAgree(t *testing.T, tag string, prog *isa.Program, cfg Config) {
	t.Helper()
	fm, ftr, fmem, fcyc, ferr := runEngine(t, tag, prog, cfg, EngineFast)
	rm, rtr, rmem, rcyc, rerr := runEngine(t, tag, prog, cfg, EngineReference)

	if fcyc != rcyc {
		t.Fatalf("%s: cycle divergence: fast %d, reference %d (fast err %v, ref err %v)",
			tag, fcyc, rcyc, ferr, rerr)
	}
	if errString(ferr) != errString(rerr) {
		t.Fatalf("%s: error divergence:\nfast: %s\nref:  %s", tag, errString(ferr), errString(rerr))
	}
	if errString(fm.Err()) != errString(rm.Err()) {
		t.Fatalf("%s: latched error divergence:\nfast: %s\nref:  %s",
			tag, errString(fm.Err()), errString(rm.Err()))
	}
	if fm.Done() != rm.Done() {
		t.Fatalf("%s: done divergence: fast %v, reference %v", tag, fm.Done(), rm.Done())
	}
	if !reflect.DeepEqual(fm.Stats(), rm.Stats()) {
		t.Fatalf("%s: stats divergence:\nfast: %+v\nref:  %+v", tag, fm.Stats(), rm.Stats())
	}
	if fm.Regs().Stats() != rm.Regs().Stats() {
		t.Fatalf("%s: regfile stats divergence:\nfast: %+v\nref:  %+v",
			tag, fm.Regs().Stats(), rm.Regs().Stats())
	}
	if !fm.Partition().Equal(rm.Partition()) {
		t.Fatalf("%s: partition divergence: fast %v, reference %v", tag, fm.Partition(), rm.Partition())
	}
	for fu := 0; fu < prog.NumFU; fu++ {
		if fm.PC(fu) != rm.PC(fu) {
			t.Fatalf("%s: FU%d PC divergence: fast %d, reference %d", tag, fu, fm.PC(fu), rm.PC(fu))
		}
		if fm.CC(fu) != rm.CC(fu) {
			t.Fatalf("%s: FU%d CC divergence: fast %v, reference %v", tag, fu, fm.CC(fu), rm.CC(fu))
		}
	}
	if len(ftr.recs) != len(rtr.recs) {
		t.Fatalf("%s: trace length divergence: fast %d, reference %d", tag, len(ftr.recs), len(rtr.recs))
	}
	for i := range ftr.recs {
		if !reflect.DeepEqual(ftr.recs[i], rtr.recs[i]) {
			t.Fatalf("%s: trace divergence at cycle %d:\nfast: %+v\nref:  %+v",
				tag, i, ftr.recs[i], rtr.recs[i])
		}
	}
	for reg := 0; reg < isa.NumRegs; reg++ {
		if fm.Regs().Peek(uint8(reg)) != rm.Regs().Peek(uint8(reg)) {
			t.Fatalf("%s: r%d divergence: fast %d, reference %d",
				tag, reg, fm.Regs().Peek(uint8(reg)), rm.Regs().Peek(uint8(reg)))
		}
	}
	fl, fs := fmem.Counters()
	rl, rs := rmem.Counters()
	if fl != rl || fs != rs {
		t.Fatalf("%s: memory counter divergence: fast %d/%d, reference %d/%d", tag, fl, fs, rl, rs)
	}
	for a := uint32(0); a < diffMemWords; a++ {
		if fmem.Peek(a) != rmem.Peek(a) {
			t.Fatalf("%s: M(%d) divergence: fast %d, reference %d", tag, a, fmem.Peek(a), rmem.Peek(a))
		}
	}
}

func TestDifferentialFastVsReference(t *testing.T) {
	r := rand.New(rand.NewSource(1991))
	for iter := 0; iter < 400; iter++ {
		prog := randomXIMDProgram(r)
		if err := prog.Validate(); err != nil {
			t.Fatalf("iter %d: generated invalid program: %v", iter, err)
		}
		cfg := Config{
			MaxCycles:         300,
			TolerateConflicts: r.Intn(2) == 0,
			DetectLivelock:    r.Intn(2) == 0,
			RegisteredSS:      r.Intn(2) == 0,
		}
		assertEnginesAgree(t, fmt.Sprintf("iter %d (cfg %+v)", iter, cfg), prog, cfg)
	}
}

// FuzzEngineEquivalence is the open-ended variant of the differential
// test: the fuzzer picks the generator seed and the config bits.
func FuzzEngineEquivalence(f *testing.F) {
	for seed := int64(1); seed <= 12; seed++ {
		f.Add(seed, uint8(seed))
	}
	f.Fuzz(func(t *testing.T, seed int64, flags uint8) {
		r := rand.New(rand.NewSource(seed))
		prog := randomXIMDProgram(r)
		if err := prog.Validate(); err != nil {
			t.Skip()
		}
		cfg := Config{
			MaxCycles:         300,
			TolerateConflicts: flags&1 != 0,
			DetectLivelock:    flags&2 != 0,
			RegisteredSS:      flags&4 != 0,
		}
		assertEnginesAgree(t, fmt.Sprintf("seed %d flags %#x", seed, flags), prog, cfg)
	})
}
