package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ximd/internal/inject"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

// Differential testing under fault injection: the fast and reference
// engines interrogate the injector at the same architectural points, so
// any seeded combination of variable latency, transient faults, and
// hard FU failures must leave them bit-identical — cycles, error text,
// statistics (including stall/failed-cycle counters and bit flips),
// traces with the Stalled/Failed vectors, registers, and memory.

// randomInjectConfig draws an injection campaign with at least one
// surface enabled. Probabilities are kept small enough that most runs
// execute a meaningful number of cycles before any transient abort.
func randomInjectConfig(r *rand.Rand) inject.Config {
	cfg := inject.Config{Seed: r.Int63()}
	for !cfg.Enabled() {
		switch r.Intn(4) {
		case 0: // latency only on this draw; loop if nothing else lands
		case 1:
			cfg.Latency = inject.LatencyModel{Kind: inject.LatencyFixed, Fixed: uint32(1 + r.Intn(4))}
		case 2:
			lo := uint32(r.Intn(3))
			cfg.Latency = inject.LatencyModel{
				Kind: inject.LatencyUniform, Min: lo, Max: lo + uint32(r.Intn(7)),
			}
		case 3:
			cfg.Latency = inject.LatencyModel{
				Kind: inject.LatencyBanked, BankBits: uint8(1 + r.Intn(4)),
				Hot: uint32(r.Intn(2)), Cold: uint32(2 + r.Intn(6)),
			}
		}
		if r.Intn(2) == 0 {
			cfg.Transient.RegPortDrop = float64(r.Intn(3)) * 0.004
			cfg.Transient.MemNAK = float64(r.Intn(3)) * 0.004
			cfg.Transient.BitFlip = float64(r.Intn(3)) * 0.02
		}
		if r.Intn(3) == 0 {
			for i, n := 0, 1+r.Intn(2); i < n; i++ {
				cfg.FUFailures = append(cfg.FUFailures, inject.FUFailure{
					FU: r.Intn(isa.NumFU), Cycle: uint64(r.Intn(80)),
				})
			}
		}
	}
	return cfg
}

// TestDifferentialInjection runs well over 200 seeded injection
// campaigns (the PR's acceptance floor) against random programs and
// holds both engines to identical outcomes.
func TestDifferentialInjection(t *testing.T) {
	r := rand.New(rand.NewSource(20260805))
	for iter := 0; iter < 240; iter++ {
		prog := randomXIMDProgram(r)
		if err := prog.Validate(); err != nil {
			t.Fatalf("iter %d: generated invalid program: %v", iter, err)
		}
		icfg := randomInjectConfig(r)
		inj, err := inject.New(icfg)
		if err != nil {
			t.Fatalf("iter %d: invalid injection config %+v: %v", iter, icfg, err)
		}
		cfg := Config{
			MaxCycles:         400,
			TolerateConflicts: r.Intn(2) == 0,
			DetectLivelock:    r.Intn(2) == 0,
			RegisteredSS:      r.Intn(2) == 0,
			Inject:            inj,
		}
		assertEnginesAgree(t, fmt.Sprintf("iter %d (inject %s)", iter, inj), prog, cfg)
	}
}

// TestInjectionDisabledIdentical asserts the zero-injection guarantee:
// a machine built with a disabled injector behaves byte-identically to
// one built with no injector at all.
func TestInjectionDisabledIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for iter := 0; iter < 40; iter++ {
		prog := randomXIMDProgram(r)
		if err := prog.Validate(); err != nil {
			t.Fatalf("iter %d: invalid program: %v", iter, err)
		}
		base := Config{MaxCycles: 300, DetectLivelock: iter%2 == 0}
		withOff := base
		withOff.Inject = inject.MustNew(inject.Config{Seed: 99})
		for _, engine := range []EngineKind{EngineFast, EngineReference} {
			_, atr, amem, acyc, aerr := runEngine(t, "plain", prog, base, engine)
			_, btr, bmem, bcyc, berr := runEngine(t, "disabled-inject", prog, withOff, engine)
			if acyc != bcyc || errString(aerr) != errString(berr) {
				t.Fatalf("iter %d engine %d: disabled injector changed outcome: %d/%v vs %d/%v",
					iter, engine, acyc, aerr, bcyc, berr)
			}
			if len(atr.recs) != len(btr.recs) {
				t.Fatalf("iter %d engine %d: trace length changed", iter, engine)
			}
			for a := uint32(0); a < diffMemWords; a++ {
				if amem.Peek(a) != bmem.Peek(a) {
					t.Fatalf("iter %d engine %d: M(%d) changed", iter, engine, a)
				}
			}
		}
	}
}

// snapshotFinal captures the observable end state of a finished run.
type snapshotFinal struct {
	cycles uint64
	err    string
	regs   [isa.NumRegs]isa.Word
	mem    [diffMemWords]isa.Word
}

func finish(m *Machine, memory *mem.Shared) snapshotFinal {
	cycles, err := m.Run()
	f := snapshotFinal{cycles: cycles, err: errString(err)}
	for i := 0; i < isa.NumRegs; i++ {
		f.regs[i] = m.Regs().Peek(uint8(i))
	}
	for a := uint32(0); a < diffMemWords; a++ {
		f.mem[a] = memory.Peek(a)
	}
	return f
}

// TestSnapshotRestoreDeterminism takes a mid-run checkpoint under
// injection, lets the run finish, then rewinds and replays: the replay
// must reproduce the first completion exactly. The snapshot is also
// restored onto a fresh machine of the *other* engine, which must reach
// the same end state (snapshots are engine-portable).
func TestSnapshotRestoreDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for iter := 0; iter < 60; iter++ {
		prog := randomXIMDProgram(r)
		if err := prog.Validate(); err != nil {
			t.Fatalf("iter %d: invalid program: %v", iter, err)
		}
		inj := inject.MustNew(randomInjectConfig(r))
		build := func(engine EngineKind) (*Machine, *mem.Shared) {
			memory := mem.NewShared(diffMemWords)
			for i := uint32(0); i < diffMemWords; i++ {
				memory.Poke(i, isa.WordFromInt(int32(i)*3-700))
			}
			m, err := New(prog, Config{Engine: engine, Memory: memory, MaxCycles: 400, Inject: inj})
			if err != nil {
				t.Fatalf("iter %d: New: %v", iter, err)
			}
			for i := uint8(0); i < 24; i++ {
				m.Regs().Poke(i, isa.WordFromInt(int32(i)*7-40))
			}
			return m, memory
		}

		m, memory := build(EngineFast)
		for i := 0; i < 5+r.Intn(20); i++ {
			if running, _ := m.Step(); !running {
				break
			}
		}
		snap, err := m.Snapshot()
		if err != nil {
			t.Fatalf("iter %d: Snapshot: %v", iter, err)
		}
		first := finish(m, memory)

		if err := m.Restore(snap); err != nil {
			t.Fatalf("iter %d: Restore: %v", iter, err)
		}
		if m.Cycle() != snap.Cycle() {
			t.Fatalf("iter %d: restored cycle %d, snapshot %d", iter, m.Cycle(), snap.Cycle())
		}
		if replay := finish(m, memory); replay != first {
			t.Fatalf("iter %d: replay diverged from first completion:\nfirst:  %d %s\nreplay: %d %s",
				iter, first.cycles, first.err, replay.cycles, replay.err)
		}

		other, otherMem := build(EngineReference)
		if err := other.Restore(snap); err != nil {
			t.Fatalf("iter %d: cross-engine Restore: %v", iter, err)
		}
		if cross := finish(other, otherMem); cross != first {
			t.Fatalf("iter %d: cross-engine replay diverged:\nfast: %d %s\nref:  %d %s",
				iter, first.cycles, first.err, cross.cycles, cross.err)
		}
	}
}

// TestSnapshotRetryRedraw is the checkpoint-retry contract: after a
// transient abort, restoring the pre-fault snapshot and bumping the
// injector attempt redraws the transient stream; with a high NAK
// probability the first run faults, and the attempt salt makes a later
// attempt (usually the next) draw differently. Latency draws must NOT
// move between attempts.
func TestSnapshotRetryRedraw(t *testing.T) {
	inj := inject.MustNew(inject.Config{
		Seed:      31,
		Latency:   inject.LatencyModel{Kind: inject.LatencyUniform, Min: 0, Max: 3},
		Transient: inject.Transient{MemNAK: 0.9},
	})
	if lat0 := inj.LoadLatency(7, 2, 123); true {
		inj.NextAttempt()
		if inj.LoadLatency(7, 2, 123) != lat0 {
			t.Fatal("latency draw moved with the attempt counter")
		}
	}
	nak0 := inj.MemNAK(7, 2, 123)
	changed := false
	for i := 0; i < 64 && !changed; i++ {
		inj.NextAttempt()
		changed = inj.MemNAK(7, 2, 123) != nak0
	}
	if !changed {
		t.Fatal("NAK draw never redrew across 64 attempts")
	}
}
