package core

import (
	"ximd/internal/isa"
)

// This file implements the pre-decode layer of the fast execution engine.
// At machine construction the whole program is decoded once into a flat
// table of compact micro-ops — operand kinds resolved, the opcode's
// structural class baked into flag bits, and branch conditions compiled
// to bitmask compares over packed CC/SS vectors — so the per-cycle
// interpreter loop never re-derives any static property of a parcel.
// The VLIW baseline (internal/vliw) reuses DecodedOp and CompiledCond
// for its own decoded instruction table.

// DecodedOp flag bits. The opcode's structural class (isa.ClassOf) and
// the operand kinds are resolved at decode time into these flags so the
// execution loop tests single bits instead of re-classifying.
const (
	flagReadsA uint8 = 1 << iota
	flagReadsB
	flagWritesReg
	flagWritesCC
	flagAImm // operand A is an immediate (AImm), else a register (AReg)
	flagBImm // operand B is an immediate (BImm), else a register (BReg)
	flagNop  // the operation is an explicit nop (statistics fast path)
)

// DecodedOp is the pre-decoded form of one data-path operation: the
// opcode, resolved operand sources, and the structural class as flags.
type DecodedOp struct {
	Flags      uint8
	Op         isa.Opcode
	AReg, BReg uint8
	Dest       uint8
	AImm, BImm isa.Word
}

// ReadsA reports whether the operation reads source operand A.
func (u *DecodedOp) ReadsA() bool { return u.Flags&flagReadsA != 0 }

// ReadsB reports whether the operation reads source operand B.
func (u *DecodedOp) ReadsB() bool { return u.Flags&flagReadsB != 0 }

// WritesReg reports whether the operation writes register Dest.
func (u *DecodedOp) WritesReg() bool { return u.Flags&flagWritesReg != 0 }

// WritesCC reports whether the operation writes the FU's condition code.
func (u *DecodedOp) WritesCC() bool { return u.Flags&flagWritesCC != 0 }

// AIsImm reports whether operand A resolved to an immediate.
func (u *DecodedOp) AIsImm() bool { return u.Flags&flagAImm != 0 }

// BIsImm reports whether operand B resolved to an immediate.
func (u *DecodedOp) BIsImm() bool { return u.Flags&flagBImm != 0 }

// IsNop reports whether the operation is an explicit nop.
func (u *DecodedOp) IsNop() bool { return u.Flags&flagNop != 0 }

// AFromReg reports whether operand A is read from register AReg. When
// false, AImm supplies the operand value — the decoded immediate, or
// zero for operands the class does not read.
func (u *DecodedOp) AFromReg() bool { return u.Flags&(flagReadsA|flagAImm) == flagReadsA }

// BFromReg reports whether operand B is read from register BReg, like
// AFromReg.
func (u *DecodedOp) BFromReg() bool { return u.Flags&(flagReadsB|flagBImm) == flagReadsB }

// DecodeDataOp resolves a data operation into its flat decoded form.
func DecodeDataOp(d isa.DataOp) DecodedOp {
	u := DecodedOp{Op: d.Op, Dest: d.Dest}
	cl := isa.ClassOf(d.Op)
	if cl.ReadsA() {
		u.Flags |= flagReadsA
		if d.A.Kind == isa.Imm {
			u.Flags |= flagAImm
			u.AImm = d.A.Imm
		} else {
			u.AReg = d.A.Reg
		}
	}
	if cl.ReadsB() {
		u.Flags |= flagReadsB
		if d.B.Kind == isa.Imm {
			u.Flags |= flagBImm
			u.BImm = d.B.Imm
		} else {
			u.BReg = d.B.Reg
		}
	}
	if cl.WritesReg() {
		u.Flags |= flagWritesReg
	}
	if cl.WritesCC() {
		u.Flags |= flagWritesCC
	}
	if d.Op == isa.OpNop {
		u.Flags |= flagNop
	}
	return u
}

// CompiledCond is a branch condition compiled to a bitmask compare over
// the packed condition-code and synchronization-signal vectors (bit i of
// cc is CC_i == TRUE, bit i of ss is SS_i == DONE). Every condition kind
// of isa.EvalCond reduces to one of two forms:
//
//	all-form: taken ⇔ (src ^ Xor) & Mask == Mask
//	any-form: taken ⇔ src & Mask != 0
//
// so evaluation is two AND/XOR ops instead of a per-FU loop. Single-bit
// conditions (CC/SS and their negations) are the all-form with a
// one-bit mask; negations set Xor to invert the tested bit.
type CompiledCond struct {
	SS   bool // source is the SS vector (else the CC vector)
	Any  bool // any-form (mask test) instead of all-form (masked equality)
	Mask uint8
	Xor  uint8
}

// Eval evaluates the compiled condition over the packed vectors.
func (c CompiledCond) Eval(cc, ss uint8) bool {
	src := cc
	if c.SS {
		src = ss
	}
	if c.Any {
		return src&c.Mask != 0
	}
	return (src^c.Xor)&c.Mask == c.Mask
}

// CompileCond compiles the condition of a CtrlCond operation for a
// machine with numFU functional units. The result is equivalent to
// isa.EvalCond over the same state: ALL/ANY reductions are bounded to
// the machine's FUs by masking with the full-machine mask, matching the
// reference evaluator's numFU loop bound.
func CompileCond(c isa.CtrlOp, numFU int) CompiledCond {
	full := uint8((1 << numFU) - 1)
	bit := uint8(1) << c.Idx
	switch c.Cond {
	case isa.CondCC:
		return CompiledCond{Mask: bit}
	case isa.CondNotCC:
		return CompiledCond{Mask: bit, Xor: bit}
	case isa.CondSS:
		return CompiledCond{SS: true, Mask: bit}
	case isa.CondNotSS:
		return CompiledCond{SS: true, Mask: bit, Xor: bit}
	case isa.CondAllSS:
		return CompiledCond{SS: true, Mask: full}
	case isa.CondAnySS:
		return CompiledCond{SS: true, Any: true, Mask: full}
	case isa.CondAllSSMask:
		return CompiledCond{SS: true, Mask: c.Mask & full}
	case isa.CondAnySSMask:
		return CompiledCond{SS: true, Any: true, Mask: c.Mask & full}
	}
	// Undefined condition kinds never take the branch, like isa.EvalCond:
	// the any-form with an empty mask is unconditionally false.
	return CompiledCond{Any: true, Mask: 0}
}

// ctrlTag packs the semantically meaningful fields of a control
// operation into one integer such that ctrlTag(a) == ctrlTag(b) exactly
// when a.Equal(b): fields the kind (or condition) does not use are left
// out, so the tag is implicitly normalized. The partition tracker keys
// its split and merge classes on these tags — one integer compare
// instead of a multi-word struct compare.
//
// Layout: bits 0..15 T1, 16..31 T2, 32..39 Idx or Mask, 40..42 Cond,
// 43..44 Kind. Bits 45..63 stay clear for the tracker's split-key
// packing (program counter and SSET id).
func ctrlTag(c isa.CtrlOp) uint64 {
	kind := uint64(c.Kind) << 43
	switch c.Kind {
	case isa.CtrlGoto:
		return kind | uint64(c.T1)
	case isa.CtrlCond:
		tag := kind | uint64(c.Cond)<<40 | uint64(c.T1) | uint64(c.T2)<<16
		switch c.Cond {
		case isa.CondCC, isa.CondNotCC, isa.CondSS, isa.CondNotSS:
			tag |= uint64(c.Idx) << 32
		case isa.CondAllSSMask, isa.CondAnySSMask:
			tag |= uint64(c.Mask) << 32
		}
		return tag
	default: // CtrlHalt and undefined kinds carry no operands
		return kind
	}
}

// stallTag is the transition tag of an FU spending a cycle stalled on an
// in-flight load. Kind value 3 is unused by isa.CtrlKind, so a stall can
// never collide with a real control operation's tag. The program counter
// is folded in so that only FUs stalled at the same address are treated
// as one reconvergence class (mirroring the unconditional-merge rule);
// distinct stalled streams stay split.
func stallTag(pc isa.Addr) uint64 { return uint64(3)<<43 | uint64(pc) }

// uop meta bits: the control kind in the low two bits (isa.CtrlKind is
// 0..2) plus the three per-parcel booleans, packed into one byte so the
// whole uop fits 32 bytes — two per cache line (enforced by
// TestUopSize).
const (
	metaKindMask uint8 = 0b11
	metaSyncDone uint8 = 1 << 2 // parcel drives SS = DONE
	metaSyncCond uint8 = 1 << 3 // branch condition reads the SS network
	metaTrap     uint8 = 1 << 4 // unoccupied slot; executing it is an error
)

// uop is one decoded instruction parcel of the XIMD fast engine: the
// decoded data operation plus the compiled control operation and sync
// signal. The table is indexed [addr*numFU + fu]. The data-operation
// fields mirror DecodedOp but are laid out flat (widest first, meta
// booleans packed into one byte) so the struct is exactly 32 bytes.
type uop struct {
	tag        uint64 // ctrlTag of the parcel's control op (tracker key)
	AImm, BImm isa.Word
	ctrl       CompiledCond
	t1, t2     isa.Addr
	Flags      uint8
	Op         isa.Opcode
	AReg, BReg uint8
	Dest       uint8
	meta       uint8
}

// kind returns the parcel's control kind.
func (u *uop) kind() isa.CtrlKind { return isa.CtrlKind(u.meta & metaKindMask) }

// syncDone reports whether the parcel drives SS = DONE.
func (u *uop) syncDone() bool { return u.meta&metaSyncDone != 0 }

// syncCond reports whether the branch condition reads the SS network
// (the profiler's sync-wait class).
func (u *uop) syncCond() bool { return u.meta&metaSyncCond != 0 }

// trap reports an unoccupied slot; executing it is a simulation error.
func (u *uop) trap() bool { return u.meta&metaTrap != 0 }

// data reassembles the parcel's data operation as a DecodedOp (the form
// shared with the VLIW decoder and the superop fuser).
func (u *uop) data() DecodedOp {
	return DecodedOp{Flags: u.Flags, Op: u.Op, AReg: u.AReg, BReg: u.BReg,
		Dest: u.Dest, AImm: u.AImm, BImm: u.BImm}
}

// decodeProgram builds the flat micro-op table for a validated program.
func decodeProgram(p *isa.Program) []uop {
	n := p.NumFU
	code := make([]uop, p.Len()*n)
	for addr := 0; addr < p.Len(); addr++ {
		for fu := 0; fu < n; fu++ {
			parcel := p.Instrs[addr][fu]
			u := &code[addr*n+fu]
			if parcel.Trap {
				u.meta = metaTrap
				continue
			}
			d := DecodeDataOp(parcel.Data)
			u.Flags, u.Op = d.Flags, d.Op
			u.AReg, u.BReg, u.Dest = d.AReg, d.BReg, d.Dest
			u.AImm, u.BImm = d.AImm, d.BImm
			u.meta = uint8(parcel.Ctrl.Kind) & metaKindMask
			u.t1, u.t2 = parcel.Ctrl.T1, parcel.Ctrl.T2
			if parcel.Ctrl.Kind == isa.CtrlCond {
				u.ctrl = CompileCond(parcel.Ctrl, n)
				if parcel.Ctrl.Cond.ReadsSS() {
					u.meta |= metaSyncCond
				}
			}
			u.tag = ctrlTag(parcel.Ctrl)
			if parcel.Sync == isa.Done {
				u.meta |= metaSyncDone
			}
		}
	}
	return code
}
