package core

import (
	"testing"

	"ximd/internal/isa"
	"ximd/internal/mem"
)

// allocProgram is an endless loop exercising the full datapath — ALU,
// compare, load, store, nop, sync traffic — so the steady-state
// allocation test covers every per-cycle path of Step.
func allocProgram() *isa.Program {
	p := &isa.Program{NumFU: isa.NumFU, Instrs: make([]isa.Instruction, 2)}
	for addr := 0; addr < 2; addr++ {
		for fu := 0; fu < isa.NumFU; fu++ {
			var pc isa.Parcel
			switch fu % 5 {
			case 0:
				pc.Data = isa.DataOp{Op: isa.OpIAdd, A: isa.R(uint8(fu)), B: isa.I(1), Dest: uint8(fu)}
			case 1:
				pc.Data = isa.DataOp{Op: isa.OpLoad, A: isa.I(int32(10 + fu)), B: isa.I(0), Dest: uint8(fu)}
			case 2:
				pc.Data = isa.DataOp{Op: isa.OpStore, A: isa.R(uint8(fu)), B: isa.I(int32(40 + fu))}
			case 3:
				pc.Data = isa.DataOp{Op: isa.OpLt, A: isa.R(uint8(fu)), B: isa.I(50)}
			default:
				pc.Data = isa.Nop
			}
			pc.Ctrl = isa.Goto(isa.Addr(1 - addr))
			if fu == 2 {
				pc.Sync = isa.Done
			}
			p.Instrs[addr][fu] = pc
		}
	}
	return p
}

// testStepAllocs asserts that an error-free steady-state Step allocates
// nothing, after a short warm-up that lets the staged-write and pending-
// store buffers reach capacity.
func testStepAllocs(t *testing.T, engine EngineKind) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	m, err := New(allocProgram(), Config{Engine: engine, Memory: mem.NewShared(1024), MaxCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(512, func() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("engine %d: %v allocs per steady-state cycle, want 0", engine, avg)
	}
}

func TestStepAllocsFast(t *testing.T)      { testStepAllocs(t, EngineFast) }
func TestStepAllocsReference(t *testing.T) { testStepAllocs(t, EngineReference) }
