package core

import (
	"testing"

	"ximd/internal/isa"
	"ximd/internal/mem"
)

// TestDistributedMemoryMachine runs an XIMD program over the prototype's
// distributed memory (Section 4.3: 1MB per FU): each FU computes into its
// own bank at the same addresses without conflicting, communicating only
// through the global register file — the prototype's execution model.
func TestDistributedMemoryMachine(t *testing.T) {
	dist := mem.NewDistributed(4, 1024)
	for fu := 0; fu < 4; fu++ {
		dist.Poke(fu, 10, isa.WordFromInt(int32(100+fu)))
	}
	b := isa.NewBuilder(4)
	for fu := 0; fu < 4; fu++ {
		reg := uint8(1 + fu)
		// Each FU: load its bank's word 10, scale by its own factor,
		// store to word 20 of its own bank, leave a copy in a register.
		b.Set(0, fu, par(isa.DataOp{Op: isa.OpLoad, A: isa.I(10), B: isa.I(0), Dest: reg}, isa.Goto(1)))
		b.Set(1, fu, par(isa.DataOp{Op: isa.OpIMult, A: isa.R(reg), B: isa.I(int32(fu + 2)), Dest: reg}, isa.Goto(2)))
		b.Set(2, fu, par(isa.DataOp{Op: isa.OpStore, A: isa.R(reg), B: isa.I(20)}, isa.Goto(3)))
		b.Set(3, fu, isa.HaltParcel)
	}
	m, err := New(b.MustBuild(), Config{Memory: dist})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for fu := 0; fu < 4; fu++ {
		want := int32(100+fu) * int32(fu+2)
		if got := dist.Peek(fu, 20).Int(); got != want {
			t.Errorf("bank %d word 20 = %d, want %d", fu, got, want)
		}
		// The same-address stores in the same cycle were bank-private:
		// no conflict error occurred (Run succeeded) and values differ.
	}
	// Cross-bank isolation: word 20 of bank 0 is not visible at bank 1.
	if dist.Peek(0, 20) == dist.Peek(1, 20) {
		t.Error("banks are not isolated")
	}
}

// TestSharedMemorySameStoreConflicts is the contrast: on the research
// model's shared memory the identical program faults on the same-cycle
// stores to one address.
func TestSharedMemorySameStoreConflicts(t *testing.T) {
	b := isa.NewBuilder(2)
	for fu := 0; fu < 2; fu++ {
		b.Set(0, fu, par(isa.DataOp{Op: isa.OpStore, A: isa.I(int32(fu)), B: isa.I(20)}, isa.Goto(1)))
		b.Set(1, fu, isa.HaltParcel)
	}
	m, err := New(b.MustBuild(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("same-cycle same-address stores did not conflict on shared memory")
	}
}
