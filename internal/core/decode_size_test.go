package core

import (
	"testing"
	"unsafe"
)

// TestUopSize pins the micro-op table entry at 32 bytes — two uops per
// 64-byte cache line. The fields are ordered widest-first with the meta
// booleans packed into one byte precisely to hit this size; growing the
// struct (or letting padding creep back in) doubles the table's cache
// footprint, so any layout change must keep this invariant or
// consciously rewrite it.
func TestUopSize(t *testing.T) {
	if got := unsafe.Sizeof(uop{}); got != 32 {
		t.Fatalf("unsafe.Sizeof(uop{}) = %d, want 32", got)
	}
}
