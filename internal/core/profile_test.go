package core

import (
	"math/rand"
	"testing"

	"ximd/internal/inject"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

// checkAttribution asserts the profiler's stall-attribution invariant on
// a finished machine: every executed cycle put each FU in exactly one
// class, so busy + nops + halted + mem-stalled + failed == cycles×NumFU,
// and the sync-wait counter never exceeds the nop class it refines.
func checkAttribution(t *testing.T, tag string, s Stats, numFU int) {
	t.Helper()
	if got, want := s.AttributedFUCycles(), s.Cycles*uint64(numFU); got != want {
		t.Errorf("%s: attributed FU-cycles = %d, want cycles×NumFU = %d (stats %+v)", tag, got, want, s)
	}
	for fu := 0; fu < numFU; fu++ {
		if s.SyncWaitCycles[fu] > s.Nops[fu] {
			t.Errorf("%s: FU%d sync-wait %d exceeds nops %d", tag, fu, s.SyncWaitCycles[fu], s.Nops[fu])
		}
	}
}

// TestStallAttributionInvariant holds the attribution invariant across
// the random-program corpus on both engines, for clean runs, faulting
// runs, and seeded injection campaigns alike: whatever way a run ends,
// the counted cycles are fully attributed.
func TestStallAttributionInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(510))
	for iter := 0; iter < 300; iter++ {
		prog := randomXIMDProgram(r)
		if err := prog.Validate(); err != nil {
			t.Fatalf("iter %d: invalid program: %v", iter, err)
		}
		cfg := Config{
			MaxCycles:         300,
			TolerateConflicts: r.Intn(2) == 0,
			DetectLivelock:    r.Intn(2) == 0,
		}
		if iter%2 == 1 {
			cfg.Inject = inject.MustNew(randomInjectConfig(r))
			cfg.MaxCycles = 400
		}
		for _, engine := range []EngineKind{EngineFast, EngineReference} {
			memory := mem.NewShared(diffMemWords)
			ecfg := cfg
			ecfg.Engine = engine
			ecfg.Memory = memory
			m, err := New(prog, ecfg)
			if err != nil {
				t.Fatalf("iter %d: New: %v", iter, err)
			}
			m.Run() // faulting runs are part of the corpus
			checkAttribution(t, tagFor(iter, engine), m.Stats(), prog.NumFU)
		}
	}
}

func tagFor(iter int, engine EngineKind) string {
	if engine == EngineFast {
		return "iter " + itoa(iter) + " fast"
	}
	return "iter " + itoa(iter) + " reference"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestSyncWaitAttribution pins the sync-wait classification on a
// two-stream handshake: FU1 spins on `if ss0` with a nop data op until
// FU0 signals DONE, so every spin cycle must land in SyncWaitCycles.
func TestSyncWaitAttribution(t *testing.T) {
	// FU0: three adds, then signals DONE and halts.
	// FU1: spins at address 0 on SS0 (nop + if ss0), then halts.
	p := &isa.Program{NumFU: 2, Instrs: make([]isa.Instruction, 4)}
	add := isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(2), Dest: 64}
	for a := 0; a < 3; a++ {
		p.Instrs[a][0] = isa.Parcel{Data: add, Ctrl: isa.Goto(isa.Addr(a + 1))}
		p.Instrs[a][1] = isa.Parcel{Data: isa.Nop, Ctrl: isa.IfSS(0, 3, isa.Addr(a))}
	}
	p.Instrs[3][0] = isa.Parcel{Data: isa.Nop, Sync: isa.Done, Ctrl: isa.Halt()}
	p.Instrs[3][1] = isa.Parcel{Data: isa.Nop, Ctrl: isa.Halt()}

	for _, engine := range []EngineKind{EngineFast, EngineReference} {
		m, err := New(p, Config{Engine: engine, Memory: mem.NewShared(64), MaxCycles: 100})
		if err != nil {
			t.Fatalf("engine %d: New: %v", engine, err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("engine %d: Run: %v", engine, err)
		}
		s := m.Stats()
		// FU1 spends cycles 0..3 spinning on SS0 (the cycle the condition
		// finally holds still evaluates SS), then halts at address 3.
		if s.SyncWaitCycles[1] != 4 {
			t.Errorf("engine %d: FU1 sync-wait = %d, want 4 (stats %+v)", engine, s.SyncWaitCycles[1], s)
		}
		if s.SyncWaitCycles[0] != 0 {
			t.Errorf("engine %d: FU0 sync-wait = %d, want 0", engine, s.SyncWaitCycles[0])
		}
		checkAttribution(t, "handshake", s, 2)
	}
}

// TestPortConflictAttribution pins the per-FU tolerated-conflict view:
// under TolerateConflicts, the losing FU of a same-cycle register write
// conflict is charged a port conflict.
func TestPortConflictAttribution(t *testing.T) {
	p := &isa.Program{NumFU: 2, Instrs: make([]isa.Instruction, 2)}
	w := func(v int32) isa.DataOp { return isa.DataOp{Op: isa.OpIAdd, A: isa.I(v), B: isa.I(0), Dest: 5} }
	p.Instrs[0][0] = isa.Parcel{Data: w(1), Ctrl: isa.Goto(1)}
	p.Instrs[0][1] = isa.Parcel{Data: w(2), Ctrl: isa.Goto(1)}
	p.Instrs[1][0] = isa.Parcel{Data: isa.Nop, Ctrl: isa.Halt()}
	p.Instrs[1][1] = isa.Parcel{Data: isa.Nop, Ctrl: isa.Halt()}

	for _, engine := range []EngineKind{EngineFast, EngineReference} {
		m, err := New(p, Config{Engine: engine, Memory: mem.NewShared(64), MaxCycles: 10, TolerateConflicts: true})
		if err != nil {
			t.Fatalf("engine %d: New: %v", engine, err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("engine %d: Run: %v", engine, err)
		}
		s := m.Stats()
		if s.RegConflicts != 1 {
			t.Fatalf("engine %d: RegConflicts = %d, want 1", engine, s.RegConflicts)
		}
		if s.PortConflicts[0]+s.PortConflicts[1] != 1 {
			t.Errorf("engine %d: per-FU port conflicts %v, want exactly one", engine, s.PortConflicts)
		}
	}
}
