package core

import (
	"errors"
	"testing"

	"ximd/internal/inject"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

// Contract tests for the error taxonomy: every sentinel must match with
// errors.Is through the SimError wrapper Run returns, and errors.As
// must recover the *SimError carrying cycle and FU attribution.

// sentinelRun builds a single/multi-FU machine, runs it, and returns
// the error.
func sentinelRun(t *testing.T, prog *isa.Program, cfg Config) error {
	t.Helper()
	if cfg.Memory == nil {
		cfg.Memory = mem.NewShared(256)
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 100
	}
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, runErr := m.Run()
	return runErr
}

func spinProgram() *isa.Program {
	p := &isa.Program{NumFU: 1, Instrs: make([]isa.Instruction, 1)}
	p.Instrs[0][0] = isa.Parcel{Data: isa.Nop, Ctrl: isa.Goto(0)}
	return p
}

func TestSentinelContracts(t *testing.T) {
	cases := []struct {
		name     string
		sentinel error
		err      error
		wantFU   int
	}{
		{
			name:     "ErrMaxCycles",
			sentinel: ErrMaxCycles,
			err:      sentinelRun(t, spinProgram(), Config{MaxCycles: 7}),
			wantFU:   -1,
		},
		{
			name:     "ErrLivelock",
			sentinel: ErrLivelock,
			err:      sentinelRun(t, spinProgram(), Config{DetectLivelock: true}),
			wantFU:   -1,
		},
		{
			name:     "ErrTransient",
			sentinel: ErrTransient,
			err: func() error {
				p := &isa.Program{NumFU: 1, Instrs: make([]isa.Instruction, 1)}
				p.Instrs[0][0] = isa.Parcel{
					Data: isa.DataOp{Op: isa.OpIAdd, A: isa.R(1), B: isa.I(1), Dest: 2},
					Ctrl: isa.Halt(),
				}
				inj := inject.MustNew(inject.Config{Transient: inject.Transient{RegPortDrop: 1}})
				return sentinelRun(t, p, Config{Inject: inj})
			}(),
			wantFU: 0,
		},
		{
			name:     "ErrFUFailed",
			sentinel: ErrFUFailed,
			err: func() error {
				p := &isa.Program{NumFU: 2, Instrs: make([]isa.Instruction, 1)}
				p.Instrs[0][0] = isa.Parcel{Data: isa.Nop, Ctrl: isa.Goto(0)}
				p.Instrs[0][1] = isa.Parcel{Data: isa.Nop, Ctrl: isa.Halt()}
				inj := inject.MustNew(inject.Config{FUFailures: []inject.FUFailure{{FU: 0, Cycle: 0}}})
				return sentinelRun(t, p, Config{Inject: inj})
			}(),
			wantFU: 0,
		},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Fatalf("%s: run succeeded, expected a fault", tc.name)
		}
		if !errors.Is(tc.err, tc.sentinel) {
			t.Errorf("%s: errors.Is failed through wrapper: %v", tc.name, tc.err)
		}
		var se *SimError
		if !errors.As(tc.err, &se) {
			t.Errorf("%s: errors.As(*SimError) failed: %v", tc.name, tc.err)
			continue
		}
		if se.FU != tc.wantFU {
			t.Errorf("%s: SimError.FU = %d, want %d (%v)", tc.name, se.FU, tc.wantFU, tc.err)
		}
		// Each sentinel must match only itself.
		for _, other := range cases {
			if other.sentinel != tc.sentinel && errors.Is(tc.err, other.sentinel) {
				t.Errorf("%s: also matches %s", tc.name, other.name)
			}
		}
	}
}

// TestDegradedCompletion pins the XIMD graceful-degradation contract: a
// hard FU failure lets the surviving streams run to completion — their
// memory results land — and only then does Run report the failure.
func TestDegradedCompletion(t *testing.T) {
	p := &isa.Program{NumFU: 2, Instrs: make([]isa.Instruction, 3)}
	// FU0 dies at cycle 0; its program would spin forever.
	p.Instrs[0][0] = isa.Parcel{Data: isa.Nop, Ctrl: isa.Goto(0)}
	p.Instrs[1][0] = isa.Parcel{Data: isa.Nop, Ctrl: isa.Goto(1)}
	p.Instrs[2][0] = isa.Parcel{Data: isa.Nop, Ctrl: isa.Goto(2)}
	// FU1 computes and stores a result, then halts.
	p.Instrs[0][1] = isa.Parcel{
		Data: isa.DataOp{Op: isa.OpIAdd, A: isa.I(40), B: isa.I(2), Dest: 10},
		Ctrl: isa.Goto(1),
	}
	p.Instrs[1][1] = isa.Parcel{
		Data: isa.DataOp{Op: isa.OpStore, A: isa.R(10), B: isa.I(50)},
		Ctrl: isa.Goto(2),
	}
	p.Instrs[2][1] = isa.Parcel{Data: isa.Nop, Ctrl: isa.Halt()}

	inj := inject.MustNew(inject.Config{FUFailures: []inject.FUFailure{{FU: 0, Cycle: 0}}})
	for _, engine := range []EngineKind{EngineFast, EngineReference} {
		memory := mem.NewShared(256)
		m, err := New(p, Config{Engine: engine, Memory: memory, MaxCycles: 100, Inject: inj})
		if err != nil {
			t.Fatal(err)
		}
		_, runErr := m.Run()
		if !errors.Is(runErr, ErrFUFailed) {
			t.Fatalf("engine %d: err = %v, want ErrFUFailed", engine, runErr)
		}
		if got := memory.Peek(50); got.Int() != 42 {
			t.Fatalf("engine %d: M(50) = %d, want 42 (surviving stream's result)", engine, got.Int())
		}
		if !m.HardFailed(0) || m.HardFailed(1) {
			t.Fatalf("engine %d: HardFailed = %v/%v, want true/false",
				engine, m.HardFailed(0), m.HardFailed(1))
		}
		if st := m.Stats(); st.FailedCycles[0] == 0 {
			t.Fatalf("engine %d: no failed cycles counted for FU0", engine)
		}
	}
}
