package core

import "ximd/internal/isa"

// This file is the superop fuser: the static-analysis half of the fused
// execution engine (fastrun.go holds the runtime half). At predecode it
// finds maximal straight-line runs of "linear" instruction words and
// compiles each into a compact superop form — the executing slots as a
// dense op list plus per-word accounting totals — so the runtime can
// execute a whole run in one tight loop and reconstruct every
// observable counter at run exit instead of per cycle.
//
// A word at address a is linear when every FU slot satisfies all of:
//
//   - the slot is occupied (no trap parcels);
//   - its control operation is an unconditional goto to a+1 — no
//     conditional branches (whose CC/SS reads are cycle-sensitive), no
//     halts, and no control divergence of any kind;
//   - no two register-writing slots (ALU writes and load destinations)
//     name the same destination register.
//
// The last rule makes every linear word statically conflict-free: the
// runtime can buffer register writes locally and apply them at word
// end without re-running the register file's dirty-bitmap conflict
// detection, and Stats.RegConflicts/PortConflicts provably stay zero
// across the run. Words that would conflict simply stay unfused and
// take the per-cycle path, which reports (or tolerates) the conflict
// exactly as before.
//
// Because every slot of a linear word branches to a+1, a run is fully
// described by suffix lengths: runLen[a] is the number of consecutive
// linear words starting at a. A branch INTO the middle of a run needs
// no special casing — the suffix starting at the branch target is
// itself a run — and control can only leave a run at its end (or via a
// fault), so the executed portion of a run entered at a is always the
// prefix [a, a+j) of that suffix. The fused tables live inside Decoded:
// they are immutable, shared by any number of machines, and ride along
// with the ximdd decoded-program cache with no cache-key change.

// fusedOp is one executing slot of a linear word: the decoded data
// operation plus the slot's FU index (needed for CC writes, which are
// per-FU).
type fusedOp struct {
	DecodedOp
	fu uint8
}

// fusedWord is the superop metadata of one linear word. The accounting
// fields are the word's statically-known contribution to the machine's
// observable counters, folded in bulk at run exit; the op list holds
// only the slots with data-path work (explicit nops are summarized by
// nopMask).
type fusedWord struct {
	opStart, opEnd uint32 // index range into fuseInfo.ops
	ssMask         uint8  // SS bits driven while executing this word
	nopMask        uint8  // bit fu set: slot fu is an explicit nop
	reads          uint8  // register read ports charged by the word
	writes         uint8  // register writes staged by the word
	loads          uint8  // memory loads issued by the word
	stores         uint8  // memory stores issued by the word
	wrote          bool   // any reg/mem/CC write staged (livelock digest)
}

// fuseInfo is the complete fusion table of a program, built once at
// predecode and immutable afterwards.
type fuseInfo struct {
	runLen []uint32    // runLen[a]: linear words in the run starting at a
	words  []fusedWord // per-address superop metadata (runLen[a] > 0 only)
	ops    []fusedOp   // shared backing array for all words' op lists
}

// fuseProgram builds the fusion table for a decoded program. The uop
// table is the one decodeProgram built for the same program.
func fuseProgram(p *isa.Program, code []uop) *fuseInfo {
	n := p.NumFU
	plen := p.Len()
	fi := &fuseInfo{
		runLen: make([]uint32, plen),
		words:  make([]fusedWord, plen),
	}
	linear := make([]bool, plen)
	for addr := 0; addr < plen; addr++ {
		linear[addr] = linearWord(code[addr*n:(addr+1)*n], isa.Addr(addr))
	}
	// Suffix run lengths, right to left. The last word is never linear
	// (its goto target a+1 would be outside the program), so the
	// recurrence never reads past the end.
	for addr := plen - 1; addr >= 0; addr-- {
		if linear[addr] && addr+1 < plen {
			fi.runLen[addr] = fi.runLen[addr+1] + 1
		}
	}
	for addr := 0; addr < plen; addr++ {
		if !linear[addr] {
			continue
		}
		w := &fi.words[addr]
		w.opStart = uint32(len(fi.ops))
		for fu := 0; fu < n; fu++ {
			u := &code[addr*n+fu]
			if u.syncDone() {
				w.ssMask |= 1 << fu
			}
			if u.Flags&flagNop != 0 {
				w.nopMask |= 1 << fu
				continue
			}
			if u.Flags&(flagReadsA|flagAImm) == flagReadsA {
				w.reads++
			}
			if u.Flags&(flagReadsB|flagBImm) == flagReadsB {
				w.reads++
			}
			switch {
			case u.Op == isa.OpLoad:
				w.loads++
				w.writes++
				w.wrote = true
			case u.Op == isa.OpStore:
				w.stores++
				w.wrote = true
			case u.Flags&(flagWritesReg|flagWritesCC) != 0:
				if u.Flags&flagWritesReg != 0 {
					w.writes++
				}
				w.wrote = true
			}
			fi.ops = append(fi.ops, fusedOp{DecodedOp: u.data(), fu: uint8(fu)})
		}
		w.opEnd = uint32(len(fi.ops))
	}
	return fi
}

// linearWord reports whether the word whose slots are slots[0:n] (at
// address addr) satisfies the fusion legality rules above.
func linearWord(slots []uop, addr isa.Addr) bool {
	var destSeen [isa.NumRegs / 64]uint64
	for fu := range slots {
		u := &slots[fu]
		if u.trap() || u.kind() != isa.CtrlGoto || u.t1 != addr+1 {
			return false
		}
		if u.Flags&flagWritesReg != 0 {
			word, bit := u.Dest>>6, uint64(1)<<(u.Dest&63)
			if destSeen[word]&bit != 0 {
				return false // two slots write one register: stay unfused
			}
			destSeen[word] |= bit
		}
	}
	return true
}
