package core

import (
	"testing"

	"ximd/internal/isa"
)

func TestPartitionString(t *testing.T) {
	p, err := ParsePartition("{0,1}{2}{3,6,7}{4,5}", 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "{0,1}{2}{3,6,7}{4,5}" {
		t.Fatalf("String() = %q", got)
	}
	if p.NumSSETs() != 4 {
		t.Fatalf("NumSSETs = %d", p.NumSSETs())
	}
	if !p.SameSSET(3, 7) || p.SameSSET(0, 2) {
		t.Fatal("SameSSET broken")
	}
}

func TestParsePartitionRejectsMalformed(t *testing.T) {
	bad := []string{
		"",             // FUs missing
		"{0,1}",        // incomplete cover for 4 FUs
		"{0,1}{1,2,3}", // duplicate member
		"{0,1}{2}{9}",  // out of range
		"{0,1}{2,3",    // unterminated
		"0,1}{2,3}",    // missing brace
		"{0,1}{}{2,3}", // empty set
		"{0,x}{1,2,3}", // not a number
	}
	for _, s := range bad {
		if _, err := ParsePartition(s, 4); err == nil {
			t.Errorf("ParsePartition(%q) accepted malformed input", s)
		}
	}
}

func TestParsePartitionEqual(t *testing.T) {
	a, _ := ParsePartition("{0,1}{2,3}", 4)
	b, _ := ParsePartition("{2,3}{0,1}", 4) // order of sets is irrelevant
	c, _ := ParsePartition("{0,2}{1,3}", 4)
	if !a.Equal(b) {
		t.Error("equivalent partitions compare unequal")
	}
	if a.Equal(c) {
		t.Error("different partitions compare equal")
	}
}

// forkJoinProgram builds the canonical MINMAX-shaped fork/join on 4 FUs:
//
//	addr 0: all FUs: compares on FU0/FU1 set cc0, cc1; all goto 1
//	addr 1: FU0,FU1 goto 2; FU2 if cc0 -> 3 else 2; FU3 if cc1 -> 3 else 2
//	addr 2: all goto 4      (short path)
//	addr 3: all goto 4      (long path)
//	addr 4: all halt
func forkJoinProgram(t *testing.T, v0, v1 int32) *isa.Program {
	t.Helper()
	b := isa.NewBuilder(4)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpLt, A: isa.I(v0), B: isa.I(0)}, isa.Goto(1)))
	b.Set(0, 1, par(isa.DataOp{Op: isa.OpGt, A: isa.I(v1), B: isa.I(0)}, isa.Goto(1)))
	b.Set(0, 2, par(isa.Nop, isa.Goto(1)))
	b.Set(0, 3, par(isa.Nop, isa.Goto(1)))

	b.Set(1, 0, par(isa.Nop, isa.Goto(2)))
	b.Set(1, 1, par(isa.Nop, isa.Goto(2)))
	b.Set(1, 2, par(isa.Nop, isa.IfCC(0, 3, 2)))
	b.Set(1, 3, par(isa.Nop, isa.IfCC(1, 3, 2)))

	for fu := 0; fu < 4; fu++ {
		b.Set(2, fu, par(isa.Nop, isa.Goto(4)))
		b.Set(3, fu, par(isa.Nop, isa.Goto(4)))
		b.Set(4, fu, isa.HaltParcel)
	}
	return b.MustBuild()
}

func partitionTrace(t *testing.T, prog *isa.Program) []string {
	t.Helper()
	tr := &recordingTracer{}
	m, err := New(prog, Config{Tracer: tr, MaxCycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return tr.partitions
}

func TestForkJoinPartitionSequence(t *testing.T) {
	// v0 = -1: cc0 true; v1 = 1: cc1 true — both data-dependent branches
	// take the long path.
	got := partitionTrace(t, forkJoinProgram(t, -1, 1))
	want := []string{
		"{0,1,2,3}",   // cycle 0: single stream
		"{0,1,2,3}",   // cycle 1: the forking branch executes this cycle
		"{0,1}{2}{3}", // cycle 2: three data-dependent streams
		"{0,1,2,3}",   // cycle 3: unconditional reconvergence at addr 4
	}
	if len(got) != len(want) {
		t.Fatalf("trace length = %d (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle %d partition = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestForkJoinSplitsEvenWhenPathsCoincide(t *testing.T) {
	// v0 = 1, v1 = -1: both conditions false, every FU lands on addr 2 —
	// yet the partition must still show three SSETs, exactly as Figure 10
	// reports {0,1}{2}{3} at cycle 9 with all FUs at address 03.
	got := partitionTrace(t, forkJoinProgram(t, 1, -1))
	if got[2] != "{0,1}{2}{3}" {
		t.Fatalf("cycle 2 partition = %s, want {0,1}{2}{3} (split is control-dependence, not PC, based)", got[2])
	}
	if got[3] != "{0,1,2,3}" {
		t.Fatalf("cycle 3 partition = %s, want rejoined", got[3])
	}
}

func TestIdenticalConditionalsStayTogether(t *testing.T) {
	// All four FUs branch on the SAME condition (cc0): outcome is common,
	// so they remain one SSET through the branch.
	b := isa.NewBuilder(4)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpLt, A: isa.I(0), B: isa.I(1)}, isa.Goto(1)))
	for fu := 1; fu < 4; fu++ {
		b.Set(0, fu, par(isa.Nop, isa.Goto(1)))
	}
	for fu := 0; fu < 4; fu++ {
		b.Set(1, fu, par(isa.Nop, isa.IfCC(0, 2, 3)))
		b.Set(2, fu, par(isa.Nop, isa.Goto(4)))
		b.Set(3, fu, par(isa.Nop, isa.Goto(4)))
		b.Set(4, fu, isa.HaltParcel)
	}
	got := partitionTrace(t, b.MustBuild())
	for i, p := range got {
		if p != "{0,1,2,3}" {
			t.Fatalf("cycle %d partition = %s, want single SSET throughout (identical δ)", i, p)
		}
	}
}

func TestBarrierMergesWaitingFUs(t *testing.T) {
	// FU0 reaches the ALL-SS barrier 2 cycles before FU1. While waiting
	// they must merge into one SSET when both spin on the identical
	// barrier parcel, and leave as one.
	b := isa.NewBuilder(2)
	barrier := isa.Parcel{Data: isa.Nop, Ctrl: isa.IfAllSS(4, 3), Sync: isa.Done}
	b.Set(0, 0, par(isa.Nop, isa.Goto(3)))
	b.Set(0, 1, par(isa.Nop, isa.Goto(1)))
	b.Set(1, 1, par(isa.Nop, isa.Goto(2)))
	b.Set(2, 1, par(isa.Nop, isa.Goto(3)))
	b.Set(1, 0, isa.TrapParcel)
	b.Set(2, 0, isa.TrapParcel)
	b.Set(3, 0, barrier)
	b.Set(3, 1, barrier)
	b.Set(4, 0, isa.HaltParcel)
	b.Set(4, 1, isa.HaltParcel)
	got := partitionTrace(t, b.MustBuild())
	// c0 {0,1} (start), c1 {0}{1} (different gotos from addr 0)...
	// Actually the split happens when they execute different ctrl at the
	// same address: at c0 FU0 goto 3, FU1 goto 1 -> split for c1.
	if got[1] != "{0}{1}" {
		t.Fatalf("cycle 1 partition = %s, want {0}{1}", got[1])
	}
	// c3: both at the barrier executing the identical parcel -> merged.
	last := got[len(got)-1]
	if last != "{0,1}" {
		t.Fatalf("final partition = %s, want {0,1} (barrier join)", last)
	}
}

func TestHaltedFUsBecomeFrozenSingletons(t *testing.T) {
	// FU1 halts early; FU0 keeps running. The partition must show them
	// apart and never merge a running FU with a halted one.
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.Nop, isa.Goto(1)))
	b.Set(0, 1, isa.HaltParcel)
	b.Set(1, 0, par(isa.Nop, isa.Goto(2)))
	b.Set(2, 0, isa.HaltParcel)
	got := partitionTrace(t, b.MustBuild())
	if got[1] != "{0}{1}" || got[2] != "{0}{1}" {
		t.Fatalf("partitions after halt = %v, want {0}{1} from cycle 1", got)
	}
}

func TestMeanStreamsReflectsFork(t *testing.T) {
	m, err := New(forkJoinProgram(t, -1, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	// 4 cycles: three with 1 stream, one with 3 streams.
	if s.StreamHistogram[1] != 3 || s.StreamHistogram[3] != 1 {
		t.Fatalf("stream histogram = %v", s.StreamHistogram)
	}
	if got := s.MeanStreams(); got != 1.5 {
		t.Fatalf("mean streams = %g, want 1.5", got)
	}
}
