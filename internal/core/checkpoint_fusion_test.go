package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ximd/internal/isa"
	"ximd/internal/mem"
)

// Snapshot/Restore must compose with the fused superop engine: a
// checkpoint taken between StepN calls on a fusing machine, restored
// onto a fresh machine, must replay to exactly the state the
// uninterrupted run reaches — for the fast engine with fusion on and
// off and for the reference engine alike. This is the property the
// runner's periodic checkpointing (and crash resume in ximdd) stands
// on.

// stepNTo drives m in odd-sized StepN batches (so checkpoint-style
// clamping cuts across fused superop runs) until it stops or reaches at
// least the target cycle.
func stepNTo(t *testing.T, tag string, m *Machine, target uint64) bool {
	t.Helper()
	running := true
	for running && m.Cycle() < target {
		n := uint64(7)
		if left := target - m.Cycle(); left < n {
			n = left
		}
		running, _ = m.StepN(n)
	}
	return running
}

// runToEnd drives m until it stops or reaches the cycle cap. Random
// programs may spin forever; capping both machines of a comparison at
// the same absolute cycle keeps their terminal states comparable.
func runToEnd(t *testing.T, tag string, m *Machine) {
	t.Helper()
	const cap = 5000
	running := true
	for running && m.Cycle() < cap {
		n := uint64(7)
		if left := uint64(cap) - m.Cycle(); left < n {
			n = left
		}
		running, _ = m.StepN(n)
	}
}

// interruptedRun executes prog with a snapshot taken mid-run: the
// original machine continues to completion, and a second, freshly
// constructed machine restores the snapshot and finishes from there.
// Both terminal states are returned for comparison.
func interruptedRun(t *testing.T, tag string, prog *isa.Program, engine EngineKind, disableFusion bool, snapAt uint64) (
	contM *Machine, contMem *mem.Shared, restM *Machine, restMem *mem.Shared) {
	t.Helper()
	build := func() (*Machine, *mem.Shared) {
		memory := mem.NewShared(diffMemWords)
		for i := uint32(0); i < diffMemWords; i++ {
			memory.Poke(i, isa.WordFromInt(int32(i)*3-700))
		}
		cfg := Config{Engine: engine, Memory: memory, DisableFusion: disableFusion, TolerateConflicts: true}
		m, err := New(prog, cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", tag, err)
		}
		for i := uint8(0); i < 24; i++ {
			m.Regs().Poke(i, isa.WordFromInt(int32(i)*7-40))
		}
		return m, memory
	}

	contM, contMem = build()
	stepNTo(t, tag, contM, snapAt)
	snap, err := contM.Snapshot()
	if err != nil {
		t.Fatalf("%s: snapshot at cycle %d: %v", tag, contM.Cycle(), err)
	}
	runToEnd(t, tag, contM)

	// The restored machine starts from a default build; Restore replaces
	// registers and memory wholesale, so the initial pokes are
	// irrelevant — which is exactly what crash resume relies on.
	restM, restMem = build()
	if err := restM.Restore(snap); err != nil {
		t.Fatalf("%s: restore: %v", tag, err)
	}
	runToEnd(t, tag, restM)
	return contM, contMem, restM, restMem
}

// TestSnapshotRestoreAcrossFusion holds the PR-interaction property:
// for random fusibility-biased programs, a mid-run checkpoint restored
// onto a fresh machine finishes byte-identically to the uninterrupted
// run, under fused fast, unfused fast, and reference execution — and
// the three restored outcomes agree with each other.
func TestSnapshotRestoreAcrossFusion(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	configs := []struct {
		name   string
		engine EngineKind
		noFuse bool
	}{
		{"fast+fused", EngineFast, false},
		{"fast+nofuse", EngineFast, true},
		{"reference", EngineReference, false},
	}
	for i := 0; i < 40; i++ {
		prog := randomFusibleXIMDProgram(r)
		snapAt := uint64(1 + r.Intn(60))
		var (
			ms   []*Machine
			mems []*mem.Shared
		)
		for _, c := range configs {
			tag := fmt.Sprintf("prog %d (%s, snap@%d)", i, c.name, snapAt)
			contM, contMem, restM, restMem := interruptedRun(t, tag, prog, c.engine, c.noFuse, snapAt)
			assertMachinesAgree(t, tag, "continued", "restored", prog,
				contM, contMem, contM.Cycle(), contM.Err(),
				restM, restMem, restM.Cycle(), restM.Err())
			ms = append(ms, restM)
			mems = append(mems, restMem)
		}
		for j := 1; j < len(configs); j++ {
			tag := fmt.Sprintf("prog %d (restored %s vs %s)", i, configs[0].name, configs[j].name)
			assertMachinesAgree(t, tag, configs[0].name, configs[j].name, prog,
				ms[0], mems[0], ms[0].Cycle(), ms[0].Err(),
				ms[j], mems[j], ms[j].Cycle(), ms[j].Err())
		}
	}
}

// TestResetAfterRestoreLeavesNoResidue is the machine-pooling guard: a
// pooled machine that went through Restore (crash resume) and is then
// Reset for a new program must behave exactly like a freshly
// constructed one — no snapshot state may leak across the Reset.
func TestResetAfterRestoreLeavesNoResidue(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	for i := 0; i < 20; i++ {
		progA := randomFusibleXIMDProgram(r)
		progB := randomFusibleXIMDProgram(r)

		build := func(p *isa.Program) (*Machine, *mem.Shared, Config) {
			memory := mem.NewShared(diffMemWords)
			for a := uint32(0); a < diffMemWords; a++ {
				memory.Poke(a, isa.WordFromInt(int32(a)*3-700))
			}
			cfg := Config{Engine: EngineFast, Memory: memory, TolerateConflicts: true}
			m, err := New(p, cfg)
			if err != nil {
				t.Fatalf("prog %d: New: %v", i, err)
			}
			for reg := uint8(0); reg < 24; reg++ {
				m.Regs().Poke(reg, isa.WordFromInt(int32(reg)*7-40))
			}
			return m, memory, cfg
		}

		// Dirty a machine thoroughly: run progA a while, restore a
		// mid-run snapshot, leave it parked mid-program.
		dirty, _, _ := build(progA)
		stepNTo(t, "dirty", dirty, 20)
		snap, err := dirty.Snapshot()
		if err != nil {
			t.Fatalf("prog %d: snapshot: %v", i, err)
		}
		runToEnd(t, "dirty", dirty)
		if err := dirty.Restore(snap); err != nil {
			t.Fatalf("prog %d: restore: %v", i, err)
		}

		// Reset it onto progB with a fresh config, mirroring the pooled
		// reuse path, and run both it and a pristine machine to the end.
		memB := mem.NewShared(diffMemWords)
		for a := uint32(0); a < diffMemWords; a++ {
			memB.Poke(a, isa.WordFromInt(int32(a)*3-700))
		}
		if err := dirty.Reset(progB, Config{Engine: EngineFast, Memory: memB, TolerateConflicts: true}); err != nil {
			t.Fatalf("prog %d: reset: %v", i, err)
		}
		for reg := uint8(0); reg < 24; reg++ {
			dirty.Regs().Poke(reg, isa.WordFromInt(int32(reg)*7-40))
		}
		runToEnd(t, "reused", dirty)

		fresh, freshMem, _ := build(progB)
		runToEnd(t, "fresh", fresh)

		tag := fmt.Sprintf("prog %d (reset after restore)", i)
		assertMachinesAgree(t, tag, "reused", "fresh", progB,
			dirty, memB, dirty.Cycle(), dirty.Err(),
			fresh, freshMem, fresh.Cycle(), fresh.Err())
	}
}
