// Package core implements the XIMD-1 machine model of Wolfe & Shen
// (ASPLOS 1991), Sections 2.2–2.4: eight homogeneous functional units,
// each with its own program counter and sequencer (the next-state
// functions δ1..δn of Figure 5), a condition-code register CC_i per FU
// (the data-path state abstraction sd_i), and a synchronization signal
// SS_i per FU (the control-path state abstraction of S_i), all over a
// shared multi-ported register file and an idealized one-cycle memory.
//
// Timing model. The machine is fully synchronous. During cycle t:
//
//   - operand reads and branch-condition reads of CC observe the state
//     registered at the end of cycle t-1;
//   - SS_i is combinational: it carries the Sync field of the parcel FU i
//     executes at cycle t, and every sequencer sees it the same cycle
//     (Figure 8 distributes SS directly into the condition PAL). This is
//     what makes the ALL-SS barrier of Example 3 join all threads in a
//     single cycle;
//   - all register, memory, and CC writes become visible at cycle t+1.
//
// Termination. The paper's research model leaves program termination
// undefined; this implementation adds an explicit halt control operation.
// Simulation ends when every FU has halted. A halted FU drives SS = DONE
// so that barriers involving it do not deadlock.
package core

import (
	"errors"
	"fmt"

	"ximd/internal/inject"
	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
)

// EngineKind selects the execution engine of a Machine.
type EngineKind uint8

const (
	// EngineFast (the default) executes the program pre-decoded: at New
	// the whole program is decoded into a flat micro-op table with operand
	// kinds resolved, class flags baked in, and branch conditions compiled
	// to bitmask compares. Cycle-for-cycle equivalent to EngineReference.
	EngineFast EngineKind = iota
	// EngineReference interprets parcels directly from the program each
	// cycle — the original, obviously-correct interpreter, kept as the
	// oracle for differential testing.
	EngineReference
)

// Config parameterizes a Machine.
type Config struct {
	// Engine selects the execution engine; the zero value is EngineFast.
	// Both engines implement the identical architectural semantics; the
	// differential tests hold them to identical cycle counts, statistics,
	// traces, and final state.
	Engine EngineKind
	// Memory is the memory model; nil selects an idealized shared memory
	// of the default size (Section 2.3).
	Memory mem.Memory
	// MaxCycles aborts runaway simulations; 0 selects DefaultMaxCycles.
	MaxCycles uint64
	// TolerateConflicts makes same-cycle register/memory write conflicts
	// non-fatal (they are still counted). The paper calls the outcome
	// undefined; the tolerant resolution is documented last-staged-wins.
	TolerateConflicts bool
	// DetectLivelock stops the simulation with ErrLivelock when the
	// architectural state reaches a fixed point with FUs still running.
	// Leave it off for programs that poll memory-mapped devices, whose
	// load values legitimately change with the cycle number.
	DetectLivelock bool
	// Inject, if non-nil and enabled, perturbs the datapath with seeded
	// variable memory latency, transient faults, and hard FU failures.
	// The injector is architectural state: both engines interrogate it at
	// the same points and remain cycle-identical under any campaign. A
	// nil or disabled injector is byte-identical to the idealized model.
	Inject *inject.Injector
	// Decoded, if non-nil, supplies the program's pre-built fast-engine
	// micro-op table (core.Predecode). New then skips re-validating and
	// re-decoding the program — the ximdd decoded-program cache's hit
	// path. The table must have been built from the same *isa.Program
	// passed to New.
	Decoded *Decoded
	// DisableFusion turns off the fused superop execution engine: Run and
	// StepN then execute strictly cycle by cycle even where straight-line
	// runs could fuse. Semantics are identical either way (the
	// differential nets hold fused and unfused runs byte-identical); the
	// knob exists for those tests, for benchmarking the fusion win, and
	// as an escape hatch.
	DisableFusion bool
	// RegisteredSS is an ablation of the Figure 8 design decision: instead
	// of the paper's combinational SS network (sequencers see the sync
	// signals of the parcels executing this cycle), conditions read the SS
	// values registered at the end of the previous cycle. Barriers then
	// release one cycle after the last arrival instead of in the same
	// cycle, and every SS-gated handoff pays one extra cycle — measured by
	// the xbench ablation experiment.
	RegisteredSS bool
	// Tracer, if non-nil, receives one record per executed cycle.
	Tracer Tracer
}

// DefaultMaxCycles bounds a simulation when Config.MaxCycles is zero.
const DefaultMaxCycles = 50_000_000

// Tracer observes machine execution cycle by cycle. The record and its
// slices are reused across cycles; implementations must copy anything
// they retain.
type Tracer interface {
	Cycle(rec *CycleRecord)
}

// CycleRecord is the observable state of one executed cycle.
type CycleRecord struct {
	// Cycle is the cycle number, counting from 0.
	Cycle uint64
	// PC[i] is FU i's program counter at the start of the cycle (the
	// address of the parcel it executes this cycle).
	PC []isa.Addr
	// CC[i] is CC_i as registered at the start of the cycle — exactly the
	// "condition code register contents ... as they exist at the beginning
	// of each cycle" shown in Figure 10.
	CC []bool
	// CCValid[i] reports whether CC_i has been written since reset; the
	// paper's traces print unwritten codes as X.
	CCValid []bool
	// SS[i] is the synchronization signal driven during the cycle.
	SS []isa.Sync
	// Halted[i] reports whether FU i had halted before this cycle.
	Halted []bool
	// Partition is the SSET partition in effect during this cycle.
	Partition Partition
	// Parcels[i] is the parcel FU i executed this cycle (zero value for
	// halted FUs).
	Parcels []isa.Parcel
	// Stalled[i] reports whether FU i spent this cycle stalled on an
	// in-flight load (injected memory latency); Failed[i] whether it is
	// hard-failed. Both are nil when injection is disabled.
	Stalled []bool
	Failed  []bool
}

// SimError wraps an execution fault with cycle and FU context.
type SimError struct {
	Cycle uint64
	FU    int // -1 when not attributable to one FU
	Err   error
}

func (e *SimError) Error() string {
	if e.FU >= 0 {
		return fmt.Sprintf("cycle %d, FU%d: %v", e.Cycle, e.FU, e.Err)
	}
	return fmt.Sprintf("cycle %d: %v", e.Cycle, e.Err)
}

func (e *SimError) Unwrap() error { return e.Err }

// Sentinel errors returned (wrapped in SimError) by Step and Run. Match
// them through the SimError wrapper with errors.Is.
var (
	ErrMaxCycles = errors.New("maximum cycle count exceeded")
	ErrLivelock  = errors.New("livelock: architectural state reached a fixed point with FUs still running")
	// ErrTransient marks an injected transient fault (register read-port
	// drop, memory NAK). A transiently-faulted run is retryable: restore
	// a checkpoint, bump the injector attempt, and re-run.
	ErrTransient = errors.New("transient fault injected")
	// ErrFUFailed marks an injected hard functional-unit failure. On the
	// XIMD it is reported only after every surviving stream has finished
	// (degraded completion); the VLIW latches it the moment the failure
	// lands, since every instruction word needs every FU.
	ErrFUFailed = errors.New("functional unit hard failure injected")
)

// Transient-fault and degradation error text, built by one helper per
// fault so the fast and reference engines stay byte-identical.

func errRegPortDrop() error {
	return fmt.Errorf("register read ports dropped: %w", ErrTransient)
}

func errMemNAK(addr uint32) error {
	return fmt.Errorf("memory access to address %d not acknowledged: %w", addr, ErrTransient)
}

func errDegraded() error {
	return fmt.Errorf("surviving streams completed after hard FU failure: %w", ErrFUFailed)
}

// Machine is an XIMD-1 processor instance.
type Machine struct {
	prog   *isa.Program
	numFU  int
	config Config

	regs   *regfile.File
	memory mem.Memory

	pc      []isa.Addr
	cc      []bool
	ccValid []bool
	halted  []bool
	cycle   uint64
	done    bool
	failure error // terminal error latched by the first failing Step

	tracker *partitionTracker
	stats   Stats

	// Injection state (nil / zero unless Config.Inject is enabled).
	// stall[fu] counts the remaining stall cycles of an in-flight load;
	// failed[fu] latches a hard FU failure; stalledNow[fu] marks FUs
	// spending the current cycle stalled.
	inject     *inject.Injector
	stall      []uint32
	failed     []bool
	stalledNow []bool
	nFailed    int

	// Fast-engine state (nil / unused under EngineReference). The packed
	// uint8 vectors mirror cc/ccValid/halted/SS bit i == FU i; the slice
	// forms are materialized from them only for tracing and accessors.
	code        []uop       // flat micro-op table, indexed [pc*numFU+fu]
	uops        []*uop      // per-cycle fetched micro-ops
	shared      *mem.Shared // devirtualized memory fast path, if applicable
	ccBits      uint8
	ccValidBits uint8
	haltedBits  uint8
	ssBits      uint8
	prevSSBits  uint8

	// Fused-engine state (fastrun.go). fuse is the program's immutable
	// superop table; fuseOK caches the static run preconditions (fast
	// engine, fusion enabled, no injection, no tracer, plain shared
	// memory) — device mappings and the dynamic machine state are
	// checked at entry.
	fuse   *fuseInfo
	fuseOK bool

	// Per-cycle scratch, reused across cycles.
	ss        []isa.Sync
	prevSS    []isa.Sync // last cycle's SS values (RegisteredSS ablation)
	parcels   []isa.Parcel
	nextPC    []isa.Addr
	willHalt  []bool
	ccWrites  []ccWrite
	trans     []transition
	record    CycleRecord
	prevState fingerprint
}

type ccWrite struct {
	fu  int
	val bool
}

// fingerprint is the livelock-detection digest of one committed cycle.
// CC, SS, and halt state are packed one bit per FU; SS_i is binary
// (BUSY/DONE), so the mask compare is equivalent to comparing the Sync
// values themselves.
type fingerprint struct {
	valid  bool
	wrote  bool // any register/memory/CC write staged this cycle
	pc     [isa.NumFU]isa.Addr
	cc     uint8
	ss     uint8
	halted uint8
}

// New creates a machine loaded with prog. Every FU starts at the program
// entry address with cleared registers, condition codes, and memory.
func New(prog *isa.Program, cfg Config) (*Machine, error) {
	m := &Machine{}
	if err := m.bind(prog, cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset rebinds the machine to a fresh run of prog under cfg, exactly
// as if it had just been built by New, but reusing the register file,
// statistics, and per-FU scratch allocations of the previous run. It is
// the machine-pooling hook: a sweep that retires and re-acquires
// machines through a sync.Pool allocates nothing per task in steady
// state (beyond what the config itself demands). On error the machine
// is left unusable and must be discarded, not pooled.
func (m *Machine) Reset(prog *isa.Program, cfg Config) error {
	return m.bind(prog, cfg)
}

// bind is the shared initialization of New and Reset: it validates the
// program and configuration, then (re)initializes every field, reusing
// existing allocations where their capacity allows.
func (m *Machine) bind(prog *isa.Program, cfg Config) error {
	if cfg.Decoded != nil {
		if prog == nil {
			prog = cfg.Decoded.prog
		} else if prog != cfg.Decoded.prog {
			return fmt.Errorf("core: Config.Decoded was built from a different program")
		}
	} else if err := prog.Validate(); err != nil {
		return fmt.Errorf("core: invalid program: %w", err)
	}
	if cfg.Memory == nil {
		cfg.Memory = mem.NewShared(0)
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = DefaultMaxCycles
	}
	n := prog.NumFU
	m.prog = prog
	m.numFU = n
	m.config = cfg
	if m.regs == nil {
		m.regs = regfile.New()
	} else {
		m.regs.Reset()
	}
	m.memory = cfg.Memory
	m.pc = resetSlice(m.pc, n)
	m.cc = resetSlice(m.cc, n)
	m.ccValid = resetSlice(m.ccValid, n)
	m.halted = resetSlice(m.halted, n)
	m.cycle = 0
	m.done = false
	m.failure = nil
	if m.tracker == nil {
		m.tracker = newPartitionTracker(n)
	} else {
		m.tracker.reset(n)
	}
	m.ss = resetSlice(m.ss, n)
	m.prevSS = resetSlice(m.prevSS, n)
	m.parcels = resetSlice(m.parcels, n)
	m.nextPC = resetSlice(m.nextPC, n)
	m.willHalt = resetSlice(m.willHalt, n)
	m.trans = resetSlice(m.trans, n)
	m.ccWrites = m.ccWrites[:0]
	m.record = CycleRecord{}
	m.prevState = fingerprint{}
	for i := range m.pc {
		m.pc[i] = prog.Entry
	}
	m.stats.Reset(n)

	m.inject = nil
	m.nFailed = 0
	if cfg.Inject.Enabled() {
		m.inject = cfg.Inject
		m.stall = resetSlice(m.stall, n)
		m.failed = resetSlice(m.failed, n)
		m.stalledNow = resetSlice(m.stalledNow, n)
	} else {
		m.stall, m.failed, m.stalledNow = nil, nil, nil
	}

	m.code = nil
	m.shared = nil
	m.fuse = nil
	m.fuseOK = false
	m.ccBits, m.ccValidBits, m.haltedBits, m.ssBits, m.prevSSBits = 0, 0, 0, 0, 0
	if cfg.Engine == EngineFast {
		if cfg.Decoded != nil {
			m.code = cfg.Decoded.code
			m.fuse = cfg.Decoded.fuse
		} else {
			m.code = decodeProgram(prog)
			m.fuse = fuseProgram(prog, m.code)
		}
		m.uops = resetSlice(m.uops, n)
		if sh, ok := cfg.Memory.(*mem.Shared); ok {
			m.shared = sh
		}
		m.fuseOK = m.fuse != nil && !cfg.DisableFusion &&
			m.inject == nil && cfg.Tracer == nil && m.shared != nil
	}
	return nil
}

// resetSlice returns a zeroed n-element slice, reusing s's backing
// array when it is large enough.
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// NumFU returns the machine's functional-unit count.
func (m *Machine) NumFU() int { return m.numFU }

// Cycle returns the number of cycles executed so far.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Done reports whether every FU has halted.
func (m *Machine) Done() bool { return m.done }

// Regs exposes the global register file for host initialization and
// inspection.
func (m *Machine) Regs() *regfile.File { return m.regs }

// Memory exposes the memory model.
func (m *Machine) Memory() mem.Memory { return m.memory }

// PC returns FU fu's current program counter.
func (m *Machine) PC(fu int) isa.Addr { return m.pc[fu] }

// CC returns FU fu's condition code register.
func (m *Machine) CC(fu int) bool {
	if m.code != nil {
		return m.ccBits&(1<<fu) != 0
	}
	return m.cc[fu]
}

// Partition returns the SSET partition currently in effect.
func (m *Machine) Partition() Partition { return m.tracker.partition() }

// HardFailed reports whether FU fu has been retired by an injected hard
// failure. Always false when injection is disabled.
func (m *Machine) HardFailed(fu int) bool { return m.failed != nil && m.failed[fu] }

// Stats returns a deep-copied snapshot of the accumulated execution
// statistics. The snapshot shares no state with the machine: it stays
// valid (and immutable) across further Step calls and may be handed to
// other goroutines.
func (m *Machine) Stats() Stats { return m.stats.Clone() }

// Err returns the terminal error latched by a failed Step, or nil.
func (m *Machine) Err() error { return m.failure }

// fail latches err as the machine's terminal state: every subsequent
// Step or Run returns the same error instead of resuming execution past
// the failure point.
func (m *Machine) fail(err error) error {
	m.failure = err
	return err
}

// Step executes one machine cycle. It returns (false, nil) once all FUs
// have halted. After any error the machine is dead: subsequent Step
// calls return the same error rather than executing past the failure.
func (m *Machine) Step() (running bool, err error) {
	if m.code != nil {
		return m.stepFast()
	}
	if m.failure != nil {
		return false, m.failure
	}
	if m.done {
		return false, nil
	}
	if m.cycle >= m.config.MaxCycles {
		return false, m.fail(&SimError{Cycle: m.cycle, FU: -1, Err: ErrMaxCycles})
	}
	if m.inject != nil {
		m.markFailures()
	}

	m.regs.BeginCycle()
	m.memory.BeginCycle(m.cycle)
	m.ccWrites = m.ccWrites[:0]
	wrote := false

	// Phase 1: fetch. SS is combinational — derived from the fetched
	// parcels — so it must be known before any control evaluation.
	for fu := 0; fu < m.numFU; fu++ {
		if m.halted[fu] {
			m.ss[fu] = isa.Done // a halted FU holds its sync signal at DONE
			m.parcels[fu] = isa.Parcel{}
			continue
		}
		if m.inject != nil {
			if m.failed[fu] {
				m.stalledNow[fu] = false
				m.ss[fu] = isa.Busy // a hard-failed FU's SS sticks at BUSY
				m.parcels[fu] = isa.Parcel{}
				continue
			}
			if m.stall[fu] > 0 {
				m.stalledNow[fu] = true
				m.ss[fu] = isa.Busy // an in-flight load holds its FU at BUSY
				m.parcels[fu] = isa.Parcel{}
				continue
			}
			m.stalledNow[fu] = false
		}
		p := m.prog.Parcel(m.pc[fu], fu)
		if p.Trap {
			return false, m.fail(&SimError{Cycle: m.cycle, FU: fu,
				Err: fmt.Errorf("executed trap parcel at address %d (hole in instruction stream)", m.pc[fu])})
		}
		m.parcels[fu] = p
		m.ss[fu] = p.Sync
	}

	// Phase 2: data path. Operand reads observe start-of-cycle state;
	// writes are staged. Stalled and failed FUs execute nothing.
	for fu := 0; fu < m.numFU; fu++ {
		if m.halted[fu] || (m.inject != nil && (m.failed[fu] || m.stalledNow[fu])) {
			continue
		}
		w, err := m.execData(fu, m.parcels[fu].Data)
		wrote = wrote || w
		if err != nil {
			return false, m.fail(err)
		}
	}

	// Phase 3: control path. Each sequencer evaluates its δi over the
	// registered CCs and the SS network — combinational by default,
	// registered (previous cycle's values) under the ablation.
	condSS := m.ss
	if m.config.RegisteredSS {
		condSS = m.prevSS
	}
	for fu := 0; fu < m.numFU; fu++ {
		if m.halted[fu] {
			m.trans[fu] = transition{halted: true}
			continue
		}
		if m.inject != nil {
			if m.failed[fu] {
				// A dead FU's control state determines nothing: it leaves
				// its SSET and freezes as a singleton, like a halted FU.
				m.trans[fu] = transition{halted: true}
				continue
			}
			if m.stalledNow[fu] {
				m.trans[fu] = transition{pc: m.pc[fu], next: m.pc[fu], tag: stallTag(m.pc[fu])}
				m.nextPC[fu] = m.pc[fu]
				m.willHalt[fu] = false
				continue
			}
		}
		ctrl := m.parcels[fu].Ctrl
		var next isa.Addr
		var halt bool
		switch ctrl.Kind {
		case isa.CtrlGoto:
			next = ctrl.T1
		case isa.CtrlHalt:
			halt = true
		case isa.CtrlCond:
			taken := isa.EvalCond(ctrl, m.cc, condSS, m.numFU)
			if taken {
				next = ctrl.T1
			} else {
				next = ctrl.T2
			}
			m.stats.CondBranches++
			if taken {
				m.stats.TakenBranches++
			}
		}
		m.nextPC[fu] = next
		m.willHalt[fu] = halt
		m.trans[fu] = transition{pc: m.pc[fu], next: next, halting: halt, tag: ctrlTag(ctrl)}
	}

	// Phase 4: trace the cycle as observed (pre-commit state).
	if m.config.Tracer != nil {
		m.record = CycleRecord{
			Cycle:     m.cycle,
			PC:        m.pc,
			CC:        m.cc,
			CCValid:   m.ccValid,
			SS:        m.ss,
			Halted:    m.halted,
			Partition: m.tracker.partition(),
			Parcels:   m.parcels,
		}
		if m.inject != nil {
			m.record.Stalled = m.stalledNow
			m.record.Failed = m.failed
		}
		m.config.Tracer.Cycle(&m.record)
	}
	if m.inject == nil {
		m.stats.observeCycle(m.tracker.numSSETs(), m.parcels, m.halted)
	} else {
		m.stats.observeStreams(m.tracker.numSSETs())
		for fu := 0; fu < m.numFU; fu++ {
			switch {
			case m.halted[fu]:
				m.stats.HaltedCycles[fu]++
			case m.failed[fu]:
				m.stats.FailedCycles[fu]++
			case m.stalledNow[fu]:
				m.stats.StallCycles[fu]++
			case m.parcels[fu].Data.Op == isa.OpNop:
				m.stats.Nops[fu]++
				if syncWaitParcel(m.parcels[fu]) {
					m.stats.SyncWaitCycles[fu]++
				}
			default:
				m.stats.DataOps[fu]++
			}
		}
	}

	// Phase 5: commit. Writes become visible; PCs advance; the partition
	// tracker digests this cycle's transitions.
	m.regs.Commit()
	m.memory.Commit()
	for _, w := range m.ccWrites {
		m.cc[w.fu] = w.val
		m.ccValid[w.fu] = true
	}
	wrote = wrote || len(m.ccWrites) > 0
	allHalted := true
	allSettled := true // every FU halted or hard-failed
	for fu := 0; fu < m.numFU; fu++ {
		if m.halted[fu] {
			continue
		}
		if m.inject != nil {
			if m.failed[fu] {
				allHalted = false
				continue
			}
			if m.stalledNow[fu] {
				m.stall[fu]--
				// A draining stall counter is progress: suppress the
				// livelock fingerprint while any load is in flight.
				wrote = true
				allHalted = false
				allSettled = false
				continue
			}
		}
		if m.willHalt[fu] {
			m.halted[fu] = true
		} else {
			m.pc[fu] = m.nextPC[fu]
			allHalted = false
			allSettled = false
		}
	}
	m.tracker.update(m.trans)
	copy(m.prevSS, m.ss)
	m.cycle++
	if allHalted {
		m.done = true
		return false, nil
	}
	if m.inject != nil && allSettled && m.nFailed > 0 {
		// Degraded completion: every surviving stream has halted; only
		// hard-failed FUs remain. Report the failure after the survivors'
		// work is architecturally committed.
		return false, m.fail(&SimError{Cycle: m.cycle - 1, FU: m.firstFailedFU(), Err: errDegraded()})
	}

	if m.config.DetectLivelock {
		var cc, ss, halted uint8
		for fu := 0; fu < m.numFU; fu++ {
			bit := uint8(1) << fu
			if m.cc[fu] {
				cc |= bit
			}
			if m.ss[fu] == isa.Done {
				ss |= bit
			}
			if m.halted[fu] {
				halted |= bit
			}
		}
		if err := m.checkLivelock(wrote, cc, ss, halted); err != nil {
			return false, m.fail(err)
		}
	}
	return true, nil
}

// markFailures latches newly-due hard FU failures at the top of a cycle.
func (m *Machine) markFailures() {
	for fu := 0; fu < m.numFU; fu++ {
		if !m.failed[fu] && !m.haltedFU(fu) && m.inject.FUFailed(fu, m.cycle) {
			m.failed[fu] = true
			m.nFailed++
		}
	}
}

// haltedFU reads FU fu's halt state on either engine.
func (m *Machine) haltedFU(fu int) bool {
	if m.code != nil {
		return m.haltedBits&(1<<fu) != 0
	}
	return m.halted[fu]
}

// firstFailedFU returns the lowest-numbered hard-failed FU (the one a
// degraded-completion error is attributed to), or -1.
func (m *Machine) firstFailedFU() int {
	for fu, f := range m.failed {
		if f {
			return fu
		}
	}
	return -1
}

// execData executes one data operation for fu, staging all writes.
// It reports whether any write was staged.
func (m *Machine) execData(fu int, d isa.DataOp) (wrote bool, err error) {
	cl := isa.ClassOf(d.Op)
	if m.inject != nil &&
		(cl.ReadsA() && d.A.Kind != isa.Imm || cl.ReadsB() && d.B.Kind != isa.Imm) &&
		m.inject.DropRegPort(m.cycle, fu) {
		return false, &SimError{Cycle: m.cycle, FU: fu, Err: errRegPortDrop()}
	}
	var a, b isa.Word
	if cl.ReadsA() {
		if a, err = m.readOperand(fu, d.A); err != nil {
			return false, &SimError{Cycle: m.cycle, FU: fu, Err: err}
		}
	}
	if cl.ReadsB() {
		if b, err = m.readOperand(fu, d.B); err != nil {
			return false, &SimError{Cycle: m.cycle, FU: fu, Err: err}
		}
	}

	switch d.Op {
	case isa.OpNop:
		return false, nil
	case isa.OpLoad:
		m.stats.Loads++
		addr := uint32(a.Int() + b.Int())
		if m.inject != nil && m.inject.MemNAK(m.cycle, fu, addr) {
			return false, &SimError{Cycle: m.cycle, FU: fu, Err: errMemNAK(addr)}
		}
		v, err := m.memory.Load(fu, addr)
		if err != nil {
			return false, &SimError{Cycle: m.cycle, FU: fu, Err: err}
		}
		if m.inject != nil {
			if mask := m.inject.FlipMask(m.cycle, fu, addr); mask != 0 {
				v ^= isa.Word(mask)
				m.stats.BitFlips++
			}
			m.stall[fu] = m.inject.LoadLatency(m.cycle, fu, addr)
		}
		return true, m.writeReg(fu, d.Dest, v)
	case isa.OpStore:
		m.stats.Stores++
		if m.inject != nil && m.inject.MemNAK(m.cycle, fu, uint32(b.Int())) {
			return false, &SimError{Cycle: m.cycle, FU: fu, Err: errMemNAK(uint32(b.Int()))}
		}
		if err := m.memory.Store(fu, uint32(b.Int()), a); err != nil {
			if _, isConflict := err.(*mem.ConflictError); isConflict && m.config.TolerateConflicts {
				m.stats.MemConflicts++
				return true, nil
			}
			return false, &SimError{Cycle: m.cycle, FU: fu, Err: err}
		}
		return true, nil
	default:
		res, cc, err := isa.EvalALU(d.Op, a, b)
		if err != nil {
			return false, &SimError{Cycle: m.cycle, FU: fu, Err: err}
		}
		if cl.WritesCC() {
			m.ccWrites = append(m.ccWrites, ccWrite{fu: fu, val: cc})
			return true, nil
		}
		if cl.WritesReg() {
			return true, m.writeReg(fu, d.Dest, res)
		}
		return false, nil
	}
}

func (m *Machine) readOperand(fu int, o isa.Operand) (isa.Word, error) {
	if o.Kind == isa.Imm {
		return o.Imm, nil
	}
	return m.regs.Read(fu, o.Reg)
}

func (m *Machine) writeReg(fu int, reg uint8, v isa.Word) error {
	err := m.regs.Write(fu, reg, v)
	if err != nil {
		if _, isConflict := err.(*regfile.WriteConflictError); isConflict && m.config.TolerateConflicts {
			m.stats.RegConflicts++
			m.stats.PortConflicts[fu]++
			return nil
		}
		return &SimError{Cycle: m.cycle, FU: fu, Err: err}
	}
	return nil
}

// checkLivelock flags a fixed point: identical PCs, CCs, SS pattern and
// halt state as the previous cycle with no writes staged in either. The
// caller supplies the post-commit CC/SS/halt state packed one bit per FU.
func (m *Machine) checkLivelock(wrote bool, cc, ss, halted uint8) error {
	var fp fingerprint
	fp.valid = true
	fp.wrote = wrote
	copy(fp.pc[:], m.pc)
	fp.cc, fp.ss, fp.halted = cc, ss, halted
	prev := m.prevState
	m.prevState = fp
	if prev.valid && !prev.wrote && !fp.wrote &&
		prev.pc == fp.pc && prev.cc == fp.cc && prev.ss == fp.ss && prev.halted == fp.halted {
		return &SimError{Cycle: m.cycle, FU: -1, Err: ErrLivelock}
	}
	return nil
}

// Run executes until every FU halts or an error occurs, returning the
// total cycle count. Run drives the machine through StepN, so eligible
// straight-line stretches execute on the fused superop engine; the
// observable outcome is identical to stepping cycle by cycle.
func (m *Machine) Run() (cycles uint64, err error) {
	for {
		running, err := m.StepN(1 << 62)
		if err != nil {
			return m.cycle, err
		}
		if !running {
			return m.cycle, nil
		}
	}
}
