package core

import (
	"reflect"
	"testing"

	"ximd/internal/isa"
)

// TestPredecodeEquivalence proves the cache hit path (a machine built
// from a shared Decoded table) is architecturally identical to the cold
// path (a machine that validates and decodes at New): same cycle count,
// same statistics, same register results.
func TestPredecodeEquivalence(t *testing.T) {
	prog := seqProgram(t,
		isa.DataOp{Op: isa.OpIAdd, A: isa.I(2), B: isa.I(3), Dest: 1},
		isa.DataOp{Op: isa.OpIMult, A: isa.R(1), B: isa.I(4), Dest: 2},
		isa.DataOp{Op: isa.OpISub, A: isa.R(2), B: isa.R(1), Dest: 3},
	)
	d, err := Predecode(prog)
	if err != nil {
		t.Fatalf("Predecode: %v", err)
	}
	cold := run(t, prog, Config{})
	hot := run(t, prog, Config{Decoded: d})
	if cold.Cycle() != hot.Cycle() {
		t.Fatalf("cycles: cold %d, hot %d", cold.Cycle(), hot.Cycle())
	}
	if !reflect.DeepEqual(cold.Stats(), hot.Stats()) {
		t.Fatalf("stats diverge:\ncold %+v\nhot  %+v", cold.Stats(), hot.Stats())
	}
	for r := uint8(1); r <= 3; r++ {
		if cold.Regs().Peek(r) != hot.Regs().Peek(r) {
			t.Fatalf("r%d: cold %v, hot %v", r, cold.Regs().Peek(r), hot.Regs().Peek(r))
		}
	}
}

// TestPredecodeSharedConcurrently runs several machines off one Decoded
// table at once; the race detector proves the table is read-only.
func TestPredecodeSharedConcurrently(t *testing.T) {
	prog := seqProgram(t,
		isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(1), Dest: 1},
		isa.DataOp{Op: isa.OpIAdd, A: isa.R(1), B: isa.R(1), Dest: 2},
	)
	d, err := Predecode(prog)
	if err != nil {
		t.Fatalf("Predecode: %v", err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			m, err := New(nil, Config{Decoded: d})
			if err == nil {
				_, err = m.Run()
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent run: %v", err)
		}
	}
}

// TestPredecodeMismatch rejects a Decoded table paired with a different
// program.
func TestPredecodeMismatch(t *testing.T) {
	a := seqProgram(t, isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(1), Dest: 1})
	b := seqProgram(t, isa.DataOp{Op: isa.OpIAdd, A: isa.I(2), B: isa.I(2), Dest: 1})
	d, err := Predecode(a)
	if err != nil {
		t.Fatalf("Predecode: %v", err)
	}
	if _, err := New(b, Config{Decoded: d}); err == nil {
		t.Fatal("New accepted a Decoded built from a different program")
	}
}
