package core

import (
	"fmt"
	"strings"

	"ximd/internal/isa"
)

// Stats accumulates execution statistics across a run. The stream-count
// histogram records how many cycles the machine spent executing each
// number of concurrent instruction streams — the paper's defining
// observable ("The number of streams can vary from cycle to cycle").
type Stats struct {
	// Cycles is the number of executed cycles.
	Cycles uint64
	// DataOps[fu] counts non-nop data operations executed by FU fu.
	DataOps []uint64
	// Nops[fu] counts explicit nops executed by FU fu.
	Nops []uint64
	// HaltedCycles[fu] counts cycles FU fu spent halted.
	HaltedCycles []uint64
	// CondBranches counts conditional control operations evaluated;
	// TakenBranches counts those that selected T1.
	CondBranches  uint64
	TakenBranches uint64
	// Loads and Stores count memory operations.
	Loads  uint64
	Stores uint64
	// RegConflicts and MemConflicts count tolerated same-cycle write
	// conflicts (only populated with Config.TolerateConflicts).
	RegConflicts uint64
	MemConflicts uint64
	// SyncWaitCycles[fu] counts the subset of Nops[fu] spent spinning on
	// the synchronization-signal network: the parcel's data operation is
	// a nop and its branch condition reads SS. This is the profiler's
	// sync-wait stall class; Nops[fu]-SyncWaitCycles[fu] is idle padding.
	// Always zero on the VLIW baseline, which has no SS network.
	SyncWaitCycles []uint64
	// PortConflicts[fu] counts tolerated same-cycle register write
	// conflicts attributed to the FU whose write lost (the per-FU view of
	// RegConflicts). These are events, not cycles: the FU still executed
	// its data operation that cycle.
	PortConflicts []uint64
	// StallCycles[fu] counts cycles FU fu spent stalled on an in-flight
	// load under injected memory latency; FailedCycles[fu] counts cycles
	// it spent hard-failed. Both stay zero with injection disabled.
	StallCycles  []uint64
	FailedCycles []uint64
	// BitFlips counts loads whose value arrived with an injected bit
	// inverted.
	BitFlips uint64
	// StreamHistogram[k] is the number of cycles executed with exactly k
	// concurrent instruction streams (SSETs), k in 1..NumFU.
	StreamHistogram []uint64
	// StreamClamped counts cycles whose observed SSET count fell outside
	// the histogram's 1..NumFU range and was clamped to the nearest bound.
	// A non-zero value indicates a partition-tracker bug; the cycles are
	// still counted so that MeanStreams never silently undercounts.
	StreamClamped uint64
}

// NewStats returns a zeroed Stats sized for a numFU-wide machine.
func NewStats(numFU int) Stats {
	var s Stats
	s.init(numFU)
	return s
}

func (s *Stats) init(numFU int) { s.Reset(numFU) }

// Reset zeroes s in place for a numFU-wide machine, reusing the per-FU
// slices when their capacity allows — the machine-pooling path
// (Machine.Reset) recycles a retired machine's statistics without
// reallocating.
func (s *Stats) Reset(numFU int) {
	*s = Stats{
		DataOps:         resetCounters(s.DataOps, numFU),
		Nops:            resetCounters(s.Nops, numFU),
		HaltedCycles:    resetCounters(s.HaltedCycles, numFU),
		StallCycles:     resetCounters(s.StallCycles, numFU),
		FailedCycles:    resetCounters(s.FailedCycles, numFU),
		SyncWaitCycles:  resetCounters(s.SyncWaitCycles, numFU),
		PortConflicts:   resetCounters(s.PortConflicts, numFU),
		StreamHistogram: resetCounters(s.StreamHistogram, numFU+1),
	}
}

// resetCounters returns a zeroed n-element counter slice, reusing s's
// backing array when it is large enough.
func resetCounters(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Clone returns a deep copy: the slice fields of the copy share no
// backing arrays with s, so a clone taken mid-run is immutable under
// further machine steps and safe to hand to another goroutine.
func (s Stats) Clone() Stats {
	c := s
	c.DataOps = append([]uint64(nil), s.DataOps...)
	c.Nops = append([]uint64(nil), s.Nops...)
	c.HaltedCycles = append([]uint64(nil), s.HaltedCycles...)
	c.StallCycles = append([]uint64(nil), s.StallCycles...)
	c.FailedCycles = append([]uint64(nil), s.FailedCycles...)
	c.SyncWaitCycles = append([]uint64(nil), s.SyncWaitCycles...)
	c.PortConflicts = append([]uint64(nil), s.PortConflicts...)
	c.StreamHistogram = append([]uint64(nil), s.StreamHistogram...)
	return c
}

// observeStreams counts one executed cycle into the stream histogram.
// Every executed cycle must land in the histogram: an out-of-range SSET
// count is clamped to the nearest bound and flagged, so the invariant
// Cycles == sum(StreamHistogram) holds and MeanStreams cannot silently
// undercount.
func (s *Stats) observeStreams(numSSETs int) {
	s.Cycles++
	k := numSSETs
	if k < 1 {
		k = 1
		s.StreamClamped++
	} else if k >= len(s.StreamHistogram) {
		k = len(s.StreamHistogram) - 1
		s.StreamClamped++
	}
	s.StreamHistogram[k]++
}

func (s *Stats) observeCycle(numSSETs int, parcels []isa.Parcel, halted []bool) {
	s.observeStreams(numSSETs)
	for fu := range parcels {
		if halted[fu] {
			s.HaltedCycles[fu]++
			continue
		}
		if parcels[fu].Data.Op == isa.OpNop {
			s.Nops[fu]++
			if syncWaitParcel(parcels[fu]) {
				s.SyncWaitCycles[fu]++
			}
		} else {
			s.DataOps[fu]++
		}
	}
}

// syncWaitParcel reports whether executing p is a synchronization spin:
// no data-path work, branch condition watching the SS network.
func syncWaitParcel(p isa.Parcel) bool {
	return p.Ctrl.Kind == isa.CtrlCond && p.Ctrl.Cond.ReadsSS()
}

// AttributedFUCycles returns the number of FU-cycles the profiler has
// attributed to a class: busy (DataOps), nop (Nops, of which
// SyncWaitCycles are sync spins), halted, memory-stalled, or failed.
// Every executed cycle lands each FU in exactly one class, so
// AttributedFUCycles == Cycles × NumFU for every run — the attribution
// invariant the profiler tests enforce.
func (s Stats) AttributedFUCycles() uint64 {
	var total uint64
	for fu := range s.DataOps {
		total += s.DataOps[fu] + s.Nops[fu] + s.HaltedCycles[fu] + s.StallCycles[fu] + s.FailedCycles[fu]
	}
	return total
}

// TotalDataOps returns the total non-nop data operations across all FUs.
func (s Stats) TotalDataOps() uint64 {
	var total uint64
	for _, v := range s.DataOps {
		total += v
	}
	return total
}

// Utilization returns the fraction of FU-cycles that performed useful
// (non-nop, non-halted) data work, in [0, 1].
func (s Stats) Utilization() float64 {
	if s.Cycles == 0 || len(s.DataOps) == 0 {
		return 0
	}
	return float64(s.TotalDataOps()) / float64(s.Cycles*uint64(len(s.DataOps)))
}

// OpsPerCycle returns the average useful data operations per cycle.
func (s Stats) OpsPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.TotalDataOps()) / float64(s.Cycles)
}

// MeanStreams returns the cycle-weighted average number of concurrent
// instruction streams.
func (s Stats) MeanStreams() float64 {
	if s.Cycles == 0 {
		return 0
	}
	var sum uint64
	for k, cycles := range s.StreamHistogram {
		sum += uint64(k) * cycles
	}
	return float64(sum) / float64(s.Cycles)
}

// String renders a short human-readable summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d ops=%d ops/cycle=%.2f util=%.1f%% streams(mean)=%.2f",
		s.Cycles, s.TotalDataOps(), s.OpsPerCycle(), 100*s.Utilization(), s.MeanStreams())
	fmt.Fprintf(&b, " branches=%d/%d loads=%d stores=%d",
		s.TakenBranches, s.CondBranches, s.Loads, s.Stores)
	return b.String()
}
