package core

import (
	"fmt"

	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
	"ximd/internal/wire"
)

// Binary serialization of machine snapshots for the durable checkpoint
// format (internal/ckpt). Only in-flight snapshots serialize: a
// snapshot of a finished or faulted machine carries a latched error
// value that cannot round-trip through bytes, and a terminal run has a
// result document instead of a checkpoint — the service archives it
// and deletes the checkpoint. Encode therefore refuses done/failed
// snapshots, and everything that does encode restores byte-identically.

// EncodeStats appends a statistics snapshot to w.
func EncodeStats(w *wire.Writer, s *Stats) {
	w.U64(s.Cycles)
	w.U64s(s.DataOps)
	w.U64s(s.Nops)
	w.U64s(s.HaltedCycles)
	w.U64(s.CondBranches)
	w.U64(s.TakenBranches)
	w.U64(s.Loads)
	w.U64(s.Stores)
	w.U64(s.RegConflicts)
	w.U64(s.MemConflicts)
	w.U64s(s.SyncWaitCycles)
	w.U64s(s.PortConflicts)
	w.U64s(s.StallCycles)
	w.U64s(s.FailedCycles)
	w.U64(s.BitFlips)
	w.U64s(s.StreamHistogram)
	w.U64(s.StreamClamped)
}

// DecodeStats reads a statistics snapshot written by EncodeStats.
func DecodeStats(r *wire.Reader) Stats {
	var s Stats
	s.Cycles = r.U64()
	s.DataOps = r.U64s()
	s.Nops = r.U64s()
	s.HaltedCycles = r.U64s()
	s.CondBranches = r.U64()
	s.TakenBranches = r.U64()
	s.Loads = r.U64()
	s.Stores = r.U64()
	s.RegConflicts = r.U64()
	s.MemConflicts = r.U64()
	s.SyncWaitCycles = r.U64s()
	s.PortConflicts = r.U64s()
	s.StallCycles = r.U64s()
	s.FailedCycles = r.U64s()
	s.BitFlips = r.U64()
	s.StreamHistogram = r.U64s()
	s.StreamClamped = r.U64()
	return s
}

func encodeBools(w *wire.Writer, vs []bool) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.Bool(v)
	}
}

func decodeBools(r *wire.Reader) []bool {
	n := r.Count(1)
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Bool()
	}
	return out
}

func encodeAddrs(w *wire.Writer, vs []isa.Addr) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U16(uint16(v))
	}
}

func decodeAddrs(r *wire.Reader) []isa.Addr {
	n := r.Count(2)
	if n == 0 {
		return nil
	}
	out := make([]isa.Addr, n)
	for i := range out {
		out[i] = isa.Addr(r.U16())
	}
	return out
}

// Encode appends the snapshot to w. Snapshots of finished or faulted
// machines do not encode: the latched error value cannot round-trip,
// and a terminal run is archived as a result document, never resumed.
func (s *Snapshot) Encode(w *wire.Writer) error {
	if s.done || s.failure != nil {
		return fmt.Errorf("core: cannot encode a terminal snapshot (done=%v, failure=%v)", s.done, s.failure)
	}
	w.U64(s.cycle)
	encodeAddrs(w, s.pc)
	encodeBools(w, s.cc)
	encodeBools(w, s.ccValid)
	encodeBools(w, s.halted)
	w.U32(uint32(len(s.prevSS)))
	for _, v := range s.prevSS {
		w.U8(uint8(v))
	}
	w.Bool(s.prevState.valid)
	w.Bool(s.prevState.wrote)
	for _, pc := range s.prevState.pc {
		w.U16(uint16(pc))
	}
	w.U8(s.prevState.cc)
	w.U8(s.prevState.ss)
	w.U8(s.prevState.halted)
	w.U32(uint32(len(s.sset)))
	for _, v := range s.sset {
		w.U8(uint8(v))
	}
	EncodeStats(w, &s.stats)
	s.regs.Encode(w)
	if err := mem.EncodeState(w, s.memory); err != nil {
		return err
	}
	w.Bool(s.stall != nil)
	if s.stall != nil {
		w.U32(uint32(len(s.stall)))
		for _, v := range s.stall {
			w.U32(v)
		}
		encodeBools(w, s.failed)
	}
	w.I64(int64(s.nFailed))
	return nil
}

// DecodeSnapshot reads a snapshot written by Encode. The decoded
// snapshot restores through Machine.Restore exactly like one taken in
// this process; structural corruption (bad lengths, out-of-range SSET
// ids) fails the decode rather than producing a restorable-but-wrong
// state.
func DecodeSnapshot(r *wire.Reader) (*Snapshot, error) {
	s := &Snapshot{}
	s.cycle = r.U64()
	s.pc = decodeAddrs(r)
	s.cc = decodeBools(r)
	s.ccValid = decodeBools(r)
	s.halted = decodeBools(r)
	nSS := r.Count(1)
	s.prevSS = make([]isa.Sync, nSS)
	for i := range s.prevSS {
		v := r.U8()
		if v > uint8(isa.Done) {
			return nil, fmt.Errorf("core: decode snapshot: invalid sync value %d", v)
		}
		s.prevSS[i] = isa.Sync(v)
	}
	s.prevState.valid = r.Bool()
	s.prevState.wrote = r.Bool()
	for i := range s.prevState.pc {
		s.prevState.pc[i] = isa.Addr(r.U16())
	}
	s.prevState.cc = r.U8()
	s.prevState.ss = r.U8()
	s.prevState.halted = r.U8()
	nSSET := r.Count(1)
	s.sset = make([]int, nSSET)
	for i := range s.sset {
		// Valid ids span [0, 2*numFU): running groups use first-member FU
		// indices, halted FUs are frozen singletons offset by numFU.
		v := r.U8()
		if int(v) >= 2*isa.NumFU {
			return nil, fmt.Errorf("core: decode snapshot: SSET id %d out of range", v)
		}
		s.sset[i] = int(v)
	}
	s.stats = DecodeStats(r)
	regs, err := regfile.DecodeSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	s.regs = regs
	memState, err := mem.DecodeState(r)
	if err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	s.memory = memState
	if r.Bool() {
		nStall := r.Count(4)
		s.stall = make([]uint32, nStall)
		for i := range s.stall {
			s.stall[i] = r.U32()
		}
		s.failed = decodeBools(r)
	}
	s.nFailed = int(r.I64())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	n := len(s.pc)
	if n < 1 || n > isa.NumFU {
		return nil, fmt.Errorf("core: decode snapshot: %d FUs out of range", n)
	}
	if len(s.cc) != n || len(s.ccValid) != n || len(s.halted) != n || len(s.prevSS) != n || len(s.sset) != n {
		return nil, fmt.Errorf("core: decode snapshot: inconsistent per-FU vector lengths")
	}
	for _, id := range s.sset {
		if id >= 2*n {
			return nil, fmt.Errorf("core: decode snapshot: SSET id %d out of range for %d FUs", id, n)
		}
	}
	if s.stall != nil && (len(s.stall) != n || len(s.failed) != n) {
		return nil, fmt.Errorf("core: decode snapshot: inconsistent injection vector lengths")
	}
	if s.nFailed < 0 || s.nFailed > n {
		return nil, fmt.Errorf("core: decode snapshot: failed-FU count %d out of range", s.nFailed)
	}
	return s, nil
}
