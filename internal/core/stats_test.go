package core

import (
	"errors"
	"reflect"
	"testing"

	"ximd/internal/isa"
)

// TestStatsSnapshotImmutable is the regression test for the
// slice-aliasing bug: a Stats snapshot taken mid-run must not change
// when the machine keeps stepping.
func TestStatsSnapshotImmutable(t *testing.T) {
	prog := seqProgram(t,
		isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(2), Dest: 1},
		isa.Nop,
		isa.DataOp{Op: isa.OpIMult, A: isa.R(1), B: isa.I(3), Dest: 2},
		isa.DataOp{Op: isa.OpISub, A: isa.R(2), B: isa.R(1), Dest: 3},
	)
	m, err := New(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Stats()
	frozen := snap.Clone()
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, frozen) {
		t.Fatalf("mid-run snapshot mutated by further execution:\n got %+v\nwant %+v", snap, frozen)
	}
	final := m.Stats()
	if reflect.DeepEqual(final, snap) {
		t.Fatal("final stats equal the mid-run snapshot; machine did not keep counting")
	}
	// Mutating a snapshot must not write through to the machine.
	final.DataOps[0] += 100
	final.StreamHistogram[1] += 100
	if m.Stats().DataOps[0] == final.DataOps[0] {
		t.Fatal("writing a snapshot's DataOps mutated the live machine")
	}
}

func TestStatsCloneDeepCopies(t *testing.T) {
	s := NewStats(4)
	s.DataOps[2] = 7
	s.Nops[1] = 3
	s.HaltedCycles[0] = 9
	s.StreamHistogram[4] = 11
	c := s.Clone()
	if !reflect.DeepEqual(s, c) {
		t.Fatalf("clone differs: %+v vs %+v", s, c)
	}
	c.DataOps[2]++
	c.Nops[1]++
	c.HaltedCycles[0]++
	c.StreamHistogram[4]++
	if s.DataOps[2] != 7 || s.Nops[1] != 3 || s.HaltedCycles[0] != 9 || s.StreamHistogram[4] != 11 {
		t.Fatalf("clone shares backing arrays with original: %+v", s)
	}
}

// TestObserveCycleClampsOutOfRange pins the clamp-and-count fix: an
// out-of-range SSET count lands on the nearest histogram bound and is
// flagged, so Cycles == sum(StreamHistogram) always holds.
func TestObserveCycleClampsOutOfRange(t *testing.T) {
	s := NewStats(2) // histogram indexes 0..2
	parcels := make([]isa.Parcel, 2)
	halted := make([]bool, 2)
	s.observeCycle(0, parcels, halted) // below range: clamp to 1
	s.observeCycle(5, parcels, halted) // above range: clamp to 2
	s.observeCycle(1, parcels, halted) // in range
	if s.StreamClamped != 2 {
		t.Fatalf("StreamClamped = %d, want 2", s.StreamClamped)
	}
	if s.StreamHistogram[1] != 2 || s.StreamHistogram[2] != 1 {
		t.Fatalf("histogram = %v, want [0 2 1]", s.StreamHistogram)
	}
	var sum uint64
	for _, c := range s.StreamHistogram {
		sum += c
	}
	if sum != s.Cycles {
		t.Fatalf("sum(histogram) = %d, Cycles = %d; MeanStreams would undercount", sum, s.Cycles)
	}
}

// TestTerminalErrorLatched pins the resumability bug: after Step
// returns ErrMaxCycles (or any failure), further Step/Run calls must
// return the same error instead of executing past the failure.
func TestTerminalErrorLatched(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpIAdd, A: isa.R(1), B: isa.I(1), Dest: 1}, isa.Goto(0)))
	m, err := New(b.MustBuild(), Config{MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, first := m.Run()
	if !errors.Is(first, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", first)
	}
	cycleAtFailure := m.Cycle()
	for i := 0; i < 3; i++ {
		running, err := m.Step()
		if running || err != first {
			t.Fatalf("Step after failure: (%v, %v), want (false, latched %v)", running, err, first)
		}
	}
	if _, err := m.Run(); err != first {
		t.Fatalf("Run after failure: %v, want latched %v", err, first)
	}
	if m.Cycle() != cycleAtFailure {
		t.Fatalf("machine executed %d cycles past its failure", m.Cycle()-cycleAtFailure)
	}
	if m.Err() != first {
		t.Fatalf("Err() = %v, want %v", m.Err(), first)
	}
}

func TestLivelockErrorLatched(t *testing.T) {
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.Nop, isa.IfAllSS(1, 0)))
	b.Set(0, 1, par(isa.Nop, isa.Goto(0)))
	b.Set(1, 0, isa.HaltParcel)
	b.Set(1, 1, isa.HaltParcel)
	m, err := New(b.MustBuild(), Config{DetectLivelock: true, MaxCycles: 10000})
	if err != nil {
		t.Fatal(err)
	}
	_, first := m.Run()
	if !errors.Is(first, ErrLivelock) {
		t.Fatalf("err = %v, want ErrLivelock", first)
	}
	if running, err := m.Step(); running || err != first {
		t.Fatalf("Step after livelock: (%v, %v), want latched error", running, err)
	}
}
