package core

import (
	"ximd/internal/isa"
)

// ProgramStyle classifies a program against the state-machine models of
// Figures 3–6: which traditional architecture the XIMD is being asked to
// emulate. The classification is static (over the program text), matching
// the paper's formal statements: "If for a given program, the functions
// δ1..δn are identical and the initial values of the state variables
// S1..Sn are identical, then the XIMD machine will be the functional
// equivalent of a VLIW machine", and correspondingly for SIMD and MIMD.
type ProgramStyle struct {
	// SISD: the program uses a single functional unit.
	SISD bool
	// VLIW: every instruction carries the identical control operation in
	// all parcels (identical δ), so a single instruction stream executes.
	VLIW bool
	// SIMD: VLIW and, additionally, every instruction carries the
	// identical data operation in all parcels (identical λ).
	SIMD bool
	// MIMD: no parcel's control operation references another FU's
	// condition code or synchronization signal (each δi disregards the
	// state of other FUs), so the streams are fully independent.
	MIMD bool
}

// Classify inspects prog and reports which traditional execution models
// it conforms to. A program may conform to several (a single-FU program
// is simultaneously SISD, VLIW, SIMD, and MIMD); a program that uses the
// full variable-stream repertoire conforms to none and requires XIMD.
func Classify(prog *isa.Program) ProgramStyle {
	style := ProgramStyle{
		SISD: prog.NumFU == 1,
		VLIW: true,
		SIMD: true,
		MIMD: true,
	}
	for _, instr := range prog.Instrs {
		lead := -1
		for fu := 0; fu < prog.NumFU; fu++ {
			p := instr[fu]
			if p.Trap {
				continue
			}
			if lead == -1 {
				lead = fu
			}
			if !p.Ctrl.Equal(instr[lead].Ctrl) || p.Sync != instr[lead].Sync {
				style.VLIW = false
				style.SIMD = false
			}
			if p.Data != instr[lead].Data {
				style.SIMD = false
			}
			if refersToOtherFU(p.Ctrl, fu) {
				style.MIMD = false
			}
		}
		// Instructions where some FUs have parcels and others have holes
		// cannot execute as a single lock-step stream.
		if lead >= 0 {
			for fu := 0; fu < prog.NumFU; fu++ {
				if instr[fu].Trap {
					style.VLIW = false
					style.SIMD = false
					break
				}
			}
		}
	}
	return style
}

// refersToOtherFU reports whether a control operation's condition reads
// state produced by a functional unit other than fu.
func refersToOtherFU(c isa.CtrlOp, fu int) bool {
	if c.Kind != isa.CtrlCond {
		return false
	}
	switch c.Cond {
	case isa.CondCC, isa.CondNotCC, isa.CondSS, isa.CondNotSS:
		return int(c.Idx) != fu
	case isa.CondAllSS, isa.CondAnySS:
		return true
	case isa.CondAllSSMask, isa.CondAnySSMask:
		return c.Mask&^(1<<uint(fu)) != 0
	}
	return false
}
