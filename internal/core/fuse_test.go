package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ximd/internal/inject"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

// Differential testing of the fused superop engine. A fused run must be
// byte-identical to an unfused (per-cycle) run of the same program and
// config: cycle count, error text, every statistics counter, register
// file port accounting, memory counters, the SSET partition, all 256
// registers, and memory content. Tracing is exercised separately: a
// machine with a tracer attached never fuses (by design — the per-cycle
// path is the single source of truth for cycle records), so trace
// equivalence reduces to the fast-vs-reference net in
// differential_test.go. These tests run WITHOUT a tracer so fusion
// actually engages.

// randomFusibleXIMDProgram biases randomXIMDProgram's output toward
// fusible code: a fraction of whole instruction words are rewritten to
// all-FU goto-next control (keeping their random — including hazardous
// — data operations), producing long straight-line runs with faults,
// store conflicts, duplicate destinations, and sync signals buried in
// their middles.
func randomFusibleXIMDProgram(r *rand.Rand) *isa.Program {
	p := randomXIMDProgram(r)
	n := len(p.Instrs)
	for addr := 0; addr < n-1; addr++ {
		if r.Intn(10) < 6 {
			for fu := 0; fu < p.NumFU; fu++ {
				if p.Instrs[addr][fu].Trap && r.Intn(4) != 0 {
					// Most rewritten words become fully occupied (fusible);
					// some keep a trap hole, which must stay unfused.
					p.Instrs[addr][fu] = isa.Parcel{Data: isa.Nop}
				}
				if !p.Instrs[addr][fu].Trap {
					p.Instrs[addr][fu].Ctrl = isa.Goto(isa.Addr(addr + 1))
				}
			}
		}
	}
	return p
}

// runFusion executes prog on the fast engine with fusion on or off,
// with the same deterministic register/memory image the engine
// differential tests use, and no tracer (so fusion can engage).
func runFusion(t *testing.T, tag string, prog *isa.Program, cfg Config, engine EngineKind, disableFusion bool) (*Machine, *mem.Shared, uint64, error) {
	t.Helper()
	memory := mem.NewShared(diffMemWords)
	for i := uint32(0); i < diffMemWords; i++ {
		memory.Poke(i, isa.WordFromInt(int32(i)*3-700))
	}
	cfg.Engine = engine
	cfg.Memory = memory
	cfg.DisableFusion = disableFusion
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatalf("%s: New: %v", tag, err)
	}
	for i := uint8(0); i < 24; i++ {
		m.Regs().Poke(i, isa.WordFromInt(int32(i)*7-40))
	}
	cycles, runErr := m.Run()
	return m, memory, cycles, runErr
}

// assertMachinesAgree compares everything observable about two finished
// runs of the same program.
func assertMachinesAgree(t *testing.T, tag, aName, bName string, prog *isa.Program,
	am *Machine, amem *mem.Shared, acyc uint64, aerr error,
	bm *Machine, bmem *mem.Shared, bcyc uint64, berr error) {
	t.Helper()
	if acyc != bcyc {
		t.Fatalf("%s: cycle divergence: %s %d, %s %d (%v vs %v)", tag, aName, acyc, bName, bcyc, aerr, berr)
	}
	if errString(aerr) != errString(berr) {
		t.Fatalf("%s: error divergence:\n%s: %s\n%s: %s", tag, aName, errString(aerr), bName, errString(berr))
	}
	if errString(am.Err()) != errString(bm.Err()) {
		t.Fatalf("%s: latched error divergence:\n%s: %s\n%s: %s",
			tag, aName, errString(am.Err()), bName, errString(bm.Err()))
	}
	if am.Done() != bm.Done() {
		t.Fatalf("%s: done divergence: %s %v, %s %v", tag, aName, am.Done(), bName, bm.Done())
	}
	if !reflect.DeepEqual(am.Stats(), bm.Stats()) {
		t.Fatalf("%s: stats divergence:\n%s: %+v\n%s: %+v", tag, aName, am.Stats(), bName, bm.Stats())
	}
	if am.Regs().Stats() != bm.Regs().Stats() {
		t.Fatalf("%s: regfile stats divergence:\n%s: %+v\n%s: %+v",
			tag, aName, am.Regs().Stats(), bName, bm.Regs().Stats())
	}
	if !am.Partition().Equal(bm.Partition()) {
		t.Fatalf("%s: partition divergence: %s %v, %s %v", tag, aName, am.Partition(), bName, bm.Partition())
	}
	for fu := 0; fu < prog.NumFU; fu++ {
		if am.PC(fu) != bm.PC(fu) {
			t.Fatalf("%s: FU%d PC divergence: %s %d, %s %d", tag, fu, aName, am.PC(fu), bName, bm.PC(fu))
		}
		if am.CC(fu) != bm.CC(fu) {
			t.Fatalf("%s: FU%d CC divergence", tag, fu)
		}
	}
	for reg := 0; reg < isa.NumRegs; reg++ {
		if am.Regs().Peek(uint8(reg)) != bm.Regs().Peek(uint8(reg)) {
			t.Fatalf("%s: r%d divergence: %s %d, %s %d",
				tag, reg, aName, am.Regs().Peek(uint8(reg)), bName, bm.Regs().Peek(uint8(reg)))
		}
	}
	al, as := amem.Counters()
	bl, bs := bmem.Counters()
	if al != bl || as != bs {
		t.Fatalf("%s: memory counter divergence: %s %d/%d, %s %d/%d", tag, aName, al, as, bName, bl, bs)
	}
	for a := uint32(0); a < diffMemWords; a++ {
		if amem.Peek(a) != bmem.Peek(a) {
			t.Fatalf("%s: M(%d) divergence: %s %d, %s %d", tag, a, aName, amem.Peek(a), bName, bmem.Peek(a))
		}
	}
}

// assertFusionAgrees holds a fused run, an unfused fast run, and a
// reference run of the same program to identical outcomes.
func assertFusionAgrees(t *testing.T, tag string, prog *isa.Program, cfg Config) {
	t.Helper()
	fm, fmem, fcyc, ferr := runFusion(t, tag, prog, cfg, EngineFast, false)
	um, umem, ucyc, uerr := runFusion(t, tag, prog, cfg, EngineFast, true)
	rm, rmem, rcyc, rerr := runFusion(t, tag, prog, cfg, EngineReference, false)
	assertMachinesAgree(t, tag, "fused", "unfused", prog, fm, fmem, fcyc, ferr, um, umem, ucyc, uerr)
	assertMachinesAgree(t, tag, "fused", "reference", prog, fm, fmem, fcyc, ferr, rm, rmem, rcyc, rerr)
}

// TestDifferentialFusedVsUnfused is the fused-engine half of the
// random-program campaign: 320 programs (two-thirds biased toward long
// fusible runs with hazards buried inside) across random config
// combinations, each run fused, unfused, and on the reference engine.
func TestDifferentialFusedVsUnfused(t *testing.T) {
	r := rand.New(rand.NewSource(7991))
	for iter := 0; iter < 320; iter++ {
		var prog *isa.Program
		if iter%3 == 0 {
			prog = randomXIMDProgram(r)
		} else {
			prog = randomFusibleXIMDProgram(r)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("iter %d: generated invalid program: %v", iter, err)
		}
		cfg := Config{
			MaxCycles:         300,
			TolerateConflicts: r.Intn(2) == 0,
			DetectLivelock:    r.Intn(2) == 0,
			RegisteredSS:      r.Intn(2) == 0,
		}
		assertFusionAgrees(t, fmt.Sprintf("iter %d (cfg %+v)", iter, cfg), prog, cfg)
	}
}

// TestDifferentialFusedUnderInjection covers the fault-injection
// campaigns: an enabled injector disables fusion at New (injection is
// cycle-granular architectural state), so these runs prove the fallback
// is seamless — Run still goes through StepN and must match the
// per-cycle engines exactly.
func TestDifferentialFusedUnderInjection(t *testing.T) {
	r := rand.New(rand.NewSource(4411))
	for iter := 0; iter < 40; iter++ {
		prog := randomFusibleXIMDProgram(r)
		if err := prog.Validate(); err != nil {
			t.Fatalf("iter %d: invalid program: %v", iter, err)
		}
		icfg := randomInjectConfig(r)
		cfg := Config{
			MaxCycles:         300,
			TolerateConflicts: r.Intn(2) == 0,
			Inject:            inject.MustNew(icfg),
		}
		fm, fmem, fcyc, ferr := runFusion(t, "inj", prog, cfg, EngineFast, false)
		cfg.Inject = inject.MustNew(icfg)
		um, umem, ucyc, uerr := runFusion(t, "inj", prog, cfg, EngineFast, true)
		assertMachinesAgree(t, fmt.Sprintf("iter %d", iter), "fused", "unfused", prog,
			fm, fmem, fcyc, ferr, um, umem, ucyc, uerr)
	}
}

// TestStepNMatchesStepLoop holds StepN (arbitrary batch sizes, fusion
// engaged) to the same outcome as a strict one-cycle Step loop on an
// identically configured machine — the bulk-vs-sequential contract.
func TestStepNMatchesStepLoop(t *testing.T) {
	r := rand.New(rand.NewSource(220))
	for iter := 0; iter < 60; iter++ {
		prog := randomFusibleXIMDProgram(r)
		if err := prog.Validate(); err != nil {
			t.Fatalf("iter %d: invalid program: %v", iter, err)
		}
		cfg := Config{MaxCycles: 300, TolerateConflicts: r.Intn(2) == 0, DetectLivelock: r.Intn(2) == 0}

		build := func() (*Machine, *mem.Shared) {
			memory := mem.NewShared(diffMemWords)
			for i := uint32(0); i < diffMemWords; i++ {
				memory.Poke(i, isa.WordFromInt(int32(i)*3-700))
			}
			c := cfg
			c.Memory = memory
			m, err := New(prog, c)
			if err != nil {
				t.Fatalf("iter %d: New: %v", iter, err)
			}
			for i := uint8(0); i < 24; i++ {
				m.Regs().Poke(i, isa.WordFromInt(int32(i)*7-40))
			}
			return m, memory
		}

		bm, bmem := build()
		var berr error
		for {
			// Batch sizes cycle through awkward values, forcing fused runs
			// to be entered, capped mid-run, and re-entered at interior
			// addresses.
			running, err := bm.StepN(uint64(1 + (bm.Cycle() % 7)))
			if err != nil {
				berr = err
				break
			}
			if !running {
				break
			}
		}

		sm, smem := build()
		var serr error
		for {
			running, err := sm.Step()
			if err != nil {
				serr = err
				break
			}
			if !running {
				break
			}
		}
		assertMachinesAgree(t, fmt.Sprintf("iter %d", iter), "stepN", "step", prog,
			bm, bmem, bm.Cycle(), berr, sm, smem, sm.Cycle(), serr)
	}
}

// TestFusionEngages guards against the net silently testing nothing: a
// straight-line program must actually produce nonzero run lengths and
// take the fused path.
func TestFusionEngages(t *testing.T) {
	n := 6
	p := &isa.Program{NumFU: 4, Instrs: make([]isa.Instruction, n)}
	for addr := 0; addr < n; addr++ {
		for fu := 0; fu < 4; fu++ {
			pc := isa.Parcel{Data: isa.DataOp{Op: isa.OpIAdd, A: isa.R(uint8(fu)), B: isa.I(1), Dest: uint8(fu)}}
			if addr == n-1 {
				pc.Ctrl = isa.Halt()
			} else {
				pc.Ctrl = isa.Goto(isa.Addr(addr + 1))
			}
			p.Instrs[addr][fu] = pc
		}
	}
	d, err := Predecode(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.fuse.runLen[0]; got != uint32(n-1) {
		t.Fatalf("runLen[0] = %d, want %d", got, n-1)
	}
	m, err := New(nil, Config{Decoded: d})
	if err != nil {
		t.Fatal(err)
	}
	if !m.fuseOK {
		t.Fatal("fuseOK = false on a plain fast-engine machine")
	}
	if k := m.fusibleAt(); k != uint64(n-1) {
		t.Fatalf("fusibleAt = %d, want %d", k, n-1)
	}
	cycles, err := m.Run()
	if err != nil || cycles != uint64(n) {
		t.Fatalf("Run = %d, %v; want %d cycles", cycles, err, n)
	}
	if got := m.Regs().Peek(2).Int(); got != int32(n) {
		t.Fatalf("r2 = %d, want %d", got, n)
	}
}

// FuzzFusionBoundary fuzzes the fusion boundary finder: for arbitrary
// generator seeds it checks the structural invariants of the fused
// tables against a direct re-derivation from the program, then runs the
// program fused and unfused and requires identical outcomes.
func FuzzFusionBoundary(f *testing.F) {
	for seed := int64(1); seed <= 10; seed++ {
		f.Add(seed, uint8(seed))
	}
	f.Fuzz(func(t *testing.T, seed int64, flags uint8) {
		r := rand.New(rand.NewSource(seed))
		var prog *isa.Program
		if flags&8 != 0 {
			prog = randomXIMDProgram(r)
		} else {
			prog = randomFusibleXIMDProgram(r)
		}
		if err := prog.Validate(); err != nil {
			t.Skip()
		}
		d, err := Predecode(prog)
		if err != nil {
			t.Skip()
		}
		fi := d.fuse
		n := prog.NumFU
		plen := prog.Len()
		if len(fi.runLen) != plen || len(fi.words) != plen {
			t.Fatalf("fusion table sized %d/%d for program of %d words", len(fi.runLen), len(fi.words), plen)
		}
		for addr := 0; addr < plen; addr++ {
			// Re-derive linearity straight from the program text.
			linear := true
			seen := map[uint8]bool{}
			for fu := 0; fu < n; fu++ {
				pc := prog.Instrs[addr][fu]
				if pc.Trap || pc.Ctrl.Kind != isa.CtrlGoto || pc.Ctrl.T1 != isa.Addr(addr+1) || addr+1 >= plen {
					linear = false
					break
				}
				if isa.ClassOf(pc.Data.Op).WritesReg() {
					if seen[pc.Data.Dest] {
						linear = false
						break
					}
					seen[pc.Data.Dest] = true
				}
			}
			if linear != (fi.runLen[addr] > 0) {
				t.Fatalf("addr %d: linear = %v but runLen = %d", addr, linear, fi.runLen[addr])
			}
			if !linear {
				continue
			}
			next := uint32(0)
			if addr+1 < plen {
				next = fi.runLen[addr+1]
			}
			if fi.runLen[addr] != next+1 {
				t.Fatalf("addr %d: runLen = %d, want %d", addr, fi.runLen[addr], next+1)
			}
			w := &fi.words[addr]
			if w.opStart > w.opEnd || int(w.opEnd) > len(fi.ops) {
				t.Fatalf("addr %d: op range [%d,%d) outside %d ops", addr, w.opStart, w.opEnd, len(fi.ops))
			}
			// Counts must match a recount of the word's slots.
			var loads, stores, reads, writes, nonNops int
			for fu := 0; fu < n; fu++ {
				dop := prog.Instrs[addr][fu].Data
				cl := isa.ClassOf(dop.Op)
				if dop.Op == isa.OpNop {
					if w.nopMask&(1<<fu) == 0 {
						t.Fatalf("addr %d: FU%d nop not in nopMask", addr, fu)
					}
					continue
				}
				nonNops++
				if cl.ReadsA() && dop.A.Kind != isa.Imm {
					reads++
				}
				if cl.ReadsB() && dop.B.Kind != isa.Imm {
					reads++
				}
				switch {
				case dop.Op == isa.OpLoad:
					loads++
					writes++
				case dop.Op == isa.OpStore:
					stores++
				case cl.WritesReg():
					writes++
				}
			}
			if int(w.opEnd-w.opStart) != nonNops || int(w.loads) != loads || int(w.stores) != stores ||
				int(w.reads) != reads || int(w.writes) != writes {
				t.Fatalf("addr %d: word accounting mismatch: %+v vs recount ops=%d loads=%d stores=%d reads=%d writes=%d",
					addr, *w, nonNops, loads, stores, reads, writes)
			}
		}
		cfg := Config{
			MaxCycles:         300,
			TolerateConflicts: flags&1 != 0,
			DetectLivelock:    flags&2 != 0,
			RegisteredSS:      flags&4 != 0,
		}
		assertFusionAgrees(t, fmt.Sprintf("seed %d flags %#x", seed, flags), prog, cfg)
	})
}
