package core

import (
	"errors"
	"testing"

	"ximd/internal/isa"
	"ximd/internal/mem"
)

// par builds a parcel with an explicit control op and BUSY sync.
func par(d isa.DataOp, c isa.CtrlOp) isa.Parcel {
	return isa.Parcel{Data: d, Ctrl: c}
}

// seqProgram builds a single-FU program from a list of data ops followed
// by a halt; each op branches explicitly to the next address.
func seqProgram(t *testing.T, ops ...isa.DataOp) *isa.Program {
	t.Helper()
	b := isa.NewBuilder(1)
	for i, op := range ops {
		b.Set(isa.Addr(i), 0, par(op, isa.Goto(isa.Addr(i+1))))
	}
	b.Set(isa.Addr(len(ops)), 0, isa.HaltParcel)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("seqProgram: %v", err)
	}
	return p
}

func run(t *testing.T, prog *isa.Program, cfg Config) *Machine {
	t.Helper()
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func TestStraightLineExecution(t *testing.T) {
	prog := seqProgram(t,
		isa.DataOp{Op: isa.OpIAdd, A: isa.I(2), B: isa.I(3), Dest: 1},
		isa.DataOp{Op: isa.OpIMult, A: isa.R(1), B: isa.I(4), Dest: 2},
		isa.DataOp{Op: isa.OpISub, A: isa.R(2), B: isa.R(1), Dest: 3},
	)
	m := run(t, prog, Config{})
	if got := m.Regs().Peek(3).Int(); got != 15 {
		t.Fatalf("r3 = %d, want (2+3)*4-(2+3) = 15", got)
	}
	if m.Cycle() != 4 {
		t.Fatalf("cycles = %d, want 4 (3 ops + halt)", m.Cycle())
	}
	if !m.Done() {
		t.Fatal("machine not done")
	}
}

func TestWritesVisibleNextCycleOnly(t *testing.T) {
	// r1 starts 0; cycle 0 writes r1=5 and r2=r1 (+0). r2 must capture the
	// OLD r1 (0), not 5 — reads observe start-of-cycle state.
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpIAdd, A: isa.I(5), B: isa.I(0), Dest: 1}, isa.Goto(1)))
	b.Set(0, 1, par(isa.DataOp{Op: isa.OpIAdd, A: isa.R(1), B: isa.I(0), Dest: 2}, isa.Goto(1)))
	b.Set(1, 0, isa.HaltParcel)
	b.Set(1, 1, isa.HaltParcel)
	m := run(t, b.MustBuild(), Config{})
	if got := m.Regs().Peek(2).Int(); got != 0 {
		t.Fatalf("r2 = %d, want 0 (start-of-cycle read)", got)
	}
	if got := m.Regs().Peek(1).Int(); got != 5 {
		t.Fatalf("r1 = %d, want 5", got)
	}
}

func TestCCRegisteredBranchTiming(t *testing.T) {
	// Cycle 0: compare sets CC (visible cycle 1). The branch in the SAME
	// cycle as the compare must use the stale CC.
	b := isa.NewBuilder(1)
	// addr 0: lt #1,#2 (CC_0 := true at end of cycle); branch on cc0 now
	// (false, unwritten) -> must fall to T2 = addr 1.
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpLt, A: isa.I(1), B: isa.I(2)}, isa.IfCC(0, 3, 1)))
	// addr 1: branch on cc0 (now true) -> T1 = addr 2.
	b.Set(1, 0, par(isa.Nop, isa.IfCC(0, 2, 3)))
	// addr 2: r1 = 42, halt path.
	b.Set(2, 0, par(isa.DataOp{Op: isa.OpIAdd, A: isa.I(42), B: isa.I(0), Dest: 1}, isa.Goto(4)))
	// addr 3: r1 = 7 (wrong path).
	b.Set(3, 0, par(isa.DataOp{Op: isa.OpIAdd, A: isa.I(7), B: isa.I(0), Dest: 1}, isa.Goto(4)))
	b.Set(4, 0, isa.HaltParcel)
	m := run(t, b.MustBuild(), Config{})
	if got := m.Regs().Peek(1).Int(); got != 42 {
		t.Fatalf("r1 = %d, want 42 (branch must see registered CC)", got)
	}
}

func TestLoadStoreThroughMemory(t *testing.T) {
	shared := mem.NewShared(256)
	shared.PokeInts(100, 11, 22, 33)
	prog := seqProgram(t,
		isa.DataOp{Op: isa.OpLoad, A: isa.I(100), B: isa.I(1), Dest: 1}, // r1 = M(101) = 22
		isa.DataOp{Op: isa.OpIAdd, A: isa.R(1), B: isa.I(1), Dest: 2},   // r2 = 23
		isa.DataOp{Op: isa.OpStore, A: isa.R(2), B: isa.I(200)},         // M(200) = 23
	)
	m := run(t, prog, Config{Memory: shared})
	if got := shared.Peek(200).Int(); got != 23 {
		t.Fatalf("M(200) = %d, want 23", got)
	}
	if m.Stats().Loads != 1 || m.Stats().Stores != 1 {
		t.Fatalf("loads/stores = %d/%d", m.Stats().Loads, m.Stats().Stores)
	}
}

func TestTrapParcelIsError(t *testing.T) {
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.Nop, isa.Goto(1)))
	b.Set(0, 1, par(isa.Nop, isa.Goto(1)))
	b.Set(1, 0, isa.HaltParcel) // FU1 slot at addr 1 left as a hole
	b.Set(2, 0, isa.HaltParcel)
	b.Set(2, 1, isa.HaltParcel)
	m, err := New(b.MustBuild(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	var se *SimError
	if !errors.As(err, &se) || se.FU != 1 {
		t.Fatalf("err = %v, want SimError on FU1", err)
	}
}

func TestDivideByZeroSurfacesWithContext(t *testing.T) {
	prog := seqProgram(t, isa.DataOp{Op: isa.OpIDiv, A: isa.I(1), B: isa.I(0), Dest: 1})
	m, err := New(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	var se *SimError
	if !errors.As(err, &se) || se.Cycle != 0 || se.FU != 0 {
		t.Fatalf("err = %v, want SimError{cycle 0, FU0}", err)
	}
	var te *isa.TrapError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want wrapped TrapError", err)
	}
}

func TestMaxCyclesEnforced(t *testing.T) {
	b := isa.NewBuilder(1)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpIAdd, A: isa.R(1), B: isa.I(1), Dest: 1}, isa.Goto(0)))
	m, err := New(b.MustBuild(), Config{MaxCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if m.Cycle() != 100 {
		t.Fatalf("stopped at cycle %d", m.Cycle())
	}
}

func TestLivelockDetection(t *testing.T) {
	// A barrier that can never be satisfied: FU0 spins BUSY on ALL-SS.
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.Nop, isa.IfAllSS(1, 0)))
	b.Set(0, 1, par(isa.Nop, isa.Goto(0))) // forever BUSY self-loop
	b.Set(1, 0, isa.HaltParcel)
	b.Set(1, 1, isa.HaltParcel)
	m, err := New(b.MustBuild(), Config{DetectLivelock: true, MaxCycles: 10000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("err = %v, want ErrLivelock", err)
	}
	if m.Cycle() > 10 {
		t.Fatalf("livelock detected only at cycle %d", m.Cycle())
	}
}

func TestLivelockNotFlaggedDuringProgress(t *testing.T) {
	// A countdown loop writes a register every cycle: never a fixed point.
	b := isa.NewBuilder(1)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpIAdd, A: isa.I(50), B: isa.I(0), Dest: 1}, isa.Goto(1)))
	b.Set(1, 0, par(isa.DataOp{Op: isa.OpISub, A: isa.R(1), B: isa.I(1), Dest: 1}, isa.Goto(2)))
	b.Set(2, 0, par(isa.DataOp{Op: isa.OpGt, A: isa.R(1), B: isa.I(0)}, isa.Goto(3)))
	b.Set(3, 0, par(isa.Nop, isa.IfCC(0, 1, 4)))
	b.Set(4, 0, isa.HaltParcel)
	m := run(t, b.MustBuild(), Config{DetectLivelock: true})
	if m.Regs().Peek(1).Int() != 0 {
		t.Fatalf("r1 = %d, want 0", m.Regs().Peek(1).Int())
	}
}

func TestRegisterConflictFatalByDefault(t *testing.T) {
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(0), Dest: 9}, isa.Goto(1)))
	b.Set(0, 1, par(isa.DataOp{Op: isa.OpIAdd, A: isa.I(2), B: isa.I(0), Dest: 9}, isa.Goto(1)))
	b.Set(1, 0, isa.HaltParcel)
	b.Set(1, 1, isa.HaltParcel)
	m, err := New(b.MustBuild(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = m.Run(); err == nil {
		t.Fatal("same-cycle register write conflict not reported")
	}
	// Tolerant mode proceeds, counts the conflict, resolves deterministically.
	m2 := run(t, b.MustBuild(), Config{TolerateConflicts: true})
	if m2.Stats().RegConflicts != 1 {
		t.Fatalf("RegConflicts = %d", m2.Stats().RegConflicts)
	}
	if got := m2.Regs().Peek(9).Int(); got != 2 {
		t.Fatalf("r9 = %d, want 2 (last-staged-wins)", got)
	}
}

func TestMemoryConflictTolerated(t *testing.T) {
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.DataOp{Op: isa.OpStore, A: isa.I(1), B: isa.I(50)}, isa.Goto(1)))
	b.Set(0, 1, par(isa.DataOp{Op: isa.OpStore, A: isa.I(2), B: isa.I(50)}, isa.Goto(1)))
	b.Set(1, 0, isa.HaltParcel)
	b.Set(1, 1, isa.HaltParcel)
	m, err := New(b.MustBuild(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("same-cycle memory write conflict not reported")
	}
	m2 := run(t, b.MustBuild(), Config{TolerateConflicts: true})
	if m2.Stats().MemConflicts != 1 {
		t.Fatalf("MemConflicts = %d", m2.Stats().MemConflicts)
	}
}

func TestHaltedFUDrivesDone(t *testing.T) {
	// FU1 halts immediately; FU0 waits on ALL-SS, which must succeed
	// because halted FUs hold SS = DONE.
	b := isa.NewBuilder(2)
	b.Set(0, 0, par(isa.Nop, isa.Goto(1)))
	b.Set(0, 1, isa.HaltParcel)
	b.Set(1, 0, isa.Parcel{Data: isa.Nop, Ctrl: isa.IfAllSS(2, 1), Sync: isa.Done})
	b.Set(2, 0, isa.HaltParcel)
	m := run(t, b.MustBuild(), Config{MaxCycles: 100})
	if m.Cycle() != 3 {
		t.Fatalf("cycles = %d, want 3 (barrier passes immediately)", m.Cycle())
	}
}

func TestBarrierJoinsInOneCycle(t *testing.T) {
	// Two FUs reach a barrier at different times: FU0 via a 1-cycle path,
	// FU1 via a 3-cycle path. The combinational SS network must let both
	// leave the barrier in the same cycle the laggard arrives.
	b := isa.NewBuilder(2)
	barrier := isa.Parcel{Data: isa.Nop, Ctrl: isa.IfAllSS(4, 3), Sync: isa.Done}
	// FU0: addr 0 -> barrier at addr 3.
	b.Set(0, 0, par(isa.Nop, isa.Goto(3)))
	// FU1: addr 0 -> 1 -> 2 -> barrier at 3.
	b.Set(0, 1, par(isa.Nop, isa.Goto(1)))
	b.Set(1, 1, par(isa.Nop, isa.Goto(2)))
	b.Set(1, 0, isa.TrapParcel) // never reached
	b.Set(2, 1, par(isa.Nop, isa.Goto(3)))
	b.Set(3, 0, barrier)
	b.Set(3, 1, barrier)
	b.Set(4, 0, isa.HaltParcel)
	b.Set(4, 1, isa.HaltParcel)
	// Builder refuses duplicate trap set at (1,0)? It was set explicitly; fine.
	m := run(t, b.MustBuild(), Config{MaxCycles: 100})
	// Timeline: c0 both at 0; c1 FU0@3(spin DONE, all? FU1@1 BUSY -> stay),
	// c2 FU0@3 FU1@2; c3 both @3, both DONE -> both to 4; c4 halt.
	if m.Cycle() != 5 {
		t.Fatalf("cycles = %d, want 5", m.Cycle())
	}
}

func TestStatsAccounting(t *testing.T) {
	prog := seqProgram(t,
		isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(2), Dest: 1},
		isa.Nop,
		isa.DataOp{Op: isa.OpLt, A: isa.R(1), B: isa.I(5)},
	)
	m := run(t, prog, Config{})
	s := m.Stats()
	if s.Cycles != 4 {
		t.Fatalf("cycles = %d", s.Cycles)
	}
	if s.DataOps[0] != 2 || s.Nops[0] != 2 { // halt parcel data op is nop
		t.Fatalf("dataops/nops = %d/%d", s.DataOps[0], s.Nops[0])
	}
	if s.OpsPerCycle() != 0.5 {
		t.Fatalf("ops/cycle = %g", s.OpsPerCycle())
	}
	if s.Utilization() != 0.5 {
		t.Fatalf("utilization = %g", s.Utilization())
	}
	if s.StreamHistogram[1] != 4 {
		t.Fatalf("stream histogram = %v", s.StreamHistogram)
	}
	if s.MeanStreams() != 1 {
		t.Fatalf("mean streams = %g", s.MeanStreams())
	}
}

func TestStepAfterDoneIsNoop(t *testing.T) {
	prog := seqProgram(t)
	m, err := New(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	cycles := m.Cycle()
	running, err := m.Step()
	if running || err != nil {
		t.Fatalf("Step after done = %v, %v", running, err)
	}
	if m.Cycle() != cycles {
		t.Fatal("cycle advanced after done")
	}
}

func TestNewRejectsInvalidProgram(t *testing.T) {
	bad := &isa.Program{Instrs: []isa.Instruction{{}}, NumFU: 0}
	if _, err := New(bad, Config{}); err == nil {
		t.Fatal("New accepted invalid program")
	}
}

type recordingTracer struct {
	cycles     []uint64
	partitions []string
	pcs        [][]isa.Addr
}

func (r *recordingTracer) Cycle(rec *CycleRecord) {
	r.cycles = append(r.cycles, rec.Cycle)
	r.partitions = append(r.partitions, rec.Partition.String())
	pcs := make([]isa.Addr, len(rec.PC))
	copy(pcs, rec.PC)
	r.pcs = append(r.pcs, pcs)
}

func TestTracerSeesEveryCycle(t *testing.T) {
	prog := seqProgram(t, isa.Nop, isa.Nop)
	tr := &recordingTracer{}
	m, err := New(prog, Config{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tr.cycles) != int(m.Cycle()) {
		t.Fatalf("tracer saw %d cycles, machine ran %d", len(tr.cycles), m.Cycle())
	}
	for i, c := range tr.cycles {
		if c != uint64(i) {
			t.Fatalf("cycle records out of order: %v", tr.cycles)
		}
	}
}
