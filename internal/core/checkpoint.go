package core

import (
	"fmt"

	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
)

// Snapshot is a between-cycles checkpoint of a Machine: the complete
// architectural state (PCs, CCs, halt state, registers, memory, the SSET
// partition, statistics, and any injection state), sufficient to rewind
// the machine and replay deterministically. Snapshots are taken between
// Step calls; the sweep retry policy uses them to recover a
// transiently-faulted run without restarting from cycle 0.
//
// A snapshot is engine-portable — the packed fast-engine state is
// canonicalized to slice form — but program-bound: restoring it onto a
// machine running a different program silently resumes that program from
// the snapshotted control state.
type Snapshot struct {
	cycle     uint64
	done      bool
	failure   error
	pc        []isa.Addr
	cc        []bool
	ccValid   []bool
	halted    []bool
	prevSS    []isa.Sync
	prevState fingerprint
	sset      []int
	stats     Stats
	regs      *regfile.Snapshot
	memory    mem.State
	stall     []uint32
	failed    []bool
	nFailed   int
}

// Cycle returns the cycle number at which the snapshot was taken.
func (s *Snapshot) Cycle() uint64 { return s.cycle }

// Snapshot captures the machine's state between cycles. It fails when
// the memory model cannot be checkpointed (e.g. devices are mapped).
func (m *Machine) Snapshot() (*Snapshot, error) {
	ckpt, ok := m.memory.(mem.Checkpointable)
	if !ok {
		return nil, fmt.Errorf("core: memory model %T does not support checkpointing", m.memory)
	}
	memState, err := ckpt.SnapshotState()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	n := m.numFU
	s := &Snapshot{
		cycle:     m.cycle,
		done:      m.done,
		failure:   m.failure,
		pc:        append([]isa.Addr(nil), m.pc...),
		cc:        make([]bool, n),
		ccValid:   make([]bool, n),
		halted:    make([]bool, n),
		prevSS:    make([]isa.Sync, n),
		prevState: m.prevState,
		sset:      append([]int(nil), m.tracker.sset...),
		stats:     m.stats.Clone(),
		regs:      m.regs.Snapshot(),
		memory:    memState,
		nFailed:   m.nFailed,
	}
	if m.code != nil {
		for fu := 0; fu < n; fu++ {
			bit := uint8(1) << fu
			s.cc[fu] = m.ccBits&bit != 0
			s.ccValid[fu] = m.ccValidBits&bit != 0
			s.halted[fu] = m.haltedBits&bit != 0
			if m.prevSSBits&bit != 0 {
				s.prevSS[fu] = isa.Done
			}
		}
	} else {
		copy(s.cc, m.cc)
		copy(s.ccValid, m.ccValid)
		copy(s.halted, m.halted)
		copy(s.prevSS, m.prevSS)
	}
	if m.inject != nil {
		s.stall = append([]uint32(nil), m.stall...)
		s.failed = append([]bool(nil), m.failed...)
	}
	return s, nil
}

// Restore rewinds the machine to a snapshot, including any latched
// terminal error (restoring a pre-failure snapshot clears the failure,
// which is what makes checkpoint-retry possible). The injector's retry
// attempt is deliberately NOT architectural state: the caller bumps it
// via Injector.NextAttempt so the replay draws fresh transient faults.
func (m *Machine) Restore(s *Snapshot) error {
	if len(s.pc) != m.numFU {
		return fmt.Errorf("core: snapshot of %d FUs does not fit machine of %d", len(s.pc), m.numFU)
	}
	ckpt, ok := m.memory.(mem.Checkpointable)
	if !ok {
		return fmt.Errorf("core: memory model %T does not support checkpointing", m.memory)
	}
	if err := ckpt.RestoreState(s.memory); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	m.regs.Restore(s.regs)
	m.cycle = s.cycle
	m.done = s.done
	m.failure = s.failure
	copy(m.pc, s.pc)
	copy(m.cc, s.cc)
	copy(m.ccValid, s.ccValid)
	copy(m.halted, s.halted)
	copy(m.prevSS, s.prevSS)
	m.prevState = s.prevState
	copy(m.tracker.sset, s.sset)
	m.stats = s.stats.Clone()
	if m.code != nil {
		m.ccBits, m.ccValidBits, m.haltedBits, m.prevSSBits = 0, 0, 0, 0
		for fu := 0; fu < m.numFU; fu++ {
			bit := uint8(1) << fu
			if s.cc[fu] {
				m.ccBits |= bit
			}
			if s.ccValid[fu] {
				m.ccValidBits |= bit
			}
			if s.halted[fu] {
				m.haltedBits |= bit
			}
			if s.prevSS[fu] == isa.Done {
				m.prevSSBits |= bit
			}
		}
	}
	if m.inject != nil {
		if s.stall != nil {
			copy(m.stall, s.stall)
			copy(m.failed, s.failed)
		} else {
			for fu := range m.stall {
				m.stall[fu] = 0
				m.failed[fu] = false
			}
		}
		m.nFailed = s.nFailed
	}
	return nil
}
