package core

import "ximd/internal/isa"

// This file is the runtime half of the fused execution engine (fuse.go
// builds the static tables). StepN is the bulk stepping API: wherever
// the machine sits at the head of a straight-line superop run and the
// runtime preconditions hold, it executes the whole run in one tight
// loop — no per-cycle fetch, control evaluation, partition-tracker
// update, statistics attribution, or staged commit — and reconstructs
// every observable effect at run exit:
//
//   - Statistics: a linear word's per-FU nop/data attribution, port
//     reads/writes, and load/store counts are static (fusedWord), so
//     the run folds them in bulk. The stream histogram is exact: the
//     entry cycle observes the pre-run SSET count, and every later
//     cycle of the run observes one stream, because all FUs execute
//     the identical goto from the same address and the tracker's merge
//     rule joins them after the first update (see fuseExit).
//   - Register file and memory: operand reads go straight to the
//     committed arrays (writes are buffered per word and applied at
//     word end, which the static conflict-freedom rule makes exact),
//     and the cumulative port/counter accounting is folded in bulk via
//     regfile.AddBulk and mem.AddCounters.
//   - Errors: all mid-word effects live in local buffers, so when an
//     op faults (ALU trap, out-of-range access, non-tolerated store
//     conflict) the run discards the buffers, commits the completed
//     prefix, rewinds the machine to the start of the faulting word,
//     and replays that one word through the per-cycle stepFast — which
//     reproduces the partial statistics, the port accounting, and the
//     exact error text of an unfused run, byte for byte.
//
// Runtime preconditions for entering a fused run (checked per StepN
// call and per entry): fast engine, fusion not disabled, no fault
// injection, no tracer, plain *mem.Shared with no device mappings, no
// halted FUs, and all PCs equal. Anything else falls back to the
// per-cycle Step, which remains the single source of truth for one
// cycle's semantics — Step itself never fuses, so cycle-lockstep
// differential tests are unaffected.

// StepN executes up to n machine cycles, using fused superop runs when
// eligible. It is semantically identical to calling Step n times and
// stopping at the first halt or error: the same cycles execute, the
// same statistics accumulate, and the same terminal error (if any) is
// latched and returned.
func (m *Machine) StepN(n uint64) (running bool, err error) {
	fuseActive := m.fuseOK && !m.shared.HasMappings()
	var executed uint64
	for executed < n {
		if fuseActive && m.failure == nil && !m.done && m.haltedBits == 0 {
			if k := m.fusibleAt(); k > 0 {
				if rem := n - executed; k > rem {
					k = rem
				}
				if avail := m.config.MaxCycles - m.cycle; m.cycle >= m.config.MaxCycles {
					k = 0
				} else if k > avail {
					k = avail
				}
				if k > 0 {
					done, err := m.fusedRun(m.pc[0], k)
					executed += done
					if err != nil {
						return false, err
					}
					continue
				}
			}
		}
		running, err := m.Step()
		executed++
		if err != nil {
			return false, err
		}
		if !running {
			return false, nil
		}
	}
	return true, nil
}

// fusibleAt returns the length of the superop run at the current PC, or
// 0 when the machine is not at the head of one (diverged PCs included).
func (m *Machine) fusibleAt() uint64 {
	pc := m.pc[0]
	k := uint64(m.fuse.runLen[pc])
	if k == 0 {
		return 0
	}
	for fu := 1; fu < m.numFU; fu++ {
		if m.pc[fu] != pc {
			return 0
		}
	}
	return k
}

// fusedRun executes up to maxWords words of the superop run starting at
// entry (all preconditions already checked). It returns the number of
// cycles executed and the terminal error, if any.
func (m *Machine) fusedRun(entry isa.Addr, maxWords uint64) (uint64, error) {
	fi := m.fuse
	regs := m.regs.Raw()
	words := m.shared.Raw()
	memSize := uint32(len(words))
	tolerate := m.config.TolerateConflicts

	k := uint64(fi.runLen[entry])
	if k > maxWords {
		k = maxWords
	}
	entryCycle := m.cycle
	s0 := m.tracker.numSSETs()
	ccBits, ccValidBits := m.ccBits, m.ccValidBits
	var lastSS uint8

	for i := uint64(0); i < k; i++ {
		addr := entry + isa.Addr(i)
		w := &fi.words[addr]
		ops := fi.ops[w.opStart:w.opEnd]

		// Word-local buffers: nothing machine-visible mutates until the
		// whole word has executed, so a faulting op can discard the word
		// and hand it to the per-cycle replay untouched.
		var nw, ns int
		var wReg [isa.NumFU]uint8
		var wVal [isa.NumFU]isa.Word
		var sAddr [isa.NumFU]uint32
		var sVal [isa.NumFU]isa.Word
		var ccSet, ccVal uint8
		var conflicts uint64

		for oi := range ops {
			op := &ops[oi]
			var a, b isa.Word
			if op.Flags&(flagReadsA|flagAImm) == flagReadsA {
				a = regs[op.AReg]
			} else {
				a = op.AImm
			}
			if op.Flags&(flagReadsB|flagBImm) == flagReadsB {
				b = regs[op.BReg]
			} else {
				b = op.BImm
			}
			switch op.Op {
			case isa.OpLoad:
				laddr := uint32(a.Int() + b.Int())
				if laddr >= memSize {
					return m.fuseBail(entry, i, s0, lastSS, ccBits, ccValidBits, entryCycle)
				}
				wReg[nw] = op.Dest
				wVal[nw] = words[laddr]
				nw++
			case isa.OpStore:
				saddr := uint32(b.Int())
				if saddr >= memSize {
					return m.fuseBail(entry, i, s0, lastSS, ccBits, ccValidBits, entryCycle)
				}
				for si := 0; si < ns; si++ {
					if sAddr[si] == saddr {
						if !tolerate {
							return m.fuseBail(entry, i, s0, lastSS, ccBits, ccValidBits, entryCycle)
						}
						conflicts++
						break
					}
				}
				sAddr[ns] = saddr
				sVal[ns] = a
				ns++
			default:
				res, cc, aerr := isa.EvalALU(op.Op, a, b)
				if aerr != nil {
					return m.fuseBail(entry, i, s0, lastSS, ccBits, ccValidBits, entryCycle)
				}
				if op.Flags&flagWritesCC != 0 {
					bit := uint8(1) << op.fu
					ccSet |= bit
					if cc {
						ccVal |= bit
					}
				} else if op.Flags&flagWritesReg != 0 {
					wReg[nw] = op.Dest
					wVal[nw] = res
					nw++
				}
			}
		}

		// Word commit: reads of the next word must observe this word's
		// writes, exactly like the staged per-cycle commit. Staging order
		// is FU order, so "last staged wins" on a tolerated store
		// conflict is reproduced by applying the buffer in order.
		for wi := 0; wi < nw; wi++ {
			regs[wReg[wi]] = wVal[wi]
		}
		for si := 0; si < ns; si++ {
			words[sAddr[si]] = sVal[si]
		}
		ccBits = (ccBits &^ ccSet) | ccVal
		ccValidBits |= ccSet
		m.stats.MemConflicts += conflicts
		lastSS = w.ssMask
	}

	m.fuseExit(entry, k, s0, lastSS, ccBits, ccValidBits, entryCycle)
	return k, nil
}

// fuseExit commits the bulk bookkeeping of j completed words of the run
// starting at entry, leaving the machine byte-identical to j per-cycle
// steps: statistics, port and memory accounting, architectural state
// (PCs, CC/SS vectors, cycle count), the partition tracker, and the
// livelock digest.
func (m *Machine) fuseExit(entry isa.Addr, j uint64, s0 int, lastSS, ccBits, ccValidBits uint8, entryCycle uint64) {
	fi := m.fuse
	n := m.numFU

	var loads, stores, reads, writes uint64
	peakR, peakW := 0, 0
	for wi := uint64(0); wi < j; wi++ {
		w := &fi.words[entry+isa.Addr(wi)]
		loads += uint64(w.loads)
		stores += uint64(w.stores)
		reads += uint64(w.reads)
		writes += uint64(w.writes)
		if int(w.reads) > peakR {
			peakR = int(w.reads)
		}
		if int(w.writes) > peakW {
			peakW = int(w.writes)
		}
		nm := w.nopMask
		for fu := 0; fu < n; fu++ {
			if nm&(1<<fu) != 0 {
				m.stats.Nops[fu]++
			} else {
				m.stats.DataOps[fu]++
			}
		}
	}
	m.stats.Loads += loads
	m.stats.Stores += stores

	// Stream accounting. The entry cycle observes the pre-run partition
	// (the tracker updates after statistics, so the per-cycle path would
	// see the same). Every FU then executes the identical goto from the
	// same address, so the tracker's split pass groups by (sset, pc,
	// tag) and its merge pass joins all groups on the shared goto tag —
	// after one update the partition is a single SSET (the documented
	// over-merge rule for same-address unconditional branches), and it
	// stays that way for the rest of the run.
	m.stats.observeStreams(s0)
	if j > 1 {
		m.stats.Cycles += j - 1
		m.stats.StreamHistogram[1] += j - 1
	}

	m.regs.AddBulk(j, reads, writes, peakR, peakW)
	m.shared.AddCounters(loads, stores)

	exit := entry + isa.Addr(j)
	for fu := 0; fu < n; fu++ {
		m.pc[fu] = exit
	}
	m.ccBits, m.ccValidBits = ccBits, ccValidBits
	m.ssBits = lastSS
	m.prevSSBits = lastSS
	m.cycle = entryCycle + j
	m.tracker.mergeAll()

	if m.config.DetectLivelock {
		// Reconstruct the digest of the run's final cycle. A fused run
		// can never itself trip the detector: PCs strictly increase, so
		// no two consecutive in-run cycles share a fingerprint.
		w := &fi.words[exit-1]
		var fp fingerprint
		fp.valid = true
		fp.wrote = w.wrote
		for fu := 0; fu < n; fu++ {
			fp.pc[fu] = exit
		}
		fp.cc = ccBits
		fp.ss = lastSS
		m.prevState = fp
	}
}

// fuseBail handles an op fault inside word entry+i of a fused run: the
// completed prefix [entry, entry+i) commits its bulk bookkeeping, the
// machine rewinds to the start of the faulting word (its buffered
// effects are simply dropped), and the word replays through the
// per-cycle stepFast, which reproduces the partial statistics and the
// exact error of an unfused run.
func (m *Machine) fuseBail(entry isa.Addr, i uint64, s0 int, lastSS, ccBits, ccValidBits uint8, entryCycle uint64) (uint64, error) {
	if i > 0 {
		m.fuseExit(entry, i, s0, lastSS, ccBits, ccValidBits, entryCycle)
	}
	_, err := m.stepFast()
	executed := i
	if err == nil {
		// The replay disagreeing with the fused fault detection would be
		// an engine bug; counting the replayed cycle keeps StepN's
		// bookkeeping honest either way.
		executed++
	}
	return executed, err
}

// mergeAll collapses the partition to a single SSET containing every
// FU — the state the tracker reaches after one update in which all FUs
// execute the identical control operation from the same address.
func (t *partitionTracker) mergeAll() {
	for i := range t.sset {
		t.sset[i] = 0
	}
}
