package core

import (
	"fmt"

	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
)

// This file is the fast execution engine: the per-cycle interpreter over
// the pre-decoded micro-op table built by decodeProgram. It reproduces
// the reference Step (machine.go) phase for phase — fetch, data path,
// control path, trace/statistics, commit — with the same observable
// effects at every point, including statistics counters on cycles that
// end in an error. Differences are purely representational:
//
//   - parcels are fetched from the flat micro-op table instead of being
//     re-classified from the program;
//   - CC, CC-validity, SS, and halt state live in packed uint8 vectors
//     (bit i == FU i); the slice forms are materialized only for traces;
//   - branch conditions evaluate via CompiledCond over the packed
//     vectors instead of isa.EvalCond's per-FU loops;
//   - when the memory model is the common *mem.Shared, loads and stores
//     call its concrete fast paths, skipping interface dispatch.
//
// Error construction lives in the small fault helpers below so the hot
// loop body stays free of fmt/alloc machinery: steady-state execution
// performs zero allocations per cycle (enforced by TestStepAllocs).

// stepFast executes one machine cycle on the pre-decoded engine.
func (m *Machine) stepFast() (running bool, err error) {
	if m.failure != nil {
		return false, m.failure
	}
	if m.done {
		return false, nil
	}
	if m.cycle >= m.config.MaxCycles {
		return false, m.fail(&SimError{Cycle: m.cycle, FU: -1, Err: ErrMaxCycles})
	}
	inj := m.inject
	if inj != nil {
		m.markFailures()
	}

	m.regs.BeginCycle()
	shared := m.shared
	if shared != nil {
		shared.BeginCycle(m.cycle)
	} else {
		m.memory.BeginCycle(m.cycle)
	}

	n := m.numFU
	haltedBits := m.haltedBits

	// Phase 1: fetch. SS is combinational — derived from the fetched
	// micro-ops — so it must be known before any control evaluation. A
	// halted FU holds its sync signal at DONE; hard-failed and stalled
	// FUs fetch nothing and hold BUSY (their ss bit stays clear).
	ssBits := haltedBits
	for fu := 0; fu < n; fu++ {
		bit := uint8(1) << fu
		if haltedBits&bit != 0 {
			continue
		}
		if inj != nil {
			if m.failed[fu] {
				m.stalledNow[fu] = false
				continue
			}
			if m.stall[fu] > 0 {
				m.stalledNow[fu] = true
				continue
			}
			m.stalledNow[fu] = false
		}
		u := &m.code[int(m.pc[fu])*n+fu]
		if u.trap() {
			return false, m.failTrap(fu)
		}
		if u.syncDone() {
			ssBits |= bit
		}
		m.uops[fu] = u
	}
	m.ssBits = ssBits

	// Phase 2: data path. Operand reads observe start-of-cycle state;
	// writes are staged. CC writes collect into set/value masks and apply
	// at commit.
	wrote := false
	var ccSet, ccVal uint8
	for fu := 0; fu < n; fu++ {
		bit := uint8(1) << fu
		if haltedBits&bit != 0 {
			continue
		}
		if inj != nil && (m.failed[fu] || m.stalledNow[fu]) {
			continue
		}
		u := m.uops[fu]
		if inj != nil &&
			(u.Flags&(flagReadsA|flagAImm) == flagReadsA || u.Flags&(flagReadsB|flagBImm) == flagReadsB) &&
			inj.DropRegPort(m.cycle, fu) {
			return false, m.failFU(fu, errRegPortDrop())
		}
		// Operand sources: a register when the read flag is set without
		// the immediate flag; otherwise the decoded immediate, which is
		// zero for operands the class does not read.
		var a, b isa.Word
		if u.Flags&(flagReadsA|flagAImm) == flagReadsA {
			v, rerr := m.regs.Read(fu, u.AReg)
			if rerr != nil {
				return false, m.failFU(fu, rerr)
			}
			a = v
		} else {
			a = u.AImm
		}
		if u.Flags&(flagReadsB|flagBImm) == flagReadsB {
			v, rerr := m.regs.Read(fu, u.BReg)
			if rerr != nil {
				return false, m.failFU(fu, rerr)
			}
			b = v
		} else {
			b = u.BImm
		}

		switch u.Op {
		case isa.OpNop:
			// No data-path effect; counted with the cycle statistics.
		case isa.OpLoad:
			m.stats.Loads++
			addr := uint32(a.Int() + b.Int())
			if inj != nil && inj.MemNAK(m.cycle, fu, addr) {
				return false, m.failFU(fu, errMemNAK(addr))
			}
			var v isa.Word
			var lerr error
			if shared != nil {
				v, lerr = shared.LoadFast(fu, addr)
			} else {
				v, lerr = m.memory.Load(fu, addr)
			}
			if lerr != nil {
				return false, m.failFU(fu, lerr)
			}
			if inj != nil {
				if mask := inj.FlipMask(m.cycle, fu, addr); mask != 0 {
					v ^= isa.Word(mask)
					m.stats.BitFlips++
				}
				m.stall[fu] = inj.LoadLatency(m.cycle, fu, addr)
			}
			if werr := m.stageRegWrite(fu, u.Dest, v); werr != nil {
				return false, m.fail(werr)
			}
			wrote = true
		case isa.OpStore:
			m.stats.Stores++
			if inj != nil && inj.MemNAK(m.cycle, fu, uint32(b.Int())) {
				return false, m.failFU(fu, errMemNAK(uint32(b.Int())))
			}
			var serr error
			if shared != nil {
				serr = shared.StoreFast(fu, uint32(b.Int()), a)
			} else {
				serr = m.memory.Store(fu, uint32(b.Int()), a)
			}
			if serr != nil {
				if serr = m.storeFault(fu, serr); serr != nil {
					return false, m.fail(serr)
				}
			}
			wrote = true
		default:
			res, cc, aerr := isa.EvalALU(u.Op, a, b)
			if aerr != nil {
				return false, m.failFU(fu, aerr)
			}
			if u.Flags&flagWritesCC != 0 {
				ccSet |= bit
				if cc {
					ccVal |= bit
				}
				wrote = true
			} else if u.Flags&flagWritesReg != 0 {
				if werr := m.stageRegWrite(fu, u.Dest, res); werr != nil {
					return false, m.fail(werr)
				}
				wrote = true
			}
		}
	}

	// Phase 3: control path. Each sequencer evaluates its compiled
	// condition over the packed CC vector and the SS network —
	// combinational by default, registered under the ablation.
	condSrc := ssBits
	if m.config.RegisteredSS {
		condSrc = m.prevSSBits
	}
	ccBits := m.ccBits
	for fu := 0; fu < n; fu++ {
		bit := uint8(1) << fu
		if haltedBits&bit != 0 {
			m.trans[fu] = transition{halted: true}
			continue
		}
		if inj != nil {
			if m.failed[fu] {
				// A dead FU's control state determines nothing: it leaves
				// its SSET and freezes as a singleton, like a halted FU.
				m.trans[fu] = transition{halted: true}
				continue
			}
			if m.stalledNow[fu] {
				m.trans[fu] = transition{pc: m.pc[fu], next: m.pc[fu], tag: stallTag(m.pc[fu])}
				m.nextPC[fu] = m.pc[fu]
				m.willHalt[fu] = false
				continue
			}
		}
		u := m.uops[fu]
		var next isa.Addr
		halt := false
		switch u.kind() {
		case isa.CtrlGoto:
			next = u.t1
		case isa.CtrlHalt:
			halt = true
		case isa.CtrlCond:
			m.stats.CondBranches++
			if u.ctrl.Eval(ccBits, condSrc) {
				m.stats.TakenBranches++
				next = u.t1
			} else {
				next = u.t2
			}
		}
		m.nextPC[fu] = next
		m.willHalt[fu] = halt
		m.trans[fu] = transition{pc: m.pc[fu], next: next, halting: halt, tag: u.tag}
	}

	// Phase 4: trace the cycle as observed (pre-commit state), then fold
	// it into the statistics.
	if m.config.Tracer != nil {
		m.traceFast()
	}
	m.stats.observeStreams(m.tracker.numSSETs())
	for fu := 0; fu < n; fu++ {
		bit := uint8(1) << fu
		switch {
		case haltedBits&bit != 0:
			m.stats.HaltedCycles[fu]++
		case inj != nil && m.failed[fu]:
			m.stats.FailedCycles[fu]++
		case inj != nil && m.stalledNow[fu]:
			m.stats.StallCycles[fu]++
		case m.uops[fu].Flags&flagNop != 0:
			m.stats.Nops[fu]++
			if m.uops[fu].syncCond() {
				m.stats.SyncWaitCycles[fu]++
			}
		default:
			m.stats.DataOps[fu]++
		}
	}

	// Phase 5: commit. Writes become visible; PCs advance; the partition
	// tracker digests this cycle's transitions.
	m.regs.Commit()
	if shared != nil {
		shared.Commit()
	} else {
		m.memory.Commit()
	}
	m.ccBits = (m.ccBits &^ ccSet) | ccVal
	m.ccValidBits |= ccSet
	wrote = wrote || ccSet != 0
	allHalted := true
	allSettled := true // every FU halted or hard-failed
	for fu := 0; fu < n; fu++ {
		bit := uint8(1) << fu
		if haltedBits&bit != 0 {
			continue
		}
		if inj != nil {
			if m.failed[fu] {
				allHalted = false
				continue
			}
			if m.stalledNow[fu] {
				m.stall[fu]--
				// A draining stall counter is progress: suppress the
				// livelock fingerprint while any load is in flight.
				wrote = true
				allHalted = false
				allSettled = false
				continue
			}
		}
		if m.willHalt[fu] {
			haltedBits |= bit
		} else {
			m.pc[fu] = m.nextPC[fu]
			allHalted = false
			allSettled = false
		}
	}
	m.haltedBits = haltedBits
	m.tracker.update(m.trans)
	m.prevSSBits = ssBits
	m.cycle++
	if allHalted {
		m.done = true
		return false, nil
	}
	if inj != nil && allSettled && m.nFailed > 0 {
		// Degraded completion: every surviving stream has halted; only
		// hard-failed FUs remain. Report the failure after the survivors'
		// work is architecturally committed.
		return false, m.fail(&SimError{Cycle: m.cycle - 1, FU: m.firstFailedFU(), Err: errDegraded()})
	}

	if m.config.DetectLivelock {
		if err := m.checkLivelock(wrote, m.ccBits, ssBits, haltedBits); err != nil {
			return false, m.fail(err)
		}
	}
	return true, nil
}

// traceFast materializes the packed state into the machine's slice
// scratch and emits the cycle record. Only the traced path pays this;
// untraced runs never touch the slice forms.
func (m *Machine) traceFast() {
	for fu := 0; fu < m.numFU; fu++ {
		bit := uint8(1) << fu
		m.cc[fu] = m.ccBits&bit != 0
		m.ccValid[fu] = m.ccValidBits&bit != 0
		halted := m.haltedBits&bit != 0
		m.halted[fu] = halted
		switch {
		case halted:
			m.ss[fu] = isa.Done
			m.parcels[fu] = isa.Parcel{}
		case m.inject != nil && (m.failed[fu] || m.stalledNow[fu]):
			m.ss[fu] = isa.Busy
			m.parcels[fu] = isa.Parcel{}
		default:
			p := m.prog.Parcel(m.pc[fu], fu)
			m.ss[fu] = p.Sync
			m.parcels[fu] = p
		}
	}
	m.record = CycleRecord{
		Cycle:     m.cycle,
		PC:        m.pc,
		CC:        m.cc,
		CCValid:   m.ccValid,
		SS:        m.ss,
		Halted:    m.halted,
		Partition: m.tracker.partition(),
		Parcels:   m.parcels,
	}
	if m.inject != nil {
		m.record.Stalled = m.stalledNow
		m.record.Failed = m.failed
	}
	m.config.Tracer.Cycle(&m.record)
}

// stageRegWrite stages a register write, deferring all failure handling
// to the cold path so the call inlines into the step loop.
func (m *Machine) stageRegWrite(fu int, reg uint8, v isa.Word) error {
	if err := m.regs.Write(fu, reg, v); err != nil {
		return m.regWriteFault(fu, err)
	}
	return nil
}

// regWriteFault resolves a failed register write: a tolerated conflict
// is counted and absorbed; anything else gains cycle/FU context.
func (m *Machine) regWriteFault(fu int, err error) error {
	if _, isConflict := err.(*regfile.WriteConflictError); isConflict && m.config.TolerateConflicts {
		m.stats.RegConflicts++
		m.stats.PortConflicts[fu]++
		return nil
	}
	return &SimError{Cycle: m.cycle, FU: fu, Err: err}
}

// storeFault resolves a failed memory store, mirroring regWriteFault.
func (m *Machine) storeFault(fu int, err error) error {
	if _, isConflict := err.(*mem.ConflictError); isConflict && m.config.TolerateConflicts {
		m.stats.MemConflicts++
		return nil
	}
	return &SimError{Cycle: m.cycle, FU: fu, Err: err}
}

// failFU latches an execution fault with cycle and FU context.
func (m *Machine) failFU(fu int, err error) error {
	return m.fail(&SimError{Cycle: m.cycle, FU: fu, Err: err})
}

// failTrap latches the trap-parcel fault with the reference engine's
// exact message.
func (m *Machine) failTrap(fu int) error {
	return m.fail(&SimError{Cycle: m.cycle, FU: fu,
		Err: fmt.Errorf("executed trap parcel at address %d (hole in instruction stream)", m.pc[fu])})
}
