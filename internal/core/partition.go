package core

import (
	"sort"
	"strconv"
	"strings"

	"ximd/internal/isa"
)

// Partition is the division of the machine's functional units into
// synchronous sets (SSETs), Section 2.4: "An SSET of functional units is
// indistinguishable from a VLIW processor of the same size."
//
// The paper defines membership semantically — two FUs are in the same
// SSET at time t if, given the program and the control state of one, the
// control state of the other is uniquely determined. This implementation
// tracks the observable refinement that reproduces the paper's Figure 10
// trace exactly:
//
//   - FUs start in a single SSET (every program begins with all FUs at
//     the entry address, Figure 9).
//   - An SSET splits when its members execute different control
//     operations (or execute from different addresses): a data-dependent
//     conditional evaluated by one member tells the others nothing, even
//     if all members happen to land on the same address — which is why
//     Figure 10 reports {0,1}{2}{3} at cycle 9 although all four FUs sit
//     at address 03.
//   - SSETs merge when their control reconverges: all members arrive at
//     the same next address either through unconditional branches (the
//     join at the bottom of a fork, MINMAX cycle 3→4) or by executing the
//     identical conditional control operation, whose outcome over the
//     global CC/SS state is necessarily common (the ALL-SS barrier of
//     Example 3, where every waiting FU spins on the same parcel and all
//     leave together).
//
// The unconditional-merge rule can over-merge: two independent streams
// that happen to pass through the same address with the same goto in the
// same cycle are reported joined for that instant and re-split at their
// next data-dependent branch. This errs toward fewer reported streams
// (MeanStreams is a slight underestimate on MIMD-style phases) and is
// exact on statically reconverging joins, which is what Figure 10
// exhibits.
//
// Halted FUs retain their final SSET and stop participating in updates.
type Partition struct {
	// sset[i] is the SSET id of FU i; ids are normalized so that each
	// SSET is named by its lowest-numbered member.
	sset []int
}

// NumFU returns the number of functional units covered.
func (p Partition) NumFU() int { return len(p.sset) }

// NumSSETs returns the number of distinct SSETs.
func (p Partition) NumSSETs() int {
	seen := make(map[int]struct{}, len(p.sset))
	for _, id := range p.sset {
		seen[id] = struct{}{}
	}
	return len(seen)
}

// SameSSET reports whether FUs a and b are in the same SSET.
func (p Partition) SameSSET(a, b int) bool { return p.sset[a] == p.sset[b] }

// SSETs returns the partition as sorted member lists, ordered by lowest
// member: {0,1}{2}{3,6,7} ⇒ [[0,1],[2],[3,6,7]].
func (p Partition) SSETs() [][]int {
	groups := make(map[int][]int)
	for fu, id := range p.sset {
		groups[id] = append(groups[id], fu)
	}
	ids := make([]int, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([][]int, 0, len(ids))
	for _, id := range ids {
		out = append(out, groups[id])
	}
	return out
}

// String renders the partition in the paper's set notation, e.g.
// "{0,1}{2}{3,6,7}{4,5}".
func (p Partition) String() string {
	var b strings.Builder
	for _, set := range p.SSETs() {
		b.WriteByte('{')
		for i, fu := range set {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(fu))
		}
		b.WriteByte('}')
	}
	return b.String()
}

// Equal reports whether two partitions are identical.
func (p Partition) Equal(q Partition) bool {
	if len(p.sset) != len(q.sset) {
		return false
	}
	for i := range p.sset {
		if p.sset[i] != q.sset[i] {
			return false
		}
	}
	return true
}

// ParsePartition parses the paper's set notation into a Partition over
// numFU functional units, for use in golden tests. Every FU in
// [0, numFU) must appear exactly once.
func ParsePartition(s string, numFU int) (Partition, error) {
	sset := make([]int, numFU)
	for i := range sset {
		sset[i] = -1
	}
	rest := s
	for len(rest) > 0 {
		if rest[0] != '{' {
			return Partition{}, &partitionSyntaxError{s}
		}
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return Partition{}, &partitionSyntaxError{s}
		}
		var members []int
		for _, tok := range strings.Split(rest[1:end], ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			fu, err := strconv.Atoi(tok)
			if err != nil || fu < 0 || fu >= numFU || sset[fu] != -1 {
				return Partition{}, &partitionSyntaxError{s}
			}
			members = append(members, fu)
		}
		if len(members) == 0 {
			return Partition{}, &partitionSyntaxError{s}
		}
		sort.Ints(members)
		for _, fu := range members {
			sset[fu] = members[0]
		}
		rest = rest[end+1:]
	}
	for _, id := range sset {
		if id == -1 {
			return Partition{}, &partitionSyntaxError{s}
		}
	}
	return Partition{sset: sset}, nil
}

type partitionSyntaxError struct{ s string }

func (e *partitionSyntaxError) Error() string {
	return "core: malformed partition notation " + strconv.Quote(e.s)
}

// transition describes what one FU's sequencer did in a cycle. The
// control operation is carried as its ctrlTag — the packed normalized
// form — so the tracker compares single integers instead of CtrlOp
// structs (this loop dominated the whole-simulator profile before the
// switch to packed keys).
type transition struct {
	halted  bool // FU was already halted before the cycle
	halting bool // FU executes halt this cycle
	pc      isa.Addr
	next    isa.Addr
	tag     uint64 // ctrlTag of the executed control operation
}

// partitionTracker maintains the SSET partition across cycles. The
// scratch slices avoid per-cycle allocation (groups are at most NumFU
// entries, so linear scans beat maps).
type partitionTracker struct {
	sset    []int
	scratch []int // next-cycle sset ids under construction
	splits  []splitEntry
	merges  []mergeEntry
}

type splitEntry struct {
	key uint64
	id  int
}

type mergeEntry struct {
	key uint64
	id  int
}

func newPartitionTracker(numFU int) *partitionTracker {
	t := &partitionTracker{
		sset:    make([]int, numFU),
		scratch: make([]int, numFU),
	}
	return t // all zero: a single SSET
}

// reset returns the tracker to its initial single-SSET state for a
// numFU-wide machine, reusing its allocations when possible.
func (t *partitionTracker) reset(numFU int) {
	if cap(t.sset) < numFU {
		t.sset = make([]int, numFU)
		t.scratch = make([]int, numFU)
		return
	}
	t.sset = t.sset[:numFU]
	t.scratch = t.scratch[:numFU]
	for i := 0; i < numFU; i++ {
		t.sset[i] = 0
		t.scratch[i] = 0
	}
}

func (t *partitionTracker) partition() Partition {
	out := make([]int, len(t.sset))
	copy(out, t.sset)
	return Partition{sset: out}
}

// numSSETs counts distinct SSET ids without materializing a Partition
// (the per-cycle statistics path).
func (t *partitionTracker) numSSETs() int {
	var seen [2 * 8]bool // ids are < 2*NumFU by construction
	n := 0
	for _, id := range t.sset {
		if !seen[id] {
			seen[id] = true
			n++
		}
	}
	return n
}

// Key packing. A split key identifies the subgroup an FU belongs to
// after the split step: members of one SSET stay together only if they
// executed from the same address with the identical control operation —
// (sset, pc, tag), packed as tag | pc<<45 | sset<<61. ctrlTag uses bits
// 0..44, pc is a 16-bit address at 45..60, and a running FU's sset id is
// a first-member FU index < 8, fitting the top 3 bits exactly.
//
// A merge key identifies reconvergence classes: subgroups whose control
// transfer is mutually determined merge into one SSET. Unconditional
// transfers merge by target address; conditional transfers merge only
// with subgroups executing the identical control operation (whose global
// outcome is necessarily shared). The ctrlTag alone expresses both: a
// goto's tag is exactly (kind, target) — tr.next equals the goto's T1 —
// and a conditional's tag is the identical-control class, with the kind
// bits keeping the two classes disjoint.

func (t *partitionTracker) update(trans []transition) {
	n := len(t.sset)
	newSset := t.scratch

	// Pass 1: split within existing SSETs. A halted or halting FU becomes
	// a frozen singleton (id offset past the running range so it can never
	// collide with a running group's id).
	t.splits = t.splits[:0]
	for fu := range trans {
		tr := &trans[fu]
		if tr.halted || tr.halting {
			newSset[fu] = n + fu
			continue
		}
		k := tr.tag | uint64(tr.pc)<<45 | uint64(t.sset[fu])<<61
		id := -1
		for _, e := range t.splits {
			if e.key == k {
				id = e.id
				break
			}
		}
		if id < 0 {
			id = fu
			t.splits = append(t.splits, splitEntry{key: k, id: id})
		}
		newSset[fu] = id
	}

	// Pass 2: merge reconverging subgroups (union by relabeling; groups
	// are tiny, at most 8 members).
	t.merges = t.merges[:0]
	for fu := range trans {
		tr := &trans[fu]
		if tr.halted || tr.halting {
			continue
		}
		mk := tr.tag
		id := newSset[fu]
		found := -1
		for i := range t.merges {
			if t.merges[i].key == mk {
				found = i
				break
			}
		}
		if found < 0 {
			t.merges = append(t.merges, mergeEntry{key: mk, id: id})
			continue
		}
		if rep := t.merges[found].id; rep != id {
			lo, hi := rep, id
			if lo > hi {
				lo, hi = hi, lo
			}
			for j := range newSset {
				if newSset[j] == hi {
					newSset[j] = lo
				}
			}
			t.merges[found].id = lo
		}
	}

	// Normalize running-group ids to the lowest member of each group:
	// ids are first-member indices, and relabeling always keeps the lower
	// one, so the first FU carrying an id is the group's lowest member —
	// the ids are already canonical.
	copy(t.sset, newSset)
}
