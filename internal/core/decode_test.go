package core

import (
	"testing"

	"ximd/internal/isa"
)

// TestCompileCondMatchesEvalCond exhaustively checks that the bitmask
// compilation of every valid condition kind agrees with the reference
// evaluator isa.EvalCond over every reachable (CC, SS) state, for every
// machine width. This is the foundation of the fast engine's control
// equivalence: stepFast never calls EvalCond.
func TestCompileCondMatchesEvalCond(t *testing.T) {
	for _, numFU := range []int{1, 2, 3, 5, 8} {
		var conds []isa.CtrlOp
		for idx := uint8(0); idx < uint8(numFU); idx++ {
			conds = append(conds,
				isa.IfCC(idx, 1, 2), isa.IfNotCC(idx, 1, 2),
				isa.IfSS(idx, 1, 2), isa.IfNotSS(idx, 1, 2))
		}
		conds = append(conds, isa.IfAllSS(1, 2), isa.IfAnySS(1, 2))
		// Masks deliberately include bits above numFU: the reference
		// evaluator's loop never examines them, and CompileCond must
		// mask them off to match.
		for _, mask := range []uint8{0x01, 0x55, 0xAA, 0xFF, uint8(1<<numFU - 1)} {
			if mask == 0 {
				continue
			}
			conds = append(conds, isa.IfAllSSMask(mask, 1, 2), isa.IfAnySSMask(mask, 1, 2))
		}
		cc := make([]bool, numFU)
		ss := make([]isa.Sync, numFU)
		for _, c := range conds {
			compiled := CompileCond(c, numFU)
			for ccBits := 0; ccBits < 1<<numFU; ccBits++ {
				for ssBits := 0; ssBits < 1<<numFU; ssBits++ {
					for i := 0; i < numFU; i++ {
						cc[i] = ccBits&(1<<i) != 0
						if ssBits&(1<<i) != 0 {
							ss[i] = isa.Done
						} else {
							ss[i] = isa.Busy
						}
					}
					want := isa.EvalCond(c, cc, ss, numFU)
					got := compiled.Eval(uint8(ccBits), uint8(ssBits))
					if got != want {
						t.Fatalf("numFU=%d cond %v cc=%08b ss=%08b: compiled %v, reference %v",
							numFU, c, ccBits, ssBits, got, want)
					}
				}
			}
		}
	}
}

// TestCtrlTagMatchesCtrlEqual checks that the packed control tag is a
// perfect hash of control-op identity: ctrlTag(a) == ctrlTag(b) exactly
// when a.Equal(b), over a set of valid control ops chosen to collide in
// every unused field. The partition tracker's split/merge keys rely on
// this equivalence.
func TestCtrlTagMatchesCtrlEqual(t *testing.T) {
	ops := []isa.CtrlOp{
		isa.Halt(),
		// A halt with junk in unused fields is still the same halt.
		{Kind: isa.CtrlHalt, T1: 9, T2: 4, Idx: 3, Mask: 0xF0},
		isa.Goto(0), isa.Goto(3), isa.Goto(7),
		{Kind: isa.CtrlGoto, T1: 3, T2: 5, Idx: 1, Mask: 0x0F}, // Goto(3) with junk
		isa.IfCC(0, 1, 2), isa.IfCC(1, 1, 2), isa.IfCC(0, 2, 1), isa.IfCC(0, 1, 3),
		isa.IfNotCC(0, 1, 2),
		isa.IfSS(0, 1, 2), isa.IfSS(2, 1, 2),
		isa.IfNotSS(0, 1, 2),
		isa.IfAllSS(1, 2), isa.IfAllSS(2, 1),
		isa.IfAnySS(1, 2),
		// All-reduction conds ignore Idx and Mask.
		{Kind: isa.CtrlCond, Cond: isa.CondAllSS, T1: 1, T2: 2, Idx: 5, Mask: 0x3C},
		isa.IfAllSSMask(0x03, 1, 2), isa.IfAllSSMask(0x0C, 1, 2),
		isa.IfAnySSMask(0x03, 1, 2), isa.IfAnySSMask(0x03, 2, 1),
		// Masked conds ignore Idx.
		{Kind: isa.CtrlCond, Cond: isa.CondAllSSMask, Mask: 0x03, T1: 1, T2: 2, Idx: 7},
	}
	for i, a := range ops {
		for j, b := range ops {
			tagEq := ctrlTag(a) == ctrlTag(b)
			if tagEq != a.Equal(b) {
				t.Errorf("ops[%d]=%v vs ops[%d]=%v: tag equality %v, Equal %v",
					i, a, j, b, tagEq, a.Equal(b))
			}
		}
	}
}

// TestDecodeDataOpMatchesClassOf checks, for every opcode, that the
// decoded flags agree with the structural class and that operand sources
// resolve to the right register or immediate.
func TestDecodeDataOpMatchesClassOf(t *testing.T) {
	for op := isa.Opcode(0); op.Valid(); op++ {
		cl := isa.ClassOf(op)
		d := isa.DataOp{Op: op, A: isa.R(3), B: isa.I(-7), Dest: 9}
		u := DecodeDataOp(d)
		if u.ReadsA() != cl.ReadsA() || u.ReadsB() != cl.ReadsB() ||
			u.WritesReg() != cl.WritesReg() || u.WritesCC() != cl.WritesCC() {
			t.Errorf("%v: decoded flags disagree with ClassOf", op)
		}
		if u.IsNop() != (op == isa.OpNop) {
			t.Errorf("%v: IsNop = %v", op, u.IsNop())
		}
		if cl.ReadsA() {
			if !u.AFromReg() || u.AReg != 3 {
				t.Errorf("%v: operand A should resolve to r3", op)
			}
		} else if u.AFromReg() || u.AImm != 0 {
			t.Errorf("%v: unread operand A should be a zero immediate", op)
		}
		if cl.ReadsB() {
			if u.BFromReg() || !u.BIsImm() || u.BImm != isa.WordFromInt(-7) {
				t.Errorf("%v: operand B should resolve to immediate -7", op)
			}
		} else if u.BFromReg() || u.BImm != 0 {
			t.Errorf("%v: unread operand B should be a zero immediate", op)
		}
	}
}
