package core

import (
	"testing"

	"ximd/internal/isa"
)

// barrierProgram builds a 2-FU program where FU1 takes `lag` extra
// cycles to reach the ALL-SS barrier.
func barrierProgram(t *testing.T, lag int) *isa.Program {
	t.Helper()
	b := isa.NewBuilder(2)
	barAddr := isa.Addr(lag + 1)
	endAddr := barAddr + 1
	barrier := isa.Parcel{Data: isa.Nop, Ctrl: isa.IfAllSS(endAddr, barAddr), Sync: isa.Done}
	b.Set(0, 0, par(isa.Nop, isa.Goto(barAddr)))
	b.Set(0, 1, par(isa.Nop, isa.Goto(1)))
	for i := 1; i <= lag; i++ {
		b.Set(isa.Addr(i), 1, par(isa.Nop, isa.Goto(isa.Addr(i)+1)))
	}
	b.Set(barAddr, 0, barrier)
	b.Set(barAddr, 1, barrier)
	b.Set(endAddr, 0, isa.HaltParcel)
	b.Set(endAddr, 1, isa.HaltParcel)
	return b.MustBuild()
}

// TestRegisteredSSCostsOneCycle is the ablation of the Figure 8 design
// decision: with the paper's combinational SS network, a barrier
// releases in the very cycle the last FU arrives; with a registered SS
// network every barrier costs exactly one extra cycle.
func TestRegisteredSSCostsOneCycle(t *testing.T) {
	for lag := 1; lag <= 4; lag++ {
		prog := barrierProgram(t, lag)
		comb, err := New(prog, Config{MaxCycles: 1000})
		if err != nil {
			t.Fatal(err)
		}
		combCycles, err := comb.Run()
		if err != nil {
			t.Fatal(err)
		}
		reg, err := New(prog, Config{MaxCycles: 1000, RegisteredSS: true})
		if err != nil {
			t.Fatal(err)
		}
		regCycles, err := reg.Run()
		if err != nil {
			t.Fatal(err)
		}
		if regCycles != combCycles+1 {
			t.Errorf("lag %d: combinational %d cycles, registered %d; want exactly +1",
				lag, combCycles, regCycles)
		}
	}
}

// TestRegisteredSSStillCorrect: the ablated machine is slower but must
// compute the same results (the barrier never deadlocks because waiting
// FUs hold DONE).
func TestRegisteredSSStillCorrect(t *testing.T) {
	b := isa.NewBuilder(2)
	// FU0 computes 6*7 after the barrier; FU1 provides 7 in r2 before it.
	b.Set(0, 0, par(isa.Nop, isa.Goto(1)))
	b.Set(0, 1, par(isa.DataOp{Op: isa.OpIAdd, A: isa.I(7), B: isa.I(0), Dest: 2}, isa.Goto(1)))
	bar := isa.Parcel{Data: isa.Nop, Ctrl: isa.IfAllSS(2, 1), Sync: isa.Done}
	b.Set(1, 0, bar)
	b.Set(1, 1, bar)
	b.Set(2, 0, par(isa.DataOp{Op: isa.OpIMult, A: isa.I(6), B: isa.R(2), Dest: 3}, isa.Goto(3)))
	b.Set(2, 1, par(isa.Nop, isa.Goto(3)))
	b.Set(3, 0, isa.HaltParcel)
	b.Set(3, 1, isa.HaltParcel)
	prog := b.MustBuild()
	m, err := New(prog, Config{MaxCycles: 100, RegisteredSS: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Regs().Peek(3).Int(); got != 42 {
		t.Fatalf("r3 = %d, want 42", got)
	}
}
