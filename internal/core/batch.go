package core

// Batch advances many machines through one amortized stepping loop —
// the MASIM-style shape of running a whole sweep or regression batch of
// XIMD machines in lockstep. Per-machine status lives in parallel
// arrays (struct-of-arrays: a compacted index list of live machines
// plus flat running/error/cycle-bound state) so a round touches only
// live machines and scans no per-machine object headers; the machines
// themselves advance through StepN, so every eligible straight-line
// stretch executes on the fused superop engine.
//
// A Batch imposes no relationship between its machines: they may share
// one Decoded table (the cheap, intended case — predecode and fusion
// paid once) or run unrelated programs. Each machine owns its private
// memory and register file exactly as when stepped individually, and
// the outcome of every machine is byte-identical to running it alone:
// a round is just StepN(chunk) per live machine, and StepN is
// semantically a Step loop.
type Batch struct {
	machines []*Machine
	active   []uint32 // indices of still-running machines, compacted in place
	running  []bool   // running[i]: machine i has neither halted nor failed
	errs     []error  // errs[i]: machine i's terminal error, if any
}

// NewBatch builds a batch over machines. Machines that are already done
// or failed enter the batch retired; nil entries are treated as retired
// with no error.
func NewBatch(machines []*Machine) *Batch {
	b := &Batch{
		machines: machines,
		active:   make([]uint32, 0, len(machines)),
		running:  make([]bool, len(machines)),
		errs:     make([]error, len(machines)),
	}
	for i, m := range machines {
		if m == nil {
			continue
		}
		if err := m.Err(); err != nil {
			b.errs[i] = err
			continue
		}
		if m.Done() {
			continue
		}
		b.running[i] = true
		b.active = append(b.active, uint32(i))
	}
	return b
}

// StepRound advances every live machine by up to chunk cycles — one
// lockstep round — and returns the number of machines still running.
// Machines that halt or fail during the round are retired from the
// active set; their error (if any) is retained for Err. StepRound
// allocates nothing in steady state.
func (b *Batch) StepRound(chunk uint64) int {
	w := 0
	for _, idx := range b.active {
		running, err := b.machines[idx].StepN(chunk)
		if err != nil {
			b.errs[idx] = err
			b.running[idx] = false
			continue
		}
		if !running {
			b.running[idx] = false
			continue
		}
		b.active[w] = idx
		w++
	}
	b.active = b.active[:w]
	return w
}

// Run drives lockstep rounds of chunk cycles until every machine has
// halted or failed. Callers that need cooperative cancellation loop
// over StepRound themselves and check their context between rounds.
func (b *Batch) Run(chunk uint64) {
	for b.StepRound(chunk) > 0 {
	}
}

// Size returns the number of machines in the batch.
func (b *Batch) Size() int { return len(b.machines) }

// Live returns the number of machines still running.
func (b *Batch) Live() int { return len(b.active) }

// Machine returns machine i.
func (b *Batch) Machine(i int) *Machine { return b.machines[i] }

// Running reports whether machine i is still running.
func (b *Batch) Running(i int) bool { return b.running[i] }

// Err returns machine i's terminal error, or nil.
func (b *Batch) Err(i int) error { return b.errs[i] }
