// Package xlog builds the daemons' slog.Logger. Two formats:
//
//   - "text" renders exactly what log.Printf with LstdFlags produced
//     ("2006/01/02 15:04:05 message\n") so operators' eyes — and the
//     smoke scripts' greps — see identical lines. Structured attrs are
//     accepted and carried on the record, but text output stays the
//     human line; attrs are for the json format and future sinks.
//   - "json" is slog's standard JSON handler: one object per line with
//     time/level/msg plus every attr (job_id, trace_id, worker,
//     digest, ...), ready for log aggregation.
package xlog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"
)

// Formats accepted by New.
const (
	FormatText = "text"
	FormatJSON = "json"
)

// New returns a logger writing to w in the given format ("text" or
// "json"); unknown formats error.
func New(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case FormatText, "":
		return slog.New(&textHandler{w: w, mu: &sync.Mutex{}}), nil
	case FormatJSON:
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("xlog: unknown log format %q (want %s or %s)", format, FormatText, FormatJSON)
	}
}

// textHandler reproduces the stdlib log package's LstdFlags line
// format byte-for-byte: "YYYY/MM/DD HH:MM:SS msg\n". Attrs are
// deliberately not printed — the msg is the complete human line, as it
// was before the slog migration.
type textHandler struct {
	w  io.Writer
	mu *sync.Mutex
}

func (h *textHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

func (h *textHandler) Handle(_ context.Context, r slog.Record) error {
	t := r.Time
	if t.IsZero() {
		t = time.Now()
	}
	line := fmt.Sprintf("%s %s\n", t.Format("2006/01/02 15:04:05"), r.Message)
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, line)
	return err
}

// WithAttrs and WithGroup return the handler unchanged: text output
// never renders attrs, so there is nothing to accumulate.
func (h *textHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *textHandler) WithGroup(string) slog.Handler      { return h }
