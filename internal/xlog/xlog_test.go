package xlog

import (
	"bytes"
	"encoding/json"
	"log"
	"regexp"
	"strings"
	"testing"
)

// The text format must match stdlib log.Printf with LstdFlags exactly,
// modulo the timestamp value — the smoke scripts grep these lines.
func TestTextFormatMatchesStdlibLog(t *testing.T) {
	var got, want bytes.Buffer
	lg, err := New(FormatText, &got)
	if err != nil {
		t.Fatal(err)
	}
	std := log.New(&want, "", log.LstdFlags)

	lg.Info("ximdd: listening on 127.0.0.1:8080", "job_id", "j-1")
	std.Printf("ximdd: listening on 127.0.0.1:8080")

	strip := regexp.MustCompile(`^\d{4}/\d{2}/\d{2} \d{2}:\d{2}:\d{2} `)
	g, w := got.String(), want.String()
	if !strip.MatchString(g) {
		t.Fatalf("text line missing LstdFlags timestamp: %q", g)
	}
	if strip.ReplaceAllString(g, "") != strip.ReplaceAllString(w, "") {
		t.Fatalf("text line mismatch:\n got %q\nwant %q", g, w)
	}
	if strings.Contains(g, "job_id") {
		t.Fatalf("text format must not render attrs: %q", g)
	}
}

func TestJSONFormatCarriesAttrs(t *testing.T) {
	var buf bytes.Buffer
	lg, err := New(FormatJSON, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("worker lost", "worker", "w0", "trace_id", "abc")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json line: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "worker lost" || rec["worker"] != "w0" || rec["trace_id"] != "abc" {
		t.Fatalf("json record = %v", rec)
	}
}

func TestUnknownFormatErrors(t *testing.T) {
	if _, err := New("xml", nil); err == nil {
		t.Fatal("want error for unknown format")
	}
	if lg, err := New("", &bytes.Buffer{}); err != nil || lg == nil {
		t.Fatalf("empty format must default to text: %v", err)
	}
}
