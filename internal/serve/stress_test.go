package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSubmittersDuringShutdown races a crowd of submitters
// against graceful shutdown (run under -race). The contract under test:
// every job acknowledged with 202 reaches exactly one terminal state
// and is retrievable afterwards — nothing dropped, nothing duplicated —
// while submissions after the drain begins get 503 and a full queue
// gets 429.
func TestConcurrentSubmittersDuringShutdown(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 8, JobTimeout: 30 * time.Second})

	const submitters = 8
	var (
		mu       sync.Mutex
		accepted []string
		saw503   bool
	)
	var wg sync.WaitGroup
	wg.Add(submitters)
	for g := 0; g < submitters; g++ {
		go func() {
			defer wg.Done()
			for {
				resp, body := postJSON(t, ts.URL+"/v1/jobs", tprocJob())
				switch resp.StatusCode {
				case http.StatusAccepted:
					var sr SubmitResponse
					if err := json.Unmarshal(body, &sr); err != nil {
						t.Errorf("202 body: %v: %s", err, body)
						return
					}
					mu.Lock()
					accepted = append(accepted, sr.ID)
					mu.Unlock()
				case http.StatusTooManyRequests:
					// Backpressure; retry like a polite client.
				case http.StatusServiceUnavailable:
					mu.Lock()
					saw503 = true
					mu.Unlock()
					return
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}

	// Let the submitters build up a backlog, then drain.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown did not drain: %v", err)
	}
	wg.Wait()

	if !saw503 {
		t.Error("no submitter observed a 503 after shutdown began")
	}
	if len(accepted) == 0 {
		t.Fatal("no jobs were accepted before shutdown")
	}
	seen := make(map[string]bool, len(accepted))
	for _, id := range accepted {
		if seen[id] {
			t.Fatalf("job id %s issued twice", id)
		}
		seen[id] = true
		st, _ := waitTerminal(t, ts, id)
		if st.Status != StateDone {
			t.Fatalf("accepted job %s = %s (%s), want done", id, st.Status, st.Error)
		}
		if st.Result == nil || st.Result.Cycles != 6 {
			t.Fatalf("job %s result = %+v", id, st.Result)
		}
	}

	// The manager's own accounting must agree: exactly one terminal
	// transition per accepted job.
	_, body := getBody(t, ts.URL+"/varz")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("varz: %v: %s", err, body)
	}
	done, err := strconv.Atoi(string(vars["jobs_done"]))
	if err != nil {
		t.Fatalf("jobs_done = %s", vars["jobs_done"])
	}
	if done != len(accepted) {
		t.Errorf("jobs_done = %d, accepted = %d (dropped or duplicated work)", done, len(accepted))
	}
	if string(vars["jobs_failed"]) != "0" {
		t.Errorf("jobs_failed = %s, want 0", vars["jobs_failed"])
	}
}

// TestConcurrentMixedTraffic hammers jobs, sweeps, and status polls at
// once — a -race exercise of every handler sharing the manager.
func TestConcurrentMixedTraffic(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 32, MaxConcurrentSweeps: 4})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				sr := submit(t, ts, tprocJob())
				waitTerminal(t, ts, sr.ID)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, body := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
					Base:  tprocJob(),
					Seeds: []int64{1, 2},
				})
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("sweep status = %d: %s", resp.StatusCode, body)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			getBody(t, ts.URL+"/varz")
			getBody(t, ts.URL+"/healthz")
		}
	}()
	wg.Wait()
}
