package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ximd/internal/archive"
	"ximd/internal/runner"
)

// newArchiveServer is newTestServer plus a durable run archive in a
// temp dir.
func newArchiveServer(t *testing.T, opts Options) (*Server, *httptest.Server, *archive.Archive) {
	t.Helper()
	a, err := archive.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	opts.Archive = a
	s, ts := newTestServer(t, opts)
	return s, ts, a
}

func TestJobsRecordedInArchive(t *testing.T) {
	_, ts, a := newArchiveServer(t, Options{Workers: 1, QueueDepth: 8})

	req := tprocJob()
	req.Seed = 3
	sr := submit(t, ts, req)
	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}

	key, err := archive.NewKey(sr.ProgramSHA256, runner.ArchXIMD, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := a.Latest(key)
	if !ok {
		t.Fatalf("no archive record for %s", key.ID())
	}
	if rec.ExitCode != 0 || rec.Error != "" {
		t.Fatalf("record = exit %d error %q, want clean", rec.ExitCode, rec.Error)
	}
	if rec.Result == nil || rec.Result.Cycles != st.Result.Cycles {
		t.Fatalf("archived result = %+v, want %d cycles", rec.Result, st.Result.Cycles)
	}
	// The archive always carries the stall-attribution profile, even
	// though the job did not request one.
	if rec.Result.Profile == nil {
		t.Fatal("archived record has no profile block")
	}
	if len(rec.Spans) == 0 {
		t.Fatal("archived record has no spans")
	}
	if rec.UnixMS == 0 {
		t.Fatal("archived record has no timestamp")
	}

	// A failed job is archived too: exit code and error, no result doc.
	fail := submit(t, ts, JobRequest{Source: spinSrc, MaxCycles: 100})
	waitTerminal(t, ts, fail.ID)
	fkey, err := archive.NewKey(fail.ProgramSHA256, runner.ArchXIMD, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	frec, ok := a.Latest(fkey)
	if !ok {
		t.Fatal("failed job not archived")
	}
	if frec.ExitCode == 0 || frec.Error == "" || frec.Result != nil {
		t.Fatalf("failed record = %+v, want nonzero exit, error text, nil result", frec)
	}
}

func TestEquivalentInjectSpecsShareArchiveKey(t *testing.T) {
	_, ts, a := newArchiveServer(t, Options{Workers: 1, QueueDepth: 8})

	var sha string
	for _, spec := range []string{"lat=fixed:4,drop=0.1", "drop=0.1,lat=fixed:4"} {
		sr := submit(t, ts, JobRequest{Source: loadSrc, Seed: 7, Inject: spec})
		waitTerminal(t, ts, sr.ID)
		sha = sr.ProgramSHA256
	}
	key, err := archive.NewKey(sha, runner.ArchXIMD, 7, "drop=0.1,lat=fixed:4")
	if err != nil {
		t.Fatal(err)
	}
	hist := a.History(key)
	if len(hist) != 2 {
		t.Fatalf("history for shared key = %d records, want 2 (keys not canonicalized?)", len(hist))
	}
	// Determinism: both runs carry the same spec, so the archived
	// results must be identical.
	if c := archive.Compare(hist[0], hist[1], archive.Tolerance{}); c.Status != archive.StatusPass {
		t.Fatalf("same-key reruns differ: %+v", c.Deltas)
	}
}

func TestRunsEndpoint(t *testing.T) {
	_, ts, _ := newArchiveServer(t, Options{Workers: 1, QueueDepth: 8})

	req := tprocJob()
	sr := submit(t, ts, req)
	waitTerminal(t, ts, sr.ID)
	req.Seed = 5
	sr2 := submit(t, ts, req)
	waitTerminal(t, ts, sr2.ID)

	get := func(query string) RunsResponse {
		t.Helper()
		resp, body := getBody(t, ts.URL+"/v1/runs"+query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/runs%s: %d: %s", query, resp.StatusCode, body)
		}
		var rr RunsResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatalf("runs body: %v: %s", err, body)
		}
		return rr
	}

	if rr := get("?digest=" + sr.ProgramSHA256); rr.Count != 2 {
		t.Fatalf("digest filter: %d runs, want 2", rr.Count)
	}
	if rr := get("?digest=" + sr.ProgramSHA256 + "&seed=5"); rr.Count != 1 || rr.Runs[0].Key.Seed != 5 {
		t.Fatalf("seed filter: %+v, want the seed-5 run", rr)
	}
	if rr := get("?digest=" + sr.ProgramSHA256 + "&limit=1"); rr.Count != 1 || rr.Runs[0].Key.Seed != 5 {
		t.Fatalf("limit filter: %+v, want newest run only", rr)
	}
	if rr := get("?arch=vliw"); rr.Count != 0 {
		t.Fatalf("arch filter: %d runs, want 0", rr.Count)
	}
	if rr := get("?inject="); rr.Count != 2 {
		t.Fatalf("empty inject filter: %d runs, want 2 idealized", rr.Count)
	}

	resp, _ := getBody(t, ts.URL+"/v1/runs?seed=banana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seed: %d, want 400", resp.StatusCode)
	}
	resp, _ = getBody(t, ts.URL+"/v1/runs?inject=lat=banana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad inject: %d, want 400", resp.StatusCode)
	}
}

func TestArchiveEndpointsDisabledWithoutArchive(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	resp, body := getBody(t, ts.URL+"/v1/runs")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/runs without archive: %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/regress", RegressRequest{Base: tprocJob()})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/regress without archive: %d: %s", resp.StatusCode, body)
	}
}

// regress posts a RegressRequest and returns the parsed 200 response.
func regress(t *testing.T, ts *httptest.Server, req RegressRequest) RegressResponse {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/regress", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("regress: status %d: %s", resp.StatusCode, body)
	}
	var rr RegressResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("regress body: %v: %s", err, body)
	}
	return rr
}

func TestRegressGate(t *testing.T) {
	_, ts, a := newArchiveServer(t, Options{Workers: 2, QueueDepth: 8})

	// Record the baseline through a sweep: loadSrc under fixed latency 1,
	// seeds 1 and 2.
	base := JobRequest{Source: loadSrc, Inject: "lat=fixed:1", Mem: []string{"100=20,22"}}
	resp, body := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{Base: base, Seeds: []int64{1, 2}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline sweep: %d: %s", resp.StatusCode, body)
	}
	if a.Len() != 2 {
		t.Fatalf("archive has %d records after sweep, want 2", a.Len())
	}

	// Re-running the same batch against its own baseline passes.
	rr := regress(t, ts, RegressRequest{Base: base, Seeds: []int64{1, 2}})
	if !rr.Report.Pass || rr.Report.Compared != 2 || rr.Report.Failed != 0 {
		t.Fatalf("self-regress report = %+v, want clean pass", rr.Report)
	}

	// A perturbed run — slower memory than the archived baseline — is
	// flagged with a cycles delta (exact compare: the runs are
	// deterministic, so any drift is real).
	slow := base
	slow.Inject = "lat=fixed:8"
	baseInj := "lat=fixed:1"
	rr = regress(t, ts, RegressRequest{
		Base:           slow,
		Seeds:          []int64{1},
		BaselineInject: &baseInj,
	})
	if rr.Report.Pass || rr.Report.Failed != 1 {
		t.Fatalf("perturbed regress report = %+v, want failure", rr.Report)
	}
	found := false
	for _, d := range rr.Report.Results[0].Deltas {
		if d.Field == "cycles" {
			found = true
		}
	}
	if !found {
		t.Fatalf("perturbed deltas = %+v, want a cycles delta", rr.Report.Results[0].Deltas)
	}

	// A key with nothing archived fails the gate as missing_baseline:
	// unverified is not verified.
	rr = regress(t, ts, RegressRequest{Base: base, Seeds: []int64{99}})
	if rr.Report.Pass || rr.Report.MissingBaseline != 1 {
		t.Fatalf("missing-baseline report = %+v", rr.Report)
	}
	if rr.Report.Results[0].Status != archive.StatusMissingBaseline {
		t.Fatalf("status = %s, want missing_baseline", rr.Report.Results[0].Status)
	}

	// record=true appends the fresh runs after comparing, so the next
	// gate run for seed 99 has a baseline.
	n := a.Len()
	rr = regress(t, ts, RegressRequest{Base: base, Seeds: []int64{99}, Record: true})
	if rr.Report.Pass {
		t.Fatal("first seed-99 regress passed; comparison must precede recording")
	}
	if a.Len() != n+1 {
		t.Fatalf("archive len = %d, want %d after record=true", a.Len(), n+1)
	}
	rr = regress(t, ts, RegressRequest{Base: base, Seeds: []int64{99}})
	if !rr.Report.Pass {
		t.Fatalf("seed-99 regress after recording = %+v, want pass", rr.Report)
	}
}

func TestArchiveMetricsExposed(t *testing.T) {
	_, ts, _ := newArchiveServer(t, Options{Workers: 1, QueueDepth: 4})
	sr := submit(t, ts, tprocJob())
	waitTerminal(t, ts, sr.ID)

	_, body := getBody(t, ts.URL+"/metrics")
	text := string(body)
	for _, want := range []string{
		"ximdd_archive_appends_total 1",
		"ximdd_archive_append_errors_total 0",
		"ximdd_archive_records 1",
		"ximdd_archive_queries_total",
		"ximdd_regress_total",
		"ximdd_regress_failed_total",
		"ximdd_archive_append_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}
}

func TestRetryAfterSecondsRoundsUpWithFloor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{time.Millisecond, "1"},
		{100 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1200 * time.Millisecond, "2"},
		{2500 * time.Millisecond, "3"},
		{5 * time.Second, "5"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestSubsecondRetryAfterNeverZero locks in the bugfix: a sub-second
// RetryAfter configuration used to truncate to "Retry-After: 0",
// telling backed-off clients to hammer immediately. Both backpressure
// paths (429 queue full, 503 shutting down) must emit at least "1".
func TestSubsecondRetryAfterNeverZero(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: 100 * time.Millisecond,
		JobTimeout: time.Minute,
	})
	long := JobRequest{Source: spinSrc, MaxCycles: 4_000_000_000}
	var got429 *http.Response
	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", long)
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if got429 == nil {
		t.Fatal("queue never filled")
	}
	if ra := got429.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 Retry-After = %q, want \"1\"", ra)
	}

	// Begin shutdown (don't wait for the drain) and probe the 503 path.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_ = s.Shutdown(ctx)
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", long)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("503 Retry-After = %q, want \"1\"", ra)
	}
}

// TestSteppedClockNeverNegativeDurations swaps in a wall clock that
// steps backward between every read (and carries no monotonic reading,
// like a time restored from serialization). queued_ms, run_ms, and the
// span breakdown must clamp to zero instead of going negative.
func TestSteppedClockNeverNegativeDurations(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	base := time.Unix(1_700_000_000, 0) // wall-only: no monotonic reading
	var step time.Duration
	s.mgr.mu.Lock()
	s.mgr.now = func() time.Time {
		step += time.Second
		return base.Add(-step)
	}
	s.mgr.mu.Unlock()

	sr := submit(t, ts, tprocJob())
	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.QueuedMS == nil || *st.QueuedMS < 0 {
		t.Fatalf("queued_ms = %v, want >= 0", st.QueuedMS)
	}
	if st.RunMS == nil || *st.RunMS < 0 {
		t.Fatalf("run_ms = %v, want >= 0", st.RunMS)
	}

	resp, body := getBody(t, ts.URL+"/v1/jobs/"+sr.ID+"/spans")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spans: %d: %s", resp.StatusCode, body)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var sl SpanLine
		if err := json.Unmarshal([]byte(line), &sl); err != nil {
			t.Fatalf("span line %q: %v", line, err)
		}
		if sl.Ms < 0 {
			t.Fatalf("span %s = %v ms, want >= 0", sl.Span, sl.Ms)
		}
	}
}
