package serve

// The worker-side half of the distributed sweep fabric. A ximdd worker
// is still a complete standalone service; these endpoints are what a
// fabric coordinator (internal/fabric, cmd/ximdc) layers on top of the
// ordinary job API to run a fleet:
//
//	GET  /livez            process liveness: 200 for as long as the
//	                       process can answer at all, draining or not
//	GET  /readyz           routing readiness: 503 "draining" during
//	                       graceful shutdown, so a coordinator stops
//	                       sending work instead of eating per-job 503s
//	POST /v1/fabric/lease  coordinator registration: acquires or renews
//	                       an exclusive, TTL-bounded lease on this
//	                       worker and doubles as the heartbeat — the
//	                       response reports identity and load (executor
//	                       count, queue depth/capacity, inflight jobs,
//	                       drain state) that the coordinator's router
//	                       feeds into digest-affinity placement
//
// /healthz keeps its historical behaviour byte-for-byte (200 "ok",
// 503 "draining" while shutting down) for single-node users; the
// liveness/readiness split is strictly additive.

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Lease TTL bounds: a coordinator that asks for nothing gets
// DefaultLeaseTTL; requests are clamped to [MinLeaseTTL, MaxLeaseTTL].
const (
	DefaultLeaseTTL = 3 * time.Second
	MinLeaseTTL     = 100 * time.Millisecond
	MaxLeaseTTL     = time.Minute
)

// LeaseRequest is the body of POST /v1/fabric/lease.
type LeaseRequest struct {
	// Coordinator identifies the lease holder; renewals must present
	// the same identity.
	Coordinator string `json:"coordinator"`
	// TTLMS is the requested lease duration in milliseconds
	// (0 = DefaultLeaseTTL).
	TTLMS int64 `json:"ttl_ms,omitempty"`
}

// LeaseResponse is the 200 body of a granted or renewed lease: the
// worker's identity plus the load signals the coordinator's router
// uses for spill decisions.
type LeaseResponse struct {
	WorkerID string `json:"worker_id"`
	// TTLMS is the granted lease duration (the requested value after
	// clamping).
	TTLMS int64 `json:"ttl_ms"`
	// Executors is the worker-pool size; QueueCapacity the bounded
	// submission queue depth — together the worker's nominal capacity.
	Executors     int `json:"executors"`
	QueueCapacity int `json:"queue_capacity"`
	// Queued and Running are the current load.
	Queued  int64 `json:"queued"`
	Running int64 `json:"running"`
	// Draining reports graceful shutdown in progress: the lease still
	// renews (the coordinator keeps reconciling inflight jobs) but no
	// new work should be routed here.
	Draining bool `json:"draining"`
}

// leaseState is the worker's registration record: at most one
// coordinator holds the lease at a time, and a competing coordinator
// is refused (409) until the holder's TTL lapses.
type leaseState struct {
	mu      sync.Mutex
	holder  string
	expires time.Time
}

// newWorkerID mints the worker's identity, stable for the process
// lifetime and carried in every lease response.
func newWorkerID() string {
	var b [6]byte
	_, _ = rand.Read(b[:])
	return "w-" + hex.EncodeToString(b[:])
}

func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.mgr.shuttingDown() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Coordinator == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("lease request needs a coordinator identity"))
		return
	}
	ttl := time.Duration(req.TTLMS) * time.Millisecond
	switch {
	case ttl <= 0:
		ttl = DefaultLeaseTTL
	case ttl < MinLeaseTTL:
		ttl = MinLeaseTTL
	case ttl > MaxLeaseTTL:
		ttl = MaxLeaseTTL
	}

	now := time.Now()
	s.lease.mu.Lock()
	switch {
	case s.lease.holder == "" || s.lease.holder == req.Coordinator || now.After(s.lease.expires):
		s.lease.holder = req.Coordinator
		s.lease.expires = now.Add(ttl)
	default:
		holder, remaining := s.lease.holder, time.Until(s.lease.expires)
		s.lease.mu.Unlock()
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: worker leased to %q for another %v", holder, remaining.Round(time.Millisecond)))
		return
	}
	s.lease.mu.Unlock()

	writeJSON(w, http.StatusOK, LeaseResponse{
		WorkerID:      s.workerID,
		TTLMS:         int64(ttl / time.Millisecond),
		Executors:     s.opts.Workers,
		QueueCapacity: s.opts.QueueDepth,
		Queued:        s.mgr.met.queued.Value(),
		Running:       s.mgr.met.running.Value(),
		Draining:      s.mgr.shuttingDown(),
	})
}
