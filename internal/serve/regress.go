package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"ximd/internal/archive"
	"ximd/internal/inject"
	"ximd/internal/obs"
)

// This file is the service half of the regression gate. GET /v1/runs
// queries the durable run archive; POST /v1/regress re-runs a batch of
// (seed, inject) variations and diffs each fresh run against its
// archived baseline under the archive's tolerance policy. Both answer
// 404 when the server was started without -archive.

// RunsResponse is the body of GET /v1/runs.
type RunsResponse struct {
	Count int              `json:"count"`
	Runs  []archive.Record `json:"runs"`
}

// handleRuns serves cross-run history from the archive. Filters:
// digest (program_sha256), arch, seed, inject (matched in canonical
// form; an explicitly empty inject= selects idealized runs), limit
// (newest N).
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if s.mgr.arch == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: run archive disabled (start ximdd with -archive)"))
		return
	}
	params := r.URL.Query()
	q := archive.Query{
		ProgramSHA256: params.Get("digest"),
		Arch:          params.Get("arch"),
	}
	if v := params.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q", v))
			return
		}
		q.Seed = &seed
	}
	if vs, ok := params["inject"]; ok {
		canon, err := inject.Canonicalize(vs[0])
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("inject: %w", err))
			return
		}
		q.Inject = &canon
	}
	if v := params.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		q.Limit = n
	}
	recs := s.mgr.arch.Select(q)
	s.mgr.met.archiveQueries.Inc()
	if recs == nil {
		recs = []archive.Record{}
	}
	writeJSON(w, http.StatusOK, RunsResponse{Count: len(recs), Runs: recs})
}

// RegressRequest is the body of POST /v1/regress: the same shape as a
// sweep — one base job plus seed/inject axes — evaluated as a
// regression gate instead of returned as documents.
type RegressRequest struct {
	Base JobRequest `json:"base"`
	// Seeds and Injects expand exactly like a sweep's axes.
	Seeds   []int64  `json:"seeds,omitempty"`
	Injects []string `json:"injects,omitempty"`
	// BaselineSeed and BaselineInject, when set, override the matching
	// axis of the baseline lookup key, diffing every fresh run against a
	// different archived configuration (e.g. "does seed 7 still behave
	// like the archived seed 1"). Left unset, each run is compared
	// against the latest archived record for its own key.
	BaselineSeed   *int64  `json:"baseline_seed,omitempty"`
	BaselineInject *string `json:"baseline_inject,omitempty"`
	// Tolerance is the absolute tolerance for ratio metrics; 0 selects
	// archive.DefaultRatioTolerance. Integral fields are always exact.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Record appends the fresh runs to the archive after the comparison
	// (so a passing gate can double as a baseline refresh). Comparison
	// always happens first — a run never passes by matching itself.
	Record bool `json:"record,omitempty"`
}

// RegressResponse is the body of a completed gate evaluation.
type RegressResponse struct {
	ProgramSHA256 string          `json:"program_sha256"`
	Report        *archive.Report `json:"report"`
}

// handleRegress re-runs the requested batch on the sweep engine and
// diffs each run against its archived baseline. The gate's verdict is
// report.pass: false on any drift beyond tolerance or any missing
// baseline. The HTTP status is 200 either way — a failing gate is a
// successful evaluation.
func (s *Server) handleRegress(w http.ResponseWriter, r *http.Request) {
	if s.mgr.arch == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: run archive disabled (start ximdd with -archive)"))
		return
	}
	if s.mgr.shuttingDown() {
		s.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	// Regressions fan out on the sweep engine and share its concurrency
	// bound and backpressure contract.
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	default:
		s.setRetryAfter(w)
		writeError(w, http.StatusTooManyRequests, errors.New("serve: sweep capacity in use"))
		return
	}

	var req RegressRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxSourceBytes*2))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Base.Trace {
		writeError(w, http.StatusBadRequest, errors.New("regressions do not support trace=true"))
		return
	}
	if req.Tolerance < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("tolerance must be >= 0, got %g", req.Tolerance))
		return
	}
	var baselineInject *string
	if req.BaselineInject != nil {
		canon, err := inject.Canonicalize(*req.BaselineInject)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("baseline_inject: %w", err))
			return
		}
		baselineInject = &canon
	}
	base, status, err := s.buildJob(&req.Base)
	if err != nil {
		writeError(w, status, err)
		return
	}
	variants, err := s.expandSweep(base, req.Seeds, req.Injects)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Regression batches trace like sweeps: adopt the coordinator's
	// context or root fresh, one variant child per re-run.
	sc, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	regSpan := s.mgr.tr.Adopt(sc, "regress")
	regSpan.SetAttr("digest", base.progSHA)
	_, _, recs := s.runSweepVariants(base, variants, regSpan)
	regSpan.Finish()

	tol := archive.Tolerance{Ratio: req.Tolerance}
	report := archive.NewReport(tol)
	for i := range recs {
		lookup := recs[i].Key
		if req.BaselineSeed != nil {
			lookup.Seed = *req.BaselineSeed
		}
		if baselineInject != nil {
			lookup.Inject = *baselineInject
		}
		baseline, ok := s.mgr.arch.Latest(lookup)
		if !ok {
			report.Add(archive.Comparison{Key: recs[i].Key, Status: archive.StatusMissingBaseline})
			continue
		}
		report.Add(archive.Compare(baseline, recs[i], tol))
	}
	s.mgr.met.regressTotal.Inc()
	if !report.Pass {
		s.mgr.met.regressFailed.Inc()
	}
	if req.Record {
		for i := range recs {
			s.mgr.appendArchive(recs[i])
		}
	}
	writeJSON(w, http.StatusOK, RegressResponse{ProgramSHA256: base.progSHA, Report: report})
}
