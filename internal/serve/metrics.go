package serve

import (
	"fmt"
	"strings"
	"time"

	"ximd/internal/obs"
)

// serveMetrics is the service's instrumentation, carried by one
// obs.Registry per Server so tests and multi-server processes never
// share counters (the same isolation the old per-manager expvar.Map
// gave). The registry is served verbatim at GET /metrics; /varz is a
// legacy view over the same counters (see varzJSON).
//
// Naming: every series carries the ximdd_ prefix, counters end in
// _total, and duration histograms end in _seconds, per the Prometheus
// conventions.
type serveMetrics struct {
	reg *obs.Registry

	jobsTotal      *obs.Counter
	jobsDone       *obs.Counter
	jobsFailed     *obs.Counter
	rejectedFull   *obs.Counter
	rejectedClosed *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cyclesSimmed   *obs.Counter
	sweepsRun      *obs.Counter
	sweepTasks     *obs.Counter

	archiveAppends    *obs.Counter
	archiveAppendErrs *obs.Counter
	archiveQueries    *obs.Counter
	regressTotal      *obs.Counter
	regressFailed     *obs.Counter

	jobsRequeued *obs.Counter
	jobsResumed  *obs.Counter
	jobsColdRun  *obs.Counter
	ckptWrites   *obs.Counter
	ckptBytes    *obs.Counter
	ckptErrs     *obs.Counter

	queued        *obs.Gauge
	running       *obs.Gauge
	queueCapacity *obs.Gauge
	workers       *obs.Gauge

	archiveAppendSecs *obs.Histogram
	ckptSaveSecs      *obs.Histogram

	queueWait  *obs.Histogram
	decodeHit  *obs.Histogram
	decodeMiss *obs.Histogram
	execute    *obs.Histogram
	total      *obs.Histogram
	sweepTask  *obs.Histogram
}

// latencyBuckets covers the service's span range: decode and queue
// waits live in the sub-millisecond decades, executions run up to the
// multi-second job timeout.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

func newServeMetrics() *serveMetrics {
	reg := obs.NewRegistry()
	return &serveMetrics{
		reg: reg,

		jobsTotal:      reg.Counter("ximdd_jobs_total", "Jobs accepted into the submission queue."),
		jobsDone:       reg.Counter("ximdd_jobs_done_total", "Jobs that reached the done state."),
		jobsFailed:     reg.Counter("ximdd_jobs_failed_total", "Jobs that reached the failed state."),
		rejectedFull:   reg.Counter("ximdd_rejected_queue_full_total", "Submissions rejected with 429 because the queue was full."),
		rejectedClosed: reg.Counter("ximdd_rejected_shutting_down_total", "Submissions rejected with 503 during graceful shutdown."),
		cacheHits:      reg.Counter("ximdd_cache_hits_total", "Decoded-program cache hits."),
		cacheMisses:    reg.Counter("ximdd_cache_misses_total", "Decoded-program cache misses."),
		cyclesSimmed:   reg.Counter("ximdd_cycles_simulated_total", "Machine cycles simulated across jobs and sweep tasks."),
		sweepsRun:      reg.Counter("ximdd_sweeps_total", "Sweep requests executed."),
		sweepTasks:     reg.Counter("ximdd_sweep_tasks_total", "Individual sweep tasks executed."),

		archiveAppends:    reg.Counter("ximdd_archive_appends_total", "Records appended to the durable run archive."),
		archiveAppendErrs: reg.Counter("ximdd_archive_append_errors_total", "Archive appends that failed (record dropped, run unaffected)."),
		archiveQueries:    reg.Counter("ximdd_archive_queries_total", "GET /v1/runs archive queries served."),
		regressTotal:      reg.Counter("ximdd_regress_total", "POST /v1/regress gate evaluations."),
		regressFailed:     reg.Counter("ximdd_regress_failed_total", "Regression gate evaluations that did not pass."),

		jobsRequeued: reg.Counter("ximdd_jobs_requeued_total", "Journaled jobs re-enqueued from scratch after a restart (never started, or no usable checkpoint and never run)."),
		jobsResumed:  reg.Counter("ximdd_jobs_resumed_total", "Journaled jobs resumed from a durable checkpoint after a restart."),
		jobsColdRun:  reg.Counter("ximdd_jobs_cold_rerun_total", "Journaled jobs rerun from cycle 0 after a restart because their checkpoint was missing, torn, or stale."),
		ckptWrites:   reg.Counter("ximdd_checkpoint_writes_total", "Durable job checkpoints written (frame append + fsync)."),
		ckptBytes:    reg.Counter("ximdd_checkpoint_bytes_total", "Bytes of framed checkpoint data written."),
		ckptErrs:     reg.Counter("ximdd_checkpoint_errors_total", "Checkpoint writes or deletes that failed (job unaffected, resumability degraded)."),

		queued:        reg.Gauge("ximdd_jobs_queued", "Jobs currently waiting in the submission queue."),
		running:       reg.Gauge("ximdd_jobs_running", "Jobs currently executing."),
		queueCapacity: reg.Gauge("ximdd_queue_capacity", "Configured submission queue depth."),
		workers:       reg.Gauge("ximdd_workers", "Configured worker pool size."),

		archiveAppendSecs: reg.Histogram("ximdd_archive_append_seconds", "Durable run archive append latency (frame write + fsync).", latencyBuckets),
		ckptSaveSecs:      reg.Histogram("ximdd_checkpoint_save_seconds", "Durable checkpoint save latency (snapshot encode + frame write + fsync).", latencyBuckets),

		queueWait:  reg.Histogram("ximdd_job_queue_wait_seconds", "Time from job acceptance to execution start.", latencyBuckets),
		decodeHit:  reg.Histogram("ximdd_job_decode_hit_seconds", "Program resolution time on a decoded-program cache hit.", latencyBuckets),
		decodeMiss: reg.Histogram("ximdd_job_decode_miss_seconds", "Program resolution time on a cache miss (assemble, validate, pre-decode).", latencyBuckets),
		execute:    reg.Histogram("ximdd_job_execute_seconds", "Job execution time in the sweep engine.", latencyBuckets),
		total:      reg.Histogram("ximdd_job_total_seconds", "Time from job acceptance to terminal state.", latencyBuckets),
		sweepTask:  reg.Histogram("ximdd_sweep_task_seconds", "Per-task execution time of synchronous sweeps.", latencyBuckets),
	}
}

// observeDecode records one program resolution in the hit- or
// miss-labelled series.
func (sm *serveMetrics) observeDecode(d time.Duration, hit bool) {
	if hit {
		sm.decodeHit.Observe(d.Seconds())
	} else {
		sm.decodeMiss.Observe(d.Seconds())
	}
}

// varzJSON renders the legacy /varz document from the registry's
// counters. The output is byte-compatible with what the previous
// expvar.Map-backed handler produced — expvar.Map.String() emits
// `{"k": v, "k2": v2}` with keys in sorted order — so existing
// scrapers keep working unchanged. The key set and its sorted order
// are fixed here; TestVarzByteCompatibleWithExpvar holds the rendering
// to a real expvar.Map.
func (m *manager) varzJSON() string {
	depth := int64(len(m.queue))
	m.mu.Lock()
	entries := int64(m.cache.len())
	m.mu.Unlock()
	sm := m.met
	pairs := []struct {
		key string
		val int64
	}{
		{"cache_entries", entries},
		{"cache_hits", int64(sm.cacheHits.Value())},
		{"cache_misses", int64(sm.cacheMisses.Value())},
		{"cycles_simulated", int64(sm.cyclesSimmed.Value())},
		{"jobs_done", int64(sm.jobsDone.Value())},
		{"jobs_failed", int64(sm.jobsFailed.Value())},
		{"jobs_queued", sm.queued.Value()},
		{"jobs_running", sm.running.Value()},
		{"queue_capacity", sm.queueCapacity.Value()},
		{"queue_depth", depth},
		{"rejected_queue_full", int64(sm.rejectedFull.Value())},
		{"rejected_shutting_down", int64(sm.rejectedClosed.Value())},
		{"sweep_tasks", int64(sm.sweepTasks.Value())},
		{"sweeps_run", int64(sm.sweepsRun.Value())},
		{"workers", sm.workers.Value()},
	}
	var b strings.Builder
	b.WriteString("{")
	for i, p := range pairs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q: %d", p.key, p.val)
	}
	b.WriteString("}")
	return b.String()
}
