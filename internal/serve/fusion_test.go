package serve

import (
	"testing"

	"ximd/internal/runner"
)

// fusibleSrc is a straight-line two-FU schedule whose interior words
// all fall through to the next address: every word but the last is a
// superop fusion candidate on both architectures.
const fusibleSrc = `
.fus 2
.fu 0
	iadd r1, #1, r1
	iadd r1, r1, r2
	imult r2, #3, r3
	isub r3, r2, r4
	iadd r4, r1, r5
	=> halt
.fu 1
	isub r6, #1, r6
	iadd r6, r6, r7
	nop
	nop
	nop
	=> halt
`

// TestCachedProgramCarriesFusionTables pins the serve-layer half of the
// fusion rollout: the decoded-program cache stores runner.Programs
// whose predecode already includes the superop fusion tables, under the
// same content-addressed key as before. A repeat submission must hit
// the cache and hand workers a program with a non-empty fusion table —
// fusion rides the existing cache entry; no re-decode, no key change.
func TestCachedProgramCarriesFusionTables(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8})

	run := func() JobStatus {
		sr := submit(t, ts, JobRequest{Arch: "ximd", Source: fusibleSrc})
		st, _ := waitTerminal(t, ts, sr.ID)
		if st.Status != StateDone {
			t.Fatalf("job failed: %s", st.Error)
		}
		return st
	}
	first := run()

	// The cache now holds the program; a second resolution must be a hit
	// and return the identical pre-fused table.
	prog, key, hit, err := s.mgr.loadProgram(runner.ArchXIMD, []byte(fusibleSrc))
	if err != nil {
		t.Fatalf("loadProgram: %v", err)
	}
	if !hit {
		t.Fatal("second resolution of the same source missed the cache")
	}
	if got := prog.FusibleWords(); got != 5 {
		t.Fatalf("cached program has %d fusible words, want 5", got)
	}
	if want := programKey(runner.ArchXIMD, []byte(fusibleSrc)); key != want {
		t.Fatalf("cache key changed: %q != %q", key, want)
	}

	// And a repeat job through the full path reports the hit and
	// reproduces the result exactly.
	sr := submit(t, ts, JobRequest{Arch: "ximd", Source: fusibleSrc})
	if !sr.CacheHit {
		t.Error("repeat submission did not report a cache hit")
	}
	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateDone {
		t.Fatalf("repeat job failed: %s", st.Error)
	}
	if st.Result.Cycles != first.Result.Cycles {
		t.Fatalf("cache-hit run: %d cycles, first run: %d", st.Result.Cycles, first.Result.Cycles)
	}

	// The VLIW variant of the same source fuses too, under its own key.
	vprog, _, _, err := s.mgr.loadProgram(runner.ArchVLIW, []byte(fusibleSrc))
	if err != nil {
		t.Fatalf("loadProgram vliw: %v", err)
	}
	if got := vprog.FusibleWords(); got != 5 {
		t.Fatalf("cached VLIW program has %d fusible words, want 5", got)
	}
}
