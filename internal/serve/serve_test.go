package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tprocSrc is the Example 1 VLIW-style schedule: 6 cycles, runnable on
// both architectures, result tproc(3,4,5,6)=46 in r6.
const tprocSrc = `
.fus 4
.fu 0
	iadd r1, r2, r5
	iadd r6, r5, r6
	iadd r1, r4, r1
	iadd r1, r5, r1
	iadd r1, r7, r6
	=> halt
.fu 1
	imult r3, r1, r6
	isub r1, r7, r7
	iadd r6, r7, r7
	nop
	nop
	=> halt
.fu 2
	iadd r3, r2, r7
	iadd r5, r3, r1
	nop
	nop
	nop
	=> halt
.fu 3
	nop
	isub r4, r5, r5
	nop
	nop
	nop
	=> halt
`

// spinSrc never halts; paired with a large max_cycles it keeps a worker
// busy for backpressure and shutdown tests.
const spinSrc = `
.fus 1
.fu 0
loop:
	iadd r1, #1, r1
	=> goto loop
`

// storeSrc writes r1+r2 to memory for peek tests.
const storeSrc = `
.fus 1
.fu 0
	iadd r1, r2, r3
	store r3, #100
	=> halt
`

// loadSrc goes through memory, so lat= fault injection stretches it.
const loadSrc = `
.fus 1
.fu 0
	load #100, #0, r1
	load #101, #0, r2
	iadd r1, r2, r3
	store r3, #102
	=> halt
`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// submit posts a job and returns the parsed 202 response.
func submit(t *testing.T, ts *httptest.Server, req JobRequest) SubmitResponse {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("submit response: %v: %s", err, body)
	}
	return sr
}

// waitTerminal polls a job until done/failed and returns the final
// status along with its raw body.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) (JobStatus, []byte) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, body := getBody(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: %d: %s", id, resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status body: %v: %s", err, body)
		}
		if st.Status == StateDone || st.Status == StateFailed {
			return st, body
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func tprocJob() JobRequest {
	return JobRequest{
		Arch:   "ximd",
		Source: tprocSrc,
		Pokes:  []string{"r1=3", "r2=4", "r3=5", "r4=6"},
	}
}

func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	sr := submit(t, ts, tprocJob())
	if sr.CacheHit {
		t.Error("first submission reported a cache hit")
	}
	if len(sr.ProgramSHA256) != 64 {
		t.Errorf("program_sha256 = %q, want 64 hex chars", sr.ProgramSHA256)
	}
	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Result == nil || st.Result.Cycles != 6 {
		t.Fatalf("result = %+v, want 6 cycles", st.Result)
	}
	if st.ExitCode == nil || *st.ExitCode != 0 {
		t.Fatalf("exit_code = %v, want 0", st.ExitCode)
	}
	if st.Result.Arch != "ximd" {
		t.Errorf("arch = %q", st.Result.Arch)
	}
}

func TestVLIWJobAndPeeks(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8})
	sr := submit(t, ts, JobRequest{
		Arch:   "vliw",
		Source: storeSrc,
		Pokes:  []string{"r1=20", "r2=22"},
		Peeks:  []string{"100:1"},
	})
	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if len(st.Result.Peeks) != 1 || st.Result.Peeks[0].Values[0] != 42 {
		t.Fatalf("peeks = %+v, want M[100]=42", st.Result.Peeks)
	}
	if st.Result.Arch != "vliw" {
		t.Errorf("arch = %q", st.Result.Arch)
	}
}

func TestMalformedProgramIs400WithLineNumbers(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Source: ".fus 1\n.fu 0\n\tbogus r1, r2, r3\n\t=> halt\n",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "line 3") {
		t.Fatalf("assembler line number lost: %s", body)
	}
}

func TestBadRequestsAre400(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"no program", JobRequest{Arch: "ximd"}},
		{"both source and image", JobRequest{Source: spinSrc, Image: []byte("XIMD")}},
		{"bad arch", JobRequest{Arch: "mips", Source: spinSrc}},
		{"bad poke", JobRequest{Source: spinSrc, Pokes: []string{"q1=2"}}},
		{"bad peek", JobRequest{Source: spinSrc, Peeks: []string{"abc"}}},
		{"bad inject", JobRequest{Source: spinSrc, Inject: "lat=banana"}},
		{"non-vliw code for vliw", JobRequest{Arch: "vliw", Source: `
.fus 2
.fu 0
	iadd r1, #1, r1
	=> halt
.fu 1
l:
	nop
	=> goto l
`}},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", c.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", c.name, resp.StatusCode, body)
		}
	}
	// Unknown JSON fields are rejected too.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"source":"x","frobnicate":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status = %d, want 400", resp.StatusCode)
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	resp, _ := getBody(t, ts.URL+"/v1/jobs/j-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestSimFaultReportsExitCode(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	sr := submit(t, ts, JobRequest{Source: spinSrc, MaxCycles: 100})
	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateFailed {
		t.Fatalf("status = %s, want failed", st.Status)
	}
	if st.ExitCode == nil || *st.ExitCode != 1 {
		t.Fatalf("exit_code = %v, want 1", st.ExitCode)
	}
	if !strings.Contains(st.Error, "maximum cycle count") {
		t.Fatalf("error = %q", st.Error)
	}
}

func TestTraceEndpointNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	traced := tprocJob()
	traced.Trace = true
	sr := submit(t, ts, traced)
	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	resp, body := getBody(t, ts.URL+"/v1/jobs/"+sr.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q", ct)
	}
	var lines []TraceLine
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		var line TraceLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if uint64(len(lines)) != st.Result.Cycles {
		t.Fatalf("%d trace lines for %d cycles", len(lines), st.Result.Cycles)
	}
	if lines[0].Cycle != 0 || len(lines[0].PC) != 4 || lines[0].Partition == "" {
		t.Fatalf("first line = %+v", lines[0])
	}

	// A job submitted without trace=true 404s.
	plain := submit(t, ts, tprocJob())
	waitTerminal(t, ts, plain.ID)
	resp, _ = getBody(t, ts.URL+"/v1/jobs/"+plain.ID+"/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced job trace status = %d, want 404", resp.StatusCode)
	}
}

func TestSweepEndpointOrderAndDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 8})
	req := SweepRequest{
		Base: JobRequest{
			Source: loadSrc,
			Mem:    []string{"100=20", "101=22"},
			Peeks:  []string{"102:1"},
		},
		Seeds:   []int64{1, 2, 3},
		Injects: []string{"", "lat=fixed:2"},
	}
	// The first request warms the decoded-program cache, the second hits
	// it; their result arrays must still be byte-identical. (Only the
	// cache_hit field outside "results" may differ.)
	var results [][]byte
	var sw SweepResponse
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/sweeps", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status = %d: %s", resp.StatusCode, body)
		}
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(body, &fields); err != nil {
			t.Fatal(err)
		}
		results = append(results, fields["results"])
		if i == 0 {
			if err := json.Unmarshal(body, &sw); err != nil {
				t.Fatal(err)
			}
			if sw.CacheHit {
				t.Error("first sweep reported a cache hit")
			}
		} else {
			var second SweepResponse
			if err := json.Unmarshal(body, &second); err != nil {
				t.Fatal(err)
			}
			if !second.CacheHit {
				t.Error("second sweep missed the decoded-program cache")
			}
		}
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatalf("cold and cached sweep results differ:\n%s\n%s", results[0], results[1])
	}
	if len(sw.Results) != 6 {
		t.Fatalf("%d results, want 6", len(sw.Results))
	}
	// Submission order: inject outer, seed inner.
	wantOrder := []struct {
		inject string
		seed   int64
	}{
		{"", 1}, {"", 2}, {"", 3},
		{"lat=fixed:2", 1}, {"lat=fixed:2", 2}, {"lat=fixed:2", 3},
	}
	for i, want := range wantOrder {
		got := sw.Results[i]
		if got.Inject != want.inject || got.Seed != want.seed {
			t.Fatalf("results[%d] = (%q, %d), want (%q, %d)", i, got.Inject, got.Seed, want.inject, want.seed)
		}
		if got.Error != "" || got.Result == nil {
			t.Fatalf("results[%d] failed: %s", i, got.Error)
		}
		if got.Result.Peeks[0].Values[0] != 42 {
			t.Fatalf("results[%d] M[102] = %d, want 42", i, got.Result.Peeks[0].Values[0])
		}
	}
	// Idealized memory runs in fewer cycles than lat=fixed:2.
	if base, slow := sw.Results[0].Result.Cycles, sw.Results[3].Result.Cycles; slow <= base {
		t.Errorf("lat=fixed:2 cycles = %d, want > idealized %d", slow, base)
	}
}

func TestHealthzAndVarz(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	sr := submit(t, ts, tprocJob())
	waitTerminal(t, ts, sr.ID)

	resp, body = getBody(t, ts.URL+"/varz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("varz status = %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("varz is not JSON: %v: %s", err, body)
	}
	for _, key := range []string{"queue_depth", "queue_capacity", "jobs_done", "jobs_failed",
		"cache_hits", "cache_misses", "cycles_simulated", "cache_entries", "workers"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("varz missing %q: %s", key, body)
		}
	}
	if string(vars["jobs_done"]) != "1" {
		t.Errorf("jobs_done = %s, want 1", vars["jobs_done"])
	}
	if string(vars["cycles_simulated"]) != "6" {
		t.Errorf("cycles_simulated = %s, want 6", vars["cycles_simulated"])
	}

	// After shutdown begins, healthz reports draining and submissions 503.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, _ = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", tprocJob())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{Base: tprocJob()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep during drain = %d, want 503", resp.StatusCode)
	}
}

func TestBackpressure429WithRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: 7 * time.Second,
		JobTimeout: time.Minute,
	})
	long := JobRequest{Source: spinSrc, MaxCycles: 4_000_000_000}
	var got429 *http.Response
	var body429 []byte
	// Depth 1 and one (busy) worker: by the third submission at the
	// latest the queue must be full.
	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", long)
		if resp.StatusCode == http.StatusTooManyRequests {
			got429, body429 = resp, body
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if got429 == nil {
		t.Fatal("queue never filled: no 429 in 5 submissions with depth 1 and 1 worker")
	}
	if ra := got429.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", ra)
	}
	if !strings.Contains(string(body429), "queue full") {
		t.Fatalf("429 body = %s", body429)
	}
	// Cancel the spin jobs now so the deferred cleanup is instant.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_ = s.Shutdown(ctx)
}

func TestShutdownCancelsStuckJobs(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, JobTimeout: time.Minute})
	ids := []string{
		submit(t, ts, JobRequest{Source: spinSrc, MaxCycles: 4_000_000_000}).ID,
		submit(t, ts, JobRequest{Source: spinSrc, MaxCycles: 4_000_000_000}).ID,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown err = %v, want DeadlineExceeded", err)
	}
	// Every accepted job must still reach a terminal state — cancelled,
	// not dropped.
	for _, id := range ids {
		st, _ := waitTerminal(t, ts, id)
		if st.Status != StateFailed {
			t.Fatalf("job %s = %s, want failed", id, st.Status)
		}
		if !strings.Contains(st.Error, "context canceled") {
			t.Fatalf("job %s error = %q, want cancellation", id, st.Error)
		}
	}
}

func TestJobTimeoutViaSweepTaskTimeout(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2, JobTimeout: 50 * time.Millisecond})
	sr := submit(t, ts, JobRequest{Source: spinSrc, MaxCycles: 4_000_000_000})
	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateFailed {
		t.Fatalf("status = %s, want failed", st.Status)
	}
	if !strings.Contains(st.Error, "deadline exceeded") {
		t.Fatalf("error = %q, want deadline exceeded", st.Error)
	}
}

func TestSweepLimits(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2, MaxSweepTasks: 4})
	req := SweepRequest{Base: tprocJob(), Seeds: []int64{1, 2, 3, 4, 5}}
	resp, body := postJSON(t, ts.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized sweep: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "limit 4") {
		t.Fatalf("body = %s", body)
	}
	bad := SweepRequest{Base: tprocJob(), Injects: []string{"lat=banana"}}
	resp, body = postJSON(t, ts.URL+"/v1/sweeps", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad inject sweep: %d: %s", resp.StatusCode, body)
	}
	traced := tprocJob()
	traced.Trace = true
	resp, _ = postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{Base: traced})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("traced sweep: %d, want 400", resp.StatusCode)
	}
}

func TestSweepBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Workers:             1,
		QueueDepth:          2,
		MaxConcurrentSweeps: 1,
		RetryAfter:          3 * time.Second,
	})
	// Hold the single sweep slot so the probe below deterministically
	// sees the capacity-exhausted path.
	s.sweepSem <- struct{}{}
	resp, body := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{Base: tprocJob()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("sweep with slot held: %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	<-s.sweepSem
	resp, body = postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{Base: tprocJob()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep with slot free: %d: %s", resp.StatusCode, body)
	}
}

func TestSubmitResponseEchoesQueueState(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	sr := submit(t, ts, tprocJob())
	if sr.Status != StateQueued {
		t.Fatalf("status = %s, want queued", sr.Status)
	}
	if sr.ID == "" {
		t.Fatal("empty job id")
	}
}
