package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestLivezReadyzSplit: /livez answers 200 for the whole process
// lifetime, /readyz flips to 503 "draining" during graceful shutdown,
// and /healthz keeps its original byte-compatible behaviour (it was the
// readiness signal before the split).
func TestLivezReadyzSplit(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	for path, want := range map[string]string{"/livez": "ok\n", "/readyz": "ready\n", "/healthz": "ok\n"} {
		resp, body := getBody(t, ts.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if string(body) != want {
			t.Fatalf("%s body = %q, want %q", path, body, want)
		}
	}

	// Park a spinning job so Shutdown stays in the draining phase long
	// enough to observe.
	submit(t, ts, JobRequest{Arch: "ximd", Source: spinSrc, MaxCycles: 4_000_000_000})
	done := make(chan struct{})
	go func() {
		// A short budget on purpose: the spinner cannot drain, and the
		// test only needs the draining window, not a clean drain.
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := getBody(t, ts.URL+"/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			if !strings.Contains(string(body), "draining") {
				t.Fatalf("/readyz draining body = %q", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never went non-ready during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Liveness is about the process, not readiness: still 200.
	if resp, _ := getBody(t, ts.URL+"/livez"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/livez during drain: status %d", resp.StatusCode)
	}
	// The legacy health endpoint keeps its pre-split draining contract.
	if resp, body := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("/healthz during drain: status %d body %q", resp.StatusCode, body)
	}
	<-done
}

// TestFabricLease: the lease is exclusive per coordinator, renewable by
// its holder, 409 for a rival while held, and free again after expiry.
func TestFabricLease(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})

	resp, body := postJSON(t, ts.URL+"/v1/fabric/lease", LeaseRequest{Coordinator: "c-alpha", TTLMS: 150})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grant: status %d: %s", resp.StatusCode, body)
	}
	var lr LeaseResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.WorkerID == "" || lr.TTLMS != 150 {
		t.Fatalf("lease = %+v", lr)
	}
	if lr.Executors != 2 || lr.QueueCapacity != 8 {
		t.Fatalf("load report = %+v, want executors=2 queue_capacity=8", lr)
	}

	// Same holder renews freely.
	if resp, body := postJSON(t, ts.URL+"/v1/fabric/lease", LeaseRequest{Coordinator: "c-alpha", TTLMS: 150}); resp.StatusCode != http.StatusOK {
		t.Fatalf("renew: status %d: %s", resp.StatusCode, body)
	}
	// A rival is refused while the lease is live.
	if resp, body := postJSON(t, ts.URL+"/v1/fabric/lease", LeaseRequest{Coordinator: "c-beta", TTLMS: 150}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("rival during lease: status %d: %s", resp.StatusCode, body)
	}
	// ... and granted after expiry.
	time.Sleep(200 * time.Millisecond)
	var beta LeaseResponse
	resp, body = postJSON(t, ts.URL+"/v1/fabric/lease", LeaseRequest{Coordinator: "c-beta", TTLMS: 150})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rival after expiry: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &beta); err != nil {
		t.Fatal(err)
	}
	if beta.WorkerID != lr.WorkerID {
		t.Fatalf("worker id changed across leases: %q vs %q", beta.WorkerID, lr.WorkerID)
	}
}

// TestLeaseTTLClamped: absurd TTLs are clamped into [MinLeaseTTL,
// MaxLeaseTTL]; 0 selects the default.
func TestLeaseTTLClamped(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	for req, wantMS := range map[int64]int64{
		0:          int64(DefaultLeaseTTL / time.Millisecond),
		1:          int64(MinLeaseTTL / time.Millisecond),
		86_400_000: int64(MaxLeaseTTL / time.Millisecond),
	} {
		resp, body := postJSON(t, ts.URL+"/v1/fabric/lease", LeaseRequest{Coordinator: "c-x", TTLMS: req})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ttl %d: status %d: %s", req, resp.StatusCode, body)
		}
		var lr LeaseResponse
		if err := json.Unmarshal(body, &lr); err != nil {
			t.Fatal(err)
		}
		if lr.TTLMS != wantMS {
			t.Errorf("ttl %d: granted %d ms, want %d", req, lr.TTLMS, wantMS)
		}
	}
}

// TestDetachedSweep: "detach":true answers 202 with per-variant job
// ids, GET /v1/sweeps/{id} tracks them to terminal states, and the
// individual job endpoints serve the same result documents a
// synchronous sweep would have merged.
func TestDetachedSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 16})

	req := SweepRequest{
		Base:   tprocJob(),
		Seeds:  []int64{1, 2, 3},
		Detach: true,
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("detach submit: status %d: %s", resp.StatusCode, body)
	}
	var sub SweepSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if len(sub.JobIDs) != 3 || sub.ID == "" {
		t.Fatalf("submit response = %+v", sub)
	}

	var st SweepStatus
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, body := getBody(t, ts.URL+"/v1/sweeps/"+sub.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status: %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == StateDone || st.Status == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Status != StateDone || st.Done != 3 {
		t.Fatalf("sweep = %+v", st)
	}
	for i, v := range st.Variants {
		if v.JobID != sub.JobIDs[i] {
			t.Errorf("variant %d job id %q, want %q", i, v.JobID, sub.JobIDs[i])
		}
		if v.Seed != req.Seeds[i] {
			t.Errorf("variant %d seed %d, want %d (submission order)", i, v.Seed, req.Seeds[i])
		}
		if v.ExitCode == nil || *v.ExitCode != 0 {
			t.Errorf("variant %d exit = %v", i, v.ExitCode)
		}
		js, _ := waitTerminal(t, ts, v.JobID)
		if js.Result == nil || js.Result.Cycles != 6 {
			t.Errorf("variant %d result = %+v", i, js.Result)
		}
	}

	if resp, _ := getBody(t, ts.URL+"/v1/sweeps/s-999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep: status %d, want 404", resp.StatusCode)
	}
}

// TestDetachedSweepAtomicAdmission: a detached sweep that cannot fit in
// the queue is rejected whole — no partial variant set runs.
func TestDetachedSweepAtomicAdmission(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Base:   tprocJob(),
		Seeds:  []int64{1, 2, 3, 4},
		Detach: true,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	s.mgr.mu.Lock()
	n := len(s.mgr.jobs)
	s.mgr.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d job(s) admitted from a rejected batch", n)
	}
}
