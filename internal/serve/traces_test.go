package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"ximd/internal/obs"
)

// submitTraced posts a job with an X-Ximd-Trace header and returns the
// parsed 202 plus the echoed trace context.
func submitTraced(t *testing.T, url string, req JobRequest, header string) (SubmitResponse, obs.SpanContext) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", url+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if header != "" {
		hreq.Header.Set(obs.TraceHeader, header)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, err %v", resp.StatusCode, err)
	}
	sc, ok := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("202 must echo a valid %s header, got %q", obs.TraceHeader, resp.Header.Get(obs.TraceHeader))
	}
	return sr, sc
}

// A job submitted with a well-formed trace header joins that trace;
// its tree reaches job -> execute -> run (depth >= 2 below the job
// span) and the flat /spans view stays available.
func TestSubmitAdoptsTraceHeader(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	remote := obs.SpanContext{TraceID: "00112233445566aa", SpanID: "ffeeddccbbaa9988"}
	sr, sc := submitTraced(t, ts.URL, tprocJob(), obs.FormatTraceHeader(remote))
	if sc.TraceID != remote.TraceID {
		t.Fatalf("echoed trace id = %s, want adopted %s", sc.TraceID, remote.TraceID)
	}
	waitTerminal(t, ts, sr.ID)

	resp, body := getBody(t, ts.URL+"/v1/traces/"+remote.TraceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace tree: %d: %s", resp.StatusCode, body)
	}
	spans, err := obs.ParseTraceNDJSON(body)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	job, ok := byName["job"]
	if !ok {
		t.Fatalf("no job span in %v", names(spans))
	}
	if job.ParentID != remote.SpanID {
		t.Fatalf("job span parent = %s, want remote %s", job.ParentID, remote.SpanID)
	}
	if job.Attrs["job_id"] != sr.ID || job.Attrs["state"] != "done" {
		t.Fatalf("job span attrs = %v", job.Attrs)
	}
	for _, want := range []string{"queue_wait", "decode", "execute", "build", "run"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing %q span in %v", want, names(spans))
		}
	}
	// The tree endpoint computes depth: run nests under execute under job.
	var lines []struct {
		Name  string `json:"name"`
		Depth int    `json:"depth"`
	}
	for _, raw := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var l struct {
			Name  string `json:"name"`
			Depth int    `json:"depth"`
		}
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, l)
	}
	depthOf := map[string]int{}
	for _, l := range lines {
		depthOf[l.Name] = l.Depth
	}
	if depthOf["execute"] != depthOf["job"]+1 || depthOf["run"] != depthOf["execute"]+1 {
		t.Fatalf("depths wrong: %v", depthOf)
	}
}

func names(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// Absent or malformed headers are never a 400: the job runs under a
// fresh root trace.
func TestSubmitMalformedTraceHeaderStartsFreshRoot(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, hdr := range []string{"", "not-a-trace", "deadbeef"} {
		sr, sc := submitTraced(t, ts.URL, tprocJob(), hdr)
		waitTerminal(t, ts, sr.ID)
		spans, err := obs.ParseTraceNDJSON(getTraceTree(t, ts.URL, sc.TraceID))
		if err != nil {
			t.Fatal(err)
		}
		tree := obs.AssembleTree(spans)
		if tree[0].Name != "job" || tree[0].Depth != 0 || tree[0].ParentID != "" {
			t.Fatalf("header %q: want job as fresh root, got %+v", hdr, tree[0])
		}
	}
}

func getTraceTree(t *testing.T, base, traceID string) []byte {
	t.Helper()
	resp, body := getBody(t, base+"/v1/traces/"+traceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: %d: %s", traceID, resp.StatusCode, body)
	}
	return body
}

// The trace list filters by job id, and the flat byte-compatible
// /v1/jobs/{id}/spans view coexists with the tree.
func TestTraceListFilterByJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	a, scA := submitTraced(t, ts.URL, tprocJob(), "")
	b, _ := submitTraced(t, ts.URL, tprocJob(), "")
	waitTerminal(t, ts, a.ID)
	waitTerminal(t, ts, b.ID)

	resp, body := getBody(t, ts.URL+"/v1/traces?job="+a.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces list: %d: %s", resp.StatusCode, body)
	}
	var list struct {
		Count  int                `json:"count"`
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 1 || list.Traces[0].TraceID != scA.TraceID {
		t.Fatalf("job filter: %s", body)
	}
	if len(list.Traces[0].JobIDs) != 1 || list.Traces[0].JobIDs[0] != a.ID {
		t.Fatalf("summary job ids = %v, want [%s]", list.Traces[0].JobIDs, a.ID)
	}
	// Flat view still serves exactly its 4 frozen lines.
	resp, body = getBody(t, ts.URL+"/v1/jobs/"+a.ID+"/spans")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flat spans: %d", resp.StatusCode)
	}
	if n := len(bytes.Split(bytes.TrimSpace(body), []byte("\n"))); n != 4 {
		t.Fatalf("flat span view has %d lines, want 4", n)
	}
}

// A detached sweep's jobs nest under the sweep root span, and the list
// endpoint filters by sweep id.
func TestDetachedSweepTraceTree(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sweeps", map[string]any{
		"base":   tprocJob(),
		"seeds":  []int64{1, 2},
		"detach": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("detached sweep: %d: %s", resp.StatusCode, body)
	}
	sc, ok := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("detached sweep 202 must echo %s", obs.TraceHeader)
	}
	var sub SweepSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	for _, id := range sub.JobIDs {
		waitTerminal(t, ts, id)
	}
	spans, err := obs.ParseTraceNDJSON(getTraceTree(t, ts.URL, sc.TraceID))
	if err != nil {
		t.Fatal(err)
	}
	tree := obs.AssembleTree(spans)
	if tree[0].Name != "sweep" || tree[0].Attrs["sweep_id"] != sub.ID {
		t.Fatalf("tree root = %+v, want sweep span with sweep_id=%s", tree[0], sub.ID)
	}
	jobs := 0
	for _, l := range tree {
		if l.Name == "job" {
			jobs++
			if l.Depth != 1 {
				t.Fatalf("job span depth = %d, want 1 (child of sweep)", l.Depth)
			}
			if l.Attrs["sweep_id"] != sub.ID {
				t.Fatalf("job span attrs = %v, want sweep_id", l.Attrs)
			}
		}
	}
	if jobs != 2 {
		t.Fatalf("tree has %d job spans, want 2", jobs)
	}

	resp, body = getBody(t, ts.URL+"/v1/traces?sweep="+sub.ID)
	var list struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(body, &list); err != nil || resp.StatusCode != 200 || list.Count != 1 {
		t.Fatalf("sweep filter: status %d err %v body %s", resp.StatusCode, err, body)
	}
}
