package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ximd/internal/archive"
	"ximd/internal/ckpt"
	"ximd/internal/hostcfg"
	"ximd/internal/obs"
	"ximd/internal/runner"
	"ximd/internal/sweep"
	"ximd/internal/trace"
)

// State is a job's lifecycle position. Transitions are strictly
// queued → running → done|failed; a terminal job never changes again.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Errors the submission path maps to HTTP statuses.
var (
	// ErrQueueFull is the backpressure signal: the bounded submission
	// queue is at capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: submission queue full")
	// ErrShuttingDown rejects submissions during graceful shutdown
	// (HTTP 503).
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrUnknownJob reports a job id that was never issued (HTTP 404).
	ErrUnknownJob = errors.New("serve: unknown job")
)

// job is the manager's record of one submitted simulation.
type job struct {
	id       string
	prog     *runner.Program
	progSHA  string
	cacheHit bool
	spec     runner.Spec
	peeks    []hostcfg.MemPeek
	trace    bool
	profile  bool
	flight   int
	// canonInject is the canonical form of spec.Inject (the archive
	// key's inject axis), fixed at submit.
	canonInject string
	decodeDur   time.Duration
	// req is the validated request the job was built from, kept for the
	// write-ahead journal: an "accepted" record carries it verbatim so a
	// restarted process can rebuild this job. nil when journaling is off.
	req *JobRequest
	// ckptKey binds this job's durable checkpoints to its identity (a
	// digest of the canonical request JSON). A checkpoint on disk whose
	// Key differs belongs to a different run and must not be restored.
	ckptKey string
	// ckpt is the recovered checkpoint to resume from, set only on jobs
	// rebuilt by crash recovery that had a valid checkpoint on disk.
	ckpt *ckpt.Checkpoint

	// Distributed-tracing spans for this job's lifecycle. span is the
	// job root (adopted from the request's X-Ximd-Trace header, or a
	// fresh root); qwSpan and execSpan are its queue_wait and execute
	// children. All nil-safe — a job built without a span traces
	// nothing. Distinct from the frozen SpanLine breakdown below, which
	// is the byte-compatible flat view.
	span     *obs.Span
	qwSpan   *obs.Span
	execSpan *obs.Span

	// Mutated under the manager's lock only. The time.Time fields keep
	// their monotonic reading (they are only ever subtracted, never
	// serialized), so span durations are immune to wall-clock steps.
	submitted time.Time
	started   time.Time
	state     State
	result    runner.Result
	err       error
	doc       *runner.ResultDoc
	recs      []trace.Record
	flightRec []trace.Record
	spans     []SpanLine
	queuedMS  float64
	runMS     float64
}

// manager owns the job table, the bounded submission queue, the worker
// pool, and the decoded-program cache. Per-job execution is layered on
// internal/sweep: each job runs as a single-task sweep with the
// configured TaskTimeout, inheriting sweep's panic recovery and
// deadline semantics.
type manager struct {
	queueDepth int
	workers    int
	jobTimeout time.Duration

	mu     sync.Mutex
	jobs   map[string]*job
	nextID uint64
	queue  chan *job
	closed bool
	cache  *progCache

	// sweeps tracks detached sweep batches by id ("s-N"). The records
	// are views over the job table — aggregate status is derived from
	// the member jobs' states at read time, so there is no separate
	// lifecycle to keep consistent. Sweep ids are volatile: the member
	// jobs are individually journaled and survive a crash under their
	// original ids, the grouping does not.
	sweeps      map[string]*sweepRec
	nextSweepID uint64

	rootCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// met is the per-server metrics registry, surfaced raw at /metrics
	// and through the legacy /varz view.
	met *serveMetrics

	// arch is the durable run archive (nil = disabled); terminal jobs
	// and sweep tasks are appended at completion.
	arch *archive.Archive

	// Durable job state (nil = disabled): jnl is the write-ahead job
	// journal, ckpts the per-job checkpoint store, ckptEvery the
	// snapshot interval in cycles. Set before the workers start and
	// never reassigned.
	jnl       *journal
	ckpts     *ckpt.Store
	ckptEvery uint64

	// Distributed tracing: tr mints lifecycle spans into spanStore,
	// which GET /v1/traces serves. Both are always on — the store is a
	// bounded ring and span work happens only at phase boundaries.
	tr        *obs.Tracer
	spanStore *obs.SpanStore

	// now is the clock for job timestamps, swappable in tests. It is
	// only read under mu; the time.Time values it returns are only ever
	// subtracted, so with the real clock span durations ride the
	// monotonic reading and are immune to wall-clock steps. Durations
	// are additionally clamped non-negative (see ms) so a clock that
	// does step — or a fake without a monotonic reading — can never
	// produce negative queued_ms/run_ms.
	now func() time.Time
}

func newManager(opts Options) *manager {
	m := &manager{
		queueDepth: opts.QueueDepth,
		workers:    opts.Workers,
		jobTimeout: opts.JobTimeout,
		jobs:       make(map[string]*job),
		sweeps:     make(map[string]*sweepRec),
		queue:      make(chan *job, opts.QueueDepth),
		met:        newServeMetrics(),
		arch:       opts.Archive,
		now:        time.Now,
	}
	m.spanStore = obs.NewSpanStore(0)
	m.tr = obs.NewTracer("ximdd", m.spanStore)
	m.met.queueCapacity.Set(int64(opts.QueueDepth))
	m.met.workers.Set(int64(opts.Workers))
	m.met.reg.GaugeFunc("ximdd_queue_depth", "Jobs currently buffered in the submission queue channel.",
		func() float64 { return float64(len(m.queue)) })
	m.met.reg.GaugeFunc("ximdd_cache_entries", "Decoded programs currently cached.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.cache.len())
		})
	m.cache = newProgCache(opts.CacheEntries, m.met.cacheHits, m.met.cacheMisses)
	if m.arch != nil {
		m.met.reg.GaugeFunc("ximdd_archive_records", "Records indexed in the durable run archive.",
			func() float64 { return float64(m.arch.Len()) })
	}
	m.rootCtx, m.cancel = context.WithCancel(context.Background())
	return m
}

// start launches the worker pool. Separate from newManager so the
// caller can attach durable job state (journal, checkpoint store,
// recovered jobs) before any worker can observe it.
func (m *manager) start() {
	m.wg.Add(m.workers)
	for i := 0; i < m.workers; i++ {
		go m.worker()
	}
}

// loadProgram resolves the submitted program bytes through the
// decoded-program cache: a hit reuses the shared pre-decoded program,
// a miss pays the assemble+validate+predecode cost once and populates
// the cache. Returns the program, its content hash, and whether this
// was a hit.
func (m *manager) loadProgram(arch runner.Arch, source []byte) (*runner.Program, string, bool, error) {
	key := programKey(arch, source)
	m.mu.Lock()
	prog, ok := m.cache.get(key)
	m.mu.Unlock()
	if ok {
		return prog, key, true, nil
	}
	prog, err := runner.Load(arch, source)
	if err != nil {
		return nil, key, false, err
	}
	m.mu.Lock()
	m.cache.put(key, prog)
	m.mu.Unlock()
	return prog, key, false, nil
}

// submit enqueues a prepared job. It fails with ErrShuttingDown after
// Shutdown began and ErrQueueFull when the bounded queue is at
// capacity — the caller maps those to 503 and 429. With durable job
// state enabled, the "accepted" journal record is fsynced before the
// job becomes visible anywhere: a 202 response is a promise the job
// survives kill -9, so the write-ahead append has to precede it. The
// capacity check moves ahead of the append (only this function sends
// on the queue, and it holds the lock, so the later send cannot
// block): a 429'd submission must not leave a journaled ghost for
// recovery to replay.
func (m *manager) submit(j *job) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.met.rejectedClosed.Inc()
		return ErrShuttingDown
	}
	if len(m.queue) == cap(m.queue) {
		m.met.rejectedFull.Inc()
		return ErrQueueFull
	}
	m.nextID++
	j.id = "j-" + strconv.FormatUint(m.nextID, 10)
	if m.jnl != nil {
		if _, err := m.jnl.append(journalRecord{T: journalAccepted, ID: j.id, Req: j.req}); err != nil {
			// The durability promise cannot be kept; reject rather than
			// accept a job a crash would silently lose.
			return fmt.Errorf("serve: write-ahead journal: %w", err)
		}
	}
	j.state = StateQueued
	j.submitted = m.now()
	// Span setup happens before the channel send: once the job is on the
	// queue a worker may race to setRunning, which finishes qwSpan.
	j.span.SetAttr("job_id", j.id)
	j.qwSpan = j.span.Child("queue_wait")
	m.queue <- j
	m.jobs[j.id] = j
	m.met.jobsTotal.Inc()
	m.met.queued.Add(1)
	return nil
}

// sweepRec groups the jobs of one detached sweep, in submission order.
type sweepRec struct {
	id       string
	progSHA  string
	cacheHit bool
	variants []Variant
	jobs     []*job
}

// submitSweep admits a detached sweep's jobs atomically: the whole
// batch fits the queue or none of it is accepted (ErrQueueFull). Each
// job goes through the same acceptance protocol as a single submit —
// id assignment, write-ahead journaling, enqueue — under one critical
// section, and the sweep record is registered with the batch so a
// client can never observe a sweep id whose jobs are missing.
func (m *manager) submitSweep(jobs []*job, rec *sweepRec) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.met.rejectedClosed.Inc()
		return ErrShuttingDown
	}
	if len(m.queue)+len(jobs) > cap(m.queue) {
		m.met.rejectedFull.Inc()
		return ErrQueueFull
	}
	for i, j := range jobs {
		m.nextID++
		j.id = "j-" + strconv.FormatUint(m.nextID, 10)
		if m.jnl != nil {
			if _, err := m.jnl.append(journalRecord{T: journalAccepted, ID: j.id, Req: j.req}); err != nil {
				// The batch's earlier "accepted" records are already
				// durable but their jobs were not enqueued; journal them
				// terminal so a crash-restart does not replay half a sweep
				// the client was told failed.
				for _, prev := range jobs[:i] {
					_, _ = m.jnl.append(journalRecord{T: journalTerminal, ID: prev.id})
				}
				return fmt.Errorf("serve: write-ahead journal: %w", err)
			}
		}
	}
	// The sweep id is allocated before the enqueue loop so every member
	// job's span can carry it — a worker may finish a job (and freeze
	// its spans) the moment it hits the queue.
	m.nextSweepID++
	rec.id = "s-" + strconv.FormatUint(m.nextSweepID, 10)
	for _, j := range jobs {
		j.state = StateQueued
		j.submitted = m.now()
		j.span.SetAttr("job_id", j.id)
		j.span.SetAttr("sweep_id", rec.id)
		j.qwSpan = j.span.Child("queue_wait")
		m.queue <- j
		m.jobs[j.id] = j
		m.met.jobsTotal.Inc()
		m.met.queued.Add(1)
	}
	m.sweeps[rec.id] = rec
	return nil
}

// sweepStatus derives a detached sweep's aggregate view from its
// member jobs' current states.
func (m *manager) sweepStatus(id string) (*SweepStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.sweeps[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown sweep: %s", id)
	}
	st := &SweepStatus{
		ID:            rec.id,
		ProgramSHA256: rec.progSHA,
		CacheHit:      rec.cacheHit,
	}
	for i, j := range rec.jobs {
		vs := SweepVariantStatus{
			Name:   rec.variants[i].Name,
			Seed:   rec.variants[i].Seed,
			Inject: rec.variants[i].Inject,
			JobID:  j.id,
			Status: j.state,
		}
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		}
		if j.state == StateDone || j.state == StateFailed {
			code := runner.ExitCode(j.err)
			vs.ExitCode = &code
			if j.err != nil {
				vs.Error = j.err.Error()
			}
		}
		st.Variants = append(st.Variants, vs)
	}
	switch {
	case st.Done == len(rec.jobs):
		st.Status = StateDone
	case st.Done+st.Failed == len(rec.jobs):
		st.Status = StateFailed
	case st.Queued == len(rec.jobs):
		st.Status = StateQueued
	default:
		st.Status = StateRunning
	}
	return st, nil
}

// requeue re-enqueues one crash-recovered job under its original id —
// clients polling that id across the restart keep getting answers. No
// journal append: the job's "accepted" record is exactly what replay
// just read. The caller sized the queue to hold the full recovered
// set, so the send cannot block.
func (m *manager) requeue(j *job, id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.id = id
	j.state = StateQueued
	j.submitted = m.now()
	j.span.SetAttr("job_id", j.id)
	j.qwSpan = j.span.Child("queue_wait")
	m.queue <- j
	m.jobs[j.id] = j
	m.met.jobsTotal.Inc()
	m.met.queued.Add(1)
}

// worker drains the queue until it is closed, executing each job as a
// single-task sweep so per-job deadlines (TaskTimeout) and panic
// recovery come from the sweep engine.
func (m *manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.setRunning(j)
		if m.jnl != nil {
			// Advisory: a lost "started" record only costs recovery the
			// requeued-vs-rerun distinction, never correctness, so an
			// append failure does not block the run.
			_, _ = m.jnl.append(journalRecord{T: journalStarted, ID: j.id})
		}
		ropts := runner.Options{
			Trace:        j.trace,
			FlightCycles: j.flight,
			Span:         j.execSpan,
		}
		if m.ckpts != nil && !j.trace {
			// Traced jobs never checkpoint: a resumed run cannot
			// reconstruct the pre-crash trace records, so recovery reruns
			// them cold instead (deterministic, so the client cannot tell).
			ropts.CheckpointEvery = m.ckptEvery
			ropts.Checkpoint = func(c *ckpt.Checkpoint) { m.saveCheckpoint(j, c) }
		}
		var res runner.Result
		task := sweep.Task{Name: j.id, Run: func(ctx context.Context) (sweep.Outcome, error) {
			var err error
			if j.ckpt != nil {
				res, err = runner.Resume(ctx, j.prog, j.spec, ropts, j.ckpt)
				var ue *runner.UsageError
				if errors.As(err, &ue) {
					// The checkpoint did not fit the rebuilt machine
					// (format drift the Key check could not see). The
					// determinism contract makes rerunning from cycle 0
					// indistinguishable, minus the saved work.
					m.met.jobsColdRun.Inc()
					j.execSpan.SetAttr("cold_rerun", "checkpoint_rejected")
					res, err = runner.Run(ctx, j.prog, j.spec, ropts)
				}
			} else {
				res, err = runner.Run(ctx, j.prog, j.spec, ropts)
			}
			if err != nil {
				return sweep.Outcome{}, err
			}
			return sweep.Outcome{Cycles: res.Cycles, Stats: res.Stats}, nil
		}}
		results, _ := sweep.Run(m.rootCtx, []sweep.Task{task}, sweep.Options{
			Workers:     1,
			TaskTimeout: m.jobTimeout,
		})
		m.finish(j, res, results[0].Err, results[0].Duration)
	}
}

// saveCheckpoint persists one periodic snapshot, stamping the job's
// binding key first. Failures degrade resumability, never the run.
func (m *manager) saveCheckpoint(j *job, c *ckpt.Checkpoint) {
	c.Key = j.ckptKey
	start := time.Now()
	n, err := m.ckpts.Save(j.id, c)
	m.met.ckptSaveSecs.Observe(time.Since(start).Seconds())
	if err != nil {
		m.met.ckptErrs.Inc()
		return
	}
	m.met.ckptWrites.Inc()
	m.met.ckptBytes.Add(uint64(n))
}

func (m *manager) setRunning(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.qwSpan.Finish()
	j.execSpan = j.span.Child("execute")
	j.state = StateRunning
	j.started = m.now()
	wait := j.started.Sub(j.submitted)
	if wait < 0 {
		wait = 0
	}
	j.queuedMS = ms(wait)
	m.met.queueWait.Observe(wait.Seconds())
	m.met.queued.Add(-1)
	m.met.running.Add(1)
}

// ms converts a duration to fractional milliseconds for span docs,
// clamping negatives to zero: a wall-clock step between two reads of a
// non-monotonic clock must never surface as a negative queued_ms or
// run_ms.
func ms(d time.Duration) float64 {
	if d < 0 {
		return 0
	}
	return float64(d) / float64(time.Millisecond)
}

// finish freezes a job's result document and span breakdown (built
// once, so repeated GETs serve identical bytes), archives the outcome,
// and only then publishes the terminal state. The ordering is the
// point: a client that observes done/failed may rely on the durable
// archive (and its /metrics counters) already containing the run — the
// status flip is the last thing that happens, never concurrent with
// the fsync'd append. Frozen fields stay invisible to pollers in the
// meantime because snapshot/traceRecords/spanLines gate on the state.
func (m *manager) finish(j *job, res runner.Result, err error, execDur time.Duration) {
	m.mu.Lock()
	j.result = res
	j.err = err
	j.recs = res.Trace
	j.flightRec = res.Flight
	j.runMS = ms(execDur)
	total := m.now().Sub(j.submitted)
	if total < 0 {
		total = 0
	}
	detail := "cache_miss"
	if j.cacheHit {
		detail = "cache_hit"
	}
	j.spans = []SpanLine{
		{Span: "queue_wait", Ms: j.queuedMS},
		{Span: "decode", Ms: ms(j.decodeDur), Detail: detail},
		{Span: "execute", Ms: j.runMS},
		{Span: "total", Ms: ms(total)},
	}
	if err == nil {
		doc := runner.NewResultDoc(res, j.peeks, j.profile)
		j.doc = &doc
	}
	m.mu.Unlock()

	j.execSpan.Finish()
	if m.arch != nil {
		as := j.span.Child("archive_append")
		m.archiveJob(j)
		as.Finish()
	} else {
		m.archiveJob(j)
	}

	// Freeze the job's trace-tree root before the terminal flip, so a
	// client that observes done/failed can immediately fetch the full
	// tree from /v1/traces/{id}.
	if err != nil {
		j.span.SetAttr("state", string(StateFailed))
		j.span.SetAttr("error", err.Error())
	} else {
		j.span.SetAttr("state", string(StateDone))
	}
	j.span.SetAttrInt("cycles", res.Cycles)
	j.span.Finish()

	// Durable terminal protocol, still before the state flip: journal
	// the terminal record, then delete the checkpoint. A crash between
	// the two replays the job as terminal (correct — the archive append
	// above already happened) and recovery sweeps the orphaned
	// checkpoint file. The reverse order could journal nothing and
	// delete the checkpoint, downgrading a resumable job to a cold
	// rerun — safe too, but strictly worse.
	if m.jnl != nil {
		if wantCompact, err := m.jnl.append(journalRecord{T: journalTerminal, ID: j.id}); err == nil && wantCompact {
			_ = m.jnl.compact(m.pendingForJournal())
		}
	}
	if m.ckpts != nil {
		if err := m.ckpts.Delete(j.id); err != nil {
			m.met.ckptErrs.Inc()
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.met.running.Add(-1)
	m.met.cyclesSimmed.Add(res.Cycles)
	m.met.execute.Observe(execDur.Seconds())
	m.met.total.Observe(total.Seconds())
	if err != nil {
		j.state = StateFailed
		m.met.jobsFailed.Inc()
		return
	}
	j.state = StateDone
	m.met.jobsDone.Inc()
}

// archiveJob appends a terminal job's outcome to the durable run
// archive. No-op when archiving is disabled; an append failure is
// counted in metrics but never alters the job's outcome — archiving is
// an observer of the run, not a participant.
func (m *manager) archiveJob(j *job) {
	if m.arch == nil {
		return
	}
	m.mu.Lock()
	rec := archive.Record{
		Key: archive.Key{
			ProgramSHA256: j.progSHA,
			Arch:          string(j.prog.Arch()),
			Seed:          j.spec.Seed,
			Inject:        j.canonInject,
		},
		ExitCode: runner.ExitCode(j.err),
		UnixMS:   m.now().UnixMilli(),
	}
	if j.err != nil {
		rec.Error = j.err.Error()
	}
	if j.doc != nil {
		// Archive the full document with the stall-attribution profile
		// attached even when the client did not ask for one: the
		// baseline should carry everything the gate can compare.
		doc := runner.NewResultDoc(j.result, j.peeks, true)
		rec.Result = &doc
	}
	for _, sp := range j.spans {
		rec.Spans = append(rec.Spans, archive.Span{Name: sp.Span, Ms: sp.Ms, Detail: sp.Detail})
	}
	m.mu.Unlock()
	m.appendArchive(rec)
}

// wallMS reads the manager's clock (under the lock, per its contract)
// as a unix-milliseconds archive timestamp.
func (m *manager) wallMS() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now().UnixMilli()
}

// appendArchive writes one record to the archive, tracking outcome
// metrics. The caller must have checked m.arch != nil.
func (m *manager) appendArchive(rec archive.Record) {
	start := time.Now()
	err := m.arch.Append(rec)
	m.met.archiveAppendSecs.Observe(time.Since(start).Seconds())
	if err != nil {
		m.met.archiveAppendErrs.Inc()
		return
	}
	m.met.archiveAppends.Inc()
}

// get returns the job record for id.
func (m *manager) get(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j, nil
}

// statusView is the lock-consistent copy of everything a status
// response needs. The duration fields are only set once the job is
// terminal (they are frozen in finish, so repeated polls serve
// identical bytes); flight is only set for failed jobs — the flight
// recorder is a postmortem artifact, and a successful run's window is
// dropped.
type statusView struct {
	state    State
	doc      *runner.ResultDoc
	err      error
	queuedMS *float64
	runMS    *float64
	flight   []trace.Record
}

// snapshot copies the fields a status response needs under the lock.
func (m *manager) snapshot(j *job) statusView {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := statusView{state: j.state}
	if j.state == StateDone || j.state == StateFailed {
		v.doc, v.err = j.doc, j.err
		q, r := j.queuedMS, j.runMS
		v.queuedMS, v.runMS = &q, &r
	}
	if j.state == StateFailed {
		v.flight = j.flightRec
	}
	return v
}

// traceRecords returns the captured trace once a job is terminal.
func (m *manager) traceRecords(j *job) (State, []trace.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.state, j.recs
}

// spanLines returns the frozen span breakdown once a job is terminal.
func (m *manager) spanLines(j *job) (State, []SpanLine) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.state, j.spans
}

// pendingForJournal snapshots the live (non-terminal) job set in id
// order for journal compaction. A job racing from queued to running
// around this snapshot may lose its "started" record to the rewrite;
// recovery tolerates that — it probes the checkpoint store for every
// pending job, started or not.
func (m *manager) pendingForJournal() []replayJob {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []replayJob
	for _, j := range m.jobs {
		if (j.state == StateQueued || j.state == StateRunning) && j.req != nil {
			out = append(out, replayJob{id: j.id, req: *j.req, started: j.state == StateRunning})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		na, _ := strconv.ParseUint(strings.TrimPrefix(out[a].id, "j-"), 10, 64)
		nb, _ := strconv.ParseUint(strings.TrimPrefix(out[b].id, "j-"), 10, 64)
		return na < nb
	})
	return out
}

// shuttingDown reports whether Shutdown has begun.
func (m *manager) shuttingDown() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Shutdown drains gracefully: new submissions are rejected immediately,
// queued and running jobs are completed, and the call returns when the
// workers are idle. If ctx expires first, the in-flight runs are
// cancelled (they abort at their next cooperative check and are marked
// failed with the cancellation error — never dropped, never rerun) and
// the context error is returned.
func (m *manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
		m.cancel()
	case <-ctx.Done():
		m.cancel()
		<-idle
		err = ctx.Err()
	}
	// Workers are idle: release the durable-state handles. Everything
	// they guarded is already fsynced.
	if m.jnl != nil {
		m.jnl.close()
	}
	if m.ckpts != nil {
		m.ckpts.Close()
	}
	return err
}
