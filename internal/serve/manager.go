package serve

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"strconv"
	"sync"
	"time"

	"ximd/internal/hostcfg"
	"ximd/internal/runner"
	"ximd/internal/sweep"
	"ximd/internal/trace"
)

// State is a job's lifecycle position. Transitions are strictly
// queued → running → done|failed; a terminal job never changes again.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Errors the submission path maps to HTTP statuses.
var (
	// ErrQueueFull is the backpressure signal: the bounded submission
	// queue is at capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: submission queue full")
	// ErrShuttingDown rejects submissions during graceful shutdown
	// (HTTP 503).
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrUnknownJob reports a job id that was never issued (HTTP 404).
	ErrUnknownJob = errors.New("serve: unknown job")
)

// job is the manager's record of one submitted simulation.
type job struct {
	id       string
	prog     *runner.Program
	progSHA  string
	cacheHit bool
	spec     runner.Spec
	peeks    []hostcfg.MemPeek
	trace    bool

	// Mutated under the manager's lock only.
	state  State
	result runner.Result
	err    error
	doc    *runner.ResultDoc
	recs   []trace.Record
}

// manager owns the job table, the bounded submission queue, the worker
// pool, and the decoded-program cache. Per-job execution is layered on
// internal/sweep: each job runs as a single-task sweep with the
// configured TaskTimeout, inheriting sweep's panic recovery and
// deadline semantics.
type manager struct {
	queueDepth int
	workers    int
	jobTimeout time.Duration

	mu     sync.Mutex
	jobs   map[string]*job
	nextID uint64
	queue  chan *job
	closed bool
	cache  *progCache

	rootCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// Metrics, all surfaced through /varz.
	vars           *expvar.Map
	queued         *expvar.Int
	running        *expvar.Int
	done           *expvar.Int
	failed         *expvar.Int
	cacheHits      *expvar.Int
	cacheMisses    *expvar.Int
	cyclesSimmed   *expvar.Int
	sweepsRun      *expvar.Int
	sweepTasks     *expvar.Int
	rejectedFull   *expvar.Int
	rejectedClosed *expvar.Int
}

func newManager(opts Options) *manager {
	m := &manager{
		queueDepth: opts.QueueDepth,
		workers:    opts.Workers,
		jobTimeout: opts.JobTimeout,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, opts.QueueDepth),
		vars:       new(expvar.Map),

		queued:         new(expvar.Int),
		running:        new(expvar.Int),
		done:           new(expvar.Int),
		failed:         new(expvar.Int),
		cacheHits:      new(expvar.Int),
		cacheMisses:    new(expvar.Int),
		cyclesSimmed:   new(expvar.Int),
		sweepsRun:      new(expvar.Int),
		sweepTasks:     new(expvar.Int),
		rejectedFull:   new(expvar.Int),
		rejectedClosed: new(expvar.Int),
	}
	m.cache = newProgCache(opts.CacheEntries, m.cacheHits, m.cacheMisses)
	m.rootCtx, m.cancel = context.WithCancel(context.Background())

	m.vars.Set("jobs_queued", m.queued)
	m.vars.Set("jobs_running", m.running)
	m.vars.Set("jobs_done", m.done)
	m.vars.Set("jobs_failed", m.failed)
	m.vars.Set("cache_hits", m.cacheHits)
	m.vars.Set("cache_misses", m.cacheMisses)
	m.vars.Set("cycles_simulated", m.cyclesSimmed)
	m.vars.Set("sweeps_run", m.sweepsRun)
	m.vars.Set("sweep_tasks", m.sweepTasks)
	m.vars.Set("rejected_queue_full", m.rejectedFull)
	m.vars.Set("rejected_shutting_down", m.rejectedClosed)
	m.vars.Set("queue_capacity", intVar(int64(opts.QueueDepth)))
	m.vars.Set("workers", intVar(int64(m.workers)))
	m.vars.Set("queue_depth", expvar.Func(func() any { return len(m.queue) }))
	m.vars.Set("cache_entries", expvar.Func(func() any {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.cache.len()
	}))

	m.wg.Add(m.workers)
	for i := 0; i < m.workers; i++ {
		go m.worker()
	}
	return m
}

func intVar(v int64) *expvar.Int {
	i := new(expvar.Int)
	i.Set(v)
	return i
}

// loadProgram resolves the submitted program bytes through the
// decoded-program cache: a hit reuses the shared pre-decoded program,
// a miss pays the assemble+validate+predecode cost once and populates
// the cache. Returns the program, its content hash, and whether this
// was a hit.
func (m *manager) loadProgram(arch runner.Arch, source []byte) (*runner.Program, string, bool, error) {
	key := programKey(arch, source)
	m.mu.Lock()
	prog, ok := m.cache.get(key)
	m.mu.Unlock()
	if ok {
		return prog, key, true, nil
	}
	prog, err := runner.Load(arch, source)
	if err != nil {
		return nil, key, false, err
	}
	m.mu.Lock()
	m.cache.put(key, prog)
	m.mu.Unlock()
	return prog, key, false, nil
}

// submit enqueues a prepared job. It fails with ErrShuttingDown after
// Shutdown began and ErrQueueFull when the bounded queue is at
// capacity — the caller maps those to 503 and 429.
func (m *manager) submit(j *job) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.rejectedClosed.Add(1)
		return ErrShuttingDown
	}
	m.nextID++
	j.id = "j-" + strconv.FormatUint(m.nextID, 10)
	j.state = StateQueued
	select {
	case m.queue <- j:
	default:
		m.rejectedFull.Add(1)
		return ErrQueueFull
	}
	m.jobs[j.id] = j
	m.queued.Add(1)
	return nil
}

// worker drains the queue until it is closed, executing each job as a
// single-task sweep so per-job deadlines (TaskTimeout) and panic
// recovery come from the sweep engine.
func (m *manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.setRunning(j)
		var res runner.Result
		task := sweep.Task{Name: j.id, Run: func(ctx context.Context) (sweep.Outcome, error) {
			var err error
			res, err = runner.Run(ctx, j.prog, j.spec, runner.Options{Trace: j.trace})
			if err != nil {
				return sweep.Outcome{}, err
			}
			return sweep.Outcome{Cycles: res.Cycles, Stats: res.Stats}, nil
		}}
		results, _ := sweep.Run(m.rootCtx, []sweep.Task{task}, sweep.Options{
			Workers:     1,
			TaskTimeout: m.jobTimeout,
		})
		m.finish(j, res, results[0].Err)
	}
}

func (m *manager) setRunning(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.state = StateRunning
	m.queued.Add(-1)
	m.running.Add(1)
}

// finish moves a job to its terminal state and freezes its result
// document (built once, so repeated GETs serve identical bytes).
func (m *manager) finish(j *job, res runner.Result, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.result = res
	j.err = err
	j.recs = res.Trace
	m.running.Add(-1)
	m.cyclesSimmed.Add(int64(res.Cycles))
	if err != nil {
		j.state = StateFailed
		m.failed.Add(1)
		return
	}
	doc := runner.NewResultDoc(res, j.peeks)
	j.doc = &doc
	j.state = StateDone
	m.done.Add(1)
}

// get returns the job record for id.
func (m *manager) get(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j, nil
}

// snapshot copies the fields a status response needs under the lock.
func (m *manager) snapshot(j *job) (state State, doc *runner.ResultDoc, jerr error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.state, j.doc, j.err
}

// traceRecords returns the captured trace once a job is terminal.
func (m *manager) traceRecords(j *job) (State, []trace.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.state, j.recs
}

// shuttingDown reports whether Shutdown has begun.
func (m *manager) shuttingDown() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Shutdown drains gracefully: new submissions are rejected immediately,
// queued and running jobs are completed, and the call returns when the
// workers are idle. If ctx expires first, the in-flight runs are
// cancelled (they abort at their next cooperative check and are marked
// failed with the cancellation error — never dropped, never rerun) and
// the context error is returned.
func (m *manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		m.cancel()
		return nil
	case <-ctx.Done():
		m.cancel()
		<-idle
		return ctx.Err()
	}
}
