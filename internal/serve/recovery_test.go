package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"ximd/internal/ckpt"
	"ximd/internal/runner"
)

// countdownSrc runs long enough (~6000 cycles) to accumulate several
// checkpoints at a small interval, then halts with a memory-visible
// result at 300.
const countdownSrc = `
.fus 1
.fu 0
        iadd #2000, #0, r1
loop:   isub r1, #1, r1
        gt r1, #0
        nop => if cc0 loop fin
fin:    store r1, #300
        nop => halt
`

func countdownJob() JobRequest {
	return JobRequest{
		Arch:      "ximd",
		Source:    countdownSrc,
		Seed:      7,
		MaxCycles: 50_000,
		Peeks:     []string{"300:2"},
		Profile:   true,
	}
}

// referenceDoc runs req on a fresh volatile server and returns its raw
// result document: the byte-identity baseline for recovered jobs.
func referenceDoc(t *testing.T, req JobRequest) string {
	t.Helper()
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	sr := submit(t, ts, req)
	st, body := waitTerminal(t, ts, sr.ID)
	if st.Status != StateDone {
		t.Fatalf("reference job %s: %s (%s)", sr.ID, st.Status, st.Error)
	}
	return string(resultField(t, body))
}

// makeCheckpoint runs the request's program with a checkpoint sink and
// returns a mid-run checkpoint, round-tripped through the wire encoding
// exactly as a crash-restart would read it.
func makeCheckpoint(t *testing.T, req JobRequest) *ckpt.Checkpoint {
	t.Helper()
	prog, err := runner.Load(runner.ArchXIMD, []byte(req.Source))
	if err != nil {
		t.Fatal(err)
	}
	spec := runner.Spec{MaxCycles: req.MaxCycles, Seed: req.Seed, Inject: req.Inject}
	var frames [][]byte
	opts := runner.Options{
		CheckpointEvery: 256,
		Checkpoint: func(c *ckpt.Checkpoint) {
			p, err := c.Encode()
			if err != nil {
				t.Errorf("encode checkpoint: %v", err)
				return
			}
			frames = append(frames, p)
		},
	}
	if _, err := runner.Run(t.Context(), prog, spec, opts); err != nil {
		t.Fatalf("checkpoint source run: %v", err)
	}
	if len(frames) < 2 {
		t.Fatalf("expected several checkpoints, got %d", len(frames))
	}
	c, err := ckpt.Decode(frames[len(frames)/2])
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSubmitJournalsBefore202 holds the WAL ordering: once a submission
// is acknowledged its accepted record (with the full request) is on
// disk, and a terminal job leaves a terminal record and no checkpoint
// file.
func TestSubmitJournalsBefore202(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, StateDir: dir})
	req := tprocJob()
	sr := submit(t, ts, req)

	// The 202 has been received: the accepted record must already be
	// durable, whatever state the job is in now.
	data, err := os.ReadFile(filepath.Join(dir, "jobs.log"))
	if err != nil {
		t.Fatal(err)
	}
	payloads, _, _ := ckpt.ScanFrames(data)
	foundAccepted := false
	for _, p := range payloads {
		var rec journalRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			t.Fatalf("journal frame: %v: %s", err, p)
		}
		if rec.T == journalAccepted && rec.ID == sr.ID {
			foundAccepted = true
			if rec.Req == nil || rec.Req.Source != req.Source {
				t.Fatalf("accepted record does not carry the request: %+v", rec.Req)
			}
		}
	}
	if !foundAccepted {
		t.Fatalf("no accepted record for %s in journal after 202", sr.ID)
	}

	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateDone {
		t.Fatalf("job: %s (%s)", st.Status, st.Error)
	}
	data, err = os.ReadFile(filepath.Join(dir, "jobs.log"))
	if err != nil {
		t.Fatal(err)
	}
	payloads, _, _ = ckpt.ScanFrames(data)
	foundTerminal := false
	for _, p := range payloads {
		var rec journalRecord
		_ = json.Unmarshal(p, &rec)
		if rec.T == journalTerminal && rec.ID == sr.ID {
			foundTerminal = true
		}
	}
	if !foundTerminal {
		t.Fatalf("no terminal record for %s after completion", sr.ID)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt", sr.ID+".ckpt")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file for terminal job still present (err=%v)", err)
	}
}

// TestRecoveryClassification builds the on-disk state a kill -9 leaves
// behind — pending jobs with and without checkpoints, a finished job,
// checkpoint debris — restarts the service on it, and checks every
// recovery path: classification counts, original ids, byte-identical
// result documents, id-sequence continuity, and checkpoint cleanup.
func TestRecoveryClassification(t *testing.T) {
	req := countdownJob()
	want := referenceDoc(t, req)

	dir := t.TempDir()
	// j-1: accepted, never started, no checkpoint  -> requeued
	// j-2: accepted, started, no checkpoint        -> cold rerun
	// j-3: accepted, started, valid checkpoint     -> resumed
	// j-4: accepted, started, stale-key checkpoint -> cold rerun
	// j-5: accepted and terminal                   -> not replayed; its
	//      leftover checkpoint file is crash debris and must be swept
	jnl, pending, _, err := openJournal(filepath.Join(dir, "jobs.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending jobs", len(pending))
	}
	r := req
	for _, rec := range []journalRecord{
		{T: journalAccepted, ID: "j-1", Req: &r},
		{T: journalAccepted, ID: "j-2", Req: &r},
		{T: journalStarted, ID: "j-2"},
		{T: journalAccepted, ID: "j-3", Req: &r},
		{T: journalStarted, ID: "j-3"},
		{T: journalAccepted, ID: "j-4", Req: &r},
		{T: journalStarted, ID: "j-4"},
		{T: journalAccepted, ID: "j-5", Req: &r},
		{T: journalTerminal, ID: "j-5"},
	} {
		if _, err := jnl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jnl.close()

	c := makeCheckpoint(t, req)
	store, err := ckpt.OpenStore(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	c.Key = checkpointKey(&r)
	if _, err := store.Save("j-3", c); err != nil {
		t.Fatal(err)
	}
	stale := *c
	stale.Key = "not-the-right-key"
	if _, err := store.Save("j-4", &stale); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save("j-5", c); err != nil { // terminal-job debris
		t.Fatal(err)
	}
	store.Close()

	s, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 4, StateDir: dir, CheckpointEvery: 256})
	rec := s.Recovery()
	if rec.Err != nil {
		t.Fatalf("recovery error: %v", rec.Err)
	}
	if rec.Requeued != 1 || rec.Resumed != 1 || rec.ColdRerun != 2 || rec.Dropped != 0 {
		t.Fatalf("recovery = %+v, want 1 requeued, 1 resumed, 2 cold-rerun, 0 dropped", rec)
	}

	for _, id := range []string{"j-1", "j-2", "j-3", "j-4"} {
		st, body := waitTerminal(t, ts, id)
		if st.Status != StateDone {
			t.Fatalf("%s: %s (%s)", id, st.Status, st.Error)
		}
		if got := string(resultField(t, body)); got != want {
			t.Fatalf("%s result diverges from uninterrupted run:\n got %s\nwant %s", id, got, want)
		}
	}
	// The finished job is gone: terminal journal records are not replayed.
	resp, _ := getBody(t, ts.URL+"/v1/jobs/j-5")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("terminal job j-5: status %d, want 404", resp.StatusCode)
	}
	// Ids continue past every journaled id, terminal ones included.
	sr := submit(t, ts, tprocJob())
	if sr.ID != "j-6" {
		t.Fatalf("post-recovery id = %s, want j-6", sr.ID)
	}
	waitTerminal(t, ts, sr.ID)

	// All terminal: every checkpoint file (including the j-5 debris and
	// the stale j-4 one) must be gone.
	left, err := filepath.Glob(filepath.Join(dir, "ckpt", "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("checkpoint files left after all jobs terminal: %v", left)
	}
}

// TestRecoveryTornJournalTail kills the journal mid-frame: the torn
// tail is discarded, the intact prefix replays.
func TestRecoveryTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	jnl, _, _, err := openJournal(filepath.Join(dir, "jobs.log"))
	if err != nil {
		t.Fatal(err)
	}
	r := tprocJob()
	if _, err := jnl.append(journalRecord{T: journalAccepted, ID: "j-1", Req: &r}); err != nil {
		t.Fatal(err)
	}
	jnl.close()
	f, err := os.OpenFile(filepath.Join(dir, "jobs.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x00, 0x40, 0xde, 0xad}); err != nil { // half a frame
		t.Fatal(err)
	}
	f.Close()

	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, StateDir: dir})
	rec := s.Recovery()
	if rec.Err != nil || rec.Requeued != 1 {
		t.Fatalf("recovery = %+v, want 1 requeued and no error", rec)
	}
	st, _ := waitTerminal(t, ts, "j-1")
	if st.Status != StateDone {
		t.Fatalf("j-1: %s (%s)", st.Status, st.Error)
	}
}

// TestRecoveryErrRunsVolatile covers an unopenable state dir: the
// server reports the error, keeps serving, and simply is not durable —
// the caller (cmd/ximdd) decides whether that is fatal.
func TestRecoveryErrRunsVolatile(t *testing.T) {
	dir := t.TempDir()
	// A regular file where the checkpoint directory must go.
	if err := os.WriteFile(filepath.Join(dir, "ckpt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, StateDir: dir})
	if s.Recovery().Err == nil {
		t.Fatal("expected a recovery error for an unopenable state dir")
	}
	sr := submit(t, ts, tprocJob())
	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateDone {
		t.Fatalf("volatile job: %s (%s)", st.Status, st.Error)
	}
}

// TestResumedJobKeepsCheckpointing holds the restart-again story: a
// resumed job must itself write checkpoints, so a second crash resumes
// from post-restart progress rather than the original file.
func TestResumedJobKeepsCheckpointing(t *testing.T) {
	req := countdownJob()
	dir := t.TempDir()
	jnl, _, _, err := openJournal(filepath.Join(dir, "jobs.log"))
	if err != nil {
		t.Fatal(err)
	}
	r := req
	if _, err := jnl.append(journalRecord{T: journalAccepted, ID: "j-1", Req: &r}); err != nil {
		t.Fatal(err)
	}
	jnl.close()
	c := makeCheckpoint(t, req)
	store, err := ckpt.OpenStore(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	c.Key = checkpointKey(&r)
	if _, err := store.Save("j-1", c); err != nil {
		t.Fatal(err)
	}
	store.Close()

	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, StateDir: dir, CheckpointEvery: 256})
	if rec := s.Recovery(); rec.Resumed != 1 {
		t.Fatalf("recovery = %+v, want 1 resumed", rec)
	}
	st, _ := waitTerminal(t, ts, "j-1")
	if st.Status != StateDone {
		t.Fatalf("j-1: %s (%s)", st.Status, st.Error)
	}
	if got := s.mgr.met.ckptWrites.Value(); got == 0 {
		t.Fatal("resumed job wrote no checkpoints")
	}
}
