package serve

import (
	"bytes"
	"encoding/json"
	"testing"
)

// resultField extracts the raw "result" subdocument of a job status
// body. Job ids differ between submissions, so determinism is asserted
// on the result document, which carries everything the simulation
// produced.
func resultField(t *testing.T, body []byte) []byte {
	t.Helper()
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(body, &fields); err != nil {
		t.Fatalf("status body: %v: %s", err, body)
	}
	raw, ok := fields["result"]
	if !ok {
		t.Fatalf("status body has no result: %s", body)
	}
	return raw
}

// TestJobDeterminismColdVsCache is the issue's differential test: the
// decoded-program cache hit path must be observationally equivalent to
// the cold path. The same job (program, arch, seed, inject, pokes) is
// run cold on one server and twice on another; all three result
// documents must be byte-identical, and the repeat submission must be
// served from the cache.
func TestJobDeterminismColdVsCache(t *testing.T) {
	job := JobRequest{
		Arch:   "ximd",
		Source: loadSrc,
		Mem:    []string{"100=20", "101=22"},
		Peeks:  []string{"102:1"},
		Seed:   42,
		Inject: "lat=uniform:1:5",
	}

	_, cold := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	coldSub := submit(t, cold, job)
	if coldSub.CacheHit {
		t.Fatal("cold server reported a cache hit")
	}
	_, coldBody := waitTerminal(t, cold, coldSub.ID)
	coldRes := resultField(t, coldBody)

	_, warm := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	first := submit(t, warm, job)
	if first.CacheHit {
		t.Fatal("first submission on fresh server reported a cache hit")
	}
	_, firstBody := waitTerminal(t, warm, first.ID)
	second := submit(t, warm, job)
	if !second.CacheHit {
		t.Fatal("repeat submission missed the decoded-program cache")
	}
	if second.ProgramSHA256 != first.ProgramSHA256 {
		t.Fatalf("program hash changed between submissions: %s vs %s",
			first.ProgramSHA256, second.ProgramSHA256)
	}
	_, secondBody := waitTerminal(t, warm, second.ID)

	firstRes := resultField(t, firstBody)
	secondRes := resultField(t, secondBody)
	if !bytes.Equal(firstRes, secondRes) {
		t.Errorf("cache-hit result differs from first run:\n%s\n%s", firstRes, secondRes)
	}
	if !bytes.Equal(coldRes, firstRes) {
		t.Errorf("results differ across servers:\n%s\n%s", coldRes, firstRes)
	}
}

// TestStatusBodyStableAcrossPolls asserts a terminal job serves
// byte-identical status bodies on every poll (the result document is
// frozen once).
func TestStatusBodyStableAcrossPolls(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	sr := submit(t, ts, tprocJob())
	_, body1 := waitTerminal(t, ts, sr.ID)
	_, body2 := getBody(t, ts.URL+"/v1/jobs/"+sr.ID)
	if !bytes.Equal(body1, body2) {
		t.Fatalf("status body changed between polls:\n%s\n%s", body1, body2)
	}
}

// TestDeterminismAcrossArch sanity-checks that the two architectures
// report their own arch tag but agree on the TPROC answer.
func TestDeterminismAcrossArch(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 4})
	var cycles [2]uint64
	for i, arch := range []string{"ximd", "vliw"} {
		job := tprocJob()
		job.Arch = arch
		job.Peeks = nil
		sr := submit(t, ts, job)
		st, _ := waitTerminal(t, ts, sr.ID)
		if st.Status != StateDone {
			t.Fatalf("%s job failed: %s", arch, st.Error)
		}
		if st.Result.Arch != arch {
			t.Fatalf("result arch = %q, want %q", st.Result.Arch, arch)
		}
		cycles[i] = st.Result.Cycles
	}
	if cycles[0] != cycles[1] {
		t.Errorf("tproc cycles differ across arch: ximd=%d vliw=%d", cycles[0], cycles[1])
	}
}
