package serve

import (
	"fmt"
	"strings"
	"testing"

	"ximd/internal/runner"
)

// largeSrc synthesizes a program big enough that assemble+validate+
// predecode dominates: 8 FUs × 512 instructions.
func largeSrc() []byte {
	var b strings.Builder
	b.WriteString(".fus 8\n")
	for fu := 0; fu < 8; fu++ {
		fmt.Fprintf(&b, ".fu %d\n", fu)
		for i := 0; i < 512; i++ {
			fmt.Fprintf(&b, "\tiadd r%d, #%d, r%d\n", (i%7)+1, i%16, (i%7)+1)
		}
		b.WriteString("\t=> halt\n")
	}
	return []byte(b.String())
}

// BenchmarkSubmitCold measures the cache-miss path of job submission:
// hash + assemble + validate + pre-decode, exactly what
// manager.loadProgram pays on a miss.
func BenchmarkSubmitCold(b *testing.B) {
	for _, bm := range []struct {
		name string
		src  []byte
	}{
		{"tproc", []byte(tprocSrc)},
		{"large", largeSrc()},
	} {
		b.Run(bm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = programKey(runner.ArchXIMD, bm.src)
				if _, err := runner.Load(runner.ArchXIMD, bm.src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubmitHot measures the cache-hit path: hash + LRU lookup,
// sharing the pre-decoded program.
func BenchmarkSubmitHot(b *testing.B) {
	for _, bm := range []struct {
		name string
		src  []byte
	}{
		{"tproc", []byte(tprocSrc)},
		{"large", largeSrc()},
	} {
		b.Run(bm.name, func(b *testing.B) {
			m := newManager(Options{Workers: 1, QueueDepth: 1}.withDefaults())
			defer m.cancel()
			if _, _, hit, err := m.loadProgram(runner.ArchXIMD, bm.src); err != nil || hit {
				b.Fatalf("warmup: hit=%v err=%v", hit, err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, hit, err := m.loadProgram(runner.ArchXIMD, bm.src)
				if err != nil || !hit {
					b.Fatalf("hit=%v err=%v", hit, err)
				}
			}
		})
	}
}
