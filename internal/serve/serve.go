// Package serve is the simulation-as-a-service layer: it turns the
// one-shot simulators into a long-lived HTTP/JSON daemon (cmd/ximdd)
// with a bounded job queue, a worker pool layered on internal/sweep,
// a content-addressed decoded-program cache, explicit backpressure,
// and graceful drain on shutdown. Everything is stdlib-only.
//
// API:
//
//	POST /v1/jobs            submit a simulation; 202 + job id,
//	                         429 + Retry-After when the queue is full,
//	                         400 for malformed programs/specs (assembler
//	                         diagnostics with line numbers pass through),
//	                         503 while shutting down
//	GET  /v1/jobs/{id}       job status + result document when terminal
//	GET  /v1/jobs/{id}/trace per-cycle trace as NDJSON (trace=true jobs)
//	GET  /v1/jobs/{id}/spans span breakdown (queue wait, decode,
//	                         execute, total) as NDJSON once terminal
//	GET  /v1/traces          distributed-trace summaries (newest first;
//	                         ?job= ?sweep= ?digest= ?min_ms= filters)
//	GET  /v1/traces/{id}     one trace's assembled span tree as NDJSON,
//	                         depth-first with a computed depth field
//	POST /v1/sweeps          synchronous batch fan-out over the sweep
//	                         pool; results in submission order. With
//	                         "detach":true the variants are admitted
//	                         atomically as regular jobs and the response
//	                         is 202 with a sweep id + per-variant job ids
//	GET  /v1/sweeps/{id}     detached-sweep status: per-variant job ids
//	                         and terminal states
//	GET  /v1/runs            cross-run history from the durable run
//	                         archive (digest/arch/seed/inject/limit
//	                         filters); 404 without -archive
//	POST /v1/regress         re-run a batch and diff it against the
//	                         archived baselines; 404 without -archive
//	GET  /healthz            combined health ("ok", 503 while draining;
//	                         byte-compatible with earlier releases)
//	GET  /livez              process liveness (always 200 "ok")
//	GET  /readyz             routing readiness (503 "draining" during
//	                         graceful shutdown)
//	POST /v1/fabric/lease    fabric coordinator registration/heartbeat
//	                         (exclusive TTL lease + load report)
//	GET  /metrics            Prometheus text exposition (internal/obs)
//	GET  /varz               queue/job/cache/cycle metrics — the legacy
//	                         JSON view over the same registry, key- and
//	                         byte-compatible with the old expvar output
//
// Distributed tracing: every POST /v1/jobs starts (or, when the
// request carries an X-Ximd-Trace header, adopts) a trace whose span
// tree covers the full lifecycle — queue wait, decode, execute with
// the runner's build/restore/run/checkpoint phases, archive append.
// The header value is "<trace id>-<parent span id>"; a malformed
// header silently starts a fresh root (propagation must never fail a
// request), and the 202 response echoes the trace context back in the
// same header.
//
// Determinism contract: a job's result document is a pure function of
// (program bytes, arch, seed, inject spec, pokes, max_cycles). The
// response carries no timestamps or host state, so resubmitting the
// same job yields byte-identical result JSON whether it is served cold
// or from the decoded-program cache. Wall-clock measurement (the
// queued_ms/run_ms status fields, the span breakdown, the latency
// histograms) lives strictly outside the result document.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"time"

	"ximd/internal/archive"
	"ximd/internal/ckpt"
	"ximd/internal/hostcfg"
	"ximd/internal/inject"
	"ximd/internal/obs"
	"ximd/internal/runner"
	"ximd/internal/trace"
)

// Options configures a Server. The zero value selects sane defaults.
type Options struct {
	// QueueDepth bounds the submission queue; a full queue answers 429.
	// <= 0 selects 64.
	QueueDepth int
	// Workers is the number of concurrent job executors; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// JobTimeout is the per-job deadline, enforced through the sweep
	// engine's TaskTimeout; <= 0 selects 30s.
	JobTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses; <= 0 selects 1s.
	RetryAfter time.Duration
	// CacheEntries caps the decoded-program cache; <= 0 selects 256.
	CacheEntries int
	// MaxSourceBytes caps a submitted program; <= 0 selects 1 MiB.
	MaxSourceBytes int64
	// MaxSweepTasks caps one sweep request's fan-out; <= 0 selects 1024.
	MaxSweepTasks int
	// MaxConcurrentSweeps bounds simultaneous sweep requests (they run
	// synchronously on the caller's connection); excess answers 429.
	// <= 0 selects 2.
	MaxConcurrentSweeps int
	// Archive, when non-nil, is the durable run archive: terminal jobs
	// and sweep tasks are recorded into it at completion, GET /v1/runs
	// queries it, and POST /v1/regress diffs fresh runs against its
	// baselines. nil disables archiving and both endpoints.
	Archive *archive.Archive
	// StateDir, when non-empty, makes accepted jobs durable: every
	// lifecycle transition is write-ahead journaled to
	// StateDir/jobs.log, running jobs checkpoint periodically into
	// StateDir/ckpt/, and New replays both on startup — jobs in flight
	// at a kill -9 are resumed from their newest checkpoint (or rerun
	// from scratch) under their original ids, with result documents
	// byte-identical to an uninterrupted run. Empty disables durability.
	// cmd/ximdd points this at the -archive directory.
	StateDir string
	// CheckpointEvery is the checkpoint interval in machine cycles for
	// durable jobs; <= 0 selects DefaultCheckpointEvery.
	CheckpointEvery uint64
}

// DefaultCheckpointEvery is the default checkpoint interval: well
// under a second of simulated work at the measured ~40-100ns/cycle, so
// a crash loses at most that much progress. The dominant save cost is
// the full-memory snapshot copy (milliseconds), not the sparse wire
// encode or the fsync; ~8M cycles between saves keeps the measured
// overhead under the 2% budget (BenchmarkRunCheckpointDefault) with
// comfortable margin.
const DefaultCheckpointEvery = 1 << 23

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 30 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.MaxSourceBytes <= 0 {
		o.MaxSourceBytes = 1 << 20
	}
	if o.MaxSweepTasks <= 0 {
		o.MaxSweepTasks = 1024
	}
	if o.MaxConcurrentSweeps <= 0 {
		o.MaxConcurrentSweeps = 2
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = DefaultCheckpointEvery
	}
	return o
}

// Server is the simulation service. Create with New, mount Handler on
// an http.Server, and drain with Shutdown.
type Server struct {
	opts     Options
	mgr      *manager
	mux      *http.ServeMux
	sweepSem chan struct{}
	recovery RecoveryInfo

	// workerID and lease are the fabric worker identity: the id is
	// minted per process and reported on every lease response, the
	// lease state arbitrates which coordinator owns this worker.
	workerID string
	lease    leaseState
}

// RecoveryInfo summarizes what New's crash recovery found in
// Options.StateDir. cmd/ximdd logs it at startup.
type RecoveryInfo struct {
	// Requeued jobs were journaled as accepted but left no usable
	// checkpoint and had not started; they rerun from scratch in their
	// original acceptance order.
	Requeued int
	// Resumed jobs restored a valid checkpoint and continue mid-run.
	Resumed int
	// ColdRerun jobs had started (or left checkpoint debris) but no
	// usable checkpoint survived — missing, torn, stale key, or wrong
	// format version — so they rerun from cycle 0.
	ColdRerun int
	// Dropped jobs could not be rebuilt from their journaled request
	// (which cannot happen for requests this binary accepted; it guards
	// against a downgraded binary replaying a newer journal). They are
	// journaled terminal and forgotten.
	Dropped int
	// Err is the reason durability is disabled when the journal or
	// checkpoint store could not be opened; nil otherwise. The server
	// still runs, volatile, exactly as with no StateDir.
	Err error
}

// Recovery reports what crash recovery did during New.
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// New builds a Server, recovers durable job state if Options.StateDir
// is set, and starts the worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		mux:      http.NewServeMux(),
		sweepSem: make(chan struct{}, opts.MaxConcurrentSweeps),
		workerID: newWorkerID(),
	}

	var (
		jnl     *journal
		store   *ckpt.Store
		pending []replayJob
		maxID   uint64
	)
	if opts.StateDir != "" {
		var err error
		store, err = ckpt.OpenStore(filepath.Join(opts.StateDir, "ckpt"))
		if err == nil {
			jnl, pending, maxID, err = openJournal(filepath.Join(opts.StateDir, "jobs.log"))
		}
		if err != nil {
			// Run volatile rather than not at all; the caller decides
			// whether that is acceptable (cmd/ximdd refuses).
			s.recovery.Err = err
			jnl, store, pending = nil, nil, nil
		}
	}
	// The queue must have room for the entire recovered backlog — those
	// jobs were already accepted once and must not bounce off a 429.
	if opts.QueueDepth < len(pending) {
		opts.QueueDepth = len(pending)
	}
	s.opts = opts
	s.mgr = newManager(opts)
	s.mgr.jnl, s.mgr.ckpts, s.mgr.ckptEvery = jnl, store, opts.CheckpointEvery
	if s.mgr.nextID < maxID {
		// Never reissue an id a client may still be polling — even one
		// whose job finished before the crash.
		s.mgr.nextID = maxID
	}
	s.recoverPending(pending)
	s.mgr.start()

	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/spans", s.handleSpans)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("GET /v1/runs", s.handleRuns)
	s.mux.HandleFunc("POST /v1/regress", s.handleRegress)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /v1/fabric/lease", s.handleLease)
	s.mux.Handle("GET /v1/traces", obs.TraceListHandler(s.mgr.spanStore))
	s.mux.Handle("GET /v1/traces/{id}", obs.TraceTreeHandler(s.mgr.spanStore))
	s.mux.Handle("GET /metrics", s.mgr.met.reg.Handler())
	s.mux.HandleFunc("GET /varz", s.handleVarz)
	return s
}

// recoverPending rebuilds and re-enqueues the journal's
// accepted-but-not-terminal jobs in their original acceptance order,
// attaching each job's newest valid checkpoint when one survives. The
// checkpoint store is probed for every pending job — not just those
// with a "started" record, which journal compaction can race away —
// and a checkpoint is only trusted if its binding key matches the job
// rebuilt from the journaled request (a stale or foreign checkpoint
// means cold rerun, the always-safe fallback). Checkpoint files for
// ids no longer pending are debris from a crash between the terminal
// journal record and the delete; they are swept here.
func (s *Server) recoverPending(pending []replayJob) {
	if s.mgr.ckpts == nil {
		return
	}
	live := make(map[string]bool, len(pending))
	for _, p := range pending {
		live[p.id] = true
		req := p.req
		j, _, err := s.buildJob(&req)
		if err != nil {
			s.recovery.Dropped++
			_, _ = s.mgr.jnl.append(journalRecord{T: journalTerminal, ID: p.id})
			_ = s.mgr.ckpts.Delete(p.id)
			continue
		}
		// A recovered job starts a fresh trace: its pre-crash spans died
		// with the old process, and the recovered attr records why.
		j.span = s.mgr.tr.Root("job")
		j.span.SetAttr("digest", j.progSHA)
		j.span.SetAttr("arch", string(j.prog.Arch()))
		c, cerr := s.mgr.ckpts.Load(p.id)
		switch {
		case cerr == nil && c != nil && c.Key == j.ckptKey && c.Arch == string(j.prog.Arch()) && !j.trace:
			j.ckpt = c
			j.span.SetAttr("recovered", "resumed")
			s.recovery.Resumed++
			s.mgr.met.jobsResumed.Inc()
		case p.started || c != nil || cerr != nil:
			j.span.SetAttr("recovered", "cold_rerun")
			s.recovery.ColdRerun++
			s.mgr.met.jobsColdRun.Inc()
			_ = s.mgr.ckpts.Delete(p.id) // an unusable checkpoint must not linger under the live id
		default:
			j.span.SetAttr("recovered", "requeued")
			s.recovery.Requeued++
			s.mgr.met.jobsRequeued.Inc()
		}
		s.mgr.requeue(j, p.id)
	}
	if ids, err := s.mgr.ckpts.List(); err == nil {
		for _, id := range ids {
			if !live[id] {
				_ = s.mgr.ckpts.Delete(id)
			}
		}
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown gracefully drains the job queue (see manager.Shutdown).
func (s *Server) Shutdown(ctx context.Context) error { return s.mgr.Shutdown(ctx) }

// JobRequest is the body of POST /v1/jobs. Exactly one of Source
// (assembly text) and Image (binary program image, base64 in JSON)
// must be set.
type JobRequest struct {
	// Arch is "ximd" (default) or "vliw".
	Arch string `json:"arch,omitempty"`
	// Source is XIMD assembly text.
	Source string `json:"source,omitempty"`
	// Image is an encoded binary program image.
	Image []byte `json:"image,omitempty"`
	// Seed and Inject select a deterministic fault-injection campaign.
	Seed   int64  `json:"seed,omitempty"`
	Inject string `json:"inject,omitempty"`
	// MaxCycles bounds the run (0 = machine default).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// TolerateConflicts makes same-cycle write conflicts non-fatal.
	TolerateConflicts bool `json:"tolerate_conflicts,omitempty"`
	// Pokes ("rN=V"), Mem ("ADDR=V,V"), and Peeks ("ADDR:N") reuse the
	// CLI host-configuration grammar (internal/hostcfg).
	Pokes []string `json:"pokes,omitempty"`
	Mem   []string `json:"mem,omitempty"`
	Peeks []string `json:"peeks,omitempty"`
	// Trace records the per-cycle trace, served at /v1/jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
	// Profile attaches the per-FU stall-attribution block to the result
	// document (a derived view of the stats — the result stays
	// deterministic).
	Profile bool `json:"profile,omitempty"`
	// Flight keeps a bounded ring of the last N cycle records and dumps
	// it into the job status if the run fails — a crash postmortem
	// without full-trace cost. Capped at MaxFlightCycles.
	Flight int `json:"flight,omitempty"`
}

// MaxFlightCycles caps a job's flight-recorder window.
const MaxFlightCycles = 1024

// SubmitResponse is the 202 body of POST /v1/jobs.
type SubmitResponse struct {
	ID            string `json:"id"`
	Status        State  `json:"status"`
	ProgramSHA256 string `json:"program_sha256"`
	CacheHit      bool   `json:"cache_hit"`
}

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID            string            `json:"id"`
	Status        State             `json:"status"`
	ProgramSHA256 string            `json:"program_sha256"`
	CacheHit      bool              `json:"cache_hit"`
	Error         string            `json:"error,omitempty"`
	ExitCode      *int              `json:"exit_code,omitempty"`
	Result        *runner.ResultDoc `json:"result,omitempty"`
	// QueuedMS and RunMS are monotonic-clock measurements (queue wait
	// and execution time), present once the job is terminal. They live
	// beside — never inside — the result document, which must stay a
	// pure function of the job inputs.
	QueuedMS *float64 `json:"queued_ms,omitempty"`
	RunMS    *float64 `json:"run_ms,omitempty"`
	// Flight is the flight-recorder window (last flight=N cycles),
	// present only for failed jobs that requested one.
	Flight []TraceLine `json:"flight,omitempty"`
}

// errorBody is every non-2xx JSON body.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// retryAfterSeconds renders a Retry-After hint in whole seconds,
// rounding up with a floor of 1: the header's unit is integral
// seconds, so truncating a sub-second configuration would emit
// "Retry-After: 0" and tell backed-off clients to hammer immediately.
func retryAfterSeconds(d time.Duration) string {
	secs := (int64(d) + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// setRetryAfter stamps the shared Retry-After hint on a backpressure
// response (429, 503, and pre-terminal 409s).
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
}

// buildJob validates a JobRequest into a runnable job, resolving the
// program through the decoded-program cache. Validation failures are
// returned with the HTTP status they deserve: 400 for bad programs
// (assembler line numbers preserved) and bad host configuration.
func (s *Server) buildJob(req *JobRequest) (*job, int, error) {
	arch, err := runner.ParseArch(req.Arch)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	var source []byte
	switch {
	case req.Source != "" && len(req.Image) > 0:
		return nil, http.StatusBadRequest, errors.New("request sets both source and image")
	case req.Source != "":
		source = []byte(req.Source)
	case len(req.Image) > 0:
		source = req.Image
	default:
		return nil, http.StatusBadRequest, errors.New("request needs source (assembly text) or image (binary program)")
	}
	if int64(len(source)) > s.opts.MaxSourceBytes {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("program is %d bytes, limit %d", len(source), s.opts.MaxSourceBytes)
	}

	if req.Flight < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("flight must be >= 0, got %d", req.Flight)
	}
	flight := req.Flight
	if flight > MaxFlightCycles {
		flight = MaxFlightCycles
	}

	decodeStart := time.Now()
	prog, key, hit, err := s.mgr.loadProgram(arch, source)
	decodeDur := time.Since(decodeStart)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	s.mgr.met.observeDecode(decodeDur, hit)
	spec := runner.Spec{
		MaxCycles:         req.MaxCycles,
		TolerateConflicts: req.TolerateConflicts,
		Seed:              req.Seed,
		Inject:            req.Inject,
	}
	if spec.RegPokes, err = hostcfg.ParseRegPokes(req.Pokes); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if spec.MemPokes, err = hostcfg.ParseMemPokes(req.Mem); err != nil {
		return nil, http.StatusBadRequest, err
	}
	peeks, err := hostcfg.ParseMemPeeks(req.Peeks)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	// Canonicalizing validates the inject spec at submit — the client
	// gets a 400 instead of a queued job that fails at run time — and
	// fixes the archive key's inject axis, so reordered-but-equivalent
	// specs share one baseline.
	canonInject, err := inject.Canonicalize(req.Inject)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	reqCopy := *req
	return &job{
		prog:        prog,
		progSHA:     key,
		cacheHit:    hit,
		spec:        spec,
		peeks:       peeks,
		trace:       req.Trace,
		profile:     req.Profile,
		flight:      flight,
		decodeDur:   decodeDur,
		canonInject: canonInject,
		req:         &reqCopy,
		ckptKey:     checkpointKey(&reqCopy),
	}, 0, nil
}

// checkpointKey digests the canonical request JSON into the string
// that binds a durable checkpoint to its run. The journal stores the
// request and recovery rebuilds the job from it, so both sides derive
// the key from the same bytes: json.Marshal of the struct is
// deterministic (fixed field order, no maps), which makes the key
// stable across processes. Anything that changes the run's outcome —
// program bytes, arch, seed, inject, pokes, limits — changes the key,
// and a mismatched key demotes resume to a cold rerun.
func checkpointKey(req *JobRequest) string {
	b, err := json.Marshal(req)
	if err != nil {
		// JobRequest marshals unconditionally; see appendJournalFrame.
		panic(fmt.Sprintf("serve: checkpoint key marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxSourceBytes*2))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	// Adopt the caller's trace context (the coordinator's placement
	// span) or start a fresh root; a malformed header is never a 400.
	sc, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	span := s.mgr.tr.Adopt(sc, "job")
	j, status, err := s.buildJob(&req)
	if err != nil {
		span.SetAttr("error", err.Error())
		span.Finish()
		writeError(w, status, err)
		return
	}
	j.span = span
	span.SetAttr("digest", j.progSHA)
	span.SetAttr("arch", string(j.prog.Arch()))
	decode := span.Child("decode")
	if j.cacheHit {
		decode.SetAttr("cache", "hit")
	} else {
		decode.SetAttr("cache", "miss")
	}
	decode.FinishWith(j.decodeDur)
	if err := s.mgr.submit(j); err != nil {
		span.SetAttr("error", err.Error())
		span.Finish()
		switch {
		case errors.Is(err, ErrQueueFull):
			s.setRetryAfter(w)
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrShuttingDown):
			s.setRetryAfter(w)
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set(obs.TraceHeader, obs.FormatTraceHeader(span.Context()))
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:            j.id,
		Status:        StateQueued,
		ProgramSHA256: j.progSHA,
		CacheHit:      j.cacheHit,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	v := s.mgr.snapshot(j)
	st := JobStatus{
		ID:            j.id,
		Status:        v.state,
		ProgramSHA256: j.progSHA,
		CacheHit:      j.cacheHit,
		Result:        v.doc,
		QueuedMS:      v.queuedMS,
		RunMS:         v.runMS,
	}
	if v.state == StateDone || v.state == StateFailed {
		code := runner.ExitCode(v.err)
		st.ExitCode = &code
	}
	if v.err != nil {
		st.Error = v.err.Error()
	}
	for i := range v.flight {
		st.Flight = append(st.Flight, traceLine(&v.flight[i]))
	}
	writeJSON(w, http.StatusOK, st)
}

// TraceLine is one NDJSON record of GET /v1/jobs/{id}/trace.
type TraceLine struct {
	Cycle uint64 `json:"cycle"`
	// PC has one entry per FU (XIMD) or a single entry (VLIW).
	PC []uint16 `json:"pc"`
	// CC and SS are the Figure 10 strings ("TFXX", "DBBD"); SS and
	// Partition are empty for VLIW jobs.
	CC        string `json:"cc"`
	SS        string `json:"ss,omitempty"`
	Partition string `json:"partition,omitempty"`
	// Halted has one letter per FU: H for halted, . for live; empty when
	// no FU has halted yet.
	Halted string `json:"halted,omitempty"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !j.trace {
		writeError(w, http.StatusNotFound, errors.New("job was submitted without trace=true"))
		return
	}
	state, recs := s.mgr.traceRecords(j)
	if state != StateDone && state != StateFailed {
		s.setRetryAfter(w)
		writeError(w, http.StatusConflict, fmt.Errorf("job is %s; trace is available once it is terminal", state))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(traceLine(&recs[i])); err != nil {
			return // client went away
		}
	}
}

func traceLine(rec *trace.Record) TraceLine {
	line := TraceLine{
		Cycle: rec.Cycle,
		PC:    make([]uint16, len(rec.PC)),
		CC:    rec.CCString(),
	}
	for i, pc := range rec.PC {
		line.PC[i] = uint16(pc)
	}
	if len(rec.SS) > 0 {
		line.SS = rec.SSString()
		line.Partition = rec.Partition.String()
	}
	any := false
	halted := make([]byte, len(rec.Halted))
	for i, h := range rec.Halted {
		if h {
			halted[i] = 'H'
			any = true
		} else {
			halted[i] = '.'
		}
	}
	if any {
		line.Halted = string(halted)
	}
	return line
}

// SpanLine is one NDJSON record of GET /v1/jobs/{id}/spans: a named
// phase of the job's wall-clock lifetime in fractional milliseconds.
// Spans are "queue_wait" (acceptance to execution start), "decode"
// (program resolution at submit; Detail says whether the decoded-
// program cache hit), "execute" (the run itself, as measured by the
// sweep engine), and "total" (acceptance to terminal state).
type SpanLine struct {
	Span   string  `json:"span"`
	Ms     float64 `json:"ms"`
	Detail string  `json:"detail,omitempty"`
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	state, spans := s.mgr.spanLines(j)
	if state != StateDone && state != StateFailed {
		s.setRetryAfter(w)
		writeError(w, http.StatusConflict, fmt.Errorf("job is %s; spans are available once it is terminal", state))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(spans[i]); err != nil {
			return // client went away
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.mgr.shuttingDown() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleVarz serves the legacy metrics view: the same key set and the
// same rendering the old expvar.Map-backed handler produced, now
// projected from the obs registry (see varzJSON).
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, s.mgr.varzJSON())
}
