// Package serve is the simulation-as-a-service layer: it turns the
// one-shot simulators into a long-lived HTTP/JSON daemon (cmd/ximdd)
// with a bounded job queue, a worker pool layered on internal/sweep,
// a content-addressed decoded-program cache, explicit backpressure,
// and graceful drain on shutdown. Everything is stdlib-only.
//
// API:
//
//	POST /v1/jobs            submit a simulation; 202 + job id,
//	                         429 + Retry-After when the queue is full,
//	                         400 for malformed programs/specs (assembler
//	                         diagnostics with line numbers pass through),
//	                         503 while shutting down
//	GET  /v1/jobs/{id}       job status + result document when terminal
//	GET  /v1/jobs/{id}/trace per-cycle trace as NDJSON (trace=true jobs)
//	GET  /v1/jobs/{id}/spans span breakdown (queue wait, decode,
//	                         execute, total) as NDJSON once terminal
//	POST /v1/sweeps          synchronous batch fan-out over the sweep
//	                         pool; results in submission order
//	GET  /v1/runs            cross-run history from the durable run
//	                         archive (digest/arch/seed/inject/limit
//	                         filters); 404 without -archive
//	POST /v1/regress         re-run a batch and diff it against the
//	                         archived baselines; 404 without -archive
//	GET  /healthz            liveness ("ok", 503 while draining)
//	GET  /metrics            Prometheus text exposition (internal/obs)
//	GET  /varz               queue/job/cache/cycle metrics — the legacy
//	                         JSON view over the same registry, key- and
//	                         byte-compatible with the old expvar output
//
// Determinism contract: a job's result document is a pure function of
// (program bytes, arch, seed, inject spec, pokes, max_cycles). The
// response carries no timestamps or host state, so resubmitting the
// same job yields byte-identical result JSON whether it is served cold
// or from the decoded-program cache. Wall-clock measurement (the
// queued_ms/run_ms status fields, the span breakdown, the latency
// histograms) lives strictly outside the result document.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"ximd/internal/archive"
	"ximd/internal/hostcfg"
	"ximd/internal/inject"
	"ximd/internal/runner"
	"ximd/internal/trace"
)

// Options configures a Server. The zero value selects sane defaults.
type Options struct {
	// QueueDepth bounds the submission queue; a full queue answers 429.
	// <= 0 selects 64.
	QueueDepth int
	// Workers is the number of concurrent job executors; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// JobTimeout is the per-job deadline, enforced through the sweep
	// engine's TaskTimeout; <= 0 selects 30s.
	JobTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses; <= 0 selects 1s.
	RetryAfter time.Duration
	// CacheEntries caps the decoded-program cache; <= 0 selects 256.
	CacheEntries int
	// MaxSourceBytes caps a submitted program; <= 0 selects 1 MiB.
	MaxSourceBytes int64
	// MaxSweepTasks caps one sweep request's fan-out; <= 0 selects 1024.
	MaxSweepTasks int
	// MaxConcurrentSweeps bounds simultaneous sweep requests (they run
	// synchronously on the caller's connection); excess answers 429.
	// <= 0 selects 2.
	MaxConcurrentSweeps int
	// Archive, when non-nil, is the durable run archive: terminal jobs
	// and sweep tasks are recorded into it at completion, GET /v1/runs
	// queries it, and POST /v1/regress diffs fresh runs against its
	// baselines. nil disables archiving and both endpoints.
	Archive *archive.Archive
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 30 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.MaxSourceBytes <= 0 {
		o.MaxSourceBytes = 1 << 20
	}
	if o.MaxSweepTasks <= 0 {
		o.MaxSweepTasks = 1024
	}
	if o.MaxConcurrentSweeps <= 0 {
		o.MaxConcurrentSweeps = 2
	}
	return o
}

// Server is the simulation service. Create with New, mount Handler on
// an http.Server, and drain with Shutdown.
type Server struct {
	opts     Options
	mgr      *manager
	mux      *http.ServeMux
	sweepSem chan struct{}
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		mgr:      newManager(opts),
		mux:      http.NewServeMux(),
		sweepSem: make(chan struct{}, opts.MaxConcurrentSweeps),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/spans", s.handleSpans)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("GET /v1/runs", s.handleRuns)
	s.mux.HandleFunc("POST /v1/regress", s.handleRegress)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", s.mgr.met.reg.Handler())
	s.mux.HandleFunc("GET /varz", s.handleVarz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown gracefully drains the job queue (see manager.Shutdown).
func (s *Server) Shutdown(ctx context.Context) error { return s.mgr.Shutdown(ctx) }

// JobRequest is the body of POST /v1/jobs. Exactly one of Source
// (assembly text) and Image (binary program image, base64 in JSON)
// must be set.
type JobRequest struct {
	// Arch is "ximd" (default) or "vliw".
	Arch string `json:"arch,omitempty"`
	// Source is XIMD assembly text.
	Source string `json:"source,omitempty"`
	// Image is an encoded binary program image.
	Image []byte `json:"image,omitempty"`
	// Seed and Inject select a deterministic fault-injection campaign.
	Seed   int64  `json:"seed,omitempty"`
	Inject string `json:"inject,omitempty"`
	// MaxCycles bounds the run (0 = machine default).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// TolerateConflicts makes same-cycle write conflicts non-fatal.
	TolerateConflicts bool `json:"tolerate_conflicts,omitempty"`
	// Pokes ("rN=V"), Mem ("ADDR=V,V"), and Peeks ("ADDR:N") reuse the
	// CLI host-configuration grammar (internal/hostcfg).
	Pokes []string `json:"pokes,omitempty"`
	Mem   []string `json:"mem,omitempty"`
	Peeks []string `json:"peeks,omitempty"`
	// Trace records the per-cycle trace, served at /v1/jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
	// Profile attaches the per-FU stall-attribution block to the result
	// document (a derived view of the stats — the result stays
	// deterministic).
	Profile bool `json:"profile,omitempty"`
	// Flight keeps a bounded ring of the last N cycle records and dumps
	// it into the job status if the run fails — a crash postmortem
	// without full-trace cost. Capped at MaxFlightCycles.
	Flight int `json:"flight,omitempty"`
}

// MaxFlightCycles caps a job's flight-recorder window.
const MaxFlightCycles = 1024

// SubmitResponse is the 202 body of POST /v1/jobs.
type SubmitResponse struct {
	ID            string `json:"id"`
	Status        State  `json:"status"`
	ProgramSHA256 string `json:"program_sha256"`
	CacheHit      bool   `json:"cache_hit"`
}

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID            string            `json:"id"`
	Status        State             `json:"status"`
	ProgramSHA256 string            `json:"program_sha256"`
	CacheHit      bool              `json:"cache_hit"`
	Error         string            `json:"error,omitempty"`
	ExitCode      *int              `json:"exit_code,omitempty"`
	Result        *runner.ResultDoc `json:"result,omitempty"`
	// QueuedMS and RunMS are monotonic-clock measurements (queue wait
	// and execution time), present once the job is terminal. They live
	// beside — never inside — the result document, which must stay a
	// pure function of the job inputs.
	QueuedMS *float64 `json:"queued_ms,omitempty"`
	RunMS    *float64 `json:"run_ms,omitempty"`
	// Flight is the flight-recorder window (last flight=N cycles),
	// present only for failed jobs that requested one.
	Flight []TraceLine `json:"flight,omitempty"`
}

// errorBody is every non-2xx JSON body.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// retryAfterSeconds renders a Retry-After hint in whole seconds,
// rounding up with a floor of 1: the header's unit is integral
// seconds, so truncating a sub-second configuration would emit
// "Retry-After: 0" and tell backed-off clients to hammer immediately.
func retryAfterSeconds(d time.Duration) string {
	secs := (int64(d) + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// setRetryAfter stamps the shared Retry-After hint on a backpressure
// response (429, 503, and pre-terminal 409s).
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
}

// buildJob validates a JobRequest into a runnable job, resolving the
// program through the decoded-program cache. Validation failures are
// returned with the HTTP status they deserve: 400 for bad programs
// (assembler line numbers preserved) and bad host configuration.
func (s *Server) buildJob(req *JobRequest) (*job, int, error) {
	arch, err := runner.ParseArch(req.Arch)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	var source []byte
	switch {
	case req.Source != "" && len(req.Image) > 0:
		return nil, http.StatusBadRequest, errors.New("request sets both source and image")
	case req.Source != "":
		source = []byte(req.Source)
	case len(req.Image) > 0:
		source = req.Image
	default:
		return nil, http.StatusBadRequest, errors.New("request needs source (assembly text) or image (binary program)")
	}
	if int64(len(source)) > s.opts.MaxSourceBytes {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("program is %d bytes, limit %d", len(source), s.opts.MaxSourceBytes)
	}

	if req.Flight < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("flight must be >= 0, got %d", req.Flight)
	}
	flight := req.Flight
	if flight > MaxFlightCycles {
		flight = MaxFlightCycles
	}

	decodeStart := time.Now()
	prog, key, hit, err := s.mgr.loadProgram(arch, source)
	decodeDur := time.Since(decodeStart)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	s.mgr.met.observeDecode(decodeDur, hit)
	spec := runner.Spec{
		MaxCycles:         req.MaxCycles,
		TolerateConflicts: req.TolerateConflicts,
		Seed:              req.Seed,
		Inject:            req.Inject,
	}
	if spec.RegPokes, err = hostcfg.ParseRegPokes(req.Pokes); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if spec.MemPokes, err = hostcfg.ParseMemPokes(req.Mem); err != nil {
		return nil, http.StatusBadRequest, err
	}
	peeks, err := hostcfg.ParseMemPeeks(req.Peeks)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	// Canonicalizing validates the inject spec at submit — the client
	// gets a 400 instead of a queued job that fails at run time — and
	// fixes the archive key's inject axis, so reordered-but-equivalent
	// specs share one baseline.
	canonInject, err := inject.Canonicalize(req.Inject)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return &job{
		prog:        prog,
		progSHA:     key,
		cacheHit:    hit,
		spec:        spec,
		peeks:       peeks,
		trace:       req.Trace,
		profile:     req.Profile,
		flight:      flight,
		decodeDur:   decodeDur,
		canonInject: canonInject,
	}, 0, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxSourceBytes*2))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	j, status, err := s.buildJob(&req)
	if err != nil {
		writeError(w, status, err)
		return
	}
	if err := s.mgr.submit(j); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.setRetryAfter(w)
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrShuttingDown):
			s.setRetryAfter(w)
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:            j.id,
		Status:        StateQueued,
		ProgramSHA256: j.progSHA,
		CacheHit:      j.cacheHit,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	v := s.mgr.snapshot(j)
	st := JobStatus{
		ID:            j.id,
		Status:        v.state,
		ProgramSHA256: j.progSHA,
		CacheHit:      j.cacheHit,
		Result:        v.doc,
		QueuedMS:      v.queuedMS,
		RunMS:         v.runMS,
	}
	if v.state == StateDone || v.state == StateFailed {
		code := runner.ExitCode(v.err)
		st.ExitCode = &code
	}
	if v.err != nil {
		st.Error = v.err.Error()
	}
	for i := range v.flight {
		st.Flight = append(st.Flight, traceLine(&v.flight[i]))
	}
	writeJSON(w, http.StatusOK, st)
}

// TraceLine is one NDJSON record of GET /v1/jobs/{id}/trace.
type TraceLine struct {
	Cycle uint64 `json:"cycle"`
	// PC has one entry per FU (XIMD) or a single entry (VLIW).
	PC []uint16 `json:"pc"`
	// CC and SS are the Figure 10 strings ("TFXX", "DBBD"); SS and
	// Partition are empty for VLIW jobs.
	CC        string `json:"cc"`
	SS        string `json:"ss,omitempty"`
	Partition string `json:"partition,omitempty"`
	// Halted has one letter per FU: H for halted, . for live; empty when
	// no FU has halted yet.
	Halted string `json:"halted,omitempty"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !j.trace {
		writeError(w, http.StatusNotFound, errors.New("job was submitted without trace=true"))
		return
	}
	state, recs := s.mgr.traceRecords(j)
	if state != StateDone && state != StateFailed {
		s.setRetryAfter(w)
		writeError(w, http.StatusConflict, fmt.Errorf("job is %s; trace is available once it is terminal", state))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(traceLine(&recs[i])); err != nil {
			return // client went away
		}
	}
}

func traceLine(rec *trace.Record) TraceLine {
	line := TraceLine{
		Cycle: rec.Cycle,
		PC:    make([]uint16, len(rec.PC)),
		CC:    rec.CCString(),
	}
	for i, pc := range rec.PC {
		line.PC[i] = uint16(pc)
	}
	if len(rec.SS) > 0 {
		line.SS = rec.SSString()
		line.Partition = rec.Partition.String()
	}
	any := false
	halted := make([]byte, len(rec.Halted))
	for i, h := range rec.Halted {
		if h {
			halted[i] = 'H'
			any = true
		} else {
			halted[i] = '.'
		}
	}
	if any {
		line.Halted = string(halted)
	}
	return line
}

// SpanLine is one NDJSON record of GET /v1/jobs/{id}/spans: a named
// phase of the job's wall-clock lifetime in fractional milliseconds.
// Spans are "queue_wait" (acceptance to execution start), "decode"
// (program resolution at submit; Detail says whether the decoded-
// program cache hit), "execute" (the run itself, as measured by the
// sweep engine), and "total" (acceptance to terminal state).
type SpanLine struct {
	Span   string  `json:"span"`
	Ms     float64 `json:"ms"`
	Detail string  `json:"detail,omitempty"`
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	state, spans := s.mgr.spanLines(j)
	if state != StateDone && state != StateFailed {
		s.setRetryAfter(w)
		writeError(w, http.StatusConflict, fmt.Errorf("job is %s; spans are available once it is terminal", state))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(spans[i]); err != nil {
			return // client went away
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.mgr.shuttingDown() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleVarz serves the legacy metrics view: the same key set and the
// same rendering the old expvar.Map-backed handler produced, now
// projected from the obs registry (see varzJSON).
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, s.mgr.varzJSON())
}
