package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"ximd/internal/ckpt"
)

// The write-ahead job journal. Every lifecycle transition of a job is
// appended — and fsynced — to StateDir/jobs.log before the transition
// is acknowledged to anyone:
//
//	accepted  written before the 202 response (carries the full
//	          JobRequest, so a restarted process can rebuild the job)
//	started   written before execution begins (tells recovery to look
//	          for a checkpoint rather than plain re-enqueue)
//	terminal  written after the run archive append, before the
//	          done/failed state is published (tells recovery the job
//	          needs nothing)
//
// The file uses the archive.log/ckpt frame format (length + CRC32 +
// payload, payloads are single JSON objects), so kill -9 can only
// leave a torn tail, which replay discards. Replay reduces the record
// stream to the set of accepted-but-not-terminal jobs in acceptance
// order; the journal is then compacted to exactly those records, so
// its size is bounded by the live job set across restarts, and
// compacted again periodically at runtime as terminal records
// accumulate.

// journalRecord is one journal entry. Req is only present on
// "accepted" records.
type journalRecord struct {
	T   string      `json:"t"`
	ID  string      `json:"id"`
	Req *JobRequest `json:"req,omitempty"`
}

const (
	journalAccepted = "accepted"
	journalStarted  = "started"
	journalTerminal = "terminal"
)

// journalCompactEvery bounds runtime growth: after this many appended
// frames the manager rewrites the journal down to the live job set.
const journalCompactEvery = 4096

// replayJob is one journaled job that never reached a terminal state:
// what a crash left behind and recovery must finish.
type replayJob struct {
	id      string
	req     JobRequest
	started bool
}

// journal is the open write-ahead log.
type journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	appends int // frames since the last compaction
}

// openJournal opens (creating if absent) the journal, replays it, and
// compacts it to the pending set it returns. maxID is the largest
// numeric suffix among all journaled "j-N" ids, terminal ones
// included — the restarted process must never reissue an id a client
// may still be polling.
func openJournal(path string) (j *journal, pending []replayJob, maxID uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	payloads, _, _ := ckpt.ScanFrames(data)

	type entry struct {
		req     JobRequest
		started bool
	}
	order := []string{}
	live := map[string]*entry{}
	for _, p := range payloads {
		var rec journalRecord
		if err := json.Unmarshal(p, &rec); err != nil || rec.ID == "" {
			continue // a corrupt-but-CRC-valid frame cannot occur from our writer; skip defensively
		}
		if n, ok := strings.CutPrefix(rec.ID, "j-"); ok {
			if v, err := strconv.ParseUint(n, 10, 64); err == nil && v > maxID {
				maxID = v
			}
		}
		switch rec.T {
		case journalAccepted:
			if _, dup := live[rec.ID]; dup || rec.Req == nil {
				continue
			}
			live[rec.ID] = &entry{req: *rec.Req}
			order = append(order, rec.ID)
		case journalStarted:
			if e, ok := live[rec.ID]; ok {
				e.started = true
			}
		case journalTerminal:
			delete(live, rec.ID)
		}
	}
	for _, id := range order {
		if e, ok := live[id]; ok {
			pending = append(pending, replayJob{id: id, req: e.req, started: e.started})
		}
	}

	j = &journal{path: path}
	// Compact to the pending set: replay-of-replay sees the same state,
	// and the terminal records of finished jobs stop accumulating.
	var buf []byte
	for _, p := range pending {
		req := p.req
		buf = appendJournalFrame(buf, journalRecord{T: journalAccepted, ID: p.id, Req: &req})
		if p.started {
			buf = appendJournalFrame(buf, journalRecord{T: journalStarted, ID: p.id})
		}
	}
	if err := j.rewrite(buf); err != nil {
		return nil, nil, 0, err
	}
	return j, pending, maxID, nil
}

func appendJournalFrame(dst []byte, rec journalRecord) []byte {
	payload, err := json.Marshal(rec)
	if err != nil {
		// journalRecord marshals unconditionally; a failure here is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("serve: journal marshal: %v", err))
	}
	return ckpt.AppendFrame(dst, payload)
}

// rewrite atomically replaces the journal file with data and reopens
// the append handle: temp + fsync + rename + dir fsync, so a crash at
// any point leaves either the old or the new journal, never a partial.
func (j *journal) rewrite(data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("serve: journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("serve: journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if err := ckpt.SyncDir(filepath.Dir(j.path)); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	af, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	j.f = af
	j.appends = 0
	return nil
}

// append durably adds one record. On return the record is fsynced: the
// transition it describes may now be acknowledged. Returns whether the
// journal has grown enough that the owner should compact it.
func (j *journal) append(rec journalRecord) (wantCompact bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return false, fmt.Errorf("serve: journal is closed")
	}
	if _, err := j.f.Write(appendJournalFrame(nil, rec)); err != nil {
		return false, fmt.Errorf("serve: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return false, fmt.Errorf("serve: journal: %w", err)
	}
	j.appends++
	return j.appends >= journalCompactEvery, nil
}

// compact rewrites the journal to exactly the given live set.
func (j *journal) compact(pending []replayJob) error {
	var buf []byte
	for _, p := range pending {
		req := p.req
		buf = appendJournalFrame(buf, journalRecord{T: journalAccepted, ID: p.id, Req: &req})
		if p.started {
			buf = appendJournalFrame(buf, journalRecord{T: journalStarted, ID: p.id})
		}
	}
	return j.rewrite(buf)
}

// close releases the append handle. Journaled state is already
// durable.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}
