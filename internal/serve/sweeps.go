package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ximd/internal/archive"
	"ximd/internal/inject"
	"ximd/internal/obs"
	"ximd/internal/runner"
	"ximd/internal/sweep"
)

// SweepRequest is the body of POST /v1/sweeps: one base job plus the
// axes to vary. The expanded task list is the cross product of Injects
// and Seeds (inject outer, seed inner); an empty axis falls back to the
// base value, so {seeds:[1,2,3]} runs three seeds of the base spec and
// {} degenerates to a single run. Results always come back in
// submission order, one entry per task, regardless of which worker
// finished first — the sweep engine's ordering guarantee.
type SweepRequest struct {
	Base JobRequest `json:"base"`
	// Seeds are fault-injection seed variations.
	Seeds []int64 `json:"seeds,omitempty"`
	// Injects are fault-injection spec variations.
	Injects []string `json:"injects,omitempty"`
	// Detach submits every variant as a regular job through the bounded
	// queue and answers immediately with a sweep id plus the per-variant
	// job ids; poll GET /v1/sweeps/{id} for terminal states and the
	// individual job endpoints for result documents. The whole batch is
	// admitted atomically: if the queue cannot hold every variant the
	// request is rejected 429 and nothing runs.
	Detach bool `json:"detach,omitempty"`
}

// Variant is one expanded (seed, inject) point of a sweep
// cross-product. It is shared between the single-node sweep path and
// the fabric coordinator, which expands the same request through
// ExpandVariants so a fleet merge is variant-for-variant identical to
// a single-node sweep.
type Variant struct {
	// Name is the stable task label, "inject=%q/seed=%d".
	Name string
	Seed int64
	// Inject is the spec exactly as submitted; Canon its canonical form
	// (the archive key's inject axis).
	Inject string
	Canon  string
}

// ExpandVariants crosses the inject axis (outer) with the seed axis
// (inner); an empty axis falls back to the base value. Every inject
// variation is canonicalized up front, so the whole batch is rejected
// on the first bad spec — a sweep never partially validates. maxTasks
// <= 0 disables the fan-out cap.
func ExpandVariants(baseSeed int64, baseInject string, seeds []int64, injects []string, maxTasks int) ([]Variant, error) {
	if len(seeds) == 0 {
		seeds = []int64{baseSeed}
	}
	if len(injects) == 0 {
		injects = []string{baseInject}
	}
	if n := len(seeds) * len(injects); maxTasks > 0 && n > maxTasks {
		return nil, fmt.Errorf("sweep expands to %d tasks, limit %d", n, maxTasks)
	}
	variants := make([]Variant, 0, len(seeds)*len(injects))
	for i, inj := range injects {
		canon, err := inject.Canonicalize(inj)
		if err != nil {
			return nil, fmt.Errorf("injects[%d]: %w", i, err)
		}
		for _, seed := range seeds {
			variants = append(variants, Variant{
				Name:   fmt.Sprintf("inject=%q/seed=%d", inj, seed),
				Seed:   seed,
				Inject: inj,
				Canon:  canon,
			})
		}
	}
	return variants, nil
}

// SweepTaskResult is one entry of a sweep response, in submission order.
type SweepTaskResult struct {
	Name   string            `json:"name"`
	Seed   int64             `json:"seed"`
	Inject string            `json:"inject,omitempty"`
	Error  string            `json:"error,omitempty"`
	Result *runner.ResultDoc `json:"result,omitempty"`
}

// SweepResponse is the body of a completed sweep.
type SweepResponse struct {
	ProgramSHA256 string            `json:"program_sha256"`
	CacheHit      bool              `json:"cache_hit"`
	Results       []SweepTaskResult `json:"results"`
}

// sweepVariant is one expanded (seed, inject) point of a sweep or
// regression batch.
type sweepVariant struct {
	name   string
	seed   int64
	inject string
	// canon is the canonical form of inject — the archive key's inject
	// axis.
	canon string
	spec  runner.Spec
}

// expandSweep expands the cross product over a built base job through
// the shared ExpandVariants and attaches the concrete run spec each
// variant executes with.
func (s *Server) expandSweep(base *job, seeds []int64, injects []string) ([]sweepVariant, error) {
	expanded, err := ExpandVariants(base.spec.Seed, base.spec.Inject, seeds, injects, s.opts.MaxSweepTasks)
	if err != nil {
		return nil, err
	}
	variants := make([]sweepVariant, 0, len(expanded))
	for _, v := range expanded {
		sv := sweepVariant{
			name:   v.Name,
			seed:   v.Seed,
			inject: v.Inject,
			canon:  v.Canon,
			spec:   base.spec,
		}
		sv.spec.Seed = v.Seed
		sv.spec.Inject = v.Inject
		variants = append(variants, sv)
	}
	return variants, nil
}

// runSweepVariants executes the variants over the sweep worker pool.
// It returns the engine results, the per-variant result documents for
// the response (honouring the base job's profile flag; nil where the
// task failed), and the prepared archive records — one per variant,
// always carrying the fully profiled document, not yet appended. The
// caller decides whether and when to append them: sweeps record
// immediately, the regression gate compares first. parent, when
// non-nil, gets one "variant" child span per task wrapping its run.
func (s *Server) runSweepVariants(base *job, variants []sweepVariant, parent *obs.Span) ([]sweep.Result, []*runner.ResultDoc, []archive.Record) {
	n := len(variants)
	tasks := make([]sweep.Task, 0, n)
	docs := make([]*runner.ResultDoc, n)
	archDocs := make([]*runner.ResultDoc, n)
	for idx := range variants {
		spec := variants[idx].spec
		i := idx
		tasks = append(tasks, sweep.Task{Name: variants[idx].name, Run: func(ctx context.Context) (sweep.Outcome, error) {
			vs := parent.Child("variant")
			vs.SetAttr("name", variants[i].name)
			res, err := runner.Run(ctx, base.prog, spec, runner.Options{Span: vs})
			if err != nil {
				vs.SetAttr("error", err.Error())
				vs.Finish()
				return sweep.Outcome{}, err
			}
			vs.Finish()
			// The archive always gets the stall-attribution profile —
			// the baseline should carry everything the gate can compare
			// — while the response honours the request's profile flag.
			full := runner.NewResultDoc(res, base.peeks, true)
			archDocs[i] = &full
			doc := full
			if !base.profile {
				doc.Profile = nil
			}
			docs[i] = &doc
			return sweep.Outcome{Cycles: res.Cycles, Stats: res.Stats}, nil
		}})
	}

	results, _ := sweep.Run(s.mgr.rootCtx, tasks, sweep.Options{
		Workers:     s.opts.Workers,
		TaskTimeout: s.opts.JobTimeout,
	})
	s.mgr.met.sweepTasks.Add(uint64(len(tasks)))

	now := s.mgr.wallMS()
	recs := make([]archive.Record, n)
	for i, res := range results {
		s.mgr.met.cyclesSimmed.Add(res.Cycles)
		s.mgr.met.sweepTask.Observe(res.Duration.Seconds())
		if res.Err != nil {
			// A failed task may have raced its document into place
			// before the deadline fired; the failure verdict wins.
			docs[i], archDocs[i] = nil, nil
		}
		recs[i] = archive.Record{
			Key: archive.Key{
				ProgramSHA256: base.progSHA,
				Arch:          string(base.prog.Arch()),
				Seed:          variants[i].seed,
				Inject:        variants[i].canon,
			},
			ExitCode: runner.ExitCode(res.Err),
			Result:   archDocs[i],
			UnixMS:   now,
		}
		if res.Err != nil {
			recs[i].Error = res.Err.Error()
		}
	}
	return results, docs, recs
}

// handleSweep fans a batch of (seed, inject) variations of one program
// out over the sweep worker pool and answers synchronously with the
// results in submission order. Concurrent sweep requests beyond the
// configured bound get 429 + Retry-After, the same backpressure
// contract as the job queue.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.mgr.shuttingDown() {
		s.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	default:
		s.setRetryAfter(w)
		writeError(w, http.StatusTooManyRequests, errors.New("serve: sweep capacity in use"))
		return
	}

	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxSourceBytes*2))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Base.Trace {
		writeError(w, http.StatusBadRequest, errors.New("sweeps do not support trace=true"))
		return
	}
	base, status, err := s.buildJob(&req.Base)
	if err != nil {
		writeError(w, status, err)
		return
	}
	// The sweep root span: adopted from the coordinator's trace context
	// when the header is present, a fresh root otherwise.
	sc, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	sweepSpan := s.mgr.tr.Adopt(sc, "sweep")
	sweepSpan.SetAttr("digest", base.progSHA)
	sweepSpan.SetAttr("arch", string(base.prog.Arch()))
	if req.Detach {
		// Detached variants ride the job queue, not the synchronous
		// sweep pool; release the sweep slot before they even start.
		s.submitDetachedSweep(w, base, &req, sweepSpan)
		return
	}
	variants, err := s.expandSweep(base, req.Seeds, req.Injects)
	if err != nil {
		sweepSpan.SetAttr("error", err.Error())
		sweepSpan.Finish()
		writeError(w, http.StatusBadRequest, err)
		return
	}

	results, docs, recs := s.runSweepVariants(base, variants, sweepSpan)
	sweepSpan.Finish()
	w.Header().Set(obs.TraceHeader, obs.FormatTraceHeader(sweepSpan.Context()))
	s.mgr.met.sweepsRun.Inc()
	if s.mgr.arch != nil {
		for i := range recs {
			s.mgr.appendArchive(recs[i])
		}
	}

	resp := SweepResponse{ProgramSHA256: base.progSHA, CacheHit: base.cacheHit}
	for i, res := range results {
		out := SweepTaskResult{
			Name:   variants[i].name,
			Seed:   variants[i].seed,
			Inject: variants[i].inject,
			Result: docs[i],
		}
		if res.Err != nil {
			out.Error = res.Err.Error()
		}
		resp.Results = append(resp.Results, out)
	}
	writeJSON(w, http.StatusOK, resp)
}

// SweepSubmitResponse is the 202 body of a detached POST /v1/sweeps:
// the sweep id to poll plus the per-variant job ids in submission
// order, so a client (or the fabric coordinator, reconciling) can
// follow each variant through the regular job endpoints.
type SweepSubmitResponse struct {
	ID            string   `json:"id"`
	Status        State    `json:"status"`
	ProgramSHA256 string   `json:"program_sha256"`
	CacheHit      bool     `json:"cache_hit"`
	JobIDs        []string `json:"job_ids"`
}

// SweepVariantStatus is one entry of GET /v1/sweeps/{id}, in
// submission order.
type SweepVariantStatus struct {
	Name     string `json:"name"`
	Seed     int64  `json:"seed"`
	Inject   string `json:"inject,omitempty"`
	JobID    string `json:"job_id"`
	Status   State  `json:"status"`
	ExitCode *int   `json:"exit_code,omitempty"`
	Error    string `json:"error,omitempty"`
}

// SweepStatus is the body of GET /v1/sweeps/{id}: the aggregate state
// plus every variant's job id and terminal state — the id list clients
// previously had to track themselves from the submit response.
type SweepStatus struct {
	ID            string               `json:"id"`
	Status        State                `json:"status"`
	ProgramSHA256 string               `json:"program_sha256"`
	CacheHit      bool                 `json:"cache_hit"`
	Queued        int                  `json:"queued"`
	Running       int                  `json:"running"`
	Done          int                  `json:"done"`
	Failed        int                  `json:"failed"`
	Variants      []SweepVariantStatus `json:"variants"`
}

// submitDetachedSweep expands the cross product, builds one job per
// variant (cache hits make the repeat decode free), and admits the
// whole batch atomically: either every variant is accepted — and, with
// durability on, journaled — or the request is rejected and nothing
// runs.
func (s *Server) submitDetachedSweep(w http.ResponseWriter, base *job, req *SweepRequest, sweepSpan *obs.Span) {
	// The sweep span covers expansion and atomic admission; each member
	// job roots its own lifecycle subtree under it and finishes on its
	// own schedule (spans are data — children may outlive the parent).
	defer sweepSpan.Finish()
	variants, err := ExpandVariants(base.spec.Seed, base.spec.Inject, req.Seeds, req.Injects, s.opts.MaxSweepTasks)
	if err != nil {
		sweepSpan.SetAttr("error", err.Error())
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs := make([]*job, len(variants))
	for i, v := range variants {
		// Shallow copy: the slice fields are never mutated after submit,
		// so variants can share them.
		reqV := req.Base
		reqV.Seed = v.Seed
		reqV.Inject = v.Inject
		j, status, err := s.buildJob(&reqV)
		if err != nil {
			// Cannot happen for the seed/inject axes already validated by
			// ExpandVariants, but keep the door shut.
			sweepSpan.SetAttr("error", err.Error())
			writeError(w, status, err)
			return
		}
		j.span = sweepSpan.Child("job")
		jobs[i] = j
	}
	rec := &sweepRec{progSHA: base.progSHA, cacheHit: base.cacheHit, variants: variants, jobs: jobs}
	if err := s.mgr.submitSweep(jobs, rec); err != nil {
		sweepSpan.SetAttr("error", err.Error())
		switch {
		case errors.Is(err, ErrQueueFull):
			s.setRetryAfter(w)
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrShuttingDown):
			s.setRetryAfter(w)
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.mgr.met.sweepsRun.Inc()
	sweepSpan.SetAttr("sweep_id", rec.id)
	w.Header().Set(obs.TraceHeader, obs.FormatTraceHeader(sweepSpan.Context()))
	resp := SweepSubmitResponse{
		ID:            rec.id,
		Status:        StateQueued,
		ProgramSHA256: base.progSHA,
		CacheHit:      base.cacheHit,
	}
	for _, j := range jobs {
		resp.JobIDs = append(resp.JobIDs, j.id)
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// handleSweepStatus serves GET /v1/sweeps/{id} for detached sweeps.
func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.sweepStatus(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
