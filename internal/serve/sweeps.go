package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"ximd/internal/inject"
	"ximd/internal/runner"
	"ximd/internal/sweep"
)

// SweepRequest is the body of POST /v1/sweeps: one base job plus the
// axes to vary. The expanded task list is the cross product of Injects
// and Seeds (inject outer, seed inner); an empty axis falls back to the
// base value, so {seeds:[1,2,3]} runs three seeds of the base spec and
// {} degenerates to a single run. Results always come back in
// submission order, one entry per task, regardless of which worker
// finished first — the sweep engine's ordering guarantee.
type SweepRequest struct {
	Base JobRequest `json:"base"`
	// Seeds are fault-injection seed variations.
	Seeds []int64 `json:"seeds,omitempty"`
	// Injects are fault-injection spec variations.
	Injects []string `json:"injects,omitempty"`
}

// SweepTaskResult is one entry of a sweep response, in submission order.
type SweepTaskResult struct {
	Name   string            `json:"name"`
	Seed   int64             `json:"seed"`
	Inject string            `json:"inject,omitempty"`
	Error  string            `json:"error,omitempty"`
	Result *runner.ResultDoc `json:"result,omitempty"`
}

// SweepResponse is the body of a completed sweep.
type SweepResponse struct {
	ProgramSHA256 string            `json:"program_sha256"`
	CacheHit      bool              `json:"cache_hit"`
	Results       []SweepTaskResult `json:"results"`
}

// handleSweep fans a batch of (seed, inject) variations of one program
// out over the sweep worker pool and answers synchronously with the
// results in submission order. Concurrent sweep requests beyond the
// configured bound get 429 + Retry-After, the same backpressure
// contract as the job queue.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.mgr.shuttingDown() {
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	default:
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter.Seconds())))
		writeError(w, http.StatusTooManyRequests, errors.New("serve: sweep capacity in use"))
		return
	}

	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxSourceBytes*2))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Base.Trace {
		writeError(w, http.StatusBadRequest, errors.New("sweeps do not support trace=true"))
		return
	}
	base, status, err := s.buildJob(&req.Base)
	if err != nil {
		writeError(w, status, err)
		return
	}

	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []int64{req.Base.Seed}
	}
	injects := req.Injects
	if len(injects) == 0 {
		injects = []string{req.Base.Inject}
	}
	n := len(seeds) * len(injects)
	if n > s.opts.MaxSweepTasks {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sweep expands to %d tasks, limit %d", n, s.opts.MaxSweepTasks))
		return
	}

	type variant struct {
		name   string
		seed   int64
		inject string
		spec   runner.Spec
	}
	variants := make([]variant, 0, n)
	tasks := make([]sweep.Task, 0, n)
	docs := make([]*runner.ResultDoc, n)
	for i, inj := range injects {
		if inj != "" {
			// Each inject variation must parse; reject the whole batch
			// up front so a sweep never partially validates.
			if err := validInject(inj); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("injects[%d]: %w", i, err))
				return
			}
		}
		for _, seed := range seeds {
			v := variant{
				name:   fmt.Sprintf("inject=%q/seed=%d", inj, seed),
				seed:   seed,
				inject: inj,
				spec:   base.spec,
			}
			v.spec.Seed = seed
			v.spec.Inject = inj
			idx := len(variants)
			variants = append(variants, v)
			spec := v.spec
			tasks = append(tasks, sweep.Task{Name: v.name, Run: func(ctx context.Context) (sweep.Outcome, error) {
				res, err := runner.Run(ctx, base.prog, spec, runner.Options{})
				if err != nil {
					return sweep.Outcome{}, err
				}
				doc := runner.NewResultDoc(res, base.peeks, base.profile)
				docs[idx] = &doc
				return sweep.Outcome{Cycles: res.Cycles, Stats: res.Stats}, nil
			}})
		}
	}

	results, _ := sweep.Run(s.mgr.rootCtx, tasks, sweep.Options{
		Workers:     s.opts.Workers,
		TaskTimeout: s.opts.JobTimeout,
	})
	s.mgr.met.sweepsRun.Inc()
	s.mgr.met.sweepTasks.Add(uint64(len(tasks)))

	resp := SweepResponse{ProgramSHA256: base.progSHA, CacheHit: base.cacheHit}
	for i, res := range results {
		out := SweepTaskResult{
			Name:   variants[i].name,
			Seed:   variants[i].seed,
			Inject: variants[i].inject,
			Result: docs[i],
		}
		if res.Err != nil {
			out.Error = res.Err.Error()
			out.Result = nil
		}
		s.mgr.met.cyclesSimmed.Add(res.Cycles)
		s.mgr.met.sweepTask.Observe(res.Duration.Seconds())
		resp.Results = append(resp.Results, out)
	}
	writeJSON(w, http.StatusOK, resp)
}

// validInject reports whether an inject spec parses (seed 0 is enough:
// the grammar does not depend on the seed).
func validInject(spec string) error {
	_, err := inject.ParseSpec(spec, 0)
	return err
}
