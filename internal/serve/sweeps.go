package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ximd/internal/archive"
	"ximd/internal/inject"
	"ximd/internal/runner"
	"ximd/internal/sweep"
)

// SweepRequest is the body of POST /v1/sweeps: one base job plus the
// axes to vary. The expanded task list is the cross product of Injects
// and Seeds (inject outer, seed inner); an empty axis falls back to the
// base value, so {seeds:[1,2,3]} runs three seeds of the base spec and
// {} degenerates to a single run. Results always come back in
// submission order, one entry per task, regardless of which worker
// finished first — the sweep engine's ordering guarantee.
type SweepRequest struct {
	Base JobRequest `json:"base"`
	// Seeds are fault-injection seed variations.
	Seeds []int64 `json:"seeds,omitempty"`
	// Injects are fault-injection spec variations.
	Injects []string `json:"injects,omitempty"`
}

// SweepTaskResult is one entry of a sweep response, in submission order.
type SweepTaskResult struct {
	Name   string            `json:"name"`
	Seed   int64             `json:"seed"`
	Inject string            `json:"inject,omitempty"`
	Error  string            `json:"error,omitempty"`
	Result *runner.ResultDoc `json:"result,omitempty"`
}

// SweepResponse is the body of a completed sweep.
type SweepResponse struct {
	ProgramSHA256 string            `json:"program_sha256"`
	CacheHit      bool              `json:"cache_hit"`
	Results       []SweepTaskResult `json:"results"`
}

// sweepVariant is one expanded (seed, inject) point of a sweep or
// regression batch.
type sweepVariant struct {
	name   string
	seed   int64
	inject string
	// canon is the canonical form of inject — the archive key's inject
	// axis.
	canon string
	spec  runner.Spec
}

// expandSweep crosses the inject axis (outer) with the seed axis
// (inner) over a built base job; empty axes fall back to the base
// value. Every inject variation is canonicalized up front, so the whole
// batch is rejected on the first bad spec — a sweep never partially
// validates — and each variant carries the archive key's inject axis.
func (s *Server) expandSweep(base *job, seeds []int64, injects []string) ([]sweepVariant, error) {
	if len(seeds) == 0 {
		seeds = []int64{base.spec.Seed}
	}
	if len(injects) == 0 {
		injects = []string{base.spec.Inject}
	}
	if n := len(seeds) * len(injects); n > s.opts.MaxSweepTasks {
		return nil, fmt.Errorf("sweep expands to %d tasks, limit %d", n, s.opts.MaxSweepTasks)
	}
	variants := make([]sweepVariant, 0, len(seeds)*len(injects))
	for i, inj := range injects {
		canon, err := inject.Canonicalize(inj)
		if err != nil {
			return nil, fmt.Errorf("injects[%d]: %w", i, err)
		}
		for _, seed := range seeds {
			v := sweepVariant{
				name:   fmt.Sprintf("inject=%q/seed=%d", inj, seed),
				seed:   seed,
				inject: inj,
				canon:  canon,
				spec:   base.spec,
			}
			v.spec.Seed = seed
			v.spec.Inject = inj
			variants = append(variants, v)
		}
	}
	return variants, nil
}

// runSweepVariants executes the variants over the sweep worker pool.
// It returns the engine results, the per-variant result documents for
// the response (honouring the base job's profile flag; nil where the
// task failed), and the prepared archive records — one per variant,
// always carrying the fully profiled document, not yet appended. The
// caller decides whether and when to append them: sweeps record
// immediately, the regression gate compares first.
func (s *Server) runSweepVariants(base *job, variants []sweepVariant) ([]sweep.Result, []*runner.ResultDoc, []archive.Record) {
	n := len(variants)
	tasks := make([]sweep.Task, 0, n)
	docs := make([]*runner.ResultDoc, n)
	archDocs := make([]*runner.ResultDoc, n)
	for idx := range variants {
		spec := variants[idx].spec
		i := idx
		tasks = append(tasks, sweep.Task{Name: variants[idx].name, Run: func(ctx context.Context) (sweep.Outcome, error) {
			res, err := runner.Run(ctx, base.prog, spec, runner.Options{})
			if err != nil {
				return sweep.Outcome{}, err
			}
			// The archive always gets the stall-attribution profile —
			// the baseline should carry everything the gate can compare
			// — while the response honours the request's profile flag.
			full := runner.NewResultDoc(res, base.peeks, true)
			archDocs[i] = &full
			doc := full
			if !base.profile {
				doc.Profile = nil
			}
			docs[i] = &doc
			return sweep.Outcome{Cycles: res.Cycles, Stats: res.Stats}, nil
		}})
	}

	results, _ := sweep.Run(s.mgr.rootCtx, tasks, sweep.Options{
		Workers:     s.opts.Workers,
		TaskTimeout: s.opts.JobTimeout,
	})
	s.mgr.met.sweepTasks.Add(uint64(len(tasks)))

	now := s.mgr.wallMS()
	recs := make([]archive.Record, n)
	for i, res := range results {
		s.mgr.met.cyclesSimmed.Add(res.Cycles)
		s.mgr.met.sweepTask.Observe(res.Duration.Seconds())
		if res.Err != nil {
			// A failed task may have raced its document into place
			// before the deadline fired; the failure verdict wins.
			docs[i], archDocs[i] = nil, nil
		}
		recs[i] = archive.Record{
			Key: archive.Key{
				ProgramSHA256: base.progSHA,
				Arch:          string(base.prog.Arch()),
				Seed:          variants[i].seed,
				Inject:        variants[i].canon,
			},
			ExitCode: runner.ExitCode(res.Err),
			Result:   archDocs[i],
			UnixMS:   now,
		}
		if res.Err != nil {
			recs[i].Error = res.Err.Error()
		}
	}
	return results, docs, recs
}

// handleSweep fans a batch of (seed, inject) variations of one program
// out over the sweep worker pool and answers synchronously with the
// results in submission order. Concurrent sweep requests beyond the
// configured bound get 429 + Retry-After, the same backpressure
// contract as the job queue.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.mgr.shuttingDown() {
		s.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	default:
		s.setRetryAfter(w)
		writeError(w, http.StatusTooManyRequests, errors.New("serve: sweep capacity in use"))
		return
	}

	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxSourceBytes*2))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Base.Trace {
		writeError(w, http.StatusBadRequest, errors.New("sweeps do not support trace=true"))
		return
	}
	base, status, err := s.buildJob(&req.Base)
	if err != nil {
		writeError(w, status, err)
		return
	}
	variants, err := s.expandSweep(base, req.Seeds, req.Injects)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	results, docs, recs := s.runSweepVariants(base, variants)
	s.mgr.met.sweepsRun.Inc()
	if s.mgr.arch != nil {
		for i := range recs {
			s.mgr.appendArchive(recs[i])
		}
	}

	resp := SweepResponse{ProgramSHA256: base.progSHA, CacheHit: base.cacheHit}
	for i, res := range results {
		out := SweepTaskResult{
			Name:   variants[i].name,
			Seed:   variants[i].seed,
			Inject: variants[i].inject,
			Result: docs[i],
		}
		if res.Err != nil {
			out.Error = res.Err.Error()
		}
		resp.Results = append(resp.Results, out)
	}
	writeJSON(w, http.StatusOK, resp)
}
