package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"

	"ximd/internal/obs"
	"ximd/internal/runner"
)

// progCache is the content-addressed decoded-program cache. Programs
// are hashed at submission over exactly the bytes the client sent (plus
// the architecture), so a repeat submission skips the whole cold path —
// assembly, validation, and the fast-engine pre-decode — and reuses the
// immutable runner.Program (which wraps core.Decoded / vliw.Decoded).
// Correctness rests on two facts, both enforced by tests:
//
//   - a runner.Program is read-only after Load, so any number of
//     concurrent jobs can share one entry;
//   - a machine built from a shared decode table is architecturally
//     identical to one that decodes cold (TestCacheDifferential), so a
//     hit can never change a job's result, only its submit latency.
//
// Eviction is LRU with a fixed entry cap; hashes are never trusted
// across restarts (the cache is in-memory only), so stale entries
// cannot exist.
// progCache methods are not self-locking: the manager serializes get
// and put under its own mutex (the expensive Load on a miss happens
// outside the lock; a racing duplicate load is harmless — last put wins
// and both values are equivalent by construction).
type progCache struct {
	max     int
	entries map[string]*list.Element
	lru     list.List // front = most recently used
	hits    *obs.Counter
	misses  *obs.Counter
}

type cacheEntry struct {
	key  string
	prog *runner.Program
}

func newProgCache(max int, hits, misses *obs.Counter) *progCache {
	return &progCache{
		max:     max,
		entries: make(map[string]*list.Element),
		hits:    hits,
		misses:  misses,
	}
}

// programKey is the content address: sha256 over the architecture name,
// a zero separator, and the submitted program bytes (assembly text or
// binary image, exactly as sent).
func programKey(arch runner.Arch, source []byte) string {
	h := sha256.New()
	h.Write([]byte(arch))
	h.Write([]byte{0})
	h.Write(source)
	return hex.EncodeToString(h.Sum(nil))
}

// get returns the cached program for key, promoting it to most recently
// used. The caller must hold the manager's lock.
func (c *progCache) get(key string) (*runner.Program, bool) {
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).prog, true
}

// put inserts a loaded program, evicting the least recently used entry
// past the cap. The caller must hold the manager's lock.
func (c *progCache) put(key string, prog *runner.Program) {
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).prog = prog
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, prog: prog})
	for c.max > 0 && c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count (for /varz).
func (c *progCache) len() int { return c.lru.Len() }
