package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"net/http"
	"strings"
	"testing"
	"time"
)

// metricValue extracts the value of a single-sample series (counter or
// gauge) from a Prometheus text exposition body.
func metricValue(t *testing.T, body []byte, name string) (string, bool) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" "), true
		}
	}
	return "", false
}

// TestMetricsExposition drives a warm job, a cache-hit job, and a
// failing job through the service and holds GET /metrics to the
// expected counter values, histogram series, and content type.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8})
	waitTerminal(t, ts, submit(t, ts, tprocJob()).ID)
	waitTerminal(t, ts, submit(t, ts, tprocJob()).ID) // decoded-program cache hit
	fail := submit(t, ts, JobRequest{Source: spinSrc, MaxCycles: 100})
	waitTerminal(t, ts, fail.ID)

	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content-type = %q", ct)
	}

	wantValues := map[string]string{
		"ximdd_jobs_total":             "3",
		"ximdd_jobs_done_total":        "2",
		"ximdd_jobs_failed_total":      "1",
		"ximdd_cache_hits_total":       "1",
		"ximdd_cache_misses_total":     "2",
		"ximdd_cycles_simulated_total": "112", // 6 + 6 + 100
		"ximdd_jobs_running":           "0",
		"ximdd_queue_capacity":         "8",
		"ximdd_workers":                "1",
		"ximdd_cache_entries":          "2",
	}
	for name, want := range wantValues {
		got, ok := metricValue(t, body, name)
		if !ok {
			t.Errorf("metric %s missing from exposition", name)
		} else if got != want {
			t.Errorf("%s = %s, want %s", name, got, want)
		}
	}
	for _, hist := range []string{
		"ximdd_job_queue_wait_seconds",
		"ximdd_job_execute_seconds",
		"ximdd_job_total_seconds",
	} {
		if got, ok := metricValue(t, body, hist+"_count"); !ok || got != "3" {
			t.Errorf("%s_count = %q (found=%v), want 3", hist, got, ok)
		}
		if !bytes.Contains(body, []byte(hist+`_bucket{le="+Inf"} 3`)) {
			t.Errorf("%s has no +Inf bucket for 3 observations", hist)
		}
		if !bytes.Contains(body, []byte("# TYPE "+hist+" histogram")) {
			t.Errorf("%s has no TYPE header", hist)
		}
	}
	if got, ok := metricValue(t, body, "ximdd_job_decode_miss_seconds_count"); !ok || got != "2" {
		t.Errorf("decode miss count = %q (found=%v), want 2", got, ok)
	}
	if got, ok := metricValue(t, body, "ximdd_job_decode_hit_seconds_count"); !ok || got != "1" {
		t.Errorf("decode hit count = %q (found=%v), want 1", got, ok)
	}
}

// TestVarzByteCompatibleWithExpvar holds the /varz view to the old
// wire format: rebuilding the document as a real expvar.Map must
// reproduce the served bytes exactly (sorted keys, `{"k": v, ...}`
// rendering), and the counter values must be right.
func TestVarzByteCompatibleWithExpvar(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	waitTerminal(t, ts, submit(t, ts, tprocJob()).ID)

	resp, body := getBody(t, ts.URL+"/varz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("varz status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var vars map[string]int64
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("varz is not flat int JSON: %v: %s", err, body)
	}
	for key, want := range map[string]int64{
		"jobs_done": 1, "jobs_failed": 0, "cache_misses": 1,
		"cycles_simulated": 6, "queue_capacity": 2, "workers": 1,
	} {
		if vars[key] != want {
			t.Errorf("varz %s = %d, want %d", key, vars[key], want)
		}
	}
	// Byte-for-byte: the same keys and values rendered by expvar.Map
	// (the implementation the old handler delegated to) must reproduce
	// the response exactly.
	m := new(expvar.Map)
	for key, val := range vars {
		i := new(expvar.Int)
		i.Set(val)
		m.Set(key, i)
	}
	if want := m.String(); string(body) != want {
		t.Errorf("varz rendering diverged from expvar.Map:\n got %s\nwant %s", body, want)
	}
}

// TestJobSpansNDJSON checks the span breakdown of a completed job:
// four named spans, non-negative durations, and the decode span
// labelled with its cache outcome.
func TestJobSpansNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	sr := submit(t, ts, tprocJob())
	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.QueuedMS == nil || st.RunMS == nil {
		t.Fatalf("terminal status missing durations: queued_ms=%v run_ms=%v", st.QueuedMS, st.RunMS)
	}
	if *st.QueuedMS < 0 || *st.RunMS < 0 {
		t.Fatalf("negative durations: queued_ms=%v run_ms=%v", *st.QueuedMS, *st.RunMS)
	}

	resp, body := getBody(t, ts.URL+"/v1/jobs/"+sr.ID+"/spans")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spans status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q", ct)
	}
	var spans []SpanLine
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		var line SpanLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		spans = append(spans, line)
	}
	wantOrder := []string{"queue_wait", "decode", "execute", "total"}
	if len(spans) != len(wantOrder) {
		t.Fatalf("%d spans, want %d: %+v", len(spans), len(wantOrder), spans)
	}
	for i, want := range wantOrder {
		if spans[i].Span != want {
			t.Errorf("spans[%d] = %q, want %q", i, spans[i].Span, want)
		}
		if spans[i].Ms < 0 {
			t.Errorf("span %s has negative duration %v", spans[i].Span, spans[i].Ms)
		}
	}
	if spans[1].Detail != "cache_miss" {
		t.Errorf("decode detail = %q, want cache_miss (fresh server)", spans[1].Detail)
	}
	if spans[0].Ms != *st.QueuedMS || spans[2].Ms != *st.RunMS {
		t.Errorf("spans disagree with status: queue %v vs %v, execute %v vs %v",
			spans[0].Ms, *st.QueuedMS, spans[2].Ms, *st.RunMS)
	}

	// A second submission decodes from the cache; its span says so.
	again := submit(t, ts, tprocJob())
	waitTerminal(t, ts, again.ID)
	_, body = getBody(t, ts.URL+"/v1/jobs/"+again.ID+"/spans")
	if !bytes.Contains(body, []byte(`"detail":"cache_hit"`)) {
		t.Errorf("cached job's decode span not labelled cache_hit: %s", body)
	}

	// Unknown jobs 404.
	resp, _ = getBody(t, ts.URL+"/v1/jobs/j-999/spans")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job spans status = %d, want 404", resp.StatusCode)
	}
}

// TestSpansConflictBeforeTerminal asserts spans answer 409 +
// Retry-After while the job is still running.
func TestSpansConflictBeforeTerminal(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 2,
		JobTimeout: time.Minute,
		RetryAfter: 5 * time.Second,
	})
	sr := submit(t, ts, JobRequest{Source: spinSrc, MaxCycles: 4_000_000_000})
	resp, body := getBody(t, ts.URL+"/v1/jobs/"+sr.ID+"/spans")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("running job spans status = %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Errorf("Retry-After = %q, want \"5\"", ra)
	}
	// Cancel the spin job so the deferred cleanup is instant.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_ = s.Shutdown(ctx)
}

// TestFlightDumpOnFailure is the service-level postmortem contract: a
// failing job that asked for a flight window gets its last N cycles in
// the status document; a successful job does not.
func TestFlightDumpOnFailure(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	sr := submit(t, ts, JobRequest{Source: spinSrc, MaxCycles: 100, Flight: 5})
	st, _ := waitTerminal(t, ts, sr.ID)
	if st.Status != StateFailed {
		t.Fatalf("status = %s, want failed", st.Status)
	}
	if len(st.Flight) != 5 {
		t.Fatalf("flight window = %d records, want 5", len(st.Flight))
	}
	for i, rec := range st.Flight {
		if want := uint64(95 + i); rec.Cycle != want {
			t.Errorf("flight[%d].Cycle = %d, want %d", i, rec.Cycle, want)
		}
		if len(rec.PC) != 1 {
			t.Errorf("flight[%d] has %d PCs, want 1", i, len(rec.PC))
		}
	}

	ok := tprocJob()
	ok.Flight = 5
	st, _ = waitTerminal(t, ts, submit(t, ts, ok).ID)
	if st.Status != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Flight != nil {
		t.Errorf("successful job leaked its flight window (%d records)", len(st.Flight))
	}

	// Negative flight is a 400 at submission.
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Source: spinSrc, Flight: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("flight=-1 status = %d, want 400", resp.StatusCode)
	}
}

// TestProfileOption asserts the profile block rides the result
// document when requested — for jobs and for sweeps — and stays off
// otherwise.
func TestProfileOption(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 4})
	plain := submit(t, ts, tprocJob())
	st, _ := waitTerminal(t, ts, plain.ID)
	if st.Result.Profile != nil {
		t.Error("profile block present without profile=true")
	}

	prof := tprocJob()
	prof.Profile = true
	st, _ = waitTerminal(t, ts, submit(t, ts, prof).ID)
	if st.Status != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Result.Profile == nil {
		t.Fatal("profile=true produced no profile block")
	}
	if got := len(st.Result.Profile.FUs); got != 4 {
		t.Fatalf("profile has %d FU rows, want 4", got)
	}
	for _, fu := range st.Result.Profile.FUs {
		sum := fu.Busy + fu.SyncWait + fu.IdleNop + fu.MemStall + fu.Failed + fu.Halted
		if sum != st.Result.Cycles {
			t.Errorf("FU%d classes sum to %d, want %d", fu.FU, sum, st.Result.Cycles)
		}
	}

	sweepReq := SweepRequest{Base: prof, Seeds: []int64{1, 2}}
	resp, body := postJSON(t, ts.URL+"/v1/sweeps", sweepReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d: %s", resp.StatusCode, body)
	}
	var sw SweepResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	for i, r := range sw.Results {
		if r.Result == nil || r.Result.Profile == nil {
			t.Errorf("sweep result %d missing profile block", i)
		}
	}
}
