package workloads

import (
	"math/rand"
	"reflect"
	"testing"

	"ximd/internal/core"
	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/vliw"
)

// Engine equivalence over the real workload suite: every instance, in
// both its XIMD and VLIW variants, is executed on the fast and the
// reference engines and must match in cycle count, statistics, the full
// trace stream (including the executed parcels), final registers, and
// final memory. This is the acceptance net for the pre-decoded engines —
// the random-program differentials in core and vliw cover the error
// paths; this covers the programs the paper's numbers come from.

// ximdCapture retains a deep copy of every core cycle record, including
// the executed parcels (which trace.Recorder drops).
type ximdCapture struct{ recs []core.CycleRecord }

func (c *ximdCapture) Cycle(rec *core.CycleRecord) {
	cp := *rec
	cp.PC = append([]isa.Addr(nil), rec.PC...)
	cp.CC = append([]bool(nil), rec.CC...)
	cp.CCValid = append([]bool(nil), rec.CCValid...)
	cp.SS = append([]isa.Sync(nil), rec.SS...)
	cp.Halted = append([]bool(nil), rec.Halted...)
	cp.Parcels = append([]isa.Parcel(nil), rec.Parcels...)
	c.recs = append(c.recs, cp)
}

// vliwCapture retains a deep copy of every VLIW cycle record.
type vliwCapture struct{ recs []vliw.CycleRecord }

func (c *vliwCapture) Cycle(rec *vliw.CycleRecord) {
	cp := *rec
	cp.CC = append([]bool(nil), rec.CC...)
	c.recs = append(c.recs, cp)
}

// differentialInstances builds one instance of every workload in the
// package, covering each paper example and each execution style.
func differentialInstances() []*Instance {
	r := rand.New(rand.NewSource(23))
	data := make([]int32, 64)
	for i := range data {
		data[i] = int32(r.Intn(400) - 200)
	}
	y, z, u := livermoreVectors(48)
	params := LivermoreParams{N: 48, Q: 5, R: 3, T: -2}
	xf := make([]float32, 32)
	yf := make([]float32, 32)
	for i := range xf {
		xf[i] = float32(r.Intn(100)) / 4
		yf[i] = float32(r.Intn(100)) / 8
	}
	return []*Instance{
		TPROC(3, 5, 7, 2),
		TPROCScalar(3, 5, 7, 2),
		MinMax(data),
		Bitcount(data),
		BitcountPadded(data),
		LL12(append([]int32(nil), y[:40]...)),
		LL12Scalar(append([]int32(nil), y[:40]...)),
		LL1(y, z, params),
		LL3(y, z, 48),
		LL7(y, z, u, params),
		Saxpy(2.5, xf, yf),
		IOPorts(IOPortsSS, 11, 5, 40),
		IOPorts(IOPortsFlags, 11, 5, 40),
		IOPorts(IOPortsVLIW, 11, 5, 40),
		PartialBarrier(10, 6, 40, 9),
		PartialBarrierFull(10, 6, 40, 9),
	}
}

func errStr(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// compareSharedMem asserts two shared memories hold identical words and
// identical access counters. Non-shared memories are skipped (none of
// the workloads use one today).
func compareSharedMem(t *testing.T, fast, ref mem.Memory) {
	t.Helper()
	fm, okF := fast.(*mem.Shared)
	rm, okR := ref.(*mem.Shared)
	if !okF || !okR {
		return
	}
	fl, fs := fm.Counters()
	rl, rs := rm.Counters()
	if fl != rl || fs != rs {
		t.Fatalf("memory counter divergence: fast %d loads/%d stores, reference %d/%d", fl, fs, rl, rs)
	}
	if fm.Size() != rm.Size() {
		t.Fatalf("memory size divergence: %d vs %d", fm.Size(), rm.Size())
	}
	for a := uint32(0); a < fm.Size(); a++ {
		if fm.Peek(a) != rm.Peek(a) {
			t.Fatalf("M(%d) divergence: fast %d, reference %d", a, fm.Peek(a), rm.Peek(a))
		}
	}
}

func runXIMDEngine(t *testing.T, inst *Instance, engine core.EngineKind) (*core.Machine, *ximdCapture, mem.Memory, uint64, error) {
	t.Helper()
	env := inst.NewEnv()
	tr := &ximdCapture{}
	m, err := core.New(inst.XIMD, core.Config{Memory: env.Mem, Tracer: tr, Engine: engine})
	if err != nil {
		t.Fatalf("%s: New(engine=%d): %v", inst.Name, engine, err)
	}
	for r, v := range inst.Regs {
		m.Regs().Poke(r, v)
	}
	cycles, runErr := m.Run()
	if runErr == nil && env.Check != nil {
		if cerr := env.Check(m.Regs()); cerr != nil {
			t.Fatalf("%s: engine %d result check: %v", inst.Name, engine, cerr)
		}
	}
	return m, tr, env.Mem, cycles, runErr
}

func runVLIWEngine(t *testing.T, inst *Instance, engine core.EngineKind) (*vliw.Machine, *vliwCapture, mem.Memory, uint64, error) {
	t.Helper()
	env := inst.NewEnv()
	tr := &vliwCapture{}
	m, err := vliw.New(inst.VLIW, vliw.Config{Memory: env.Mem, Tracer: tr, Engine: engine})
	if err != nil {
		t.Fatalf("%s: vliw.New(engine=%d): %v", inst.Name, engine, err)
	}
	for r, v := range inst.Regs {
		m.Regs().Poke(r, v)
	}
	cycles, runErr := m.Run()
	if runErr == nil && env.Check != nil {
		if cerr := env.Check(m.Regs()); cerr != nil {
			t.Fatalf("%s: engine %d result check: %v", inst.Name, engine, cerr)
		}
	}
	return m, tr, env.Mem, cycles, runErr
}

func TestWorkloadEnginesEquivalent(t *testing.T) {
	for _, inst := range differentialInstances() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			if inst.XIMD != nil {
				fm, ftr, fmem, fcyc, ferr := runXIMDEngine(t, inst, core.EngineFast)
				rm, rtr, rmem, rcyc, rerr := runXIMDEngine(t, inst, core.EngineReference)
				if fcyc != rcyc {
					t.Fatalf("XIMD cycle divergence: fast %d, reference %d", fcyc, rcyc)
				}
				if errStr(ferr) != errStr(rerr) {
					t.Fatalf("XIMD error divergence:\nfast: %s\nref:  %s", errStr(ferr), errStr(rerr))
				}
				if !reflect.DeepEqual(fm.Stats(), rm.Stats()) {
					t.Fatalf("XIMD stats divergence:\nfast: %+v\nref:  %+v", fm.Stats(), rm.Stats())
				}
				if fm.Regs().Stats() != rm.Regs().Stats() {
					t.Fatalf("XIMD regfile stats divergence:\nfast: %+v\nref:  %+v",
						fm.Regs().Stats(), rm.Regs().Stats())
				}
				if !fm.Partition().Equal(rm.Partition()) {
					t.Fatalf("XIMD partition divergence: fast %v, reference %v", fm.Partition(), rm.Partition())
				}
				for fu := 0; fu < inst.XIMD.NumFU; fu++ {
					if fm.PC(fu) != rm.PC(fu) || fm.CC(fu) != rm.CC(fu) {
						t.Fatalf("XIMD FU%d state divergence", fu)
					}
				}
				if len(ftr.recs) != len(rtr.recs) {
					t.Fatalf("XIMD trace length divergence: fast %d, reference %d", len(ftr.recs), len(rtr.recs))
				}
				for i := range ftr.recs {
					if !reflect.DeepEqual(ftr.recs[i], rtr.recs[i]) {
						t.Fatalf("XIMD trace divergence at cycle %d:\nfast: %+v\nref:  %+v",
							i, ftr.recs[i], rtr.recs[i])
					}
				}
				for reg := 0; reg < isa.NumRegs; reg++ {
					if fm.Regs().Peek(uint8(reg)) != rm.Regs().Peek(uint8(reg)) {
						t.Fatalf("XIMD r%d divergence: fast %d, reference %d",
							reg, fm.Regs().Peek(uint8(reg)), rm.Regs().Peek(uint8(reg)))
					}
				}
				compareSharedMem(t, fmem, rmem)
			}
			if inst.VLIW != nil {
				fm, ftr, fmem, fcyc, ferr := runVLIWEngine(t, inst, core.EngineFast)
				rm, rtr, rmem, rcyc, rerr := runVLIWEngine(t, inst, core.EngineReference)
				if fcyc != rcyc {
					t.Fatalf("VLIW cycle divergence: fast %d, reference %d", fcyc, rcyc)
				}
				if errStr(ferr) != errStr(rerr) {
					t.Fatalf("VLIW error divergence:\nfast: %s\nref:  %s", errStr(ferr), errStr(rerr))
				}
				if !reflect.DeepEqual(fm.Stats(), rm.Stats()) {
					t.Fatalf("VLIW stats divergence:\nfast: %+v\nref:  %+v", fm.Stats(), rm.Stats())
				}
				if fm.Regs().Stats() != rm.Regs().Stats() {
					t.Fatalf("VLIW regfile stats divergence:\nfast: %+v\nref:  %+v",
						fm.Regs().Stats(), rm.Regs().Stats())
				}
				if fm.PC() != rm.PC() || fm.Done() != rm.Done() {
					t.Fatalf("VLIW sequencer divergence")
				}
				if !reflect.DeepEqual(ftr.recs, rtr.recs) {
					t.Fatalf("VLIW trace divergence (%d vs %d records)", len(ftr.recs), len(rtr.recs))
				}
				for reg := 0; reg < isa.NumRegs; reg++ {
					if fm.Regs().Peek(uint8(reg)) != rm.Regs().Peek(uint8(reg)) {
						t.Fatalf("VLIW r%d divergence: fast %d, reference %d",
							reg, fm.Regs().Peek(uint8(reg)), rm.Regs().Peek(uint8(reg)))
					}
				}
				compareSharedMem(t, fmem, rmem)
			}
		})
	}
}
