package workloads

import (
	"math"
	"math/rand"
	"testing"
)

func TestSaxpyBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, n := range []int{1, 7, 64} {
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = float32(r.NormFloat64()) * 100
			y[i] = float32(r.NormFloat64()) * 100
		}
		inst := Saxpy(2.5, x, y)
		if _, err := RunXIMD(inst, nil); err != nil {
			t.Errorf("saxpy n=%d XIMD: %v", n, err)
		}
		if _, err := RunVLIW(inst, nil); err != nil {
			t.Errorf("saxpy n=%d VLIW: %v", n, err)
		}
	}
}

func TestSaxpySpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	x := []float32{0, 1, -1, inf, 1e-38, 3.4e38}
	y := []float32{1, -1, 0, -inf, 1e-38, 3.4e38}
	// NaN-producing inputs are excluded: NaN payloads compare bit-exactly
	// only when both sides canonicalize identically, and Inf + -Inf is
	// exercised instead (a*Inf + -Inf with a=1 gives NaN...); use a=0.5.
	inst := Saxpy(0.5, x, y)
	if _, err := RunXIMD(inst, nil); err != nil {
		t.Fatalf("saxpy specials: %v", err)
	}
}

func TestSaxpyThroughput(t *testing.T) {
	n := 128
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(n - i)
	}
	m, err := RunXIMD(Saxpy(1.5, x, y), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 cycles per element + prologue/halt.
	if got, limit := m.Cycle(), uint64(4*n+8); got > limit {
		t.Errorf("saxpy n=%d took %d cycles, want <= %d", n, got, limit)
	}
}
