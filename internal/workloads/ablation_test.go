package workloads

import (
	"math/rand"
	"testing"
)

func TestBitcountPaddedCorrect(t *testing.T) {
	cases := [][]int32{
		{0, 0, 0, 0},
		{1, 2, 3, 4},
		{-1, -1, -1, -1},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
	}
	for _, data := range cases {
		inst := BitcountPadded(data)
		if _, err := RunXIMD(inst, nil); err != nil {
			t.Errorf("padded XIMD %v: %v", data, err)
		}
		if _, err := RunVLIW(inst, nil); err != nil {
			t.Errorf("padded VLIW %v: %v", data, err)
		}
	}
}

func TestBitcountPaddedRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 10; iter++ {
		n := 4 * (1 + r.Intn(10))
		data := make([]int32, n)
		for i := range data {
			data[i] = int32(r.Uint32())
		}
		if _, err := RunXIMD(BitcountPadded(data), nil); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestBitcountPaddedRejectsBadLength(t *testing.T) {
	for _, data := range [][]int32{nil, {1}, {1, 2, 3}, {1, 2, 3, 4, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("len %d accepted", len(data))
				}
			}()
			BitcountPadded(data)
		}()
	}
}

// TestPaddingVsBarrierCrossover pins the Example 2 vs Example 3 design
// tradeoff: on sparse data the barrier version's early exits win; on
// dense 32-bit data the padded version's lock-step worst case wins.
func TestPaddingVsBarrierCrossover(t *testing.T) {
	const n = 24
	sparse := make([]int32, n) // tiny values: inner loops exit after a few bits
	dense := make([]int32, n)  // full-width values: inner loops run ~32 bits
	r := rand.New(rand.NewSource(32))
	for i := range sparse {
		sparse[i] = int32(r.Intn(8))
		dense[i] = int32(r.Uint32() | 0x80000000) // ensure bit 31 set
	}

	run := func(inst *Instance) uint64 {
		t.Helper()
		m, err := RunXIMD(inst, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m.Cycle()
	}
	sparseBarrier := run(Bitcount(sparse))
	sparsePadded := run(BitcountPadded(sparse))
	denseBarrier := run(Bitcount(dense))
	densePadded := run(BitcountPadded(dense))

	t.Logf("sparse: barrier=%d padded=%d | dense: barrier=%d padded=%d",
		sparseBarrier, sparsePadded, denseBarrier, densePadded)
	if sparseBarrier >= sparsePadded {
		t.Errorf("sparse data: barrier (%d) should beat padding (%d)", sparseBarrier, sparsePadded)
	}
	if densePadded >= denseBarrier {
		t.Errorf("dense data: padding (%d) should beat barrier (%d)", densePadded, denseBarrier)
	}
	// Padded cost is data-independent.
	if sparsePadded != densePadded {
		t.Errorf("padded version should be data-independent: %d vs %d", sparsePadded, densePadded)
	}
}

// TestStaticSizeTradeoff: padding trades instruction memory for
// synchronization — the unrolled padded program is much larger.
func TestStaticSizeTradeoff(t *testing.T) {
	barrier := Bitcount([]int32{1, 2, 3, 4}).XIMD
	padded := BitcountPadded([]int32{1, 2, 3, 4}).XIMD
	if padded.Len() <= barrier.Len() {
		t.Errorf("padded static size %d not larger than barrier %d",
			padded.Len(), barrier.Len())
	}
	// Occupied parcels magnify the gap: the unrolled body fills every
	// column of every row, while the barrier version's address space is
	// sparse.
	if padded.OccupiedParcels() <= 2*barrier.OccupiedParcels() {
		t.Errorf("padded parcels %d not substantially larger than barrier %d",
			padded.OccupiedParcels(), barrier.OccupiedParcels())
	}
	t.Logf("static size: barrier=%d rows/%d parcels, padded=%d rows/%d parcels",
		barrier.Len(), barrier.OccupiedParcels(), padded.Len(), padded.OccupiedParcels())
}
