package workloads

import (
	"testing"

	"ximd/internal/trace"
)

func TestPartialBarrierCorrect(t *testing.T) {
	cases := [][4]int32{
		{1, 1, 1, 1},
		{3, 5, 7, 2},
		{10, 2, 2, 10},
		{4, 4, 4, 4},
	}
	for _, c := range cases {
		if _, err := RunXIMD(PartialBarrier(c[0], c[1], c[2], c[3]), nil); err != nil {
			t.Errorf("partial %v: %v", c, err)
		}
		if _, err := RunXIMD(PartialBarrierFull(c[0], c[1], c[2], c[3]), nil); err != nil {
			t.Errorf("full %v: %v", c, err)
		}
	}
}

// TestPartialBarrierOverlapsGroups: with asymmetric groups (A: short
// produce + long consume; B: long produce + short consume), the partial
// barriers let group A's consumer start while group B still produces;
// full barriers serialize the critical paths.
func TestPartialBarrierOverlapsGroups(t *testing.T) {
	const a0, la, b0, lb = 2, 40, 40, 2
	mp, err := RunXIMD(PartialBarrier(a0, la, b0, lb), nil)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := RunXIMD(PartialBarrierFull(a0, la, b0, lb), nil)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Cycle() >= mf.Cycle() {
		t.Errorf("partial barriers (%d cycles) not faster than full barriers (%d cycles)",
			mp.Cycle(), mf.Cycle())
	}
	t.Logf("asymmetric groups: partial=%d full=%d (%.2fx)",
		mp.Cycle(), mf.Cycle(), float64(mf.Cycle())/float64(mp.Cycle()))
	// With symmetric work the two variants should be near-identical.
	sp, err := RunXIMD(PartialBarrier(10, 10, 10, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := RunXIMD(PartialBarrierFull(10, 10, 10, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := int64(sf.Cycle()) - int64(sp.Cycle()); diff < 0 || diff > 2 {
		t.Errorf("symmetric groups: partial=%d full=%d, want within 2 cycles", sp.Cycle(), sf.Cycle())
	}
}

// TestPartialBarrierGroupJoin: the trace must show group A joined (its
// two FUs in one SSET) while group B is still split — two concurrent
// barrier scopes, as Section 3.3 describes.
func TestPartialBarrierGroupJoin(t *testing.T) {
	rec := &trace.Recorder{}
	if _, err := RunXIMD(PartialBarrier(2, 30, 30, 2), rec); err != nil {
		t.Fatal(err)
	}
	sawOverlap := false
	for _, r := range rec.Records {
		if r.Partition.SameSSET(0, 1) && !r.Partition.SameSSET(2, 3) && !r.Partition.SameSSET(0, 2) {
			sawOverlap = true
			break
		}
	}
	if !sawOverlap {
		t.Error("never observed group A joined while group B split")
	}
}
