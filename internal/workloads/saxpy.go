package workloads

import (
	"fmt"

	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
)

// SAXPY exercises the floating-point datapath (the second of the two
// data types of Section 2.2, "32-bit float and 32-bit integer"):
// y[k] = a*x[k] + y[k] over float32 vectors, scheduled VLIW-style at
// four cycles per element with the loads, multiply/address, add/index,
// and store/branch overlapped across functional units.
//
// Verification is bit-exact: the simulator's fmult/fadd are IEEE-754
// single precision in the same evaluation order as the Go reference.
const saxpySrc = `
.machine vliw
.fus 4
.const XB = 256
.const YB = 2048
.reg k    = r1
.reg nl   = r3
.reg a    = r4
.reg x    = r10
.reg y    = r11
.reg t    = r12
.reg t2   = r13
.reg addr = r14

pre: iadd #0, #0, k                                    => goto L0
L0:  load #XB, k, x | load #YB, k, y | nop | eq k, nl  => goto L1
L1:  fmult x, a, t | iadd k, #YB, addr                 => goto L2
L2:  fadd t, y, t2 | iadd k, #1, k                     => goto L3
L3:  store t2, addr                                    => if cc3 E L0
E:   nop                                               => halt
`

// SaxpyRef computes the reference result in the simulator's evaluation
// order.
func SaxpyRef(a float32, x, y []float32) []float32 {
	out := make([]float32, len(x))
	for k := range x {
		t := x[k] * a
		out[k] = t + y[k]
	}
	return out
}

// Saxpy builds the float workload; x and y must have equal positive
// length (at most 512 elements).
func Saxpy(a float32, x, y []float32) *Instance {
	if len(x) == 0 || len(x) != len(y) || len(x) > 512 {
		panic("workloads: Saxpy needs equal-length vectors of 1..512 elements")
	}
	prog := mustAssemble("saxpy", saxpySrc)
	inst := &Instance{
		Name: "saxpy",
		XIMD: prog,
		VLIW: mustVLIW("saxpy", prog),
		Regs: map[uint8]isa.Word{
			3: isa.WordFromInt(int32(len(x) - 1)),
			4: isa.WordFromFloat(a),
		},
	}
	want := SaxpyRef(a, x, y)
	inst.NewEnv = func() *Env {
		m := mem.NewShared(0)
		for i, v := range x {
			m.Poke(256+uint32(i), isa.WordFromFloat(v))
		}
		for i, v := range y {
			m.Poke(2048+uint32(i), isa.WordFromFloat(v))
		}
		return &Env{
			Mem: m,
			Check: func(regs *regfile.File) error {
				for k, w := range want {
					got := m.Peek(2048 + uint32(k))
					if got != isa.WordFromFloat(w) {
						return fmt.Errorf("y[%d] = %g (%#x), want %g (%#x)",
							k, got.Float(), uint32(got), w, uint32(isa.WordFromFloat(w)))
					}
				}
				return nil
			},
		}
	}
	return inst
}
