package workloads

import (
	"fmt"

	"ximd/internal/device"
	"ximd/internal/mem"
	"ximd/internal/regfile"
)

// The Figure 12 workload: two concurrent processes on an 8-FU XIMD.
// Process 1 (SSET {0,1,2,3}) reads values a, b, c in order from input
// port IN1, polling until each is non-zero; Process 2 (SSET {4,5,6,7})
// reads x, y, z from IN2. Each process also consumes the other's values
// through the global register file and writes them, in order, to its own
// output port. The availability of each value is published on one
// synchronization bit, exactly as the paper encodes it:
//
//	a → SS0   b → SS1   c → SS2   x → SS4   y → SS5   z → SS6
//
// A producer FU acquires its value and then parks in a DONE self-loop at
// the common hold address, holding its signal at DONE "whenever the
// corresponding variable is ready to be used"; consumers test the bit in
// a one-cycle non-blocking spin. A standard ALL-SS barrier at the hold
// address ends the program.
//
// Memory map: IN1 = 4000, IN2 = 4001, OUT1 = 4010, OUT2 = 4011 (plus
// FLAGA..FLAGZ at 4100.. for the memory-flag variant).
const (
	ioIN1   = 4000
	ioIN2   = 4001
	ioOUT1  = 4010
	ioOUT2  = 4011
	ioFLAGS = 4100 // a,b,c,x,y,z flags at 4100..4105
)

// ioportsSSSrc signals value availability on the synchronization bits
// (the paper's preferred mechanism, Figure 12).
const ioportsSSSrc = `
.fus 8
.const IN1  = 4000
.const IN2  = 4001
.const OUT1 = 4010
.const OUT2 = 4011
.reg ra = r1
.reg rb = r2
.reg rc = r3
.reg rx = r4
.reg ry = r5
.reg rz = r6

; ---- Process 1: FUs 0-3 ----
.fu 0
p0:  load #IN1, #0, ra
p1:  ne ra, #0
p2:  nop              => if cc0 hold p0
.org 40
hold: nop             => if allss end hold   !done
end:  nop             => halt

.fu 1
g0:  nop              => if ss0 q0 g0
q0:  load #IN1, #0, rb
q1:  ne rb, #0
q2:  nop              => if cc1 hold q0
.org 40
hold: nop             => if allss end hold   !done
end:  nop             => halt

.fu 2
h0:  nop              => if ss1 s0 h0
s0:  load #IN1, #0, rc
s1:  ne rc, #0
s2:  nop              => if cc2 hold s0
.org 40
hold: nop             => if allss end hold   !done
end:  nop             => halt

.fu 3
w0:  nop              => if ss4 w1 w0
w1:  store rx, #OUT1  => goto w2
w2:  nop              => if ss5 w3 w2
w3:  store ry, #OUT1  => goto w4
w4:  nop              => if ss6 w5 w4
w5:  store rz, #OUT1  => goto hold
.org 40
hold: nop             => if allss end hold   !done
end:  nop             => halt

; ---- Process 2: FUs 4-7 ----
.fu 4
u0:  load #IN2, #0, rx
u1:  ne rx, #0
u2:  nop              => if cc4 hold u0
.org 40
hold: nop             => if allss end hold   !done
end:  nop             => halt

.fu 5
v0:  nop              => if ss4 v1 v0
v1:  load #IN2, #0, ry
v2:  ne ry, #0
v3:  nop              => if cc5 hold v1
.org 40
hold: nop             => if allss end hold   !done
end:  nop             => halt

.fu 6
m0:  nop              => if ss5 m1 m0
m1:  load #IN2, #0, rz
m2:  ne rz, #0
m3:  nop              => if cc6 hold m1
.org 40
hold: nop             => if allss end hold   !done
end:  nop             => halt

.fu 7
x0:  nop              => if ss0 x1 x0
x1:  store ra, #OUT2  => goto x2
x2:  nop              => if ss1 x3 x2
x3:  store rb, #OUT2  => goto x4
x4:  nop              => if ss2 x5 x4
x5:  store rc, #OUT2  => goto hold
.org 40
hold: nop             => if allss end hold   !done
end:  nop             => halt
`

// ioportsFlagSrc is the same computation with availability signaled
// through memory flags instead of sync bits: each producer spends an
// extra store publishing its flag, and each consumer needs a three-cycle
// load/compare/branch poll instead of the one-cycle SS test. This is the
// register/memory-flag alternative the paper's Figure 12 discussion
// rejects for performance.
const ioportsFlagSrc = `
.fus 8
.const IN1   = 4000
.const IN2   = 4001
.const OUT1  = 4010
.const OUT2  = 4011
.const FLAGA = 4100
.const FLAGB = 4101
.const FLAGC = 4102
.const FLAGX = 4103
.const FLAGY = 4104
.const FLAGZ = 4105
.reg ra = r1
.reg rb = r2
.reg rc = r3
.reg rx = r4
.reg ry = r5
.reg rz = r6
.reg t1 = r11
.reg t2 = r12
.reg t3 = r13
.reg t5 = r15
.reg t6 = r16
.reg t7 = r17

.fu 0
p0:  load #IN1, #0, ra
p1:  ne ra, #0
p2:  nop               => if cc0 p3 p0
p3:  store #1, #FLAGA  => goto hold
.org 40
hold: nop              => if allss end hold   !done
end:  nop              => halt

.fu 1
g0:  load #FLAGA, #0, t1
g1:  ne t1, #0
g2:  nop               => if cc1 q0 g0
q0:  load #IN1, #0, rb
q1:  ne rb, #0
q2:  nop               => if cc1 q3 q0
q3:  store #1, #FLAGB  => goto hold
.org 40
hold: nop              => if allss end hold   !done
end:  nop              => halt

.fu 2
h0:  load #FLAGB, #0, t2
h1:  ne t2, #0
h2:  nop               => if cc2 s0 h0
s0:  load #IN1, #0, rc
s1:  ne rc, #0
s2:  nop               => if cc2 s3 s0
s3:  store #1, #FLAGC  => goto hold
.org 40
hold: nop              => if allss end hold   !done
end:  nop              => halt

.fu 3
w0:  load #FLAGX, #0, t3
w1:  ne t3, #0
w2:  nop               => if cc3 w3 w0
w3:  store rx, #OUT1   => goto w4
w4:  load #FLAGY, #0, t3
w5:  ne t3, #0
w6:  nop               => if cc3 w7 w4
w7:  store ry, #OUT1   => goto w8
w8:  load #FLAGZ, #0, t3
w9:  ne t3, #0
wa:  nop               => if cc3 wb w8
wb:  store rz, #OUT1   => goto hold
.org 40
hold: nop              => if allss end hold   !done
end:  nop              => halt

.fu 4
u0:  load #IN2, #0, rx
u1:  ne rx, #0
u2:  nop               => if cc4 u3 u0
u3:  store #1, #FLAGX  => goto hold
.org 40
hold: nop              => if allss end hold   !done
end:  nop              => halt

.fu 5
v0:  load #FLAGX, #0, t5
v1:  ne t5, #0
v2:  nop               => if cc5 v3 v0
v3:  load #IN2, #0, ry
v4:  ne ry, #0
v5:  nop               => if cc5 v6 v3
v6:  store #1, #FLAGY  => goto hold
.org 40
hold: nop              => if allss end hold   !done
end:  nop              => halt

.fu 6
m0:  load #FLAGY, #0, t6
m1:  ne t6, #0
m2:  nop               => if cc6 m3 m0
m3:  load #IN2, #0, rz
m4:  ne rz, #0
m5:  nop               => if cc6 m6 m3
m6:  store #1, #FLAGZ  => goto hold
.org 40
hold: nop              => if allss end hold   !done
end:  nop              => halt

.fu 7
x0:  load #FLAGA, #0, t7
x1:  ne t7, #0
x2:  nop               => if cc7 x3 x0
x3:  store ra, #OUT2   => goto x4
x4:  load #FLAGB, #0, t7
x5:  ne t7, #0
x6:  nop               => if cc7 x7 x4
x7:  store rb, #OUT2   => goto x8
x8:  load #FLAGC, #0, t7
x9:  ne t7, #0
xa:  nop               => if cc7 xb x8
xb:  store rc, #OUT2   => goto hold
.org 40
hold: nop              => if allss end hold   !done
end:  nop              => halt
`

// ioportsVLIWSrc is the single-stream baseline: one sequencer polls the
// ports in a fixed static order — the pessimistic serialization that
// Section 1.3 ascribes to VLIW processors facing unpredictable
// interfaces.
const ioportsVLIWSrc = `
.machine vliw
.fus 8
.const IN1  = 4000
.const IN2  = 4001
.const OUT1 = 4010
.const OUT2 = 4011
.reg ra = r1
.reg rb = r2
.reg rc = r3
.reg rx = r4
.reg ry = r5
.reg rz = r6

a0: load #IN1, #0, ra   => goto a1
a1: ne ra, #0           => goto a2
a2: nop                 => if cc0 b0 a0
b0: load #IN2, #0, rx   => goto b1
b1: ne rx, #0           => goto b2
b2: nop                 => if cc0 b3 b0
b3: store rx, #OUT1 | store ra, #OUT2 => goto c0
c0: load #IN1, #0, rb   => goto c1
c1: ne rb, #0           => goto c2
c2: nop                 => if cc0 d0 c0
d0: load #IN2, #0, ry   => goto d1
d1: ne ry, #0           => goto d2
d2: nop                 => if cc0 d3 d0
d3: store ry, #OUT1 | store rb, #OUT2 => goto e0
e0: load #IN1, #0, rc   => goto e1
e1: ne rc, #0           => goto e2
e2: nop                 => if cc0 f0 e0
f0: load #IN2, #0, rz   => goto f1
f1: ne rz, #0           => goto f2
f2: nop                 => if cc0 f3 f0
f3: store rz, #OUT1 | store rc, #OUT2 => goto fin
fin: nop                => halt
`

// IOPortsVariant selects the synchronization mechanism of the Figure 12
// workload.
type IOPortsVariant int

const (
	// IOPortsSS publishes value availability on the sync bits (XIMD).
	IOPortsSS IOPortsVariant = iota
	// IOPortsFlags publishes availability through memory flags (XIMD).
	IOPortsFlags
	// IOPortsVLIW polls ports in a fixed order on a single stream.
	IOPortsVLIW
)

// String returns the variant name.
func (v IOPortsVariant) String() string {
	switch v {
	case IOPortsSS:
		return "ss"
	case IOPortsFlags:
		return "memflags"
	case IOPortsVLIW:
		return "vliw"
	}
	return "unknown"
}

// IOPorts builds the Figure 12 workload. Port readiness schedules are
// drawn deterministically from the seed with inter-arrival gaps in
// [minGap, maxGap] cycles; IN1 delivers the values 101, 102, 103 (a, b,
// c) and IN2 delivers 201, 202, 203 (x, y, z). The checker verifies that
// OUT1 received exactly x, y, z in order and OUT2 exactly a, b, c.
func IOPorts(variant IOPortsVariant, seed int64, minGap, maxGap uint64) *Instance {
	var src, name string
	switch variant {
	case IOPortsSS:
		src, name = ioportsSSSrc, "ioports-ss"
	case IOPortsFlags:
		src, name = ioportsFlagSrc, "ioports-memflags"
	case IOPortsVLIW:
		src, name = ioportsVLIWSrc, "ioports-vliw"
	default:
		panic("workloads: unknown IOPorts variant")
	}
	prog := mustAssemble(name, src)
	inst := &Instance{Name: name, XIMD: prog}
	if variant == IOPortsVLIW {
		inst.VLIW = mustVLIW(name, prog)
	}
	inst.NewEnv = func() *Env {
		in1 := device.NewInPort(device.Schedule(seed, 3, minGap, maxGap, 100))
		in2 := device.NewInPort(device.Schedule(seed+1, 3, minGap, maxGap, 200))
		out1 := device.NewOutPort()
		out2 := device.NewOutPort()
		m := mem.NewShared(0)
		mustMap(m, ioIN1, in1)
		mustMap(m, ioIN2, in2)
		mustMap(m, ioOUT1, out1)
		mustMap(m, ioOUT2, out2)
		return &Env{
			Mem: m,
			Check: func(regs *regfile.File) error {
				if err := expectPort(out1, []int32{201, 202, 203}); err != nil {
					return fmt.Errorf("OUT1: %w", err)
				}
				if err := expectPort(out2, []int32{101, 102, 103}); err != nil {
					return fmt.Errorf("OUT2: %w", err)
				}
				if in1.Remaining() != 0 || in2.Remaining() != 0 {
					return fmt.Errorf("unconsumed port items: IN1 %d, IN2 %d", in1.Remaining(), in2.Remaining())
				}
				return nil
			},
		}
	}
	return inst
}

func mustMap(m *mem.Shared, base uint32, dev mem.Device) {
	if err := m.Map(base, 1, dev); err != nil {
		panic("workloads: " + err.Error())
	}
}

func expectPort(p *device.OutPort, want []int32) error {
	got := p.Writes()
	if len(got) != len(want) {
		return fmt.Errorf("received %d writes, want %d", len(got), len(want))
	}
	for i, w := range got {
		if w.Value.Int() != want[i] {
			return fmt.Errorf("write %d = %d, want %d", i, w.Value.Int(), want[i])
		}
	}
	return nil
}
