package workloads

import (
	"ximd/internal/isa"
	"ximd/internal/regfile"
)

// ll12Src is Livermore Loop 12 (Section 3.1),
//
//	DO 12 k = 1, n
//	12  X(k) = Y(k+1) - Y(k)
//
// software-pipelined onto four functional units: the two-instruction
// kernel (K1, K0) retires one loop iteration every two cycles, with the
// store of iteration i overlapped with the load and exit test of
// iteration i+1. Control is identical in every parcel — this is the
// fully synchronous VLIW-style execution model the paper prescribes for
// vectorizable code, so the identical program runs on both machines.
//
// Y is at 256 (n+2 words, the pipelined epilogue reads one word past the
// live data), X at 2048. Host initialization: r2 = n, r3 = n-1.
const ll12Src = `
.machine vliw
.fus 4
.const YB  = 256
.const YB1 = 257
.const XB  = 2048
.reg k  = r1
.reg n  = r2
.reg nl = r3
.reg y0 = r10
.reg y1 = r11
.reg t  = r12
.reg xa = r13

start: load #YB, #0, y0 | nop | nop | iadd #0, #0, k               => goto P0
P0:    load #YB1, k, y1 | nop | eq k, nl                           => goto K1
K1:    isub y1, y0, t | iadd y1, #0, y0 | iadd k, #XB, xa | iadd k, #1, k => goto K0
K0:    load #YB1, k, y1 | store t, xa | eq k, nl                   => if cc2 E K1
E:     nop                                                         => halt
`

// ll12ScalarSrc is the sequential single-FU baseline: eight cycles per
// iteration with no overlap.
const ll12ScalarSrc = `
.fus 1
.const YB  = 256
.const YB1 = 257
.const XB  = 2048
.reg k  = r1
.reg n  = r2
.reg y0 = r10
.reg y1 = r11
.reg t  = r12
.reg xa = r13

.fu 0
s0:  iadd #0, #0, k
s1:  load #YB, k, y0
s2:  load #YB1, k, y1
s3:  isub y1, y0, t
s4:  iadd k, #XB, xa
s5:  store t, xa
s6:  iadd k, #1, k
s7:  ge k, n
s8:  nop => if cc0 fin s1
fin: nop => halt
`

// LL12Ref computes the reference X for Livermore Loop 12.
func LL12Ref(y []int32) []int32 {
	x := make([]int32, len(y)-1)
	for k := range x {
		x[k] = y[k+1] - y[k]
	}
	return x
}

func ll12Instance(name, src string, y []int32) *Instance {
	if len(y) < 2 {
		panic("workloads: LL12 requires at least two Y elements")
	}
	n := int32(len(y) - 1) // number of X elements produced
	prog := mustAssemble(name, src)
	inst := &Instance{
		Name: name,
		XIMD: prog,
		VLIW: mustVLIW(name, prog),
		Regs: map[uint8]isa.Word{
			2: isa.WordFromInt(n),
			3: isa.WordFromInt(n - 1),
		},
	}
	want := LL12Ref(y)
	inst.NewEnv = func() *Env {
		m := sharedMem(256, y)
		return &Env{
			Mem: m,
			Check: func(regs *regfile.File) error {
				return expectInts(m, 2048, want)
			},
		}
	}
	return inst
}

// LL12 builds the software-pipelined Livermore Loop 12 workload: X has
// len(y)-1 elements.
func LL12(y []int32) *Instance { return ll12Instance("ll12", ll12Src, y) }

// LL12Scalar builds the sequential single-FU baseline.
func LL12Scalar(y []int32) *Instance { return ll12Instance("ll12-scalar", ll12ScalarSrc, y) }
