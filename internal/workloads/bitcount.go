package workloads

import (
	"math/bits"

	"ximd/internal/isa"
	"ximd/internal/regfile"
)

// bitcountSrc is Example 3 — BITCOUNT1, the explicit barrier
// synchronization program — transcribed from the paper's listing with the
// same address layout (main loop 00–08, barrier and store pipeline at
// 10–15, cleanup at 30). Four copies of the data-dependent inner bit-count
// loop run as four independent instruction streams, then join at the
// ALL-SS barrier, and the four outer-loop results are stored by a
// software-pipelined sequence at 11–15.
//
// Indexing is zero-based (the paper's k starts at 1 with one-based
// arrays); D0..D3 are the addresses of D[0..3] and B0..B3 of B[0..3], as
// in the paper. Two small deviations from the listing, documented in
// EXPERIMENTS.md: the outer-loop continuation test is "lt t, #8" rather
// than the paper's "lt t, 4" (with t = n-k elements unprocessed at the
// test, another full 4-element group exists only when t >= 8 — the
// paper's own guard "le n, #8" at 00 uses the same threshold), and the
// cleanup code at 30, which the paper omits ("Clean Up Code ... not
// shown"), is implemented on FU0 with FU1-3 waiting on SS0.
//
// Result semantics (implied by the listing's "iadd #0,#0,b" reset at 15):
// for each full group of four, B[k+i] holds the ones count of
// D[k..k+i]; for the cleanup tail, B[j] holds the ones count from the
// tail's start through D[j]. BitcountRef implements the same function.
const bitcountSrc = `
.fus 4
.const D0 = 512
.const D1 = 513
.const D2 = 514
.const D3 = 515
.const B0 = 1024
.const B1 = 1025
.const B2 = 1026
.const B3 = 1027
.reg k  = r1
.reg n  = r2
.reg a  = r3
.reg b  = r4
.reg t  = r5
.reg b0 = r10
.reg b1 = r11
.reg b2 = r12
.reg b3 = r13
.reg d0 = r20
.reg d1 = r21
.reg d2 = r22
.reg d3 = r23
.reg t0 = r30
.reg t1 = r31
.reg t2 = r32
.reg t3 = r33

.fu 0
L00: le n, #8                              !done
L01: nop               => if cc0 C30 L02   !done
L02: iadd #0, #0, b0
L03: load #D0, k, d0
L04: eq d0, #0
L05: and d0, #1, t0    => if cc0 L10 L06
L06: eq #0, t0
L07: shr d0, #1, d0    => if cc0 L04 L08
L08: iadd b0, #1, b0   => goto L04
.org 16
L10: nop               => if allss L11 L10 !done
L11: iadd b, b0, b                         !done
L12: iadd b, b1, b                         !done
L13: iadd b, b2, b                         !done
L14: iadd b, b3, b                         !done
L15: iadd k, #4, k     => if cc3 C30 L02   !done
.org 48
C30: ge k, n           => goto C31
C31: nop               => if cc0 CFIN C32
C32: load #D0, k, d0   => goto C33
C33: eq d0, #0         => goto C34
C34: and d0, #1, t0    => if cc0 C3A C35
C35: eq #0, t0         => goto C36
C36: shr d0, #1, d0    => if cc0 C33 C37
C37: iadd b, #1, b     => goto C33
C3A: iadd k, #B0, a    => goto C3B
C3B: store b, a        => goto C3C
C3C: iadd k, #1, k     => goto C30
CFIN: nop              => if allss CEND CFIN !done
CEND: nop              => halt

.fu 1
L00: iadd #0, #0, k                        !done
L01: nop               => if cc0 C30 L02   !done
L02: iadd #0, #0, b1
L03: load #D1, k, d1
L04: eq d1, #0
L05: and d1, #1, t1    => if cc1 L10 L06
L06: eq #0, t1
L07: shr d1, #1, d1    => if cc1 L04 L08
L08: iadd b1, #1, b1   => goto L04
.org 16
L10: nop               => if allss L11 L10 !done
L11: nop                                   !done
L12: store b, a                            !done
L13: store b, a                            !done
L14: store b, a                            !done
L15: store b, a        => if cc3 C30 L02   !done
.org 48
C30: nop               => if ss0 CFIN C30
.org 59
CFIN: nop              => if allss CEND CFIN !done
CEND: nop              => halt

.fu 2
L00: iadd #0, #0, b                        !done
L01: nop               => if cc0 C30 L02   !done
L02: iadd #0, #0, b2
L03: load #D2, k, d2
L04: eq d2, #0
L05: and d2, #1, t2    => if cc2 L10 L06
L06: eq #0, t2
L07: shr d2, #1, d2    => if cc2 L04 L08
L08: iadd b2, #1, b2   => goto L04
.org 16
L10: nop               => if allss L11 L10 !done
L11: iadd k, #B0, a                        !done
L12: iadd k, #B1, a                        !done
L13: iadd k, #B2, a                        !done
L14: iadd k, #B3, a                        !done
L15: iadd #0, #0, b    => if cc3 C30 L02   !done
.org 48
C30: nop               => if ss0 CFIN C30
.org 59
CFIN: nop              => if allss CEND CFIN !done
CEND: nop              => halt

.fu 3
L00: store #0, #B0                         !done
L01: nop               => if cc0 C30 L02   !done
L02: iadd #0, #0, b3
L03: load #D3, k, d3
L04: eq d3, #0
L05: and d3, #1, t3    => if cc3 L10 L06
L06: eq #0, t3
L07: shr d3, #1, d3    => if cc3 L04 L08
L08: iadd b3, #1, b3   => goto L04
.org 16
L10: nop               => if allss L11 L10 !done
L11: nop                                   !done
L12: nop                                   !done
L13: isub n, k, t                          !done
L14: lt t, #8                              !done
L15: nop               => if cc3 C30 L02   !done
.org 48
C30: nop               => if ss0 CFIN C30
.org 59
CFIN: nop              => if allss CEND CFIN !done
CEND: nop              => halt
`

// bitcountVLIWSrc is the single-stream VLIW baseline computing the same
// function: the four data-dependent inner loops run one after another
// through the single sequencer instead of concurrently.
const bitcountVLIWSrc = `
.machine vliw
.fus 4
.const D0 = 512
.const B0 = 1024
.reg k  = r1
.reg n  = r2
.reg a  = r3
.reg b  = r4
.reg t  = r5
.reg j  = r7
.reg d0 = r20
.reg t0 = r30

W0:  iadd #0, #0, k | iadd #0, #0, b          => goto W1
W1:  nop | nop | le n, #8                     => goto W2
W2:  nop                                      => if cc2 T1 G0

G0:  iadd #0, #0, b | isub n, k, t            => goto G1
G1:  iadd #0, #0, j | lt t, #8                => goto GE
GE:  load #D0, k, d0                          => goto GB
GB:  eq d0, #0                                => goto GB1
GB1: and d0, #1, t0                           => if cc0 GS GB2
GB2: eq #0, t0                                => goto GB3
GB3: shr d0, #1, d0                           => if cc0 GB GB4
GB4: iadd b, #1, b                            => goto GB
GS:  iadd k, #B0, a                           => goto GS1
GS1: store b, a | iadd k, #1, k | iadd j, #1, j => goto GS2
GS2: nop | nop | nop | eq j, #4               => goto GS3
GS3: nop                                      => if cc3 GDONE GE
GDONE: nop                                    => if cc1 TR G0

TR:  iadd #0, #0, b                           => goto T1
T1:  nop | nop | ge k, n                      => goto T2
T2:  nop                                      => if cc2 FIN TE
TE:  load #D0, k, d0                          => goto TB
TB:  eq d0, #0                                => goto TB1
TB1: and d0, #1, t0                           => if cc0 TS TB2
TB2: eq #0, t0                                => goto TB3
TB3: shr d0, #1, d0                           => if cc0 TB TB4
TB4: iadd b, #1, b                            => goto TB
TS:  iadd k, #B0, a                           => goto TS1
TS1: store b, a | iadd k, #1, k               => goto T1
FIN: nop                                      => halt
`

// BitcountRef computes the reference output of BITCOUNT1: for each full
// group of four elements, B[k+i] = popcount(D[k]..D[k+i]); the tail after
// the last full group restarts the running count at the tail's first
// element.
func BitcountRef(data []int32) []int32 {
	n := len(data)
	out := make([]int32, n)
	ones := func(v int32) int32 { return int32(bits.OnesCount32(uint32(v))) }
	k := 0
	if n > 8 {
		for {
			var b int32
			for i := 0; i < 4; i++ {
				b += ones(data[k+i])
				out[k+i] = b
			}
			t := n - k
			k += 4
			if t < 8 {
				break
			}
		}
	}
	var b int32
	for ; k < n; k++ {
		b += ones(data[k])
		out[k] = b
	}
	return out
}

// Bitcount builds the Example 3 workload over the given data. The data
// region begins at 512 and the output array B at 1024; data length is
// capped by the gap (512 words).
func Bitcount(data []int32) *Instance {
	if len(data) > 512 {
		panic("workloads: Bitcount data exceeds the 512-word region")
	}
	inst := &Instance{
		Name: "bitcount",
		XIMD: mustAssemble("bitcount", bitcountSrc),
		VLIW: mustVLIW("bitcount-vliw", mustAssemble("bitcount-vliw", bitcountVLIWSrc)),
		Regs: map[uint8]isa.Word{2: isa.WordFromInt(int32(len(data)))},
	}
	want := BitcountRef(data)
	inst.NewEnv = func() *Env {
		m := sharedMem(512, data)
		return &Env{
			Mem: m,
			Check: func(regs *regfile.File) error {
				return expectInts(m, 1024, want)
			},
		}
	}
	return inst
}
