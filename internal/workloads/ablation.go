package workloads

import (
	"fmt"
	"math/bits"
	"strings"

	"ximd/internal/isa"
	"ximd/internal/regfile"
)

// BitcountPadded is the Example 2 style alternative to BITCOUNT1: instead
// of data-dependent inner loops joined by a barrier (Example 3), every
// path is padded to the worst case — the inner bit loop is fully unrolled
// to all 32 bit positions, branchlessly (b += d&1; d >>= 1), so all four
// functional units stay in lock step and the program is pure VLIW-style
// code with no synchronization at all.
//
// This is the paper's Section 3.2/3.3 design tradeoff made measurable:
//
//   - equal-length padding: no synchronization cost, but every element
//     pays the 32-bit worst case, and the unrolled body inflates static
//     code size;
//   - barrier (Bitcount): early exit per element, but busy-wait cycles at
//     the join and the barrier rows themselves.
//
// The crossover: sparse data (few set bits → early exits) favors the
// barrier version; dense 32-bit data favors padding. The xbench ablation
// experiment sweeps this.
//
// Semantics: data length must be a positive multiple of 4; B[k+i] is the
// ones count of D[k..k+i] within each group of four (the same per-group
// prefix the main loop of BITCOUNT1 computes). BitcountPaddedRef is the
// reference.

// bitcountPaddedSrc generates the fully unrolled VLIW source.
func bitcountPaddedSrc() string {
	var b strings.Builder
	b.WriteString(`
.machine vliw
.fus 4
.const D0 = 512
.const D1 = 513
.const D2 = 514
.const D3 = 515
.const B0 = 1024
.const B1 = 1025
.const B2 = 1026
.const B3 = 1027
.reg k  = r1
.reg n  = r2
.reg a  = r3
.reg b  = r4
.reg b0 = r10
.reg b1 = r11
.reg b2 = r12
.reg b3 = r13
.reg d0 = r20
.reg d1 = r21
.reg d2 = r22
.reg d3 = r23
.reg t0 = r30
.reg t1 = r31
.reg t2 = r32
.reg t3 = r33

W0: iadd #0, #0, k                                        => goto W1
W1: nop | nop | ge k, n                                   => goto W2
W2: nop                                                   => if cc2 FIN G0
G0: iadd #0, #0, b0 | iadd #0, #0, b1 | iadd #0, #0, b2 | iadd #0, #0, b3 => goto G1
G1: load #D0, k, d0 | load #D1, k, d1 | load #D2, k, d2 | load #D3, k, d3
`)
	// 32 unrolled, branchless bit steps; every row keeps all four FUs in
	// lock step.
	for i := 0; i < 32; i++ {
		fmt.Fprintf(&b, "\tand d0, #1, t0 | and d1, #1, t1 | and d2, #1, t2 | and d3, #1, t3\n")
		fmt.Fprintf(&b, "\tiadd b0, t0, b0 | iadd b1, t1, b1 | iadd b2, t2, b2 | iadd b3, t3, b3\n")
		fmt.Fprintf(&b, "\tshr d0, #1, d0 | shr d1, #1, d1 | shr d2, #1, d2 | shr d3, #1, d3\n")
	}
	b.WriteString(`
S0: iadd #0, #0, b                                        => goto S1
S1: iadd b, b0, b | nop | iadd k, #B0, a                  => goto S2
S2: iadd b, b1, b | store b, a | iadd k, #B1, a           => goto S3
S3: iadd b, b2, b | store b, a | iadd k, #B2, a           => goto S4
S4: iadd b, b3, b | store b, a | iadd k, #B3, a           => goto S5
S5: iadd k, #4, k | store b, a                            => goto W1
FIN: nop                                                  => halt
`)
	return b.String()
}

// BitcountPaddedRef computes per-group-of-4 prefix ones counts.
func BitcountPaddedRef(data []int32) []int32 {
	out := make([]int32, len(data))
	for k := 0; k < len(data); k += 4 {
		var b int32
		for i := 0; i < 4 && k+i < len(data); i++ {
			b += int32(bits.OnesCount32(uint32(data[k+i])))
			out[k+i] = b
		}
	}
	return out
}

// BitcountPadded builds the equal-path-length variant; len(data) must be
// a positive multiple of 4 (no cleanup path exists in the padded code).
func BitcountPadded(data []int32) *Instance {
	if len(data) == 0 || len(data)%4 != 0 {
		panic("workloads: BitcountPadded requires a positive multiple of 4 elements")
	}
	if len(data) > 512 {
		panic("workloads: BitcountPadded data exceeds the 512-word region")
	}
	prog := mustAssemble("bitcount-padded", bitcountPaddedSrc())
	inst := &Instance{
		Name: "bitcount-padded",
		XIMD: prog,
		VLIW: mustVLIW("bitcount-padded", prog),
		Regs: map[uint8]isa.Word{2: isa.WordFromInt(int32(len(data)))},
	}
	want := BitcountPaddedRef(data)
	inst.NewEnv = func() *Env {
		m := sharedMem(512, data)
		return &Env{
			Mem: m,
			Check: func(regs *regfile.File) error {
				return expectInts(m, 1024, want)
			},
		}
	}
	return inst
}
