package workloads

import (
	"fmt"
	"strings"

	"ximd/internal/isa"
	"ximd/internal/regfile"
)

// PartialBarrier exercises the generalization at the end of Section 3.3:
// "The barrier synchronization mechanism can be generalized to include
// synchronizations between only some of the program threads. Also,
// multiple barrier synchronizations can take place among different
// program threads."
//
// Two independent producer/consumer groups run concurrently on a 4-FU
// machine: group A = {FU0 producer, FU1 consumer} synchronizes on
// allss{0,1}, group B = {FU2, FU3} on allss{2,3}, at the same barrier
// address but with different condition masks. Each producer accumulates
// over a parameterized loop; each consumer waits at its group's partial
// barrier and then consumes the produced value over its own loop. A full
// ALL-SS barrier ends the program.
//
// The Full variant replaces both partial barriers with plain ALL-SS:
// every consumer then waits for the slower group's producer, serializing
// the groups' critical paths — the measurable cost of not having partial
// barriers.
//
// Parameters (host-poked): r10 = producer-A iterations, r14 = consumer-A
// iterations, r12 = producer-B iterations, r15 = consumer-B iterations
// (all >= 1). Results: r21 = 3*a0*la, r23 = 5*b0*lb.

func partialBarrierSrc(full bool) string {
	groupA, groupB := "allss{0,1}", "allss{2,3}"
	if full {
		groupA, groupB = "allss", "allss"
	}
	src := `
.fus 4
.fu 0
	iadd #0, #0, r11
PL:	isub r10, #1, r10
	iadd r11, #3, r11
	gt r10, #0
	nop => if cc0 PL BAR
BAR:	nop => if @GA@ REST BAR   !done
REST:	nop => goto GBAR
.org 11
GBAR:	nop => if allss END GBAR   !done
END:	nop => halt

.fu 1
	nop => goto BAR
.org 5
BAR:	nop => if @GA@ CL BAR   !done
CL:	iadd #0, #0, r21
CB:	iadd r21, r11, r21
	isub r14, #1, r14
	gt r14, #0
	nop => if cc1 CB GBAR
GBAR:	nop => if allss END GBAR   !done
END:	nop => halt

.fu 2
	iadd #0, #0, r13
QL:	isub r12, #1, r12
	iadd r13, #5, r13
	gt r12, #0
	nop => if cc2 QL BAR
BAR:	nop => if @GB@ REST2 BAR   !done
REST2:	nop => goto GBAR
.org 11
GBAR:	nop => if allss END GBAR   !done
END:	nop => halt

.fu 3
	nop => goto BAR
.org 5
BAR:	nop => if @GB@ DL BAR   !done
DL:	iadd #0, #0, r23
DB:	iadd r23, r13, r23
	isub r15, #1, r15
	gt r15, #0
	nop => if cc3 DB GBAR
GBAR:	nop => if allss END GBAR   !done
END:	nop => halt
`
	src = strings.ReplaceAll(src, "@GA@", groupA)
	src = strings.ReplaceAll(src, "@GB@", groupB)
	return src
}

// PartialBarrierResult is the expected consumer outputs.
func PartialBarrierResult(a0, la, b0, lb int32) (r21, r23 int32) {
	return 3 * a0 * la, 5 * b0 * lb
}

func partialBarrierInstance(name string, full bool, a0, la, b0, lb int32) *Instance {
	if a0 < 1 || la < 1 || b0 < 1 || lb < 1 {
		panic("workloads: PartialBarrier parameters must be >= 1")
	}
	prog := mustAssemble(name, partialBarrierSrc(full))
	wantA, wantB := PartialBarrierResult(a0, la, b0, lb)
	inst := &Instance{
		Name: name,
		XIMD: prog,
		Regs: map[uint8]isa.Word{
			10: isa.WordFromInt(a0),
			14: isa.WordFromInt(la),
			12: isa.WordFromInt(b0),
			15: isa.WordFromInt(lb),
		},
	}
	inst.NewEnv = func() *Env {
		return &Env{
			Mem: sharedMem(0, nil),
			Check: func(regs *regfile.File) error {
				if got := regs.Peek(21).Int(); got != wantA {
					return fmt.Errorf("group A result r21 = %d, want %d", got, wantA)
				}
				if got := regs.Peek(23).Int(); got != wantB {
					return fmt.Errorf("group B result r23 = %d, want %d", got, wantB)
				}
				return nil
			},
		}
	}
	return inst
}

// PartialBarrier builds the two-group workload with per-group partial
// barriers.
func PartialBarrier(a0, la, b0, lb int32) *Instance {
	return partialBarrierInstance("partial-barrier", false, a0, la, b0, lb)
}

// PartialBarrierFull is the ablation: the same program with full ALL-SS
// barriers at the group synchronization points.
func PartialBarrierFull(a0, la, b0, lb int32) *Instance {
	return partialBarrierInstance("partial-barrier-full", true, a0, la, b0, lb)
}
