package workloads

import (
	"testing"

	"ximd/internal/trace"
)

func TestLL12MatchesReference(t *testing.T) {
	cases := [][]int32{
		{1, 2},
		{5, 3, 8},
		{0, 0, 0, 0},
		{10, 7, 3, -2, -8, -15, 100, 2, 4},
	}
	for _, y := range cases {
		if _, err := RunXIMD(LL12(y), nil); err != nil {
			t.Errorf("ll12 XIMD %v: %v", y, err)
		}
		if _, err := RunVLIW(LL12(y), nil); err != nil {
			t.Errorf("ll12 VLIW %v: %v", y, err)
		}
		if _, err := RunXIMD(LL12Scalar(y), nil); err != nil {
			t.Errorf("ll12 scalar %v: %v", y, err)
		}
	}
}

func TestLL12PipelineSpeedupAndParity(t *testing.T) {
	y := make([]int32, 101)
	for i := range y {
		y[i] = int32(i * i % 97)
	}
	pipe, err := RunXIMD(LL12(y), nil)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := RunXIMD(LL12Scalar(y), nil)
	if err != nil {
		t.Fatal(err)
	}
	// ~2 cycles/iteration pipelined vs ~8 scalar.
	if speedup := float64(scalar.Cycle()) / float64(pipe.Cycle()); speedup < 3 {
		t.Errorf("software pipelining speedup = %.2f (pipe %d, scalar %d), want > 3",
			speedup, pipe.Cycle(), scalar.Cycle())
	}
	// Vectorizable code: VLIW and XIMD execute the identical program in
	// the identical number of cycles (Section 3.1).
	vm, err := RunVLIW(LL12(y), nil)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Cycle() != pipe.Cycle() {
		t.Errorf("VLIW %d cycles != XIMD %d cycles on VLIW-style code", vm.Cycle(), pipe.Cycle())
	}
}

func TestIOPortsAllVariantsCorrect(t *testing.T) {
	for _, variant := range []IOPortsVariant{IOPortsSS, IOPortsFlags, IOPortsVLIW} {
		for seed := int64(0); seed < 8; seed++ {
			inst := IOPorts(variant, seed, 5, 60)
			if _, err := RunXIMD(inst, nil); err != nil {
				t.Errorf("%s seed %d: %v", variant, seed, err)
			}
		}
	}
}

func TestIOPortsVLIWVariantOnVSim(t *testing.T) {
	inst := IOPorts(IOPortsVLIW, 3, 5, 40)
	if _, err := RunVLIW(inst, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIOPortsSSBeatsFlagsAndVLIW(t *testing.T) {
	// Averaged over seeds, the sync-bit implementation must beat the
	// memory-flag implementation (Figure 12: "This will result in
	// increased performance"), and both XIMD variants must beat the
	// serialized VLIW schedule.
	// Small inter-arrival gaps put the runs in the synchronization-
	// overhead-dominated regime, where the mechanisms differ; with large
	// gaps every variant converges to the last port arrival time.
	var ssTotal, flagTotal, vliwTotal uint64
	const seeds = 10
	for seed := int64(0); seed < seeds; seed++ {
		ss, err := RunXIMD(IOPorts(IOPortsSS, seed, 1, 8), nil)
		if err != nil {
			t.Fatal(err)
		}
		fl, err := RunXIMD(IOPorts(IOPortsFlags, seed, 1, 8), nil)
		if err != nil {
			t.Fatal(err)
		}
		vl, err := RunXIMD(IOPorts(IOPortsVLIW, seed, 1, 8), nil)
		if err != nil {
			t.Fatal(err)
		}
		ssTotal += ss.Cycle()
		flagTotal += fl.Cycle()
		vliwTotal += vl.Cycle()
	}
	t.Logf("ioports mean cycles over %d seeds: ss=%d flags=%d vliw=%d",
		seeds, ssTotal/seeds, flagTotal/seeds, vliwTotal/seeds)
	if ssTotal >= flagTotal {
		t.Errorf("sync bits (%d) not faster than memory flags (%d)", ssTotal, flagTotal)
	}
	if ssTotal >= vliwTotal {
		t.Errorf("sync bits (%d) not faster than serialized VLIW polling (%d)", ssTotal, vliwTotal)
	}
}

func TestIOPortsTwoProcessPartition(t *testing.T) {
	inst := IOPorts(IOPortsSS, 1, 5, 40)
	rec := &trace.Recorder{}
	if _, err := RunXIMD(inst, rec); err != nil {
		t.Fatal(err)
	}
	// The workload runs many concurrent streams (producers and writers
	// diverge immediately) and must end fully joined at the barrier.
	peak := 0
	for _, r := range rec.Records {
		if k := r.Partition.NumSSETs(); k > peak {
			peak = k
		}
	}
	if peak < 4 {
		t.Errorf("peak concurrent streams = %d, want >= 4", peak)
	}
	last := rec.Records[len(rec.Records)-1]
	if last.Partition.NumSSETs() != 1 {
		t.Errorf("final partition = %s, want fully joined", last.Partition)
	}
}
