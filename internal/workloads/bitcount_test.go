package workloads

import (
	"math/rand"
	"testing"

	"ximd/internal/trace"
)

func TestBitcountRefAgainstNaive(t *testing.T) {
	data := []int32{7, 0, -1, 1, 2, 3, 255, 256, 5, 6, 7, 8, 9}
	got := BitcountRef(data)
	if len(got) != len(data) {
		t.Fatalf("length %d", len(got))
	}
	// Group 0 (0..3): prefix 3, 3, 35, 36; -1 has 32 ones.
	want0 := []int32{3, 3, 35, 36}
	for i, w := range want0 {
		if got[i] != w {
			t.Fatalf("B[%d] = %d, want %d", i, got[i], w)
		}
	}
}

func TestBitcountXIMDMatchesReference(t *testing.T) {
	cases := [][]int32{
		nil,                         // empty: straight to cleanup
		{5},                         // single element (cleanup path)
		{1, 2, 3},                   // tail only
		{1, 2, 3, 4, 5, 6, 7, 8},    // n = 8: all through cleanup
		{1, 2, 3, 4, 5, 6, 7, 8, 9}, // n = 9: one group + tail
		{0, 0, 0, 0, 0, 0, 0, 0, 0}, // zero data: inner loops exit at once
		{-1, -1, -1, -1, 7, 7, 7, 7, 15, 15, 15, 15},                 // n = 12: groups only
		{1, 3, 7, 15, 31, 63, 127, 255, 511, 1023, 2047, 4095, 8191}, // n = 13
	}
	for _, data := range cases {
		inst := Bitcount(data)
		if _, err := RunXIMD(inst, nil); err != nil {
			t.Errorf("bitcount XIMD %v: %v", data, err)
		}
		if _, err := RunVLIW(inst, nil); err != nil {
			t.Errorf("bitcount VLIW %v: %v", data, err)
		}
	}
}

func TestBitcountRandomizedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 20; iter++ {
		n := r.Intn(40)
		data := make([]int32, n)
		for i := range data {
			data[i] = int32(r.Uint32())
		}
		inst := Bitcount(data)
		if _, err := RunXIMD(inst, nil); err != nil {
			t.Fatalf("iter %d (n=%d): %v", iter, n, err)
		}
		if _, err := RunVLIW(inst, nil); err != nil {
			t.Fatalf("iter %d VLIW (n=%d): %v", iter, n, err)
		}
	}
}

func TestBitcountBarrierPartitions(t *testing.T) {
	// With data that drives the four inner loops to different iteration
	// counts the partition must fan out to four streams and rejoin.
	data := []int32{0, 3, 255, -1, 0, 3, 255, -1, 0, 3, 255, -1}
	inst := Bitcount(data)
	rec := &trace.Recorder{}
	if _, err := RunXIMD(inst, rec); err != nil {
		t.Fatal(err)
	}
	saw4 := false
	saw1 := false
	for _, r := range rec.Records {
		switch r.Partition.NumSSETs() {
		case 4:
			saw4 = true
		case 1:
			saw1 = true
		}
	}
	if !saw4 {
		t.Error("never observed four concurrent streams (Figure 11 fork)")
	}
	if !saw1 {
		t.Error("never observed a single joined stream (Figure 11 barrier)")
	}
}

func TestBitcountXIMDFasterThanVLIW(t *testing.T) {
	// Inner-loop-heavy data: XIMD runs the four bit loops concurrently.
	data := make([]int32, 32)
	r := rand.New(rand.NewSource(12))
	for i := range data {
		data[i] = int32(r.Uint32())
	}
	inst := Bitcount(data)
	xm, err := RunXIMD(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := RunVLIW(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(vm.Cycle()) / float64(xm.Cycle())
	if speedup < 1.5 {
		t.Errorf("bitcount speedup = %.2f (XIMD %d, VLIW %d); expected well above 1.5x on random data",
			speedup, xm.Cycle(), vm.Cycle())
	}
	t.Logf("bitcount n=32: XIMD %d cycles, VLIW %d cycles, speedup %.2fx",
		xm.Cycle(), vm.Cycle(), speedup)
}
