package workloads

import (
	"math/rand"
	"strings"
	"testing"

	"ximd/internal/trace"
)

func TestTPROCMatchesReference(t *testing.T) {
	cases := [][4]int32{
		{1, 2, 3, 4},
		{0, 0, 0, 0},
		{-5, 7, -11, 13},
		{100, -200, 300, -400},
	}
	for _, c := range cases {
		inst := TPROC(c[0], c[1], c[2], c[3])
		m, err := RunXIMD(inst, nil)
		if err != nil {
			t.Fatalf("tproc(%v): %v", c, err)
		}
		// The paper's schedule is 5 instructions + halt.
		if m.Cycle() != 6 {
			t.Errorf("tproc(%v): %d cycles, want 6", c, m.Cycle())
		}
		if _, err := RunVLIW(inst, nil); err != nil {
			t.Fatalf("tproc(%v) on VLIW: %v", c, err)
		}
	}
}

func TestTPROCScalarMatchesReference(t *testing.T) {
	inst := TPROCScalar(3, -4, 5, -6)
	m, err := RunXIMD(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycle() != 13 {
		t.Errorf("scalar tproc: %d cycles, want 13", m.Cycle())
	}
}

func TestTPROCSpeedup(t *testing.T) {
	par, err := RunXIMD(TPROC(1, 2, 3, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunXIMD(TPROCScalar(1, 2, 3, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if par.Cycle() >= seq.Cycle() {
		t.Errorf("4-FU schedule (%d cycles) not faster than scalar (%d cycles)",
			par.Cycle(), seq.Cycle())
	}
}

func TestMinMaxCorrectAcrossDataSets(t *testing.T) {
	cases := [][]int32{
		{5, 3, 4, 7},
		{1},
		{2, 1},
		{-4, -4, -4},
		{7, 6, 5, 4, 3, 2, 1, 0, -1},
		{0, 100, -100, 50, -50, 99, -99},
	}
	for _, data := range cases {
		inst := MinMax(data)
		if _, err := RunXIMD(inst, nil); err != nil {
			t.Errorf("minmax XIMD %v: %v", data, err)
		}
		if _, err := RunVLIW(inst, nil); err != nil {
			t.Errorf("minmax VLIW %v: %v", data, err)
		}
	}
}

func TestMinMaxRandomizedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 25; iter++ {
		n := 1 + r.Intn(40)
		data := make([]int32, n)
		for i := range data {
			data[i] = int32(r.Intn(20001) - 10000)
		}
		inst := MinMax(data)
		if _, err := RunXIMD(inst, nil); err != nil {
			t.Fatalf("iter %d (%v): %v", iter, data, err)
		}
		if _, err := RunVLIW(inst, nil); err != nil {
			t.Fatalf("iter %d VLIW (%v): %v", iter, data, err)
		}
	}
}

func TestMinMaxXIMDFasterThanVLIW(t *testing.T) {
	data := make([]int32, 64)
	r := rand.New(rand.NewSource(6))
	for i := range data {
		data[i] = int32(r.Intn(1000))
	}
	inst := MinMax(data)
	xm, err := RunXIMD(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := RunVLIW(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if xm.Cycle() >= vm.Cycle() {
		t.Errorf("XIMD (%d cycles) not faster than VLIW (%d cycles)", xm.Cycle(), vm.Cycle())
	}
	t.Logf("minmax n=64: XIMD %d cycles, VLIW %d cycles, speedup %.2fx",
		xm.Cycle(), vm.Cycle(), float64(vm.Cycle())/float64(xm.Cycle()))
}

// figure10Want is the paper's Figure 10 address trace for IZ=(5,3,4,7):
// per-cycle PCs, condition codes, and partition. One known misprint in
// the paper is corrected here: cycles 11 and 13 print "FITX" — not a
// possible value of four two-state condition codes — where the code
// semantics give "FTTX" (cc1 = TRUE from `gt 7,max`; the paper's own
// cycle-12 row prints FTTX and agrees). See EXPERIMENTS.md E-F10 for the
// cell-by-cell comparison.
var figure10Want = []struct {
	pcs       [4]uint16
	cc        string
	partition string
}{
	{[4]uint16{0x00, 0x00, 0x00, 0x00}, "XXXX", "{0,1,2,3}"},   // Cycle 0
	{[4]uint16{0x01, 0x01, 0x01, 0x01}, "XXFX", "{0,1,2,3}"},   // Cycle 1
	{[4]uint16{0x02, 0x02, 0x02, 0x02}, "TTFX", "{0,1,2,3}"},   // Cycle 2
	{[4]uint16{0x03, 0x03, 0x04, 0x04}, "TTFX", "{0,1}{2}{3}"}, // Cycle 3
	{[4]uint16{0x05, 0x05, 0x05, 0x05}, "TTFX", "{0,1,2,3}"},   // Cycle 4
	{[4]uint16{0x02, 0x02, 0x02, 0x02}, "TFFX", "{0,1,2,3}"},   // Cycle 5
	{[4]uint16{0x03, 0x03, 0x04, 0x03}, "TFFX", "{0,1}{2}{3}"}, // Cycle 6
	{[4]uint16{0x05, 0x05, 0x05, 0x05}, "TFFX", "{0,1,2,3}"},   // Cycle 7
	{[4]uint16{0x02, 0x02, 0x02, 0x02}, "FFFX", "{0,1,2,3}"},   // Cycle 8
	{[4]uint16{0x03, 0x03, 0x03, 0x03}, "FFTX", "{0,1}{2}{3}"}, // Cycle 9
	{[4]uint16{0x05, 0x05, 0x05, 0x05}, "FFTX", "{0,1,2,3}"},   // Cycle 10
	{[4]uint16{0x08, 0x08, 0x08, 0x08}, "FTTX", "{0,1,2,3}"},   // Cycle 11
	{[4]uint16{0x0a, 0x0a, 0x0a, 0x09}, "FTTX", "{0,1}{2}{3}"}, // Cycle 12
	{[4]uint16{0x0a, 0x0a, 0x0a, 0x0a}, "FTTX", "{0,1,2,3}"},   // Cycle 13
}

func TestFigure10AddressTraceGolden(t *testing.T) {
	inst := MinMax(Figure10Data)
	rec := &trace.Recorder{}
	if _, err := RunXIMD(inst, rec); err != nil {
		t.Fatal(err)
	}
	// The paper's trace has 14 rows (cycles 0–13); this implementation
	// adds one explicit termination cycle.
	if len(rec.Records) != len(figure10Want)+1 {
		t.Fatalf("trace has %d rows, want %d (+1 termination)", len(rec.Records), len(figure10Want))
	}
	for i, want := range figure10Want {
		got := rec.Records[i]
		for fu := 0; fu < 4; fu++ {
			if uint16(got.PC[fu]) != want.pcs[fu] {
				t.Errorf("cycle %d FU%d: PC = %02x, want %02x", i, fu, uint16(got.PC[fu]), want.pcs[fu])
			}
		}
		if got.CCString() != want.cc {
			t.Errorf("cycle %d: CC = %s, want %s", i, got.CCString(), want.cc)
		}
		if got.Partition.String() != want.partition {
			t.Errorf("cycle %d: partition = %s, want %s", i, got.Partition.String(), want.partition)
		}
	}
	// The formatted table must carry the figure's hex addresses.
	table := trace.FormatAddressTrace(rec.Records, trace.Options{Comments: Figure10Comments})
	for _, needle := range []string{"Cycle 0", "0a:", "{0,1}{2}{3}", "Update max", "Finished"} {
		if !strings.Contains(table, needle) {
			t.Errorf("formatted trace missing %q:\n%s", needle, table)
		}
	}
}

func TestMinMaxStreamTimeline(t *testing.T) {
	inst := MinMax(Figure10Data)
	rec := &trace.Recorder{}
	if _, err := RunXIMD(inst, rec); err != nil {
		t.Fatal(err)
	}
	timeline := trace.StreamTimeline(rec.Records)
	threes := 0
	for _, k := range timeline {
		if k == 3 {
			threes++
		}
	}
	// Figure 10: cycles 3, 6, 9, 12 run three streams.
	if threes != 4 {
		t.Errorf("three-stream cycles = %d, want 4 (timeline %v)", threes, timeline)
	}
}
