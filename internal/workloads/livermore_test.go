package workloads

import (
	"math/rand"
	"testing"
)

func livermoreVectors(n int) (y, z, u []int32) {
	r := rand.New(rand.NewSource(41))
	y = make([]int32, n+16)
	z = make([]int32, n+16)
	u = make([]int32, n+16)
	for i := range y {
		y[i] = int32(r.Intn(200) - 100)
		z[i] = int32(r.Intn(200) - 100)
		u[i] = int32(r.Intn(200) - 100)
	}
	return
}

func TestLivermoreKernelsCorrect(t *testing.T) {
	y, z, u := livermoreVectors(64)
	params := LivermoreParams{N: 64, Q: 5, R: 3, T: -2}
	for _, inst := range []*Instance{
		LL1(y, z, params),
		LL3(y, z, 64),
		LL7(y, z, u, params),
	} {
		mx, err := RunXIMD(inst, nil)
		if err != nil {
			t.Errorf("%s XIMD: %v", inst.Name, err)
			continue
		}
		mv, err := RunVLIW(inst, nil)
		if err != nil {
			t.Errorf("%s VLIW: %v", inst.Name, err)
			continue
		}
		// Vectorizable compiler output: the two machines agree exactly.
		if mx.Cycle() != mv.Cycle() {
			t.Errorf("%s: XIMD %d cycles != VLIW %d", inst.Name, mx.Cycle(), mv.Cycle())
		}
		t.Logf("%s: %d cycles, %.2f ops/cycle", inst.Name, mx.Cycle(), mx.Stats().OpsPerCycle())
	}
}

func TestLivermoreSmallN(t *testing.T) {
	y, z, u := livermoreVectors(8)
	params := LivermoreParams{N: 3, Q: 1, R: 1, T: 1}
	for _, inst := range []*Instance{
		LL1(y, z, params),
		LL3(y, z, 3),
		LL7(y, z, u, params),
	} {
		if _, err := RunXIMD(inst, nil); err != nil {
			t.Errorf("%s: %v", inst.Name, err)
		}
	}
}

func TestLivermoreILP(t *testing.T) {
	// LL7's wide expression tree should sustain clearly more than one
	// operation per cycle on the 8-FU machine.
	y, z, u := livermoreVectors(128)
	m, err := RunXIMD(LL7(y, z, u, LivermoreParams{N: 128, R: 3, T: 7}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if opc := m.Stats().OpsPerCycle(); opc < 2 {
		t.Errorf("LL7 ops/cycle = %.2f, want >= 2 (wide expression tree)", opc)
	}
}
