package workloads

import (
	"fmt"

	"ximd/internal/isa"
	"ximd/internal/regfile"
)

// tprocSrc is the Example 1 schedule verbatim: the Percolation-Scheduling
// compiler's 4-FU, 5-cycle schedule for
//
//	tproc(a,b,c,d) {
//	    e = a + b;
//	    f = e + c * a;
//	    g = a - (b + c);
//	    e = d - e;
//	    return (a + b + c) + d + e + (f + g);
//	}
//
// The result is left in f. Control is identical in every parcel, so the
// program is VLIW-style (Section 3.1) and runs unchanged on both
// machines.
const tprocSrc = `
.fus 4
.reg a = r1
.reg b = r2
.reg c = r3
.reg d = r4
.reg e = r5
.reg f = r6
.reg g = r7

.fu 0
	iadd a, b, e       ; 00: e = a+b
	iadd f, e, f       ; 01: f = c*a + e
	iadd a, d, a       ; 02: a = (a+b+c) + d
	iadd a, e, a       ; 03: a += e
	iadd a, g, f       ; 04: f = a + (f+g)  (the return value)
	=> halt

.fu 1
	imult c, a, f      ; 00: f = c*a
	isub a, g, g       ; 01: g = a - (b+c)
	iadd f, g, g       ; 02: g = f + g
	nop
	nop
	=> halt

.fu 2
	iadd c, b, g       ; 00: g = b+c
	iadd e, c, a       ; 01: a = (a+b) + c
	nop
	nop
	nop
	=> halt

.fu 3
	nop
	isub d, e, e       ; 01: e = d - (a+b)
	nop
	nop
	nop
	=> halt
`

// tprocScalarSrc is the sequential single-FU schedule of the same
// procedure, the SISD baseline for Example 1.
const tprocScalarSrc = `
.fus 1
.reg a = r1
.reg b = r2
.reg c = r3
.reg d = r4
.reg e = r5
.reg f = r6
.reg g = r7
.reg t = r8
.reg s = r9

.fu 0
	iadd a, b, e
	imult c, a, t
	iadd e, t, f
	iadd b, c, g
	isub a, g, g
	isub d, e, e
	iadd a, b, s
	iadd s, c, s
	iadd s, d, s
	iadd s, e, s
	iadd f, g, t
	iadd s, t, f
	=> halt
`

// TPROCResult computes the reference result of the Example 1 procedure.
func TPROCResult(a, b, c, d int32) int32 {
	e := a + b
	f := e + c*a
	g := a - (b + c)
	e = d - e
	return (a + b + c) + d + e + (f + g)
}

func tprocInstance(name, src string, a, b, c, d int32) *Instance {
	prog := mustAssemble(name, src)
	inst := &Instance{
		Name: name,
		XIMD: prog,
		Regs: map[uint8]isa.Word{
			1: isa.WordFromInt(a),
			2: isa.WordFromInt(b),
			3: isa.WordFromInt(c),
			4: isa.WordFromInt(d),
		},
	}
	want := TPROCResult(a, b, c, d)
	inst.NewEnv = func() *Env {
		return &Env{
			Mem: sharedMem(0, nil),
			Check: func(regs *regfile.File) error {
				if got := regs.Peek(6).Int(); got != want {
					return fmt.Errorf("tproc f = %d, want %d", got, want)
				}
				return nil
			},
		}
	}
	return inst
}

// TPROC builds the Example 1 workload: the paper's 4-FU percolation
// schedule, with the VLIW variant attached.
func TPROC(a, b, c, d int32) *Instance {
	inst := tprocInstance("tproc", tprocSrc, a, b, c, d)
	inst.VLIW = mustVLIW("tproc", inst.XIMD)
	return inst
}

// TPROCScalar builds the sequential single-FU baseline of Example 1.
func TPROCScalar(a, b, c, d int32) *Instance {
	inst := tprocInstance("tproc-scalar", tprocScalarSrc, a, b, c, d)
	inst.VLIW = mustVLIW("tproc-scalar", inst.XIMD)
	return inst
}
