package workloads

import (
	"testing"
)

func TestChaosStreams(t *testing.T) {
	for _, n := range []int{1, 7, 64, 128} {
		data := ChaosData(n, 17)
		inst := ChaosStreams(data)
		xm, err := RunXIMD(inst, nil)
		if err != nil {
			t.Fatalf("n=%d: XIMD: %v", n, err)
		}
		vm, err := RunVLIW(inst, nil)
		if err != nil {
			t.Fatalf("n=%d: VLIW: %v", n, err)
		}
		// Independent streams: the XIMD should never be slower than the
		// lockstep word machine on this embarrassingly parallel loop.
		if xm.Cycle() > vm.Cycle() {
			t.Errorf("n=%d: XIMD %d cycles > VLIW %d", n, xm.Cycle(), vm.Cycle())
		}
	}
}

func TestChaosDataDeterministic(t *testing.T) {
	a, b := ChaosData(16, 5), ChaosData(16, 5)
	if ChaosSums(a) != ChaosSums(b) {
		t.Fatal("same seed produced different data")
	}
	if ChaosSums(ChaosData(16, 5)) == ChaosSums(ChaosData(16, 6)) {
		t.Fatal("different seeds produced identical sums (suspicious)")
	}
}
