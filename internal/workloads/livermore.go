package workloads

import (
	"fmt"

	"ximd/internal/compiler"
	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
)

// Compiler-generated Livermore-style kernels (integer forms of loops 1,
// 3, and 7), broadening the Section 4.1 "many programs" suite. These are
// produced by the real minic compiler at full width with unrolling, so
// they double as end-to-end compiler validation; being par-free they are
// VLIW-convertible and demonstrate the vectorizable-code parity between
// the two machines.

// ll1Src is Livermore loop 1 (hydro fragment), integer form:
//
//	x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
const ll1Src = `
var x[512], y[512], z[512], n, q, r, t;
func main() {
    var k, nn = n, qq = q, rr = r, tt = t;
    for (k = 0; k < nn; k = k + 1) {
        x[k] = qq + y[k]*(rr*z[k+10] + tt*z[k+11]);
    }
}`

// ll3Src is Livermore loop 3 (inner product):
//
//	q = sum x[k]*z[k]
const ll3Src = `
var x[512], z[512], n, q;
func main() {
    var k, s = 0, nn = n;
    for (k = 0; k < nn; k = k + 1) {
        s = s + x[k]*z[k];
    }
    q = s;
}`

// ll7Src is Livermore loop 7 (equation of state fragment), integer form.
const ll7Src = `
var x[512], y[512], z[512], u[512], n, r, t;
func main() {
    var k, nn = n, rr = r, tt = t;
    for (k = 0; k < nn; k = k + 1) {
        x[k] = u[k] + rr*(z[k] + rr*y[k])
             + tt*(u[k+3] + rr*(u[k+2] + rr*u[k+1])
             + tt*(u[k+6] + rr*(u[k+5] + rr*u[k+4])));
    }
}`

// LivermoreParams holds kernel scalar inputs.
type LivermoreParams struct {
	N       int32
	Q, R, T int32
}

// compiledInstance compiles minic source and wraps it as a workload.
func compiledInstance(name, src string, width, unroll int,
	setup func(c *compiler.Compiled, m *mem.Shared),
	check func(c *compiler.Compiled, m *mem.Shared) error) *Instance {
	c, err := compiler.Compile(src, compiler.Options{Width: width, Unroll: unroll})
	if err != nil {
		panic(fmt.Sprintf("workloads: %s does not compile: %v", name, err))
	}
	vp, err := c.VLIW()
	if err != nil {
		panic(fmt.Sprintf("workloads: %s not VLIW-convertible: %v", name, err))
	}
	inst := &Instance{Name: name, XIMD: c.Prog, VLIW: vp, Regs: map[uint8]isa.Word{}}
	inst.NewEnv = func() *Env {
		m := mem.NewShared(0)
		setup(c, m)
		return &Env{
			Mem: m,
			Check: func(regs *regfile.File) error {
				return check(c, m)
			},
		}
	}
	return inst
}

func pokeGlobal(c *compiler.Compiled, m *mem.Shared, name string, vals ...int32) {
	sym, ok := c.Syms.Lookup(name)
	if !ok {
		panic("workloads: unknown global " + name)
	}
	m.PokeInts(sym.Addr, vals...)
}

func peekGlobal(c *compiler.Compiled, m *mem.Shared, name string, n int) []int32 {
	sym, ok := c.Syms.Lookup(name)
	if !ok {
		panic("workloads: unknown global " + name)
	}
	return m.PeekInts(sym.Addr, n)
}

// LL1 builds the hydro-fragment kernel over the given y, z and params.
func LL1(y, z []int32, p LivermoreParams) *Instance {
	if int(p.N)+11 > len(z) || int(p.N) > len(y) || p.N > 490 {
		panic("workloads: LL1 inputs too short for n")
	}
	want := make([]int32, p.N)
	for k := range want {
		want[k] = p.Q + y[k]*(p.R*z[k+10]+p.T*z[k+11])
	}
	return compiledInstance("ll1-hydro", ll1Src, 8, 4,
		func(c *compiler.Compiled, m *mem.Shared) {
			pokeGlobal(c, m, "y", y...)
			pokeGlobal(c, m, "z", z...)
			pokeGlobal(c, m, "n", p.N)
			pokeGlobal(c, m, "q", p.Q)
			pokeGlobal(c, m, "r", p.R)
			pokeGlobal(c, m, "t", p.T)
		},
		func(c *compiler.Compiled, m *mem.Shared) error {
			got := peekGlobal(c, m, "x", len(want))
			for k := range want {
				if got[k] != want[k] {
					return fmt.Errorf("x[%d] = %d, want %d", k, got[k], want[k])
				}
			}
			return nil
		})
}

// LL3 builds the inner-product kernel.
func LL3(x, z []int32, n int32) *Instance {
	if int(n) > len(x) || int(n) > len(z) || n > 512 {
		panic("workloads: LL3 inputs too short for n")
	}
	var want int32
	for k := int32(0); k < n; k++ {
		want += x[k] * z[k]
	}
	return compiledInstance("ll3-innerprod", ll3Src, 8, 4,
		func(c *compiler.Compiled, m *mem.Shared) {
			pokeGlobal(c, m, "x", x...)
			pokeGlobal(c, m, "z", z...)
			pokeGlobal(c, m, "n", n)
		},
		func(c *compiler.Compiled, m *mem.Shared) error {
			if got := peekGlobal(c, m, "q", 1)[0]; got != want {
				return fmt.Errorf("q = %d, want %d", got, want)
			}
			return nil
		})
}

// LL7 builds the equation-of-state kernel.
func LL7(y, z, u []int32, p LivermoreParams) *Instance {
	if int(p.N)+6 > len(u) || int(p.N) > len(y) || int(p.N) > len(z) || p.N > 500 {
		panic("workloads: LL7 inputs too short for n")
	}
	want := make([]int32, p.N)
	for k := range want {
		r, t := p.R, p.T
		want[k] = u[k] + r*(z[k]+r*y[k]) +
			t*(u[k+3]+r*(u[k+2]+r*u[k+1])+
				t*(u[k+6]+r*(u[k+5]+r*u[k+4])))
	}
	return compiledInstance("ll7-eos", ll7Src, 8, 2,
		func(c *compiler.Compiled, m *mem.Shared) {
			pokeGlobal(c, m, "y", y...)
			pokeGlobal(c, m, "z", z...)
			pokeGlobal(c, m, "u", u...)
			pokeGlobal(c, m, "n", p.N)
			pokeGlobal(c, m, "r", p.R)
			pokeGlobal(c, m, "t", p.T)
		},
		func(c *compiler.Compiled, m *mem.Shared) error {
			got := peekGlobal(c, m, "x", len(want))
			for k := range want {
				if got[k] != want[k] {
					return fmt.Errorf("x[%d] = %d, want %d", k, got[k], want[k])
				}
			}
			return nil
		})
}
