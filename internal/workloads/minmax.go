package workloads

import (
	"fmt"
	"math"

	"ximd/internal/isa"
	"ximd/internal/regfile"
)

// minmaxSrc is Example 2 — the implicit-barrier (equal path length)
// fork/join MINMAX search — transcribed from the paper's listing. The
// program scans IZ[0..n-1] keeping the running minimum and maximum; the
// two data-dependent updates fork the machine into three instruction
// streams each iteration ({0,1}{2}{3}) and rejoin one cycle later.
//
// Addresses match the paper (00–05, 08–0a); address 0b is this
// implementation's termination row (the paper leaves termination
// undefined, so its trace ends one row earlier — see EXPERIMENTS.md).
// One deliberate deviation: the paper's final fix-up parcels at 09
// branch unconditionally to 0a; here 09 and 0a carry the same ALL-SS
// join so the run ends in a common halt. Register/constant names follow
// the paper.
const minmaxSrc = `
.fus 4
.const z      = 256
.const maxint = 2147483647
.const minint = -2147483648
.reg k   = r1
.reg n   = r2
.reg tn  = r3
.reg tz  = r4
.reg min = r5
.reg max = r6

.fu 0
L0:  load #z, #0, tz
L1:  lt tz, #maxint        => if cc2 L8 L2
L2:  nop                   => goto L3
L3:  load #z, k, tz        => goto L5
.org 5
L5:  lt tz, min            => if cc2 L8 L2
.org 8
L8:  nop                   => goto La
.org 10
La:  nop                   => if allss Lb La   !done
Lb:  nop                   => halt

.fu 1
L0:  iadd #1, #0, k
L1:  gt tz, #minint        => if cc2 L8 L2
L2:  nop                   => goto L3
L3:  iadd #1, k, k         => goto L5
.org 5
L5:  gt tz, max            => if cc2 L8 L2
.org 8
L8:  nop                   => goto La
.org 10
La:  nop                   => if allss Lb La   !done
Lb:  nop                   => halt

.fu 2
L0:  lt n, #2
L1:  nop                   => if cc2 L8 L2
L2:  eq k, tn              => if cc0 L4 L3
L3:  nop                   => goto L5
L4:  iadd tz, #0, min      => goto L5
L5:  nop                   => if cc2 L8 L2
.org 8
L8:  nop                   => if cc0 L9 La
L9:  iadd tz, #0, min      => if allss Lb La
La:  nop                   => if allss Lb La   !done
Lb:  nop                   => halt

.fu 3
L0:  iadd n, #0, tn
L1:  isub tn, #1, tn       => if cc2 L8 L2
L2:  nop                   => if cc1 L4 L3
L3:  nop                   => goto L5
L4:  iadd tz, #0, max      => goto L5
L5:  nop                   => if cc2 L8 L2
.org 8
L8:  nop                   => if cc1 L9 La
L9:  iadd tz, #0, max      => if allss Lb La
La:  nop                   => if allss Lb La   !done
Lb:  nop                   => halt
`

// minmaxVLIWSrc is the single-stream VLIW baseline: the same search with
// the two conditional updates serialized through the single sequencer —
// the Section 1.3 limitation ("a VLIW processor can generally only
// perform one control operation at a time").
const minmaxVLIWSrc = `
.machine vliw
.fus 4
.const z      = 256
.const maxint = 2147483647
.const minint = -2147483648
.reg k   = r1
.reg n   = r2
.reg tz  = r4
.reg min = r5
.reg max = r6

pre0: load #z, #0, tz | iadd #1, #0, k
pre1: lt tz, #maxint | gt tz, #minint      => goto L0
L0:   nop | nop | eq k, n                  => if cc0 U1 L1
U1:   iadd tz, #0, min                     => if cc1 U2 L2
L1:   nop                                  => if cc1 U2 L2
U2:   iadd tz, #0, max                     => goto L2
L2:   load #z, k, tz | iadd k, #1, k       => if cc2 FIN L3
L3:   lt tz, min | gt tz, max              => goto L0
FIN:  nop                                  => halt
`

// MinMaxResult computes the reference minimum and maximum.
func MinMaxResult(data []int32) (min, max int32) {
	min, max = math.MaxInt32, math.MinInt32
	for _, v := range data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// minmaxCheck verifies registers min (r5) and max (r6).
func minmaxCheck(data []int32) func(regs *regfile.File) error {
	wantMin, wantMax := MinMaxResult(data)
	return func(regs *regfile.File) error {
		if got := regs.Peek(5).Int(); got != wantMin {
			return fmt.Errorf("min = %d, want %d", got, wantMin)
		}
		if got := regs.Peek(6).Int(); got != wantMax {
			return fmt.Errorf("max = %d, want %d", got, wantMax)
		}
		return nil
	}
}

// MinMax builds the Example 2 workload over the given data (n = len).
// The XIMD variant is the paper's three-stream fork/join; the VLIW
// variant serializes the two updates. Data must not contain
// math.MaxInt32/MinInt32 sentinels and must have at least one element.
func MinMax(data []int32) *Instance {
	if len(data) == 0 {
		panic("workloads: MinMax requires at least one element")
	}
	xprog := mustAssemble("minmax", minmaxSrc)
	vprogX := mustAssemble("minmax-vliw", minmaxVLIWSrc)
	inst := &Instance{
		Name: "minmax",
		XIMD: xprog,
		VLIW: mustVLIW("minmax-vliw", vprogX),
		Regs: map[uint8]isa.Word{2: isa.WordFromInt(int32(len(data)))},
		Comments: map[uint64]string{
			0: "Load initial values",
			1: "compare to maxint, minint",
			2: "Branch - form 3 threads",
			3: "Update min & max",
			4: "compare next element",
		},
	}
	inst.NewEnv = func() *Env {
		return &Env{
			Mem:   sharedMem(256, data),
			Check: minmaxCheck(data),
		}
	}
	return inst
}

// Figure10Data is the sample data set of the paper's Figure 10 address
// trace: IZ() = (5, 3, 4, 7).
var Figure10Data = []int32{5, 3, 4, 7}

// Figure10Comments annotates the Figure 10 trace rows with the paper's
// comment column.
var Figure10Comments = map[uint64]string{
	0:  "Load initial values",
	1:  "compare to maxint, minint",
	2:  "Branch - form 3 threads",
	3:  "Update min & max",
	4:  "compare next element",
	5:  "Branch - form 3 threads",
	6:  "Update min",
	7:  "compare next element",
	8:  "Branch - form 3 threads",
	9:  "No update",
	10: "compare last element",
	11: "Branch - form 3 threads",
	12: "Update max",
	13: "Finished",
	14: "(termination, not in the paper's trace)",
}
