// Package workloads provides the example programs of the paper — TPROC
// (Example 1), Livermore Loop 12, MINMAX (Example 2), BITCOUNT1
// (Example 3), and the Figure 12 dual-process I/O program — plus
// additional kernels used for the Section 4.1 XIMD-versus-VLIW
// performance comparison. Each workload is provided in the execution
// styles the paper discusses (XIMD multi-stream, VLIW single-stream,
// scalar single-FU) together with host setup and a result checker, so the
// same workload drives tests, traces, and benchmarks.
package workloads

import (
	"fmt"

	"ximd/internal/asm"
	"ximd/internal/core"
	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
	"ximd/internal/vliw"
)

// Env is one fresh execution environment for a workload instance: the
// memory image (with any memory-mapped devices attached and input data
// poked) and a checker that validates the results after the run.
type Env struct {
	Mem   mem.Memory
	Check func(regs *regfile.File) error
}

// Instance is one runnable configuration of a workload. XIMD and VLIW
// hold the two architecture variants; either may be nil when the
// workload only exists in one style.
type Instance struct {
	Name string
	// XIMD is the multi-stream program for the XIMD machine.
	XIMD *isa.Program
	// VLIW is the single-stream baseline for the VLIW machine (vsim).
	VLIW *vliw.Program
	// Regs is host register initialization applied before the run.
	Regs map[uint8]isa.Word
	// NewEnv builds a fresh environment (memory + checker) per run.
	NewEnv func() *Env
	// Comments annotate trace cycles (for Figure 10 style output).
	Comments map[uint64]string
}

// RunXIMD executes the instance's XIMD program to completion, verifies
// the result, and returns the machine for inspection.
func RunXIMD(inst *Instance, tracer core.Tracer) (*core.Machine, error) {
	if inst.XIMD == nil {
		return nil, fmt.Errorf("workload %s has no XIMD variant", inst.Name)
	}
	env := inst.NewEnv()
	m, err := core.New(inst.XIMD, core.Config{Memory: env.Mem, Tracer: tracer})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", inst.Name, err)
	}
	for r, v := range inst.Regs {
		m.Regs().Poke(r, v)
	}
	if _, err := m.Run(); err != nil {
		return nil, fmt.Errorf("%s: %w", inst.Name, err)
	}
	if env.Check != nil {
		if err := env.Check(m.Regs()); err != nil {
			return nil, fmt.Errorf("%s: result check: %w", inst.Name, err)
		}
	}
	return m, nil
}

// RunVLIW executes the instance's VLIW program to completion, verifies
// the result, and returns the machine for inspection.
func RunVLIW(inst *Instance, tracer vliw.Tracer) (*vliw.Machine, error) {
	if inst.VLIW == nil {
		return nil, fmt.Errorf("workload %s has no VLIW variant", inst.Name)
	}
	env := inst.NewEnv()
	m, err := vliw.New(inst.VLIW, vliw.Config{Memory: env.Mem, Tracer: tracer})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", inst.Name, err)
	}
	for r, v := range inst.Regs {
		m.Regs().Poke(r, v)
	}
	if _, err := m.Run(); err != nil {
		return nil, fmt.Errorf("%s: %w", inst.Name, err)
	}
	if env.Check != nil {
		if err := env.Check(m.Regs()); err != nil {
			return nil, fmt.Errorf("%s: result check: %w", inst.Name, err)
		}
	}
	return m, nil
}

// mustAssemble assembles static workload source text, panicking on
// failure: the sources are compiled-in constants, so failure is a
// programming bug.
func mustAssemble(name, src string) *isa.Program {
	prog, err := asm.Assemble(src)
	if err != nil {
		panic(fmt.Sprintf("workloads: %s does not assemble: %v", name, err))
	}
	return prog
}

// mustVLIW converts a VLIW-conversion failure into a panic.
func mustVLIW(name string, p *isa.Program) *vliw.Program {
	v, err := vliw.FromXIMD(p)
	if err != nil {
		panic(fmt.Sprintf("workloads: %s is not VLIW-convertible: %v", name, err))
	}
	return v
}

// sharedMem builds a default-size shared memory and pokes int32 data at
// the given base.
func sharedMem(base uint32, data []int32) *mem.Shared {
	m := mem.NewShared(0)
	m.PokeInts(base, data...)
	return m
}

// expectInts compares a memory range against expected values.
func expectInts(m *mem.Shared, base uint32, want []int32) error {
	got := m.PeekInts(base, len(want))
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("M(%d) = %d, want %d (full: got %v want %v)",
				base+uint32(i), got[i], want[i], got, want)
		}
	}
	return nil
}
