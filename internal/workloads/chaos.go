package workloads

import (
	"fmt"
	"strings"

	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
)

// CHAOS-STREAMS is the graceful-degradation workload for the fault
// injection experiments: four fully independent reduction streams, one
// per functional unit, each summing a private memory region through a
// short load-bearing loop (~5 cycles per element, one load each pass)
// and storing its partial sum to a per-FU output cell. The streams
// never synchronize, so on the XIMD each stream rides out its own
// injected memory stalls and a hard-failed FU costs exactly one
// stream's result; the VLIW variant does the identical work in lockstep
// lanes, so every lane's stall freezes the whole word and any FU
// failure kills the entire run. The per-FU output cells let a checker
// verify surviving streams individually after a degraded completion.

const (
	// ChaosLanes is the stream/lane count of the workload.
	ChaosLanes = 4
	// ChaosOutBase is the address of FU0's output cell; FU f stores its
	// sum at ChaosOutBase+f.
	ChaosOutBase = 50
	// chaosRegionBase/chaosRegionCap lay out the per-FU input regions:
	// FU f sums chaosRegionBase+f*chaosRegionCap onward.
	chaosRegionBase = 100
	chaosRegionCap  = 128
)

// chaosXIMDSrc assembles the four-stream XIMD variant. Each FU uses a
// private register window (i=r8+f, s=r16+f, v=r24+f) and its own
// condition code, so the streams share nothing but the length in r2.
func chaosXIMDSrc() string {
	var b strings.Builder
	b.WriteString(".fus 4\n.reg n = r2\n")
	for f := 0; f < ChaosLanes; f++ {
		fmt.Fprintf(&b, ".reg i%d = r%d\n.reg s%d = r%d\n.reg v%d = r%d\n",
			f, 8+f, f, 16+f, f, 24+f)
	}
	for f := 0; f < ChaosLanes; f++ {
		base := chaosRegionBase + f*chaosRegionCap
		fmt.Fprintf(&b, `
.fu %[1]d
A0: iadd #0, #0, s%[1]d
A1: iadd #0, #0, i%[1]d
LP: load #%[2]d, i%[1]d, v%[1]d
A3: iadd s%[1]d, v%[1]d, s%[1]d
A4: iadd i%[1]d, #1, i%[1]d
A5: lt i%[1]d, n
A6: nop => if cc%[1]d LP DN
DN: store s%[1]d, #%[3]d
DF: nop => halt
`, f, base, ChaosOutBase+f)
	}
	return b.String()
}

// chaosVLIWSrc assembles the lockstep VLIW baseline: the same four
// reductions advance together through the single sequencer, one element
// per lane per loop pass.
func chaosVLIWSrc() string {
	lane := func(op func(f int) string) string {
		parts := make([]string, ChaosLanes)
		for f := 0; f < ChaosLanes; f++ {
			parts[f] = op(f)
		}
		return strings.Join(parts, " | ")
	}
	var b strings.Builder
	b.WriteString(".machine vliw\n.fus 4\n.reg i = r1\n.reg n = r2\n")
	for f := 0; f < ChaosLanes; f++ {
		fmt.Fprintf(&b, ".reg s%d = r%d\n.reg v%d = r%d\n", f, 16+f, f, 24+f)
	}
	fmt.Fprintf(&b, "W0: %s => goto W1\n",
		lane(func(f int) string { return fmt.Sprintf("iadd #0, #0, s%d", f) }))
	b.WriteString("W1: iadd #0, #0, i => goto LP\n")
	fmt.Fprintf(&b, "LP: %s => goto L2\n",
		lane(func(f int) string {
			return fmt.Sprintf("load #%d, i, v%d", chaosRegionBase+f*chaosRegionCap, f)
		}))
	fmt.Fprintf(&b, "L2: %s => goto L3\n",
		lane(func(f int) string { return fmt.Sprintf("iadd s%d, v%d, s%d", f, f, f) }))
	b.WriteString("L3: iadd i, #1, i => goto L4\n")
	b.WriteString("L4: lt i, n => goto L5\n")
	b.WriteString("L5: nop => if cc0 LP ST\n")
	fmt.Fprintf(&b, "ST: %s => goto FIN\n",
		lane(func(f int) string { return fmt.Sprintf("store s%d, #%d", f, ChaosOutBase+f) }))
	b.WriteString("FIN: nop => halt\n")
	return b.String()
}

// ChaosSums returns the expected per-stream sums.
func ChaosSums(data [ChaosLanes][]int32) [ChaosLanes]int32 {
	var want [ChaosLanes]int32
	for f := range data {
		for _, v := range data[f] {
			want[f] += v
		}
	}
	return want
}

// ChaosData derives deterministic per-lane input data of length n from
// a seed, without any host randomness.
func ChaosData(n int, seed int64) [ChaosLanes][]int32 {
	var data [ChaosLanes][]int32
	x := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for f := range data {
		data[f] = make([]int32, n)
		for i := range data[f] {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			data[f][i] = int32(x%2001) - 1000
		}
	}
	return data
}

// ChaosStreams builds the workload over per-lane data slices of equal
// length 1..128.
func ChaosStreams(data [ChaosLanes][]int32) *Instance {
	n := len(data[0])
	if n < 1 || n > chaosRegionCap {
		panic(fmt.Sprintf("workloads: ChaosStreams length %d outside 1..%d", n, chaosRegionCap))
	}
	for f := range data {
		if len(data[f]) != n {
			panic("workloads: ChaosStreams lanes must have equal length")
		}
	}
	inst := &Instance{
		Name: fmt.Sprintf("chaos-streams-%d", n),
		XIMD: mustAssemble("chaos-streams", chaosXIMDSrc()),
		VLIW: mustVLIW("chaos-streams-vliw", mustAssemble("chaos-streams-vliw", chaosVLIWSrc())),
		Regs: map[uint8]isa.Word{2: isa.WordFromInt(int32(n))},
	}
	inst.NewEnv = func() *Env {
		m := mem.NewShared(0)
		for f := range data {
			m.PokeInts(uint32(chaosRegionBase+f*chaosRegionCap), data[f]...)
		}
		return &Env{
			Mem: m,
			Check: func(*regfile.File) error {
				for f := 0; f < ChaosLanes; f++ {
					if err := ChaosCheckLane(m, data, f); err != nil {
						return err
					}
				}
				return nil
			},
		}
	}
	return inst
}

// ChaosCheckLane verifies one stream's output cell, so degraded runs
// can verify exactly the surviving streams.
func ChaosCheckLane(m *mem.Shared, data [ChaosLanes][]int32, f int) error {
	want := ChaosSums(data)[f]
	if got := int32(m.Peek(ChaosOutBase + uint32(f)).Int()); got != want {
		return fmt.Errorf("stream %d: OUT=%d, want %d", f, got, want)
	}
	return nil
}
