// Package wire is the minimal binary codec under the checkpoint
// format: a little-endian append-only Writer and a bounds-checked,
// error-latching Reader. It exists as its own dependency-free package
// so that every state-owning layer (regfile, mem, core, vliw) can
// serialize its own snapshot fields without importing the checkpoint
// store that frames and persists them — internal/ckpt composes the
// per-package encoders, never the other way around.
//
// The encoding is deliberately plain: fixed-width little-endian
// integers and length-prefixed byte strings, no varints, no
// reflection. Checkpoint portability and versioning are handled one
// layer up (internal/ckpt owns the magic/version header); wire only
// guarantees that a Reader over a Writer's bytes yields the values
// back in order, and that a Reader over arbitrary bytes never panics
// or over-reads — it latches an error and returns zero values instead.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is latched by a Reader that runs out of bytes.
var ErrTruncated = errors.New("wire: truncated input")

// Writer accumulates an encoded byte string.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded bytes accumulated so far.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the encoded length so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends an int64 (two's complement, little-endian).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bytes32 appends a uint32 length prefix followed by the bytes.
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// U64s appends a uint32 count followed by the values.
func (w *Writer) U64s(vs []uint64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// Reader decodes a Writer's byte string. The first decode failure
// latches an error; every later read returns the zero value, so
// decoders can run straight-line and check Err once at the end.
type Reader struct {
	data []byte
	err  error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the latched decode error, nil if every read succeeded.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.data) }

// fail latches err (keeping the first) and empties the input.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	r.data = nil
}

func (r *Reader) take(n int) []byte {
	if len(r.data) < n {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool; any byte other than 0 or 1 is a decode error.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(errors.New("wire: invalid bool"))
		return false
	}
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bytes32 reads a length-prefixed byte string. The length is checked
// against the remaining input before allocating, so a corrupt prefix
// cannot demand an arbitrary allocation.
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	if uint64(n) > uint64(len(r.data)) {
		r.fail(fmt.Errorf("wire: length prefix %d exceeds %d remaining bytes", n, len(r.data)))
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes32()) }

// Count reads a uint32 element count and validates it against the
// remaining input at elemSize bytes per element, so corrupt counts
// fail instead of allocating.
func (r *Reader) Count(elemSize int) int {
	n := r.U32()
	if elemSize > 0 && uint64(n)*uint64(elemSize) > uint64(len(r.data)) {
		r.fail(fmt.Errorf("wire: count %d exceeds remaining input", n))
		return 0
	}
	if n > math.MaxInt32 {
		r.fail(fmt.Errorf("wire: count %d out of range", n))
		return 0
	}
	return int(n)
}

// U64s reads a count-prefixed []uint64; a zero count yields nil.
func (r *Reader) U64s() []uint64 {
	n := r.Count(8)
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	return out
}
