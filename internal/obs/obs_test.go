package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le-semantics: a value equal to
// a bucket's upper bound lands in that bucket (inclusive upper bounds),
// a value above every bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2.5, 10})
	for _, v := range []float64{
		0,    // -> le=1
		1,    // -> le=1 (boundary is inclusive)
		1.01, // -> le=2.5
		2.5,  // -> le=2.5
		10,   // -> le=10
		10.5, // -> +Inf
		-3,   // -> le=1 (below the first bound still lands in it)
	} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	want := []uint64{3, 2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d count = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if sum, want := h.Sum(), 0+1+1.01+2.5+10+10.5-3; math.Abs(sum-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", sum, want)
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing buckets did not panic")
		}
	}()
	NewRegistry().Histogram("bad", "", []float64{1, 1})
}

// TestRegistryConcurrent races registration-as-lookup against
// increments: 16 goroutines all get-or-create the same counter,
// gauge, and histogram names and bang on them. Run under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared_total", "shared").Inc()
				r.Gauge("shared_gauge", "").Add(1)
				r.Histogram("shared_seconds", "", DefBuckets).Observe(float64(i) / perG)
				r.Counter(fmt.Sprintf("per_goroutine_%d_total", g), "").Inc()
			}
		}(g)
	}
	wg.Wait()
	if v := r.Counter("shared_total", "").Value(); v != goroutines*perG {
		t.Errorf("shared_total = %d, want %d", v, goroutines*perG)
	}
	if v := r.Gauge("shared_gauge", "").Value(); v != goroutines*perG {
		t.Errorf("shared_gauge = %d, want %d", v, goroutines*perG)
	}
	if v := r.Histogram("shared_seconds", "", nil).Count(); v != goroutines*perG {
		t.Errorf("shared_seconds count = %d, want %d", v, goroutines*perG)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "shared_total 16000") {
		t.Errorf("exposition missing shared_total:\n%s", sb.String())
	}
}

func TestRegistryTypeCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryRejectsInvalidName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("1bad-name", "")
}

// TestExpositionGolden holds the Prometheus text format byte-for-byte:
// HELP/TYPE headers, name-sorted series, cumulative histogram buckets
// with inclusive le labels, the implicit +Inf bucket, and _sum/_count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ximdd_jobs_total", "Jobs accepted into the queue.")
	c.Add(3)
	g := r.Gauge("ximdd_jobs_running", "Jobs currently executing.")
	g.Set(2)
	r.GaugeFunc("ximdd_queue_depth", "Submitted jobs waiting for a worker.", func() float64 { return 5 })
	h := r.Histogram("ximdd_job_queue_wait_seconds", "Time from submit to execution start.", []float64{0.01, 0.1, 1})
	h.Observe(0.01) // inclusive: lands in le="0.01"
	h.Observe(0.5)
	h.Observe(7)
	// "anon" sorts first and has no help: no HELP line, TYPE only.
	r.Counter("anon_total", "").Inc()

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE anon_total counter
anon_total 1
# HELP ximdd_job_queue_wait_seconds Time from submit to execution start.
# TYPE ximdd_job_queue_wait_seconds histogram
ximdd_job_queue_wait_seconds_bucket{le="0.01"} 1
ximdd_job_queue_wait_seconds_bucket{le="0.1"} 1
ximdd_job_queue_wait_seconds_bucket{le="1"} 2
ximdd_job_queue_wait_seconds_bucket{le="+Inf"} 3
ximdd_job_queue_wait_seconds_sum 7.51
ximdd_job_queue_wait_seconds_count 3
# HELP ximdd_jobs_running Jobs currently executing.
# TYPE ximdd_jobs_running gauge
ximdd_jobs_running 2
# HELP ximdd_jobs_total Jobs accepted into the queue.
# TYPE ximdd_jobs_total counter
ximdd_jobs_total 3
# HELP ximdd_queue_depth Submitted jobs waiting for a worker.
# TYPE ximdd_queue_depth gauge
ximdd_queue_depth 5
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestRingWraparound drives a ring past its capacity and checks the
// snapshot window slides correctly at every step.
func TestRingWraparound(t *testing.T) {
	const capacity = 4
	r := NewRing[int](capacity)
	if r.Cap() != capacity || r.Len() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d", r.Cap(), r.Len())
	}
	for i := 0; i < 11; i++ {
		r.Append(i)
		wantLen := i + 1
		if wantLen > capacity {
			wantLen = capacity
		}
		if r.Len() != wantLen {
			t.Fatalf("after %d appends: Len = %d, want %d", i+1, r.Len(), wantLen)
		}
		snap := r.Snapshot()
		if len(snap) != wantLen {
			t.Fatalf("after %d appends: snapshot len = %d, want %d", i+1, len(snap), wantLen)
		}
		for j, v := range snap {
			want := i + 1 - wantLen + j
			if v != want {
				t.Fatalf("after %d appends: snapshot[%d] = %d, want %d (%v)", i+1, j, v, want, snap)
			}
		}
	}
	// Snapshot is a copy: mutating it does not corrupt the ring.
	snap := r.Snapshot()
	snap[0] = -1
	if r.Snapshot()[0] == -1 {
		t.Fatal("snapshot aliases ring storage")
	}
}

func TestRingRejectsZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewRing[int](0)
}
