package obs

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// DefBuckets are the default histogram buckets for latency in seconds,
// matching the Prometheus client default so dashboards transfer.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket histogram. Observations are attributed to
// the first bucket whose upper bound is >= the value (the Prometheus
// le-semantics: bucket bounds are inclusive upper bounds); values above
// every bound land in the implicit +Inf bucket. Counts and the running
// sum are atomics, so Observe is safe from any goroutine and
// allocation-free.
//
// Consistency note: a concurrent scrape may observe a bucket increment
// before the matching sum update (or vice versa). Each individual
// counter is monotone, which is all Prometheus rate math requires.
type Histogram struct {
	help    string
	bounds  []float64       // strictly increasing upper bounds, +Inf implicit
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(help string, buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing at %v, %v",
				buckets[i-1], buckets[i]))
		}
	}
	if n := len(buckets); n > 0 && math.IsInf(buckets[n-1], +1) {
		panic("obs: +Inf bucket is implicit; do not pass it")
	}
	h := &Histogram{
		help:   help,
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the implicit +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the owning bucket, the same estimate Prometheus'
// histogram_quantile computes. Returns 0 with no observations. Values
// landing in the implicit +Inf bucket clamp to the highest finite
// bound, so the estimate never invents an unbounded value.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (bound-lo)*((rank-cum)/c)
		}
		cum += c
	}
	// Rank falls in the +Inf bucket: clamp to the largest finite bound.
	if n := len(h.bounds); n > 0 {
		return h.bounds[n-1]
	}
	return 0
}

func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) helpText() string   { return h.help }

func (h *Histogram) writeSamples(w *bufio.Writer, name string) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %s\n", name, formatFloat(bound), strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %s\n", name, strconv.FormatUint(cum, 10))
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %s\n", name, strconv.FormatUint(h.count.Load(), 10))
}
