package obs

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Distributed tracing: Span/Tracer/SpanStore are the service plane's
// counterpart of the per-cycle trace recorder. A trace is a tree of
// timed spans that may cross processes — the coordinator's request at
// the root, worker-side job phases underneath — stitched together by
// (trace id, parent span id) pairs carried in the TraceHeader.
//
// Clock discipline: span durations and sibling ordering come from the
// monotonic clock (time.Time subtraction). Wall-clock timestamps appear
// only as the anchor of each process-local subtree root (a Root or
// Adopt span); child spans carry a monotonic offset from that anchor.
// Clocks across hosts are never assumed synchronized, and no wall-clock
// value ever feeds a duration.

// TraceHeader is the HTTP header that propagates trace context between
// processes: "<trace id>-<parent span id>", both lowercase hex.
const TraceHeader = "X-Ximd-Trace"

// SpanContext is the propagated half of a span: enough to parent a
// remote child under it.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether both ids are present.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// FormatTraceHeader renders a SpanContext as the TraceHeader value.
func FormatTraceHeader(sc SpanContext) string { return sc.TraceID + "-" + sc.SpanID }

// ParseTraceHeader parses a TraceHeader value. A malformed or empty
// header returns ok=false — the caller starts a fresh root trace; bad
// propagation must never fail a request.
func ParseTraceHeader(s string) (SpanContext, bool) {
	if len(s) != idHexLen*2+1 || s[idHexLen] != '-' {
		return SpanContext{}, false
	}
	tid, sid := s[:idHexLen], s[idHexLen+1:]
	if !isHex(tid) || !isHex(sid) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: tid, SpanID: sid}, true
}

// idHexLen is the length of a trace or span id in hex characters.
const idHexLen = 16

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func newID() string {
	var b [idHexLen / 2]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// Span is one timed node of a trace tree. The exported fields are the
// wire form (NDJSON export and cross-process import both use them); the
// unexported fields exist only on live spans created by a Tracer.
//
// A live span's attribute map is guarded, so SetAttr and Finish are
// safe from any goroutine; Finish freezes a copy into the store exactly
// once (later calls are no-ops), and methods on a nil *Span are no-ops,
// so lower layers thread spans without caring whether tracing is on.
type Span struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// Service names the emitting process role ("ximdd", "ximdc").
	Service string `json:"service,omitempty"`
	// StartUnixMS is the wall-clock anchor, set only on process-local
	// subtree roots (Root and Adopt spans).
	StartUnixMS int64 `json:"start_unix_ms,omitempty"`
	// StartOffMS is the monotonic offset from the local anchor.
	StartOffMS float64 `json:"start_off_ms"`
	// Ms is the span's monotonic duration in fractional milliseconds.
	Ms float64 `json:"ms"`
	// Attrs are string key/value annotations (job_id, digest, worker,
	// drop_reason, ...), frozen at Finish.
	Attrs map[string]string `json:"attrs,omitempty"`

	t      *Tracer
	anchor time.Time // local subtree root's start; shared by descendants
	start  time.Time
	live   *spanLive // nil on imported/frozen spans
}

// spanLive is the mutable state of an in-flight span, behind a pointer
// so Span values can be copied into the store without copying a lock.
type spanLive struct {
	mu    sync.Mutex
	attrs map[string]string
	done  bool
}

// Tracer mints spans for one service into one store.
type Tracer struct {
	service string
	store   *SpanStore
}

// NewTracer returns a Tracer stamping Service=service whose finished
// spans land in store.
func NewTracer(service string, store *SpanStore) *Tracer {
	return &Tracer{service: service, store: store}
}

func (t *Tracer) newSpan(traceID, parentID, name string, root bool) *Span {
	now := time.Now()
	s := &Span{
		TraceID:  traceID,
		SpanID:   newID(),
		ParentID: parentID,
		Name:     name,
		Service:  t.service,
		t:        t,
		anchor:   now,
		start:    now,
		live:     &spanLive{},
	}
	if root {
		s.StartUnixMS = now.UnixMilli()
	}
	return s
}

// Root starts a new trace: fresh trace id, wall-clock anchor.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(newID(), "", name, true)
}

// Adopt continues a remote trace: same trace id, parented under the
// remote span. The span anchors wall-clock locally — it is the root of
// this process's subtree.
func (t *Tracer) Adopt(sc SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		return t.Root(name)
	}
	return t.newSpan(sc.TraceID, sc.SpanID, name, true)
}

// Child starts a child span sharing the receiver's local anchor. Safe
// to call concurrently for siblings: it only reads the parent's
// immutable fields.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	return &Span{
		TraceID:    s.TraceID,
		SpanID:     newID(),
		ParentID:   s.SpanID,
		Name:       name,
		Service:    s.Service,
		StartOffMS: clampMS(now.Sub(s.anchor)),
		t:          s.t,
		anchor:     s.anchor,
		start:      now,
		live:       &spanLive{},
	}
}

// Context returns the propagation context for parenting remote
// children under this span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// SetAttr annotates the span; no-op after Finish or on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.live == nil {
		return
	}
	s.live.mu.Lock()
	if !s.live.done {
		if s.live.attrs == nil {
			s.live.attrs = make(map[string]string, 4)
		}
		s.live.attrs[key] = value
	}
	s.live.mu.Unlock()
}

// SetAttrInt annotates the span with a decimal integer value.
func (s *Span) SetAttrInt(key string, value uint64) {
	s.SetAttr(key, strconv.FormatUint(value, 10))
}

// Finish freezes the span — duration from the monotonic clock — and
// appends a copy to the tracer's store. Exactly once; later calls and
// nil receivers are no-ops.
func (s *Span) Finish() { s.finish(time.Since(s.startTime()), false) }

// FinishWith freezes the span with a pre-measured duration, backdating
// its start offset — for phases measured before the span object
// existed (e.g. decode happened while validating the request).
func (s *Span) FinishWith(d time.Duration) { s.finish(d, true) }

func (s *Span) startTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

func (s *Span) finish(d time.Duration, backdate bool) {
	if s == nil || s.live == nil {
		return
	}
	s.live.mu.Lock()
	if s.live.done {
		s.live.mu.Unlock()
		return
	}
	s.live.done = true
	attrs := s.live.attrs
	s.live.mu.Unlock()

	cp := *s
	cp.Ms = clampMS(d)
	if backdate {
		if off := clampMS(time.Since(s.anchor)) - cp.Ms; off > 0 {
			cp.StartOffMS = off
		} else {
			cp.StartOffMS = 0
		}
	}
	if len(attrs) > 0 {
		cp.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			cp.Attrs[k] = v
		}
	}
	cp.t, cp.live = nil, nil
	if s.t != nil && s.t.store != nil {
		s.t.store.Add(cp)
	}
}

func clampMS(d time.Duration) float64 {
	if d < 0 {
		return 0
	}
	return float64(d) / float64(time.Millisecond)
}

// SpanStore is a bounded in-memory store of finished spans: a mutex
// around the flight recorder's Ring (the Ring itself is single-writer
// by contract), evicting oldest-first once full. It holds frozen Span
// values only — local Finish copies and cross-process imports.
type SpanStore struct {
	mu   sync.Mutex
	ring *Ring[Span]
}

// DefaultSpanStoreSize is the default retention: plenty for thousands
// of jobs' phase spans at well under a kilobyte each.
const DefaultSpanStoreSize = 8192

// NewSpanStore returns a store retaining the last capacity spans;
// capacity <= 0 selects DefaultSpanStoreSize.
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanStoreSize
	}
	return &SpanStore{ring: NewRing[Span](capacity)}
}

// Add appends one finished span, evicting the oldest when full. Used
// by Finish and by cross-process import (coordinator pulling worker
// spans).
func (st *SpanStore) Add(sp Span) {
	st.mu.Lock()
	st.ring.Append(sp)
	st.mu.Unlock()
}

// Len returns the number of retained spans.
func (st *SpanStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ring.Len()
}

// Snapshot returns the retained spans, oldest first.
func (st *SpanStore) Snapshot() []Span {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ring.Snapshot()
}

// Trace returns every retained span of one trace, oldest first.
func (st *SpanStore) Trace(traceID string) []Span {
	all := st.Snapshot()
	var out []Span
	for _, sp := range all {
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}

// TraceFilter selects traces for SpanStore.Summaries. Zero values
// match everything; Job/Sweep/Digest match a trace when any of its
// spans carries the corresponding attribute (job_id, sweep_id,
// digest); MinMS drops traces whose root duration is shorter.
type TraceFilter struct {
	Job    string
	Sweep  string
	Digest string
	MinMS  float64
}

// TraceSummary is one entry of GET /v1/traces.
type TraceSummary struct {
	TraceID     string  `json:"trace_id"`
	Root        string  `json:"root,omitempty"`
	Service     string  `json:"service,omitempty"`
	StartUnixMS int64   `json:"start_unix_ms,omitempty"`
	Ms          float64 `json:"ms"`
	Spans       int     `json:"spans"`
	// JobIDs and Digest aggregate the matching attrs across the
	// trace's spans, for quick scanning.
	JobIDs []string `json:"job_ids,omitempty"`
	Digest string   `json:"digest,omitempty"`
}

// Summaries groups retained spans by trace, newest trace first.
func (st *SpanStore) Summaries(f TraceFilter) []TraceSummary {
	all := st.Snapshot()
	byTrace := make(map[string][]Span)
	order := make([]string, 0, 16) // trace ids, oldest first
	for _, sp := range all {
		if _, seen := byTrace[sp.TraceID]; !seen {
			order = append(order, sp.TraceID)
		}
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	out := make([]TraceSummary, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- { // newest first
		spans := byTrace[order[i]]
		if sum, ok := summarize(order[i], spans, f); ok {
			out = append(out, sum)
		}
	}
	return out
}

func summarize(traceID string, spans []Span, f TraceFilter) (TraceSummary, bool) {
	sum := TraceSummary{TraceID: traceID, Spans: len(spans)}
	ids := make(map[string]struct{})
	jobMatch, sweepMatch, digestMatch := f.Job == "", f.Sweep == "", f.Digest == ""
	inSet := make(map[string]bool, len(spans))
	for _, sp := range spans {
		inSet[sp.SpanID] = true
	}
	var root *Span
	for i := range spans {
		sp := &spans[i]
		if sp.Attrs != nil {
			if id := sp.Attrs["job_id"]; id != "" {
				ids[id] = struct{}{}
				if id == f.Job {
					jobMatch = true
				}
			}
			if sp.Attrs["sweep_id"] == f.Sweep && f.Sweep != "" {
				sweepMatch = true
			}
			if d := sp.Attrs["digest"]; d != "" {
				if sum.Digest == "" {
					sum.Digest = d
				}
				if d == f.Digest {
					digestMatch = true
				}
			}
		}
		// The summary root is the trace's best top: a span with no
		// retained parent, preferring true roots (no parent at all) and,
		// among those, the longest.
		if sp.ParentID == "" || !inSet[sp.ParentID] {
			switch {
			case root == nil:
				root = sp
			case (sp.ParentID == "") && root.ParentID != "":
				root = sp
			case (sp.ParentID == "") == (root.ParentID == "") && sp.Ms > root.Ms:
				root = sp
			}
		}
	}
	if root != nil {
		sum.Root, sum.Service = root.Name, root.Service
		sum.StartUnixMS, sum.Ms = root.StartUnixMS, root.Ms
	}
	if !jobMatch || !sweepMatch || !digestMatch || sum.Ms < f.MinMS {
		return TraceSummary{}, false
	}
	for id := range ids {
		sum.JobIDs = append(sum.JobIDs, id)
	}
	sort.Strings(sum.JobIDs)
	return sum, true
}

// TreeLine is one NDJSON line of GET /v1/traces/{id}: the span plus
// its computed depth in the assembled tree (0 = root). Lines come in
// depth-first order, so streaming clients can indent as they read.
type TreeLine struct {
	Span
	Depth int `json:"depth"`
}

// AssembleTree orders one trace's spans depth-first. Roots are spans
// whose parent is absent from the set (true roots, or subtree roots
// whose remote parent was never imported); siblings order by wall
// anchor, then monotonic offset, then span id — deterministic for a
// fixed span set.
func AssembleTree(spans []Span) []TreeLine {
	// Dedupe by span id (first occurrence wins): cross-process import
	// can deliver the same span twice, and a duplicated node would
	// multiply every subtree under it.
	inSet := make(map[string]bool, len(spans))
	uniq := spans[:0:0]
	for _, sp := range spans {
		if inSet[sp.SpanID] {
			continue
		}
		inSet[sp.SpanID] = true
		uniq = append(uniq, sp)
	}
	spans = uniq
	children := make(map[string][]Span)
	var roots []Span
	for _, sp := range spans {
		if sp.ParentID != "" && inSet[sp.ParentID] && sp.ParentID != sp.SpanID {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	order := func(s []Span) {
		sort.SliceStable(s, func(a, b int) bool {
			if s[a].StartUnixMS != s[b].StartUnixMS {
				return s[a].StartUnixMS < s[b].StartUnixMS
			}
			if s[a].StartOffMS != s[b].StartOffMS {
				return s[a].StartOffMS < s[b].StartOffMS
			}
			return s[a].SpanID < s[b].SpanID
		})
	}
	order(roots)
	for _, c := range children {
		order(c)
	}
	out := make([]TreeLine, 0, len(spans))
	var walk func(sp Span, depth int)
	walk = func(sp Span, depth int) {
		if depth > len(spans) { // cycle guard; cannot happen with minted ids
			return
		}
		out = append(out, TreeLine{Span: sp, Depth: depth})
		for _, c := range children[sp.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return out
}

// traceListBody is the JSON body of GET /v1/traces.
type traceListBody struct {
	Count  int            `json:"count"`
	Traces []TraceSummary `json:"traces"`
}

// TraceListHandler serves GET /v1/traces over the store: trace
// summaries, newest first, filtered by ?job=, ?sweep=, ?digest=,
// ?min_ms= and capped by ?limit=.
func TraceListHandler(st *SpanStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		f := TraceFilter{Job: q.Get("job"), Sweep: q.Get("sweep"), Digest: q.Get("digest")}
		if v := q.Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				writeTraceError(w, http.StatusBadRequest, fmt.Sprintf("bad min_ms %q: %v", v, err))
				return
			}
			f.MinMS = ms
		}
		sums := st.Summaries(f)
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeTraceError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", v))
				return
			}
			if n < len(sums) {
				sums = sums[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		_ = enc.Encode(traceListBody{Count: len(sums), Traces: sums})
	})
}

// TraceTreeHandler serves GET /v1/traces/{id}: the assembled span tree
// as NDJSON in depth-first order, one TreeLine per line. 404 when the
// store retains no span of that trace.
func TraceTreeHandler(st *SpanStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		spans := st.Trace(id)
		if len(spans) == 0 {
			writeTraceError(w, http.StatusNotFound, fmt.Sprintf("unknown trace: %s", id))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		for _, line := range AssembleTree(spans) {
			if err := enc.Encode(line); err != nil {
				return // client went away
			}
		}
	})
}

func writeTraceError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ParseTraceNDJSON decodes a GET /v1/traces/{id} NDJSON body back into
// spans — the cross-process import path (the coordinator stitching
// worker subtrees into its fleet-wide store). Unknown fields (depth)
// are ignored; a malformed line fails the whole parse.
func ParseTraceNDJSON(body []byte) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(line, &sp); err != nil {
			return nil, fmt.Errorf("obs: bad span line %q: %w", line, err)
		}
		out = append(out, sp)
	}
	return out, sc.Err()
}
