// Package obs is the observability layer of the XIMD reproduction: a
// stdlib-only concurrent metrics registry (counters, gauges, fixed-
// bucket histograms) with Prometheus text exposition, and the bounded
// flight-recorder ring the simulators use for crash postmortems.
//
// Design constraints, in priority order:
//
//   - Zero overhead when unused. Nothing in this package touches the
//     simulators' Step path; instrumented layers (the ximdd service,
//     the runner) observe around runs, never inside the cycle loop.
//     Metric updates are single atomic operations, safe from any
//     goroutine, and allocation-free.
//   - Deterministic exposition. /metrics output is sorted by metric
//     name and formatted with strconv (never maps or %v float noise),
//     so golden tests can hold the format byte-for-byte.
//   - No dependencies. The package imports only the standard library,
//     mirroring the rest of the repository's stdlib-only service stack.
//
// Registration is get-or-create: calling Counter twice with one name
// returns the same *Counter, so concurrently-initialized layers can
// share series without coordination. Registering one name as two
// different metric types is a programming error and panics.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// metric is one registered series: its metadata plus the sample lines
// it contributes to an exposition.
type metric interface {
	metricType() string // "counter", "gauge", or "histogram"
	helpText() string
	// writeSamples appends the metric's sample lines (without HELP/TYPE
	// headers) for the given metric name.
	writeSamples(w *bufio.Writer, name string)
}

// Registry holds a set of named metrics. The zero value is not usable;
// create with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// validName reports whether name is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register get-or-creates the named metric: if name is free, build
// constructs it; if name is taken by the same type, the existing metric
// is returned. A name collision across types panics — that is a
// programming error, not a runtime condition.
func (r *Registry) register(name string, build func() metric) metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[name]; ok {
		fresh := build()
		if existing.metricType() != fresh.metricType() {
			panic(fmt.Sprintf("obs: metric %q registered as both %s and %s",
				name, existing.metricType(), fresh.metricType()))
		}
		return existing
	}
	m := build()
	r.byName[name] = m
	return m
}

// Counter returns the registered counter named name, creating it if
// needed. help is used only on first registration.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a counter", name))
	}
	return c
}

// Gauge returns the registered gauge named name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a gauge", name))
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time (queue depths, cache sizes — state owned elsewhere).
// fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, func() metric { return &gaugeFunc{help: help, fn: fn} })
	if _, ok := m.(*gaugeFunc); !ok {
		panic(fmt.Sprintf("obs: metric %q is not a gauge func", name))
	}
}

// Histogram returns the registered histogram named name, creating it
// with the given bucket upper bounds if needed. Bounds must be strictly
// increasing; the implicit +Inf bucket is always present and must not
// be passed. Buckets are fixed at creation — re-registration reuses the
// first bounds and ignores later ones.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	m := r.register(name, func() metric { return newHistogram(help, buckets) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a histogram", name))
	}
	return h
}

// WriteText writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	metrics := make([]metric, len(names))
	sort.Strings(names)
	for i, name := range names {
		metrics[i] = r.byName[name]
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for i, name := range names {
		m := metrics[i]
		if help := m.helpText(); help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, m.metricType())
		m.writeSamples(bw, name)
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving WriteText — the GET /metrics
// endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips, "+Inf"/"-Inf" for
// infinities.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v    atomic.Uint64
	help string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricType() string { return "counter" }
func (c *Counter) helpText() string   { return c.help }
func (c *Counter) writeSamples(w *bufio.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, strconv.FormatUint(c.v.Load(), 10))
}

// Gauge is an integer-valued metric that can go up and down.
type Gauge struct {
	v    atomic.Int64
	help string
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) helpText() string   { return g.help }
func (g *Gauge) writeSamples(w *bufio.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, strconv.FormatInt(g.v.Load(), 10))
}

// gaugeFunc is a gauge computed at exposition time.
type gaugeFunc struct {
	help string
	fn   func() float64
}

func (g *gaugeFunc) metricType() string { return "gauge" }
func (g *gaugeFunc) helpText() string   { return g.help }
func (g *gaugeFunc) writeSamples(w *bufio.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.fn()))
}
