package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	st := NewSpanStore(16)
	tr := NewTracer("ximdd", st)
	root := tr.Root("job")
	hdr := FormatTraceHeader(root.Context())
	sc, ok := ParseTraceHeader(hdr)
	if !ok {
		t.Fatalf("ParseTraceHeader(%q) not ok", hdr)
	}
	if sc.TraceID != root.TraceID || sc.SpanID != root.SpanID {
		t.Fatalf("round trip mismatch: got %+v want trace=%s span=%s", sc, root.TraceID, root.SpanID)
	}
}

func TestTraceHeaderMalformedStartsNewRoot(t *testing.T) {
	bad := []string{
		"",
		"nonsense",
		"deadbeef",                           // no separator
		"deadbeefdeadbeef-",                  // empty span id
		"-deadbeefdeadbeef",                  // empty trace id
		"DEADBEEFDEADBEEF-deadbeefdeadbeef",  // uppercase
		"deadbeefdeadbee-deadbeefdeadbeef",   // short trace id
		"deadbeefdeadbeef-deadbeefdeadbeefa", // long span id
		"deadbeefdeadbeefxdeadbeefdeadbeef",  // wrong separator
		"zzzzzzzzzzzzzzzz-deadbeefdeadbeef",  // non-hex
	}
	tr := NewTracer("ximdd", NewSpanStore(16))
	for _, h := range bad {
		sc, ok := ParseTraceHeader(h)
		if ok {
			t.Errorf("ParseTraceHeader(%q) ok, want malformed", h)
		}
		// The contract: a malformed header adopts into a fresh root, never an error.
		sp := tr.Adopt(sc, "job")
		if sp == nil || sp.ParentID != "" || sp.TraceID == "" || sp.StartUnixMS == 0 {
			t.Errorf("Adopt after malformed %q: want fresh wall-anchored root, got %+v", h, sp)
		}
	}
}

func TestAdoptContinuesRemoteTrace(t *testing.T) {
	st := NewSpanStore(16)
	coord := NewTracer("ximdc", st)
	root := coord.Root("request")

	worker := NewTracer("ximdd", st)
	job := worker.Adopt(root.Context(), "job")
	if job.TraceID != root.TraceID {
		t.Fatalf("adopted span trace id = %s, want %s", job.TraceID, root.TraceID)
	}
	if job.ParentID != root.SpanID {
		t.Fatalf("adopted span parent = %s, want %s", job.ParentID, root.SpanID)
	}
	if job.StartUnixMS == 0 {
		t.Fatal("adopted span must carry its own wall-clock anchor")
	}
	child := job.Child("execute")
	if child.StartUnixMS != 0 {
		t.Fatal("non-root child must not carry a wall-clock anchor")
	}
	if child.Service != "ximdd" {
		t.Fatalf("child service = %q, want ximdd", child.Service)
	}
}

func TestNilSpanMethodsAreNoOps(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 7)
	s.Finish()
	s.FinishWith(time.Millisecond)
	if c := s.Child("x"); c != nil {
		t.Fatalf("nil.Child() = %+v, want nil", c)
	}
	if sc := s.Context(); sc.Valid() {
		t.Fatalf("nil.Context() = %+v, want zero", sc)
	}
}

func TestSpanFinishOnceAndAttrsFrozen(t *testing.T) {
	st := NewSpanStore(16)
	tr := NewTracer("t", st)
	sp := tr.Root("r")
	sp.SetAttr("job_id", "j-1")
	sp.Finish()
	sp.SetAttr("late", "x") // after Finish: dropped
	sp.Finish()             // second finish: no second store entry
	sp.FinishWith(time.Second)
	if st.Len() != 1 {
		t.Fatalf("store len = %d, want 1", st.Len())
	}
	got := st.Snapshot()[0]
	if got.Attrs["job_id"] != "j-1" {
		t.Fatalf("attrs = %v, want job_id=j-1", got.Attrs)
	}
	if _, ok := got.Attrs["late"]; ok {
		t.Fatal("attr set after Finish must not appear")
	}
}

func TestConcurrentSpanCreationAndFinish(t *testing.T) {
	st := NewSpanStore(4096)
	tr := NewTracer("t", st)
	root := tr.Root("root")
	const goroutines, perG = 16, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c := root.Child("work")
				c.SetAttr("g", fmt.Sprint(g))
				c.SetAttrInt("i", uint64(i))
				// Hammer the shared root concurrently too.
				root.SetAttr(fmt.Sprintf("g%d", g), fmt.Sprint(i))
				c.Finish()
			}
		}(g)
	}
	wg.Wait()
	root.Finish()
	want := goroutines*perG + 1
	if st.Len() != want {
		t.Fatalf("store len = %d, want %d", st.Len(), want)
	}
	for _, sp := range st.Snapshot() {
		if sp.TraceID != root.TraceID {
			t.Fatalf("span %s has trace %s, want %s", sp.SpanID, sp.TraceID, root.TraceID)
		}
	}
}

func TestSpanStoreEvictionOrder(t *testing.T) {
	st := NewSpanStore(4)
	tr := NewTracer("t", st)
	var ids []string
	for i := 0; i < 7; i++ {
		sp := tr.Root("r")
		sp.SetAttrInt("i", uint64(i))
		ids = append(ids, sp.SpanID)
		sp.Finish()
	}
	got := st.Snapshot()
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	// Oldest-first snapshot of the newest 4: spans 3,4,5,6.
	for i, sp := range got {
		if sp.SpanID != ids[3+i] {
			t.Fatalf("slot %d = %s, want %s (evict oldest first)", i, sp.SpanID, ids[3+i])
		}
		if want := fmt.Sprint(3 + i); sp.Attrs["i"] != want {
			t.Fatalf("slot %d attr i = %s, want %s", i, sp.Attrs["i"], want)
		}
	}
}

func TestFinishWithBackdatesOffset(t *testing.T) {
	st := NewSpanStore(8)
	tr := NewTracer("t", st)
	root := tr.Root("r")
	time.Sleep(5 * time.Millisecond)
	c := root.Child("decode")
	c.FinishWith(2 * time.Millisecond) // measured before the span existed
	got := st.Snapshot()[0]
	if got.Ms < 1.9 || got.Ms > 2.1 {
		t.Fatalf("Ms = %v, want ~2", got.Ms)
	}
	if got.StartOffMS <= 0 {
		t.Fatalf("StartOffMS = %v, want backdated positive offset", got.StartOffMS)
	}
	root.Finish()
}

func TestAssembleTreeDepthsAndOrder(t *testing.T) {
	st := NewSpanStore(32)
	tr := NewTracer("ximdc", st)
	root := tr.Root("request")
	p1 := root.Child("placement")
	p1.SetAttr("drop_reason", "worker_lost")
	// Simulate a worker subtree whose parent is the placement span.
	wtr := NewTracer("ximdd", st)
	wjob := wtr.Adopt(p1.Context(), "job")
	wexec := wjob.Child("execute")
	time.Sleep(time.Millisecond)
	wexec.Finish()
	wjob.Finish()
	p1.Finish()
	p2 := root.Child("placement")
	p2.Finish()
	root.Finish()

	lines := AssembleTree(st.Trace(root.TraceID))
	if len(lines) != 5 {
		t.Fatalf("tree has %d lines, want 5", len(lines))
	}
	depth := map[string]int{}
	for _, l := range lines {
		depth[l.SpanID] = l.Depth
	}
	if depth[root.SpanID] != 0 || depth[p1.SpanID] != 1 || depth[p2.SpanID] != 1 ||
		depth[wjob.SpanID] != 2 || depth[wexec.SpanID] != 3 {
		t.Fatalf("depths wrong: %v", depth)
	}
	if lines[0].SpanID != root.SpanID {
		t.Fatal("root must come first in DFS order")
	}
	// p1 started before p2, so its subtree streams first.
	if lines[1].SpanID != p1.SpanID {
		t.Fatalf("line 1 = %s, want first placement %s", lines[1].SpanID, p1.SpanID)
	}
}

func TestAssembleTreeOrphanBecomesRoot(t *testing.T) {
	st := NewSpanStore(8)
	wtr := NewTracer("ximdd", st)
	// Adopted from a remote parent that was never imported.
	job := wtr.Adopt(SpanContext{TraceID: strings.Repeat("ab", 8), SpanID: strings.Repeat("cd", 8)}, "job")
	job.Finish()
	lines := AssembleTree(st.Trace(job.TraceID))
	if len(lines) != 1 || lines[0].Depth != 0 {
		t.Fatalf("orphan subtree must root at depth 0, got %+v", lines)
	}
}

func TestTraceHandlersAndNDJSON(t *testing.T) {
	st := NewSpanStore(64)
	tr := NewTracer("ximdd", st)
	fast := tr.Root("job")
	fast.SetAttr("job_id", "j-1")
	fast.SetAttr("digest", "sha256:aaaa")
	fast.Finish()
	slow := tr.Root("job")
	slow.SetAttr("job_id", "j-2")
	ch := slow.Child("execute")
	time.Sleep(12 * time.Millisecond)
	ch.Finish()
	slow.Finish()

	list := TraceListHandler(st)
	rec := httptest.NewRecorder()
	list.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/traces", nil))
	var body struct {
		Count  int            `json:"count"`
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("list body: %v", err)
	}
	if body.Count != 2 {
		t.Fatalf("count = %d, want 2", body.Count)
	}
	if body.Traces[0].TraceID != slow.TraceID {
		t.Fatal("newest trace must come first")
	}

	// Filter by job id.
	rec = httptest.NewRecorder()
	list.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/traces?job=j-1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Count != 1 || body.Traces[0].TraceID != fast.TraceID {
		t.Fatalf("job filter: err=%v body=%+v", err, body)
	}
	// Filter by digest.
	rec = httptest.NewRecorder()
	list.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/traces?digest=sha256:aaaa", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Count != 1 || body.Traces[0].Digest != "sha256:aaaa" {
		t.Fatalf("digest filter: err=%v body=%+v", err, body)
	}
	// Min-duration filter keeps only the slow trace.
	rec = httptest.NewRecorder()
	list.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/traces?min_ms=10", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Count != 1 || body.Traces[0].TraceID != slow.TraceID {
		t.Fatalf("min_ms filter: err=%v body=%+v", err, body)
	}
	// Bad min_ms is a 400 (explicit query error, not propagation).
	rec = httptest.NewRecorder()
	list.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/traces?min_ms=oops", nil))
	if rec.Code != 400 {
		t.Fatalf("bad min_ms status = %d, want 400", rec.Code)
	}

	// Tree endpoint: NDJSON, parseable by the cross-process importer.
	mux := newTestMux(st)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/traces/"+slow.TraceID, nil))
	if rec.Code != 200 {
		t.Fatalf("tree status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	spans, err := ParseTraceNDJSON(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("ParseTraceNDJSON: %v", err)
	}
	if len(spans) != 2 {
		t.Fatalf("parsed %d spans, want 2", len(spans))
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/traces/0000000000000000", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown trace status = %d, want 404", rec.Code)
	}
}

func newTestMux(st *SpanStore) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /v1/traces/{id}", TraceTreeHandler(st))
	return mux
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram("t", []float64{1, 2, 4})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	// 10 observations in (1,2]: uniform interpolation within the bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if q := h.Quantile(0.5); q < 1.4 || q > 1.6 {
		t.Fatalf("p50 = %v, want ~1.5", q)
	}
	if q := h.Quantile(1); q != 2 {
		t.Fatalf("p100 = %v, want bucket bound 2", q)
	}
	// An observation beyond every bound clamps to the highest finite bound.
	h.Observe(100)
	if q := h.Quantile(0.999); q != 4 {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 4", q)
	}
}
