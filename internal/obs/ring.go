package obs

// Ring is the flight recorder's bounded buffer: it retains the last
// Cap() values appended, overwriting the oldest once full. The
// simulators hang one off the cycle tracer so that when a run dies with
// a SimError, the final window of architectural state is available for
// a postmortem without having recorded (or allocated for) the whole
// run.
//
// Ring is not safe for concurrent use; a machine's tracer runs on one
// goroutine, which is the only writer.
type Ring[T any] struct {
	buf  []T
	n    int // number of valid entries, <= len(buf)
	next int // index the next Append writes
}

// NewRing returns a ring retaining the last capacity values; capacity
// must be positive.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("obs: ring capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Append records v, evicting the oldest value when full.
func (r *Ring[T]) Append(v T) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Len returns the number of retained values.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the retention capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Snapshot returns the retained values, oldest first, as a fresh slice.
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
