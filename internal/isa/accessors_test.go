package isa

import (
	"strings"
	"testing"
)

func TestBuilderAccessors(t *testing.T) {
	b := NewBuilder(3)
	if b.NumFU() != 3 || b.Len() != 0 {
		t.Fatalf("fresh builder: NumFU=%d Len=%d", b.NumFU(), b.Len())
	}
	b.Set(2, 0, HaltParcel)
	if b.Len() != 3 {
		t.Fatalf("Len after Set(2,...) = %d", b.Len())
	}
	b.Label("x", 2)
	if a, ok := b.LabelAddr("x"); !ok || a != 2 {
		t.Fatalf("LabelAddr = %d, %v", a, ok)
	}
	if _, ok := b.LabelAddr("y"); ok {
		t.Fatal("LabelAddr found undefined label")
	}
	b.Set(0, 0, HaltParcel)
	b.Set(1, 0, HaltParcel)
	p := b.MustBuild()
	if p.Len() != 3 {
		t.Fatalf("program length %d", p.Len())
	}
}

func TestNewBuilderPanicsOnBadWidth(t *testing.T) {
	for _, n := range []int{0, 9, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBuilder(%d) did not panic", n)
				}
			}()
			NewBuilder(n)
		}()
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	b := NewBuilder(1)
	b.Set(0, 0, Parcel{Data: Nop, Ctrl: Goto(9)}) // out-of-range target
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid program")
		}
	}()
	b.MustBuild()
}

func TestOperandIsReg(t *testing.T) {
	if !R(3).IsReg() || I(3).IsReg() {
		t.Fatal("IsReg broken")
	}
}

func TestTrapErrorMessage(t *testing.T) {
	e := &TrapError{Reason: "integer divide by zero"}
	if !strings.Contains(e.Error(), "divide by zero") {
		t.Fatalf("Error() = %q", e.Error())
	}
}

func TestParcelStringForms(t *testing.T) {
	if got := TrapParcel.String(); got != "trap" {
		t.Fatalf("trap parcel = %q", got)
	}
	p := Parcel{
		Data: DataOp{Op: OpIAdd, A: R(1), B: I(2), Dest: 3},
		Ctrl: IfCC(0, 4, 5),
		Sync: Done,
	}
	want := "iadd r1, #2, r3 ; if cc0 4 5 ; DONE"
	if got := p.String(); got != want {
		t.Fatalf("parcel = %q, want %q", got, want)
	}
}

func TestCtrlValidate(t *testing.T) {
	cases := []struct {
		c  CtrlOp
		ok bool
	}{
		{Goto(0), true},
		{Halt(), true},
		{IfCC(3, 0, 0), true},
		{IfCC(4, 0, 0), false},                               // FU out of range for 4-FU machine
		{CtrlOp{Kind: CtrlKind(9)}, false},                   // bad kind
		{CtrlOp{Kind: CtrlCond, Cond: CondKind(9)}, false},   // bad cond
		{CtrlOp{Kind: CtrlCond, Cond: CondAllSSMask}, false}, // empty mask
		{IfAllSSMask(0b1, 0, 0), true},
		{IfAllSS(0, 0), true},
	}
	for _, c := range cases {
		err := c.c.Validate(4)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) = %v, want ok=%v", c.c, err, c.ok)
		}
	}
}

func TestWriteProgramRejectsInvalid(t *testing.T) {
	var sb strings.Builder
	bad := &Program{NumFU: 0}
	if err := WriteProgram(discardWriter{&sb}, bad); err == nil {
		t.Fatal("WriteProgram accepted invalid program")
	}
}

type discardWriter struct{ sb *strings.Builder }

func (d discardWriter) Write(p []byte) (int, error) { return d.sb.Write(p) }
