package isa

import (
	"strings"
	"testing"
)

func TestBuilderLabelsAndRefs(t *testing.T) {
	b := NewBuilder(1)
	b.Set(0, 0, Parcel{Data: Nop, Ctrl: Goto(0)})
	b.RefT1(0, 0, "end")
	b.Set(1, 0, Parcel{Data: Nop, Ctrl: IfCC(0, 0, 0)})
	b.RefT1(1, 0, "end")
	b.RefT2(1, 0, "top")
	b.Label("top", 0)
	b.Label("end", 2)
	b.Set(2, 0, HaltParcel)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.Instrs[0][0].Ctrl.T1 != 2 {
		t.Errorf("forward ref not resolved: T1 = %d", p.Instrs[0][0].Ctrl.T1)
	}
	if p.Instrs[1][0].Ctrl.T1 != 2 || p.Instrs[1][0].Ctrl.T2 != 0 {
		t.Errorf("cond refs = %d/%d", p.Instrs[1][0].Ctrl.T1, p.Instrs[1][0].Ctrl.T2)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(1)
	b.Set(0, 0, Parcel{Data: Nop, Ctrl: Goto(0)})
	b.RefT1(0, 0, "nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v, want undefined-label error", err)
	}
}

func TestBuilderDuplicateParcel(t *testing.T) {
	b := NewBuilder(1)
	b.Set(0, 0, HaltParcel)
	b.Set(0, 0, HaltParcel)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate error", err)
	}
}

func TestBuilderConflictingLabel(t *testing.T) {
	b := NewBuilder(1)
	b.Set(0, 0, HaltParcel)
	b.Label("x", 0)
	b.Label("x", 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted conflicting label binding")
	}
}

func TestBuilderFUOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.Set(0, 2, HaltParcel)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted FU out of range")
	}
}

func TestBuilderEntryFromStartLabel(t *testing.T) {
	b := NewBuilder(1)
	b.Set(0, 0, HaltParcel)
	b.Set(1, 0, HaltParcel)
	b.Label("start", 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 1 {
		t.Errorf("Entry = %d, want 1", p.Entry)
	}
}

func TestBuilderUnsetSlotsAreTraps(t *testing.T) {
	b := NewBuilder(4)
	b.Set(0, 0, HaltParcel)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for fu := 1; fu < 4; fu++ {
		if !p.Instrs[0][fu].Trap {
			t.Errorf("fu %d: unset slot is not a trap parcel", fu)
		}
	}
	if p.OccupiedParcels() != 1 {
		t.Errorf("OccupiedParcels = %d, want 1", p.OccupiedParcels())
	}
}

func TestFillVLIWControl(t *testing.T) {
	b := NewBuilder(4)
	b.Set(0, 0, Parcel{Data: DataOp{Op: OpIAdd, A: R(1), B: R(2), Dest: 3}, Ctrl: IfCC(2, 0, 0)})
	b.RefT1(0, 0, "end")
	b.RefT2(0, 0, "next")
	b.Set(0, 2, Parcel{Data: DataOp{Op: OpISub, A: R(4), B: R(5), Dest: 6}, Ctrl: Goto(0)})
	b.Label("next", 1)
	b.Set(1, 0, HaltParcel)
	b.Label("end", 2)
	b.Set(2, 0, HaltParcel)
	b.FillVLIWControl()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lead := p.Instrs[0][0].Ctrl
	for fu := 0; fu < 4; fu++ {
		got := p.Instrs[0][fu]
		if got.Trap {
			t.Fatalf("fu %d still trap after FillVLIWControl", fu)
		}
		if !got.Ctrl.Equal(lead) {
			t.Errorf("fu %d ctrl = %v, want %v", fu, got.Ctrl, lead)
		}
	}
	// FU2's data op must be preserved.
	if p.Instrs[0][2].Data.Op != OpISub {
		t.Errorf("fu2 data op = %v", p.Instrs[0][2].Data.Op)
	}
	// Label refs must have been duplicated: every parcel branches to 2/1.
	for fu := 0; fu < 4; fu++ {
		if p.Instrs[0][fu].Ctrl.T1 != 2 || p.Instrs[0][fu].Ctrl.T2 != 1 {
			t.Errorf("fu %d targets = %d/%d, want 2/1", fu, p.Instrs[0][fu].Ctrl.T1, p.Instrs[0][fu].Ctrl.T2)
		}
	}
	// All parcels at the halt rows must carry the halt control.
	for fu := 0; fu < 4; fu++ {
		if p.Instrs[2][fu].Ctrl.Kind != CtrlHalt {
			t.Errorf("fu %d at end: ctrl = %v", fu, p.Instrs[2][fu].Ctrl)
		}
	}
}

func TestProgramValidateCatchesBadTargets(t *testing.T) {
	p := &Program{
		Instrs: []Instruction{{}},
		NumFU:  1,
	}
	p.Instrs[0][0] = Parcel{Data: Nop, Ctrl: Goto(5)}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range branch target")
	}
}

func TestProgramParcelOutOfRange(t *testing.T) {
	p := buildTinyProgram(t)
	if got := p.Parcel(99, 0); !got.Trap {
		t.Error("out-of-range fetch should trap")
	}
	if got := p.Parcel(0, 99); !got.Trap {
		t.Error("out-of-range FU fetch should trap")
	}
}

func TestProgramLabelAtDeterministic(t *testing.T) {
	p := buildTinyProgram(t)
	p.Labels["zz"] = 0
	p.Labels["aa"] = 0
	name, ok := p.LabelAt(0)
	if !ok || name != "aa" {
		t.Errorf("LabelAt = %q, %v; want aa (lexically smallest)", name, ok)
	}
}

func TestProgramString(t *testing.T) {
	p := buildTinyProgram(t)
	s := p.String()
	if !strings.Contains(s, "start:") || !strings.Contains(s, "iadd #1, #2, r1") {
		t.Errorf("listing missing content:\n%s", s)
	}
}
