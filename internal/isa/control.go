package isa

import (
	"fmt"
	"strings"
)

// Sync is the value of a functional unit's synchronization signal SS_i
// while it executes a parcel (Section 2.2). The signal is combinational:
// during cycle t, SS_i carries the Sync field of the parcel FU i executes
// at cycle t, and every sequencer sees it that same cycle.
type Sync uint8

const (
	// Busy indicates the FU has not reached a synchronization point.
	Busy Sync = iota
	// Done indicates the FU has reached a synchronization point (or that
	// the guarded value it produces is available, Figure 12).
	Done
)

// String returns the assembler spelling of the sync value.
func (s Sync) String() string {
	if s == Done {
		return "DONE"
	}
	return "BUSY"
}

// CondKind selects which condition the branch-target multiplexer evaluates
// (Figure 8). XIMD-1 defines branches on a single condition code, a single
// sync signal, all sync signals, and any sync signal; the masked variants
// generalize the ALL/ANY forms to a subset of FUs, supporting the partial
// barriers mentioned at the end of Section 3.3 ("synchronizations between
// only some of the program threads").
type CondKind uint8

const (
	// CondCC is true when CC_Idx == TRUE.
	CondCC CondKind = iota
	// CondNotCC is true when CC_Idx == FALSE.
	CondNotCC
	// CondSS is true when SS_Idx == DONE.
	CondSS
	// CondNotSS is true when SS_Idx == BUSY.
	CondNotSS
	// CondAllSS is true when every SS_i == DONE (the paper's ∏ form).
	CondAllSS
	// CondAnySS is true when at least one SS_i == DONE (the paper's Σ form).
	CondAnySS
	// CondAllSSMask is true when SS_i == DONE for every FU i in Mask.
	CondAllSSMask
	// CondAnySSMask is true when SS_i == DONE for some FU i in Mask.
	CondAnySSMask

	numCondKinds
)

// NumCondKinds is the number of defined condition kinds.
const NumCondKinds = int(numCondKinds)

// Valid reports whether k is a defined condition kind.
func (k CondKind) Valid() bool { return k < numCondKinds }

// ReadsSS reports whether the condition observes the synchronization-
// signal network (any of the SS/ALL/ANY forms). A parcel whose data
// operation is a nop and whose branch condition reads SS is a
// synchronization spin — the profiler's sync-wait stall class.
func (k CondKind) ReadsSS() bool {
	switch k {
	case CondSS, CondNotSS, CondAllSS, CondAnySS, CondAllSSMask, CondAnySSMask:
		return true
	}
	return false
}

// CtrlKind is the top-level shape of a parcel's control operation.
type CtrlKind uint8

const (
	// CtrlGoto unconditionally selects branch target T1 (the paper's
	// "Target 1"/"Target 2" operations are both expressed as CtrlGoto with
	// the desired address in T1).
	CtrlGoto CtrlKind = iota
	// CtrlCond selects T1 when the condition holds, else T2.
	CtrlCond
	// CtrlHalt stops the functional unit. The paper's research model does
	// not define program termination; CtrlHalt is this implementation's
	// termination convention (simulation ends when every FU has halted).
	CtrlHalt

	numCtrlKinds
)

// Valid reports whether k is a defined control kind.
func (k CtrlKind) Valid() bool { return k < numCtrlKinds }

// Addr is an instruction-memory address. Each address holds one
// instruction (one parcel per FU).
type Addr uint16

// MaxAddr is the largest encodable instruction address (12-bit target
// fields in the binary parcel encoding).
const MaxAddr Addr = 1<<12 - 1

// CtrlOp is one control-path operation: the next-state function δi for the
// cycle (Figure 8). It carries two explicit branch targets and a condition
// selector. The research model has no PC incrementer, so sequential flow is
// expressed as an explicit goto to the next address.
type CtrlOp struct {
	Kind   CtrlKind
	Cond   CondKind // meaningful when Kind == CtrlCond
	Idx    uint8    // FU index for CondCC/CondNotCC/CondSS/CondNotSS
	Mask   uint8    // FU bitmask for CondAllSSMask/CondAnySSMask
	T1, T2 Addr
}

// Goto returns an unconditional branch to addr.
func Goto(addr Addr) CtrlOp { return CtrlOp{Kind: CtrlGoto, T1: addr} }

// Halt returns the halt control operation.
func Halt() CtrlOp { return CtrlOp{Kind: CtrlHalt} }

// IfCC returns a branch on CC_fu: taken to t1 when TRUE, else t2.
func IfCC(fu uint8, t1, t2 Addr) CtrlOp {
	return CtrlOp{Kind: CtrlCond, Cond: CondCC, Idx: fu, T1: t1, T2: t2}
}

// IfNotCC returns a branch taken to t1 when CC_fu is FALSE, else t2.
func IfNotCC(fu uint8, t1, t2 Addr) CtrlOp {
	return CtrlOp{Kind: CtrlCond, Cond: CondNotCC, Idx: fu, T1: t1, T2: t2}
}

// IfSS returns a branch taken to t1 when SS_fu == DONE, else t2.
func IfSS(fu uint8, t1, t2 Addr) CtrlOp {
	return CtrlOp{Kind: CtrlCond, Cond: CondSS, Idx: fu, T1: t1, T2: t2}
}

// IfNotSS returns a branch taken to t1 when SS_fu == BUSY, else t2.
func IfNotSS(fu uint8, t1, t2 Addr) CtrlOp {
	return CtrlOp{Kind: CtrlCond, Cond: CondNotSS, Idx: fu, T1: t1, T2: t2}
}

// IfAllSS returns a branch taken to t1 when every SS_i == DONE, else t2.
// This is the paper's barrier condition (Example 3).
func IfAllSS(t1, t2 Addr) CtrlOp {
	return CtrlOp{Kind: CtrlCond, Cond: CondAllSS, T1: t1, T2: t2}
}

// IfAnySS returns a branch taken to t1 when any SS_i == DONE, else t2.
func IfAnySS(t1, t2 Addr) CtrlOp {
	return CtrlOp{Kind: CtrlCond, Cond: CondAnySS, T1: t1, T2: t2}
}

// IfAllSSMask returns a branch taken to t1 when SS_i == DONE for every FU
// in mask, else t2 (partial barrier).
func IfAllSSMask(mask uint8, t1, t2 Addr) CtrlOp {
	return CtrlOp{Kind: CtrlCond, Cond: CondAllSSMask, Mask: mask, T1: t1, T2: t2}
}

// IfAnySSMask returns a branch taken to t1 when SS_i == DONE for some FU
// in mask, else t2.
func IfAnySSMask(mask uint8, t1, t2 Addr) CtrlOp {
	return CtrlOp{Kind: CtrlCond, Cond: CondAnySSMask, Mask: mask, T1: t1, T2: t2}
}

// Targets returns the set of addresses control may transfer to: one
// address for gotos, two for conditionals, none for halt.
func (c CtrlOp) Targets() []Addr {
	switch c.Kind {
	case CtrlGoto:
		return []Addr{c.T1}
	case CtrlCond:
		return []Addr{c.T1, c.T2}
	default:
		return nil
	}
}

// Equal reports whether two control operations are identical in every
// meaningful field (fields unused by the kind are ignored).
func (c CtrlOp) Equal(d CtrlOp) bool {
	if c.Kind != d.Kind {
		return false
	}
	switch c.Kind {
	case CtrlHalt:
		return true
	case CtrlGoto:
		return c.T1 == d.T1
	}
	if c.Cond != d.Cond || c.T1 != d.T1 || c.T2 != d.T2 {
		return false
	}
	switch c.Cond {
	case CondCC, CondNotCC, CondSS, CondNotSS:
		return c.Idx == d.Idx
	case CondAllSSMask, CondAnySSMask:
		return c.Mask == d.Mask
	}
	return true
}

// Validate checks structural validity of the control operation.
func (c CtrlOp) Validate(numFU int) error {
	if !c.Kind.Valid() {
		return fmt.Errorf("invalid control kind %d", uint8(c.Kind))
	}
	if c.Kind != CtrlCond {
		return nil
	}
	if !c.Cond.Valid() {
		return fmt.Errorf("invalid condition kind %d", uint8(c.Cond))
	}
	switch c.Cond {
	case CondCC, CondNotCC, CondSS, CondNotSS:
		if int(c.Idx) >= numFU {
			return fmt.Errorf("condition references FU %d on a %d-FU machine", c.Idx, numFU)
		}
	case CondAllSSMask, CondAnySSMask:
		if c.Mask == 0 {
			return fmt.Errorf("masked sync condition with empty mask")
		}
	}
	return nil
}

// condName renders the condition selector in assembler syntax.
func (c CtrlOp) condName() string {
	switch c.Cond {
	case CondCC:
		return fmt.Sprintf("cc%d", c.Idx)
	case CondNotCC:
		return fmt.Sprintf("!cc%d", c.Idx)
	case CondSS:
		return fmt.Sprintf("ss%d", c.Idx)
	case CondNotSS:
		return fmt.Sprintf("!ss%d", c.Idx)
	case CondAllSS:
		return "allss"
	case CondAnySS:
		return "anyss"
	case CondAllSSMask:
		return fmt.Sprintf("allss&%s", maskString(c.Mask))
	case CondAnySSMask:
		return fmt.Sprintf("anyss&%s", maskString(c.Mask))
	}
	return fmt.Sprintf("cond(%d)", uint8(c.Cond))
}

func maskString(mask uint8) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := 0; i < 8; i++ {
		if mask&(1<<i) != 0 {
			if !first {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", i)
			first = false
		}
	}
	b.WriteByte('}')
	return b.String()
}

// String renders the control operation in assembler syntax:
// "goto 5", "if cc2 8 2", "halt".
func (c CtrlOp) String() string {
	switch c.Kind {
	case CtrlGoto:
		return fmt.Sprintf("goto %d", c.T1)
	case CtrlHalt:
		return "halt"
	case CtrlCond:
		return fmt.Sprintf("if %s %d %d", c.condName(), c.T1, c.T2)
	}
	return fmt.Sprintf("ctrl(%d)", uint8(c.Kind))
}
