package isa

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeBasic(t *testing.T) {
	parcels := []Parcel{
		{Data: Nop, Ctrl: Goto(5)},
		{Data: DataOp{Op: OpIAdd, A: R(1), B: R(2), Dest: 3}, Ctrl: Goto(1), Sync: Done},
		{Data: DataOp{Op: OpLt, A: R(10), B: I(-42)}, Ctrl: IfCC(2, 8, 2)},
		{Data: DataOp{Op: OpLoad, A: I(100), B: R(4), Dest: 9}, Ctrl: IfAllSS(11, 10), Sync: Done},
		{Data: DataOp{Op: OpStore, A: R(1), B: R(2)}, Ctrl: Halt()},
		{Data: DataOp{Op: OpFMult, A: F(1.5), B: F(-2.0), Dest: 200}, Ctrl: IfAnySSMask(0b1010, 3, 4)},
		TrapParcel,
	}
	for _, p := range parcels {
		p = Normalize(p)
		words, err := EncodeParcel(p)
		if err != nil {
			t.Fatalf("encode %v: %v", p, err)
		}
		got, err := DecodeParcel(words)
		if err != nil {
			t.Fatalf("decode %v: %v", p, err)
		}
		if got != p {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, p)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	cases := []Parcel{
		{Data: DataOp{Op: Opcode(99)}, Ctrl: Goto(0)},
		{Data: Nop, Ctrl: CtrlOp{Kind: CtrlKind(3)}},
		{Data: Nop, Ctrl: CtrlOp{Kind: CtrlCond, Cond: CondKind(200), T1: 0, T2: 0}},
		{Data: Nop, Ctrl: Goto(MaxAddr + 1)},
		{Data: Nop, Ctrl: CtrlOp{Kind: CtrlCond, Cond: CondCC, Idx: 9, T1: 0, T2: 0}},
	}
	for i, p := range cases {
		if _, err := EncodeParcel(p); err == nil {
			t.Errorf("case %d: EncodeParcel accepted invalid parcel %+v", i, p)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][ParcelWords]uint32{
		{0xf0000000, 0, 0, 0}, // reserved bits set
		{200, 0, 0, 0},        // undefined opcode
		{3 << 8, 0, 0, 0},     // undefined control kind
	}
	for i, w := range cases {
		if _, err := DecodeParcel(w); err == nil {
			t.Errorf("case %d: DecodeParcel accepted garbage %v", i, w)
		}
	}
}

// randomParcel generates a structurally valid random parcel.
func randomParcel(r *rand.Rand, numFU int) Parcel {
	var p Parcel
	if r.Intn(20) == 0 {
		return TrapParcel
	}
	p.Data.Op = Opcode(r.Intn(NumOpcodes))
	p.Data.A = randomOperand(r)
	p.Data.B = randomOperand(r)
	p.Data.Dest = uint8(r.Intn(NumRegs))
	switch r.Intn(3) {
	case 0:
		p.Ctrl = Goto(Addr(r.Intn(int(MaxAddr) + 1)))
	case 1:
		p.Ctrl = Halt()
	default:
		p.Ctrl = CtrlOp{
			Kind: CtrlCond,
			Cond: CondKind(r.Intn(NumCondKinds)),
			Idx:  uint8(r.Intn(numFU)),
			Mask: uint8(1 + r.Intn(255)),
			T1:   Addr(r.Intn(int(MaxAddr) + 1)),
			T2:   Addr(r.Intn(int(MaxAddr) + 1)),
		}
	}
	if r.Intn(2) == 0 {
		p.Sync = Done
	}
	return Normalize(p)
}

func randomOperand(r *rand.Rand) Operand {
	if r.Intn(2) == 0 {
		return R(uint8(r.Intn(NumRegs)))
	}
	return I(int32(r.Uint32()))
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		p := randomParcel(r, NumFU)
		words, err := EncodeParcel(p)
		if err != nil {
			t.Fatalf("iter %d: encode %+v: %v", i, p, err)
		}
		got, err := DecodeParcel(words)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		if got != p {
			t.Fatalf("iter %d:\n got %+v\nwant %+v", i, got, p)
		}
	}
}

func TestNormalizeIdempotentProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		p := randomParcel(r, NumFU)
		if q := Normalize(p); q != p {
			t.Fatalf("Normalize not idempotent: %+v -> %+v", p, q)
		}
	}
}

func TestCtrlOpEqualIgnoresUnusedFields(t *testing.T) {
	a := CtrlOp{Kind: CtrlGoto, T1: 5, T2: 99, Idx: 3, Mask: 7}
	b := CtrlOp{Kind: CtrlGoto, T1: 5}
	if !a.Equal(b) {
		t.Error("goto equality should ignore T2/Idx/Mask")
	}
	c := IfAllSS(1, 2)
	d := c
	d.Idx = 5 // unused for CondAllSS
	if !c.Equal(d) {
		t.Error("allss equality should ignore Idx")
	}
	e := IfCC(1, 2, 3)
	f := IfCC(2, 2, 3)
	if e.Equal(f) {
		t.Error("cc conditions on different FUs must differ")
	}
}

func TestCtrlOpTargets(t *testing.T) {
	if got := Goto(7).Targets(); !reflect.DeepEqual(got, []Addr{7}) {
		t.Errorf("goto targets = %v", got)
	}
	if got := IfCC(0, 3, 4).Targets(); !reflect.DeepEqual(got, []Addr{3, 4}) {
		t.Errorf("cond targets = %v", got)
	}
	if got := Halt().Targets(); got != nil {
		t.Errorf("halt targets = %v", got)
	}
}

func TestCtrlOpStrings(t *testing.T) {
	cases := []struct {
		c    CtrlOp
		want string
	}{
		{Goto(5), "goto 5"},
		{Halt(), "halt"},
		{IfCC(2, 8, 2), "if cc2 8 2"},
		{IfNotCC(1, 0, 1), "if !cc1 0 1"},
		{IfSS(3, 1, 2), "if ss3 1 2"},
		{IfAllSS(11, 10), "if allss 11 10"},
		{IfAnySS(1, 2), "if anyss 1 2"},
		{IfAllSSMask(0b101, 1, 2), "if allss&{0,2} 1 2"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func buildTinyProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder(2)
	b.Label("start", 0)
	b.Set(0, 0, Parcel{Data: DataOp{Op: OpIAdd, A: I(1), B: I(2), Dest: 1}, Ctrl: Goto(1)})
	b.Set(0, 1, Parcel{Data: Nop, Ctrl: Goto(1)})
	b.Set(1, 0, HaltParcel)
	b.Set(1, 1, HaltParcel)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestProgramSerializationRoundTrip(t *testing.T) {
	p := buildTinyProgram(t)
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatalf("WriteProgram: %v", err)
	}
	q, err := ReadProgram(&buf)
	if err != nil {
		t.Fatalf("ReadProgram: %v", err)
	}
	if q.NumFU != p.NumFU || q.Entry != p.Entry || len(q.Instrs) != len(p.Instrs) {
		t.Fatalf("geometry mismatch: %+v vs %+v", q, p)
	}
	for addr := range p.Instrs {
		if q.Instrs[addr] != p.Instrs[addr] {
			t.Errorf("addr %d differs", addr)
		}
	}
}

func TestReadProgramRejectsBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := ReadProgram(buf); err == nil {
		t.Fatal("ReadProgram accepted bad magic")
	}
}

func TestReadProgramRejectsTruncated(t *testing.T) {
	p := buildTinyProgram(t)
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadProgram(bytes.NewReader(data[:len(data)-7])); err == nil {
		t.Fatal("ReadProgram accepted truncated image")
	}
}

func TestQuickOperandEncoding(t *testing.T) {
	f := func(v int32, reg uint8) bool {
		imm := decodeOperand(operandBits(I(v)), true)
		r := decodeOperand(operandBits(R(reg)), false)
		return imm.Equal(I(v)) && r.Equal(R(reg))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
