package isa

import (
	"testing"
	"testing/quick"
)

func TestOpcodeNamesUniqueAndComplete(t *testing.T) {
	seen := make(map[string]Opcode)
	for op := Opcode(0); op.Valid(); op++ {
		name := op.String()
		if name == "" {
			t.Fatalf("opcode %d has empty name", op)
		}
		if prev, ok := seen[name]; ok {
			t.Fatalf("opcodes %d and %d share name %q", prev, op, name)
		}
		seen[name] = op
		got, ok := OpcodeByName(name)
		if !ok || got != op {
			t.Fatalf("OpcodeByName(%q) = %v, %v; want %v, true", name, got, ok, op)
		}
	}
	if len(seen) != NumOpcodes {
		t.Fatalf("got %d named opcodes, want %d", len(seen), NumOpcodes)
	}
}

func TestOpcodeByNameUnknown(t *testing.T) {
	if _, ok := OpcodeByName("frobnicate"); ok {
		t.Fatal("OpcodeByName accepted an undefined mnemonic")
	}
}

func TestInvalidOpcodeString(t *testing.T) {
	bad := Opcode(200)
	if bad.Valid() {
		t.Fatal("opcode 200 should be invalid")
	}
	if got := bad.String(); got != "opcode(200)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestClassShapes(t *testing.T) {
	cases := []struct {
		op                  Opcode
		readsA, readsB      bool
		writesReg, writesCC bool
	}{
		{OpNop, false, false, false, false},
		{OpIAdd, true, true, true, false},
		{OpINeg, true, false, true, false},
		{OpNot, true, false, true, false},
		{OpLt, true, true, false, true},
		{OpFGe, true, true, false, true},
		{OpLoad, true, true, true, false},
		{OpStore, true, true, false, false},
		{OpItoF, true, false, true, false},
	}
	for _, c := range cases {
		cl := ClassOf(c.op)
		if cl.ReadsA() != c.readsA || cl.ReadsB() != c.readsB ||
			cl.WritesReg() != c.writesReg || cl.WritesCC() != c.writesCC {
			t.Errorf("%s: class shape = (%v,%v,%v,%v), want (%v,%v,%v,%v)",
				c.op, cl.ReadsA(), cl.ReadsB(), cl.WritesReg(), cl.WritesCC(),
				c.readsA, c.readsB, c.writesReg, c.writesCC)
		}
	}
}

func TestEveryOpcodeHasClass(t *testing.T) {
	if len(opcodeClasses) != NumOpcodes {
		t.Fatalf("opcodeClasses has %d entries, want %d", len(opcodeClasses), NumOpcodes)
	}
	for op := Opcode(0); op.Valid(); op++ {
		cl := ClassOf(op)
		switch cl {
		case ClassNop, ClassBinary, ClassUnary, ClassCompare, ClassLoad, ClassStore:
		default:
			t.Errorf("%s: undefined class %d", op, cl)
		}
	}
}

func TestIsFloat(t *testing.T) {
	floats := []Opcode{OpFAdd, OpFSub, OpFMult, OpFDiv, OpFNeg, OpFAbs, OpFEq, OpFNe, OpFLt, OpFLe, OpFGt, OpFGe, OpFtoI}
	ints := []Opcode{OpIAdd, OpLt, OpLoad, OpStore, OpNop, OpItoF, OpShl}
	for _, op := range floats {
		if !op.IsFloat() {
			t.Errorf("%s.IsFloat() = false, want true", op)
		}
	}
	for _, op := range ints {
		if op.IsFloat() {
			t.Errorf("%s.IsFloat() = true, want false", op)
		}
	}
}

func TestWordConversions(t *testing.T) {
	if got := WordFromInt(-7).Int(); got != -7 {
		t.Errorf("int round trip = %d", got)
	}
	if got := WordFromFloat(2.5).Float(); got != 2.5 {
		t.Errorf("float round trip = %g", got)
	}
	// Int and float views of the same bits coexist.
	w := WordFromFloat(1.0)
	if w.Int() != 0x3f800000 {
		t.Errorf("bits of 1.0f = %#x", uint32(w))
	}
}

func TestWordIntRoundTripProperty(t *testing.T) {
	f := func(v int32) bool { return WordFromInt(v).Int() == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOperandString(t *testing.T) {
	cases := []struct {
		o    Operand
		want string
	}{
		{R(0), "r0"},
		{R(255), "r255"},
		{I(42), "#42"},
		{I(-3), "#-3"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.o, got, c.want)
		}
	}
}

func TestOperandEqual(t *testing.T) {
	if !R(5).Equal(R(5)) || R(5).Equal(R(6)) {
		t.Error("register equality broken")
	}
	if !I(7).Equal(I(7)) || I(7).Equal(I(8)) {
		t.Error("immediate equality broken")
	}
	if R(7).Equal(I(7)) {
		t.Error("register equals immediate")
	}
}

func TestDataOpString(t *testing.T) {
	cases := []struct {
		d    DataOp
		want string
	}{
		{Nop, "nop"},
		{DataOp{Op: OpIAdd, A: R(1), B: I(4), Dest: 3}, "iadd r1, #4, r3"},
		{DataOp{Op: OpINeg, A: R(2), Dest: 9}, "ineg r2, r9"},
		{DataOp{Op: OpLt, A: R(1), B: I(2)}, "lt r1, #2"},
		{DataOp{Op: OpStore, A: R(4), B: R(5)}, "store r4, r5"},
		{DataOp{Op: OpLoad, A: I(16), B: R(2), Dest: 7}, "load #16, r2, r7"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
