package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func evalInt(t *testing.T, op Opcode, a, b int32) int32 {
	t.Helper()
	r, _, err := EvalALU(op, WordFromInt(a), WordFromInt(b))
	if err != nil {
		t.Fatalf("EvalALU(%s, %d, %d): %v", op, a, b, err)
	}
	return r.Int()
}

func evalCC(t *testing.T, op Opcode, a, b Word) bool {
	t.Helper()
	_, cc, err := EvalALU(op, a, b)
	if err != nil {
		t.Fatalf("EvalALU(%s): %v", op, err)
	}
	return cc
}

func TestIntegerArithmetic(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b int32
		want int32
	}{
		{OpIAdd, 2, 3, 5},
		{OpIAdd, math.MaxInt32, 1, math.MinInt32}, // wraparound
		{OpISub, 2, 3, -1},
		{OpIMult, -4, 6, -24},
		{OpIDiv, 7, 2, 3},
		{OpIDiv, -7, 2, -3}, // Go/C truncating division
		{OpIMod, 7, 3, 1},
		{OpIMod, -7, 3, -1},
		{OpINeg, 9, 0, -9},
		{OpIAbs, -9, 0, 9},
		{OpIAbs, 9, 0, 9},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpNot, 0, 0, -1},
		{OpShl, 1, 4, 16},
		{OpShl, 1, 36, 16}, // shift amount masked to 5 bits
		{OpShr, -1, 28, 15},
		{OpSra, -16, 2, -4},
	}
	for _, c := range cases {
		if got := evalInt(t, c.op, c.a, c.b); got != c.want {
			t.Errorf("%s(%d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	for _, op := range []Opcode{OpIDiv, OpIMod} {
		_, _, err := EvalALU(op, WordFromInt(1), WordFromInt(0))
		if _, ok := err.(*TrapError); !ok {
			t.Errorf("%s by zero: err = %v, want TrapError", op, err)
		}
	}
}

func TestIntegerCompares(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b int32
		want bool
	}{
		{OpEq, 3, 3, true}, {OpEq, 3, 4, false},
		{OpNe, 3, 4, true}, {OpNe, 3, 3, false},
		{OpLt, -1, 0, true}, {OpLt, 0, 0, false},
		{OpLe, 0, 0, true}, {OpLe, 1, 0, false},
		{OpGt, 1, 0, true}, {OpGt, 0, 0, false},
		{OpGe, 0, 0, true}, {OpGe, -1, 0, false},
	}
	for _, c := range cases {
		if got := evalCC(t, c.op, WordFromInt(c.a), WordFromInt(c.b)); got != c.want {
			t.Errorf("%s(%d, %d) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	f := func(op Opcode, a, b float32) float32 {
		r, _, err := EvalALU(op, WordFromFloat(a), WordFromFloat(b))
		if err != nil {
			t.Fatalf("EvalALU(%s): %v", op, err)
		}
		return r.Float()
	}
	if got := f(OpFAdd, 1.5, 2.25); got != 3.75 {
		t.Errorf("fadd = %g", got)
	}
	if got := f(OpFSub, 1.5, 2.25); got != -0.75 {
		t.Errorf("fsub = %g", got)
	}
	if got := f(OpFMult, 3, 0.5); got != 1.5 {
		t.Errorf("fmult = %g", got)
	}
	if got := f(OpFDiv, 1, 4); got != 0.25 {
		t.Errorf("fdiv = %g", got)
	}
	if got := f(OpFDiv, 1, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("fdiv by zero = %g, want +Inf (IEEE, no trap)", got)
	}
	if got := f(OpFNeg, 2, 0); got != -2 {
		t.Errorf("fneg = %g", got)
	}
	if got := f(OpFAbs, -2, 0); got != 2 {
		t.Errorf("fabs = %g", got)
	}
}

func TestFloatCompares(t *testing.T) {
	a, b := WordFromFloat(1.5), WordFromFloat(2.5)
	if !evalCC(t, OpFLt, a, b) || evalCC(t, OpFGt, a, b) {
		t.Error("float compare ordering broken")
	}
	nan := WordFromFloat(float32(math.NaN()))
	if evalCC(t, OpFEq, nan, nan) {
		t.Error("NaN == NaN should be false")
	}
	if !evalCC(t, OpFNe, nan, nan) {
		t.Error("NaN != NaN should be true")
	}
}

func TestConversions(t *testing.T) {
	r, _, err := EvalALU(OpItoF, WordFromInt(-3), 0)
	if err != nil || r.Float() != -3.0 {
		t.Errorf("itof(-3) = %g, %v", r.Float(), err)
	}
	r, _, err = EvalALU(OpFtoI, WordFromFloat(2.9), 0)
	if err != nil || r.Int() != 2 {
		t.Errorf("ftoi(2.9) = %d, %v (want truncation)", r.Int(), err)
	}
}

func TestEvalALUMemoryOpsRejected(t *testing.T) {
	for _, op := range []Opcode{OpLoad, OpStore} {
		if _, _, err := EvalALU(op, 0, 0); err == nil {
			t.Errorf("EvalALU(%s) should refuse memory opcodes", op)
		}
	}
}

func TestEvalALUNopIsIdentityZero(t *testing.T) {
	r, cc, err := EvalALU(OpNop, WordFromInt(123), WordFromInt(456))
	if err != nil || r != 0 || cc {
		t.Errorf("nop = (%d, %v, %v)", r, cc, err)
	}
}

// Property: iadd/isub are inverses modulo 2^32.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(a, b int32) bool {
		sum, _, _ := EvalALU(OpIAdd, WordFromInt(a), WordFromInt(b))
		back, _, _ := EvalALU(OpISub, sum, WordFromInt(b))
		return back.Int() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: compare trichotomy — exactly one of lt, eq, gt holds.
func TestCompareTrichotomyProperty(t *testing.T) {
	f := func(a, b int32) bool {
		wa, wb := WordFromInt(a), WordFromInt(b)
		_, lt, _ := EvalALU(OpLt, wa, wb)
		_, eq, _ := EvalALU(OpEq, wa, wb)
		_, gt, _ := EvalALU(OpGt, wa, wb)
		n := 0
		for _, v := range []bool{lt, eq, gt} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every compare op and its negation partition all inputs.
func TestCompareNegationProperty(t *testing.T) {
	pairs := [][2]Opcode{{OpEq, OpNe}, {OpLt, OpGe}, {OpGt, OpLe}}
	f := func(a, b int32) bool {
		wa, wb := WordFromInt(a), WordFromInt(b)
		for _, pr := range pairs {
			_, x, _ := EvalALU(pr[0], wa, wb)
			_, y, _ := EvalALU(pr[1], wa, wb)
			if x == y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalCond(t *testing.T) {
	cc := []bool{true, false, true, false, false, false, false, false}
	ss := []Sync{Done, Busy, Done, Done, Busy, Busy, Busy, Busy}
	n := 4
	cases := []struct {
		c    CtrlOp
		want bool
	}{
		{IfCC(0, 1, 2), true},
		{IfCC(1, 1, 2), false},
		{IfNotCC(1, 1, 2), true},
		{IfSS(0, 1, 2), true},
		{IfSS(1, 1, 2), false},
		{IfNotSS(1, 1, 2), true},
		{IfAllSS(1, 2), false}, // SS1 is BUSY
		{IfAnySS(1, 2), true},
		{IfAllSSMask(0b1101, 1, 2), true},  // FUs 0,2,3 all DONE
		{IfAllSSMask(0b0011, 1, 2), false}, // FU1 BUSY
		{IfAnySSMask(0b0010, 1, 2), false},
		{IfAnySSMask(0b0110, 1, 2), true},
	}
	for _, c := range cases {
		if got := EvalCond(c.c, cc, ss, n); got != c.want {
			t.Errorf("EvalCond(%s) = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestEvalCondAllSSBoundedByNumFU(t *testing.T) {
	// FUs beyond numFU must not affect the reduction.
	ss := []Sync{Done, Done, Busy, Busy, Busy, Busy, Busy, Busy}
	if !EvalCond(IfAllSS(1, 2), make([]bool, 8), ss, 2) {
		t.Error("ALL-SS over first 2 FUs should be true")
	}
	if EvalCond(IfAllSS(1, 2), make([]bool, 8), ss, 3) {
		t.Error("ALL-SS over first 3 FUs should be false")
	}
}
