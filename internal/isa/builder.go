package isa

import (
	"fmt"
	"sort"
)

// Builder constructs programs programmatically with symbolic labels and
// forward references. It is the code-generation backend used by the
// workload library and the compiler; the textual assembler lowers onto it
// as well.
//
// Usage: emit parcels per (address, FU) slot with At/Emit, bind labels with
// Label, reference them with unresolved targets via RefT1/RefT2, then call
// Build to resolve references and produce a validated Program.
type Builder struct {
	numFU  int
	rows   []builderRow
	labels map[string]Addr
	refs   []labelRef
	errs   []error
}

type builderRow struct {
	parcels [NumFU]Parcel
	used    [NumFU]bool
}

type labelRef struct {
	addr   Addr
	fu     int
	target int // 1 or 2
	label  string
}

// NewBuilder creates a builder for a machine with numFU functional units.
func NewBuilder(numFU int) *Builder {
	if numFU < 1 || numFU > NumFU {
		panic(fmt.Sprintf("isa: NewBuilder(%d): FU count must be 1..%d", numFU, NumFU))
	}
	return &Builder{numFU: numFU, labels: make(map[string]Addr)}
}

// NumFU returns the functional-unit count the builder targets.
func (b *Builder) NumFU() int { return b.numFU }

// Len returns the current number of instruction addresses.
func (b *Builder) Len() int { return len(b.rows) }

func (b *Builder) grow(addr Addr) {
	for len(b.rows) <= int(addr) {
		var row builderRow
		for fu := range row.parcels {
			row.parcels[fu] = TrapParcel
		}
		b.rows = append(b.rows, row)
	}
}

// Set places a parcel at (addr, fu), growing the program as needed.
// Setting an already-occupied slot is recorded as a build error.
func (b *Builder) Set(addr Addr, fu int, p Parcel) {
	if fu < 0 || fu >= b.numFU {
		b.errs = append(b.errs, fmt.Errorf("parcel at addr %d targets FU %d on a %d-FU program", addr, fu, b.numFU))
		return
	}
	if addr > MaxAddr {
		b.errs = append(b.errs, fmt.Errorf("address %d exceeds MaxAddr %d", addr, MaxAddr))
		return
	}
	b.grow(addr)
	if b.rows[addr].used[fu] {
		b.errs = append(b.errs, fmt.Errorf("duplicate parcel at addr %d fu %d", addr, fu))
		return
	}
	b.rows[addr].parcels[fu] = Normalize(p)
	b.rows[addr].used[fu] = true
}

// Label binds name to addr. Rebinding a label to a different address is a
// build error.
func (b *Builder) Label(name string, addr Addr) {
	if prev, ok := b.labels[name]; ok && prev != addr {
		b.errs = append(b.errs, fmt.Errorf("label %q bound to both %d and %d", name, prev, addr))
		return
	}
	b.labels[name] = addr
}

// LabelAddr returns the address a label is bound to.
func (b *Builder) LabelAddr(name string) (Addr, bool) {
	a, ok := b.labels[name]
	return a, ok
}

// RefT1 records that the T1 target of the parcel at (addr, fu) should be
// resolved to the given label at Build time.
func (b *Builder) RefT1(addr Addr, fu int, label string) {
	b.refs = append(b.refs, labelRef{addr: addr, fu: fu, target: 1, label: label})
}

// RefT2 records that the T2 target of the parcel at (addr, fu) should be
// resolved to the given label at Build time.
func (b *Builder) RefT2(addr Addr, fu int, label string) {
	b.refs = append(b.refs, labelRef{addr: addr, fu: fu, target: 2, label: label})
}

// Build resolves label references, validates, and returns the program.
// The entry point is address 0 unless a label named "start" exists.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &Program{
		Instrs: make([]Instruction, len(b.rows)),
		NumFU:  b.numFU,
		Labels: make(map[string]Addr, len(b.labels)),
	}
	for addr, row := range b.rows {
		p.Instrs[addr] = row.parcels
	}
	for name, a := range b.labels {
		p.Labels[name] = a
	}
	// Resolve references deterministically.
	refs := make([]labelRef, len(b.refs))
	copy(refs, b.refs)
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].addr != refs[j].addr {
			return refs[i].addr < refs[j].addr
		}
		if refs[i].fu != refs[j].fu {
			return refs[i].fu < refs[j].fu
		}
		return refs[i].target < refs[j].target
	})
	for _, ref := range refs {
		target, ok := b.labels[ref.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q referenced at addr %d fu %d", ref.label, ref.addr, ref.fu)
		}
		if int(ref.addr) >= len(p.Instrs) {
			return nil, fmt.Errorf("label reference at out-of-range addr %d", ref.addr)
		}
		parcel := &p.Instrs[ref.addr][ref.fu]
		if ref.target == 1 {
			parcel.Ctrl.T1 = target
		} else {
			parcel.Ctrl.T2 = target
		}
	}
	if start, ok := b.labels["start"]; ok {
		p.Entry = start
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for use in tests and static
// workload construction where failure is a programming bug.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic("isa: MustBuild: " + err.Error())
	}
	return p
}

// FillVLIWControl copies the control operation and sync signal of the
// lowest-numbered occupied parcel at each address into every other parcel
// at that address, and fills unoccupied slots with nop parcels carrying
// the same control. This is the transformation the paper describes for
// running VLIW-style code on an XIMD: "the control path instruction fields
// must be duplicated in each instruction parcel, so that each functional
// unit will execute the same control" (Section 3.1).
func (b *Builder) FillVLIWControl() {
	for addr := range b.rows {
		row := &b.rows[addr]
		lead := -1
		for fu := 0; fu < b.numFU; fu++ {
			if row.used[fu] {
				lead = fu
				break
			}
		}
		if lead < 0 {
			continue
		}
		ctrl := row.parcels[lead].Ctrl
		sync := row.parcels[lead].Sync
		for fu := 0; fu < b.numFU; fu++ {
			if fu == lead {
				continue
			}
			if row.used[fu] {
				row.parcels[fu].Ctrl = ctrl
				row.parcels[fu].Sync = sync
			} else {
				row.parcels[fu] = Normalize(Parcel{Data: Nop, Ctrl: ctrl, Sync: sync})
				row.used[fu] = true
			}
		}
		// Duplicate any label references on the lead parcel for the others.
		var dup []labelRef
		for _, ref := range b.refs {
			if ref.addr == Addr(addr) && ref.fu == lead {
				for fu := 0; fu < b.numFU; fu++ {
					if fu != lead {
						dup = append(dup, labelRef{addr: ref.addr, fu: fu, target: ref.target, label: ref.label})
					}
				}
			}
		}
		b.refs = append(b.refs, dup...)
	}
}
