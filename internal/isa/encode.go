package isa

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary parcel encoding.
//
// Each parcel encodes into four 32-bit words (128 bits); an eight-FU
// instruction is therefore 1024 bits, a plausible width for a very long
// instruction word machine of this class. Layout:
//
//	w0  [ 7:0]  opcode
//	    [ 9:8]  control kind
//	    [12:10] condition kind
//	    [15:13] condition FU index
//	    [23:16] condition FU mask
//	    [24]    sync (0 = BUSY, 1 = DONE)
//	    [25]    operand A is immediate
//	    [26]    operand B is immediate
//	    [27]    trap
//	    [31:28] reserved (must be zero)
//	w1  [11:0]  branch target T1
//	    [23:12] branch target T2
//	    [31:24] destination register
//	w2  operand A: register number (low 8 bits) or full 32-bit immediate
//	w3  operand B: register number (low 8 bits) or full 32-bit immediate
//
// The 12-bit target fields bound programs to 4096 instructions (MaxAddr).

// ParcelWords is the number of 32-bit words in an encoded parcel.
const ParcelWords = 4

// EncodeParcel packs a parcel into its four-word binary form.
func EncodeParcel(p Parcel) ([ParcelWords]uint32, error) {
	var w [ParcelWords]uint32
	if p.Trap {
		w[0] = 1 << 27
		return w, nil
	}
	if err := p.Data.Validate(); err != nil {
		return w, err
	}
	if !p.Ctrl.Kind.Valid() {
		return w, fmt.Errorf("invalid control kind %d", uint8(p.Ctrl.Kind))
	}
	if p.Ctrl.Kind == CtrlCond && !p.Ctrl.Cond.Valid() {
		return w, fmt.Errorf("invalid condition kind %d", uint8(p.Ctrl.Cond))
	}
	if p.Ctrl.T1 > MaxAddr || p.Ctrl.T2 > MaxAddr {
		return w, fmt.Errorf("branch target exceeds MaxAddr: T1=%d T2=%d", p.Ctrl.T1, p.Ctrl.T2)
	}
	if p.Ctrl.Idx >= NumFU {
		return w, fmt.Errorf("condition FU index %d exceeds %d", p.Ctrl.Idx, NumFU-1)
	}

	w[0] = uint32(p.Data.Op) |
		uint32(p.Ctrl.Kind)<<8 |
		uint32(p.Ctrl.Cond)<<10 |
		uint32(p.Ctrl.Idx)<<13 |
		uint32(p.Ctrl.Mask)<<16
	if p.Sync == Done {
		w[0] |= 1 << 24
	}
	if p.Data.A.Kind == Imm {
		w[0] |= 1 << 25
	}
	if p.Data.B.Kind == Imm {
		w[0] |= 1 << 26
	}
	w[1] = uint32(p.Ctrl.T1) | uint32(p.Ctrl.T2)<<12 | uint32(p.Data.Dest)<<24
	w[2] = operandBits(p.Data.A)
	w[3] = operandBits(p.Data.B)
	return w, nil
}

func operandBits(o Operand) uint32 {
	if o.Kind == Imm {
		return uint32(o.Imm)
	}
	return uint32(o.Reg)
}

// DecodeParcel unpacks a parcel from its four-word binary form.
func DecodeParcel(w [ParcelWords]uint32) (Parcel, error) {
	if w[0]&(1<<27) != 0 {
		return TrapParcel, nil
	}
	if w[0]>>28 != 0 {
		return Parcel{}, fmt.Errorf("reserved bits set in parcel word 0: %#x", w[0])
	}
	var p Parcel
	p.Data.Op = Opcode(w[0] & 0xff)
	if !p.Data.Op.Valid() {
		return Parcel{}, fmt.Errorf("undefined opcode %d", w[0]&0xff)
	}
	p.Ctrl.Kind = CtrlKind(w[0] >> 8 & 0x3)
	if !p.Ctrl.Kind.Valid() {
		return Parcel{}, fmt.Errorf("undefined control kind %d", w[0]>>8&0x3)
	}
	p.Ctrl.Cond = CondKind(w[0] >> 10 & 0x7)
	p.Ctrl.Idx = uint8(w[0] >> 13 & 0x7)
	p.Ctrl.Mask = uint8(w[0] >> 16 & 0xff)
	if w[0]&(1<<24) != 0 {
		p.Sync = Done
	}
	p.Ctrl.T1 = Addr(w[1] & 0xfff)
	p.Ctrl.T2 = Addr(w[1] >> 12 & 0xfff)
	p.Data.Dest = uint8(w[1] >> 24)
	p.Data.A = decodeOperand(w[2], w[0]&(1<<25) != 0)
	p.Data.B = decodeOperand(w[3], w[0]&(1<<26) != 0)

	// Normalize fields the canonical form leaves zero so that
	// encode/decode round-trips compare equal with ==.
	normalizeParcel(&p)
	return p, nil
}

func decodeOperand(bits uint32, isImm bool) Operand {
	if isImm {
		return Operand{Kind: Imm, Imm: Word(bits)}
	}
	return Operand{Kind: Reg, Reg: uint8(bits)}
}

// Normalize zeroes the fields of p that its opcode class and control kind
// do not use, producing the canonical form emitted by the assembler. Two
// normalized parcels with identical behaviour compare equal with ==.
func Normalize(p Parcel) Parcel {
	normalizeParcel(&p)
	return p
}

func normalizeParcel(p *Parcel) {
	if p.Trap {
		*p = TrapParcel
		return
	}
	c := ClassOf(p.Data.Op)
	if !c.ReadsA() {
		p.Data.A = Operand{}
	}
	if !c.ReadsB() {
		p.Data.B = Operand{}
	}
	if !c.WritesReg() {
		p.Data.Dest = 0
	}
	switch p.Ctrl.Kind {
	case CtrlGoto:
		p.Ctrl.Cond, p.Ctrl.Idx, p.Ctrl.Mask, p.Ctrl.T2 = 0, 0, 0, 0
	case CtrlHalt:
		p.Ctrl = CtrlOp{Kind: CtrlHalt}
	case CtrlCond:
		switch p.Ctrl.Cond {
		case CondCC, CondNotCC, CondSS, CondNotSS:
			p.Ctrl.Mask = 0
		case CondAllSS, CondAnySS:
			p.Ctrl.Idx, p.Ctrl.Mask = 0, 0
		case CondAllSSMask, CondAnySSMask:
			p.Ctrl.Idx = 0
		}
	}
}

// WriteProgram serializes a program image (magic, geometry, entry point,
// then all parcels) in little-endian binary form. Labels are not
// serialized; the image is the machine-loadable artifact.
func WriteProgram(w io.Writer, p *Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	hdr := [4]uint32{programMagic, uint32(len(p.Instrs)), uint32(p.NumFU), uint32(p.Entry)}
	if err := binary.Write(w, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	for addr, instr := range p.Instrs {
		for fu := 0; fu < NumFU; fu++ {
			words, err := EncodeParcel(instr[fu])
			if err != nil {
				return fmt.Errorf("addr %d fu %d: %w", addr, fu, err)
			}
			if err := binary.Write(w, binary.LittleEndian, words[:]); err != nil {
				return err
			}
		}
	}
	return nil
}

const programMagic = 0x58494d44 // "XIMD"

// ReadProgram deserializes a program image written by WriteProgram.
func ReadProgram(r io.Reader) (*Program, error) {
	var hdr [4]uint32
	if err := binary.Read(r, binary.LittleEndian, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != programMagic {
		return nil, fmt.Errorf("bad program magic %#x", hdr[0])
	}
	n, numFU, entry := hdr[1], hdr[2], hdr[3]
	if n == 0 || n > uint32(MaxAddr)+1 {
		return nil, fmt.Errorf("bad program length %d", n)
	}
	if numFU < 1 || numFU > NumFU {
		return nil, fmt.Errorf("bad FU count %d", numFU)
	}
	p := &Program{
		Instrs: make([]Instruction, n),
		NumFU:  int(numFU),
		Entry:  Addr(entry),
	}
	for addr := range p.Instrs {
		for fu := 0; fu < NumFU; fu++ {
			var words [ParcelWords]uint32
			if err := binary.Read(r, binary.LittleEndian, words[:]); err != nil {
				return nil, err
			}
			parcel, err := DecodeParcel(words)
			if err != nil {
				return nil, fmt.Errorf("addr %d fu %d: %w", addr, fu, err)
			}
			p.Instrs[addr][fu] = parcel
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
