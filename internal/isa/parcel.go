package isa

import (
	"fmt"
	"strings"
)

// NumFU is the number of functional units in the XIMD-1 research model
// (Section 2.2: "The model contains 8 homogeneous universal functional
// units"). Machines may be configured narrower; NumFU is the architectural
// maximum used by fixed-size structures.
const NumFU = 8

// Parcel is the set of instruction fields that controls one functional
// unit for one cycle (Section 2.4: "Instruction Parcel"). Eight parcels
// comprise one instruction, whether or not they are issued from the same
// physical address.
type Parcel struct {
	// Data is the data-path operation.
	Data DataOp
	// Ctrl is the control-path operation (next-state function δi).
	Ctrl CtrlOp
	// Sync is the value driven on SS_i while this parcel executes.
	Sync Sync
	// Trap marks an unoccupied instruction-memory slot. The assembler
	// fills addresses that a functional unit's stream does not define with
	// trap parcels; executing one is a simulation error, which catches
	// control-flow bugs instead of silently executing garbage.
	Trap bool
}

// TrapParcel is the canonical filler for unoccupied instruction slots.
var TrapParcel = Parcel{Trap: true, Ctrl: Halt()}

// HaltParcel is a parcel that performs no operation and halts the FU.
var HaltParcel = Parcel{Data: Nop, Ctrl: Halt(), Sync: Done}

// Validate checks the parcel's structural validity for a machine with
// numFU functional units.
func (p Parcel) Validate(numFU int) error {
	if p.Trap {
		return nil
	}
	if p.Sync != Busy && p.Sync != Done {
		return fmt.Errorf("invalid sync value %d", uint8(p.Sync))
	}
	if err := p.Data.Validate(); err != nil {
		return err
	}
	return p.Ctrl.Validate(numFU)
}

// String renders the parcel as "data ; ctrl ; SYNC" in assembler syntax.
func (p Parcel) String() string {
	if p.Trap {
		return "trap"
	}
	return fmt.Sprintf("%s ; %s ; %s", p.Data, p.Ctrl, p.Sync)
}

// Instruction is one very long instruction word: one parcel per
// functional unit, all stored at the same instruction-memory address.
// Individual FUs fetch their parcel through their own program counter, so
// the parcels actually executed in a cycle may come from different
// instructions.
type Instruction [NumFU]Parcel

// Program is an assembled XIMD program: a dense instruction memory plus
// symbolic metadata. The zero value is an empty program.
type Program struct {
	// Instrs is the instruction memory; Instrs[addr][fu] is the parcel
	// fetched by functional unit fu at address addr.
	Instrs []Instruction
	// NumFU is the number of functional units the program was assembled
	// for (1..8). Parcels for FUs >= NumFU are trap parcels.
	NumFU int
	// Entry is the common start address; every FU begins execution here
	// ("Assume that in every example program, all functional units begin
	// execution together at address 00:", Figure 9).
	Entry Addr
	// Labels maps symbolic labels to addresses (for traces and
	// disassembly). May be nil.
	Labels map[string]Addr
}

// Len returns the number of instruction-memory addresses used.
func (p *Program) Len() int { return len(p.Instrs) }

// Parcel returns the parcel for functional unit fu at address addr.
// Out-of-range fetches return a trap parcel.
func (p *Program) Parcel(addr Addr, fu int) Parcel {
	if int(addr) >= len(p.Instrs) || fu < 0 || fu >= NumFU {
		return TrapParcel
	}
	return p.Instrs[addr][fu]
}

// Validate checks every parcel and branch target in the program.
func (p *Program) Validate() error {
	if p.NumFU < 1 || p.NumFU > NumFU {
		return fmt.Errorf("program NumFU = %d, want 1..%d", p.NumFU, NumFU)
	}
	if len(p.Instrs) == 0 {
		return fmt.Errorf("empty program")
	}
	if int(p.Entry) >= len(p.Instrs) {
		return fmt.Errorf("entry address %d outside program of length %d", p.Entry, len(p.Instrs))
	}
	for addr, instr := range p.Instrs {
		for fu := 0; fu < p.NumFU; fu++ {
			parcel := instr[fu]
			if err := parcel.Validate(p.NumFU); err != nil {
				return fmt.Errorf("addr %d fu %d: %w", addr, fu, err)
			}
			for _, t := range parcel.Ctrl.Targets() {
				if int(t) >= len(p.Instrs) {
					return fmt.Errorf("addr %d fu %d: branch target %d outside program of length %d",
						addr, fu, t, len(p.Instrs))
				}
			}
		}
	}
	return nil
}

// LabelAt returns a label bound to addr, if any. When several labels bind
// to the same address the lexically smallest is returned, so output is
// deterministic.
func (p *Program) LabelAt(addr Addr) (string, bool) {
	best := ""
	for name, a := range p.Labels {
		if a == addr && (best == "" || name < best) {
			best = name
		}
	}
	return best, best != ""
}

// OccupiedParcels counts non-trap parcels, a static code-size measure used
// by the Figure 13 tile-packing experiments.
func (p *Program) OccupiedParcels() int {
	n := 0
	for _, instr := range p.Instrs {
		for fu := 0; fu < p.NumFU; fu++ {
			if !instr[fu].Trap {
				n++
			}
		}
	}
	return n
}

// String renders the whole program as a listing, one address per block.
func (p *Program) String() string {
	var b strings.Builder
	for addr := range p.Instrs {
		if name, ok := p.LabelAt(Addr(addr)); ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		for fu := 0; fu < p.NumFU; fu++ {
			fmt.Fprintf(&b, "%04d.%d  %s\n", addr, fu, p.Instrs[addr][fu])
		}
	}
	return b.String()
}
