package isa

import (
	"fmt"
	"math"
	"strconv"
)

// NumRegs is the number of registers in the XIMD-1 global register file
// (Section 4.3: 256 registers).
const NumRegs = 256

// Word is the 32-bit machine word. It holds either a two's-complement
// integer or an IEEE-754 single-precision float; the interpretation is
// chosen by the opcode, exactly as on the real datapath.
type Word uint32

// Int returns the word interpreted as a signed 32-bit integer.
func (w Word) Int() int32 { return int32(w) }

// Float returns the word interpreted as an IEEE-754 float32.
func (w Word) Float() float32 { return math.Float32frombits(uint32(w)) }

// WordFromInt builds a word from a signed integer.
func WordFromInt(v int32) Word { return Word(uint32(v)) }

// WordFromFloat builds a word from a float32.
func WordFromFloat(v float32) Word { return Word(math.Float32bits(v)) }

// OperandKind distinguishes register operands from constants. The research
// model allows any operand to be a register or a constant ("The three
// operands may be registers or constants", Section 2.2).
type OperandKind uint8

const (
	// Reg is a register operand; Operand.Reg holds the register number.
	Reg OperandKind = iota
	// Imm is an immediate constant; Operand.Imm holds the raw 32 bits.
	Imm
)

// Operand is a data-operation operand: either a register number or an
// immediate 32-bit constant.
type Operand struct {
	Kind OperandKind
	Reg  uint8 // register number when Kind == Reg
	Imm  Word  // raw constant bits when Kind == Imm
}

// R returns a register operand.
func R(n uint8) Operand { return Operand{Kind: Reg, Reg: n} }

// I returns an integer immediate operand.
func I(v int32) Operand { return Operand{Kind: Imm, Imm: WordFromInt(v)} }

// F returns a float immediate operand.
func F(v float32) Operand { return Operand{Kind: Imm, Imm: WordFromFloat(v)} }

// IsReg reports whether the operand is a register.
func (o Operand) IsReg() bool { return o.Kind == Reg }

// String renders the operand in assembler syntax: registers as rN,
// constants as #v (decimal integer, or #bits:0x… if the value is not
// exactly representable in decimal integer form — i.e. never; integers
// always render in decimal).
func (o Operand) String() string {
	if o.Kind == Reg {
		return "r" + strconv.Itoa(int(o.Reg))
	}
	return "#" + strconv.Itoa(int(o.Imm.Int()))
}

// Equal reports whether two operands are identical.
func (o Operand) Equal(p Operand) bool {
	if o.Kind != p.Kind {
		return false
	}
	if o.Kind == Reg {
		return o.Reg == p.Reg
	}
	return o.Imm == p.Imm
}

// DataOp is one data-path operation: an opcode and three operand fields.
// Fields that the opcode's class does not use are ignored (and should be
// left zero). Dest must be a register operand when the class writes a
// register.
type DataOp struct {
	Op   Opcode
	A, B Operand
	Dest uint8 // destination register number
}

// Nop is the canonical no-operation data op.
var Nop = DataOp{Op: OpNop}

// Validate checks structural validity of the data operation.
func (d DataOp) Validate() error {
	if !d.Op.Valid() {
		return fmt.Errorf("invalid opcode %d", uint8(d.Op))
	}
	return nil
}

// String renders the operation in assembler syntax, e.g. "iadd r1, #4, r3".
// Compares and stores render without a destination; unary ops render with
// a single source.
func (d DataOp) String() string {
	c := ClassOf(d.Op)
	switch c {
	case ClassNop:
		return d.Op.String()
	case ClassUnary:
		return fmt.Sprintf("%s %s, r%d", d.Op, d.A, d.Dest)
	case ClassCompare, ClassStore:
		return fmt.Sprintf("%s %s, %s", d.Op, d.A, d.B)
	default: // ClassBinary, ClassLoad
		return fmt.Sprintf("%s %s, %s, r%d", d.Op, d.A, d.B, d.Dest)
	}
}
