// Package isa defines the XIMD-1 instruction set architecture from
// Wolfe & Shen, "A Variable Instruction Stream Extension to the VLIW
// Architecture" (ASPLOS 1991), Section 2.2.
//
// An XIMD instruction is composed of one instruction parcel per functional
// unit (FU). Each parcel carries:
//
//   - one data-path operation (a 3-address register/constant operation,
//     a memory operation, or a compare that sets the FU's condition code),
//   - one control-path operation (two explicit branch targets T1 and T2
//     selected by a condition over the global condition codes CC_0..CC_n-1
//     and synchronization signals SS_0..SS_n-1), and
//   - the synchronization signal value (BUSY or DONE) the FU drives while
//     executing the parcel.
//
// The research model (XIMD-1) has no program-counter incrementer: every
// parcel names its successor(s) explicitly. All operations complete in one
// cycle. Two 32-bit data types are supported, int and float.
package isa

import "fmt"

// Opcode identifies a data-path operation. The set is the closure of the
// operations used by the paper's examples plus the "common integer and
// floating point arithmetic, logical, and compare instructions" the paper
// states are available (Figure 7 and surrounding text).
type Opcode uint8

const (
	// OpNop performs no data-path operation.
	OpNop Opcode = iota

	// Integer arithmetic (Figure 7): a OP b -> d.
	OpIAdd  // a + b -> d
	OpISub  // a - b -> d
	OpIMult // a * b -> d
	OpIDiv  // a / b -> d (traps on divide by zero)
	OpIMod  // a % b -> d (traps on divide by zero)
	OpINeg  // -a -> d
	OpIAbs  // |a| -> d

	// Logical and shift operations: a OP b -> d.
	OpAnd // a & b -> d
	OpOr  // a | b -> d
	OpXor // a ^ b -> d
	OpNot // ^a -> d
	OpShl // a << b -> d (b masked to 0..31)
	OpShr // logical a >> b -> d
	OpSra // arithmetic a >> b -> d

	// Integer compares: set the executing FU's condition code register
	// CC_i to the comparison result; d is unused.
	OpEq // CC_i = (a == b)
	OpNe // CC_i = (a != b)
	OpLt // CC_i = (a < b)
	OpLe // CC_i = (a <= b)
	OpGt // CC_i = (a > b)
	OpGe // CC_i = (a >= b)

	// Floating point arithmetic: a OP b -> d on float32 values.
	OpFAdd  // a + b -> d
	OpFSub  // a - b -> d
	OpFMult // a * b -> d
	OpFDiv  // a / b -> d
	OpFNeg  // -a -> d
	OpFAbs  // |a| -> d

	// Floating point compares: set CC_i; d is unused.
	OpFEq // CC_i = (a == b)
	OpFNe // CC_i = (a != b)
	OpFLt // CC_i = (a < b)
	OpFLe // CC_i = (a <= b)
	OpFGt // CC_i = (a > b)
	OpFGe // CC_i = (a >= b)

	// Conversions.
	OpItoF // float32(int32(a)) -> d
	OpFtoI // int32(float32(a)) -> d (truncating)

	// Memory operations (Figure 7). Addresses are word addresses into the
	// shared address space.
	OpLoad  // M(a + b) -> d
	OpStore // a -> M(b); d is unused

	numOpcodes // sentinel; must remain last
)

// NumOpcodes is the number of defined opcodes; valid opcodes are
// in [0, NumOpcodes).
const NumOpcodes = int(numOpcodes)

var opcodeNames = [...]string{
	OpNop:   "nop",
	OpIAdd:  "iadd",
	OpISub:  "isub",
	OpIMult: "imult",
	OpIDiv:  "idiv",
	OpIMod:  "imod",
	OpINeg:  "ineg",
	OpIAbs:  "iabs",
	OpAnd:   "and",
	OpOr:    "or",
	OpXor:   "xor",
	OpNot:   "not",
	OpShl:   "shl",
	OpShr:   "shr",
	OpSra:   "sra",
	OpEq:    "eq",
	OpNe:    "ne",
	OpLt:    "lt",
	OpLe:    "le",
	OpGt:    "gt",
	OpGe:    "ge",
	OpFAdd:  "fadd",
	OpFSub:  "fsub",
	OpFMult: "fmult",
	OpFDiv:  "fdiv",
	OpFNeg:  "fneg",
	OpFAbs:  "fabs",
	OpFEq:   "feq",
	OpFNe:   "fne",
	OpFLt:   "flt",
	OpFLe:   "fle",
	OpFGt:   "fgt",
	OpFGe:   "fge",
	OpItoF:  "itof",
	OpFtoI:  "ftoi",
	OpLoad:  "load",
	OpStore: "store",
}

// String returns the assembler mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return fmt.Sprintf("opcode(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// OpcodeByName returns the opcode with the given assembler mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opcodeIndex[name]
	return op, ok
}

var opcodeIndex = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opcodeNames))
	for op, name := range opcodeNames {
		m[name] = Opcode(op)
	}
	return m
}()

// Class describes the structural shape of a data operation: how many
// source operands it reads and whether it writes a destination register,
// the condition code, or memory.
type Class uint8

const (
	// ClassNop has no operands and no effects.
	ClassNop Class = iota
	// ClassBinary reads a and b and writes register d.
	ClassBinary
	// ClassUnary reads a and writes register d (b unused).
	ClassUnary
	// ClassCompare reads a and b and writes the FU's condition code.
	ClassCompare
	// ClassLoad reads a and b as an address pair and writes register d.
	ClassLoad
	// ClassStore reads a (the value) and b (the address); no register
	// destination.
	ClassStore
)

var opcodeClasses = [...]Class{
	OpNop:   ClassNop,
	OpIAdd:  ClassBinary,
	OpISub:  ClassBinary,
	OpIMult: ClassBinary,
	OpIDiv:  ClassBinary,
	OpIMod:  ClassBinary,
	OpINeg:  ClassUnary,
	OpIAbs:  ClassUnary,
	OpAnd:   ClassBinary,
	OpOr:    ClassBinary,
	OpXor:   ClassBinary,
	OpNot:   ClassUnary,
	OpShl:   ClassBinary,
	OpShr:   ClassBinary,
	OpSra:   ClassBinary,
	OpEq:    ClassCompare,
	OpNe:    ClassCompare,
	OpLt:    ClassCompare,
	OpLe:    ClassCompare,
	OpGt:    ClassCompare,
	OpGe:    ClassCompare,
	OpFAdd:  ClassBinary,
	OpFSub:  ClassBinary,
	OpFMult: ClassBinary,
	OpFDiv:  ClassBinary,
	OpFNeg:  ClassUnary,
	OpFAbs:  ClassUnary,
	OpFEq:   ClassCompare,
	OpFNe:   ClassCompare,
	OpFLt:   ClassCompare,
	OpFLe:   ClassCompare,
	OpFGt:   ClassCompare,
	OpFGe:   ClassCompare,
	OpItoF:  ClassUnary,
	OpFtoI:  ClassUnary,
	OpLoad:  ClassLoad,
	OpStore: ClassStore,
}

// ClassOf returns the structural class of the opcode.
func ClassOf(op Opcode) Class {
	if int(op) < len(opcodeClasses) {
		return opcodeClasses[op]
	}
	return ClassNop
}

// ReadsA reports whether operations of class c read source operand a.
func (c Class) ReadsA() bool { return c != ClassNop }

// ReadsB reports whether operations of class c read source operand b.
func (c Class) ReadsB() bool {
	return c == ClassBinary || c == ClassCompare || c == ClassLoad || c == ClassStore
}

// WritesReg reports whether operations of class c write destination
// register d.
func (c Class) WritesReg() bool {
	return c == ClassBinary || c == ClassUnary || c == ClassLoad
}

// WritesCC reports whether operations of class c write the executing FU's
// condition code register.
func (c Class) WritesCC() bool { return c == ClassCompare }

// IsFloat reports whether the opcode interprets its operands as float32.
func (op Opcode) IsFloat() bool {
	switch op {
	case OpFAdd, OpFSub, OpFMult, OpFDiv, OpFNeg, OpFAbs,
		OpFEq, OpFNe, OpFLt, OpFLe, OpFGt, OpFGe, OpFtoI:
		return true
	}
	return false
}
