package isa

import "fmt"

// TrapError describes a data-path execution fault (divide by zero, or
// executing a trap parcel). The simulators wrap it with cycle and FU
// context.
type TrapError struct {
	Reason string
}

func (e *TrapError) Error() string { return "trap: " + e.Reason }

// EvalALU computes the pure result of a non-memory data operation on
// operand values a and b. It returns the destination value (for classes
// that write a register) and the condition-code value (for compares).
// Memory operations (OpLoad/OpStore) are not handled here; the simulators
// perform them against their memory model.
func EvalALU(op Opcode, a, b Word) (result Word, cc bool, err error) {
	switch op {
	case OpNop:
		return 0, false, nil

	case OpIAdd:
		return WordFromInt(a.Int() + b.Int()), false, nil
	case OpISub:
		return WordFromInt(a.Int() - b.Int()), false, nil
	case OpIMult:
		return WordFromInt(a.Int() * b.Int()), false, nil
	case OpIDiv:
		if b.Int() == 0 {
			return 0, false, &TrapError{Reason: "integer divide by zero"}
		}
		return WordFromInt(a.Int() / b.Int()), false, nil
	case OpIMod:
		if b.Int() == 0 {
			return 0, false, &TrapError{Reason: "integer modulo by zero"}
		}
		return WordFromInt(a.Int() % b.Int()), false, nil
	case OpINeg:
		return WordFromInt(-a.Int()), false, nil
	case OpIAbs:
		v := a.Int()
		if v < 0 {
			v = -v
		}
		return WordFromInt(v), false, nil

	case OpAnd:
		return a & b, false, nil
	case OpOr:
		return a | b, false, nil
	case OpXor:
		return a ^ b, false, nil
	case OpNot:
		return ^a, false, nil
	case OpShl:
		return a << (uint32(b) & 31), false, nil
	case OpShr:
		return a >> (uint32(b) & 31), false, nil
	case OpSra:
		return WordFromInt(a.Int() >> (uint32(b) & 31)), false, nil

	case OpEq:
		return 0, a.Int() == b.Int(), nil
	case OpNe:
		return 0, a.Int() != b.Int(), nil
	case OpLt:
		return 0, a.Int() < b.Int(), nil
	case OpLe:
		return 0, a.Int() <= b.Int(), nil
	case OpGt:
		return 0, a.Int() > b.Int(), nil
	case OpGe:
		return 0, a.Int() >= b.Int(), nil

	case OpFAdd:
		return WordFromFloat(a.Float() + b.Float()), false, nil
	case OpFSub:
		return WordFromFloat(a.Float() - b.Float()), false, nil
	case OpFMult:
		return WordFromFloat(a.Float() * b.Float()), false, nil
	case OpFDiv:
		// IEEE-754 semantics: x/0 is ±Inf or NaN, not a trap.
		return WordFromFloat(a.Float() / b.Float()), false, nil
	case OpFNeg:
		return WordFromFloat(-a.Float()), false, nil
	case OpFAbs:
		v := a.Float()
		if v < 0 {
			v = -v
		}
		return WordFromFloat(v), false, nil

	case OpFEq:
		return 0, a.Float() == b.Float(), nil
	case OpFNe:
		return 0, a.Float() != b.Float(), nil
	case OpFLt:
		return 0, a.Float() < b.Float(), nil
	case OpFLe:
		return 0, a.Float() <= b.Float(), nil
	case OpFGt:
		return 0, a.Float() > b.Float(), nil
	case OpFGe:
		return 0, a.Float() >= b.Float(), nil

	case OpItoF:
		return WordFromFloat(float32(a.Int())), false, nil
	case OpFtoI:
		return WordFromInt(int32(a.Float())), false, nil

	case OpLoad, OpStore:
		return 0, false, fmt.Errorf("isa: EvalALU called on memory opcode %s", op)
	}
	return 0, false, fmt.Errorf("isa: EvalALU called on undefined opcode %d", uint8(op))
}

// EvalCond evaluates a branch condition against the global condition codes
// and synchronization signals. cc[i] is CC_i at the start of the cycle;
// ss[i] is SS_i during the cycle (combinational, per Figure 8). Slices are
// indexed by FU number; numFU bounds the ALL/ANY reductions.
func EvalCond(c CtrlOp, cc []bool, ss []Sync, numFU int) bool {
	switch c.Cond {
	case CondCC:
		return cc[c.Idx]
	case CondNotCC:
		return !cc[c.Idx]
	case CondSS:
		return ss[c.Idx] == Done
	case CondNotSS:
		return ss[c.Idx] == Busy
	case CondAllSS:
		for i := 0; i < numFU; i++ {
			if ss[i] != Done {
				return false
			}
		}
		return true
	case CondAnySS:
		for i := 0; i < numFU; i++ {
			if ss[i] == Done {
				return true
			}
		}
		return false
	case CondAllSSMask:
		for i := 0; i < numFU; i++ {
			if c.Mask&(1<<i) != 0 && ss[i] != Done {
				return false
			}
		}
		return true
	case CondAnySSMask:
		for i := 0; i < numFU; i++ {
			if c.Mask&(1<<i) != 0 && ss[i] == Done {
				return true
			}
		}
		return false
	}
	return false
}
