// Package hostcfg parses the host-initialization flags shared by the
// xsim and vsim command-line tools: register pokes, memory pokes, and
// memory peeks.
package hostcfg

import (
	"fmt"
	"strconv"
	"strings"

	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
)

// RegPoke is one register initialization, parsed from "rN=V".
type RegPoke struct {
	Reg uint8
	Val int32
}

// MemPoke is one memory initialization, parsed from "ADDR=V,V,V".
type MemPoke struct {
	Base uint32
	Vals []int32
}

// MemPeek is one result range, parsed from "ADDR:N".
type MemPeek struct {
	Base uint32
	N    int
}

// ParseRegPokes parses comma-free repeated "rN=V" specs.
func ParseRegPokes(specs []string) ([]RegPoke, error) {
	var out []RegPoke
	for _, s := range specs {
		parts := strings.SplitN(s, "=", 2)
		if len(parts) != 2 || !strings.HasPrefix(parts[0], "r") {
			return nil, fmt.Errorf("bad register poke %q (want rN=V)", s)
		}
		reg, err := strconv.Atoi(parts[0][1:])
		if err != nil || reg < 0 || reg >= isa.NumRegs {
			return nil, fmt.Errorf("bad register in %q", s)
		}
		val, err := strconv.ParseInt(parts[1], 0, 32)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q", s)
		}
		out = append(out, RegPoke{Reg: uint8(reg), Val: int32(val)})
	}
	return out, nil
}

// ParseMemPokes parses repeated "ADDR=V,V,V" specs.
func ParseMemPokes(specs []string) ([]MemPoke, error) {
	var out []MemPoke
	for _, s := range specs {
		parts := strings.SplitN(s, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad memory poke %q (want ADDR=V,V,...)", s)
		}
		base, err := strconv.ParseUint(parts[0], 0, 32)
		if err != nil {
			return nil, fmt.Errorf("bad address in %q", s)
		}
		var vals []int32
		for _, tok := range strings.Split(parts[1], ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 32)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", tok, s)
			}
			vals = append(vals, int32(v))
		}
		out = append(out, MemPoke{Base: uint32(base), Vals: vals})
	}
	return out, nil
}

// ParseMemPeeks parses repeated "ADDR:N" specs.
func ParseMemPeeks(specs []string) ([]MemPeek, error) {
	var out []MemPeek
	for _, s := range specs {
		parts := strings.SplitN(s, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad memory peek %q (want ADDR:N)", s)
		}
		base, err := strconv.ParseUint(parts[0], 0, 32)
		if err != nil {
			return nil, fmt.Errorf("bad address in %q", s)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count in %q", s)
		}
		out = append(out, MemPeek{Base: uint32(base), N: n})
	}
	return out, nil
}

// Apply pokes the parsed initializations into a register file and
// memory.
func Apply(regs *regfile.File, memory *mem.Shared, rp []RegPoke, mp []MemPoke) {
	for _, p := range rp {
		regs.Poke(p.Reg, isa.WordFromInt(p.Val))
	}
	for _, p := range mp {
		memory.PokeInts(p.Base, p.Vals...)
	}
}

// StringsFlag collects a repeatable string flag.
type StringsFlag []string

// String implements flag.Value.
func (f *StringsFlag) String() string { return strings.Join(*f, " ") }

// Set implements flag.Value.
func (f *StringsFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}
