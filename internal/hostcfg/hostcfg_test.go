package hostcfg

import (
	"testing"

	"ximd/internal/mem"
	"ximd/internal/regfile"
)

func TestParseRegPokes(t *testing.T) {
	pokes, err := ParseRegPokes([]string{"r2=4", "r255=-1", "r0=0x10"})
	if err != nil {
		t.Fatal(err)
	}
	want := []RegPoke{{2, 4}, {255, -1}, {0, 16}}
	for i := range want {
		if pokes[i] != want[i] {
			t.Fatalf("pokes = %+v, want %+v", pokes, want)
		}
	}
	for _, bad := range []string{"x2=4", "r=1", "r300=1", "r2", "r2=zebra"} {
		if _, err := ParseRegPokes([]string{bad}); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseMemPokes(t *testing.T) {
	pokes, err := ParseMemPokes([]string{"256=5,3, 4,7", "0x100=9"})
	if err != nil {
		t.Fatal(err)
	}
	if pokes[0].Base != 256 || len(pokes[0].Vals) != 4 || pokes[0].Vals[3] != 7 {
		t.Fatalf("pokes[0] = %+v", pokes[0])
	}
	if pokes[1].Base != 256 || pokes[1].Vals[0] != 9 {
		t.Fatalf("pokes[1] = %+v", pokes[1])
	}
	for _, bad := range []string{"=5", "abc=5", "10=x", "10"} {
		if _, err := ParseMemPokes([]string{bad}); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseMemPeeks(t *testing.T) {
	peeks, err := ParseMemPeeks([]string{"1024:4"})
	if err != nil {
		t.Fatal(err)
	}
	if peeks[0] != (MemPeek{Base: 1024, N: 4}) {
		t.Fatalf("peek = %+v", peeks[0])
	}
	for _, bad := range []string{"1024", "x:4", "1024:0", "1024:x"} {
		if _, err := ParseMemPeeks([]string{bad}); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestApply(t *testing.T) {
	regs := regfile.New()
	m := mem.NewShared(64)
	rp, _ := ParseRegPokes([]string{"r5=42"})
	mp, _ := ParseMemPokes([]string{"10=1,2,3"})
	Apply(regs, m, rp, mp)
	if regs.Peek(5).Int() != 42 {
		t.Error("register poke not applied")
	}
	if m.Peek(11).Int() != 2 {
		t.Error("memory poke not applied")
	}
}

func TestStringsFlag(t *testing.T) {
	var f StringsFlag
	_ = f.Set("a")
	_ = f.Set("b")
	if len(f) != 2 || f.String() != "a b" {
		t.Fatalf("flag = %v (%q)", f, f.String())
	}
}
