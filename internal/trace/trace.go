// Package trace records and formats XIMD execution traces in the styles
// used by the paper: the Figure 10 address trace (per-cycle program
// counters, condition codes, and SSET partition) and stream-count
// timelines.
package trace

import (
	"fmt"
	"strings"

	"ximd/internal/core"
	"ximd/internal/isa"
)

// Record is one captured cycle (a deep copy of core.CycleRecord, safe to
// retain).
type Record struct {
	Cycle     uint64
	PC        []isa.Addr
	CC        []bool
	CCValid   []bool
	SS        []isa.Sync
	Halted    []bool
	Partition core.Partition
	// Stalled and Failed mirror the injection columns of
	// core.CycleRecord; both stay nil on runs without fault injection.
	Stalled []bool
	Failed  []bool
}

// Copy deep-copies a live cycle record into a retainable Record.
func Copy(rec *core.CycleRecord) Record {
	return Record{
		Cycle:     rec.Cycle,
		PC:        append([]isa.Addr(nil), rec.PC...),
		CC:        append([]bool(nil), rec.CC...),
		CCValid:   append([]bool(nil), rec.CCValid...),
		SS:        append([]isa.Sync(nil), rec.SS...),
		Halted:    append([]bool(nil), rec.Halted...),
		Partition: rec.Partition,
		Stalled:   append([]bool(nil), rec.Stalled...),
		Failed:    append([]bool(nil), rec.Failed...),
	}
}

// Recorder captures every cycle of a run. It implements core.Tracer.
type Recorder struct {
	Records []Record
}

// Cycle implements core.Tracer by deep-copying the record.
func (r *Recorder) Cycle(rec *core.CycleRecord) {
	r.Records = append(r.Records, Copy(rec))
}

// CCString renders the condition codes the way Figure 10 prints them:
// one letter per FU, T or F, with X for a condition code that has never
// been written.
func (r Record) CCString() string {
	var b strings.Builder
	for i := range r.CC {
		switch {
		case !r.CCValid[i]:
			b.WriteByte('X')
		case r.CC[i]:
			b.WriteByte('T')
		default:
			b.WriteByte('F')
		}
	}
	return b.String()
}

// SSString renders the sync signals as one letter per FU: D or B.
func (r Record) SSString() string {
	var b strings.Builder
	for i := range r.SS {
		if r.SS[i] == isa.Done {
			b.WriteByte('D')
		} else {
			b.WriteByte('B')
		}
	}
	return b.String()
}

// Options controls address-trace formatting.
type Options struct {
	// Comments maps a cycle number to an annotation printed in the
	// rightmost column, as in Figure 10.
	Comments map[uint64]string
	// ShowSS adds a sync-signal column (Figure 10 does not print one, but
	// barrier traces are unreadable without it).
	ShowSS bool
}

// FormatAddressTrace renders records as the paper's Figure 10 table:
//
//	Cycle     FU0   FU1   FU2   FU3   CC     Partition
//	Cycle 0   00:   00:   00:   00:   XXXX   {0,1,2,3}
//
// Halted FUs print "--:".
func FormatAddressTrace(records []Record, opts Options) string {
	if len(records) == 0 {
		return "(empty trace)\n"
	}
	numFU := len(records[0].PC)
	var b strings.Builder

	// Header.
	fmt.Fprintf(&b, "%-9s", "Cycle")
	for fu := 0; fu < numFU; fu++ {
		fmt.Fprintf(&b, " %-5s", fmt.Sprintf("FU%d", fu))
	}
	fmt.Fprintf(&b, " %-*s", max(numFU, 2)+2, "CC")
	if opts.ShowSS {
		fmt.Fprintf(&b, " %-*s", max(numFU, 2)+2, "SS")
	}
	fmt.Fprintf(&b, " %-16s", "Partition")
	if len(opts.Comments) > 0 {
		fmt.Fprintf(&b, " %s", "Comment")
	}
	b.WriteByte('\n')

	for _, rec := range records {
		fmt.Fprintf(&b, "Cycle %-3d", rec.Cycle)
		for fu := 0; fu < numFU; fu++ {
			if rec.Halted[fu] {
				fmt.Fprintf(&b, " %-5s", "--:")
			} else {
				fmt.Fprintf(&b, " %-5s", fmt.Sprintf("%02x:", uint16(rec.PC[fu])))
			}
		}
		fmt.Fprintf(&b, " %-*s", max(numFU, 2)+2, rec.CCString())
		if opts.ShowSS {
			fmt.Fprintf(&b, " %-*s", max(numFU, 2)+2, rec.SSString())
		}
		fmt.Fprintf(&b, " %-16s", rec.Partition.String())
		if c, ok := opts.Comments[rec.Cycle]; ok {
			fmt.Fprintf(&b, " %s", c)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// StreamTimeline returns the number of concurrent instruction streams in
// each cycle — the observable the XIMD architecture varies dynamically.
func StreamTimeline(records []Record) []int {
	out := make([]int, len(records))
	for i, rec := range records {
		out[i] = rec.Partition.NumSSETs()
	}
	return out
}

// FormatStreamTimeline renders the stream count per cycle as a compact
// strip chart, e.g. "1111333111", grouping long runs as counts.
func FormatStreamTimeline(records []Record) string {
	timeline := StreamTimeline(records)
	if len(timeline) == 0 {
		return "(empty trace)"
	}
	var b strings.Builder
	run := 1
	for i := 1; i <= len(timeline); i++ {
		if i < len(timeline) && timeline[i] == timeline[i-1] {
			run++
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d×%d", timeline[i-1], run)
		run = 1
	}
	return b.String()
}

// PartitionChanges lists the cycles at which the partition changed, with
// the new partition — the state-transition view of Figure 11.
func PartitionChanges(records []Record) []string {
	var out []string
	prev := ""
	for _, rec := range records {
		cur := rec.Partition.String()
		if cur != prev {
			out = append(out, fmt.Sprintf("cycle %d: %s", rec.Cycle, cur))
			prev = cur
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
