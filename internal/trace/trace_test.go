package trace

import (
	"strings"
	"testing"

	"ximd/internal/core"
	"ximd/internal/isa"
)

func sampleRecords(t *testing.T) []Record {
	t.Helper()
	part1, err := core.ParsePartition("{0,1,2,3}", 4)
	if err != nil {
		t.Fatal(err)
	}
	part3, err := core.ParsePartition("{0,1}{2}{3}", 4)
	if err != nil {
		t.Fatal(err)
	}
	return []Record{
		{
			Cycle: 0, PC: []isa.Addr{0, 0, 0, 0},
			CC: make([]bool, 4), CCValid: make([]bool, 4),
			SS: make([]isa.Sync, 4), Halted: make([]bool, 4), Partition: part1,
		},
		{
			Cycle: 1, PC: []isa.Addr{3, 3, 4, 4},
			CC: []bool{true, false, true, false}, CCValid: []bool{true, true, true, false},
			SS:     []isa.Sync{isa.Done, isa.Busy, isa.Busy, isa.Busy},
			Halted: []bool{false, false, false, true}, Partition: part3,
		},
	}
}

func TestCCString(t *testing.T) {
	recs := sampleRecords(t)
	if got := recs[0].CCString(); got != "XXXX" {
		t.Errorf("unwritten CCs = %q, want XXXX", got)
	}
	if got := recs[1].CCString(); got != "TFTX" {
		t.Errorf("CCs = %q, want TFTX", got)
	}
}

func TestSSString(t *testing.T) {
	if got := sampleRecords(t)[1].SSString(); got != "DBBB" {
		t.Errorf("SS = %q, want DBBB", got)
	}
}

func TestFormatAddressTrace(t *testing.T) {
	out := FormatAddressTrace(sampleRecords(t), Options{
		ShowSS:   true,
		Comments: map[uint64]string{1: "fork"},
	})
	for _, needle := range []string{
		"Cycle 0", "Cycle 1", "00:", "03:", "04:", "--:", // halted FU prints --:
		"{0,1,2,3}", "{0,1}{2}{3}", "TFTX", "DBBB", "fork",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("trace missing %q:\n%s", needle, out)
		}
	}
}

func TestFormatEmptyTrace(t *testing.T) {
	if got := FormatAddressTrace(nil, Options{}); !strings.Contains(got, "empty") {
		t.Errorf("empty trace = %q", got)
	}
	if got := FormatStreamTimeline(nil); !strings.Contains(got, "empty") {
		t.Errorf("empty timeline = %q", got)
	}
}

func TestStreamTimelineAndChanges(t *testing.T) {
	recs := sampleRecords(t)
	tl := StreamTimeline(recs)
	if len(tl) != 2 || tl[0] != 1 || tl[1] != 3 {
		t.Errorf("timeline = %v", tl)
	}
	changes := PartitionChanges(recs)
	if len(changes) != 2 {
		t.Fatalf("changes = %v", changes)
	}
	if !strings.Contains(changes[1], "{0,1}{2}{3}") {
		t.Errorf("changes = %v", changes)
	}
}

func TestFormatStreamTimelineRuns(t *testing.T) {
	part1, _ := core.ParsePartition("{0}", 1)
	recs := []Record{
		{Cycle: 0, PC: []isa.Addr{0}, CC: []bool{false}, CCValid: []bool{false}, SS: []isa.Sync{0}, Halted: []bool{false}, Partition: part1},
		{Cycle: 1, PC: []isa.Addr{0}, CC: []bool{false}, CCValid: []bool{false}, SS: []isa.Sync{0}, Halted: []bool{false}, Partition: part1},
		{Cycle: 2, PC: []isa.Addr{0}, CC: []bool{false}, CCValid: []bool{false}, SS: []isa.Sync{0}, Halted: []bool{false}, Partition: part1},
	}
	if got := FormatStreamTimeline(recs); got != "1×3" {
		t.Errorf("timeline = %q, want 1×3", got)
	}
}

func TestRecorderDeepCopies(t *testing.T) {
	rec := &Recorder{}
	pc := []isa.Addr{1, 2}
	cr := &core.CycleRecord{
		Cycle: 0, PC: pc, CC: make([]bool, 2), CCValid: make([]bool, 2),
		SS: make([]isa.Sync, 2), Halted: make([]bool, 2),
	}
	rec.Cycle(cr)
	pc[0] = 99 // mutate the source; the record must be unaffected
	if rec.Records[0].PC[0] != 1 {
		t.Error("Recorder retained a live slice instead of copying")
	}
}
