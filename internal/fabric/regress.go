package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ximd/internal/archive"
	"ximd/internal/inject"
	"ximd/internal/obs"
	"ximd/internal/serve"
)

// This file is the fleet half of the regression gate. Because every
// terminal fabric job is appended to the coordinator's archive with the
// same key and document a single-node ximdd would write, GET /v1/runs
// and POST /v1/regress work against fleet history exactly as they do on
// one node — a sweep run across four workers can gate a later sweep run
// across two.

var errNoArchive = errors.New("fabric: run archive disabled (start ximdc with -archive)")

// handleRuns serves cross-run history from the fleet archive, the same
// query grammar as the worker endpoint: digest, arch, seed, inject
// (canonical-form match), limit.
func (c *Coordinator) handleRuns(w http.ResponseWriter, r *http.Request) {
	if c.arch == nil {
		writeError(w, http.StatusNotFound, errNoArchive)
		return
	}
	params := r.URL.Query()
	q := archive.Query{
		ProgramSHA256: params.Get("digest"),
		Arch:          params.Get("arch"),
	}
	if v := params.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed %q", v))
			return
		}
		q.Seed = &seed
	}
	if vs, ok := params["inject"]; ok {
		canon, err := inject.Canonicalize(vs[0])
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("inject: %w", err))
			return
		}
		q.Inject = &canon
	}
	if v := params.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		q.Limit = n
	}
	recs := c.arch.Select(q)
	c.met.archiveQueries.Inc()
	if recs == nil {
		recs = []archive.Record{}
	}
	writeJSON(w, http.StatusOK, serve.RunsResponse{Count: len(recs), Runs: recs})
}

// handleRegress runs the requested batch across the fleet and diffs
// each fresh run against its archived baseline. The fresh runs are NOT
// auto-archived (a run never passes by matching itself); Record:true
// appends them after the comparison, as on a single node.
func (c *Coordinator) handleRegress(w http.ResponseWriter, r *http.Request) {
	if c.arch == nil {
		writeError(w, http.StatusNotFound, errNoArchive)
		return
	}
	if c.shuttingDown() {
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	select {
	case c.sweepSem <- struct{}{}:
		defer func() { <-c.sweepSem }()
	default:
		writeError(w, http.StatusTooManyRequests, errors.New("fabric: sweep capacity in use"))
		return
	}

	var req serve.RegressRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.opts.MaxSourceBytes*2))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Base.Trace {
		writeError(w, http.StatusBadRequest, errors.New("regressions do not support trace=true"))
		return
	}
	if req.Tolerance < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("tolerance must be >= 0, got %g", req.Tolerance))
		return
	}
	var baselineInject *string
	if req.BaselineInject != nil {
		canon, err := inject.Canonicalize(*req.BaselineInject)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("baseline_inject: %w", err))
			return
		}
		baselineInject = &canon
	}
	digest, arch, _, err := c.validate(&req.Base)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	variants, err := serve.ExpandVariants(req.Base.Seed, req.Base.Inject, req.Seeds, req.Injects, c.opts.MaxSweepTasks)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Fan the gate's runs out over the fleet with archiving off. The
	// gate traces like a sweep: one "regress" span with a "job" child
	// per re-run, joined to the caller's trace when a header arrived.
	sc, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	regSpan := c.tr.Adopt(sc, "regress")
	regSpan.SetAttr("digest", digest)
	jobs := make([]*cjob, 0, len(variants))
	for _, v := range variants {
		reqV := req.Base
		reqV.Seed = v.Seed
		reqV.Inject = v.Inject
		js := regSpan.Child("job")
		js.SetAttr("variant", v.Name)
		j, err := c.startJob(reqV, digest, arch, v.Canon, false, js)
		if err != nil {
			regSpan.SetAttr("error", err.Error())
			regSpan.Finish()
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.done
	}
	regSpan.Finish()
	w.Header().Set(obs.TraceHeader, obs.FormatTraceHeader(regSpan.Context()))

	now := time.Now().UnixMilli()
	tol := archive.Tolerance{Ratio: req.Tolerance}
	report := archive.NewReport(tol)
	recs := make([]archive.Record, len(jobs))
	for i, j := range jobs {
		recs[i] = j.archiveRecord(now)
		lookup := recs[i].Key
		if req.BaselineSeed != nil {
			lookup.Seed = *req.BaselineSeed
		}
		if baselineInject != nil {
			lookup.Inject = *baselineInject
		}
		baseline, ok := c.arch.Latest(lookup)
		if !ok {
			report.Add(archive.Comparison{Key: recs[i].Key, Status: archive.StatusMissingBaseline})
			continue
		}
		report.Add(archive.Compare(baseline, recs[i], tol))
	}
	c.met.regressTotal.Inc()
	if !report.Pass {
		c.met.regressFailed.Inc()
	}
	if req.Record {
		for i := range recs {
			c.appendArchive(recs[i])
		}
	}
	writeJSON(w, http.StatusOK, serve.RegressResponse{ProgramSHA256: digest, Report: report})
}
