package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ximd/internal/obs"
	"ximd/internal/serve"
)

// worker is the coordinator's record of one ximdd worker: an HTTP
// client for its job API plus the lease/health state the heartbeat
// loop maintains and the router reads.
type worker struct {
	// name is the stable display name ("w0", "w1", ...); url the base
	// address. url is the rendezvous-hash key, so a worker's affinity
	// ranking survives lease loss, restarts, and reordering of the
	// fleet list.
	name string
	url  string
	hc   *http.Client

	mu sync.Mutex
	// id is the worker-reported identity from the last successful
	// lease; empty until first contact.
	id        string
	executors int
	queueCap  int
	draining  bool
	lost      bool
	leased    bool
	misses    int
	// lastLease is when the last successful lease renewal landed; zero
	// until first contact. Surfaced as heartbeat age in GET /v1/fleet.
	lastLease time.Time
	// inflight tracks this worker's assigned, non-terminal fabric jobs
	// by coordinator id.
	inflight map[string]*cjob
}

func newWorker(name, url string, timeout time.Duration) *worker {
	return &worker{
		name:     name,
		url:      url,
		hc:       &http.Client{Timeout: timeout},
		inflight: make(map[string]*cjob),
	}
}

// ready reports whether the router may place new work here: leased at
// least once, not lost, not draining.
func (w *worker) ready() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.leased && !w.lost && !w.draining
}

func (w *worker) isLost() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lost
}

// loadBound is the inflight count at which the router spills past this
// worker: the configured cap, or the worker's reported queue capacity
// (spill only when it would start answering 429) when no cap is set.
func (w *worker) loadBound(maxInflight int) int {
	if maxInflight > 0 {
		return maxInflight
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.queueCap > 0 {
		return w.queueCap
	}
	return 64
}

func (w *worker) inflightLen() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.inflight)
}

func (w *worker) attach(j *cjob)   { w.mu.Lock(); w.inflight[j.id] = j; w.mu.Unlock() }
func (w *worker) detach(id string) { w.mu.Lock(); delete(w.inflight, id); w.mu.Unlock() }

// noteLease folds a successful lease response into the health state.
// Returns true when this recovered a previously lost worker.
func (w *worker) noteLease(resp *serve.LeaseResponse) (recovered bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	recovered = w.lost
	w.id = resp.WorkerID
	w.executors = resp.Executors
	w.queueCap = resp.QueueCapacity
	w.draining = resp.Draining
	w.leased = true
	w.lost = false
	w.misses = 0
	w.lastLease = time.Now()
	return recovered
}

// noteMiss counts one failed heartbeat; at maxMisses the worker flips
// to lost and its inflight jobs are orphaned for requeue (the per-job
// goroutines observe the lost flag and resubmit elsewhere).
func (w *worker) noteMiss(maxMisses int) (justLost bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.misses++
	if w.misses >= maxMisses && !w.lost {
		w.lost = true
		return true
	}
	return false
}

// noteDraining marks the worker draining immediately (a 503 on submit
// beats the next heartbeat to the news).
func (w *worker) noteDraining() {
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
}

func (w *worker) fleetView() FleetWorker {
	w.mu.Lock()
	defer w.mu.Unlock()
	state := "ready"
	switch {
	case !w.leased:
		state = "unleased"
	case w.lost:
		state = "lost"
	case w.draining:
		state = "draining"
	}
	fw := FleetWorker{
		Name:          w.name,
		URL:           w.url,
		WorkerID:      w.id,
		State:         state,
		Executors:     w.executors,
		QueueCapacity: w.queueCap,
		Inflight:      len(w.inflight),
		Misses:        w.misses,
	}
	if !w.lastLease.IsZero() {
		age := float64(time.Since(w.lastLease)) / float64(time.Millisecond)
		fw.LastHeartbeatAgeMS = &age
	}
	return fw
}

// Typed submit failures the dispatch loop routes around.
var (
	errWorkerBusy     = errors.New("fabric: worker queue full")
	errWorkerDraining = errors.New("fabric: worker draining")
)

// postJSON round-trips one JSON request against the worker. hdr holds
// optional extra headers (e.g. trace propagation), alternating
// key, value.
func (w *worker) postJSON(ctx context.Context, path string, body, out any, hdr ...string) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+path, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp.StatusCode, json.Unmarshal(data, out)
	}
	var eb errorBody
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		return resp.StatusCode, errors.New(eb.Error)
	}
	return resp.StatusCode, fmt.Errorf("%s %s: HTTP %d", w.name, path, resp.StatusCode)
}

// lease acquires or renews the coordinator's lease.
func (w *worker) lease(ctx context.Context, coordinator string, ttl time.Duration) (*serve.LeaseResponse, error) {
	var out serve.LeaseResponse
	_, err := w.postJSON(ctx, "/v1/fabric/lease",
		serve.LeaseRequest{Coordinator: coordinator, TTLMS: int64(ttl / time.Millisecond)}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// submit places one job on the worker. 429 and 503 come back as the
// typed errors above so the router can spill instead of failing the
// job. traceHeader, when non-empty, propagates the coordinator's trace
// context so the worker's spans join the fleet-wide tree.
func (w *worker) submit(ctx context.Context, req *serve.JobRequest, traceHeader string) (*serve.SubmitResponse, error) {
	var out serve.SubmitResponse
	var hdr []string
	if traceHeader != "" {
		hdr = []string{obs.TraceHeader, traceHeader}
	}
	status, err := w.postJSON(ctx, "/v1/jobs", req, &out, hdr...)
	switch status {
	case http.StatusTooManyRequests:
		return nil, fmt.Errorf("%w: %v", errWorkerBusy, err)
	case http.StatusServiceUnavailable:
		return nil, fmt.Errorf("%w: %v", errWorkerDraining, err)
	}
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// fetchSpans pulls the worker-side spans of one trace so the
// coordinator can splice them into the fleet-wide tree. A worker that
// never recorded the trace (restarted, span store evicted) answers
// 404; that is an empty result, not an error.
func (w *worker) fetchSpans(ctx context.Context, traceID string) ([]obs.Span, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/v1/traces/"+traceID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s traces %s: HTTP %d", w.name, traceID, resp.StatusCode)
	}
	return obs.ParseTraceNDJSON(data)
}

// errJobGone reports a remote job id the worker no longer knows — a
// worker restarted without durable state. The job is requeued.
var errJobGone = errors.New("fabric: remote job gone")

// status polls one remote job.
func (w *worker) status(ctx context.Context, remoteID string) (*serve.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/v1/jobs/"+remoteID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, errJobGone
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s status %s: HTTP %d", w.name, remoteID, resp.StatusCode)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
