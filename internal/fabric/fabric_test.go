package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ximd/internal/archive"
	"ximd/internal/obs"
	"ximd/internal/serve"
)

// tprocSrc is the Example 1 VLIW-style schedule used across the serve
// tests: 6 cycles, tproc(3,4,5,6)=46 in r6.
const tprocSrc = `
.fus 4
.fu 0
	iadd r1, r2, r5
	iadd r6, r5, r6
	iadd r1, r4, r1
	iadd r1, r5, r1
	iadd r1, r7, r6
	=> halt
.fu 1
	imult r3, r1, r6
	isub r1, r7, r7
	iadd r6, r7, r7
	nop
	nop
	=> halt
.fu 2
	iadd r3, r2, r7
	iadd r5, r3, r1
	nop
	nop
	nop
	=> halt
.fu 3
	nop
	isub r4, r5, r5
	nop
	nop
	nop
	=> halt
`

// spinSrc never halts; with max_cycles it yields a deterministic
// ErrMaxCycles failure after a tunable amount of real work — the knob
// the kill/steal tests use to keep workers busy.
const spinSrc = `
.fus 1
.fu 0
loop:
	iadd r1, #1, r1
	=> goto loop
`

func tprocBase() serve.JobRequest {
	return serve.JobRequest{
		Arch:   "ximd",
		Source: tprocSrc,
		Pokes:  []string{"r1=3", "r2=4", "r3=5", "r4=6"},
	}
}

// fleet is one coordinator over n in-process ximdd workers.
type fleet struct {
	coord   *Coordinator
	coordTS *httptest.Server
	servers []*serve.Server
	tss     []*httptest.Server
}

// fastOpts are coordinator timings tuned for tests: a worker loss is
// detected within ~100ms instead of seconds.
func fastOpts(urls []string) Options {
	return Options{
		Workers:        urls,
		HeartbeatEvery: 20 * time.Millisecond,
		PollEvery:      2 * time.Millisecond,
		PollMax:        20 * time.Millisecond,
		JobTimeout:     30 * time.Second,
		StealAfter:     -1, // tests opt in explicitly
		HTTPTimeout:    2 * time.Second,
	}
}

func newFleet(t *testing.T, n int, workerOpts serve.Options, tune func(*Options)) *fleet {
	t.Helper()
	f := &fleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := serve.New(workerOpts)
		ts := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.tss = append(f.tss, ts)
		urls[i] = ts.URL
	}
	opts := fastOpts(urls)
	if tune != nil {
		tune(&opts)
	}
	coord, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	f.coordTS = httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		f.coordTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = coord.Shutdown(ctx)
		for i := range f.servers {
			f.tss[i].Close()
			sctx, scancel := context.WithTimeout(context.Background(), time.Second)
			_ = f.servers[i].Shutdown(sctx)
			scancel()
		}
	})
	return f
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// sweepResults posts a synchronous sweep and returns the raw `results`
// array — the byte-identity unit the fabric guarantees.
func sweepResults(t *testing.T, url string, req serve.SweepRequest) json.RawMessage {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, body)
	}
	var env struct {
		Results json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	return env.Results
}

// TestRendezvousRankStableAndMinimal: the per-digest ranking is stable
// across calls, differs across digests (spread), and removing one
// worker never reorders the survivors — the minimal-disruption property
// that makes digest affinity survive worker loss.
func TestRendezvousRankStableAndMinimal(t *testing.T) {
	c := &Coordinator{opts: Options{}.withDefaults(), met: newFabricMetrics()}
	for _, u := range []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"} {
		c.workers = append(c.workers, newWorker(u, u, time.Second))
	}
	digests := []string{"d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "d10"}

	firstChoice := map[string]bool{}
	for _, d := range digests {
		r1, r2 := c.rank(d), c.rank(d)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("digest %s: ranking not stable", d)
			}
		}
		firstChoice[r1[0].url] = true

		// Remove the winner; every survivor keeps its relative order.
		removed := r1[0]
		c2 := &Coordinator{opts: c.opts, met: c.met}
		for _, w := range c.workers {
			if w != removed {
				c2.workers = append(c2.workers, w)
			}
		}
		r3 := c2.rank(d)
		if len(r3) != len(r1)-1 {
			t.Fatal("survivor ranking wrong length")
		}
		for i := range r3 {
			if r3[i] != r1[i+1] {
				t.Fatalf("digest %s: survivors reordered after removing the winner", d)
			}
		}
	}
	if len(firstChoice) < 2 {
		t.Fatalf("10 digests all ranked the same first choice — no spread: %v", firstChoice)
	}
}

// TestFleetSweepMatchesSingleNode: the fleet's merged sweep response is
// byte-identical, variant for variant, to a single ximdd running the
// same request — same expansion, same order, same documents.
func TestFleetSweepMatchesSingleNode(t *testing.T) {
	req := serve.SweepRequest{
		Base:    tprocBase(),
		Seeds:   []int64{1, 2, 3, 4, 5},
		Injects: []string{"", "lat=fixed:2"},
	}

	single := serve.New(serve.Options{Workers: 2, QueueDepth: 32})
	singleTS := httptest.NewServer(single.Handler())
	defer func() {
		singleTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = single.Shutdown(ctx)
	}()
	want := sweepResults(t, singleTS.URL, req)

	f := newFleet(t, 3, serve.Options{Workers: 2, QueueDepth: 32}, nil)
	got := sweepResults(t, f.coordTS.URL, req)

	if !bytes.Equal(want, got) {
		t.Fatalf("fleet merge differs from single node:\nsingle: %s\nfleet:  %s", want, got)
	}
}

// TestAffinityHitRateSingleProgram: every variant of one program routes
// to the program's rendezvous first choice as long as that worker has
// queue capacity — the acceptance bar is > 0.9, the expectation 1.0.
func TestAffinityHitRateSingleProgram(t *testing.T) {
	f := newFleet(t, 3, serve.Options{Workers: 2, QueueDepth: 64}, nil)
	seeds := make([]int64, 20)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	sweepResults(t, f.coordTS.URL, serve.SweepRequest{Base: tprocBase(), Seeds: seeds})

	hits := float64(f.coord.met.affinityHits.Value())
	spills := float64(f.coord.met.affinitySpills.Value())
	if rate := hits / (hits + spills); rate <= 0.9 {
		t.Fatalf("affinity hit rate = %.3f (hits %v, spills %v), want > 0.9", rate, hits, spills)
	}
	if routed := f.coord.met.jobsRouted.Value(); routed < 20 {
		t.Fatalf("jobs routed = %d, want >= 20", routed)
	}
}

// TestWorkerKilledMidSweepRequeues: kill the affinity-preferred worker
// while it owns a sweep's jobs; the coordinator requeues them onto the
// survivors and the merged response is still byte-identical to a
// single-node run.
func TestWorkerKilledMidSweepRequeues(t *testing.T) {
	// Each variant spins ~1M cycles before its deterministic
	// ErrMaxCycles failure, so the victim still owns work when killed.
	base := serve.JobRequest{Arch: "ximd", Source: spinSrc, MaxCycles: 1_000_000}
	req := serve.SweepRequest{Base: base, Seeds: []int64{1, 2, 3, 4, 5, 6}}

	single := serve.New(serve.Options{Workers: 1, QueueDepth: 32, JobTimeout: 20 * time.Second})
	singleTS := httptest.NewServer(single.Handler())
	defer func() {
		singleTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = single.Shutdown(ctx)
	}()
	want := sweepResults(t, singleTS.URL, req)

	f := newFleet(t, 3, serve.Options{Workers: 1, QueueDepth: 32, JobTimeout: 20 * time.Second}, nil)

	// The whole sweep prefers one worker (single program): find it and
	// kill it once it holds the jobs.
	digest := archive.ProgramDigest("ximd", []byte(spinSrc))
	victim := f.coord.rank(digest)[0]
	var victimTS *httptest.Server
	for i := range f.tss {
		if f.tss[i].URL == victim.url {
			victimTS = f.tss[i]
		}
	}

	type res struct{ results json.RawMessage }
	resc := make(chan res, 1)
	go func() {
		resc <- res{sweepResults(t, f.coordTS.URL, req)}
	}()

	// Wait until the victim actually owns routed jobs, then kill it
	// abruptly (connection-level, like a process kill).
	deadline := time.Now().Add(5 * time.Second)
	for victim.inflightLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no job ever routed to the affinity-preferred worker")
		}
		time.Sleep(2 * time.Millisecond)
	}
	victimTS.CloseClientConnections()
	victimTS.Close()

	got := (<-resc).results
	if !bytes.Equal(want, got) {
		t.Fatalf("fleet merge after worker kill differs from single node:\nsingle: %s\nfleet:  %s", want, got)
	}
	if n := f.coord.met.jobsRequeued.Value(); n == 0 {
		t.Error("no jobs counted as requeued despite worker kill")
	}
	if n := f.coord.met.workersLost.Value(); n == 0 {
		t.Error("worker never marked lost")
	}

	// The kill is visible in the traces: some job's tree holds a
	// placement on the victim closed with a drop reason, and a later
	// placement marked as the requeue on a different worker.
	byTrace := map[string][]obs.Span{}
	for _, sp := range f.coord.spanStore.Snapshot() {
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	dropReasons := map[string]bool{"worker_lost": true, "remote_job_gone": true, "poll_errors": true}
	found := false
	for _, spans := range byTrace {
		var dropped, requeued *obs.Span
		for i := range spans {
			if spans[i].Name != "placement" {
				continue
			}
			if dropReasons[spans[i].Attrs["drop_reason"]] {
				dropped = &spans[i]
			}
			if spans[i].Attrs["requeue"] == "true" {
				requeued = &spans[i]
			}
		}
		if dropped != nil && requeued != nil &&
			dropped.Attrs["worker"] == victim.name &&
			requeued.Attrs["worker"] != victim.name && requeued.Attrs["worker"] != "" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no trace names both the lost worker (with a drop reason) and its requeue replacement")
	}
}

// TestStealFromStraggler: a job queued behind a long run on its
// affinity worker is duplicated onto an idle worker after StealAfter
// and completes there, long before the straggler would have got to it.
func TestStealFromStraggler(t *testing.T) {
	f := newFleet(t, 2, serve.Options{Workers: 1, QueueDepth: 32, JobTimeout: 30 * time.Second}, func(o *Options) {
		o.StealAfter = 50 * time.Millisecond
		o.MaxInflight = 64
	})

	digest := archive.ProgramDigest("ximd", []byte(tprocSrc))
	preferred := f.coord.rank(digest)[0]

	// Occupy the preferred worker's only executor with a long spinner,
	// submitted directly to the worker (not fabric work).
	occupy := serve.JobRequest{Arch: "ximd", Source: spinSrc, MaxCycles: 4_000_000_000}
	resp, body := postJSON(t, preferred.url+"/v1/jobs", occupy)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupy: status %d: %s", resp.StatusCode, body)
	}

	// The fabric job routes to the busy preferred worker, sits queued,
	// and gets stolen by the idle one.
	resp, body = postJSON(t, f.coordTS.URL+"/v1/jobs", tprocBase())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sub serve.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	var st JobStatus
	for {
		resp, body := getBody(t, f.coordTS.URL+"/v1/jobs/"+sub.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == serve.StateDone || st.Status == serve.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Status != serve.StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Result == nil || st.Result.Cycles != 6 {
		t.Fatalf("result = %+v", st.Result)
	}
	if !st.Stolen {
		t.Error("job completed without being stolen off the straggler")
	}
	if n := f.coord.met.jobsStolen.Value(); n == 0 {
		t.Error("steal counter is zero")
	}
}

// TestFleetArchiveAndRegress: terminal fleet jobs land in the
// coordinator's archive with single-node-identical keys, GET /v1/runs
// serves them, and POST /v1/regress gates a fresh fleet run against
// them.
func TestFleetArchiveAndRegress(t *testing.T) {
	arch, err := archive.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	f := newFleet(t, 2, serve.Options{Workers: 2, QueueDepth: 32}, func(o *Options) {
		o.Archive = arch
	})

	req := serve.SweepRequest{Base: tprocBase(), Seeds: []int64{1, 2, 3}}
	sweepResults(t, f.coordTS.URL, req)
	if arch.Len() != 3 {
		t.Fatalf("archive has %d record(s), want 3", arch.Len())
	}

	resp, body := getBody(t, f.coordTS.URL+"/v1/runs?limit=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("runs: %d: %s", resp.StatusCode, body)
	}
	var runs serve.RunsResponse
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatal(err)
	}
	if runs.Count != 3 {
		t.Fatalf("runs count = %d, want 3", runs.Count)
	}
	for _, rec := range runs.Runs {
		if rec.Result == nil || rec.Result.Profile == nil {
			t.Fatal("archived record missing the full profiled document")
		}
	}

	// The gate re-runs the same sweep across the fleet and must pass
	// against the just-archived baselines.
	resp, body = postJSON(t, f.coordTS.URL+"/v1/regress", serve.RegressRequest{
		Base:  tprocBase(),
		Seeds: []int64{1, 2, 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("regress: %d: %s", resp.StatusCode, body)
	}
	var rr serve.RegressResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Report == nil || !rr.Report.Pass {
		t.Fatalf("regress report = %s", body)
	}
	// Regress runs must not have self-archived.
	if arch.Len() != 3 {
		t.Fatalf("archive grew to %d during a non-recording regress", arch.Len())
	}
}

// TestCoordinatorReadyz: readiness reflects the fleet — 503 with no
// leased workers, 200 once any worker leases, and 503 again when the
// coordinator drains.
func TestCoordinatorReadyz(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	c, err := New(fastOpts([]string{deadURL}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead fleet: %d, want 503", resp.StatusCode)
	}
	if resp, body := getBody(t, ts.URL+"/livez"); resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("livez: %d %q", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = c.Shutdown(ctx)

	f := newFleet(t, 1, serve.Options{Workers: 1, QueueDepth: 4}, nil)
	if resp, body := getBody(t, f.coordTS.URL+"/readyz"); resp.StatusCode != http.StatusOK || string(body) != "ready\n" {
		t.Fatalf("readyz with live fleet: %d %q", resp.StatusCode, body)
	}
	resp, body := getBody(t, f.coordTS.URL+"/v1/fleet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet: %d", resp.StatusCode)
	}
	var fr FleetResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Workers) != 1 || fr.Workers[0].State != "ready" {
		t.Fatalf("fleet = %s", body)
	}
}

// TestFleetDetachedSweep: the coordinator's detached sweep mirrors the
// worker contract — 202 with fabric job ids, trackable via
// GET /v1/sweeps/{id} to completion.
func TestFleetDetachedSweep(t *testing.T) {
	f := newFleet(t, 2, serve.Options{Workers: 2, QueueDepth: 32}, nil)
	resp, body := postJSON(t, f.coordTS.URL+"/v1/sweeps", serve.SweepRequest{
		Base:   tprocBase(),
		Seeds:  []int64{7, 8},
		Detach: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("detach: %d: %s", resp.StatusCode, body)
	}
	var sub serve.SweepSubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if len(sub.JobIDs) != 2 {
		t.Fatalf("job ids = %v", sub.JobIDs)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, body := getBody(t, f.coordTS.URL+"/v1/sweeps/"+sub.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status: %d: %s", resp.StatusCode, body)
		}
		var st serve.SweepStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == serve.StateDone {
			if st.Done != 2 || st.Variants[0].JobID != sub.JobIDs[0] {
				t.Fatalf("sweep status = %s", body)
			}
			break
		}
		if st.Status == serve.StateFailed {
			t.Fatalf("sweep failed: %s", body)
		}
		if time.Now().After(deadline) {
			t.Fatal("detached fleet sweep never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
