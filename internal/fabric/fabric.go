// Package fabric is the distributed sweep fabric: a coordinator that
// shards sweep cross-products across a fleet of ximdd workers over the
// existing HTTP/JSON job API (cmd/ximdc is the daemon wrapper).
//
// The coordinator expands a sweep request into its variant list — the
// same expansion, in the same order, with the same task names as a
// single-node sweep (serve.ExpandVariants) — and routes each variant
// as one job:
//
//   - Digest-affinity routing: workers are ranked per program by
//     rendezvous hashing on the program SHA-256, so every job of one
//     program prefers the same worker — where its decoded/fusion cache
//     is already warm — and each distinct program gets its own,
//     uniformly distributed first choice. A job spills down the ranking
//     only when the preferred worker is at its load bound.
//
//   - Registration + heartbeats: the coordinator holds a TTL lease on
//     every worker (POST /v1/fabric/lease) and renews it continuously;
//     the renewal doubles as the health probe and load report. A worker
//     that misses enough heartbeats is marked lost; a draining worker
//     (graceful shutdown; non-ready /readyz) stops receiving new work
//     but keeps its inflight jobs, which it will finish.
//
//   - Deterministic requeue: every job is reproducible from (program
//     digest, seed, inject spec) alone, so when a worker is lost its
//     inflight jobs are simply resubmitted to survivors under the same
//     coordinator-assigned id, and the fleet-wide result set is
//     byte-identical to an uninterrupted — or single-node — run.
//
//   - Work stealing: a job stuck queued on a busy worker past the
//     steal threshold is duplicated onto an idle one; whichever copy
//     reaches a terminal state first wins. Duplicated execution is
//     harmless for the same reason requeue is: both copies produce the
//     same bytes.
//
// Results merge in submission order, and terminal documents are
// appended to the coordinator's run archive, so GET /v1/runs and
// POST /v1/regress work fleet-wide exactly as they do on one node.
package fabric

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"ximd/internal/archive"
	"ximd/internal/inject"
	"ximd/internal/obs"
	"ximd/internal/runner"
	"ximd/internal/serve"
	"ximd/internal/xlog"
)

// Options configures a Coordinator. The zero value of every field
// selects a sane default; Workers must name at least one worker URL.
type Options struct {
	// Workers are the fleet's base URLs (e.g. "http://127.0.0.1:8412").
	Workers []string
	// HeartbeatEvery is the lease-renewal interval; <= 0 selects 500ms.
	HeartbeatEvery time.Duration
	// LeaseTTL is the lease duration requested from each worker; <= 0
	// selects 6x HeartbeatEvery.
	LeaseTTL time.Duration
	// MaxMissedHeartbeats marks a worker lost after this many
	// consecutive failed renewals; <= 0 selects 3.
	MaxMissedHeartbeats int
	// PollEvery is the initial status-poll interval for dispatched
	// jobs; <= 0 selects 15ms. Polling backs off geometrically to
	// PollMax (<= 0 selects 250ms) while a job's remote state is
	// unchanged.
	PollEvery time.Duration
	PollMax   time.Duration
	// JobTimeout bounds one fabric job end to end, across requeues;
	// <= 0 selects 120s.
	JobTimeout time.Duration
	// StealAfter duplicates a job that has sat queued on its worker
	// this long onto an idle worker; 0 selects 2s, < 0 disables
	// stealing.
	StealAfter time.Duration
	// MaxInflight caps the coordinator-tracked inflight jobs per
	// worker before the router spills to the next affinity choice;
	// <= 0 uses each worker's reported queue capacity (spill only when
	// the worker would start rejecting).
	MaxInflight int
	// MaxSweepTasks caps one sweep request's fan-out; <= 0 selects 4096.
	MaxSweepTasks int
	// MaxConcurrentSweeps bounds simultaneous synchronous sweeps;
	// <= 0 selects 4.
	MaxConcurrentSweeps int
	// MaxSourceBytes caps a submitted program; <= 0 selects 1 MiB.
	MaxSourceBytes int64
	// HTTPTimeout bounds one worker HTTP request; <= 0 selects 10s.
	HTTPTimeout time.Duration
	// Archive, when non-nil, is the fleet-wide durable run archive:
	// terminal jobs and sweep variants are appended, GET /v1/runs
	// queries it, POST /v1/regress gates against it.
	Archive *archive.Archive
	// Logger receives the coordinator's structured log events (worker
	// lost/recovered, requeues, steals); nil selects xlog's text format
	// on stderr — the same lines log.Printf used to produce.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 500 * time.Millisecond
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 6 * o.HeartbeatEvery
	}
	if o.MaxMissedHeartbeats <= 0 {
		o.MaxMissedHeartbeats = 3
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 15 * time.Millisecond
	}
	if o.PollMax <= 0 {
		o.PollMax = 250 * time.Millisecond
	}
	if o.PollMax < o.PollEvery {
		o.PollMax = o.PollEvery
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 120 * time.Second
	}
	if o.StealAfter == 0 {
		o.StealAfter = 2 * time.Second
	}
	if o.MaxSweepTasks <= 0 {
		o.MaxSweepTasks = 4096
	}
	if o.MaxConcurrentSweeps <= 0 {
		o.MaxConcurrentSweeps = 4
	}
	if o.MaxSourceBytes <= 0 {
		o.MaxSourceBytes = 1 << 20
	}
	if o.HTTPTimeout <= 0 {
		o.HTTPTimeout = 10 * time.Second
	}
	return o
}

// Coordinator owns the fleet: worker clients and their health, the
// fabric job table, and the HTTP API. Create with New, mount Handler,
// drain with Shutdown.
type Coordinator struct {
	opts Options
	// id is this coordinator's lease identity.
	id       string
	mux      *http.ServeMux
	met      *fabricMetrics
	arch     *archive.Archive
	workers  []*worker
	sweepSem chan struct{}
	log      *slog.Logger

	// Distributed tracing: tr mints coordinator-side spans (request
	// roots, placements) into spanStore; finalize imports worker-side
	// subtrees into the same store, so GET /v1/traces/{id} serves the
	// assembled fleet-wide tree.
	tr        *obs.Tracer
	spanStore *obs.SpanStore

	mu                 sync.Mutex
	jobs               map[string]*cjob
	sweeps             map[string]*fleetSweep
	nextJob, nextSweep uint64
	closed             bool

	rootCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// Errors the submission path maps to HTTP statuses.
var (
	// ErrShuttingDown rejects submissions during coordinator shutdown.
	ErrShuttingDown = errors.New("fabric: coordinator shutting down")
	// ErrUnknownJob reports a fabric job id that was never issued.
	ErrUnknownJob = errors.New("fabric: unknown job")
	// ErrUnknownSweep reports a fleet sweep id that was never issued.
	ErrUnknownSweep = errors.New("fabric: unknown sweep")
)

// New builds a Coordinator over the configured worker fleet, performs
// one synchronous lease round (workers that are down stay unleased and
// are retried by the heartbeat loop), and starts heartbeating.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if len(opts.Workers) == 0 {
		return nil, errors.New("fabric: coordinator needs at least one worker URL")
	}
	var idb [6]byte
	_, _ = rand.Read(idb[:])
	c := &Coordinator{
		opts:     opts,
		id:       "c-" + hex.EncodeToString(idb[:]),
		mux:      http.NewServeMux(),
		met:      newFabricMetrics(),
		arch:     opts.Archive,
		sweepSem: make(chan struct{}, opts.MaxConcurrentSweeps),
		jobs:     make(map[string]*cjob),
		sweeps:   make(map[string]*fleetSweep),
	}
	c.spanStore = obs.NewSpanStore(0)
	c.tr = obs.NewTracer("ximdc", c.spanStore)
	c.log = opts.Logger
	if c.log == nil {
		c.log, _ = xlog.New(xlog.FormatText, os.Stderr)
	}
	for i, url := range opts.Workers {
		w := newWorker(fmt.Sprintf("w%d", i), url, opts.HTTPTimeout)
		c.workers = append(c.workers, w)
		c.met.registerWorkerGauges(w)
	}
	c.met.workersTotal.Set(int64(len(c.workers)))
	c.met.reg.GaugeFunc("ximdc_workers_ready", "Workers currently leased, healthy, and accepting new jobs.",
		func() float64 {
			n := 0
			for _, w := range c.workers {
				if w.ready() {
					n++
				}
			}
			return float64(n)
		})
	if c.arch != nil {
		c.met.reg.GaugeFunc("ximdc_archive_records", "Records indexed in the fleet-wide run archive.",
			func() float64 { return float64(c.arch.Len()) })
	}
	c.rootCtx, c.cancel = context.WithCancel(context.Background())

	// One synchronous lease round so a coordinator started after its
	// workers is routable immediately.
	c.beatAll()
	c.wg.Add(1)
	go c.heartbeatLoop()

	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobStatus)
	c.mux.HandleFunc("POST /v1/sweeps", c.handleSweep)
	c.mux.HandleFunc("GET /v1/sweeps/{id}", c.handleSweepStatus)
	c.mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	c.mux.HandleFunc("GET /v1/runs", c.handleRuns)
	c.mux.HandleFunc("POST /v1/regress", c.handleRegress)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /livez", c.handleHealthz)
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux.Handle("GET /v1/traces", obs.TraceListHandler(c.spanStore))
	c.mux.Handle("GET /v1/traces/{id}", obs.TraceTreeHandler(c.spanStore))
	c.mux.Handle("GET /metrics", c.met.reg.Handler())
	return c, nil
}

// ID returns the coordinator's lease identity.
func (c *Coordinator) ID() string { return c.id }

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Shutdown stops accepting work, cancels every inflight fabric job
// (their goroutines finalize as failed), and waits for the heartbeat
// and job goroutines to exit or ctx to expire.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	idle := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coordinator) shuttingDown() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// validate checks a job request the way a worker would — arch, source
// xor image, size cap, inject grammar — so a bad sweep is rejected at
// the coordinator's door instead of fanning out N per-variant 400s. It
// returns the program digest (the affinity key; identical to the
// worker-reported program_sha256) and the canonical inject spec.
func (c *Coordinator) validate(req *serve.JobRequest) (digest string, arch runner.Arch, canon string, err error) {
	arch, err = runner.ParseArch(req.Arch)
	if err != nil {
		return "", "", "", err
	}
	var source []byte
	switch {
	case req.Source != "" && len(req.Image) > 0:
		return "", "", "", errors.New("request sets both source and image")
	case req.Source != "":
		source = []byte(req.Source)
	case len(req.Image) > 0:
		source = req.Image
	default:
		return "", "", "", errors.New("request needs source (assembly text) or image (binary program)")
	}
	if int64(len(source)) > c.opts.MaxSourceBytes {
		return "", "", "", fmt.Errorf("program is %d bytes, limit %d", len(source), c.opts.MaxSourceBytes)
	}
	canon, err = inject.Canonicalize(req.Inject)
	if err != nil {
		return "", "", "", err
	}
	return archive.ProgramDigest(arch, source), arch, canon, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.shuttingDown() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	for _, wk := range c.workers {
		if wk.ready() {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ready")
			return
		}
	}
	http.Error(w, "no ready workers", http.StatusServiceUnavailable)
}

// FleetWorker is one worker's entry in GET /v1/fleet.
type FleetWorker struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	WorkerID string `json:"worker_id,omitempty"`
	// State is "ready", "draining", "lost", or "unleased" (never
	// successfully leased yet).
	State         string `json:"state"`
	Executors     int    `json:"executors,omitempty"`
	QueueCapacity int    `json:"queue_capacity,omitempty"`
	// Inflight is the coordinator-tracked count of this worker's
	// assigned, non-terminal fabric jobs.
	Inflight int `json:"inflight"`
	// Misses is the current consecutive failed-heartbeat count.
	Misses int `json:"misses"`
	// LastHeartbeatAgeMS is how long ago the last successful lease
	// renewal was — the first thing to read when a worker looks slow or
	// lost. Absent until the worker has leased at least once.
	LastHeartbeatAgeMS *float64 `json:"last_heartbeat_age_ms,omitempty"`
}

// FleetResponse is the body of GET /v1/fleet. The poll quantiles
// summarize ximdc_poll_seconds (per-job status-poll round trips), so a
// slow fleet is visible here without scraping Prometheus text.
type FleetResponse struct {
	Coordinator string        `json:"coordinator"`
	Workers     []FleetWorker `json:"workers"`
	PollP50MS   float64       `json:"poll_p50_ms"`
	PollP99MS   float64       `json:"poll_p99_ms"`
}

func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	resp := FleetResponse{
		Coordinator: c.id,
		PollP50MS:   c.met.pollSecs.Quantile(0.50) * 1000,
		PollP99MS:   c.met.pollSecs.Quantile(0.99) * 1000,
	}
	for _, wk := range c.workers {
		resp.Workers = append(resp.Workers, wk.fleetView())
	}
	writeJSON(w, http.StatusOK, resp)
}
