package fabric

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"time"
)

// rendezvousScore ranks worker w for program digest d: FNV-64a over
// the worker's stable key, a zero separator, and the digest. Highest
// score wins. Rendezvous (highest-random-weight) hashing gives every
// digest an independent, uniformly distributed worker ranking, and —
// unlike modulo placement — losing one worker only remaps the jobs
// that preferred it; every other program keeps its warm cache.
func rendezvousScore(workerKey, digest string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(workerKey))
	h.Write([]byte{0})
	h.Write([]byte(digest))
	return h.Sum64()
}

// rank orders the fleet for one digest, best first. The full ranking —
// not just the winner — is the spill order.
func (c *Coordinator) rank(digest string) []*worker {
	ranked := make([]*worker, len(c.workers))
	copy(ranked, c.workers)
	sort.SliceStable(ranked, func(a, b int) bool {
		sa, sb := rendezvousScore(ranked[a].url, digest), rendezvousScore(ranked[b].url, digest)
		if sa != sb {
			return sa > sb
		}
		return ranked[a].url < ranked[b].url // total order even on hash ties
	})
	return ranked
}

// route picks the worker for one job: the highest-ranked ready worker
// under its load bound, spilling down the ranking, and falling back to
// the least-loaded ready worker when every choice is at its bound
// (the bound is advisory; the worker's own 429 is the hard limit).
// exclude removes one worker from consideration (steal targets must
// differ from the current assignment; requeues avoid the worker that
// just died even if its lost flag lags). strict additionally refuses
// the fallback — used by stealing, which only wants genuinely spare
// capacity. Returns nil when no eligible worker exists right now.
func (c *Coordinator) route(digest string, exclude *worker, strict bool) *worker {
	ranked := c.rank(digest)
	var fallback *worker
	fallbackLoad := 0
	for _, w := range ranked {
		if w == exclude || !w.ready() {
			continue
		}
		load := w.inflightLen()
		if load < w.loadBound(c.opts.MaxInflight) {
			c.noteRouted(w, w == ranked[0])
			return w
		}
		if fallback == nil || load < fallbackLoad {
			fallback, fallbackLoad = w, load
		}
	}
	if strict || fallback == nil {
		return nil
	}
	c.noteRouted(fallback, fallback == ranked[0])
	return fallback
}

// noteRouted records one placement in the affinity counters: a hit is
// a job landed on its rendezvous first choice — where the program's
// decoded/fusion cache is warmest.
func (c *Coordinator) noteRouted(w *worker, first bool) {
	c.met.jobsRouted.Inc()
	if first {
		c.met.affinityHits.Inc()
	} else {
		c.met.affinitySpills.Inc()
	}
}

// heartbeatLoop renews every worker's lease on the configured cadence
// until shutdown. Each renewal is also the health probe (a worker
// misses its way to lost) and the load report (executors, queue
// capacity, drain state) the router reads.
func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.rootCtx.Done():
			return
		case <-t.C:
			c.beatAll()
		}
	}
}

// beatAll renews all leases concurrently — one dead worker's timeout
// must not delay the others' renewals past their TTL.
func (c *Coordinator) beatAll() {
	done := make(chan struct{}, len(c.workers))
	for _, w := range c.workers {
		go func(w *worker) {
			defer func() { done <- struct{}{} }()
			c.beat(w)
		}(w)
	}
	for range c.workers {
		<-done
	}
}

func (c *Coordinator) beat(w *worker) {
	ctx, cancel := context.WithTimeout(c.rootCtx, c.opts.HTTPTimeout)
	defer cancel()
	resp, err := w.lease(ctx, c.id, c.opts.LeaseTTL)
	c.met.heartbeats.Inc()
	if err != nil {
		c.met.heartbeatMisses.Inc()
		if w.noteMiss(c.opts.MaxMissedHeartbeats) {
			c.met.workersLost.Inc()
			c.log.Warn(fmt.Sprintf("fabric: worker %s (%s) lost after %d missed heartbeats: %v",
				w.name, w.url, c.opts.MaxMissedHeartbeats, err),
				"worker", w.name, "url", w.url,
				"missed_heartbeats", c.opts.MaxMissedHeartbeats, "err", err.Error())
		}
		return
	}
	if w.noteLease(resp) {
		c.met.workersRecovered.Inc()
		c.log.Info(fmt.Sprintf("fabric: worker %s (%s) recovered", w.name, w.url),
			"worker", w.name, "url", w.url)
	}
}
