package fabric

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"ximd/internal/archive"
	"ximd/internal/obs"
	"ximd/internal/serve"
)

// fetchTree pulls the assembled NDJSON tree for one trace from the
// coordinator and decodes the depth-annotated lines.
func fetchTree(t *testing.T, base, traceID string) []obs.TreeLine {
	t.Helper()
	resp, body := getBody(t, base+"/v1/traces/"+traceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: %d: %s", traceID, resp.StatusCode, body)
	}
	var lines []obs.TreeLine
	for _, raw := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var l obs.TreeLine
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatalf("bad tree line %s: %v", raw, err)
		}
		lines = append(lines, l)
	}
	return lines
}

func waitFabricDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, body := getBody(t, base+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d: %s", resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == serve.StateDone || st.Status == serve.StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFabricJobTraceTree: one fabric job produces a single fleet-wide
// tree — coordinator request root, job, placement, then the worker's
// own subtree (job/execute/run) spliced in under the placement span —
// and the coordinator's job status carries the trace id.
func TestFabricJobTraceTree(t *testing.T) {
	f := newFleet(t, 2, serve.Options{Workers: 1, QueueDepth: 8}, nil)

	remote := obs.SpanContext{TraceID: "aabbccdd00112233", SpanID: "1122334455667788"}
	b, _ := json.Marshal(tprocBase())
	req, err := http.NewRequest("POST", f.coordTS.URL+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, obs.FormatTraceHeader(remote))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub serve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	sc, ok := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if !ok || sc.TraceID != remote.TraceID {
		t.Fatalf("202 header = %q, want adopted trace %s", resp.Header.Get(obs.TraceHeader), remote.TraceID)
	}

	st := waitFabricDone(t, f.coordTS.URL, sub.ID)
	if st.Status != serve.StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.TraceID != remote.TraceID {
		t.Fatalf("job status trace_id = %q, want %s", st.TraceID, remote.TraceID)
	}

	lines := fetchTree(t, f.coordTS.URL, st.TraceID)
	depth := map[string][]int{}
	svc := map[string][]string{}
	for _, l := range lines {
		depth[l.Name] = append(depth[l.Name], l.Depth)
		svc[l.Name] = append(svc[l.Name], l.Service)
	}
	// Coordinator side: request (adopted, so ParentID set but parent
	// not retained -> root), job, placement.
	for _, want := range []string{"request", "placement", "queue_wait", "execute", "run"} {
		if len(depth[want]) == 0 {
			t.Errorf("tree missing %q span: %+v", want, depth)
		}
	}
	// Both services appear in one tree: the coordinator's spans and the
	// worker's fetched subtree.
	services := map[string]bool{}
	for _, l := range lines {
		services[l.Service] = true
	}
	if !services["ximdc"] || !services["ximdd"] {
		t.Fatalf("tree services = %v, want both ximdc and ximdd", services)
	}
	// Depth: the worker's job span adopted the placement context, so
	// coordinator->worker->execute is at least 3 levels deep.
	if len(depth["run"]) == 0 || depth["run"][0] < 4 {
		t.Fatalf("run span depth = %v, want >= 4 (request/job/placement/worker job/execute/run)", depth["run"])
	}
	// There are two "job" spans — the coordinator's and the worker's —
	// in different services.
	jobSvcs := map[string]bool{}
	for _, s := range svc["job"] {
		jobSvcs[s] = true
	}
	if !jobSvcs["ximdc"] || !jobSvcs["ximdd"] {
		t.Fatalf("job spans come from %v, want both services", svc["job"])
	}
}

// TestStolenJobTraceNamesBothWorkers: a steal shows up in the trace as
// two placement subtrees naming distinct workers, the loser closed with
// drop_reason=superseded.
func TestStolenJobTraceNamesBothWorkers(t *testing.T) {
	f := newFleet(t, 2, serve.Options{Workers: 1, QueueDepth: 32, JobTimeout: 30 * time.Second}, func(o *Options) {
		o.StealAfter = 50 * time.Millisecond
		o.MaxInflight = 64
	})

	digest := archive.ProgramDigest("ximd", []byte(tprocSrc))
	preferred := f.coord.rank(digest)[0]
	occupy := serve.JobRequest{Arch: "ximd", Source: spinSrc, MaxCycles: 4_000_000_000}
	resp, body := postJSON(t, preferred.url+"/v1/jobs", occupy)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupy: status %d: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, f.coordTS.URL+"/v1/jobs", tprocBase())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sub serve.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	st := waitFabricDone(t, f.coordTS.URL, sub.ID)
	if st.Status != serve.StateDone || !st.Stolen {
		t.Fatalf("want stolen done job, got %+v", st)
	}

	lines := fetchTree(t, f.coordTS.URL, st.TraceID)
	workers := map[string]bool{}
	superseded, stole := 0, 0
	for _, l := range lines {
		if l.Name != "placement" {
			continue
		}
		workers[l.Attrs["worker"]] = true
		if l.Attrs["drop_reason"] == "superseded" {
			superseded++
		}
		if l.Attrs["steal"] == "true" {
			stole++
		}
	}
	if len(workers) != 2 {
		t.Fatalf("placement spans name workers %v, want two distinct", workers)
	}
	if superseded != 1 || stole != 1 {
		t.Fatalf("placements: %d superseded, %d stolen, want 1 and 1", superseded, stole)
	}
	// The winner's worker-side subtree is present: an execute span from
	// service ximdd under one of the placements.
	foundExec := false
	for _, l := range lines {
		if l.Name == "execute" && l.Service == "ximdd" {
			foundExec = true
		}
	}
	if !foundExec {
		t.Fatal("no worker-side execute span spliced into the stolen job's tree")
	}
}

// TestFleetHeartbeatAgeAndPollQuantiles: GET /v1/fleet reports each
// worker's last-heartbeat age and the status-poll latency quantiles.
func TestFleetHeartbeatAgeAndPollQuantiles(t *testing.T) {
	f := newFleet(t, 1, serve.Options{Workers: 1, QueueDepth: 8}, nil)
	resp, body := postJSON(t, f.coordTS.URL+"/v1/jobs", tprocBase())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var sub serve.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	waitFabricDone(t, f.coordTS.URL, sub.ID)

	resp, body = getBody(t, f.coordTS.URL+"/v1/fleet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet: %d", resp.StatusCode)
	}
	var fr FleetResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Workers) != 1 {
		t.Fatalf("fleet = %s", body)
	}
	age := fr.Workers[0].LastHeartbeatAgeMS
	if age == nil || *age < 0 {
		t.Fatalf("last_heartbeat_age_ms = %v, want present and >= 0", age)
	}
	// At least one status poll ran to observe the terminal state, so
	// the quantiles are positive and ordered.
	if fr.PollP50MS <= 0 || fr.PollP99MS < fr.PollP50MS {
		t.Fatalf("poll quantiles p50=%g p99=%g, want 0 < p50 <= p99", fr.PollP50MS, fr.PollP99MS)
	}
}
