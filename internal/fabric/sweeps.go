package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ximd/internal/obs"
	"ximd/internal/runner"
	"ximd/internal/serve"
)

// fleetSweep is one sweep fanned out over the fleet: the expanded
// variant list (shared expansion with the single-node path, so names
// and order match exactly) and the fabric job carrying each variant.
type fleetSweep struct {
	id      string
	digest  string
	variant []serve.Variant
	jobs    []*cjob
}

// handleSweep expands a sweep request and routes every variant as one
// fabric job. The synchronous path answers with the merged results in
// submission order — byte-identical, variant for variant, to what a
// single ximdd returns for the same request; "detach":true answers 202
// with the sweep id and per-variant fabric job ids, mirroring the
// worker's detached sweep contract.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	if c.shuttingDown() {
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	var req serve.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.opts.MaxSourceBytes*2))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Base.Trace {
		writeError(w, http.StatusBadRequest, errors.New("sweeps do not support trace=true"))
		return
	}
	digest, arch, _, err := c.validate(&req.Base)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	variants, err := serve.ExpandVariants(req.Base.Seed, req.Base.Inject, req.Seeds, req.Injects, c.opts.MaxSweepTasks)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	if !req.Detach {
		// Synchronous sweeps hold a slot for their whole lifetime, the
		// same backpressure contract as the worker's sweep pool.
		select {
		case c.sweepSem <- struct{}{}:
			defer func() { <-c.sweepSem }()
		default:
			writeError(w, http.StatusTooManyRequests, errors.New("fabric: sweep capacity in use"))
			return
		}
	}

	// The sweep id is allocated before the fan-out so every variant's
	// job span can carry it; the sweep is registered for status polling
	// only once all its jobs exist.
	c.mu.Lock()
	c.nextSweep++
	fs := &fleetSweep{
		id:      fmt.Sprintf("s-%d", c.nextSweep),
		digest:  digest,
		variant: variants,
		jobs:    make([]*cjob, 0, len(variants)),
	}
	c.mu.Unlock()

	// The sweep span is the fleet-wide trace root (or joins the
	// caller's trace); every variant hangs a "job" child off it.
	sc, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	sweepSpan := c.tr.Adopt(sc, "sweep")
	sweepSpan.SetAttr("digest", digest)
	sweepSpan.SetAttr("sweep_id", fs.id)

	for _, v := range variants {
		reqV := req.Base
		reqV.Seed = v.Seed
		reqV.Inject = v.Inject
		js := sweepSpan.Child("job")
		js.SetAttr("sweep_id", fs.id)
		js.SetAttr("variant", v.Name)
		j, err := c.startJob(reqV, digest, arch, v.Canon, true, js)
		if err != nil {
			// Shutdown raced the fan-out; the variants already started
			// will finalize as failed on their own.
			sweepSpan.SetAttr("error", err.Error())
			sweepSpan.Finish()
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		fs.jobs = append(fs.jobs, j)
	}
	c.mu.Lock()
	c.sweeps[fs.id] = fs
	c.mu.Unlock()
	c.met.sweepsTotal.Inc()
	c.met.sweepTasks.Add(uint64(len(fs.jobs)))
	w.Header().Set(obs.TraceHeader, obs.FormatTraceHeader(sweepSpan.Context()))

	if req.Detach {
		// The sweep span covers only the fan-out; the job spans under it
		// keep the trace alive until each variant turns terminal.
		sweepSpan.Finish()
		resp := serve.SweepSubmitResponse{
			ID:            fs.id,
			Status:        serve.StateQueued,
			ProgramSHA256: digest,
		}
		for _, j := range fs.jobs {
			resp.JobIDs = append(resp.JobIDs, j.id)
		}
		writeJSON(w, http.StatusAccepted, resp)
		return
	}

	for _, j := range fs.jobs {
		<-j.done
	}
	sweepSpan.Finish()
	writeJSON(w, http.StatusOK, c.mergeSweep(fs))
}

// mergeSweep assembles the fleet sweep response in submission order.
// Each entry is the variant's deterministic result document — the same
// bytes no matter which worker ran it, how often it was requeued, or
// whether a steal raced it.
func (c *Coordinator) mergeSweep(fs *fleetSweep) serve.SweepResponse {
	resp := serve.SweepResponse{ProgramSHA256: fs.digest}
	for i, j := range fs.jobs {
		out := serve.SweepTaskResult{
			Name:   fs.variant[i].Name,
			Seed:   fs.variant[i].Seed,
			Inject: fs.variant[i].Inject,
		}
		j.mu.Lock()
		state, errText := j.state, j.errText
		j.mu.Unlock()
		if state == serve.StateFailed {
			// Failure verdict wins, as on a single node: no partial
			// document rides along.
			out.Error = errText
			if out.Error == "" {
				out.Error = "job failed"
			}
		} else {
			out.Result = j.resultForClient()
		}
		resp.Results = append(resp.Results, out)
	}
	return resp
}

// handleSweepStatus serves GET /v1/sweeps/{id} for fleet sweeps, the
// same document shape as the worker endpoint with fabric job ids.
func (c *Coordinator) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	fs, ok := c.sweeps[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrUnknownSweep, r.PathValue("id")))
		return
	}
	st := serve.SweepStatus{ID: fs.id, ProgramSHA256: fs.digest}
	for i, j := range fs.jobs {
		j.mu.Lock()
		vs := serve.SweepVariantStatus{
			Name:   fs.variant[i].Name,
			Seed:   fs.variant[i].Seed,
			Inject: fs.variant[i].Inject,
			JobID:  j.id,
			Status: j.state,
			Error:  j.errText,
		}
		if j.state == serve.StateDone || j.state == serve.StateFailed {
			if j.final != nil && j.final.ExitCode != nil {
				vs.ExitCode = j.final.ExitCode
			} else {
				code := runner.ExitSim
				if j.state == serve.StateDone {
					code = 0
				}
				vs.ExitCode = &code
			}
		}
		j.mu.Unlock()
		switch vs.Status {
		case serve.StateQueued:
			st.Queued++
		case serve.StateRunning:
			st.Running++
		case serve.StateDone:
			st.Done++
		case serve.StateFailed:
			st.Failed++
		}
		st.Variants = append(st.Variants, vs)
	}
	switch {
	case st.Done == len(fs.jobs):
		st.Status = serve.StateDone
	case st.Done+st.Failed == len(fs.jobs):
		st.Status = serve.StateFailed
	case st.Queued == len(fs.jobs):
		st.Status = serve.StateQueued
	default:
		st.Status = serve.StateRunning
	}
	writeJSON(w, http.StatusOK, st)
}
