package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ximd/internal/archive"
	"ximd/internal/obs"
	"ximd/internal/runner"
	"ximd/internal/serve"
)

// cjob is one fabric job: a single (program, seed, inject) run with a
// coordinator-assigned stable id. The id never changes across
// requeues or steals — a client polling GET /v1/jobs/{id} on the
// coordinator is insulated from worker loss entirely — and because a
// run is a pure function of the request, every execution of a cjob
// anywhere in the fleet produces the same bytes.
type cjob struct {
	id  string
	req serve.JobRequest
	// wantProfile is the client's profile flag; req.Profile is forced
	// true on the wire so the archive always receives the full
	// document, and the response is stripped back to the client's ask
	// (the same split the single-node sweep path makes).
	wantProfile bool
	digest      string
	arch        runner.Arch
	canon       string
	// doArchive gates the terminal archive append: jobs and sweeps
	// record, regression-gate runs must not (a run never passes by
	// matching itself).
	doArchive bool
	submitted time.Time
	// span is the coordinator-side "job" span; traceID its trace. Every
	// placement hangs a child off it, and the worker-side subtree is
	// spliced in at finalize by fetching the worker's spans for traceID.
	span    *obs.Span
	traceID string

	mu sync.Mutex
	// state is the coordinator-side view: queued (not yet placed),
	// running (dispatched to a worker), done/failed (terminal).
	state      serve.State
	workerName string
	remoteID   string
	attempts   int
	stolen     bool
	// final is the worker's terminal status (profile-full); errText the
	// terminal error (worker-reported or fabric-level).
	final   *serve.JobStatus
	errText string
	done    chan struct{}
}

func (j *cjob) setDispatched(w *worker, remoteID string) {
	j.mu.Lock()
	j.state = serve.StateRunning
	j.workerName = w.name
	j.remoteID = remoteID
	j.attempts++
	j.mu.Unlock()
}

// startJob registers and launches one fabric job. span is the
// coordinator-side job span (a child of the request/sweep/regress span
// that caused it); startJob owns it from here — it is finished at the
// job's terminal state.
func (c *Coordinator) startJob(req serve.JobRequest, digest string, arch runner.Arch, canon string, doArchive bool, span *obs.Span) (*cjob, error) {
	j := &cjob{
		req:         req,
		wantProfile: req.Profile,
		digest:      digest,
		arch:        arch,
		canon:       canon,
		doArchive:   doArchive,
		span:        span,
		traceID:     span.Context().TraceID,
		state:       serve.StateQueued,
		done:        make(chan struct{}),
	}
	j.req.Profile = true
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		span.SetAttr("error", ErrShuttingDown.Error())
		span.Finish()
		return nil, ErrShuttingDown
	}
	c.nextJob++
	j.id = fmt.Sprintf("c-%d", c.nextJob)
	j.submitted = time.Now()
	c.jobs[j.id] = j
	c.wg.Add(1)
	c.mu.Unlock()
	span.SetAttr("job_id", j.id)
	span.SetAttr("digest", digest)
	c.met.jobsTotal.Inc()
	c.met.jobsInflight.Add(1)
	go c.runJob(j)
	return j, nil
}

// submission is one live placement of a job on a worker. A job
// normally has exactly one; stealing temporarily gives it two, and the
// first to turn terminal wins.
type submission struct {
	w           *worker
	remoteID    string
	queuedSince time.Time
	lastState   serve.State
	fails       int
	// span is the placement span: one per submission, annotated with
	// the worker name/url and finished with a drop_reason when the
	// placement is abandoned (worker_lost, remote_job_gone, poll_errors,
	// superseded) or cleanly when it produced the terminal result.
	span *obs.Span
}

// finishDropped closes a placement span with the reason the placement
// was abandoned.
func (s *submission) finishDropped(reason string) {
	s.span.SetAttr("drop_reason", reason)
	s.span.Finish()
}

// runJob drives one fabric job to a terminal state: route with digest
// affinity, submit, poll; steal onto an idle worker if the assignment
// sits queued too long; requeue onto survivors when a worker is lost.
func (c *Coordinator) runJob(j *cjob) {
	defer c.wg.Done()
	deadline := j.submitted.Add(c.opts.JobTimeout)
	var subs []*submission
	interval := c.opts.PollEvery
	// tried remembers every worker that ever held a placement, lost or
	// not — finalize asks each of them for their side of the trace.
	tried := map[string]*worker{}

	drop := func(i int, reason string) {
		subs[i].w.detach(j.id)
		subs[i].finishDropped(reason)
		subs = append(subs[:i], subs[i+1:]...)
	}

	for {
		select {
		case <-c.rootCtx.Done():
			c.fail(j, ErrShuttingDown.Error())
			return
		default:
		}
		if time.Now().After(deadline) {
			c.fail(j, fmt.Sprintf("fabric: job deadline (%v) exceeded after %d submission(s)", c.opts.JobTimeout, j.attemptsNow()))
			return
		}

		// (Re)submit when the job has no live placement.
		if len(subs) == 0 {
			s := c.trySubmit(j, nil, false)
			if s == nil {
				// No routable worker right now (fleet down, everyone
				// saturated, or transient submit failures): back off a
				// beat and retry until the deadline says otherwise.
				if !sleepCtx(c.rootCtx, c.opts.HeartbeatEvery/2) {
					continue
				}
				continue
			}
			if j.attemptsNow() > 0 {
				// A successful resubmission after the job lost every
				// placement — the deterministic requeue in action.
				c.met.jobsRequeued.Inc()
				s.span.SetAttr("requeue", "true")
			}
			tried[s.w.url] = s.w
			subs = append(subs, s)
			j.setDispatched(s.w, s.remoteID)
			interval = c.opts.PollEvery
		}

		if !sleepCtx(c.rootCtx, interval) {
			continue // shutting down; loop handles it at the top
		}
		if interval = interval * 5 / 4; interval > c.opts.PollMax {
			interval = c.opts.PollMax
		}

		for i := 0; i < len(subs); {
			s := subs[i]
			if s.w.isLost() {
				drop(i, "worker_lost")
				continue
			}
			ctx, cancel := context.WithTimeout(c.rootCtx, c.opts.HTTPTimeout)
			pollStart := time.Now()
			st, err := s.w.status(ctx, s.remoteID)
			c.met.pollSecs.Observe(time.Since(pollStart).Seconds())
			cancel()
			switch {
			case errors.Is(err, errJobGone):
				// The worker restarted without durable state and forgot
				// the job; resubmit.
				drop(i, "remote_job_gone")
				continue
			case err != nil:
				// Transport trouble. The heartbeat loop is the authority
				// on worker loss, but a per-job error streak must not
				// outwait it.
				if s.fails++; s.fails >= c.opts.MaxMissedHeartbeats {
					drop(i, "poll_errors")
					continue
				}
				i++
				continue
			}
			s.fails = 0
			if st.Status == serve.StateDone || st.Status == serve.StateFailed {
				for _, other := range subs {
					other.w.detach(j.id)
					if other == s {
						other.span.Finish() // the winning placement
					} else {
						other.finishDropped("superseded")
					}
				}
				c.finalize(j, st, tried)
				return
			}
			if st.Status != s.lastState {
				s.lastState = st.Status
				interval = c.opts.PollEvery // state moved; look closer again
			}
			i++
		}

		// Steal: one live placement, still queued past the threshold —
		// duplicate it onto a worker with genuinely spare capacity.
		// First terminal result wins; the loser's work is wasted, not
		// wrong.
		if len(subs) == 1 && !j.stolenNow() && c.opts.StealAfter > 0 &&
			subs[0].lastState != serve.StateRunning && time.Since(subs[0].queuedSince) > c.opts.StealAfter {
			if s2 := c.trySubmit(j, subs[0].w, true); s2 != nil {
				s2.span.SetAttr("steal", "true")
				tried[s2.w.url] = s2.w
				subs = append(subs, s2)
				j.noteStolen()
				c.met.jobsStolen.Inc()
				interval = c.opts.PollEvery
			}
		}
	}
}

// trySubmit routes and submits once. Returns nil when no worker is
// eligible or the submission failed (the caller backs off and
// retries, and the retry is counted as a fresh routing decision).
func (c *Coordinator) trySubmit(j *cjob, exclude *worker, strict bool) *submission {
	w := c.route(j.digest, exclude, strict)
	if w == nil {
		return nil
	}
	// The placement span is the propagation point: the worker adopts its
	// context, so the worker-side job subtree nests under this placement
	// in the assembled fleet-wide tree.
	ps := j.span.Child("placement")
	ps.SetAttr("worker", w.name)
	ps.SetAttr("url", w.url)
	ctx, cancel := context.WithTimeout(c.rootCtx, c.opts.HTTPTimeout)
	defer cancel()
	start := time.Now()
	resp, err := w.submit(ctx, &j.req, obs.FormatTraceHeader(ps.Context()))
	c.met.submitSecs.Observe(time.Since(start).Seconds())
	if err != nil {
		c.met.submitRetries.Inc()
		if errors.Is(err, errWorkerDraining) {
			w.noteDraining()
		}
		ps.SetAttr("drop_reason", "submit_failed")
		ps.SetAttr("error", err.Error())
		ps.Finish()
		return nil
	}
	ps.SetAttr("remote_id", resp.ID)
	w.attach(j)
	return &submission{w: w, remoteID: resp.ID, queuedSince: time.Now(), lastState: serve.StateQueued, span: ps}
}

func (j *cjob) attemptsNow() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

func (j *cjob) stolenNow() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stolen
}

func (j *cjob) noteStolen() {
	j.mu.Lock()
	j.stolen = true
	j.mu.Unlock()
}

// sleepCtx sleeps d or until ctx is done; reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// finalize publishes a worker-reported terminal state and, for
// archiving jobs, appends the run to the fleet-wide archive before
// closing the done channel — a waiter that observes completion may
// rely on the archive already holding the record, the same ordering
// the single-node service keeps. It also assembles the fleet-wide
// trace: every worker that ever held a placement is asked for its side
// of the trace, and the fetched spans are imported into the
// coordinator's store so GET /v1/traces/{id} shows the whole tree —
// requeued and stolen placements included. The job span is finished
// before done closes, so a waiter can fetch a complete trace.
func (c *Coordinator) finalize(j *cjob, st *serve.JobStatus, tried map[string]*worker) {
	// Complete the trace before publishing the terminal state: a client
	// that observes done via GET /v1/jobs/{id} must find the whole tree
	// under /v1/traces/{trace_id}, worker subtrees included.
	c.importWorkerSpans(j, tried)
	j.mu.Lock()
	wname := j.workerName
	attempts := j.attempts
	stolen := j.stolen
	j.mu.Unlock()
	j.span.SetAttr("state", string(st.Status))
	j.span.SetAttr("worker", wname)
	j.span.SetAttrInt("attempts", uint64(attempts))
	if stolen {
		j.span.SetAttr("stolen", "true")
	}
	if st.Error != "" {
		j.span.SetAttr("error", st.Error)
	}
	j.span.Finish()
	j.mu.Lock()
	j.final = st
	j.state = st.Status
	j.errText = st.Error
	j.mu.Unlock()
	c.met.jobsInflight.Add(-1)
	c.met.roundtrip.Observe(time.Since(j.submitted).Seconds())
	if st.Status == serve.StateFailed {
		c.met.jobsFailed.Inc()
	} else {
		c.met.jobsDone.Inc()
	}
	if j.doArchive && c.arch != nil {
		c.appendArchive(j.archiveRecord(time.Now().UnixMilli()))
	}
	close(j.done)
}

// importWorkerSpans pulls each tried worker's spans for the job's
// trace into the coordinator store. Lost workers are skipped (their
// API is unreachable; the placement span's drop_reason already tells
// the story), and a fetch failure degrades to a flatter tree, never a
// failed job.
func (c *Coordinator) importWorkerSpans(j *cjob, tried map[string]*worker) {
	// Jobs of one sweep share a trace, so a later finalize re-fetches
	// spans an earlier one already imported; skip known span ids to
	// keep the store duplicate-free.
	seen := map[string]bool{}
	for _, sp := range c.spanStore.Trace(j.traceID) {
		seen[sp.SpanID] = true
	}
	for _, w := range tried {
		if w.isLost() {
			continue
		}
		ctx, cancel := context.WithTimeout(c.rootCtx, c.opts.HTTPTimeout)
		spans, err := w.fetchSpans(ctx, j.traceID)
		cancel()
		if err != nil {
			c.log.Warn(fmt.Sprintf("fabric: trace fetch from %s failed: %v", w.name, err),
				"worker", w.name, "trace_id", j.traceID, "err", err.Error())
			continue
		}
		for i := range spans {
			if seen[spans[i].SpanID] {
				continue
			}
			seen[spans[i].SpanID] = true
			c.spanStore.Add(spans[i])
		}
	}
}

// fail publishes a fabric-level terminal failure (deadline, shutdown).
// These never reach the archive: unlike worker-reported outcomes they
// are not deterministic functions of the request.
func (c *Coordinator) fail(j *cjob, msg string) {
	j.mu.Lock()
	j.state = serve.StateFailed
	j.errText = msg
	j.mu.Unlock()
	c.met.jobsInflight.Add(-1)
	c.met.jobsFailed.Inc()
	j.span.SetAttr("state", string(serve.StateFailed))
	j.span.SetAttr("error", msg)
	j.span.Finish()
	close(j.done)
}

// archiveRecord builds the fleet archive record for a worker-terminal
// job: the same key and document a single-node ximdd would append, so
// one archive serves both topologies interchangeably.
func (j *cjob) archiveRecord(unixMS int64) archive.Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := archive.Record{
		Key: archive.Key{
			ProgramSHA256: j.digest,
			Arch:          string(j.arch),
			Seed:          j.req.Seed,
			Inject:        j.canon,
		},
		UnixMS: unixMS,
	}
	if j.final != nil {
		if j.final.ExitCode != nil {
			rec.ExitCode = *j.final.ExitCode
		}
		rec.Error = j.final.Error
		rec.Result = j.final.Result
	} else {
		rec.ExitCode = 1
		rec.Error = j.errText
	}
	return rec
}

func (c *Coordinator) appendArchive(rec archive.Record) {
	if err := c.arch.Append(rec); err != nil {
		c.met.archiveAppendErrs.Inc()
		return
	}
	c.met.archiveAppends.Inc()
}

// resultForClient returns the job's terminal result document with the
// profile stripped back to the client's ask. The strip mirrors the
// single-node sweep path exactly (full doc archived, copy with
// Profile=nil returned), so fleet and single-node responses are
// byte-identical.
func (j *cjob) resultForClient() *runner.ResultDoc {
	if j.final == nil || j.final.Result == nil {
		return nil
	}
	if j.wantProfile {
		return j.final.Result
	}
	doc := *j.final.Result
	doc.Profile = nil
	return &doc
}

// JobStatus is the body of the coordinator's GET /v1/jobs/{id}: the
// job's fleet placement beside the usual terminal fields.
type JobStatus struct {
	ID            string      `json:"id"`
	Status        serve.State `json:"status"`
	ProgramSHA256 string      `json:"program_sha256"`
	// Worker and RemoteID locate the job's current (or final)
	// placement; Attempts counts submissions (requeues re-submit),
	// Stolen whether a duplicate placement raced the original.
	Worker   string `json:"worker,omitempty"`
	RemoteID string `json:"remote_id,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Stolen   bool   `json:"stolen,omitempty"`
	// TraceID locates the fleet-wide trace tree for this job under
	// GET /v1/traces/{trace_id}.
	TraceID  string `json:"trace_id,omitempty"`
	ExitCode *int   `json:"exit_code,omitempty"`
	Error    string `json:"error,omitempty"`
	// Result is the deterministic result document, identical to what
	// any worker — or a single-node ximdd — produces for this request.
	Result *runner.ResultDoc `json:"result,omitempty"`
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.opts.MaxSourceBytes*2))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Trace {
		writeError(w, http.StatusBadRequest, errors.New("fabric jobs do not support trace=true; submit trace jobs to a worker directly"))
		return
	}
	digest, arch, canon, err := c.validate(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The coordinator's root of the fleet-wide trace: adopt the caller's
	// context if one arrived, else start fresh. The request span covers
	// only the HTTP exchange; the job span lives on under it until the
	// job turns terminal.
	sc, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	reqSpan := c.tr.Adopt(sc, "request")
	reqSpan.SetAttr("digest", digest)
	j, err := c.startJob(req, digest, arch, canon, true, reqSpan.Child("job"))
	if err != nil {
		reqSpan.SetAttr("error", err.Error())
		reqSpan.Finish()
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set(obs.TraceHeader, obs.FormatTraceHeader(reqSpan.Context()))
	reqSpan.Finish()
	writeJSON(w, http.StatusAccepted, serve.SubmitResponse{
		ID:            j.id,
		Status:        serve.StateQueued,
		ProgramSHA256: digest,
	})
}

func (c *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrUnknownJob, r.PathValue("id")))
		return
	}
	j.mu.Lock()
	st := JobStatus{
		ID:            j.id,
		Status:        j.state,
		ProgramSHA256: j.digest,
		Worker:        j.workerName,
		RemoteID:      j.remoteID,
		Attempts:      j.attempts,
		Stolen:        j.stolen,
		TraceID:       j.traceID,
		Error:         j.errText,
	}
	terminal := j.state == serve.StateDone || j.state == serve.StateFailed
	var final *serve.JobStatus
	if terminal {
		final = j.final
	}
	j.mu.Unlock()
	if terminal {
		if final != nil && final.ExitCode != nil {
			st.ExitCode = final.ExitCode
		} else {
			code := 1
			if st.Status == serve.StateDone {
				code = 0
			}
			st.ExitCode = &code
		}
		st.Result = j.resultForClient()
	}
	writeJSON(w, http.StatusOK, st)
}
