package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ximd/internal/archive"
	"ximd/internal/runner"
	"ximd/internal/serve"
)

// cjob is one fabric job: a single (program, seed, inject) run with a
// coordinator-assigned stable id. The id never changes across
// requeues or steals — a client polling GET /v1/jobs/{id} on the
// coordinator is insulated from worker loss entirely — and because a
// run is a pure function of the request, every execution of a cjob
// anywhere in the fleet produces the same bytes.
type cjob struct {
	id  string
	req serve.JobRequest
	// wantProfile is the client's profile flag; req.Profile is forced
	// true on the wire so the archive always receives the full
	// document, and the response is stripped back to the client's ask
	// (the same split the single-node sweep path makes).
	wantProfile bool
	digest      string
	arch        runner.Arch
	canon       string
	// doArchive gates the terminal archive append: jobs and sweeps
	// record, regression-gate runs must not (a run never passes by
	// matching itself).
	doArchive bool
	submitted time.Time

	mu sync.Mutex
	// state is the coordinator-side view: queued (not yet placed),
	// running (dispatched to a worker), done/failed (terminal).
	state      serve.State
	workerName string
	remoteID   string
	attempts   int
	stolen     bool
	// final is the worker's terminal status (profile-full); errText the
	// terminal error (worker-reported or fabric-level).
	final   *serve.JobStatus
	errText string
	done    chan struct{}
}

func (j *cjob) setDispatched(w *worker, remoteID string) {
	j.mu.Lock()
	j.state = serve.StateRunning
	j.workerName = w.name
	j.remoteID = remoteID
	j.attempts++
	j.mu.Unlock()
}

// startJob registers and launches one fabric job.
func (c *Coordinator) startJob(req serve.JobRequest, digest string, arch runner.Arch, canon string, doArchive bool) (*cjob, error) {
	j := &cjob{
		req:         req,
		wantProfile: req.Profile,
		digest:      digest,
		arch:        arch,
		canon:       canon,
		doArchive:   doArchive,
		state:       serve.StateQueued,
		done:        make(chan struct{}),
	}
	j.req.Profile = true
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShuttingDown
	}
	c.nextJob++
	j.id = fmt.Sprintf("c-%d", c.nextJob)
	j.submitted = time.Now()
	c.jobs[j.id] = j
	c.wg.Add(1)
	c.mu.Unlock()
	c.met.jobsTotal.Inc()
	c.met.jobsInflight.Add(1)
	go c.runJob(j)
	return j, nil
}

// submission is one live placement of a job on a worker. A job
// normally has exactly one; stealing temporarily gives it two, and the
// first to turn terminal wins.
type submission struct {
	w           *worker
	remoteID    string
	queuedSince time.Time
	lastState   serve.State
	fails       int
}

// runJob drives one fabric job to a terminal state: route with digest
// affinity, submit, poll; steal onto an idle worker if the assignment
// sits queued too long; requeue onto survivors when a worker is lost.
func (c *Coordinator) runJob(j *cjob) {
	defer c.wg.Done()
	deadline := j.submitted.Add(c.opts.JobTimeout)
	var subs []*submission
	interval := c.opts.PollEvery

	drop := func(i int) {
		subs[i].w.detach(j.id)
		subs = append(subs[:i], subs[i+1:]...)
	}

	for {
		select {
		case <-c.rootCtx.Done():
			c.fail(j, ErrShuttingDown.Error())
			return
		default:
		}
		if time.Now().After(deadline) {
			c.fail(j, fmt.Sprintf("fabric: job deadline (%v) exceeded after %d submission(s)", c.opts.JobTimeout, j.attemptsNow()))
			return
		}

		// (Re)submit when the job has no live placement.
		if len(subs) == 0 {
			s := c.trySubmit(j, nil, false)
			if s == nil {
				// No routable worker right now (fleet down, everyone
				// saturated, or transient submit failures): back off a
				// beat and retry until the deadline says otherwise.
				if !sleepCtx(c.rootCtx, c.opts.HeartbeatEvery/2) {
					continue
				}
				continue
			}
			if j.attemptsNow() > 0 {
				// A successful resubmission after the job lost every
				// placement — the deterministic requeue in action.
				c.met.jobsRequeued.Inc()
			}
			subs = append(subs, s)
			j.setDispatched(s.w, s.remoteID)
			interval = c.opts.PollEvery
		}

		if !sleepCtx(c.rootCtx, interval) {
			continue // shutting down; loop handles it at the top
		}
		if interval = interval * 5 / 4; interval > c.opts.PollMax {
			interval = c.opts.PollMax
		}

		for i := 0; i < len(subs); {
			s := subs[i]
			if s.w.isLost() {
				drop(i)
				continue
			}
			ctx, cancel := context.WithTimeout(c.rootCtx, c.opts.HTTPTimeout)
			st, err := s.w.status(ctx, s.remoteID)
			cancel()
			switch {
			case errors.Is(err, errJobGone):
				// The worker restarted without durable state and forgot
				// the job; resubmit.
				drop(i)
				continue
			case err != nil:
				// Transport trouble. The heartbeat loop is the authority
				// on worker loss, but a per-job error streak must not
				// outwait it.
				if s.fails++; s.fails >= c.opts.MaxMissedHeartbeats {
					drop(i)
					continue
				}
				i++
				continue
			}
			s.fails = 0
			if st.Status == serve.StateDone || st.Status == serve.StateFailed {
				for _, other := range subs {
					other.w.detach(j.id)
				}
				c.finalize(j, st)
				return
			}
			if st.Status != s.lastState {
				s.lastState = st.Status
				interval = c.opts.PollEvery // state moved; look closer again
			}
			i++
		}

		// Steal: one live placement, still queued past the threshold —
		// duplicate it onto a worker with genuinely spare capacity.
		// First terminal result wins; the loser's work is wasted, not
		// wrong.
		if len(subs) == 1 && !j.stolenNow() && c.opts.StealAfter > 0 &&
			subs[0].lastState != serve.StateRunning && time.Since(subs[0].queuedSince) > c.opts.StealAfter {
			if s2 := c.trySubmit(j, subs[0].w, true); s2 != nil {
				subs = append(subs, s2)
				j.noteStolen()
				c.met.jobsStolen.Inc()
				interval = c.opts.PollEvery
			}
		}
	}
}

// trySubmit routes and submits once. Returns nil when no worker is
// eligible or the submission failed (the caller backs off and
// retries, and the retry is counted as a fresh routing decision).
func (c *Coordinator) trySubmit(j *cjob, exclude *worker, strict bool) *submission {
	w := c.route(j.digest, exclude, strict)
	if w == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(c.rootCtx, c.opts.HTTPTimeout)
	defer cancel()
	start := time.Now()
	resp, err := w.submit(ctx, &j.req)
	c.met.submitSecs.Observe(time.Since(start).Seconds())
	if err != nil {
		c.met.submitRetries.Inc()
		if errors.Is(err, errWorkerDraining) {
			w.noteDraining()
		}
		return nil
	}
	w.attach(j)
	return &submission{w: w, remoteID: resp.ID, queuedSince: time.Now(), lastState: serve.StateQueued}
}

func (j *cjob) attemptsNow() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

func (j *cjob) stolenNow() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stolen
}

func (j *cjob) noteStolen() {
	j.mu.Lock()
	j.stolen = true
	j.mu.Unlock()
}

// sleepCtx sleeps d or until ctx is done; reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// finalize publishes a worker-reported terminal state and, for
// archiving jobs, appends the run to the fleet-wide archive before
// closing the done channel — a waiter that observes completion may
// rely on the archive already holding the record, the same ordering
// the single-node service keeps.
func (c *Coordinator) finalize(j *cjob, st *serve.JobStatus) {
	j.mu.Lock()
	j.final = st
	j.state = st.Status
	j.errText = st.Error
	j.mu.Unlock()
	c.met.jobsInflight.Add(-1)
	c.met.roundtrip.Observe(time.Since(j.submitted).Seconds())
	if st.Status == serve.StateFailed {
		c.met.jobsFailed.Inc()
	} else {
		c.met.jobsDone.Inc()
	}
	if j.doArchive && c.arch != nil {
		c.appendArchive(j.archiveRecord(time.Now().UnixMilli()))
	}
	close(j.done)
}

// fail publishes a fabric-level terminal failure (deadline, shutdown).
// These never reach the archive: unlike worker-reported outcomes they
// are not deterministic functions of the request.
func (c *Coordinator) fail(j *cjob, msg string) {
	j.mu.Lock()
	j.state = serve.StateFailed
	j.errText = msg
	j.mu.Unlock()
	c.met.jobsInflight.Add(-1)
	c.met.jobsFailed.Inc()
	close(j.done)
}

// archiveRecord builds the fleet archive record for a worker-terminal
// job: the same key and document a single-node ximdd would append, so
// one archive serves both topologies interchangeably.
func (j *cjob) archiveRecord(unixMS int64) archive.Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := archive.Record{
		Key: archive.Key{
			ProgramSHA256: j.digest,
			Arch:          string(j.arch),
			Seed:          j.req.Seed,
			Inject:        j.canon,
		},
		UnixMS: unixMS,
	}
	if j.final != nil {
		if j.final.ExitCode != nil {
			rec.ExitCode = *j.final.ExitCode
		}
		rec.Error = j.final.Error
		rec.Result = j.final.Result
	} else {
		rec.ExitCode = 1
		rec.Error = j.errText
	}
	return rec
}

func (c *Coordinator) appendArchive(rec archive.Record) {
	if err := c.arch.Append(rec); err != nil {
		c.met.archiveAppendErrs.Inc()
		return
	}
	c.met.archiveAppends.Inc()
}

// resultForClient returns the job's terminal result document with the
// profile stripped back to the client's ask. The strip mirrors the
// single-node sweep path exactly (full doc archived, copy with
// Profile=nil returned), so fleet and single-node responses are
// byte-identical.
func (j *cjob) resultForClient() *runner.ResultDoc {
	if j.final == nil || j.final.Result == nil {
		return nil
	}
	if j.wantProfile {
		return j.final.Result
	}
	doc := *j.final.Result
	doc.Profile = nil
	return &doc
}

// JobStatus is the body of the coordinator's GET /v1/jobs/{id}: the
// job's fleet placement beside the usual terminal fields.
type JobStatus struct {
	ID            string      `json:"id"`
	Status        serve.State `json:"status"`
	ProgramSHA256 string      `json:"program_sha256"`
	// Worker and RemoteID locate the job's current (or final)
	// placement; Attempts counts submissions (requeues re-submit),
	// Stolen whether a duplicate placement raced the original.
	Worker   string `json:"worker,omitempty"`
	RemoteID string `json:"remote_id,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Stolen   bool   `json:"stolen,omitempty"`
	ExitCode *int   `json:"exit_code,omitempty"`
	Error    string `json:"error,omitempty"`
	// Result is the deterministic result document, identical to what
	// any worker — or a single-node ximdd — produces for this request.
	Result *runner.ResultDoc `json:"result,omitempty"`
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.opts.MaxSourceBytes*2))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Trace {
		writeError(w, http.StatusBadRequest, errors.New("fabric jobs do not support trace=true; submit trace jobs to a worker directly"))
		return
	}
	digest, arch, canon, err := c.validate(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := c.startJob(req, digest, arch, canon, true)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, serve.SubmitResponse{
		ID:            j.id,
		Status:        serve.StateQueued,
		ProgramSHA256: digest,
	})
}

func (c *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrUnknownJob, r.PathValue("id")))
		return
	}
	j.mu.Lock()
	st := JobStatus{
		ID:            j.id,
		Status:        j.state,
		ProgramSHA256: j.digest,
		Worker:        j.workerName,
		RemoteID:      j.remoteID,
		Attempts:      j.attempts,
		Stolen:        j.stolen,
		Error:         j.errText,
	}
	terminal := j.state == serve.StateDone || j.state == serve.StateFailed
	var final *serve.JobStatus
	if terminal {
		final = j.final
	}
	j.mu.Unlock()
	if terminal {
		if final != nil && final.ExitCode != nil {
			st.ExitCode = final.ExitCode
		} else {
			code := 1
			if st.Status == serve.StateDone {
				code = 0
			}
			st.ExitCode = &code
		}
		st.Result = j.resultForClient()
	}
	writeJSON(w, http.StatusOK, st)
}
