package fabric

import (
	"ximd/internal/obs"
)

// fabricMetrics is the coordinator's instrumentation, one obs.Registry
// per Coordinator (tests and multi-coordinator processes never share
// counters). Naming follows the worker convention with the ximdc_
// prefix: counters end in _total, duration histograms in _seconds.
type fabricMetrics struct {
	reg *obs.Registry

	// Routing. A hit is a job placed on its rendezvous first choice —
	// the worker whose decoded/fusion cache holds the program.
	jobsRouted     *obs.Counter
	affinityHits   *obs.Counter
	affinitySpills *obs.Counter

	// Job lifecycle.
	jobsTotal     *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsRequeued  *obs.Counter
	jobsStolen    *obs.Counter
	submitRetries *obs.Counter
	jobsInflight  *obs.Gauge

	// Fleet health.
	workersTotal     *obs.Gauge
	heartbeats       *obs.Counter
	heartbeatMisses  *obs.Counter
	workersLost      *obs.Counter
	workersRecovered *obs.Counter

	// Sweeps and the archive-backed endpoints.
	sweepsTotal       *obs.Counter
	sweepTasks        *obs.Counter
	archiveAppends    *obs.Counter
	archiveAppendErrs *obs.Counter
	archiveQueries    *obs.Counter
	regressTotal      *obs.Counter
	regressFailed     *obs.Counter

	submitSecs *obs.Histogram
	roundtrip  *obs.Histogram
	pollSecs   *obs.Histogram
}

// fabricBuckets spans worker round-trips: submits are network-bound
// milliseconds, whole jobs run out to the fabric job timeout.
var fabricBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

func newFabricMetrics() *fabricMetrics {
	reg := obs.NewRegistry()
	m := &fabricMetrics{
		reg: reg,

		jobsRouted:     reg.Counter("ximdc_jobs_routed_total", "Job placements decided by the affinity router (requeues and steals count again)."),
		affinityHits:   reg.Counter("ximdc_affinity_hits_total", "Placements on the program's rendezvous first-choice worker."),
		affinitySpills: reg.Counter("ximdc_affinity_spills_total", "Placements that spilled past the first choice (load bound or worker not ready)."),

		jobsTotal:     reg.Counter("ximdc_jobs_total", "Fabric jobs accepted (direct submissions, sweep variants, regress runs)."),
		jobsDone:      reg.Counter("ximdc_jobs_done_total", "Fabric jobs that reached the done state."),
		jobsFailed:    reg.Counter("ximdc_jobs_failed_total", "Fabric jobs that reached the failed state (worker-reported or fabric-level)."),
		jobsRequeued:  reg.Counter("ximdc_jobs_requeued_total", "Jobs resubmitted after losing every live placement (worker lost, job gone, poll-error streak)."),
		jobsStolen:    reg.Counter("ximdc_jobs_stolen_total", "Jobs duplicated onto an idle worker after sitting queued past the steal threshold."),
		submitRetries: reg.Counter("ximdc_submit_retries_total", "Worker submissions that failed (429, 503, transport) and were retried elsewhere."),
		jobsInflight:  reg.Gauge("ximdc_jobs_inflight", "Fabric jobs currently non-terminal."),

		workersTotal:     reg.Gauge("ximdc_workers", "Configured fleet size."),
		heartbeats:       reg.Counter("ximdc_heartbeats_total", "Lease renewals attempted."),
		heartbeatMisses:  reg.Counter("ximdc_heartbeat_misses_total", "Lease renewals that failed."),
		workersLost:      reg.Counter("ximdc_workers_lost_total", "Workers marked lost after consecutive missed heartbeats."),
		workersRecovered: reg.Counter("ximdc_workers_recovered_total", "Lost workers that leased again."),

		sweepsTotal:       reg.Counter("ximdc_sweeps_total", "Fleet sweep requests accepted."),
		sweepTasks:        reg.Counter("ximdc_sweep_tasks_total", "Sweep variants fanned out as fabric jobs."),
		archiveAppends:    reg.Counter("ximdc_archive_appends_total", "Terminal job documents appended to the fleet-wide run archive."),
		archiveAppendErrs: reg.Counter("ximdc_archive_append_errors_total", "Archive appends that failed (record dropped, job unaffected)."),
		archiveQueries:    reg.Counter("ximdc_archive_queries_total", "GET /v1/runs archive queries served."),
		regressTotal:      reg.Counter("ximdc_regress_total", "POST /v1/regress gate evaluations."),
		regressFailed:     reg.Counter("ximdc_regress_failed_total", "Regression gate evaluations that did not pass."),

		submitSecs: reg.Histogram("ximdc_submit_seconds", "Latency of one job submission to a worker.", fabricBuckets),
		roundtrip:  reg.Histogram("ximdc_job_roundtrip_seconds", "Fabric job time from acceptance to terminal state, across requeues.", fabricBuckets),
		pollSecs:   reg.Histogram("ximdc_poll_seconds", "Round trip of one job status poll against a worker.", fabricBuckets),
	}
	reg.GaugeFunc("ximdc_affinity_hit_rate", "Fraction of placements on the rendezvous first choice (1.0 until the first placement).",
		func() float64 {
			hits := float64(m.affinityHits.Value())
			total := hits + float64(m.affinitySpills.Value())
			if total == 0 {
				return 1
			}
			return hits / total
		})
	return m
}

// registerWorkerGauges exposes one worker's coordinator-tracked load.
// The obs registry has no label support, so per-worker series carry the
// worker name in the metric name: ximdc_worker_inflight_w0, ...
func (m *fabricMetrics) registerWorkerGauges(w *worker) {
	m.reg.GaugeFunc("ximdc_worker_inflight_"+w.name,
		"Assigned, non-terminal fabric jobs on worker "+w.name+".",
		func() float64 { return float64(w.inflightLen()) })
}
