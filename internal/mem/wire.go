package mem

import (
	"fmt"

	"ximd/internal/isa"
	"ximd/internal/wire"
)

// Binary serialization of memory checkpoints for the durable
// checkpoint format (internal/ckpt). State is opaque to callers, so
// the encode/decode pair lives here with the concrete state types.
//
// Word arrays are encoded sparsely: a run-length segment list of the
// nonzero regions. Simulated memories are large (the default shared
// memory is 1M words) but programs touch a tiny fraction of them, so
// the sparse form keeps periodic checkpoints proportional to the
// touched footprint instead of the address-space size — load-bearing
// for the <2% checkpoint-overhead budget.

// State type tags of the encoded stream.
const (
	stateTagShared      = 1
	stateTagDistributed = 2
)

// segGap is the zero-run length below which two nonzero segments are
// merged into one: a handful of inline zeros costs less than another
// segment header.
const segGap = 8

// encodeWords appends the sparse segment encoding of words.
func encodeWords(w *wire.Writer, words []isa.Word) {
	w.U32(uint32(len(words)))
	// First pass: count segments (the count prefixes the list).
	var nseg uint32
	forEachSegment(words, func(start, end int) { nseg++ })
	w.U32(nseg)
	forEachSegment(words, func(start, end int) {
		w.U32(uint32(start))
		w.U32(uint32(end - start))
		for _, v := range words[start:end] {
			w.U32(uint32(v))
		}
	})
}

// forEachSegment walks the maximal nonzero segments of words, merging
// segments separated by fewer than segGap zeros.
func forEachSegment(words []isa.Word, fn func(start, end int)) {
	i := 0
	for i < len(words) {
		if words[i] == 0 {
			i++
			continue
		}
		start := i
		end := i + 1 // one past the last nonzero word seen
		for j := i + 1; j < len(words) && j-end < segGap; j++ {
			if words[j] != 0 {
				end = j + 1
			}
		}
		fn(start, end)
		i = end
	}
}

// decodeWords reads a sparse segment encoding into a fresh zeroed
// slice of the declared size. Segment bounds are validated against the
// declared size, and the size itself against maxWords, so corrupt
// bytes fail instead of allocating or writing out of range.
func decodeWords(r *wire.Reader, maxWords uint32) ([]isa.Word, error) {
	size := r.U32()
	if size > maxWords {
		return nil, fmt.Errorf("mem: decoded size %d exceeds limit %d", size, maxWords)
	}
	nseg := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	words := make([]isa.Word, size)
	prevEnd := uint32(0)
	for s := uint32(0); s < nseg; s++ {
		start := r.U32()
		n := r.U32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if start < prevEnd || n == 0 || uint64(start)+uint64(n) > uint64(size) {
			return nil, fmt.Errorf("mem: segment [%d,+%d) out of order or out of range %d", start, n, size)
		}
		for i := uint32(0); i < n; i++ {
			words[start+i] = isa.Word(r.U32())
		}
		prevEnd = start + n
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return words, nil
}

// maxCheckpointWords bounds a decoded memory geometry (words per array
// or per bank). It is far above any configured simulator memory; a
// larger declared size marks corruption, not a checkpoint.
const maxCheckpointWords = 1 << 26

// EncodeState appends a memory checkpoint (as returned by
// Checkpointable.SnapshotState) to w. Only states produced by this
// package's models encode.
func EncodeState(w *wire.Writer, s State) error {
	switch st := s.(type) {
	case *sharedState:
		w.U8(stateTagShared)
		w.U64(st.loads)
		w.U64(st.stores)
		encodeWords(w, st.words)
		return nil
	case *distributedState:
		w.U8(stateTagDistributed)
		w.U32(uint32(len(st.banks)))
		for _, b := range st.banks {
			encodeWords(w, b)
		}
		return nil
	default:
		return fmt.Errorf("mem: cannot encode %T as a memory checkpoint", s)
	}
}

// DecodeState reads a memory checkpoint written by EncodeState. The
// result restores onto a model of identical geometry via
// Checkpointable.RestoreState, exactly like a fresh snapshot.
func DecodeState(r *wire.Reader) (State, error) {
	switch tag := r.U8(); tag {
	case stateTagShared:
		st := &sharedState{loads: r.U64(), stores: r.U64()}
		words, err := decodeWords(r, maxCheckpointWords)
		if err != nil {
			return nil, err
		}
		st.words = words
		return st, r.Err()
	case stateTagDistributed:
		n := r.U32()
		if n > isa.NumFU {
			return nil, fmt.Errorf("mem: decoded bank count %d exceeds %d", n, isa.NumFU)
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		st := &distributedState{banks: make([][]isa.Word, n)}
		for i := range st.banks {
			b, err := decodeWords(r, maxCheckpointWords)
			if err != nil {
				return nil, err
			}
			st.banks[i] = b
		}
		return st, r.Err()
	default:
		return nil, fmt.Errorf("mem: unknown memory checkpoint tag %d", tag)
	}
}
