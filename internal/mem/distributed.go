package mem

import (
	"fmt"

	"ximd/internal/isa"
)

// Distributed models the prototype's per-FU memory (Section 4.3:
// "Distributed Memory (1MB per FU)"). Each functional unit addresses only
// its own bank; the shared register file is the only datapath between
// threads, and the SS/CC networks the only synchronization, exactly as on
// the prototype.
type Distributed struct {
	banks   [][]isa.Word
	pending []pendingStore
	cycle   uint64
}

// DefaultBankWords is the default bank size: 256K words (1MB per FU).
const DefaultBankWords = 1 << 18

// NewDistributed creates numFU banks of the given size in words; size 0
// selects DefaultBankWords.
func NewDistributed(numFU int, size uint32) *Distributed {
	if size == 0 {
		size = DefaultBankWords
	}
	banks := make([][]isa.Word, numFU)
	for i := range banks {
		banks[i] = make([]isa.Word, size)
	}
	return &Distributed{banks: banks}
}

// Load implements Memory: the access goes to fu's own bank.
func (m *Distributed) Load(fu int, addr uint32) (isa.Word, error) {
	if fu < 0 || fu >= len(m.banks) {
		return 0, fmt.Errorf("mem: load from undefined bank %d", fu)
	}
	bank := m.banks[fu]
	if addr >= uint32(len(bank)) {
		return 0, &OutOfRangeError{Addr: addr, Size: uint32(len(bank)), FU: fu}
	}
	return bank[addr], nil
}

// Store implements Memory. Distinct FUs can never conflict — banks are
// private — so conflicts cannot occur by construction.
func (m *Distributed) Store(fu int, addr uint32, v isa.Word) error {
	if fu < 0 || fu >= len(m.banks) {
		return fmt.Errorf("mem: store to undefined bank %d", fu)
	}
	if addr >= uint32(len(m.banks[fu])) {
		return &OutOfRangeError{Addr: addr, Size: uint32(len(m.banks[fu])), FU: fu}
	}
	m.pending = append(m.pending, pendingStore{addr: addr, val: v, fu: fu})
	return nil
}

// BeginCycle implements Memory.
func (m *Distributed) BeginCycle(cycle uint64) {
	m.cycle = cycle
	m.pending = m.pending[:0]
}

// Commit implements Memory.
func (m *Distributed) Commit() {
	for _, p := range m.pending {
		m.banks[p.fu][p.addr] = p.val
	}
}

// Poke writes a bank directly, for host initialization.
func (m *Distributed) Poke(fu int, addr uint32, v isa.Word) {
	if fu >= 0 && fu < len(m.banks) && addr < uint32(len(m.banks[fu])) {
		m.banks[fu][addr] = v
	}
}

// Peek reads a bank directly.
func (m *Distributed) Peek(fu int, addr uint32) isa.Word {
	if fu >= 0 && fu < len(m.banks) && addr < uint32(len(m.banks[fu])) {
		return m.banks[fu][addr]
	}
	return 0
}
