// Package mem provides the memory models used by the XIMD and VLIW
// simulators.
//
// The research model uses an idealized shared memory (Section 2.3): one
// shared word-addressed space, every functional unit may read or write
// every cycle, all operations complete in one cycle, and multiple writes
// to the same location in one cycle are undefined (detected and reported
// here). The prototype instead uses distributed memory, 1MB per FU
// (Section 4.3), which Distributed models.
//
// Memory-mapped devices (package device) can be attached to address
// ranges to model the unpredictable processor interfaces of Sections 1.3
// and 3.4 (Figure 12).
package mem

import (
	"fmt"

	"ximd/internal/isa"
)

// Device is a memory-mapped peripheral. Loads observe the device at the
// current cycle; stores take effect at cycle commit, matching the
// synchronous datapath.
type Device interface {
	// Load returns the device's value at the given address offset within
	// its mapped range during the given cycle.
	Load(cycle uint64, offset uint32) isa.Word
	// Store delivers a write to the device at cycle commit time.
	Store(cycle uint64, offset uint32, v isa.Word)
}

// Memory is the interface the simulators drive. Loads see the state at
// the start of the cycle; stores are staged and become visible at Commit.
type Memory interface {
	// Load reads the word at addr on behalf of functional unit fu.
	Load(fu int, addr uint32) (isa.Word, error)
	// Store stages a write of v to addr on behalf of fu. A same-cycle
	// store conflict is reported as a *ConflictError; the write is still
	// staged (last-staged-wins in tolerant mode).
	Store(fu int, addr uint32, v isa.Word) error
	// BeginCycle starts cycle accounting for the given cycle number.
	BeginCycle(cycle uint64)
	// Commit applies staged stores.
	Commit()
}

// ConflictError reports multiple writes to one location in one cycle —
// undefined on the real machine (Section 2.3).
type ConflictError struct {
	Addr     uint32
	FirstFU  int
	SecondFU int
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("memory write conflict: FU%d and FU%d both write M(%d) in one cycle",
		e.FirstFU, e.SecondFU, e.Addr)
}

// OutOfRangeError reports an access outside the configured address space.
type OutOfRangeError struct {
	Addr uint32
	Size uint32
	FU   int
}

func (e *OutOfRangeError) Error() string {
	return fmt.Sprintf("FU%d accesses M(%d) outside memory of %d words", e.FU, e.Addr, e.Size)
}

type mapping struct {
	base, size uint32
	dev        Device
}

type pendingStore struct {
	addr uint32
	val  isa.Word
	fu   int
	dev  *mapping // nil for plain memory
}

// Shared is the idealized shared memory of the research model.
type Shared struct {
	words    []isa.Word
	mappings []mapping
	pending  []pendingStore
	cycle    uint64

	loads  uint64
	stores uint64
}

// DefaultWords is the default shared-memory size: 1M 32-bit words (4MB).
const DefaultWords = 1 << 20

// NewShared returns a shared memory of the given size in words; size 0
// selects DefaultWords.
func NewShared(size uint32) *Shared {
	if size == 0 {
		size = DefaultWords
	}
	return &Shared{words: make([]isa.Word, size)}
}

// Size returns the memory size in words.
func (m *Shared) Size() uint32 { return uint32(len(m.words)) }

// Map attaches a device to the address range [base, base+size). Mapped
// ranges must not overlap each other and must lie inside the address
// space; loads and stores in the range go to the device instead of RAM.
func (m *Shared) Map(base, size uint32, dev Device) error {
	if size == 0 {
		return fmt.Errorf("mem: zero-length device mapping at %d", base)
	}
	if base+size < base || base+size > m.Size() {
		return fmt.Errorf("mem: device mapping [%d,%d) outside memory of %d words", base, base+size, m.Size())
	}
	for _, mp := range m.mappings {
		if base < mp.base+mp.size && mp.base < base+size {
			return fmt.Errorf("mem: device mapping [%d,%d) overlaps existing [%d,%d)",
				base, base+size, mp.base, mp.base+mp.size)
		}
	}
	m.mappings = append(m.mappings, mapping{base: base, size: size, dev: dev})
	return nil
}

func (m *Shared) findMapping(addr uint32) *mapping {
	for i := range m.mappings {
		mp := &m.mappings[i]
		if addr >= mp.base && addr < mp.base+mp.size {
			return mp
		}
	}
	return nil
}

// Load implements Memory.
func (m *Shared) Load(fu int, addr uint32) (isa.Word, error) {
	m.loads++
	if mp := m.findMapping(addr); mp != nil {
		return mp.dev.Load(m.cycle, addr-mp.base), nil
	}
	if addr >= m.Size() {
		return 0, &OutOfRangeError{Addr: addr, Size: m.Size(), FU: fu}
	}
	return m.words[addr], nil
}

// Store implements Memory.
func (m *Shared) Store(fu int, addr uint32, v isa.Word) error {
	m.stores++
	mp := m.findMapping(addr)
	if mp == nil && addr >= m.Size() {
		return &OutOfRangeError{Addr: addr, Size: m.Size(), FU: fu}
	}
	var conflict error
	for _, p := range m.pending {
		if p.addr == addr {
			conflict = &ConflictError{Addr: addr, FirstFU: p.fu, SecondFU: fu}
			break
		}
	}
	m.pending = append(m.pending, pendingStore{addr: addr, val: v, fu: fu, dev: mp})
	return conflict
}

// LoadFast is the devirtualized load path for simulators that hold a
// concrete *Shared: the common case — no device mappings, address in
// range — is simple enough to inline into the caller's cycle loop.
// Anything unusual falls back to the general Load.
func (m *Shared) LoadFast(fu int, addr uint32) (isa.Word, error) {
	if len(m.mappings) == 0 && addr < uint32(len(m.words)) {
		m.loads++
		return m.words[addr], nil
	}
	return m.Load(fu, addr)
}

// StoreFast is the devirtualized store path: the first in-range store of
// a cycle with no device mappings stages directly; later stores (which
// must scan for same-cycle conflicts), device ranges, and out-of-range
// addresses fall back to the general Store.
func (m *Shared) StoreFast(fu int, addr uint32, v isa.Word) error {
	if len(m.mappings) == 0 && len(m.pending) == 0 && addr < uint32(len(m.words)) {
		m.stores++
		m.pending = append(m.pending, pendingStore{addr: addr, val: v, fu: fu})
		return nil
	}
	return m.Store(fu, addr, v)
}

// BeginCycle implements Memory.
func (m *Shared) BeginCycle(cycle uint64) {
	m.cycle = cycle
	m.pending = m.pending[:0]
}

// Commit implements Memory.
func (m *Shared) Commit() {
	for _, p := range m.pending {
		if p.dev != nil {
			p.dev.dev.Store(m.cycle, p.addr-p.dev.base, p.val)
		} else {
			m.words[p.addr] = p.val
		}
	}
}

// Peek reads RAM directly, bypassing devices and accounting.
func (m *Shared) Peek(addr uint32) isa.Word {
	if addr >= m.Size() {
		return 0
	}
	return m.words[addr]
}

// Poke writes RAM directly, bypassing devices and accounting; for host
// initialization of workload data.
func (m *Shared) Poke(addr uint32, v isa.Word) {
	if addr < m.Size() {
		m.words[addr] = v
	}
}

// PokeInts writes consecutive integers starting at base.
func (m *Shared) PokeInts(base uint32, vals ...int32) {
	for i, v := range vals {
		m.Poke(base+uint32(i), isa.WordFromInt(v))
	}
}

// PeekInts reads n consecutive integers starting at base.
func (m *Shared) PeekInts(base uint32, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = m.Peek(base + uint32(i)).Int()
	}
	return out
}

// Counters returns cumulative load/store counts.
func (m *Shared) Counters() (loads, stores uint64) { return m.loads, m.stores }

// HasMappings reports whether any device is mapped. The fused execution
// engines require plain RAM (device loads are cycle-dependent and
// stores have commit-time side effects), so they check this before
// entering a fused run.
func (m *Shared) HasMappings() bool { return len(m.mappings) > 0 }

// Raw exposes the RAM words directly, bypassing devices, staging, and
// accounting. It exists for the fused execution engines, which buffer
// stores themselves and account loads/stores in bulk via AddCounters;
// any other caller should use Load/Store or Peek/Poke. The caller must
// have checked HasMappings() == false.
func (m *Shared) Raw() []isa.Word { return m.words }

// AddCounters folds externally-accounted load/store counts into the
// cumulative counters — the bulk half of the fused engines' deferred
// accounting contract: fused runs access RAM via Raw and report the
// operation counts here at run exit, so Counters() observes exactly
// what the per-cycle paths would have counted.
func (m *Shared) AddCounters(loads, stores uint64) {
	m.loads += loads
	m.stores += stores
}
