package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"ximd/internal/isa"
)

func TestSharedLoadStoreCycleSemantics(t *testing.T) {
	m := NewShared(64)
	m.Poke(5, isa.WordFromInt(11))
	m.BeginCycle(0)
	if err := m.Store(0, 5, isa.WordFromInt(99)); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 11 {
		t.Fatalf("load during cycle = %d, want start-of-cycle 11", v.Int())
	}
	m.Commit()
	if m.Peek(5).Int() != 99 {
		t.Fatalf("after commit = %d", m.Peek(5).Int())
	}
}

func TestSharedWriteConflict(t *testing.T) {
	m := NewShared(64)
	m.BeginCycle(0)
	if err := m.Store(2, 9, isa.WordFromInt(1)); err != nil {
		t.Fatal(err)
	}
	err := m.Store(5, 9, isa.WordFromInt(2))
	var ce *ConflictError
	if !errors.As(err, &ce) || ce.Addr != 9 || ce.FirstFU != 2 || ce.SecondFU != 5 {
		t.Fatalf("err = %v, want ConflictError{9,2,5}", err)
	}
	m.Commit()
	if m.Peek(9).Int() != 2 {
		t.Fatalf("tolerant resolution = %d, want last staged", m.Peek(9).Int())
	}
}

func TestSharedOutOfRange(t *testing.T) {
	m := NewShared(16)
	m.BeginCycle(0)
	var oor *OutOfRangeError
	if _, err := m.Load(0, 16); !errors.As(err, &oor) {
		t.Fatalf("load err = %v", err)
	}
	if err := m.Store(0, 99, 0); !errors.As(err, &oor) {
		t.Fatalf("store err = %v", err)
	}
}

func TestSharedPokePeekInts(t *testing.T) {
	m := NewShared(64)
	m.PokeInts(10, 5, 3, 4, 7)
	got := m.PeekInts(10, 4)
	want := []int32{5, 3, 4, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PeekInts = %v, want %v", got, want)
		}
	}
}

func TestSharedCounters(t *testing.T) {
	m := NewShared(64)
	m.BeginCycle(0)
	_, _ = m.Load(0, 1)
	_ = m.Store(0, 2, 0)
	_ = m.Store(1, 3, 0)
	loads, stores := m.Counters()
	if loads != 1 || stores != 2 {
		t.Fatalf("counters = %d, %d", loads, stores)
	}
}

type stubDevice struct {
	loads  []uint32
	stores []isa.Word
	value  isa.Word
}

func (d *stubDevice) Load(cycle uint64, offset uint32) isa.Word {
	d.loads = append(d.loads, offset)
	return d.value
}
func (d *stubDevice) Store(cycle uint64, offset uint32, v isa.Word) {
	d.stores = append(d.stores, v)
}

func TestDeviceMapping(t *testing.T) {
	m := NewShared(256)
	dev := &stubDevice{value: isa.WordFromInt(42)}
	if err := m.Map(100, 4, dev); err != nil {
		t.Fatal(err)
	}
	m.BeginCycle(7)
	v, err := m.Load(0, 102)
	if err != nil || v.Int() != 42 {
		t.Fatalf("device load = %d, %v", v.Int(), err)
	}
	if len(dev.loads) != 1 || dev.loads[0] != 2 {
		t.Fatalf("device saw offsets %v, want [2]", dev.loads)
	}
	if err := m.Store(0, 101, isa.WordFromInt(9)); err != nil {
		t.Fatal(err)
	}
	if len(dev.stores) != 0 {
		t.Fatal("device store delivered before commit")
	}
	m.Commit()
	if len(dev.stores) != 1 || dev.stores[0].Int() != 9 {
		t.Fatalf("device stores = %v", dev.stores)
	}
	// RAM outside the mapping is unaffected.
	if m.Peek(101) != 0 {
		t.Fatal("device store leaked into RAM")
	}
}

func TestDeviceMappingValidation(t *testing.T) {
	m := NewShared(256)
	dev := &stubDevice{}
	if err := m.Map(10, 0, dev); err == nil {
		t.Error("accepted zero-length mapping")
	}
	if err := m.Map(250, 10, dev); err == nil {
		t.Error("accepted mapping outside memory")
	}
	if err := m.Map(10, 4, dev); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(12, 4, dev); err == nil {
		t.Error("accepted overlapping mapping")
	}
}

func TestDistributedBanksArePrivate(t *testing.T) {
	m := NewDistributed(4, 32)
	m.BeginCycle(0)
	for fu := 0; fu < 4; fu++ {
		if err := m.Store(fu, 5, isa.WordFromInt(int32(fu+1))); err != nil {
			t.Fatalf("fu %d: %v (same address, different banks, must not conflict)", fu, err)
		}
	}
	m.Commit()
	for fu := 0; fu < 4; fu++ {
		if m.Peek(fu, 5).Int() != int32(fu+1) {
			t.Fatalf("bank %d = %d", fu, m.Peek(fu, 5).Int())
		}
	}
}

func TestDistributedOutOfRange(t *testing.T) {
	m := NewDistributed(2, 16)
	m.BeginCycle(0)
	if _, err := m.Load(0, 16); err == nil {
		t.Error("accepted out-of-range load")
	}
	if _, err := m.Load(5, 0); err == nil {
		t.Error("accepted undefined bank")
	}
	if err := m.Store(5, 0, 0); err == nil {
		t.Error("accepted store to undefined bank")
	}
}

func TestDistributedCycleSemantics(t *testing.T) {
	m := NewDistributed(1, 16)
	m.Poke(0, 3, isa.WordFromInt(7))
	m.BeginCycle(0)
	_ = m.Store(0, 3, isa.WordFromInt(8))
	v, _ := m.Load(0, 3)
	if v.Int() != 7 {
		t.Fatalf("load during cycle = %d", v.Int())
	}
	m.Commit()
	if m.Peek(0, 3).Int() != 8 {
		t.Fatalf("after commit = %d", m.Peek(0, 3).Int())
	}
}

// Property: non-conflicting stores all land, and loads in the next cycle
// observe exactly the stored values.
func TestSharedStoreLoadProperty(t *testing.T) {
	fn := func(vals [6]int32) bool {
		m := NewShared(64)
		m.BeginCycle(0)
		for i, v := range vals {
			if err := m.Store(i%8, uint32(i), isa.WordFromInt(v)); err != nil {
				return false
			}
		}
		m.Commit()
		m.BeginCycle(1)
		for i, v := range vals {
			got, err := m.Load(0, uint32(i))
			if err != nil || got.Int() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
