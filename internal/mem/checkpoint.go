package mem

import (
	"fmt"

	"ximd/internal/isa"
)

// Checkpointing. The sweep retry policy recovers a transiently-faulted
// run by restoring the machine to its last checkpoint, and a machine
// checkpoint must include its memory. State is opaque to callers: only
// the model that produced a State can restore it, and only onto an
// instance of identical geometry.
//
// Snapshots are only meaningful between cycles (after Commit, before the
// next BeginCycle), which is the only time the simulators take them;
// RestoreState discards any staged stores so a restore mid-cycle cannot
// leak writes from the abandoned timeline.

// State is an opaque memory checkpoint.
type State any

// Checkpointable is implemented by memory models whose complete state
// can be captured and restored. Models holding external state (mapped
// devices) refuse to snapshot rather than silently exclude it.
type Checkpointable interface {
	SnapshotState() (State, error)
	RestoreState(State) error
}

type sharedState struct {
	words  []isa.Word
	loads  uint64
	stores uint64
}

// SnapshotState implements Checkpointable. A memory with mapped devices
// cannot be checkpointed: device state lives outside the model.
func (m *Shared) SnapshotState() (State, error) {
	if len(m.mappings) > 0 {
		return nil, fmt.Errorf("mem: cannot checkpoint shared memory with %d mapped devices", len(m.mappings))
	}
	return &sharedState{
		words:  append([]isa.Word(nil), m.words...),
		loads:  m.loads,
		stores: m.stores,
	}, nil
}

// RestoreState implements Checkpointable.
func (m *Shared) RestoreState(s State) error {
	st, ok := s.(*sharedState)
	if !ok {
		return fmt.Errorf("mem: %T is not a shared-memory checkpoint", s)
	}
	if len(m.mappings) > 0 {
		return fmt.Errorf("mem: cannot restore shared memory with %d mapped devices", len(m.mappings))
	}
	if len(st.words) != len(m.words) {
		return fmt.Errorf("mem: checkpoint of %d words does not fit memory of %d", len(st.words), len(m.words))
	}
	copy(m.words, st.words)
	m.loads, m.stores = st.loads, st.stores
	m.pending = m.pending[:0]
	return nil
}

type distributedState struct {
	banks [][]isa.Word
}

// SnapshotState implements Checkpointable.
func (m *Distributed) SnapshotState() (State, error) {
	banks := make([][]isa.Word, len(m.banks))
	for i, b := range m.banks {
		banks[i] = append([]isa.Word(nil), b...)
	}
	return &distributedState{banks: banks}, nil
}

// RestoreState implements Checkpointable.
func (m *Distributed) RestoreState(s State) error {
	st, ok := s.(*distributedState)
	if !ok {
		return fmt.Errorf("mem: %T is not a distributed-memory checkpoint", s)
	}
	if len(st.banks) != len(m.banks) {
		return fmt.Errorf("mem: checkpoint of %d banks does not fit %d banks", len(st.banks), len(m.banks))
	}
	for i, b := range st.banks {
		if len(b) != len(m.banks[i]) {
			return fmt.Errorf("mem: bank %d checkpoint of %d words does not fit bank of %d", i, len(b), len(m.banks[i]))
		}
	}
	for i, b := range st.banks {
		copy(m.banks[i], b)
	}
	m.pending = m.pending[:0]
	return nil
}
