// Package archive is the durable, queryable run archive: an
// append-only persistent store of simulation results keyed by
// (program digest, architecture, seed, canonical inject spec). Because
// every run is reproducible from that key alone (the service's
// determinism contract), an archived record is a baseline: re-running
// the same key must reproduce the same cycles, exit code, statistics,
// and memory peeks, and any drift is an engine regression. The compare
// half of the package (Compare, Report) is that gate; the ximdd
// service exposes it at POST /v1/regress and xbench exposes it offline
// as -baseline.
//
// Storage format: a single file, archive.log, holding a sequence of
// length-prefixed JSON records. Each frame is
//
//	[4-byte big-endian payload length][4-byte big-endian IEEE CRC32
//	of the payload][payload JSON]
//
// Appends write one frame and fsync, so a crash can only ever leave a
// truncated or torn frame at the tail. Open rebuilds the in-memory
// index by scanning frames from the start; the first frame that is
// incomplete, fails its CRC, or does not unmarshal ends the scan — the
// valid prefix is kept, the torn tail is counted (Skipped) and
// truncated away so the next append extends a well-formed file.
// Everything is stdlib-only.
package archive

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"ximd/internal/ckpt"
	"ximd/internal/inject"
	"ximd/internal/runner"
)

// LogName is the archive's single append-only file inside its
// directory.
const LogName = "archive.log"

// maxRecordBytes bounds one frame's payload; a length prefix beyond it
// is treated as corruption, not an allocation request.
const maxRecordBytes = 16 << 20

// frameHeaderLen is the byte length of the length+CRC frame header.
const frameHeaderLen = 8

// Key identifies one reproducible run: everything the result is a pure
// function of. Inject must be in canonical form (inject.Canonicalize)
// so that trivially reordered spec strings share one baseline; NewKey
// enforces that.
type Key struct {
	// ProgramSHA256 is the content digest of the submitted program
	// (ProgramDigest), the same value the service reports as
	// program_sha256.
	ProgramSHA256 string `json:"program_sha256"`
	// Arch is "ximd" or "vliw".
	Arch string `json:"arch"`
	// Seed is the fault-injection seed.
	Seed int64 `json:"seed"`
	// Inject is the canonical fault-injection spec, "" for an idealized
	// run.
	Inject string `json:"inject,omitempty"`
}

// NewKey builds a Key, canonicalizing the inject spec through the
// parsed form so equivalent spec strings produce identical keys.
func NewKey(programSHA256 string, arch runner.Arch, seed int64, injectSpec string) (Key, error) {
	canon, err := inject.Canonicalize(injectSpec)
	if err != nil {
		return Key{}, err
	}
	return Key{
		ProgramSHA256: programSHA256,
		Arch:          string(arch),
		Seed:          seed,
		Inject:        canon,
	}, nil
}

// ID renders the key as the index string. The fields are joined with
// '|', which cannot appear in a hex digest, an arch name, a decimal
// seed, or the inject grammar.
func (k Key) ID() string {
	return fmt.Sprintf("%s|%s|%d|%s", k.ProgramSHA256, k.Arch, k.Seed, k.Inject)
}

// ProgramDigest is the content address of a program: sha256 over the
// architecture name, a zero separator, and the program bytes exactly
// as submitted (assembly text or binary image). It matches the
// program_sha256 the ximdd service reports, so archive keys line up
// with submit responses.
func ProgramDigest(arch runner.Arch, source []byte) string {
	h := sha256.New()
	h.Write([]byte(arch))
	h.Write([]byte{0})
	h.Write(source)
	return hex.EncodeToString(h.Sum(nil))
}

// Span is one named wall-clock phase of the archived run (queue wait,
// decode, execute, total). Spans are context, never compared: they are
// host measurements, not part of the deterministic result.
type Span struct {
	Name   string  `json:"name"`
	Ms     float64 `json:"ms"`
	Detail string  `json:"detail,omitempty"`
}

// Record is one archived run: the key, the outcome through the shared
// exit-code taxonomy, and — for completed runs — the full deterministic
// result document with the stall-attribution profile attached.
type Record struct {
	Key Key `json:"key"`
	// ExitCode is runner.ExitCode of the run's error (0 = success).
	ExitCode int `json:"exit_code"`
	// Error is the run's error text for non-zero exit codes. Runs are
	// deterministic, so the text is reproducible and compared exactly.
	Error string `json:"error,omitempty"`
	// Result is the deterministic result document (stats, peeks,
	// profile); nil when the run failed before producing one.
	Result *runner.ResultDoc `json:"result,omitempty"`
	// Spans is the run's wall-clock phase breakdown (not compared).
	Spans []Span `json:"spans,omitempty"`
	// UnixMS is the wall-clock append time in milliseconds (not
	// compared; 0 when the writer wants byte-stable output, e.g. the
	// checked-in golden baselines).
	UnixMS int64 `json:"unix_ms,omitempty"`
}

// Archive is an open run archive: the append-only log plus the
// in-memory index rebuilt from it. All methods are safe for concurrent
// use.
type Archive struct {
	mu      sync.Mutex
	dir     string
	f       *os.File
	recs    []Record
	byKey   map[string][]int // Key.ID() → indices into recs, append order
	skipped int
}

// Open opens (creating if needed) the archive in dir and rebuilds its
// index. A torn frame at the tail — the footprint of a crash mid-append
// — is detected, counted (Skipped), and truncated away so the earlier
// records stay intact and subsequent appends extend a well-formed file.
func Open(dir string) (*Archive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("archive: %w", err)
	}
	recs, valid, skipped := scanRecords(data)

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	// A freshly created archive.log is only durable once its directory
	// entry is: fsync the parent too, or a crash right after Open can
	// roll back the file's very existence (and every fsynced append
	// with it). See ckpt.SyncDir.
	if len(data) == 0 {
		if err := ckpt.SyncDir(dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("archive: %w", err)
		}
	}
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("archive: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("archive: %w", err)
	}

	a := &Archive{
		dir:     dir,
		f:       f,
		recs:    recs,
		byKey:   make(map[string][]int),
		skipped: skipped,
	}
	for i := range recs {
		id := recs[i].Key.ID()
		a.byKey[id] = append(a.byKey[id], i)
	}
	return a, nil
}

// scanRecords walks the frame sequence in data, returning the decoded
// records, the byte length of the valid prefix, and how many torn
// frames were skipped (0 or 1 — the scan stops at the first).
func scanRecords(data []byte) (recs []Record, valid int64, skipped int) {
	rest := data
	for len(rest) > 0 {
		if len(rest) < frameHeaderLen {
			return recs, valid, skipped + 1
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		sum := binary.BigEndian.Uint32(rest[4:8])
		if n == 0 || n > maxRecordBytes || len(rest) < frameHeaderLen+int(n) {
			return recs, valid, skipped + 1
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, valid, skipped + 1
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, valid, skipped + 1
		}
		recs = append(recs, rec)
		valid += int64(frameHeaderLen + int(n))
		rest = rest[frameHeaderLen+int(n):]
	}
	return recs, valid, skipped
}

// Append writes one record to the log (frame + fsync) and indexes it.
// History is kept: appending the same key again adds a newer record;
// Latest returns the most recent one.
func (a *Archive) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("archive: record is %d bytes, limit %d", len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)

	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return fmt.Errorf("archive: closed")
	}
	if _, err := a.f.Write(frame); err != nil {
		// A short write leaves a torn frame; the next Open detects and
		// truncates it, so earlier records are never poisoned.
		return fmt.Errorf("archive: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	a.recs = append(a.recs, rec)
	id := rec.Key.ID()
	a.byKey[id] = append(a.byKey[id], len(a.recs)-1)
	return nil
}

// Latest returns the most recently appended record for key.
func (a *Archive) Latest(key Key) (Record, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx := a.byKey[key.ID()]
	if len(idx) == 0 {
		return Record{}, false
	}
	return a.recs[idx[len(idx)-1]], true
}

// History returns every record for key, oldest first.
func (a *Archive) History(key Key) []Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx := a.byKey[key.ID()]
	out := make([]Record, len(idx))
	for i, j := range idx {
		out[i] = a.recs[j]
	}
	return out
}

// Query filters archived records. Zero-valued fields match anything;
// Seed and Inject are pointers so "seed 0" and "no injection" remain
// expressible filters. Inject is matched against the canonical form.
type Query struct {
	ProgramSHA256 string
	Arch          string
	Seed          *int64
	Inject        *string
	// Limit caps the result count, keeping the newest matches; <= 0
	// means no cap.
	Limit int
}

// Select returns the matching records in append order (oldest first).
func (a *Archive) Select(q Query) []Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Record
	for i := range a.recs {
		k := &a.recs[i].Key
		if q.ProgramSHA256 != "" && k.ProgramSHA256 != q.ProgramSHA256 {
			continue
		}
		if q.Arch != "" && k.Arch != q.Arch {
			continue
		}
		if q.Seed != nil && k.Seed != *q.Seed {
			continue
		}
		if q.Inject != nil && k.Inject != *q.Inject {
			continue
		}
		out = append(out, a.recs[i])
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

// Len returns the number of indexed records.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.recs)
}

// Skipped returns how many torn tail frames Open discarded.
func (a *Archive) Skipped() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.skipped
}

// Dir returns the archive's directory.
func (a *Archive) Dir() string { return a.dir }

// Close closes the log file. Further appends fail; reads keep working
// off the in-memory index.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil
	}
	err := a.f.Close()
	a.f = nil
	return err
}
