package archive

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ximd/internal/runner"
)

func testRecord(seed int64, injectSpec string, cycles uint64) Record {
	key, err := NewKey("ab12", runner.ArchXIMD, seed, injectSpec)
	if err != nil {
		panic(err)
	}
	doc := runner.ResultDoc{
		StatsDoc: runner.StatsDoc{
			Arch:         "ximd",
			Cycles:       cycles,
			TotalDataOps: cycles * 3,
			OpsPerCycle:  3,
			Utilization:  0.75,
			MeanStreams:  1.5,
		},
		Peeks: []runner.PeekDoc{{Base: 300, Values: []int32{1, 2}}},
	}
	return Record{
		Key:      key,
		ExitCode: 0,
		Result:   &doc,
		Spans:    []Span{{Name: "execute", Ms: 1.25}},
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		testRecord(0, "", 100),
		testRecord(1, "lat=fixed:4", 140),
		testRecord(0, "", 100), // same key again: history
	}
	for _, r := range recs {
		if err := a.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	before, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open: the index rebuilds, appends extend the same bytes.
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Len() != 3 || b.Skipped() != 0 {
		t.Fatalf("reopen: Len=%d Skipped=%d, want 3, 0", b.Len(), b.Skipped())
	}
	got, ok := b.Latest(recs[1].Key)
	if !ok || !reflect.DeepEqual(got, recs[1]) {
		t.Fatalf("Latest after reopen = %+v (ok=%v), want %+v", got, ok, recs[1])
	}
	if h := b.History(recs[0].Key); len(h) != 2 {
		t.Fatalf("History = %d records, want 2", len(h))
	}
	if err := b.Append(testRecord(2, "", 90)); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(after, before) {
		t.Fatal("append after reopen did not extend the existing bytes byte-identically")
	}
	if len(after) <= len(before) {
		t.Fatal("append after reopen wrote nothing")
	}
}

// TestTornTailSkippedOnOpen is the crash-safety contract: a record
// truncated mid-write is detected and skipped on open, earlier records
// survive, and the torn bytes are truncated so the next append
// produces a well-formed file.
func TestTornTailSkippedOnOpen(t *testing.T) {
	for _, cut := range []struct {
		name  string
		bytes int // how many bytes of the final frame to keep
	}{
		{"mid_header", 3},
		{"header_only", frameHeaderLen},
		{"mid_payload", frameHeaderLen + 11},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			a, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			keep := testRecord(0, "", 100)
			if err := a.Append(keep); err != nil {
				t.Fatal(err)
			}
			sizeAfterFirst := fileSize(t, dir)
			if err := a.Append(testRecord(1, "", 120)); err != nil {
				t.Fatal(err)
			}
			a.Close()

			// Cut the second frame mid-write.
			path := filepath.Join(dir, LogName)
			if err := os.Truncate(path, sizeAfterFirst+int64(cut.bytes)); err != nil {
				t.Fatal(err)
			}

			b, err := Open(dir)
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			defer b.Close()
			if b.Len() != 1 {
				t.Fatalf("Len = %d, want 1 (earlier record must survive)", b.Len())
			}
			if b.Skipped() != 1 {
				t.Errorf("Skipped = %d, want 1", b.Skipped())
			}
			if got, ok := b.Latest(keep.Key); !ok || !reflect.DeepEqual(got, keep) {
				t.Fatalf("surviving record = %+v (ok=%v), want %+v", got, ok, keep)
			}
			if got := fileSize(t, dir); got != sizeAfterFirst {
				t.Errorf("torn tail not truncated: file is %d bytes, want %d", got, sizeAfterFirst)
			}

			// Appends after recovery extend a clean file.
			next := testRecord(2, "", 90)
			if err := b.Append(next); err != nil {
				t.Fatal(err)
			}
			b.Close()
			c, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if c.Len() != 2 || c.Skipped() != 0 {
				t.Fatalf("after recovery+append: Len=%d Skipped=%d, want 2, 0", c.Len(), c.Skipped())
			}
		})
	}
}

// TestCorruptPayloadDetectedByCRC flips a payload byte (same length, no
// truncation) and expects the CRC to catch it.
func TestCorruptPayloadDetectedByCRC(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(testRecord(0, "", 100)); err != nil {
		t.Fatal(err)
	}
	a.Close()
	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderLen+5] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Len() != 0 || b.Skipped() != 1 {
		t.Fatalf("Len=%d Skipped=%d, want 0, 1", b.Len(), b.Skipped())
	}
}

func fileSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestKeyCanonicalization: equivalent inject specs map to one key, so
// no duplicate baselines.
func TestKeyCanonicalization(t *testing.T) {
	a, err := NewKey("d1", runner.ArchXIMD, 7, "lat=fixed:4,drop=0.1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKey("d1", runner.ArchXIMD, 7, "drop=0.10, lat=fixed:4")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Errorf("equivalent specs produced different keys:\n %s\n %s", a.ID(), b.ID())
	}
	c, _ := NewKey("d1", runner.ArchXIMD, 8, "lat=fixed:4,drop=0.1")
	if a.ID() == c.ID() {
		t.Error("different seeds share a key")
	}
	d, _ := NewKey("d1", runner.ArchVLIW, 7, "lat=fixed:4,drop=0.1")
	if a.ID() == d.ID() {
		t.Error("different arches share a key")
	}
	if _, err := NewKey("d1", runner.ArchXIMD, 0, "lat=warp:1"); err == nil {
		t.Error("NewKey accepted a bad inject spec")
	}
}

func TestArchivedEquivalentSpecsShareBaseline(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Append(testRecord(3, "lat=fixed:4,drop=0.1", 100)); err != nil {
		t.Fatal(err)
	}
	key, err := NewKey("ab12", runner.ArchXIMD, 3, "drop=0.1,lat=fixed:4")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Latest(key); !ok {
		t.Error("reordered spec missed the archived baseline")
	}
	if a.Len() != 1 {
		t.Errorf("Len = %d, want 1", a.Len())
	}
}

func TestCompare(t *testing.T) {
	base := testRecord(0, "", 100)
	tol := Tolerance{}

	t.Run("identical passes", func(t *testing.T) {
		c := Compare(base, testRecord(0, "", 100), tol)
		if c.Status != StatusPass || len(c.Deltas) != 0 {
			t.Fatalf("identical records: %+v", c)
		}
	})

	t.Run("cycle drift fails exactly", func(t *testing.T) {
		cur := testRecord(0, "", 101)
		c := Compare(base, cur, tol)
		if c.Status != StatusFail {
			t.Fatalf("cycle drift passed: %+v", c)
		}
		found := false
		for _, d := range c.Deltas {
			if d.Field == "cycles" && d.Baseline == "100" && d.Current == "101" {
				found = true
			}
		}
		if !found {
			t.Errorf("no cycles delta in %+v", c.Deltas)
		}
	})

	t.Run("ratio within tolerance passes", func(t *testing.T) {
		cur := testRecord(0, "", 100)
		cur.Result.Utilization = base.Result.Utilization + 0.004
		if c := Compare(base, cur, Tolerance{Ratio: 0.005}); c.Status != StatusPass {
			t.Fatalf("in-tolerance drift failed: %+v", c)
		}
		cur.Result.Utilization = base.Result.Utilization + 0.02
		if c := Compare(base, cur, Tolerance{Ratio: 0.005}); c.Status != StatusFail {
			t.Fatalf("out-of-tolerance drift passed: %+v", c)
		}
	})

	t.Run("exit code and error compared for failed runs", func(t *testing.T) {
		b := Record{Key: base.Key, ExitCode: 1, Error: "sim: livelock"}
		if c := Compare(b, Record{Key: base.Key, ExitCode: 1, Error: "sim: livelock"}, tol); c.Status != StatusPass {
			t.Fatalf("matching failures did not pass: %+v", c)
		}
		if c := Compare(b, Record{Key: base.Key, ExitCode: 0, Result: base.Result}, tol); c.Status != StatusFail {
			t.Fatalf("exit-code flip passed: %+v", c)
		}
	})

	t.Run("peek drift fails", func(t *testing.T) {
		cur := testRecord(0, "", 100)
		vals := append([]int32(nil), cur.Result.Peeks[0].Values...)
		vals[1] = 99
		cur.Result.Peeks = []runner.PeekDoc{{Base: 300, Values: vals}}
		if c := Compare(base, cur, tol); c.Status != StatusFail {
			t.Fatalf("peek drift passed: %+v", c)
		}
	})
}

func TestReportAggregation(t *testing.T) {
	r := NewReport(Tolerance{})
	if !r.Pass || r.Tolerance != DefaultRatioTolerance {
		t.Fatalf("fresh report: %+v", r)
	}
	r.Add(Comparison{Status: StatusPass})
	if !r.Pass {
		t.Error("pass flipped the report")
	}
	r.Add(Comparison{Status: StatusMissingBaseline})
	if r.Pass || r.MissingBaseline != 1 {
		t.Errorf("missing baseline did not fail the gate: %+v", r)
	}
	r.Add(Comparison{Status: StatusFail})
	if r.Failed != 1 || r.Compared != 3 {
		t.Errorf("counts: %+v", r)
	}
}

func TestSelectFilters(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for seed := int64(0); seed < 3; seed++ {
		if err := a.Append(testRecord(seed, "", 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Append(testRecord(0, "lat=fixed:4", 140)); err != nil {
		t.Fatal(err)
	}
	if got := a.Select(Query{ProgramSHA256: "ab12"}); len(got) != 4 {
		t.Errorf("by digest: %d, want 4", len(got))
	}
	seed := int64(0)
	if got := a.Select(Query{Seed: &seed}); len(got) != 2 {
		t.Errorf("by seed 0: %d, want 2", len(got))
	}
	none := ""
	if got := a.Select(Query{Inject: &none}); len(got) != 3 {
		t.Errorf("by empty inject: %d, want 3", len(got))
	}
	if got := a.Select(Query{Limit: 2}); len(got) != 2 || got[1].Key.Inject != "lat=fixed:4" {
		t.Errorf("limit keeps newest: %+v", got)
	}
	if got := a.Select(Query{Arch: "vliw"}); len(got) != 0 {
		t.Errorf("by wrong arch: %d, want 0", len(got))
	}
}
