package archive

import (
	"fmt"
	"math"
	"strconv"

	"ximd/internal/runner"
)

// This file is the regression gate: Compare diffs a fresh run against
// its archived baseline under the tolerance policy, and Report
// aggregates a batch of comparisons into one pass/fail verdict
// (POST /v1/regress, xbench -baseline).
//
// Tolerance policy: runs are deterministic, so everything integral is
// compared exactly — exit code, error text, cycle count, operation
// counts, memory peeks. Derived ratio metrics (utilization, ops/cycle,
// mean streams, the per-FU stall-attribution shares) get a small
// absolute tolerance so a legitimate change in float formatting or
// derivation order cannot fail the gate while a real behavioural shift
// still does.

// DefaultRatioTolerance is the absolute tolerance applied to
// utilization-like fractions when Tolerance.Ratio is unset.
const DefaultRatioTolerance = 0.005

// Tolerance parameterizes Compare.
type Tolerance struct {
	// Ratio is the absolute tolerance for ratio metrics in [0, 1)
	// (utilization, ops/cycle, mean streams, profile shares); <= 0
	// selects DefaultRatioTolerance.
	Ratio float64
}

func (t Tolerance) ratio() float64 {
	if t.Ratio > 0 {
		return t.Ratio
	}
	return DefaultRatioTolerance
}

// Status classifies one comparison.
type Status string

const (
	// StatusPass: the fresh run matches its baseline.
	StatusPass Status = "pass"
	// StatusFail: at least one field drifted beyond tolerance.
	StatusFail Status = "fail"
	// StatusMissingBaseline: the archive has no record for the key.
	StatusMissingBaseline Status = "missing_baseline"
)

// Delta is one diverging field, rendered as strings so integers,
// floats, and error texts share a shape.
type Delta struct {
	Field    string `json:"field"`
	Baseline string `json:"baseline"`
	Current  string `json:"current"`
}

// Comparison is the verdict on one key.
type Comparison struct {
	Key    Key     `json:"key"`
	Status Status  `json:"status"`
	Deltas []Delta `json:"deltas,omitempty"`
}

// Compare diffs current against baseline. The records are expected to
// share a key (the caller looked baseline up by current's key); the
// key recorded on the comparison is current's.
func Compare(baseline, current Record, tol Tolerance) Comparison {
	c := comparer{tol: tol.ratio()}
	c.exactInt("exit_code", int64(baseline.ExitCode), int64(current.ExitCode))
	c.exactStr("error", baseline.Error, current.Error)
	switch {
	case baseline.Result == nil && current.Result == nil:
		// Both failed before producing a document; exit code and error
		// already compared.
	case baseline.Result == nil || current.Result == nil:
		c.add("result", present(baseline.Result != nil), present(current.Result != nil))
	default:
		c.compareResult(baseline.Result, current.Result)
	}
	status := StatusPass
	if len(c.deltas) > 0 {
		status = StatusFail
	}
	return Comparison{Key: current.Key, Status: status, Deltas: c.deltas}
}

func present(p bool) string {
	if p {
		return "present"
	}
	return "absent"
}

type comparer struct {
	tol    float64
	deltas []Delta
}

func (c *comparer) add(field, baseline, current string) {
	c.deltas = append(c.deltas, Delta{Field: field, Baseline: baseline, Current: current})
}

func (c *comparer) exactInt(field string, b, cur int64) {
	if b != cur {
		c.add(field, strconv.FormatInt(b, 10), strconv.FormatInt(cur, 10))
	}
}

func (c *comparer) exactUint(field string, b, cur uint64) {
	if b != cur {
		c.add(field, strconv.FormatUint(b, 10), strconv.FormatUint(cur, 10))
	}
}

func (c *comparer) exactStr(field, b, cur string) {
	if b != cur {
		c.add(field, b, cur)
	}
}

func (c *comparer) ratioWithin(field string, b, cur float64) {
	if math.Abs(b-cur) > c.tol {
		c.add(field,
			strconv.FormatFloat(b, 'g', -1, 64),
			strconv.FormatFloat(cur, 'g', -1, 64))
	}
}

func (c *comparer) compareResult(b, cur *runner.ResultDoc) {
	c.exactStr("arch", b.Arch, cur.Arch)
	c.exactUint("cycles", b.Cycles, cur.Cycles)
	c.exactUint("total_data_ops", b.TotalDataOps, cur.TotalDataOps)
	c.ratioWithin("ops_per_cycle", b.OpsPerCycle, cur.OpsPerCycle)
	c.ratioWithin("utilization", b.Utilization, cur.Utilization)
	c.ratioWithin("mean_streams", b.MeanStreams, cur.MeanStreams)
	c.comparePeeks(b.Peeks, cur.Peeks)
	c.compareProfiles(b.Profile, cur.Profile)
}

func (c *comparer) comparePeeks(b, cur []runner.PeekDoc) {
	if len(b) != len(cur) {
		c.add("peeks", fmt.Sprintf("%d ranges", len(b)), fmt.Sprintf("%d ranges", len(cur)))
		return
	}
	for i := range b {
		if b[i].Base != cur[i].Base {
			c.add(fmt.Sprintf("peeks[%d].base", i),
				strconv.FormatUint(uint64(b[i].Base), 10),
				strconv.FormatUint(uint64(cur[i].Base), 10))
			continue
		}
		if len(b[i].Values) != len(cur[i].Values) {
			c.add(fmt.Sprintf("peeks[%d]", i),
				fmt.Sprintf("%d values", len(b[i].Values)),
				fmt.Sprintf("%d values", len(cur[i].Values)))
			continue
		}
		for j := range b[i].Values {
			if b[i].Values[j] != cur[i].Values[j] {
				c.add(fmt.Sprintf("peeks[%d][%d]@%d", i, j, b[i].Base+uint32(j)),
					strconv.FormatInt(int64(b[i].Values[j]), 10),
					strconv.FormatInt(int64(cur[i].Values[j]), 10))
			}
		}
	}
}

// compareProfiles diffs the stall-attribution blocks as per-FU cycle
// shares: each class (busy, sync wait, idle, mem stall, failed,
// halted) is normalized by the run's cycle count and held to the ratio
// tolerance, per the tolerance policy. A missing block on either side
// is skipped — archived service records always carry one, but older or
// hand-built records may not.
func (c *comparer) compareProfiles(b, cur *runner.ProfileDoc) {
	if b == nil || cur == nil {
		return
	}
	if len(b.FUs) != len(cur.FUs) {
		c.add("profile.fus", fmt.Sprintf("%d FUs", len(b.FUs)), fmt.Sprintf("%d FUs", len(cur.FUs)))
		return
	}
	for i := range b.FUs {
		bf, cf := &b.FUs[i], &cur.FUs[i]
		for _, cls := range []struct {
			name   string
			b, cur uint64
		}{
			{"busy", bf.Busy, cf.Busy},
			{"sync_wait", bf.SyncWait, cf.SyncWait},
			{"idle_nop", bf.IdleNop, cf.IdleNop},
			{"mem_stall", bf.MemStall, cf.MemStall},
			{"failed", bf.Failed, cf.Failed},
			{"halted", bf.Halted, cf.Halted},
		} {
			c.ratioWithin(fmt.Sprintf("profile.fu%d.%s_share", bf.FU, cls.name),
				share(cls.b, b.Cycles), share(cls.cur, cur.Cycles))
		}
	}
}

func share(n, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(n) / float64(cycles)
}

// Report aggregates a batch of comparisons into the gate's verdict:
// Pass is true only when every comparison passed (a missing baseline
// fails the gate — a run with nothing to diff against is unverified,
// not verified).
type Report struct {
	Pass            bool         `json:"pass"`
	Tolerance       float64      `json:"tolerance"`
	Compared        int          `json:"compared"`
	Failed          int          `json:"failed"`
	MissingBaseline int          `json:"missing_baseline"`
	Results         []Comparison `json:"results"`
}

// NewReport starts an empty passing report at the given tolerance.
func NewReport(tol Tolerance) *Report {
	return &Report{Pass: true, Tolerance: tol.ratio()}
}

// Add folds one comparison into the report.
func (r *Report) Add(c Comparison) {
	r.Results = append(r.Results, c)
	r.Compared++
	switch c.Status {
	case StatusFail:
		r.Failed++
		r.Pass = false
	case StatusMissingBaseline:
		r.MissingBaseline++
		r.Pass = false
	}
}
