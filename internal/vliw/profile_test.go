package vliw

import (
	"fmt"
	"math/rand"
	"testing"

	"ximd/internal/core"
	"ximd/internal/inject"
	"ximd/internal/mem"
)

// TestVLIWStallAttributionInvariant holds the profiler's attribution
// invariant on the single-sequencer baseline across the random corpus:
// busy + nops + mem-stalled + failed + halted == cycles × NumFU on both
// engines, clean and injected runs alike. Per-FU op counting happens at
// word commit, so a cycle that faults mid-word leaves no partial
// counts; whole-word stall cycles charge every FU a stall. The VLIW has
// no SS network, so the sync-wait class must stay zero.
func TestVLIWStallAttributionInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(1105))
	for iter := 0; iter < 200; iter++ {
		p := randomVLIWProgram(r)
		if err := p.Validate(); err != nil {
			t.Fatalf("iter %d: invalid program: %v", iter, err)
		}
		var inj *inject.Injector
		if iter%2 == 1 {
			inj = inject.MustNew(randomVLIWInjectConfig(r))
		}
		for _, engine := range []core.EngineKind{core.EngineFast, core.EngineReference} {
			m, err := New(p, Config{
				Engine:            engine,
				Memory:            mem.NewShared(1024),
				MaxCycles:         500,
				TolerateConflicts: iter%3 == 0,
				Inject:            inj,
			})
			if err != nil {
				t.Fatalf("iter %d: New: %v", iter, err)
			}
			m.Run() // faulting runs are part of the corpus
			s := m.Stats()
			tag := fmt.Sprintf("iter %d engine %d", iter, engine)
			if got, want := s.AttributedFUCycles(), s.Cycles*uint64(p.NumFU); got != want {
				t.Errorf("%s: attributed FU-cycles = %d, want cycles×NumFU = %d (stats %+v)",
					tag, got, want, s)
			}
			for fu := 0; fu < p.NumFU; fu++ {
				if s.SyncWaitCycles[fu] != 0 {
					t.Errorf("%s: FU%d sync-wait = %d on a VLIW (no SS network)",
						tag, fu, s.SyncWaitCycles[fu])
				}
			}
		}
	}
}
