package vliw

import (
	"math/rand"
	"reflect"
	"testing"

	"ximd/internal/core"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

// Differential testing of the VLIW fast engine against the reference
// interpreter, mirroring the core package's engine equivalence net:
// random programs must produce identical cycle counts, statistics,
// traces, registers, and memory on both engines.

// vliwCapture retains a deep copy of every VLIW cycle record.
type vliwCapture struct{ recs []CycleRecord }

func (c *vliwCapture) Cycle(rec *CycleRecord) {
	cp := *rec
	cp.CC = append([]bool(nil), rec.CC...)
	c.recs = append(c.recs, cp)
}

func errText(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

func runVLIWEngine(t *testing.T, p *Program, engine core.EngineKind) (*Machine, *vliwCapture, *mem.Shared, uint64, error) {
	t.Helper()
	memory := mem.NewShared(1024)
	for i := uint32(0); i < 1024; i++ {
		memory.Poke(i, isa.WordFromInt(int32(i)*5-900))
	}
	tr := &vliwCapture{}
	m, err := New(p, Config{Engine: engine, Memory: memory, MaxCycles: 1000, Tracer: tr})
	if err != nil {
		t.Fatalf("New(engine=%d): %v", engine, err)
	}
	for i := uint8(0); i < 12; i++ {
		m.Regs().Poke(i, isa.WordFromInt(int32(i)*11-60))
	}
	cycles, runErr := m.Run()
	return m, tr, memory, cycles, runErr
}

func TestDifferentialVLIWFastVsReference(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for iter := 0; iter < 300; iter++ {
		p := randomVLIWProgram(r)
		if err := p.Validate(); err != nil {
			t.Fatalf("iter %d: generated invalid program: %v", iter, err)
		}
		fm, ftr, fmem, fcyc, ferr := runVLIWEngine(t, p, core.EngineFast)
		rm, rtr, rmem, rcyc, rerr := runVLIWEngine(t, p, core.EngineReference)
		if fcyc != rcyc {
			t.Fatalf("iter %d: cycle divergence: fast %d, reference %d", iter, fcyc, rcyc)
		}
		if errText(ferr) != errText(rerr) {
			t.Fatalf("iter %d: error divergence:\nfast: %s\nref:  %s", iter, errText(ferr), errText(rerr))
		}
		if fm.Done() != rm.Done() || fm.PC() != rm.PC() {
			t.Fatalf("iter %d: sequencer divergence: fast done=%v pc=%d, reference done=%v pc=%d",
				iter, fm.Done(), fm.PC(), rm.Done(), rm.PC())
		}
		if !reflect.DeepEqual(fm.Stats(), rm.Stats()) {
			t.Fatalf("iter %d: stats divergence:\nfast: %+v\nref:  %+v", iter, fm.Stats(), rm.Stats())
		}
		if fm.Regs().Stats() != rm.Regs().Stats() {
			t.Fatalf("iter %d: regfile stats divergence:\nfast: %+v\nref:  %+v",
				iter, fm.Regs().Stats(), rm.Regs().Stats())
		}
		if !reflect.DeepEqual(ftr.recs, rtr.recs) {
			t.Fatalf("iter %d: trace divergence (%d vs %d records)", iter, len(ftr.recs), len(rtr.recs))
		}
		for reg := 0; reg < isa.NumRegs; reg++ {
			if fm.Regs().Peek(uint8(reg)) != rm.Regs().Peek(uint8(reg)) {
				t.Fatalf("iter %d: r%d divergence", iter, reg)
			}
		}
		fl, fs := fmem.Counters()
		rl, rs := rmem.Counters()
		if fl != rl || fs != rs {
			t.Fatalf("iter %d: memory counter divergence: fast %d/%d, reference %d/%d", iter, fl, fs, rl, rs)
		}
		for a := uint32(0); a < 1024; a++ {
			if fmem.Peek(a) != rmem.Peek(a) {
				t.Fatalf("iter %d: M(%d) divergence", iter, a)
			}
		}
	}
}

// allocVLIWProgram is an endless two-instruction loop touching ALU,
// compare, load, and store paths on a full-width machine.
func allocVLIWProgram() *Program {
	p := &Program{NumFU: isa.NumFU, Instrs: make([]Instruction, 2)}
	for addr := 0; addr < 2; addr++ {
		in := &p.Instrs[addr]
		for fu := 0; fu < isa.NumFU; fu++ {
			switch fu % 5 {
			case 0:
				in.Ops[fu] = isa.DataOp{Op: isa.OpIAdd, A: isa.R(uint8(fu)), B: isa.I(1), Dest: uint8(fu)}
			case 1:
				in.Ops[fu] = isa.DataOp{Op: isa.OpLoad, A: isa.I(int32(10 + fu)), B: isa.I(0), Dest: uint8(fu)}
			case 2:
				in.Ops[fu] = isa.DataOp{Op: isa.OpStore, A: isa.R(uint8(fu)), B: isa.I(int32(40 + fu))}
			case 3:
				in.Ops[fu] = isa.DataOp{Op: isa.OpLt, A: isa.R(uint8(fu)), B: isa.I(50)}
			default:
				in.Ops[fu] = isa.Nop
			}
		}
		in.Ctrl = isa.Goto(isa.Addr(1 - addr))
	}
	return p
}

func testVLIWStepAllocs(t *testing.T, engine core.EngineKind) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	m, err := New(allocVLIWProgram(), Config{Engine: engine, Memory: mem.NewShared(1024), MaxCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(512, func() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("engine %d: %v allocs per steady-state cycle, want 0", engine, avg)
	}
}

func TestVLIWStepAllocsFast(t *testing.T)      { testVLIWStepAllocs(t, core.EngineFast) }
func TestVLIWStepAllocsReference(t *testing.T) { testVLIWStepAllocs(t, core.EngineReference) }
