package vliw

import (
	"strings"
	"testing"

	"ximd/internal/isa"
)

func TestAccessorsAndValidation(t *testing.T) {
	p := vprog(t, 2, []Instruction{
		row(isa.Goto(1),
			isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(2), Dest: 1}),
		row(isa.Halt()),
	})
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Done() || m.Cycle() != 0 || m.PC() != 0 {
		t.Fatal("fresh machine state wrong")
	}
	if m.Memory() == nil {
		t.Fatal("Memory() nil")
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !m.Done() || m.Cycle() != 2 {
		t.Fatalf("done=%v cycle=%d", m.Done(), m.Cycle())
	}
	// Step after done is a no-op.
	running, err := m.Step()
	if running || err != nil {
		t.Fatalf("Step after done: %v %v", running, err)
	}
	// Zero-cycle stats are well-defined.
	var s Stats
	if s.Utilization() != 0 || s.OpsPerCycle() != 0 {
		t.Fatal("zero stats not zero")
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		p    *Program
		want string
	}{
		{&Program{NumFU: 0, Instrs: []Instruction{row(isa.Halt())}}, "NumFU"},
		{&Program{NumFU: 1}, "empty"},
		{&Program{NumFU: 1, Entry: 5, Instrs: []Instruction{row(isa.Halt())}}, "entry"},
		{&Program{NumFU: 1, Instrs: []Instruction{row(isa.Goto(7))}}, "target"},
		{&Program{NumFU: 1, Instrs: []Instruction{{
			Ops:  [isa.NumFU]isa.DataOp{{Op: isa.Opcode(99)}},
			Ctrl: isa.Halt(),
		}}}, "opcode"},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate = %v, want substring %q", err, c.want)
		}
	}
}

func TestVLIWTolerateConflicts(t *testing.T) {
	p := vprog(t, 2, []Instruction{
		row(isa.Goto(1),
			isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(0), Dest: 9},
			isa.DataOp{Op: isa.OpIAdd, A: isa.I(2), B: isa.I(0), Dest: 9}),
		row(isa.Goto(2),
			isa.DataOp{Op: isa.OpStore, A: isa.I(1), B: isa.I(50)},
			isa.DataOp{Op: isa.OpStore, A: isa.I(2), B: isa.I(50)}),
		row(isa.Halt()),
	})
	if m, err := New(p, Config{}); err == nil {
		if _, err := m.Run(); err == nil {
			t.Fatal("conflicts not reported in strict mode")
		}
	}
	m, err := New(p, Config{TolerateConflicts: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.RegConflicts != 1 || s.MemConflicts != 1 {
		t.Fatalf("conflicts = %d/%d", s.RegConflicts, s.MemConflicts)
	}
	if m.Regs().Peek(9).Int() != 2 {
		t.Fatalf("r9 = %d (last-staged-wins)", m.Regs().Peek(9).Int())
	}
}

func TestVLIWDivideByZeroFaults(t *testing.T) {
	p := vprog(t, 1, []Instruction{
		row(isa.Goto(1), isa.DataOp{Op: isa.OpIDiv, A: isa.I(1), B: isa.I(0), Dest: 1}),
		row(isa.Halt()),
	})
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Fatalf("err = %v", err)
	}
}
