package vliw

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ximd/internal/core"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

// Differential testing of the VLIW fused superop engine: a fused run
// must be byte-identical to an unfused (per-cycle) run — cycle count,
// error text, every statistics counter, register file port accounting,
// memory counters, all 256 registers, and memory content. These tests
// run WITHOUT a tracer (a traced machine never fuses, by design) so the
// fused path actually engages.

// randomFusibleVLIWProgram biases randomVLIWProgram toward fusible
// code — a fraction of words get fall-through control — and then plants
// hazards the base generator deliberately avoids: maybe-trapping
// divides, out-of-range accesses, same-cycle store conflicts, and
// duplicate destination registers. The hazards exercise the fused
// engine's bail/replay path and the fuser's dup-dest exclusion.
func randomFusibleVLIWProgram(r *rand.Rand) *Program {
	p := randomVLIWProgram(r)
	n := len(p.Instrs)
	for addr := 0; addr < n-1; addr++ {
		in := &p.Instrs[addr]
		if r.Intn(10) < 6 {
			in.Ctrl = isa.Goto(isa.Addr(addr + 1))
		}
		for fu := 0; fu < p.NumFU; fu++ {
			switch r.Intn(30) {
			case 0: // divide that may trap
				in.Ops[fu] = isa.DataOp{Op: isa.OpIDiv, A: isa.R(uint8(r.Intn(12))),
					B: isa.I(int32(r.Intn(3))), Dest: uint8(12 + fu)}
			case 1: // access straddling the memory boundary
				if r.Intn(2) == 0 {
					in.Ops[fu] = isa.DataOp{Op: isa.OpLoad, A: isa.I(int32(1010 + r.Intn(30))),
						B: isa.I(0), Dest: uint8(12 + fu)}
				} else {
					in.Ops[fu] = isa.DataOp{Op: isa.OpStore, A: isa.R(uint8(r.Intn(12))),
						B: isa.I(int32(1010 + r.Intn(30)))}
				}
			case 2: // narrow shared store window: same-cycle conflicts
				in.Ops[fu] = isa.DataOp{Op: isa.OpStore, A: isa.R(uint8(r.Intn(12))),
					B: isa.I(int32(90 + r.Intn(4)))}
			case 3: // fixed destination: duplicate-dest words stay unfused
				in.Ops[fu] = isa.DataOp{Op: isa.OpIAdd, A: isa.R(uint8(r.Intn(12))),
					B: isa.I(1), Dest: 5}
			}
		}
	}
	return p
}

// runVLIWFusion executes p without a tracer, with the same deterministic
// register/memory image as runVLIWEngine.
func runVLIWFusion(t *testing.T, p *Program, cfg Config, engine core.EngineKind, disableFusion bool) (*Machine, *mem.Shared, uint64, error) {
	t.Helper()
	memory := mem.NewShared(1024)
	for i := uint32(0); i < 1024; i++ {
		memory.Poke(i, isa.WordFromInt(int32(i)*5-900))
	}
	cfg.Engine = engine
	cfg.Memory = memory
	cfg.DisableFusion = disableFusion
	m, err := New(p, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := uint8(0); i < 12; i++ {
		m.Regs().Poke(i, isa.WordFromInt(int32(i)*11-60))
	}
	cycles, runErr := m.Run()
	return m, memory, cycles, runErr
}

func assertVLIWAgree(t *testing.T, tag, aName, bName string,
	am *Machine, amem *mem.Shared, acyc uint64, aerr error,
	bm *Machine, bmem *mem.Shared, bcyc uint64, berr error) {
	t.Helper()
	if acyc != bcyc {
		t.Fatalf("%s: cycle divergence: %s %d, %s %d (%v vs %v)", tag, aName, acyc, bName, bcyc, aerr, berr)
	}
	if errText(aerr) != errText(berr) {
		t.Fatalf("%s: error divergence:\n%s: %s\n%s: %s", tag, aName, errText(aerr), bName, errText(berr))
	}
	if errText(am.Err()) != errText(bm.Err()) {
		t.Fatalf("%s: latched error divergence", tag)
	}
	if am.Done() != bm.Done() || am.PC() != bm.PC() {
		t.Fatalf("%s: sequencer divergence: %s done=%v pc=%d, %s done=%v pc=%d",
			tag, aName, am.Done(), am.PC(), bName, bm.Done(), bm.PC())
	}
	if !reflect.DeepEqual(am.Stats(), bm.Stats()) {
		t.Fatalf("%s: stats divergence:\n%s: %+v\n%s: %+v", tag, aName, am.Stats(), bName, bm.Stats())
	}
	if am.Regs().Stats() != bm.Regs().Stats() {
		t.Fatalf("%s: regfile stats divergence:\n%s: %+v\n%s: %+v",
			tag, aName, am.Regs().Stats(), bName, bm.Regs().Stats())
	}
	for reg := 0; reg < isa.NumRegs; reg++ {
		if am.Regs().Peek(uint8(reg)) != bm.Regs().Peek(uint8(reg)) {
			t.Fatalf("%s: r%d divergence", tag, reg)
		}
	}
	al, as := amem.Counters()
	bl, bs := bmem.Counters()
	if al != bl || as != bs {
		t.Fatalf("%s: memory counter divergence: %s %d/%d, %s %d/%d", tag, aName, al, as, bName, bl, bs)
	}
	for a := uint32(0); a < 1024; a++ {
		if amem.Peek(a) != bmem.Peek(a) {
			t.Fatalf("%s: M(%d) divergence", tag, a)
		}
	}
}

// TestDifferentialVLIWFusedVsUnfused runs 240 random programs (mostly
// fusibility-biased, with hazards buried in run middles) fused, unfused,
// and on the reference engine, and requires identical outcomes.
func TestDifferentialVLIWFusedVsUnfused(t *testing.T) {
	r := rand.New(rand.NewSource(9119))
	for iter := 0; iter < 240; iter++ {
		var p *Program
		if iter%3 == 0 {
			p = randomVLIWProgram(r)
		} else {
			p = randomFusibleVLIWProgram(r)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("iter %d: generated invalid program: %v", iter, err)
		}
		cfg := Config{MaxCycles: 1000, TolerateConflicts: r.Intn(2) == 0}
		tag := fmt.Sprintf("iter %d (tolerate=%v)", iter, cfg.TolerateConflicts)
		fm, fmem, fcyc, ferr := runVLIWFusion(t, p, cfg, core.EngineFast, false)
		um, umem, ucyc, uerr := runVLIWFusion(t, p, cfg, core.EngineFast, true)
		rm, rmem, rcyc, rerr := runVLIWFusion(t, p, cfg, core.EngineReference, false)
		assertVLIWAgree(t, tag, "fused", "unfused", fm, fmem, fcyc, ferr, um, umem, ucyc, uerr)
		assertVLIWAgree(t, tag, "fused", "reference", fm, fmem, fcyc, ferr, rm, rmem, rcyc, rerr)
	}
}

// TestVLIWStepNMatchesStepLoop holds StepN with awkward batch sizes to
// the same outcome as a strict one-cycle Step loop.
func TestVLIWStepNMatchesStepLoop(t *testing.T) {
	r := rand.New(rand.NewSource(515))
	for iter := 0; iter < 60; iter++ {
		p := randomFusibleVLIWProgram(r)
		if err := p.Validate(); err != nil {
			t.Fatalf("iter %d: invalid program: %v", iter, err)
		}
		cfg := Config{MaxCycles: 1000, TolerateConflicts: r.Intn(2) == 0}

		build := func() (*Machine, *mem.Shared) {
			memory := mem.NewShared(1024)
			for i := uint32(0); i < 1024; i++ {
				memory.Poke(i, isa.WordFromInt(int32(i)*5-900))
			}
			c := cfg
			c.Memory = memory
			m, err := New(p, c)
			if err != nil {
				t.Fatalf("iter %d: New: %v", iter, err)
			}
			for i := uint8(0); i < 12; i++ {
				m.Regs().Poke(i, isa.WordFromInt(int32(i)*11-60))
			}
			return m, memory
		}

		bm, bmem := build()
		var berr error
		for {
			running, err := bm.StepN(uint64(1 + (bm.Cycle() % 5)))
			if err != nil {
				berr = err
				break
			}
			if !running {
				break
			}
		}

		sm, smem := build()
		var serr error
		for {
			running, err := sm.Step()
			if err != nil {
				serr = err
				break
			}
			if !running {
				break
			}
		}
		assertVLIWAgree(t, fmt.Sprintf("iter %d", iter), "stepN", "step",
			bm, bmem, bm.Cycle(), berr, sm, smem, sm.Cycle(), serr)
	}
}

// TestVLIWFusionEngages guards against the net silently testing
// nothing: a straight-line program must produce nonzero run lengths and
// take the fused path end to end.
func TestVLIWFusionEngages(t *testing.T) {
	n := 6
	p := &Program{NumFU: 4, Instrs: make([]Instruction, n)}
	for addr := 0; addr < n; addr++ {
		in := &p.Instrs[addr]
		for fu := 0; fu < 4; fu++ {
			in.Ops[fu] = isa.DataOp{Op: isa.OpIAdd, A: isa.R(uint8(fu)), B: isa.I(1), Dest: uint8(fu)}
		}
		if addr == n-1 {
			in.Ctrl = isa.Halt()
		} else {
			in.Ctrl = isa.Goto(isa.Addr(addr + 1))
		}
	}
	d, err := Predecode(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.fuse.runLen[0]; got != uint32(n-1) {
		t.Fatalf("runLen[0] = %d, want %d", got, n-1)
	}
	m, err := New(nil, Config{Decoded: d})
	if err != nil {
		t.Fatal(err)
	}
	if !m.fuseOK {
		t.Fatal("fuseOK = false on a plain fast-engine machine")
	}
	cycles, err := m.Run()
	if err != nil || cycles != uint64(n) {
		t.Fatalf("Run = %d, %v; want %d cycles", cycles, err, n)
	}
	if got := m.Regs().Peek(2).Int(); got != int32(n) {
		t.Fatalf("r2 = %d, want %d", got, n)
	}
}
