package vliw

import "ximd/internal/isa"

// This file is the runtime half of the VLIW fused execution engine
// (fuse.go builds the static tables); it mirrors the XIMD core's
// fastrun.go with the simplifications the single sequencer affords: no
// per-FU PCs to compare, no partition tracker or stream accounting to
// reconstruct (every cycle runs exactly one stream), and no livelock
// digest. Wherever the machine sits at the head of a straight-line
// superop run, StepN executes the whole run in one tight loop and folds
// the observable counters in bulk at run exit. On an op fault (ALU
// trap, out-of-range access, non-tolerated store conflict) the run
// discards the faulting word's local buffers, commits the completed
// prefix, and replays the word through the per-cycle stepFast — which
// reproduces the partial statistics and exact error text of an unfused
// run, byte for byte.
//
// Runtime preconditions (checked at New into fuseOK, plus per StepN
// call): fast engine, fusion not disabled, no fault injection, no
// tracer, plain *mem.Shared with no device mappings. Anything else
// falls back to the per-cycle Step, which remains the single source of
// truth for one cycle's semantics — Step itself never fuses.

// StepN executes up to n machine cycles, using fused superop runs when
// eligible. It is semantically identical to calling Step n times and
// stopping at the first halt or error.
func (m *Machine) StepN(n uint64) (running bool, err error) {
	fuseActive := m.fuseOK && !m.shared.HasMappings()
	var executed uint64
	for executed < n {
		if fuseActive && m.failure == nil && !m.done {
			if k := uint64(m.fuse.runLen[m.pc]); k > 0 {
				if rem := n - executed; k > rem {
					k = rem
				}
				if avail := m.config.MaxCycles - m.cycle; m.cycle >= m.config.MaxCycles {
					k = 0
				} else if k > avail {
					k = avail
				}
				if k > 0 {
					done, err := m.fusedRun(m.pc, k)
					executed += done
					if err != nil {
						return false, err
					}
					continue
				}
			}
		}
		running, err := m.Step()
		executed++
		if err != nil {
			return false, err
		}
		if !running {
			return false, nil
		}
	}
	return true, nil
}

// fusedRun executes up to maxWords words of the superop run starting at
// entry (all preconditions already checked). It returns the number of
// cycles executed and the terminal error, if any.
func (m *Machine) fusedRun(entry isa.Addr, maxWords uint64) (uint64, error) {
	fi := m.fuse
	regs := m.regs.Raw()
	words := m.shared.Raw()
	memSize := uint32(len(words))
	tolerate := m.config.TolerateConflicts

	k := uint64(fi.runLen[entry])
	if k > maxWords {
		k = maxWords
	}
	entryCycle := m.cycle
	ccBits := m.ccBits

	for i := uint64(0); i < k; i++ {
		addr := entry + isa.Addr(i)
		w := &fi.words[addr]
		ops := fi.ops[w.opStart:w.opEnd]

		// Word-local buffers: nothing machine-visible mutates until the
		// whole word has executed, so a faulting op can discard the word
		// and hand it to the per-cycle replay untouched.
		var nw, ns int
		var wReg [isa.NumFU]uint8
		var wVal [isa.NumFU]isa.Word
		var sAddr [isa.NumFU]uint32
		var sVal [isa.NumFU]isa.Word
		var ccSet, ccVal uint8
		var conflicts uint64

		for oi := range ops {
			op := &ops[oi]
			var a, b isa.Word
			if op.AFromReg() {
				a = regs[op.AReg]
			} else {
				a = op.AImm
			}
			if op.BFromReg() {
				b = regs[op.BReg]
			} else {
				b = op.BImm
			}
			switch op.Op {
			case isa.OpLoad:
				laddr := uint32(a.Int() + b.Int())
				if laddr >= memSize {
					return m.fuseBail(entry, i, ccBits, entryCycle)
				}
				wReg[nw] = op.Dest
				wVal[nw] = words[laddr]
				nw++
			case isa.OpStore:
				saddr := uint32(b.Int())
				if saddr >= memSize {
					return m.fuseBail(entry, i, ccBits, entryCycle)
				}
				for si := 0; si < ns; si++ {
					if sAddr[si] == saddr {
						if !tolerate {
							return m.fuseBail(entry, i, ccBits, entryCycle)
						}
						conflicts++
						break
					}
				}
				sAddr[ns] = saddr
				sVal[ns] = a
				ns++
			default:
				res, cc, aerr := isa.EvalALU(op.Op, a, b)
				if aerr != nil {
					return m.fuseBail(entry, i, ccBits, entryCycle)
				}
				if op.WritesCC() {
					bit := uint8(1) << op.fu
					ccSet |= bit
					if cc {
						ccVal |= bit
					}
				} else if op.WritesReg() {
					wReg[nw] = op.Dest
					wVal[nw] = res
					nw++
				}
			}
		}

		// Word commit: reads of the next word must observe this word's
		// writes, exactly like the staged per-cycle commit. Staging order
		// is FU order, so "last staged wins" on a tolerated store
		// conflict is reproduced by applying the buffer in order.
		for wi := 0; wi < nw; wi++ {
			regs[wReg[wi]] = wVal[wi]
		}
		for si := 0; si < ns; si++ {
			words[sAddr[si]] = sVal[si]
		}
		ccBits = (ccBits &^ ccSet) | ccVal
		m.stats.MemConflicts += conflicts
	}

	m.fuseExit(entry, k, ccBits, entryCycle)
	return k, nil
}

// fuseExit commits the bulk bookkeeping of j completed words of the run
// starting at entry, leaving the machine byte-identical to j per-cycle
// steps: statistics, port and memory accounting, and architectural
// state (PC, CC vector, cycle count).
func (m *Machine) fuseExit(entry isa.Addr, j uint64, ccBits uint8, entryCycle uint64) {
	fi := m.fuse
	n := m.numFU

	var loads, stores, reads, writes uint64
	peakR, peakW := 0, 0
	for wi := uint64(0); wi < j; wi++ {
		w := &fi.words[entry+isa.Addr(wi)]
		loads += uint64(w.loads)
		stores += uint64(w.stores)
		reads += uint64(w.reads)
		writes += uint64(w.writes)
		if int(w.reads) > peakR {
			peakR = int(w.reads)
		}
		if int(w.writes) > peakW {
			peakW = int(w.writes)
		}
		nm := w.nopMask
		for fu := 0; fu < n; fu++ {
			if nm&(1<<fu) != 0 {
				m.stats.Nops[fu]++
			} else {
				m.stats.DataOps[fu]++
			}
		}
	}
	m.stats.Loads += loads
	m.stats.Stores += stores
	m.stats.Cycles += j
	m.stats.StreamHistogram[1] += j // a VLIW always runs exactly one stream

	m.regs.AddBulk(j, reads, writes, peakR, peakW)
	m.shared.AddCounters(loads, stores)

	m.pc = entry + isa.Addr(j)
	m.ccBits = ccBits
	m.cycle = entryCycle + j
}

// fuseBail handles an op fault inside word entry+i of a fused run: the
// completed prefix [entry, entry+i) commits its bulk bookkeeping, the
// machine rewinds to the start of the faulting word (its buffered
// effects are simply dropped), and the word replays through the
// per-cycle stepFast, which reproduces the partial statistics and the
// exact error of an unfused run.
func (m *Machine) fuseBail(entry isa.Addr, i uint64, ccBits uint8, entryCycle uint64) (uint64, error) {
	if i > 0 {
		m.fuseExit(entry, i, ccBits, entryCycle)
	}
	_, err := m.stepFast()
	executed := i
	if err == nil {
		// The replay disagreeing with the fused fault detection would be
		// an engine bug; counting the replayed cycle keeps StepN's
		// bookkeeping honest either way.
		executed++
	}
	return executed, err
}
