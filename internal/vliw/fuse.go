package vliw

import (
	"ximd/internal/core"
	"ximd/internal/isa"
)

// This file is the VLIW superop fuser — the single-sequencer analogue of
// the XIMD core's fuser (internal/core/fuse.go). A VLIW instruction word
// is linear when its sequencer operation is an unconditional goto to the
// next address and no two register-writing slots (ALU writes and load
// destinations) name the same destination register; maximal runs of
// linear words execute as one fused superop in fastrun.go. The single
// sequencer makes the analysis strictly simpler than the XIMD's: there
// is one control operation per word (no per-FU divergence to rule out),
// no synchronization signals, and no partition tracking to reconstruct.
//
// The dup-dest rule makes every linear word statically conflict-free,
// so the runtime buffers register writes locally and applies them at
// word end without the register file's dirty-bitmap conflict detection;
// Stats.RegConflicts/PortConflicts provably stay zero across a run.
// Words that would conflict stay unfused and take the per-cycle path,
// which reports (or tolerates) the conflict exactly as before.

// vfusedOp is one executing slot of a linear word: the decoded data
// operation plus its FU index (needed for CC writes, which are per-FU).
type vfusedOp struct {
	core.DecodedOp
	fu uint8
}

// vfusedWord is the superop metadata of one linear word: the word's
// statically-known contribution to the machine's observable counters,
// folded in bulk at run exit. Explicit nops are summarized by nopMask;
// the op list holds only the slots with data-path work.
type vfusedWord struct {
	opStart, opEnd uint32 // index range into vfuseInfo.ops
	nopMask        uint8  // bit fu set: slot fu is an explicit nop
	reads          uint8  // register read ports charged by the word
	writes         uint8  // register writes staged by the word
	loads          uint8  // memory loads issued by the word
	stores         uint8  // memory stores issued by the word
}

// vfuseInfo is the complete fusion table of a program, built once at
// predecode and immutable afterwards. runLen[a] is the number of
// consecutive linear words starting at a; because every linear word
// falls through to a+1, the executed portion of a run entered at a is
// always a prefix of that suffix, and a branch into the middle of a run
// needs no special casing.
type vfuseInfo struct {
	runLen []uint32
	words  []vfusedWord
	ops    []vfusedOp
}

// fuseVLIW builds the fusion table for a decoded program. The vop table
// is the one decodeVLIW built for the same program.
func fuseVLIW(p *Program, code []vop) *vfuseInfo {
	n := p.NumFU
	plen := len(p.Instrs)
	fi := &vfuseInfo{
		runLen: make([]uint32, plen),
		words:  make([]vfusedWord, plen),
	}
	linear := make([]bool, plen)
	for addr := 0; addr < plen; addr++ {
		linear[addr] = linearVLIWWord(&code[addr], isa.Addr(addr), n, plen)
	}
	// Suffix run lengths, right to left. The last word is never linear
	// (its goto target a+1 would be outside the program), so the
	// recurrence never reads past the end.
	for addr := plen - 1; addr >= 0; addr-- {
		if linear[addr] && addr+1 < plen {
			fi.runLen[addr] = fi.runLen[addr+1] + 1
		}
	}
	for addr := 0; addr < plen; addr++ {
		if !linear[addr] {
			continue
		}
		w := &fi.words[addr]
		w.opStart = uint32(len(fi.ops))
		for fu := 0; fu < n; fu++ {
			op := &code[addr].ops[fu]
			if op.IsNop() {
				w.nopMask |= 1 << fu
				continue
			}
			if op.AFromReg() {
				w.reads++
			}
			if op.BFromReg() {
				w.reads++
			}
			switch {
			case op.Op == isa.OpLoad:
				w.loads++
				w.writes++
			case op.Op == isa.OpStore:
				w.stores++
			case op.WritesReg():
				w.writes++
			}
			fi.ops = append(fi.ops, vfusedOp{DecodedOp: *op, fu: uint8(fu)})
		}
		w.opEnd = uint32(len(fi.ops))
	}
	return fi
}

// linearVLIWWord reports whether the decoded word at addr satisfies the
// fusion legality rules above.
func linearVLIWWord(u *vop, addr isa.Addr, numFU, plen int) bool {
	if u.kind != isa.CtrlGoto || u.t1 != addr+1 || int(addr)+1 >= plen {
		return false
	}
	var destSeen [isa.NumRegs / 64]uint64
	for fu := 0; fu < numFU; fu++ {
		op := &u.ops[fu]
		if op.WritesReg() {
			word, bit := op.Dest>>6, uint64(1)<<(op.Dest&63)
			if destSeen[word]&bit != 0 {
				return false // two slots write one register: stay unfused
			}
			destSeen[word] |= bit
		}
	}
	return true
}
