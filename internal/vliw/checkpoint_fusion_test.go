package vliw

import (
	"fmt"
	"math/rand"
	"testing"

	"ximd/internal/core"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

// The VLIW face of the fusion × checkpoint property: a snapshot taken
// between StepN calls on a fusing machine, restored onto a fresh one,
// finishes identically to the uninterrupted run, across fused fast,
// unfused fast, and reference execution. See the core package's
// checkpoint_fusion_test.go for the XIMD counterpart.

func vliwStepTo(m *Machine, target uint64) {
	running := true
	for running && m.Cycle() < target {
		n := uint64(7)
		if left := target - m.Cycle(); left < n {
			n = left
		}
		running, _ = m.StepN(n)
	}
}

func vliwRunToEnd(m *Machine) {
	const cap = 5000
	running := true
	for running && m.Cycle() < cap {
		n := uint64(7)
		if left := uint64(cap) - m.Cycle(); left < n {
			n = left
		}
		running, _ = m.StepN(n)
	}
}

func TestVLIWSnapshotRestoreAcrossFusion(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	configs := []struct {
		name   string
		engine core.EngineKind
		noFuse bool
	}{
		{"fast+fused", core.EngineFast, false},
		{"fast+nofuse", core.EngineFast, true},
		{"reference", core.EngineReference, false},
	}
	for i := 0; i < 40; i++ {
		prog := randomFusibleVLIWProgram(r)
		snapAt := uint64(1 + r.Intn(60))
		var (
			ms   []*Machine
			mems []*mem.Shared
		)
		for _, c := range configs {
			tag := fmt.Sprintf("prog %d (%s, snap@%d)", i, c.name, snapAt)
			build := func() (*Machine, *mem.Shared) {
				memory := mem.NewShared(1024)
				for a := uint32(0); a < 1024; a++ {
					memory.Poke(a, isa.WordFromInt(int32(a)*5-900))
				}
				m, err := New(prog, Config{Engine: c.engine, Memory: memory, DisableFusion: c.noFuse})
				if err != nil {
					t.Fatalf("%s: New: %v", tag, err)
				}
				for reg := uint8(0); reg < 12; reg++ {
					m.Regs().Poke(reg, isa.WordFromInt(int32(reg)*11-60))
				}
				return m, memory
			}

			contM, contMem := build()
			vliwStepTo(contM, snapAt)
			snap, err := contM.Snapshot()
			if err != nil {
				t.Fatalf("%s: snapshot at cycle %d: %v", tag, contM.Cycle(), err)
			}
			vliwRunToEnd(contM)

			restM, restMem := build()
			if err := restM.Restore(snap); err != nil {
				t.Fatalf("%s: restore: %v", tag, err)
			}
			vliwRunToEnd(restM)

			assertVLIWAgree(t, tag, "continued", "restored",
				contM, contMem, contM.Cycle(), contM.Err(),
				restM, restMem, restM.Cycle(), restM.Err())
			ms = append(ms, restM)
			mems = append(mems, restMem)
		}
		for j := 1; j < len(configs); j++ {
			tag := fmt.Sprintf("prog %d (restored %s vs %s)", i, configs[0].name, configs[j].name)
			assertVLIWAgree(t, tag, configs[0].name, configs[j].name,
				ms[0], mems[0], ms[0].Cycle(), ms[0].Err(),
				ms[j], mems[j], ms[j].Cycle(), ms[j].Err())
		}
	}
}

// TestVLIWResetAfterRestoreLeavesNoResidue mirrors the core pooling
// guard: Restore followed by Reset must leave no checkpoint state
// behind.
func TestVLIWResetAfterRestoreLeavesNoResidue(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	for i := 0; i < 20; i++ {
		progA := randomFusibleVLIWProgram(r)
		progB := randomFusibleVLIWProgram(r)

		build := func(p *Program) (*Machine, *mem.Shared) {
			memory := mem.NewShared(1024)
			for a := uint32(0); a < 1024; a++ {
				memory.Poke(a, isa.WordFromInt(int32(a)*5-900))
			}
			m, err := New(p, Config{Engine: core.EngineFast, Memory: memory})
			if err != nil {
				t.Fatalf("prog %d: New: %v", i, err)
			}
			for reg := uint8(0); reg < 12; reg++ {
				m.Regs().Poke(reg, isa.WordFromInt(int32(reg)*11-60))
			}
			return m, memory
		}

		dirty, _ := build(progA)
		vliwStepTo(dirty, 20)
		snap, err := dirty.Snapshot()
		if err != nil {
			t.Fatalf("prog %d: snapshot: %v", i, err)
		}
		vliwRunToEnd(dirty)
		if err := dirty.Restore(snap); err != nil {
			t.Fatalf("prog %d: restore: %v", i, err)
		}

		memB := mem.NewShared(1024)
		for a := uint32(0); a < 1024; a++ {
			memB.Poke(a, isa.WordFromInt(int32(a)*5-900))
		}
		if err := dirty.Reset(progB, Config{Engine: core.EngineFast, Memory: memB}); err != nil {
			t.Fatalf("prog %d: reset: %v", i, err)
		}
		for reg := uint8(0); reg < 12; reg++ {
			dirty.Regs().Poke(reg, isa.WordFromInt(int32(reg)*11-60))
		}
		vliwRunToEnd(dirty)

		fresh, freshMem := build(progB)
		vliwRunToEnd(fresh)

		tag := fmt.Sprintf("prog %d (reset after restore)", i)
		assertVLIWAgree(t, tag, "reused", "fresh",
			dirty, memB, dirty.Cycle(), dirty.Err(),
			fresh, freshMem, fresh.Cycle(), fresh.Err())
	}
}
