package vliw

import (
	"math/rand"
	"testing"

	"ximd/internal/core"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

// Differential fuzzing: random VLIW programs executed natively and as
// XIMD emulations (control duplicated per parcel, Section 3.1) must agree
// on every architectural outcome — cycle count, all 256 registers, and
// memory. Programs use only forward branches, so they terminate by
// construction.

func randomVLIWProgram(r *rand.Rand) *Program {
	numFU := 1 + r.Intn(isa.NumFU)
	n := 3 + r.Intn(24)
	p := &Program{NumFU: numFU, Instrs: make([]Instruction, n)}
	// A small register window keeps values flowing between instructions.
	reg := func() uint8 { return uint8(r.Intn(12)) }
	operand := func() isa.Operand {
		if r.Intn(2) == 0 {
			return isa.R(reg())
		}
		return isa.I(int32(r.Intn(2001) - 1000))
	}
	safeOps := []isa.Opcode{
		isa.OpIAdd, isa.OpISub, isa.OpIMult, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSra, isa.OpINeg, isa.OpIAbs, isa.OpNot,
		isa.OpFAdd, isa.OpFMult, isa.OpItoF,
	}
	cmpOps := []isa.Opcode{isa.OpEq, isa.OpNe, isa.OpLt, isa.OpLe, isa.OpGt, isa.OpGe}

	for addr := 0; addr < n; addr++ {
		in := &p.Instrs[addr]
		usedDest := map[uint8]bool{}
		for fu := 0; fu < numFU; fu++ {
			switch r.Intn(6) {
			case 0:
				in.Ops[fu] = isa.Nop
			case 1:
				// Compare sets this FU's own condition code: never a
				// register conflict.
				op := cmpOps[r.Intn(len(cmpOps))]
				in.Ops[fu] = isa.DataOp{Op: op, A: operand(), B: operand()}
			case 2:
				// Memory: load from or store to a small private region
				// per FU to avoid same-cycle store conflicts.
				base := int32(100 + fu*16 + r.Intn(16))
				if r.Intn(2) == 0 {
					d := reg()
					for usedDest[d] {
						d = reg()
					}
					usedDest[d] = true
					in.Ops[fu] = isa.DataOp{Op: isa.OpLoad, A: isa.I(base), B: isa.I(0), Dest: d}
				} else {
					in.Ops[fu] = isa.DataOp{Op: isa.OpStore, A: operand(), B: isa.I(base)}
				}
			default:
				op := safeOps[r.Intn(len(safeOps))]
				d := reg()
				for usedDest[d] {
					d = reg()
				}
				usedDest[d] = true
				in.Ops[fu] = isa.DataOp{Op: op, A: operand(), B: operand(), Dest: d}
			}
		}
		// Control: forward only.
		if addr == n-1 {
			in.Ctrl = isa.Halt()
			continue
		}
		fwd := func() isa.Addr { return isa.Addr(addr + 1 + r.Intn(n-addr-1)) }
		switch r.Intn(4) {
		case 0:
			in.Ctrl = isa.Goto(fwd())
		case 1:
			in.Ctrl = isa.Halt()
		default:
			cc := uint8(r.Intn(numFU))
			if r.Intn(2) == 0 {
				in.Ctrl = isa.IfCC(cc, fwd(), fwd())
			} else {
				in.Ctrl = isa.IfNotCC(cc, fwd(), fwd())
			}
		}
	}
	return p
}

func TestDifferentialVLIWvsXIMD(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for iter := 0; iter < 300; iter++ {
		p := randomVLIWProgram(r)
		if err := p.Validate(); err != nil {
			t.Fatalf("iter %d: generated invalid program: %v", iter, err)
		}
		vMem := mem.NewShared(1024)
		vm, err := New(p, Config{Memory: vMem, MaxCycles: 1000})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		vCycles, vErr := vm.Run()

		xMem := mem.NewShared(1024)
		xm, err := core.New(p.ToXIMD(), core.Config{Memory: xMem, MaxCycles: 1000})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		xCycles, xErr := xm.Run()

		if (vErr == nil) != (xErr == nil) {
			t.Fatalf("iter %d: error divergence: vliw %v, ximd %v", iter, vErr, xErr)
		}
		if vErr != nil {
			continue // both failed identically (should not happen with safe ops)
		}
		if vCycles != xCycles {
			t.Fatalf("iter %d: cycles %d vs %d", iter, vCycles, xCycles)
		}
		for reg := 0; reg < isa.NumRegs; reg++ {
			if vm.Regs().Peek(uint8(reg)) != xm.Regs().Peek(uint8(reg)) {
				t.Fatalf("iter %d: r%d = %#x vs %#x", iter, reg,
					uint32(vm.Regs().Peek(uint8(reg))), uint32(xm.Regs().Peek(uint8(reg))))
			}
		}
		for a := uint32(0); a < 256; a++ {
			if vMem.Peek(100+a) != xMem.Peek(100+a) {
				t.Fatalf("iter %d: M(%d) differs", iter, 100+a)
			}
		}
	}
}
