package vliw

import (
	"fmt"

	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
)

// Snapshot is a between-cycles checkpoint of a VLIW machine, the
// single-sequencer analogue of core.Snapshot: program counter, condition
// codes, registers, memory, statistics, and any pending whole-word
// stall. The sweep retry policy uses it to recover transiently-faulted
// runs without replaying from cycle 0.
type Snapshot struct {
	cycle   uint64
	pc      isa.Addr
	done    bool
	failure error
	cc      []bool
	stats   Stats
	regs    *regfile.Snapshot
	memory  mem.State
	stall   uint32
}

// Cycle returns the cycle number at which the snapshot was taken.
func (s *Snapshot) Cycle() uint64 { return s.cycle }

// Snapshot captures the machine's state between cycles. It fails when
// the memory model cannot be checkpointed (e.g. devices are mapped).
func (m *Machine) Snapshot() (*Snapshot, error) {
	ckpt, ok := m.memory.(mem.Checkpointable)
	if !ok {
		return nil, fmt.Errorf("vliw: memory model %T does not support checkpointing", m.memory)
	}
	memState, err := ckpt.SnapshotState()
	if err != nil {
		return nil, fmt.Errorf("vliw: snapshot: %w", err)
	}
	s := &Snapshot{
		cycle:   m.cycle,
		pc:      m.pc,
		done:    m.done,
		failure: m.failure,
		cc:      make([]bool, m.numFU),
		stats:   m.stats.Clone(),
		regs:    m.regs.Snapshot(),
		memory:  memState,
		stall:   m.stall,
	}
	if m.code != nil {
		for fu := 0; fu < m.numFU; fu++ {
			s.cc[fu] = m.ccBits&(uint8(1)<<fu) != 0
		}
	} else {
		copy(s.cc, m.cc)
	}
	return s, nil
}

// Restore rewinds the machine to a snapshot, including any latched
// terminal error (restoring a pre-failure snapshot clears the failure).
// The injector's retry attempt is not architectural state: bump it via
// Injector.NextAttempt so the replay draws fresh transient faults.
func (m *Machine) Restore(s *Snapshot) error {
	if len(s.cc) != m.numFU {
		return fmt.Errorf("vliw: snapshot of %d FUs does not fit machine of %d", len(s.cc), m.numFU)
	}
	ckpt, ok := m.memory.(mem.Checkpointable)
	if !ok {
		return fmt.Errorf("vliw: memory model %T does not support checkpointing", m.memory)
	}
	if err := ckpt.RestoreState(s.memory); err != nil {
		return fmt.Errorf("vliw: restore: %w", err)
	}
	m.regs.Restore(s.regs)
	m.cycle = s.cycle
	m.pc = s.pc
	m.done = s.done
	m.failure = s.failure
	copy(m.cc, s.cc)
	m.stats = s.stats.Clone()
	m.stall = s.stall
	if m.code != nil {
		m.ccBits = 0
		for fu := 0; fu < m.numFU; fu++ {
			if s.cc[fu] {
				m.ccBits |= uint8(1) << fu
			}
		}
	}
	return nil
}
