package vliw

import (
	"strings"
	"testing"

	"ximd/internal/core"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

// vprog assembles a VLIW program from rows of (ops..., ctrl).
func vprog(t *testing.T, numFU int, rows []Instruction) *Program {
	t.Helper()
	p := &Program{Instrs: rows, NumFU: numFU}
	if err := p.Validate(); err != nil {
		t.Fatalf("vprog: %v", err)
	}
	return p
}

func row(ctrl isa.CtrlOp, ops ...isa.DataOp) Instruction {
	var in Instruction
	copy(in.Ops[:], ops)
	in.Ctrl = ctrl
	return in
}

func TestVLIWStraightLine(t *testing.T) {
	p := vprog(t, 2, []Instruction{
		row(isa.Goto(1),
			isa.DataOp{Op: isa.OpIAdd, A: isa.I(2), B: isa.I(3), Dest: 1},
			isa.DataOp{Op: isa.OpIMult, A: isa.I(4), B: isa.I(5), Dest: 2}),
		row(isa.Goto(2),
			isa.DataOp{Op: isa.OpIAdd, A: isa.R(1), B: isa.R(2), Dest: 3}),
		row(isa.Halt()),
	})
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 3 {
		t.Fatalf("cycles = %d", cycles)
	}
	if got := m.Regs().Peek(3).Int(); got != 25 {
		t.Fatalf("r3 = %d, want 25", got)
	}
}

func TestVLIWConditionalBranch(t *testing.T) {
	// Loop: r1 counts down from 3; single sequencer branch per cycle.
	p := vprog(t, 1, []Instruction{
		row(isa.Goto(1), isa.DataOp{Op: isa.OpIAdd, A: isa.I(3), B: isa.I(0), Dest: 1}),
		row(isa.Goto(2), isa.DataOp{Op: isa.OpISub, A: isa.R(1), B: isa.I(1), Dest: 1}),
		row(isa.Goto(3), isa.DataOp{Op: isa.OpGt, A: isa.R(1), B: isa.I(0)}),
		row(isa.IfCC(0, 1, 4)),
		row(isa.Halt()),
	})
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Regs().Peek(1).Int(); got != 0 {
		t.Fatalf("r1 = %d", got)
	}
	s := m.Stats()
	if s.CondBranches != 3 || s.TakenBranches != 2 {
		t.Fatalf("branches = %d/%d, want 2/3", s.TakenBranches, s.CondBranches)
	}
}

func TestVLIWRejectsSyncConditions(t *testing.T) {
	p := &Program{
		Instrs: []Instruction{row(isa.IfAllSS(0, 0))},
		NumFU:  1,
	}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "synchronization") {
		t.Fatalf("err = %v, want sync-condition rejection", err)
	}
}

func TestVLIWCCTimingMatchesXIMD(t *testing.T) {
	// Compare and branch in the same instruction: the branch must see the
	// registered (stale) CC, as on XIMD.
	p := vprog(t, 1, []Instruction{
		row(isa.IfCC(0, 2, 1), isa.DataOp{Op: isa.OpLt, A: isa.I(1), B: isa.I(2)}),
		row(isa.IfCC(0, 3, 2)), // now CC is visible
		row(isa.Halt()),        // wrong path
		row(isa.Goto(4), isa.DataOp{Op: isa.OpIAdd, A: isa.I(9), B: isa.I(0), Dest: 1}),
		row(isa.Halt()),
	})
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Regs().Peek(1).Int(); got != 9 {
		t.Fatalf("r1 = %d, want 9 (registered CC semantics)", got)
	}
}

func TestRoundTripXIMDConversion(t *testing.T) {
	p := vprog(t, 2, []Instruction{
		row(isa.Goto(1),
			isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(2), Dest: 1},
			isa.DataOp{Op: isa.OpISub, A: isa.I(5), B: isa.I(3), Dest: 2}),
		row(isa.Halt()),
	})
	x := p.ToXIMD()
	if style := core.Classify(x); !style.VLIW {
		t.Fatalf("ToXIMD output not VLIW-style: %+v", style)
	}
	back, err := FromXIMD(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Instrs) != len(p.Instrs) || back.NumFU != p.NumFU {
		t.Fatal("geometry changed in round trip")
	}
	for addr := range p.Instrs {
		if back.Instrs[addr] != p.Instrs[addr] {
			t.Fatalf("addr %d changed: %+v vs %+v", addr, back.Instrs[addr], p.Instrs[addr])
		}
	}
}

func TestFromXIMDRejectsDivergentControl(t *testing.T) {
	b := isa.NewBuilder(2)
	b.Set(0, 0, isa.Parcel{Data: isa.Nop, Ctrl: isa.Goto(1)})
	b.Set(0, 1, isa.Parcel{Data: isa.Nop, Ctrl: isa.Goto(0)}) // different target
	b.Set(1, 0, isa.HaltParcel)
	b.Set(1, 1, isa.HaltParcel)
	if _, err := FromXIMD(b.MustBuild()); err == nil {
		t.Fatal("FromXIMD accepted non-VLIW program")
	}
}

// TestXIMDEquivalence runs the same VLIW program natively and as an XIMD
// emulation and checks cycle-for-cycle equal results — the Section 2.1
// functional-equivalence claim, executed.
func TestXIMDEquivalence(t *testing.T) {
	p := vprog(t, 2, []Instruction{
		row(isa.Goto(1),
			isa.DataOp{Op: isa.OpIAdd, A: isa.I(10), B: isa.I(0), Dest: 1},
			isa.DataOp{Op: isa.OpIAdd, A: isa.I(0), B: isa.I(0), Dest: 2}),
		row(isa.Goto(2),
			isa.DataOp{Op: isa.OpISub, A: isa.R(1), B: isa.I(1), Dest: 1},
			isa.DataOp{Op: isa.OpIAdd, A: isa.R(2), B: isa.R(1), Dest: 2}),
		row(isa.Goto(3),
			isa.DataOp{Op: isa.OpGt, A: isa.R(1), B: isa.I(0)}),
		row(isa.IfCC(0, 1, 4)),
		row(isa.Halt()),
	})
	vm, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	vCycles, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}

	xm, err := core.New(p.ToXIMD(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	xCycles, err := xm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if vCycles != xCycles {
		t.Fatalf("cycle counts differ: vliw %d, ximd %d", vCycles, xCycles)
	}
	for reg := uint8(1); reg <= 2; reg++ {
		if vm.Regs().Peek(reg) != xm.Regs().Peek(reg) {
			t.Fatalf("r%d differs: vliw %d, ximd %d", reg,
				vm.Regs().Peek(reg).Int(), xm.Regs().Peek(reg).Int())
		}
	}
}

func TestVLIWMemoryOps(t *testing.T) {
	shared := mem.NewShared(128)
	shared.PokeInts(50, 7)
	p := vprog(t, 1, []Instruction{
		row(isa.Goto(1), isa.DataOp{Op: isa.OpLoad, A: isa.I(50), B: isa.I(0), Dest: 1}),
		row(isa.Goto(2), isa.DataOp{Op: isa.OpStore, A: isa.R(1), B: isa.I(51)}),
		row(isa.Halt()),
	})
	m, err := New(p, Config{Memory: shared})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if shared.Peek(51).Int() != 7 {
		t.Fatalf("M(51) = %d", shared.Peek(51).Int())
	}
}

func TestVLIWMaxCycles(t *testing.T) {
	p := vprog(t, 1, []Instruction{row(isa.Goto(0))})
	m, err := New(p, Config{MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("runaway program not stopped")
	}
}

func TestVLIWTracer(t *testing.T) {
	var pcs []isa.Addr
	tr := tracerFunc(func(rec *CycleRecord) { pcs = append(pcs, rec.PC) })
	p := vprog(t, 1, []Instruction{
		row(isa.Goto(1)),
		row(isa.Goto(2)),
		row(isa.Halt()),
	})
	m, err := New(p, Config{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 3 || pcs[0] != 0 || pcs[1] != 1 || pcs[2] != 2 {
		t.Fatalf("traced PCs = %v", pcs)
	}
}

type tracerFunc func(rec *CycleRecord)

func (f tracerFunc) Cycle(rec *CycleRecord) { f(rec) }

func TestVLIWStatsUtilization(t *testing.T) {
	p := vprog(t, 4, []Instruction{
		row(isa.Goto(1),
			isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(1), Dest: 1},
			isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(1), Dest: 2}),
		row(isa.Halt()),
	})
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.TotalDataOps() != 2 {
		t.Fatalf("ops = %d", s.TotalDataOps())
	}
	if s.Utilization() != 0.25 { // 2 useful ops over 2 cycles * 4 FUs
		t.Fatalf("utilization = %g", s.Utilization())
	}
	if s.OpsPerCycle() != 1.0 {
		t.Fatalf("ops/cycle = %g", s.OpsPerCycle())
	}
}
