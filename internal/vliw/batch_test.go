package vliw

import (
	"fmt"
	"math/rand"
	"testing"

	"ximd/internal/core"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

func buildVLIWDiffMachine(t *testing.T, p *Program, cfg Config) (*Machine, *mem.Shared) {
	t.Helper()
	memory := mem.NewShared(1024)
	for i := uint32(0); i < 1024; i++ {
		memory.Poke(i, isa.WordFromInt(int32(i)*5-900))
	}
	cfg.Memory = memory
	m, err := New(p, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := uint8(0); i < 12; i++ {
		m.Regs().Poke(i, isa.WordFromInt(int32(i)*11-60))
	}
	return m, memory
}

// TestVLIWBatchMatchesSequential: a Batch of random VLIW machines
// advanced in lockstep rounds must leave every machine byte-identical
// to running it alone.
func TestVLIWBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	const batchSize = 24
	progs := make([]*Program, batchSize)
	cfgs := make([]Config, batchSize)
	bms := make([]*Machine, batchSize)
	bmems := make([]*mem.Shared, batchSize)
	for i := range progs {
		if i%3 == 0 {
			progs[i] = randomVLIWProgram(r)
		} else {
			progs[i] = randomFusibleVLIWProgram(r)
		}
		if err := progs[i].Validate(); err != nil {
			t.Fatalf("machine %d: invalid program: %v", i, err)
		}
		cfgs[i] = Config{MaxCycles: 1000, TolerateConflicts: r.Intn(2) == 0}
		bms[i], bmems[i] = buildVLIWDiffMachine(t, progs[i], cfgs[i])
	}

	b := NewBatch(bms)
	for rounds := 0; b.StepRound(17) > 0; rounds++ {
		if rounds > 300 {
			t.Fatal("batch did not converge")
		}
	}
	if b.Live() != 0 {
		t.Fatalf("Live = %d after convergence", b.Live())
	}

	for i := range progs {
		sm, smem := buildVLIWDiffMachine(t, progs[i], cfgs[i])
		_, serr := sm.Run()
		assertVLIWAgree(t, fmt.Sprintf("machine %d", i), "batched", "sequential",
			b.Machine(i), bmems[i], b.Machine(i).Cycle(), b.Err(i),
			sm, smem, sm.Cycle(), serr)
	}
}

// TestVLIWBatchStepRoundAllocs is the 0-alloc guard for the batched
// VLIW path.
func TestVLIWBatchStepRoundAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	const batchSize = 8
	ms := make([]*Machine, batchSize)
	for i := range ms {
		m, err := New(allocVLIWProgram(), Config{Memory: mem.NewShared(1024), MaxCycles: 1 << 40})
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	b := NewBatch(ms)
	b.StepRound(128)
	avg := testing.AllocsPerRun(256, func() {
		if b.StepRound(64) != batchSize {
			t.Fatal("batch retired a machine unexpectedly")
		}
	})
	if avg != 0 {
		t.Fatalf("%v allocs per steady-state batch round, want 0", avg)
	}
}

// TestVLIWResetMatchesNew holds Machine.Reset to the New contract
// across programs, engines, and configs.
func TestVLIWResetMatchesNew(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	var pooled *Machine
	for iter := 0; iter < 60; iter++ {
		p := randomFusibleVLIWProgram(r)
		if err := p.Validate(); err != nil {
			t.Fatalf("iter %d: invalid program: %v", iter, err)
		}
		cfg := Config{
			MaxCycles:         1000,
			TolerateConflicts: r.Intn(2) == 0,
			Engine:            core.EngineKind(r.Intn(2)),
		}

		pmem := mem.NewShared(1024)
		for i := uint32(0); i < 1024; i++ {
			pmem.Poke(i, isa.WordFromInt(int32(i)*5-900))
		}
		pcfg := cfg
		pcfg.Memory = pmem
		if pooled == nil {
			m, err := New(p, pcfg)
			if err != nil {
				t.Fatalf("iter %d: New: %v", iter, err)
			}
			pooled = m
		} else if err := pooled.Reset(p, pcfg); err != nil {
			t.Fatalf("iter %d: Reset: %v", iter, err)
		}
		for i := uint8(0); i < 12; i++ {
			pooled.Regs().Poke(i, isa.WordFromInt(int32(i)*11-60))
		}
		_, perr := pooled.Run()

		fm, fmem := buildVLIWDiffMachine(t, p, cfg)
		_, ferr := fm.Run()
		assertVLIWAgree(t, fmt.Sprintf("iter %d", iter), "reset", "new",
			pooled, pmem, pooled.Cycle(), perr, fm, fmem, fm.Cycle(), ferr)
	}
}
