package vliw

import "fmt"

// Decoded is a validated VLIW program together with its fast-engine
// decoded-instruction table — the vliw counterpart of core.Decoded. It
// is immutable after Predecode and safe for concurrent use by any
// number of machines, which is what lets the ximdd decoded-program
// cache serve repeat submissions without re-validating or re-decoding.
type Decoded struct {
	prog *Program
	code []vop
	fuse *vfuseInfo
}

// Predecode validates prog and builds its decoded-instruction table and
// superop fusion table once. Machines constructed with Config.Decoded
// skip all three steps — a decoded-program cache hit gets fusion for
// free, with no change to the cache key.
func Predecode(prog *Program) (*Decoded, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	code := decodeVLIW(prog)
	return &Decoded{prog: prog, code: code, fuse: fuseVLIW(prog, code)}, nil
}

// Program returns the validated program the table was decoded from. The
// caller must not mutate it: the decoded table mirrors its contents.
func (d *Decoded) Program() *Program { return d.prog }

// FusibleWords reports how many instruction words begin (or continue) a
// fused superop run; see core.Decoded.FusibleWords.
func (d *Decoded) FusibleWords() int {
	if d.fuse == nil {
		return 0
	}
	n := 0
	for _, r := range d.fuse.runLen {
		if r > 0 {
			n++
		}
	}
	return n
}

// errDecodedMismatch reports a Config.Decoded built from a different
// program than the one passed to New.
func errDecodedMismatch() error {
	return fmt.Errorf("vliw: Config.Decoded was built from a different program")
}
