package vliw

import "fmt"

// Decoded is a validated VLIW program together with its fast-engine
// decoded-instruction table — the vliw counterpart of core.Decoded. It
// is immutable after Predecode and safe for concurrent use by any
// number of machines, which is what lets the ximdd decoded-program
// cache serve repeat submissions without re-validating or re-decoding.
type Decoded struct {
	prog *Program
	code []vop
}

// Predecode validates prog and builds its decoded-instruction table
// once. Machines constructed with Config.Decoded skip both steps.
func Predecode(prog *Program) (*Decoded, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &Decoded{prog: prog, code: decodeVLIW(prog)}, nil
}

// Program returns the validated program the table was decoded from. The
// caller must not mutate it: the decoded table mirrors its contents.
func (d *Decoded) Program() *Program { return d.prog }

// errDecodedMismatch reports a Config.Decoded built from a different
// program than the one passed to New.
func errDecodedMismatch() error {
	return fmt.Errorf("vliw: Config.Decoded was built from a different program")
}
