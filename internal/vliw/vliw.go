// Package vliw implements the paper's VLIW baseline — the companion
// simulator the authors call vsim (Section 4.1): "a VLIW processor with
// similar characteristics" to XIMD-1. The datapath is identical (the same
// functional units, global register file, condition codes, and idealized
// memory); the control path is the single global sequencer of Figure 4.
// Each instruction carries one data operation per functional unit and
// exactly one control operation, so only one branch can execute per cycle
// — the limitation Section 1.3 identifies and XIMD removes.
package vliw

import (
	"fmt"

	"ximd/internal/core"
	"ximd/internal/inject"
	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
)

// Instruction is one very long instruction word of the VLIW baseline: one
// data operation per functional unit plus a single sequencer operation.
// The sequencer condition may reference any functional unit's condition
// code; synchronization-signal conditions do not exist on a VLIW.
type Instruction struct {
	Ops  [isa.NumFU]isa.DataOp
	Ctrl isa.CtrlOp
}

// Program is an assembled VLIW program.
type Program struct {
	Instrs []Instruction
	NumFU  int
	Entry  isa.Addr
	Labels map[string]isa.Addr
}

// Validate checks the program's structural validity.
func (p *Program) Validate() error {
	if p.NumFU < 1 || p.NumFU > isa.NumFU {
		return fmt.Errorf("vliw: NumFU = %d, want 1..%d", p.NumFU, isa.NumFU)
	}
	if len(p.Instrs) == 0 {
		return fmt.Errorf("vliw: empty program")
	}
	if int(p.Entry) >= len(p.Instrs) {
		return fmt.Errorf("vliw: entry %d outside program", p.Entry)
	}
	for addr, in := range p.Instrs {
		for fu := 0; fu < p.NumFU; fu++ {
			if err := in.Ops[fu].Validate(); err != nil {
				return fmt.Errorf("vliw: addr %d fu %d: %w", addr, fu, err)
			}
		}
		if err := in.Ctrl.Validate(p.NumFU); err != nil {
			return fmt.Errorf("vliw: addr %d: %w", addr, err)
		}
		if in.Ctrl.Kind == isa.CtrlCond {
			switch in.Ctrl.Cond {
			case isa.CondCC, isa.CondNotCC:
			default:
				return fmt.Errorf("vliw: addr %d: condition %s requires synchronization signals, which a VLIW has none of", addr, in.Ctrl)
			}
		}
		for _, t := range in.Ctrl.Targets() {
			if int(t) >= len(p.Instrs) {
				return fmt.Errorf("vliw: addr %d: branch target %d outside program", addr, t)
			}
		}
	}
	return nil
}

// FromXIMD converts a VLIW-style XIMD program (identical control in every
// parcel, per Section 3.1) into a native VLIW program. Holes (trap
// parcels) become nops carrying the common control.
func FromXIMD(p *isa.Program) (*Program, error) {
	out := &Program{
		Instrs: make([]Instruction, len(p.Instrs)),
		NumFU:  p.NumFU,
		Entry:  p.Entry,
		Labels: p.Labels,
	}
	for addr, instr := range p.Instrs {
		lead := -1
		for fu := 0; fu < p.NumFU; fu++ {
			if !instr[fu].Trap {
				lead = fu
				break
			}
		}
		if lead < 0 {
			return nil, fmt.Errorf("vliw: address %d has no parcels", addr)
		}
		out.Instrs[addr].Ctrl = instr[lead].Ctrl
		for fu := 0; fu < p.NumFU; fu++ {
			parcel := instr[fu]
			if parcel.Trap {
				out.Instrs[addr].Ops[fu] = isa.Nop
				continue
			}
			if !parcel.Ctrl.Equal(instr[lead].Ctrl) {
				return nil, fmt.Errorf("vliw: address %d: parcels carry different control operations (%s vs %s); program is not VLIW-style",
					addr, parcel.Ctrl, instr[lead].Ctrl)
			}
			out.Instrs[addr].Ops[fu] = parcel.Data
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// ToXIMD converts a VLIW program to an XIMD program by duplicating the
// control operation into every parcel — the Section 3.1 recipe for
// executing VLIW code on an XIMD.
func (p *Program) ToXIMD() *isa.Program {
	out := &isa.Program{
		Instrs: make([]isa.Instruction, len(p.Instrs)),
		NumFU:  p.NumFU,
		Entry:  p.Entry,
		Labels: p.Labels,
	}
	for addr, in := range p.Instrs {
		for fu := 0; fu < isa.NumFU; fu++ {
			if fu >= p.NumFU {
				out.Instrs[addr][fu] = isa.TrapParcel
				continue
			}
			out.Instrs[addr][fu] = isa.Normalize(isa.Parcel{Data: in.Ops[fu], Ctrl: in.Ctrl})
		}
	}
	return out
}

// Config parameterizes a VLIW machine.
type Config struct {
	// Engine selects the execution engine (shared with the XIMD core);
	// the zero value is core.EngineFast, which pre-decodes the program at
	// New. core.EngineReference interprets instructions directly.
	Engine core.EngineKind
	// Memory is the memory model; nil selects the default shared memory.
	Memory mem.Memory
	// MaxCycles bounds the simulation; 0 selects the default.
	MaxCycles uint64
	// TolerateConflicts tolerates same-cycle write conflicts.
	TolerateConflicts bool
	// DisableFusion turns off fused superop execution (fastrun.go) on
	// the fast engine: StepN then takes the per-cycle path for every
	// cycle. The observable outcome of a run is identical either way —
	// the differential tests enforce it — so this is a debugging and
	// testing lever, not a semantic switch.
	DisableFusion bool
	// Inject, if non-nil and enabled, perturbs the datapath with the same
	// seeded campaign the XIMD core accepts. The single sequencer makes
	// the consequences architecture-defining: an injected load latency
	// stalls the whole instruction word, and a hard FU failure is an
	// immediate terminal error (wrapping core.ErrFUFailed), because every
	// word needs every FU — the paper's Section 1.3 limitation.
	Inject *inject.Injector
	// Decoded, if non-nil, supplies the program's pre-built decoded
	// instruction table (Predecode). New then skips re-validating and
	// re-decoding the program. The table must have been built from the
	// same *Program passed to New.
	Decoded *Decoded
	// Tracer, if non-nil, observes each cycle.
	Tracer Tracer
}

// DefaultMaxCycles bounds a simulation when Config.MaxCycles is zero.
const DefaultMaxCycles = 50_000_000

// Tracer observes VLIW execution. Slices in the record are reused;
// implementations must copy retained data.
type Tracer interface {
	Cycle(rec *CycleRecord)
}

// CycleRecord is one executed VLIW cycle.
type CycleRecord struct {
	Cycle uint64
	PC    isa.Addr
	CC    []bool
	Instr Instruction
	// Stalled marks a cycle the whole machine spent waiting on an
	// in-flight load (injected memory latency); Instr is zero then.
	Stalled bool
}

// Stats is the shared execution-statistics type of core.Stats: the VLIW
// baseline is the same datapath, so it accumulates the same counters
// (HaltedCycles stays zero — the single sequencer halts all FUs at once
// — and StreamHistogram is all mass at k=1, the defining contrast with
// the XIMD's variable stream count).
type Stats = core.Stats

// Machine is a VLIW processor instance.
type Machine struct {
	prog   *Program
	numFU  int
	config Config
	regs   *regfile.File
	memory mem.Memory

	pc      isa.Addr
	cc      []bool
	cycle   uint64
	done    bool
	failure error // terminal error latched by the first failing Step
	stats   Stats
	ccWrite []ccWrite
	record  CycleRecord

	// Fast-engine state (nil / unused under core.EngineReference). ccBits
	// packs the condition codes one bit per FU; the cc slice is
	// materialized from it only for tracing.
	code   []vop
	shared *mem.Shared
	ccBits uint8
	fuse   *vfuseInfo
	fuseOK bool // static preconditions for fused superop runs hold

	// Injection state (nil / zero unless Config.Inject is enabled).
	// stall counts the remaining cycles the whole machine spends waiting
	// on the slowest in-flight load of the last instruction word.
	inject    *inject.Injector
	stall     uint32
	wordStall uint32 // slowest injected load latency of the current word
}

// vop is one pre-decoded very long instruction word: the decoded data
// operation per FU plus the compiled sequencer operation, built once at
// New by the fast engine (the same decode layer as the XIMD core).
type vop struct {
	ops    [isa.NumFU]core.DecodedOp
	cond   core.CompiledCond
	t1, t2 isa.Addr
	kind   isa.CtrlKind
}

// decodeVLIW builds the flat decoded-instruction table for a validated
// program.
func decodeVLIW(p *Program) []vop {
	code := make([]vop, len(p.Instrs))
	for addr := range p.Instrs {
		in := &p.Instrs[addr]
		u := &code[addr]
		for fu := 0; fu < p.NumFU; fu++ {
			u.ops[fu] = core.DecodeDataOp(in.Ops[fu])
		}
		u.kind = in.Ctrl.Kind
		u.t1, u.t2 = in.Ctrl.T1, in.Ctrl.T2
		if in.Ctrl.Kind == isa.CtrlCond {
			u.cond = core.CompileCond(in.Ctrl, p.NumFU)
		}
	}
	return code
}

type ccWrite struct {
	fu  int
	val bool
}

// New creates a VLIW machine loaded with prog.
func New(prog *Program, cfg Config) (*Machine, error) {
	m := &Machine{}
	if err := m.bind(prog, cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset rebinds the machine to a fresh run of prog under cfg, exactly
// as if it had just been built by New, but reusing the register file,
// statistics, and scratch allocations of the previous run — the
// machine-pooling hook (see core.Machine.Reset). On error the machine
// is left unusable and must be discarded, not pooled.
func (m *Machine) Reset(prog *Program, cfg Config) error {
	return m.bind(prog, cfg)
}

// bind is the shared initialization of New and Reset.
func (m *Machine) bind(prog *Program, cfg Config) error {
	if cfg.Decoded != nil {
		if prog == nil {
			prog = cfg.Decoded.prog
		} else if prog != cfg.Decoded.prog {
			return errDecodedMismatch()
		}
	} else if err := prog.Validate(); err != nil {
		return err
	}
	if cfg.Memory == nil {
		cfg.Memory = mem.NewShared(0)
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = DefaultMaxCycles
	}
	n := prog.NumFU
	m.prog = prog
	m.numFU = n
	m.config = cfg
	if m.regs == nil {
		m.regs = regfile.New()
	} else {
		m.regs.Reset()
	}
	m.memory = cfg.Memory
	m.pc = prog.Entry
	if cap(m.cc) < n {
		m.cc = make([]bool, n)
	} else {
		m.cc = m.cc[:n]
		for i := range m.cc {
			m.cc[i] = false
		}
	}
	m.cycle = 0
	m.done = false
	m.failure = nil
	m.stats.Reset(n)
	m.ccWrite = m.ccWrite[:0]
	m.record = CycleRecord{}

	m.inject = nil
	m.stall, m.wordStall = 0, 0
	if cfg.Inject.Enabled() {
		m.inject = cfg.Inject
	}

	m.code = nil
	m.shared = nil
	m.ccBits = 0
	m.fuse = nil
	m.fuseOK = false
	if cfg.Engine == core.EngineFast {
		if cfg.Decoded != nil {
			m.code = cfg.Decoded.code
			m.fuse = cfg.Decoded.fuse
		} else {
			m.code = decodeVLIW(prog)
			m.fuse = fuseVLIW(prog, m.code)
		}
		if sh, ok := cfg.Memory.(*mem.Shared); ok {
			m.shared = sh
		}
		m.fuseOK = m.fuse != nil && !cfg.DisableFusion &&
			m.inject == nil && cfg.Tracer == nil && m.shared != nil
	}
	return nil
}

// Regs exposes the register file.
func (m *Machine) Regs() *regfile.File { return m.regs }

// Memory exposes the memory model.
func (m *Machine) Memory() mem.Memory { return m.memory }

// Cycle returns the executed cycle count.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Done reports whether the machine has halted.
func (m *Machine) Done() bool { return m.done }

// PC returns the single global program counter.
func (m *Machine) PC() isa.Addr { return m.pc }

// Stats returns a deep-copied snapshot of the accumulated statistics;
// it stays valid across further Step calls and is safe to hand to other
// goroutines.
func (m *Machine) Stats() Stats { return m.stats.Clone() }

// Err returns the terminal error latched by a failed Step, or nil.
func (m *Machine) Err() error { return m.failure }

// fail latches err so every subsequent Step or Run returns the same
// error instead of resuming execution past the failure point.
func (m *Machine) fail(err error) error {
	m.failure = err
	return err
}

// Error construction shared by the fast and reference engines so the
// text stays byte-identical. The sentinels are the core package's:
// the VLIW baseline shares the XIMD's error taxonomy.

func (m *Machine) errMaxCycles() error {
	return fmt.Errorf("vliw: cycle %d: %w", m.cycle, core.ErrMaxCycles)
}

func (m *Machine) errFUFailure(fu int) error {
	return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, core.ErrFUFailed)
}

func errRegPortDrop() error {
	return fmt.Errorf("register read ports dropped: %w", core.ErrTransient)
}

func errMemNAK(addr uint32) error {
	return fmt.Errorf("memory access to address %d not acknowledged: %w", addr, core.ErrTransient)
}

// stallCycle burns one whole-machine stall cycle: the single sequencer
// is waiting out an injected load latency, so no FU executes and no
// register or memory activity occurs. Every FU pays a stall cycle —
// the architectural contrast with the XIMD, where only the issuing
// FU's stream stalls.
func (m *Machine) stallCycle() {
	if m.config.Tracer != nil {
		if m.code != nil {
			for fu := 0; fu < m.numFU; fu++ {
				m.cc[fu] = m.ccBits&(uint8(1)<<fu) != 0
			}
		}
		m.record = CycleRecord{Cycle: m.cycle, PC: m.pc, CC: m.cc, Stalled: true}
		m.config.Tracer.Cycle(&m.record)
	}
	m.stats.Cycles++
	m.stats.StreamHistogram[1]++
	for fu := 0; fu < m.numFU; fu++ {
		m.stats.StallCycles[fu]++
	}
	m.stall--
	m.cycle++
}

// injectPreCycle runs the cycle-top injection checks common to both
// engines: a due hard FU failure is an immediate terminal error (every
// instruction word needs every FU), and a pending whole-word stall
// consumes the cycle. It reports whether the cycle was consumed and, if
// so, the Step result to return.
func (m *Machine) injectPreCycle() (consumed bool, running bool, err error) {
	if fu, ok := m.inject.FirstFailure(m.cycle); ok {
		return true, false, m.fail(m.errFUFailure(fu))
	}
	if m.stall > 0 {
		m.stallCycle()
		return true, true, nil
	}
	m.wordStall = 0
	return false, false, nil
}

// Step executes one cycle. After any error the machine is dead:
// subsequent Step calls return the same error rather than executing
// past the failure.
func (m *Machine) Step() (running bool, err error) {
	if m.code != nil {
		return m.stepFast()
	}
	if m.failure != nil {
		return false, m.failure
	}
	if m.done {
		return false, nil
	}
	if m.cycle >= m.config.MaxCycles {
		return false, m.fail(m.errMaxCycles())
	}
	if m.inject != nil {
		if consumed, running, err := m.injectPreCycle(); consumed {
			return running, err
		}
	}
	in := m.prog.Instrs[m.pc]

	m.regs.BeginCycle()
	m.memory.BeginCycle(m.cycle)
	m.ccWrite = m.ccWrite[:0]

	if m.config.Tracer != nil {
		m.record = CycleRecord{Cycle: m.cycle, PC: m.pc, CC: m.cc, Instr: in}
		m.config.Tracer.Cycle(&m.record)
	}

	for fu := 0; fu < m.numFU; fu++ {
		if err := m.execData(fu, in.Ops[fu]); err != nil {
			return false, m.fail(err)
		}
	}

	halt := false
	var next isa.Addr
	switch in.Ctrl.Kind {
	case isa.CtrlGoto:
		next = in.Ctrl.T1
	case isa.CtrlHalt:
		halt = true
	case isa.CtrlCond:
		m.stats.CondBranches++
		if isa.EvalCond(in.Ctrl, m.cc, nil, m.numFU) {
			m.stats.TakenBranches++
			next = in.Ctrl.T1
		} else {
			next = in.Ctrl.T2
		}
	}

	m.regs.Commit()
	m.memory.Commit()
	for _, w := range m.ccWrite {
		m.cc[w.fu] = w.val
	}
	m.stats.Cycles++
	m.stats.StreamHistogram[1]++ // a VLIW always runs exactly one stream
	// Per-FU op attribution happens here, at commit, not during execData:
	// a cycle that faults mid-word contributes no partial counts, so
	// every counted cycle attributes all NumFU FU-cycles (the profiler's
	// attribution invariant, shared with the XIMD core).
	for fu := 0; fu < m.numFU; fu++ {
		if in.Ops[fu].Op == isa.OpNop {
			m.stats.Nops[fu]++
		} else {
			m.stats.DataOps[fu]++
		}
	}
	m.cycle++
	if m.inject != nil {
		m.stall = m.wordStall
	}
	if halt {
		m.done = true
		return false, nil
	}
	m.pc = next
	return true, nil
}

func (m *Machine) execData(fu int, d isa.DataOp) error {
	cl := isa.ClassOf(d.Op)
	if d.Op == isa.OpNop {
		return nil
	}
	if m.inject != nil &&
		(cl.ReadsA() && d.A.Kind != isa.Imm || cl.ReadsB() && d.B.Kind != isa.Imm) &&
		m.inject.DropRegPort(m.cycle, fu) {
		return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, errRegPortDrop())
	}
	var a, b isa.Word
	var err error
	if cl.ReadsA() {
		if a, err = m.readOperand(fu, d.A); err != nil {
			return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, err)
		}
	}
	if cl.ReadsB() {
		if b, err = m.readOperand(fu, d.B); err != nil {
			return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, err)
		}
	}
	switch d.Op {
	case isa.OpLoad:
		m.stats.Loads++
		addr := uint32(a.Int() + b.Int())
		if m.inject != nil && m.inject.MemNAK(m.cycle, fu, addr) {
			return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, errMemNAK(addr))
		}
		v, err := m.memory.Load(fu, addr)
		if err != nil {
			return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, err)
		}
		if m.inject != nil {
			if mask := m.inject.FlipMask(m.cycle, fu, addr); mask != 0 {
				v ^= isa.Word(mask)
				m.stats.BitFlips++
			}
			if k := m.inject.LoadLatency(m.cycle, fu, addr); k > m.wordStall {
				m.wordStall = k
			}
		}
		return m.writeReg(fu, d.Dest, v)
	case isa.OpStore:
		m.stats.Stores++
		if m.inject != nil && m.inject.MemNAK(m.cycle, fu, uint32(b.Int())) {
			return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, errMemNAK(uint32(b.Int())))
		}
		if err := m.memory.Store(fu, uint32(b.Int()), a); err != nil {
			if _, ok := err.(*mem.ConflictError); ok && m.config.TolerateConflicts {
				m.stats.MemConflicts++
				return nil
			}
			return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, err)
		}
		return nil
	default:
		res, cc, err := isa.EvalALU(d.Op, a, b)
		if err != nil {
			return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, err)
		}
		if cl.WritesCC() {
			m.ccWrite = append(m.ccWrite, ccWrite{fu: fu, val: cc})
			return nil
		}
		if cl.WritesReg() {
			return m.writeReg(fu, d.Dest, res)
		}
		return nil
	}
}

func (m *Machine) readOperand(fu int, o isa.Operand) (isa.Word, error) {
	if o.Kind == isa.Imm {
		return o.Imm, nil
	}
	return m.regs.Read(fu, o.Reg)
}

func (m *Machine) writeReg(fu int, reg uint8, v isa.Word) error {
	if err := m.regs.Write(fu, reg, v); err != nil {
		if _, ok := err.(*regfile.WriteConflictError); ok && m.config.TolerateConflicts {
			m.stats.RegConflicts++
			m.stats.PortConflicts[fu]++
			return nil
		}
		return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, err)
	}
	return nil
}

// Run executes until halt or error, returning total cycles. It steps in
// bulk through StepN, so fused superop runs engage wherever eligible.
func (m *Machine) Run() (uint64, error) {
	for {
		running, err := m.StepN(1 << 62)
		if err != nil {
			return m.cycle, err
		}
		if !running {
			return m.cycle, nil
		}
	}
}
