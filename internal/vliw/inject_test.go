package vliw

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ximd/internal/core"
	"ximd/internal/inject"
	"ximd/internal/isa"
	"ximd/internal/mem"
)

// Fault injection on the single-sequencer machine: the fast and
// reference engines must agree under any seeded campaign, a hard FU
// failure must latch a terminal error the cycle it lands, and a load
// stall must freeze the whole instruction word.

func randomVLIWInjectConfig(r *rand.Rand) inject.Config {
	cfg := inject.Config{Seed: r.Int63()}
	for !cfg.Enabled() {
		switch r.Intn(4) {
		case 0:
		case 1:
			cfg.Latency = inject.LatencyModel{Kind: inject.LatencyFixed, Fixed: uint32(1 + r.Intn(4))}
		case 2:
			lo := uint32(r.Intn(3))
			cfg.Latency = inject.LatencyModel{
				Kind: inject.LatencyUniform, Min: lo, Max: lo + uint32(r.Intn(7)),
			}
		case 3:
			cfg.Latency = inject.LatencyModel{
				Kind: inject.LatencyBanked, BankBits: uint8(1 + r.Intn(4)),
				Hot: uint32(r.Intn(2)), Cold: uint32(2 + r.Intn(6)),
			}
		}
		if r.Intn(2) == 0 {
			cfg.Transient.RegPortDrop = float64(r.Intn(3)) * 0.004
			cfg.Transient.MemNAK = float64(r.Intn(3)) * 0.004
			cfg.Transient.BitFlip = float64(r.Intn(3)) * 0.02
		}
		if r.Intn(4) == 0 {
			cfg.FUFailures = append(cfg.FUFailures, inject.FUFailure{
				FU: r.Intn(isa.NumFU), Cycle: uint64(r.Intn(40)),
			})
		}
	}
	return cfg
}

func runVLIWInject(t *testing.T, p *Program, inj *inject.Injector, engine core.EngineKind) (*Machine, *vliwCapture, *mem.Shared, uint64, error) {
	t.Helper()
	memory := mem.NewShared(1024)
	for i := uint32(0); i < 1024; i++ {
		memory.Poke(i, isa.WordFromInt(int32(i)*5-900))
	}
	tr := &vliwCapture{}
	m, err := New(p, Config{Engine: engine, Memory: memory, MaxCycles: 500, Tracer: tr, Inject: inj})
	if err != nil {
		t.Fatalf("New(engine=%d): %v", engine, err)
	}
	for i := uint8(0); i < 12; i++ {
		m.Regs().Poke(i, isa.WordFromInt(int32(i)*11-60))
	}
	cycles, runErr := m.Run()
	return m, tr, memory, cycles, runErr
}

// TestDifferentialVLIWInjection fuzzes random programs under seeded
// injection campaigns through both engines.
func TestDifferentialVLIWInjection(t *testing.T) {
	r := rand.New(rand.NewSource(8181))
	for iter := 0; iter < 150; iter++ {
		p := randomVLIWProgram(r)
		if err := p.Validate(); err != nil {
			t.Fatalf("iter %d: invalid program: %v", iter, err)
		}
		inj, err := inject.New(randomVLIWInjectConfig(r))
		if err != nil {
			t.Fatalf("iter %d: invalid injection config: %v", iter, err)
		}
		tag := fmt.Sprintf("iter %d (inject %s)", iter, inj)
		fm, ftr, fmem, fcyc, ferr := runVLIWInject(t, p, inj, core.EngineFast)
		rm, rtr, rmem, rcyc, rerr := runVLIWInject(t, p, inj, core.EngineReference)
		if fcyc != rcyc {
			t.Fatalf("%s: cycle divergence: fast %d, reference %d", tag, fcyc, rcyc)
		}
		if errText(ferr) != errText(rerr) {
			t.Fatalf("%s: error divergence:\nfast: %s\nref:  %s", tag, errText(ferr), errText(rerr))
		}
		if !reflect.DeepEqual(fm.Stats(), rm.Stats()) {
			t.Fatalf("%s: stats divergence:\nfast: %+v\nref:  %+v", tag, fm.Stats(), rm.Stats())
		}
		if !reflect.DeepEqual(ftr.recs, rtr.recs) {
			t.Fatalf("%s: trace divergence (%d vs %d records)", tag, len(ftr.recs), len(rtr.recs))
		}
		for reg := 0; reg < isa.NumRegs; reg++ {
			if fm.Regs().Peek(uint8(reg)) != rm.Regs().Peek(uint8(reg)) {
				t.Fatalf("%s: r%d divergence", tag, reg)
			}
		}
		for a := uint32(0); a < 1024; a++ {
			if fmem.Peek(a) != rmem.Peek(a) {
				t.Fatalf("%s: M(%d) divergence", tag, a)
			}
		}
	}
}

// loopProgram is an n-iteration countdown loop with one load per pass.
func loopProgram() *Program {
	p := &Program{NumFU: 4, Instrs: make([]Instruction, 3)}
	p.Instrs[0].Ops[0] = isa.DataOp{Op: isa.OpIAdd, A: isa.I(5), B: isa.I(0), Dest: 0}
	// Prime CC2: the conditional branch reads the previous cycle's CC.
	p.Instrs[0].Ops[2] = isa.DataOp{Op: isa.OpGt, A: isa.I(5), B: isa.I(1)}
	p.Instrs[0].Ctrl = isa.Goto(1)
	p.Instrs[1].Ops[0] = isa.DataOp{Op: isa.OpISub, A: isa.R(0), B: isa.I(1), Dest: 0}
	p.Instrs[1].Ops[1] = isa.DataOp{Op: isa.OpLoad, A: isa.I(100), B: isa.I(0), Dest: 4}
	p.Instrs[1].Ops[2] = isa.DataOp{Op: isa.OpGt, A: isa.R(0), B: isa.I(1)}
	p.Instrs[1].Ctrl = isa.IfCC(2, 1, 2)
	p.Instrs[2].Ctrl = isa.Halt()
	return p
}

// TestVLIWWholeWordStall: under fixed latency k, every load freezes the
// single sequencer for k cycles, charged to every FU's stall counter —
// the architectural contrast with the XIMD's per-stream stalls.
func TestVLIWWholeWordStall(t *testing.T) {
	base, err := New(loopProgram(), Config{Memory: mem.NewShared(1024), MaxCycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	baseCycles, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	inj := inject.MustNew(inject.Config{
		Latency: inject.LatencyModel{Kind: inject.LatencyFixed, Fixed: k},
	})
	for _, engine := range []core.EngineKind{core.EngineFast, core.EngineReference} {
		m, err := New(loopProgram(), Config{Engine: engine, Memory: mem.NewShared(1024), MaxCycles: 1000, Inject: inj})
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		loads := m.Stats().Loads
		want := baseCycles + uint64(k)*loads
		if cycles != want {
			t.Fatalf("engine %d: %d cycles with %d loads at +%d, want %d (base %d)",
				engine, cycles, loads, k, want, baseCycles)
		}
		st := m.Stats()
		for fu := 0; fu < 4; fu++ {
			if st.StallCycles[fu] != uint64(k)*loads {
				t.Fatalf("engine %d: FU%d stalled %d cycles, want %d (whole-word stall)",
					engine, fu, st.StallCycles[fu], uint64(k)*loads)
			}
		}
	}
}

// TestVLIWFUFailureLatches: the VLIW needs every FU every word, so a
// hard failure latches a terminal error the cycle it lands — even on an
// FU slot the program only fills with nops.
func TestVLIWFUFailureLatches(t *testing.T) {
	inj := inject.MustNew(inject.Config{
		FUFailures: []inject.FUFailure{{FU: 3, Cycle: 4}},
	})
	for _, engine := range []core.EngineKind{core.EngineFast, core.EngineReference} {
		m, err := New(loopProgram(), Config{Engine: engine, Memory: mem.NewShared(1024), MaxCycles: 1000, Inject: inj})
		if err != nil {
			t.Fatal(err)
		}
		_, runErr := m.Run()
		if !errors.Is(runErr, core.ErrFUFailed) {
			t.Fatalf("engine %d: err = %v, want ErrFUFailed", engine, runErr)
		}
		if m.Cycle() != 4 {
			t.Fatalf("engine %d: latched at cycle %d, want 4 (the failure cycle)", engine, m.Cycle())
		}
		if want := "vliw: cycle 4, FU3:"; !strings.Contains(errText(runErr), want) {
			t.Fatalf("engine %d: err %q does not carry %q", engine, errText(runErr), want)
		}
		if !errors.Is(m.Err(), core.ErrFUFailed) {
			t.Fatalf("engine %d: failure not latched on machine", engine)
		}
	}
}

// TestVLIWSentinelWrapping: the VLIW machine reuses the core sentinel
// taxonomy, so errors.Is must match through its fmt.Errorf wrappers.
func TestVLIWSentinelWrapping(t *testing.T) {
	m, err := New(loopProgram(), Config{Memory: mem.NewShared(1024), MaxCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, runErr := m.Run(); !errors.Is(runErr, core.ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles through vliw wrapper", runErr)
	} else if errText(runErr) != "vliw: cycle 2: maximum cycle count exceeded" {
		t.Fatalf("max-cycles text changed: %q", errText(runErr))
	}

	inj := inject.MustNew(inject.Config{Transient: inject.Transient{RegPortDrop: 1}})
	m, err = New(loopProgram(), Config{Memory: mem.NewShared(1024), MaxCycles: 100, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	if _, runErr := m.Run(); !errors.Is(runErr, core.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient through vliw wrapper", runErr)
	} else if errors.Is(runErr, core.ErrFUFailed) || errors.Is(runErr, core.ErrMaxCycles) {
		t.Fatalf("transient error matches unrelated sentinels: %v", runErr)
	}
}

// TestVLIWSnapshotRestore rewinds a faulted injected run to a mid-run
// checkpoint and replays it, requiring an identical completion, on both
// engines and across them.
func TestVLIWSnapshotRestore(t *testing.T) {
	r := rand.New(rand.NewSource(9292))
	for iter := 0; iter < 40; iter++ {
		p := randomVLIWProgram(r)
		if err := p.Validate(); err != nil {
			t.Fatalf("iter %d: invalid program: %v", iter, err)
		}
		inj := inject.MustNew(randomVLIWInjectConfig(r))
		build := func(engine core.EngineKind) (*Machine, *mem.Shared) {
			memory := mem.NewShared(1024)
			for i := uint32(0); i < 1024; i++ {
				memory.Poke(i, isa.WordFromInt(int32(i)*5-900))
			}
			m, err := New(p, Config{Engine: engine, Memory: memory, MaxCycles: 500, Inject: inj})
			if err != nil {
				t.Fatalf("iter %d: New: %v", iter, err)
			}
			for i := uint8(0); i < 12; i++ {
				m.Regs().Poke(i, isa.WordFromInt(int32(i)*11-60))
			}
			return m, memory
		}
		finish := func(m *Machine, memory *mem.Shared) (uint64, string, [isa.NumRegs]isa.Word) {
			cycles, err := m.Run()
			var regs [isa.NumRegs]isa.Word
			for i := 0; i < isa.NumRegs; i++ {
				regs[i] = m.Regs().Peek(uint8(i))
			}
			return cycles, errText(err), regs
		}

		m, memory := build(core.EngineFast)
		for i := 0; i < 2+r.Intn(8); i++ {
			if running, _ := m.Step(); !running {
				break
			}
		}
		snap, err := m.Snapshot()
		if err != nil {
			t.Fatalf("iter %d: Snapshot: %v", iter, err)
		}
		c1, e1, r1 := finish(m, memory)
		if err := m.Restore(snap); err != nil {
			t.Fatalf("iter %d: Restore: %v", iter, err)
		}
		c2, e2, r2 := finish(m, memory)
		if c1 != c2 || e1 != e2 || r1 != r2 {
			t.Fatalf("iter %d: replay diverged: %d/%s vs %d/%s", iter, c1, e1, c2, e2)
		}

		other, otherMem := build(core.EngineReference)
		if err := other.Restore(snap); err != nil {
			t.Fatalf("iter %d: cross-engine Restore: %v", iter, err)
		}
		c3, e3, r3 := finish(other, otherMem)
		if c1 != c3 || e1 != e3 || r1 != r3 {
			t.Fatalf("iter %d: cross-engine replay diverged: %d/%s vs %d/%s", iter, c1, e1, c3, e3)
		}
	}
}
