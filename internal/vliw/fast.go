package vliw

import (
	"fmt"

	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
)

// This file is the VLIW fast execution engine, the single-sequencer
// analogue of the XIMD core's pre-decoded engine: instructions execute
// from the flat vop table built at New, condition codes live in a packed
// uint8 vector, and the common *mem.Shared memory is driven through its
// concrete fast paths. Every observable effect — statistics counters,
// error text, trace records, commit order — matches the reference Step
// in vliw.go exactly; the differential tests hold the two engines to
// identical outcomes. Error construction lives in the fault helpers so
// the hot loop allocates nothing in steady state.

// stepFast executes one cycle on the pre-decoded engine.
func (m *Machine) stepFast() (running bool, err error) {
	if m.failure != nil {
		return false, m.failure
	}
	if m.done {
		return false, nil
	}
	if m.cycle >= m.config.MaxCycles {
		return false, m.fail(m.errMaxCycles())
	}
	inj := m.inject
	if inj != nil {
		if consumed, running, err := m.injectPreCycle(); consumed {
			return running, err
		}
	}
	u := &m.code[m.pc]

	m.regs.BeginCycle()
	shared := m.shared
	if shared != nil {
		shared.BeginCycle(m.cycle)
	} else {
		m.memory.BeginCycle(m.cycle)
	}

	if m.config.Tracer != nil {
		for fu := 0; fu < m.numFU; fu++ {
			m.cc[fu] = m.ccBits&(uint8(1)<<fu) != 0
		}
		m.record = CycleRecord{Cycle: m.cycle, PC: m.pc, CC: m.cc, Instr: m.prog.Instrs[m.pc]}
		m.config.Tracer.Cycle(&m.record)
	}

	var ccSet, ccVal uint8
	for fu := 0; fu < m.numFU; fu++ {
		op := &u.ops[fu]
		if op.IsNop() {
			continue
		}
		if inj != nil && (op.AFromReg() || op.BFromReg()) && inj.DropRegPort(m.cycle, fu) {
			return false, m.failFU(fu, errRegPortDrop())
		}
		var a, b isa.Word
		if op.AFromReg() {
			v, rerr := m.regs.Read(fu, op.AReg)
			if rerr != nil {
				return false, m.failFU(fu, rerr)
			}
			a = v
		} else {
			a = op.AImm
		}
		if op.BFromReg() {
			v, rerr := m.regs.Read(fu, op.BReg)
			if rerr != nil {
				return false, m.failFU(fu, rerr)
			}
			b = v
		} else {
			b = op.BImm
		}
		switch op.Op {
		case isa.OpLoad:
			m.stats.Loads++
			addr := uint32(a.Int() + b.Int())
			if inj != nil && inj.MemNAK(m.cycle, fu, addr) {
				return false, m.failFU(fu, errMemNAK(addr))
			}
			var v isa.Word
			var lerr error
			if shared != nil {
				v, lerr = shared.LoadFast(fu, addr)
			} else {
				v, lerr = m.memory.Load(fu, addr)
			}
			if lerr != nil {
				return false, m.failFU(fu, lerr)
			}
			if inj != nil {
				if mask := inj.FlipMask(m.cycle, fu, addr); mask != 0 {
					v ^= isa.Word(mask)
					m.stats.BitFlips++
				}
				if k := inj.LoadLatency(m.cycle, fu, addr); k > m.wordStall {
					m.wordStall = k
				}
			}
			if werr := m.stageRegWrite(fu, op.Dest, v); werr != nil {
				return false, m.fail(werr)
			}
		case isa.OpStore:
			m.stats.Stores++
			if inj != nil && inj.MemNAK(m.cycle, fu, uint32(b.Int())) {
				return false, m.failFU(fu, errMemNAK(uint32(b.Int())))
			}
			var serr error
			if shared != nil {
				serr = shared.StoreFast(fu, uint32(b.Int()), a)
			} else {
				serr = m.memory.Store(fu, uint32(b.Int()), a)
			}
			if serr != nil {
				if serr = m.storeFault(fu, serr); serr != nil {
					return false, m.fail(serr)
				}
			}
		default:
			res, cc, aerr := isa.EvalALU(op.Op, a, b)
			if aerr != nil {
				return false, m.failFU(fu, aerr)
			}
			if op.WritesCC() {
				bit := uint8(1) << fu
				ccSet |= bit
				if cc {
					ccVal |= bit
				}
			} else if op.WritesReg() {
				if werr := m.stageRegWrite(fu, op.Dest, res); werr != nil {
					return false, m.fail(werr)
				}
			}
		}
	}

	halt := false
	var next isa.Addr
	switch u.kind {
	case isa.CtrlGoto:
		next = u.t1
	case isa.CtrlHalt:
		halt = true
	case isa.CtrlCond:
		m.stats.CondBranches++
		if u.cond.Eval(m.ccBits, 0) {
			m.stats.TakenBranches++
			next = u.t1
		} else {
			next = u.t2
		}
	}

	m.regs.Commit()
	if shared != nil {
		shared.Commit()
	} else {
		m.memory.Commit()
	}
	m.ccBits = (m.ccBits &^ ccSet) | ccVal
	m.stats.Cycles++
	m.stats.StreamHistogram[1]++ // a VLIW always runs exactly one stream
	// Commit-time attribution, matching the reference Step: a faulted
	// mid-word cycle contributes no partial per-FU counts.
	for fu := 0; fu < m.numFU; fu++ {
		if u.ops[fu].IsNop() {
			m.stats.Nops[fu]++
		} else {
			m.stats.DataOps[fu]++
		}
	}
	m.cycle++
	if inj != nil {
		m.stall = m.wordStall
	}
	if halt {
		m.done = true
		return false, nil
	}
	m.pc = next
	return true, nil
}

// stageRegWrite stages a register write, deferring failure handling to
// the cold path so the call inlines into the step loop.
func (m *Machine) stageRegWrite(fu int, reg uint8, v isa.Word) error {
	if err := m.regs.Write(fu, reg, v); err != nil {
		return m.regWriteFault(fu, err)
	}
	return nil
}

// regWriteFault resolves a failed register write: a tolerated conflict
// is counted and absorbed; anything else gains cycle/FU context.
func (m *Machine) regWriteFault(fu int, err error) error {
	if _, ok := err.(*regfile.WriteConflictError); ok && m.config.TolerateConflicts {
		m.stats.RegConflicts++
		m.stats.PortConflicts[fu]++
		return nil
	}
	return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, err)
}

// storeFault resolves a failed memory store, mirroring regWriteFault.
func (m *Machine) storeFault(fu int, err error) error {
	if _, ok := err.(*mem.ConflictError); ok && m.config.TolerateConflicts {
		m.stats.MemConflicts++
		return nil
	}
	return fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, err)
}

// failFU latches an execution fault with cycle and FU context.
func (m *Machine) failFU(fu int, err error) error {
	return m.fail(fmt.Errorf("vliw: cycle %d, FU%d: %w", m.cycle, fu, err))
}
