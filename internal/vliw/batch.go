package vliw

// Batch advances many VLIW machines through one amortized stepping loop
// — the single-sequencer counterpart of core.Batch, with the same
// struct-of-arrays status layout (compacted live-index list plus flat
// running/error state) and the same contract: each machine's outcome is
// byte-identical to running it alone, because a round is just
// StepN(chunk) per live machine.
type Batch struct {
	machines []*Machine
	active   []uint32
	running  []bool
	errs     []error
}

// NewBatch builds a batch over machines. Machines that are already done
// or failed enter the batch retired; nil entries are treated as retired
// with no error.
func NewBatch(machines []*Machine) *Batch {
	b := &Batch{
		machines: machines,
		active:   make([]uint32, 0, len(machines)),
		running:  make([]bool, len(machines)),
		errs:     make([]error, len(machines)),
	}
	for i, m := range machines {
		if m == nil {
			continue
		}
		if err := m.Err(); err != nil {
			b.errs[i] = err
			continue
		}
		if m.Done() {
			continue
		}
		b.running[i] = true
		b.active = append(b.active, uint32(i))
	}
	return b
}

// StepRound advances every live machine by up to chunk cycles — one
// lockstep round — and returns the number of machines still running.
// StepRound allocates nothing in steady state.
func (b *Batch) StepRound(chunk uint64) int {
	w := 0
	for _, idx := range b.active {
		running, err := b.machines[idx].StepN(chunk)
		if err != nil {
			b.errs[idx] = err
			b.running[idx] = false
			continue
		}
		if !running {
			b.running[idx] = false
			continue
		}
		b.active[w] = idx
		w++
	}
	b.active = b.active[:w]
	return w
}

// Run drives lockstep rounds of chunk cycles until every machine has
// halted or failed.
func (b *Batch) Run(chunk uint64) {
	for b.StepRound(chunk) > 0 {
	}
}

// Size returns the number of machines in the batch.
func (b *Batch) Size() int { return len(b.machines) }

// Live returns the number of machines still running.
func (b *Batch) Live() int { return len(b.active) }

// Machine returns machine i.
func (b *Batch) Machine(i int) *Machine { return b.machines[i] }

// Running reports whether machine i is still running.
func (b *Batch) Running(i int) bool { return b.running[i] }

// Err returns machine i's terminal error, or nil.
func (b *Batch) Err(i int) error { return b.errs[i] }
