package vliw

import (
	"reflect"
	"strings"
	"testing"

	"ximd/internal/isa"
)

// TestVLIWStatsSnapshotImmutable is the VLIW side of the slice-aliasing
// regression: a snapshot taken mid-run must not change as the machine
// keeps stepping.
func TestVLIWStatsSnapshotImmutable(t *testing.T) {
	p := vprog(t, 2, []Instruction{
		row(isa.Goto(1),
			isa.DataOp{Op: isa.OpIAdd, A: isa.I(2), B: isa.I(3), Dest: 1},
			isa.DataOp{Op: isa.OpIMult, A: isa.I(4), B: isa.I(5), Dest: 2}),
		row(isa.Goto(2),
			isa.DataOp{Op: isa.OpISub, A: isa.R(1), B: isa.R(2), Dest: 3}),
		row(isa.Halt()),
	})
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	snap := m.Stats()
	frozen := snap.Clone()
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, frozen) {
		t.Fatalf("mid-run snapshot mutated by further execution:\n got %+v\nwant %+v", snap, frozen)
	}
	final := m.Stats()
	final.DataOps[0] += 100
	if m.Stats().DataOps[0] == final.DataOps[0] {
		t.Fatal("writing a snapshot's DataOps mutated the live machine")
	}
}

// TestVLIWStreamHistogram checks the shared-stats unification: a VLIW
// run is all mass at one stream.
func TestVLIWStreamHistogram(t *testing.T) {
	p := vprog(t, 2, []Instruction{
		row(isa.Goto(1), isa.DataOp{Op: isa.OpIAdd, A: isa.I(1), B: isa.I(1), Dest: 1}),
		row(isa.Halt()),
	})
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.StreamHistogram[1] != s.Cycles {
		t.Fatalf("StreamHistogram = %v with %d cycles; VLIW must run exactly one stream", s.StreamHistogram, s.Cycles)
	}
	if got := s.MeanStreams(); got != 1.0 {
		t.Fatalf("MeanStreams = %g, want 1.0", got)
	}
}

// TestVLIWTerminalErrorLatched pins the resumability bug on the VLIW
// machine: after a failure every Step/Run returns the same error.
func TestVLIWTerminalErrorLatched(t *testing.T) {
	p := vprog(t, 1, []Instruction{
		row(isa.Goto(0), isa.DataOp{Op: isa.OpIAdd, A: isa.R(1), B: isa.I(1), Dest: 1}),
	})
	m, err := New(p, Config{MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, first := m.Run()
	if first == nil || !strings.Contains(first.Error(), "maximum cycle count") {
		t.Fatalf("err = %v, want max-cycles failure", first)
	}
	cycleAtFailure := m.Cycle()
	for i := 0; i < 3; i++ {
		running, err := m.Step()
		if running || err != first {
			t.Fatalf("Step after failure: (%v, %v), want (false, latched %v)", running, err, first)
		}
	}
	if m.Cycle() != cycleAtFailure {
		t.Fatalf("machine executed %d cycles past its failure", m.Cycle()-cycleAtFailure)
	}
	if m.Err() != first {
		t.Fatalf("Err() = %v, want %v", m.Err(), first)
	}
}
