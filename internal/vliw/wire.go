package vliw

import (
	"fmt"

	"ximd/internal/core"
	"ximd/internal/isa"
	"ximd/internal/mem"
	"ximd/internal/regfile"
	"ximd/internal/wire"
)

// Binary serialization of VLIW machine snapshots for the durable
// checkpoint format (internal/ckpt) — the single-sequencer analogue of
// core's snapshot codec, with the same contract: only in-flight
// snapshots encode (a terminal run is archived, never resumed), and
// everything that encodes restores byte-identically.

// Encode appends the snapshot to w. Snapshots of finished or faulted
// machines do not encode: the latched error value cannot round-trip.
func (s *Snapshot) Encode(w *wire.Writer) error {
	if s.done || s.failure != nil {
		return fmt.Errorf("vliw: cannot encode a terminal snapshot (done=%v, failure=%v)", s.done, s.failure)
	}
	w.U64(s.cycle)
	w.U16(uint16(s.pc))
	w.U32(uint32(len(s.cc)))
	for _, v := range s.cc {
		w.Bool(v)
	}
	core.EncodeStats(w, &s.stats)
	s.regs.Encode(w)
	if err := mem.EncodeState(w, s.memory); err != nil {
		return err
	}
	w.U32(s.stall)
	return nil
}

// DecodeSnapshot reads a snapshot written by Encode.
func DecodeSnapshot(r *wire.Reader) (*Snapshot, error) {
	s := &Snapshot{}
	s.cycle = r.U64()
	s.pc = isa.Addr(r.U16())
	n := r.Count(1)
	s.cc = make([]bool, n)
	for i := range s.cc {
		s.cc[i] = r.Bool()
	}
	s.stats = core.DecodeStats(r)
	regs, err := regfile.DecodeSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("vliw: decode snapshot: %w", err)
	}
	s.regs = regs
	memState, err := mem.DecodeState(r)
	if err != nil {
		return nil, fmt.Errorf("vliw: decode snapshot: %w", err)
	}
	s.memory = memState
	s.stall = r.U32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("vliw: decode snapshot: %w", err)
	}
	if n < 1 || n > isa.NumFU {
		return nil, fmt.Errorf("vliw: decode snapshot: %d FUs out of range", n)
	}
	return s, nil
}
