// Package device provides memory-mapped peripheral models for the
// unpredictable processor interfaces discussed in Sections 1.3 and 3.4 of
// the paper (Figure 12).
//
// The paper's Figure 12 workload reads an I/O port "until the port
// returns a non-zero, valid value"; when and in what order ports become
// ready is beyond the compiler's control. These devices reproduce that
// behaviour deterministically: readiness times come from a seeded
// generator, so every experiment is repeatable per seed while still being
// unpredictable to the scheduled code.
package device

import (
	"math/rand"

	"ximd/internal/isa"
)

// PortItem is one datum an input port will deliver.
type PortItem struct {
	ReadyCycle uint64 // first cycle at which a load returns the value
	Value      isa.Word
}

// InPort is a polled input port. A load returns 0 until the current item's
// ready cycle, then returns the (non-zero) value; the successful load
// consumes the item and the port moves to the next one. This matches the
// Figure 12 protocol, where a process polls a port until it returns a
// non-zero valid value.
//
// The port supports a single consumer: the consuming load mutates port
// state, so two functional units polling the same port in one cycle is a
// program bug (only the first load in FU order consumes).
type InPort struct {
	items []PortItem
	next  int
	polls uint64 // total loads, ready or not
}

// NewInPort creates an input port that will deliver the given items in
// order. Item values must be non-zero (zero means "not ready" on the
// wire).
func NewInPort(items []PortItem) *InPort {
	for _, it := range items {
		if it.Value == 0 {
			panic("device: InPort item value must be non-zero")
		}
	}
	cp := make([]PortItem, len(items))
	copy(cp, items)
	return &InPort{items: cp}
}

// Load implements mem.Device. Offset is ignored: the port occupies a
// single word.
func (p *InPort) Load(cycle uint64, offset uint32) isa.Word {
	p.polls++
	if p.next >= len(p.items) {
		return 0
	}
	it := p.items[p.next]
	if cycle < it.ReadyCycle {
		return 0
	}
	p.next++
	return it.Value
}

// Store implements mem.Device; writes to an input port are ignored.
func (p *InPort) Store(cycle uint64, offset uint32, v isa.Word) {}

// Polls returns how many loads the port has seen (busy-wait cost metric).
func (p *InPort) Polls() uint64 { return p.polls }

// Remaining returns how many items have not yet been consumed.
func (p *InPort) Remaining() int { return len(p.items) - p.next }

// OutPort records every word written to it along with the cycle of the
// write, modeling the Figure 12 output ports.
type OutPort struct {
	writes []OutWrite
}

// OutWrite is one recorded output-port write.
type OutWrite struct {
	Cycle uint64
	Value isa.Word
}

// NewOutPort creates an empty output port.
func NewOutPort() *OutPort { return &OutPort{} }

// Load implements mem.Device; reading an output port returns 0.
func (p *OutPort) Load(cycle uint64, offset uint32) isa.Word { return 0 }

// Store implements mem.Device.
func (p *OutPort) Store(cycle uint64, offset uint32, v isa.Word) {
	p.writes = append(p.writes, OutWrite{Cycle: cycle, Value: v})
}

// Writes returns the recorded writes in order.
func (p *OutPort) Writes() []OutWrite { return p.writes }

// Schedule generates n port items with deterministic pseudo-random ready
// times: item i becomes ready at a cycle drawn uniformly from
// [i*minGap, i*maxGap] (non-decreasing across items), with value base+i+1
// (guaranteed non-zero for any base >= 0). The same seed always yields the
// same schedule — the substitution rule for the paper's genuinely
// nondeterministic peripherals.
func Schedule(seed int64, n int, minGap, maxGap uint64, base int32) []PortItem {
	if maxGap < minGap {
		maxGap = minGap
	}
	r := rand.New(rand.NewSource(seed))
	items := make([]PortItem, n)
	var ready uint64
	for i := range items {
		gap := minGap
		if maxGap > minGap {
			gap += uint64(r.Int63n(int64(maxGap - minGap + 1)))
		}
		ready += gap
		items[i] = PortItem{ReadyCycle: ready, Value: isa.WordFromInt(base + int32(i) + 1)}
	}
	return items
}
