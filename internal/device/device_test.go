package device

import (
	"testing"

	"ximd/internal/isa"
)

func TestInPortDeliversInOrder(t *testing.T) {
	p := NewInPort([]PortItem{
		{ReadyCycle: 3, Value: isa.WordFromInt(10)},
		{ReadyCycle: 5, Value: isa.WordFromInt(20)},
	})
	if v := p.Load(0, 0); v != 0 {
		t.Fatalf("cycle 0 load = %d, want 0 (not ready)", v.Int())
	}
	if v := p.Load(2, 0); v != 0 {
		t.Fatalf("cycle 2 load = %d, want 0", v.Int())
	}
	if v := p.Load(3, 0); v.Int() != 10 {
		t.Fatalf("cycle 3 load = %d, want 10", v.Int())
	}
	// Item consumed; next item not ready until cycle 5.
	if v := p.Load(4, 0); v != 0 {
		t.Fatalf("cycle 4 load = %d, want 0", v.Int())
	}
	if v := p.Load(6, 0); v.Int() != 20 {
		t.Fatalf("cycle 6 load = %d, want 20", v.Int())
	}
	// Exhausted.
	if v := p.Load(100, 0); v != 0 {
		t.Fatalf("exhausted load = %d, want 0", v.Int())
	}
	if p.Polls() != 6 {
		t.Fatalf("polls = %d, want 6", p.Polls())
	}
	if p.Remaining() != 0 {
		t.Fatalf("remaining = %d", p.Remaining())
	}
}

func TestInPortRejectsZeroValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInPort accepted a zero item value")
		}
	}()
	NewInPort([]PortItem{{ReadyCycle: 1, Value: 0}})
}

func TestInPortIgnoresStores(t *testing.T) {
	p := NewInPort(nil)
	p.Store(0, 0, isa.WordFromInt(5)) // must not panic or change anything
	if p.Polls() != 0 {
		t.Fatal("store affected poll count")
	}
}

func TestOutPortRecordsWrites(t *testing.T) {
	p := NewOutPort()
	p.Store(4, 0, isa.WordFromInt(7))
	p.Store(9, 0, isa.WordFromInt(8))
	w := p.Writes()
	if len(w) != 2 || w[0] != (OutWrite{Cycle: 4, Value: isa.WordFromInt(7)}) ||
		w[1] != (OutWrite{Cycle: 9, Value: isa.WordFromInt(8)}) {
		t.Fatalf("writes = %+v", w)
	}
	if p.Load(0, 0) != 0 {
		t.Fatal("output port load should return 0")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(42, 10, 2, 9, 100)
	b := Schedule(42, 10, 2, 9, 100)
	if len(a) != 10 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Schedule(43, 10, 2, 9, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleProperties(t *testing.T) {
	items := Schedule(7, 50, 3, 8, 0)
	var prev uint64
	for i, it := range items {
		if it.Value.Int() != int32(i+1) {
			t.Fatalf("item %d value = %d", i, it.Value.Int())
		}
		gap := it.ReadyCycle - prev
		if gap < 3 || gap > 8 {
			t.Fatalf("item %d gap = %d, want in [3,8]", i, gap)
		}
		prev = it.ReadyCycle
	}
}

func TestScheduleDegenerateGapRange(t *testing.T) {
	items := Schedule(1, 5, 4, 2, 0) // maxGap < minGap clamps to minGap
	for i, it := range items {
		if it.ReadyCycle != uint64(4*(i+1)) {
			t.Fatalf("item %d ready = %d, want %d", i, it.ReadyCycle, 4*(i+1))
		}
	}
}
