package compiler

import (
	"fmt"

	"ximd/internal/compiler/tile"
)

// TileCandidates compiles a par-free minic source at each of the given
// functional-unit widths, returning one Figure 13 code tile per width:
// the tile's width is the resource constraint and its length the static
// code size of the resulting schedule.
func TileCandidates(src string, widths []int) ([]tile.Candidate, error) {
	var out []tile.Candidate
	for _, w := range widths {
		c, err := Compile(src, Options{Width: w})
		if err != nil {
			return nil, fmt.Errorf("width %d: %w", w, err)
		}
		if c.HasPar {
			return nil, fmt.Errorf("tile candidates require par-free threads")
		}
		out = append(out, tile.Candidate{Width: w, Length: c.Rows})
	}
	return out, nil
}
