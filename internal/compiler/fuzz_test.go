package compiler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ximd/internal/core"
	"ximd/internal/mem"
)

// Differential fuzzing: random minic programs (expression chains, bounded
// loops, conditionals) are compiled at random widths/unroll factors and
// executed; the results must match a direct Go interpretation of the
// same AST. The interpreter exercises only Parse, so a divergence
// implicates lowering, scheduling, register allocation, code generation,
// or the machine itself.

type srcGen struct {
	vars  []string
	lines []string
	r     *rand.Rand
}

func (g *srcGen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		if len(g.vars) > 0 && g.r.Intn(2) == 0 {
			return g.vars[g.r.Intn(len(g.vars))]
		}
		c := g.r.Intn(201) - 100
		if c < 0 {
			return fmt.Sprintf("(0 - %d)", -c)
		}
		return fmt.Sprintf("%d", c)
	}
	l := g.expr(depth - 1)
	rr := g.expr(depth - 1)
	switch g.r.Intn(9) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, rr)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, rr)
	case 2:
		return fmt.Sprintf("(%s * %s)", l, rr)
	case 3:
		return fmt.Sprintf("(%s & %s)", l, rr)
	case 4:
		return fmt.Sprintf("(%s | %s)", l, rr)
	case 5:
		return fmt.Sprintf("(%s ^ %s)", l, rr)
	case 6:
		return fmt.Sprintf("(%s / (%s | 1))", l, rr) // guarded: never traps
	case 7:
		return fmt.Sprintf("(%s %% (%s | 1))", l, rr)
	default:
		return fmt.Sprintf("(%s < %s)", l, rr)
	}
}

func (g *srcGen) stmt() {
	switch g.r.Intn(5) {
	case 0:
		if len(g.vars) >= 9 {
			break
		}
		name := fmt.Sprintf("v%d", len(g.vars))
		g.lines = append(g.lines, fmt.Sprintf("var %s = %s;", name, g.expr(2)))
		g.vars = append(g.vars, name)
		return
	case 1:
		if len(g.vars) > 0 {
			v := g.vars[g.r.Intn(len(g.vars))]
			g.lines = append(g.lines, fmt.Sprintf("if (%s != 0) { %s = %s; } else { %s = %s; }",
				g.expr(1), v, g.expr(2), v, g.expr(2)))
			return
		}
	case 2:
		if len(g.vars) > 0 {
			v := g.vars[g.r.Intn(len(g.vars))]
			iname := fmt.Sprintf("i%d", len(g.lines))
			g.lines = append(g.lines, fmt.Sprintf(
				"var %s; for (%s = 0; %s < %d; %s = %s + 1) { %s = %s + %s; }",
				iname, iname, iname, g.r.Intn(6), iname, iname, v, v, g.expr(1)))
			return
		}
	default:
		if len(g.vars) > 0 {
			v := g.vars[g.r.Intn(len(g.vars))]
			g.lines = append(g.lines, fmt.Sprintf("%s = %s;", v, g.expr(3)))
			return
		}
	}
	// Fall through: ensure at least one variable exists.
	name := fmt.Sprintf("v%d", len(g.vars))
	g.lines = append(g.lines, fmt.Sprintf("var %s = %s;", name, g.expr(2)))
	g.vars = append(g.vars, name)
}

// interp evaluates the generated program's AST directly.
type interp struct {
	vals map[string]int32
	out  map[int32]int32
}

func (ip *interp) exprVal(t *testing.T, e Expr) int32 {
	switch e := e.(type) {
	case *NumExpr:
		return e.Val
	case *NameExpr:
		v, ok := ip.vals[e.Name]
		if !ok {
			t.Fatalf("interp: undefined %q", e.Name)
		}
		return v
	case *UnExpr:
		x := ip.exprVal(t, e.X)
		switch e.Op {
		case "-":
			return -x
		case "~":
			return ^x
		case "!":
			if x == 0 {
				return 1
			}
			return 0
		}
	case *BinExpr:
		l := ip.exprVal(t, e.L)
		r := ip.exprVal(t, e.R)
		switch e.Op {
		case "+":
			return l + r
		case "-":
			return l - r
		case "*":
			return l * r
		case "/":
			return l / r
		case "%":
			return l % r
		case "&":
			return l & r
		case "|":
			return l | r
		case "^":
			return l ^ r
		case "<<":
			return l << (uint32(r) & 31)
		case ">>":
			return l >> (uint32(r) & 31)
		case "<":
			return b2i(l < r)
		case "<=":
			return b2i(l <= r)
		case ">":
			return b2i(l > r)
		case ">=":
			return b2i(l >= r)
		case "==":
			return b2i(l == r)
		case "!=":
			return b2i(l != r)
		case "&&":
			return b2i(l != 0 && r != 0)
		case "||":
			return b2i(l != 0 || r != 0)
		}
	}
	t.Fatalf("interp: unhandled expression %T", e)
	return 0
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func (ip *interp) block(t *testing.T, b *BlockStmt) {
	for _, s := range b.Stmts {
		ip.stmtEval(t, s)
	}
}

func (ip *interp) stmtEval(t *testing.T, s Stmt) {
	switch s := s.(type) {
	case *VarStmt:
		for i, name := range s.Names {
			var v int32
			if s.Inits[i] != nil {
				v = ip.exprVal(t, s.Inits[i])
			}
			ip.vals[name] = v
		}
	case *AssignStmt:
		ip.vals[s.Name] = ip.exprVal(t, s.Val)
	case *StoreStmt:
		if s.Name != "out" {
			t.Fatalf("interp: unexpected store to %q", s.Name)
		}
		ip.out[ip.exprVal(t, s.Index)] = ip.exprVal(t, s.Val)
	case *IfStmt:
		if ip.exprVal(t, s.Cond) != 0 {
			ip.block(t, s.Then)
		} else if s.Else != nil {
			ip.block(t, s.Else)
		}
	case *WhileStmt:
		for guard := 0; ip.exprVal(t, s.Cond) != 0; guard++ {
			if guard > 1_000_000 {
				t.Fatal("interp: runaway loop")
			}
			ip.block(t, s.Body)
		}
	case *ForStmt:
		ip.stmtEval(t, s.Init)
		for guard := 0; ip.exprVal(t, s.Cond) != 0; guard++ {
			if guard > 1_000_000 {
				t.Fatal("interp: runaway loop")
			}
			ip.block(t, s.Body)
			ip.stmtEval(t, s.Post)
		}
	default:
		t.Fatalf("interp: unhandled statement %T", s)
	}
}

func TestCompilerDifferentialFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for iter := 0; iter < 150; iter++ {
		g := &srcGen{r: r}
		nStmts := 2 + r.Intn(8)
		for i := 0; i < nStmts; i++ {
			g.stmt()
		}
		var outs []string
		for i, v := range g.vars {
			outs = append(outs, fmt.Sprintf("out[%d] = %s;", i, v))
		}
		src := fmt.Sprintf("var out[%d];\nfunc main() {\n%s\n%s\n}",
			len(g.vars), strings.Join(g.lines, "\n"), strings.Join(outs, "\n"))

		ast, err := Parse(src)
		if err != nil {
			t.Fatalf("iter %d: generated unparsable source: %v\n%s", iter, err, src)
		}
		ip := &interp{vals: map[string]int32{}, out: map[int32]int32{}}
		ip.block(t, ast.Main)

		width := []int{1, 2, 4, 8}[r.Intn(4)]
		unroll := []int{1, 2, 3}[r.Intn(3)]
		c, err := Compile(src, Options{Width: width, Unroll: unroll})
		if err != nil {
			t.Fatalf("iter %d (width %d, unroll %d): %v\nsource:\n%s", iter, width, unroll, err, src)
		}
		shared := mem.NewShared(0)
		m, err := core.New(c.Prog, core.Config{Memory: shared, MaxCycles: 1_000_000})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("iter %d (width %d, unroll %d): %v\nsource:\n%s", iter, width, unroll, err, src)
		}
		sym, _ := c.Syms.Lookup("out")
		for i := range g.vars {
			want := ip.out[int32(i)]
			if got := shared.Peek(sym.Addr + uint32(i)).Int(); got != want {
				t.Fatalf("iter %d (width %d, unroll %d): out[%d] = %d, want %d\nsource:\n%s",
					iter, width, unroll, i, got, want, src)
			}
		}
	}
}
