package compiler

import (
	"fmt"
	"sort"

	"ximd/internal/isa"
)

// Register allocation.
//
// Virtual registers fall into two classes after scheduling:
//
//   - dedicated: live across basic blocks (or captured by a par thread) —
//     each gets its own physical register for its whole function;
//   - temps: defined and used within one block — allocated by linear scan
//     over the block's schedule and reused aggressively.
//
// Functions that execute concurrently (par threads) draw from disjoint
// physical ranges; main's block-local temps may overlap thread ranges
// because main never runs concurrently with its own par threads (its
// functional units are executing the threads).
//
// Physical registers 0..15 are reserved for the host interface (workload
// inputs/outputs); the allocator uses 16..255.

// PhysBase is the first physical register available to the allocator.
const PhysBase = 16

// allocation maps each function's vregs to physical registers.
type allocation struct {
	phys map[*Func]map[VReg]uint8
}

func (al *allocation) lookup(f *Func, v VReg) (uint8, bool) {
	m, ok := al.phys[f]
	if !ok {
		return 0, false
	}
	p, ok := m[v]
	return p, ok
}

// vregClass describes where a vreg is defined and used.
type vregClass struct {
	blocks map[BlockID]bool
	defRow map[BlockID]int // first def row within block
	useRow map[BlockID]int // last use row within block
}

// classifyVRegs scans the schedules and reports, per vreg, the blocks it
// appears in and its per-block def/use rows.
func classifyVRegs(f *Func, sched map[BlockID]schedBlock) map[VReg]*vregClass {
	classes := map[VReg]*vregClass{}
	get := func(v VReg) *vregClass {
		c, ok := classes[v]
		if !ok {
			c = &vregClass{blocks: map[BlockID]bool{}, defRow: map[BlockID]int{}, useRow: map[BlockID]int{}}
			classes[v] = c
		}
		return c
	}
	touchUse := func(v VReg, b BlockID, row int) {
		if v == 0 {
			return
		}
		c := get(v)
		c.blocks[b] = true
		if r, ok := c.useRow[b]; !ok || row > r {
			c.useRow[b] = row
		}
	}
	touchDef := func(v VReg, b BlockID, row int) {
		if v == 0 {
			return
		}
		c := get(v)
		c.blocks[b] = true
		if r, ok := c.defRow[b]; !ok || row < r {
			c.defRow[b] = row
		}
	}
	for _, blk := range f.Blocks {
		sb := sched[blk.ID]
		for row, ops := range sb.Rows {
			for _, op := range ops {
				in := op.Inst
				cl := isa.ClassOf(in.Op)
				if cl.ReadsA() && !in.A.IsConst {
					touchUse(in.A.Reg, blk.ID, row)
				}
				if cl.ReadsB() && !in.B.IsConst {
					touchUse(in.B.Reg, blk.ID, row)
				}
				if cl.WritesReg() {
					touchDef(in.Dst, blk.ID, row)
				}
			}
		}
	}
	return classes
}

// allocateProgram assigns physical registers for main and every par
// thread. It returns the allocation or an out-of-registers error.
func allocateProgram(main *Func, schedules map[*Func]map[BlockID]schedBlock) (*allocation, error) {
	al := &allocation{phys: map[*Func]map[VReg]uint8{}}

	// Collect par regions to find captured vregs and thread sets.
	var regions []*ParRegion
	capturedInMain := map[VReg]bool{}
	for _, blk := range main.Blocks {
		if blk.Term.Kind == TermPar {
			regions = append(regions, blk.Term.Par)
			for _, th := range blk.Term.Par.Threads {
				for _, outer := range th.Captured {
					capturedInMain[outer] = true
				}
			}
		}
	}

	next := PhysBase
	alloc := func(f *Func, dedicated []VReg) error {
		m := al.phys[f]
		if m == nil {
			m = map[VReg]uint8{}
			al.phys[f] = m
		}
		for _, v := range dedicated {
			if next > isa.NumRegs-1 {
				return fmt.Errorf("compiler: out of registers (%d dedicated values)", next-PhysBase)
			}
			m[v] = uint8(next)
			next++
		}
		return nil
	}

	dedicatedOf := func(f *Func, extra map[VReg]bool) ([]VReg, map[VReg]*vregClass) {
		classes := classifyVRegs(f, schedules[f])
		var ded []VReg
		for v, c := range classes {
			if len(c.blocks) > 1 || extra[v] {
				ded = append(ded, v)
			}
		}
		sort.Slice(ded, func(i, j int) bool { return ded[i] < ded[j] })
		return ded, classes
	}

	mainDed, mainClasses := dedicatedOf(main, capturedInMain)
	if err := alloc(main, mainDed); err != nil {
		return nil, err
	}

	threadClasses := map[*Func]map[VReg]*vregClass{}
	for _, region := range regions {
		for _, th := range region.Threads {
			ded, classes := dedicatedOf(th, nil)
			threadClasses[th] = classes
			if err := alloc(th, ded); err != nil {
				return nil, err
			}
		}
	}
	dedicatedEnd := next

	// Temps. Main temps use the whole remaining space; each region's
	// threads partition the remaining space among themselves.
	tempSpace := isa.NumRegs - dedicatedEnd
	if tempSpace < 1 {
		return nil, fmt.Errorf("compiler: out of registers (no temp space left)")
	}
	if err := allocTemps(main, schedules[main], mainClasses, al, dedicatedEnd, isa.NumRegs-1); err != nil {
		return nil, err
	}
	for _, region := range regions {
		k := len(region.Threads)
		share := tempSpace / k
		if share < 1 {
			return nil, fmt.Errorf("compiler: out of registers partitioning temp space among %d threads", k)
		}
		for i, th := range region.Threads {
			lo := dedicatedEnd + i*share
			hi := lo + share - 1
			if err := allocTemps(th, schedules[th], threadClasses[th], al, lo, hi); err != nil {
				return nil, err
			}
		}
	}

	// Resolve captures: a thread's captured alias uses main's physical
	// register directly.
	for _, region := range regions {
		for _, th := range region.Threads {
			for alias, outer := range th.Captured {
				p, ok := al.lookup(main, outer)
				if !ok {
					return nil, fmt.Errorf("compiler: captured vreg v%d has no physical register", outer)
				}
				al.phys[th][alias] = p
			}
		}
	}
	return al, nil
}

// allocTemps linear-scans each block's single-block vregs over the
// physical range [lo, hi].
func allocTemps(f *Func, sched map[BlockID]schedBlock, classes map[VReg]*vregClass, al *allocation, lo, hi int) error {
	m := al.phys[f]
	if m == nil {
		m = map[VReg]uint8{}
		al.phys[f] = m
	}
	for _, blk := range f.Blocks {
		type interval struct {
			v        VReg
			def, use int
		}
		var ivs []interval
		for v, c := range classes {
			if len(c.blocks) != 1 || !c.blocks[blk.ID] {
				continue
			}
			if _, already := m[v]; already {
				continue // dedicated (captured) vregs were assigned earlier
			}
			def, hasDef := c.defRow[blk.ID]
			use, hasUse := c.useRow[blk.ID]
			if !hasDef {
				// Used but never defined in its only block: an
				// uninitialized value; give it the def row 0.
				def = 0
			}
			if !hasUse || use < def {
				use = def
			}
			ivs = append(ivs, interval{v: v, def: def, use: use})
		}
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].def != ivs[j].def {
				return ivs[i].def < ivs[j].def
			}
			return ivs[i].v < ivs[j].v
		})
		// Linear scan with a free list.
		type active struct {
			phys uint8
			use  int
		}
		var act []active
		var free []uint8
		nextPhys := lo
		for _, iv := range ivs {
			// Expire strictly-finished intervals.
			keep := act[:0]
			for _, a := range act {
				if a.use < iv.def {
					free = append(free, a.phys)
				} else {
					keep = append(keep, a)
				}
			}
			act = keep
			var p uint8
			if len(free) > 0 {
				p = free[len(free)-1]
				free = free[:len(free)-1]
			} else {
				if nextPhys > hi {
					return fmt.Errorf("compiler: out of temp registers in block B%d of %s (range r%d..r%d)",
						blk.ID, f.Name, lo, hi)
				}
				p = uint8(nextPhys)
				nextPhys++
			}
			m[iv.v] = p
			act = append(act, active{phys: p, use: iv.use})
		}
	}
	return nil
}
