// Package tile implements the Figure 13 compilation approach: each
// program thread is compiled several times under different resource
// constraints, producing a set of code tiles (width = functional units
// required, length = static code size); a packing algorithm then places
// one tile per thread into the instruction memory, a strip of the
// machine's full functional-unit width.
//
// The paper notes the problem "is quite similar to the problem of
// standard cell placement in VLSI CAD" and leaves the choice of placement
// algorithm open; this package provides three — a shelf
// first-fit-decreasing heuristic, a skyline best-fit heuristic, and an
// exhaustive candidate-combination search for small thread counts — plus
// a precedence-constrained variant that optimizes schedule makespan
// instead of static code size.
package tile

import (
	"fmt"
	"sort"
)

// Candidate is one compiled variant of a thread: Width functional units
// for Length static instructions.
type Candidate struct {
	Width  int
	Length int
}

// Area returns the parcel area of the candidate.
func (c Candidate) Area() int { return c.Width * c.Length }

// Thread is one program thread with its compiled candidates.
type Thread struct {
	Name       string
	Candidates []Candidate
}

// Placement locates one chosen tile in the strip.
type Placement struct {
	Thread int // index into the thread list
	Choice int // index into the thread's candidates
	FU     int // leftmost functional-unit column
	Addr   int // first instruction row
}

// Packing is a complete placement of all threads.
type Packing struct {
	Algorithm    string
	MachineWidth int
	Placements   []Placement
	// Height is the total strip height: the static code size in
	// instructions (the optimization target of Figure 13's example).
	Height int
}

// Area returns Height × MachineWidth, the occupied instruction-memory
// footprint in parcels (used and wasted).
func (p Packing) Area() int { return p.Height * p.MachineWidth }

// UsedParcels sums the areas of the placed tiles.
func (p Packing) UsedParcels(threads []Thread) int {
	total := 0
	for _, pl := range p.Placements {
		total += threads[pl.Thread].Candidates[pl.Choice].Area()
	}
	return total
}

// Utilization is UsedParcels / Area.
func (p Packing) Utilization(threads []Thread) float64 {
	if p.Area() == 0 {
		return 0
	}
	return float64(p.UsedParcels(threads)) / float64(p.Area())
}

// Validate checks that the packing places every thread exactly once,
// inside the strip, without overlap, and (when deps are non-nil)
// respecting precedence: a dependent tile must start after its
// predecessor ends. deps[i] lists the thread indices i depends on.
func (p Packing) Validate(threads []Thread, deps [][]int) error {
	if len(p.Placements) != len(threads) {
		return fmt.Errorf("tile: %d placements for %d threads", len(p.Placements), len(threads))
	}
	seen := make([]bool, len(threads))
	type rect struct{ x0, x1, y0, y1 int }
	rects := make([]rect, len(threads))
	for _, pl := range p.Placements {
		if pl.Thread < 0 || pl.Thread >= len(threads) {
			return fmt.Errorf("tile: placement references thread %d", pl.Thread)
		}
		if seen[pl.Thread] {
			return fmt.Errorf("tile: thread %d placed twice", pl.Thread)
		}
		seen[pl.Thread] = true
		th := threads[pl.Thread]
		if pl.Choice < 0 || pl.Choice >= len(th.Candidates) {
			return fmt.Errorf("tile: thread %d uses undefined candidate %d", pl.Thread, pl.Choice)
		}
		c := th.Candidates[pl.Choice]
		if pl.FU < 0 || pl.FU+c.Width > p.MachineWidth {
			return fmt.Errorf("tile: thread %d at FU %d width %d exceeds machine width %d",
				pl.Thread, pl.FU, c.Width, p.MachineWidth)
		}
		if pl.Addr < 0 || pl.Addr+c.Length > p.Height {
			return fmt.Errorf("tile: thread %d at addr %d length %d exceeds height %d",
				pl.Thread, pl.Addr, c.Length, p.Height)
		}
		rects[pl.Thread] = rect{x0: pl.FU, x1: pl.FU + c.Width, y0: pl.Addr, y1: pl.Addr + c.Length}
	}
	for i := range threads {
		if !seen[i] {
			return fmt.Errorf("tile: thread %d not placed", i)
		}
	}
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			a, b := rects[i], rects[j]
			if a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1 {
				return fmt.Errorf("tile: threads %d and %d overlap", i, j)
			}
		}
	}
	if deps != nil {
		for i, preds := range deps {
			for _, p := range preds {
				if rects[p].y1 > rects[i].y0 {
					return fmt.Errorf("tile: thread %d starts at %d before dependency %d ends at %d",
						i, rects[i].y0, p, rects[p].y1)
				}
			}
		}
	}
	return nil
}

// PackShelfFFD chooses, for each thread, the candidate with the smallest
// area (ties: widest), sorts tiles by decreasing length, and packs them
// onto shelves first-fit: a shelf is a horizontal band; each tile goes
// onto the first shelf with enough free width, else opens a new shelf.
func PackShelfFFD(threads []Thread, machineWidth int) (Packing, error) {
	choices, err := minAreaChoices(threads, machineWidth)
	if err != nil {
		return Packing{}, err
	}
	order := sortedByLength(threads, choices)

	type shelf struct {
		addr, height, usedWidth int
	}
	var shelves []shelf
	pk := Packing{Algorithm: "shelf-ffd", MachineWidth: machineWidth, Placements: make([]Placement, len(threads))}
	height := 0
	for _, ti := range order {
		c := threads[ti].Candidates[choices[ti]]
		placed := false
		for si := range shelves {
			s := &shelves[si]
			if s.usedWidth+c.Width <= machineWidth && c.Length <= s.height {
				pk.Placements[ti] = Placement{Thread: ti, Choice: choices[ti], FU: s.usedWidth, Addr: s.addr}
				s.usedWidth += c.Width
				placed = true
				break
			}
		}
		if !placed {
			shelves = append(shelves, shelf{addr: height, height: c.Length, usedWidth: c.Width})
			pk.Placements[ti] = Placement{Thread: ti, Choice: choices[ti], FU: 0, Addr: height}
			height += c.Length
		}
	}
	pk.Height = height
	return pk, nil
}

// PackSkyline places tiles by decreasing area onto a skyline, trying
// every candidate of each thread at every skyline position and keeping
// the placement that minimizes the resulting strip height (ties: least
// wasted area under the tile).
func PackSkyline(threads []Thread, machineWidth int) (Packing, error) {
	if err := checkFeasible(threads, machineWidth); err != nil {
		return Packing{}, err
	}
	// Process largest-first by the thread's minimal area.
	order := make([]int, len(threads))
	for i := range order {
		order[i] = i
	}
	minArea := func(t Thread) int {
		best := 1 << 30
		for _, c := range t.Candidates {
			if c.Width <= machineWidth && c.Area() < best {
				best = c.Area()
			}
		}
		return best
	}
	sort.SliceStable(order, func(a, b int) bool {
		return minArea(threads[order[a]]) > minArea(threads[order[b]])
	})

	sky := newSkyline(machineWidth)
	pk := Packing{Algorithm: "skyline", MachineWidth: machineWidth, Placements: make([]Placement, len(threads))}
	for _, ti := range order {
		bestHeight, bestWaste := 1<<30, 1<<30
		var best Placement
		found := false
		for ci, c := range threads[ti].Candidates {
			if c.Width > machineWidth {
				continue
			}
			fu, addr, waste := sky.bestPosition(c.Width)
			if fu < 0 {
				continue
			}
			newHeight := max(sky.height(), addr+c.Length)
			if newHeight < bestHeight || (newHeight == bestHeight && waste < bestWaste) {
				bestHeight, bestWaste = newHeight, waste
				best = Placement{Thread: ti, Choice: ci, FU: fu, Addr: addr}
				found = true
			}
		}
		if !found {
			return Packing{}, fmt.Errorf("tile: thread %d has no candidate fitting width %d", ti, machineWidth)
		}
		c := threads[ti].Candidates[best.Choice]
		sky.place(best.FU, c.Width, best.Addr+c.Length)
		pk.Placements[ti] = best
	}
	pk.Height = sky.height()
	return pk, nil
}

// MaxExhaustiveThreads bounds the exhaustive search.
const MaxExhaustiveThreads = 8

// PackExhaustive tries every combination of candidate choices (bounded
// by MaxExhaustiveThreads threads), packing each combination with the
// skyline placer over tiles sorted by decreasing area, and returns the
// minimum-height packing found.
func PackExhaustive(threads []Thread, machineWidth int) (Packing, error) {
	if len(threads) > MaxExhaustiveThreads {
		return Packing{}, fmt.Errorf("tile: exhaustive search limited to %d threads, got %d",
			MaxExhaustiveThreads, len(threads))
	}
	if err := checkFeasible(threads, machineWidth); err != nil {
		return Packing{}, err
	}
	choices := make([]int, len(threads))
	var best Packing
	bestHeight := 1 << 30
	var rec func(i int)
	rec = func(i int) {
		if i == len(threads) {
			pk, ok := packFixedChoices(threads, choices, machineWidth)
			if ok && pk.Height < bestHeight {
				bestHeight = pk.Height
				best = pk
			}
			return
		}
		for ci, c := range threads[i].Candidates {
			if c.Width > machineWidth {
				continue
			}
			choices[i] = ci
			rec(i + 1)
		}
	}
	rec(0)
	if bestHeight == 1<<30 {
		return Packing{}, fmt.Errorf("tile: no feasible packing")
	}
	best.Algorithm = "exhaustive"
	return best, nil
}

// packFixedChoices skyline-packs with the candidate of each thread fixed.
func packFixedChoices(threads []Thread, choices []int, machineWidth int) (Packing, bool) {
	order := make([]int, len(threads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca := threads[order[a]].Candidates[choices[order[a]]]
		cb := threads[order[b]].Candidates[choices[order[b]]]
		return ca.Area() > cb.Area()
	})
	sky := newSkyline(machineWidth)
	pk := Packing{MachineWidth: machineWidth, Placements: make([]Placement, len(threads))}
	for _, ti := range order {
		c := threads[ti].Candidates[choices[ti]]
		fu, addr, _ := sky.bestPosition(c.Width)
		if fu < 0 {
			return Packing{}, false
		}
		sky.place(fu, c.Width, addr+c.Length)
		pk.Placements[ti] = Placement{Thread: ti, Choice: choices[ti], FU: fu, Addr: addr}
	}
	pk.Height = sky.height()
	return pk, true
}

// PackWithDeps packs for execution time: deps[i] lists threads that must
// complete before thread i starts; each tile is placed at the lowest
// address satisfying its dependencies (list scheduling over the skyline,
// threads in topological order, ties by decreasing area). Height is the
// makespan.
func PackWithDeps(threads []Thread, machineWidth int, deps [][]int) (Packing, error) {
	if err := checkFeasible(threads, machineWidth); err != nil {
		return Packing{}, err
	}
	order, err := topoOrder(len(threads), deps)
	if err != nil {
		return Packing{}, err
	}
	sky := newSkyline(machineWidth)
	pk := Packing{Algorithm: "deps-list", MachineWidth: machineWidth, Placements: make([]Placement, len(threads))}
	end := make([]int, len(threads))
	for _, ti := range order {
		ready := 0
		for _, p := range deps[ti] {
			if end[p] > ready {
				ready = end[p]
			}
		}
		bestEnd := 1 << 30
		var best Placement
		for ci, c := range threads[ti].Candidates {
			if c.Width > machineWidth {
				continue
			}
			fu, addr := sky.positionAtOrAfter(c.Width, ready)
			if fu < 0 {
				continue
			}
			if addr+c.Length < bestEnd {
				bestEnd = addr + c.Length
				best = Placement{Thread: ti, Choice: ci, FU: fu, Addr: addr}
			}
		}
		if bestEnd == 1<<30 {
			return Packing{}, fmt.Errorf("tile: thread %d has no feasible candidate", ti)
		}
		c := threads[ti].Candidates[best.Choice]
		sky.place(best.FU, c.Width, best.Addr+c.Length)
		pk.Placements[ti] = best
		end[ti] = best.Addr + c.Length
	}
	pk.Height = sky.height()
	return pk, nil
}

func topoOrder(n int, deps [][]int) ([]int, error) {
	if deps == nil {
		deps = make([][]int, n)
	}
	if len(deps) != n {
		return nil, fmt.Errorf("tile: deps has %d entries for %d threads", len(deps), n)
	}
	state := make([]int, n) // 0 unvisited, 1 visiting, 2 done
	var order []int
	var visit func(int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("tile: dependency cycle through thread %d", i)
		case 2:
			return nil
		}
		state[i] = 1
		for _, p := range deps[i] {
			if p < 0 || p >= n {
				return fmt.Errorf("tile: dependency on undefined thread %d", p)
			}
			if err := visit(p); err != nil {
				return err
			}
		}
		state[i] = 2
		order = append(order, i)
		return nil
	}
	for i := 0; i < n; i++ {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func minAreaChoices(threads []Thread, machineWidth int) ([]int, error) {
	if err := checkFeasible(threads, machineWidth); err != nil {
		return nil, err
	}
	choices := make([]int, len(threads))
	for i, th := range threads {
		best, bestArea, bestWidth := -1, 1<<30, -1
		for ci, c := range th.Candidates {
			if c.Width > machineWidth {
				continue
			}
			if c.Area() < bestArea || (c.Area() == bestArea && c.Width > bestWidth) {
				best, bestArea, bestWidth = ci, c.Area(), c.Width
			}
		}
		choices[i] = best
	}
	return choices, nil
}

func sortedByLength(threads []Thread, choices []int) []int {
	order := make([]int, len(threads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca := threads[order[a]].Candidates[choices[order[a]]]
		cb := threads[order[b]].Candidates[choices[order[b]]]
		if ca.Length != cb.Length {
			return ca.Length > cb.Length
		}
		return ca.Width > cb.Width
	})
	return order
}

func checkFeasible(threads []Thread, machineWidth int) error {
	if machineWidth < 1 {
		return fmt.Errorf("tile: machine width %d", machineWidth)
	}
	for i, th := range threads {
		if len(th.Candidates) == 0 {
			return fmt.Errorf("tile: thread %d (%s) has no candidates", i, th.Name)
		}
		ok := false
		for _, c := range th.Candidates {
			if c.Width < 1 || c.Length < 1 {
				return fmt.Errorf("tile: thread %d has degenerate candidate %+v", i, c)
			}
			if c.Width <= machineWidth {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("tile: thread %d has no candidate within machine width %d", i, machineWidth)
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
