package tile

// skyline tracks the occupied height of every functional-unit column of
// the strip; tiles rest on the highest column they span.
type skyline struct {
	cols []int
}

func newSkyline(width int) *skyline {
	return &skyline{cols: make([]int, width)}
}

func (s *skyline) height() int {
	h := 0
	for _, c := range s.cols {
		if c > h {
			h = c
		}
	}
	return h
}

// spanTop returns the resting address for a tile of the given width at
// column fu, plus the wasted area beneath it (columns lower than the
// resting height).
func (s *skyline) spanTop(fu, width int) (addr, waste int) {
	top := 0
	for c := fu; c < fu+width; c++ {
		if s.cols[c] > top {
			top = s.cols[c]
		}
	}
	for c := fu; c < fu+width; c++ {
		waste += top - s.cols[c]
	}
	return top, waste
}

// bestPosition returns the column placing a width-wide tile at the lowest
// resting address (ties: least waste, then leftmost). Returns fu = -1
// when the tile is wider than the strip.
func (s *skyline) bestPosition(width int) (fu, addr, waste int) {
	if width > len(s.cols) {
		return -1, 0, 0
	}
	bestFU, bestAddr, bestWaste := -1, 1<<30, 1<<30
	for f := 0; f+width <= len(s.cols); f++ {
		a, w := s.spanTop(f, width)
		if a < bestAddr || (a == bestAddr && w < bestWaste) {
			bestFU, bestAddr, bestWaste = f, a, w
		}
	}
	return bestFU, bestAddr, bestWaste
}

// positionAtOrAfter returns the column placing the tile at the lowest
// address that is >= minAddr.
func (s *skyline) positionAtOrAfter(width, minAddr int) (fu, addr int) {
	if width > len(s.cols) {
		return -1, 0
	}
	bestFU, bestAddr := -1, 1<<30
	for f := 0; f+width <= len(s.cols); f++ {
		a, _ := s.spanTop(f, width)
		if a < minAddr {
			a = minAddr
		}
		if a < bestAddr {
			bestFU, bestAddr = f, a
		}
	}
	return bestFU, bestAddr
}

// place records a tile occupying [fu, fu+width) up to the given top
// address.
func (s *skyline) place(fu, width, top int) {
	for c := fu; c < fu+width; c++ {
		s.cols[c] = top
	}
}
