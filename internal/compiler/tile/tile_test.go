package tile

import (
	"math/rand"
	"testing"
)

// figure13Threads models the paper's Figure 13 scenario: six threads,
// each compiled at several widths. Narrower variants are longer
// (resource-constrained schedules stretch), mirroring real compilations.
func figure13Threads() []Thread {
	mk := func(name string, lens map[int]int) Thread {
		t := Thread{Name: name}
		for _, w := range []int{1, 2, 4, 8} {
			if l, ok := lens[w]; ok {
				t.Candidates = append(t.Candidates, Candidate{Width: w, Length: l})
			}
		}
		return t
	}
	return []Thread{
		mk("t1", map[int]int{1: 40, 2: 22, 4: 13, 8: 9}),
		mk("t2", map[int]int{1: 30, 2: 17, 4: 10, 8: 8}),
		mk("t3", map[int]int{1: 18, 2: 10, 4: 7}),
		mk("t4", map[int]int{1: 12, 2: 7, 4: 5}),
		mk("t5", map[int]int{1: 26, 2: 15, 4: 9}),
		mk("t6", map[int]int{1: 8, 2: 5}),
	}
}

func TestPackersProduceValidPackings(t *testing.T) {
	threads := figure13Threads()
	packers := []struct {
		name string
		f    func([]Thread, int) (Packing, error)
	}{
		{"shelf-ffd", PackShelfFFD},
		{"skyline", PackSkyline},
		{"exhaustive", PackExhaustive},
	}
	for _, width := range []int{4, 8} {
		for _, p := range packers {
			pk, err := p.f(threads, width)
			if err != nil {
				t.Fatalf("%s width %d: %v", p.name, width, err)
			}
			if err := pk.Validate(threads, nil); err != nil {
				t.Errorf("%s width %d: invalid packing: %v", p.name, width, err)
			}
			if pk.Height <= 0 {
				t.Errorf("%s width %d: height %d", p.name, width, pk.Height)
			}
			t.Logf("%s width %d: height=%d util=%.0f%%", p.name, width, pk.Height,
				100*pk.Utilization(threads))
		}
	}
}

func TestExhaustiveAtLeastAsGoodAsHeuristics(t *testing.T) {
	threads := figure13Threads()
	for _, width := range []int{4, 8} {
		ex, err := PackExhaustive(threads, width)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := PackShelfFFD(threads, width)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := PackSkyline(threads, width)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Height > sh.Height || ex.Height > sk.Height {
			t.Errorf("width %d: exhaustive height %d worse than shelf %d / skyline %d",
				width, ex.Height, sh.Height, sk.Height)
		}
	}
}

func TestPackingBeatsSequentialLayout(t *testing.T) {
	// Packing tiles side by side must beat laying every thread out at
	// full machine width one after the other (the naive VLIW layout).
	threads := figure13Threads()
	naive := 0
	for _, th := range threads {
		best := 1 << 30
		for _, c := range th.Candidates {
			if c.Length < best {
				best = c.Length
			}
		}
		naive += best
	}
	pk, err := PackExhaustive(threads, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pk.Height >= naive {
		t.Errorf("packed height %d not better than sequential widest layout %d", pk.Height, naive)
	}
	t.Logf("static size: sequential=%d packed=%d (%.0f%% saved)",
		naive, pk.Height, 100*(1-float64(pk.Height)/float64(naive)))
}

func TestPackWithDepsRespectsPrecedence(t *testing.T) {
	threads := figure13Threads()
	// t3 and t4 depend on t1; t6 depends on t3 and t5.
	deps := [][]int{nil, nil, {0}, {0}, nil, {2, 4}}
	pk, err := PackWithDeps(threads, 8, deps)
	if err != nil {
		t.Fatal(err)
	}
	if err := pk.Validate(threads, deps); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// And an unconstrained packing is never worse informationally: the
	// constrained makespan is at least the critical chain through the
	// shortest candidates.
	minLen := func(i int) int {
		best := 1 << 30
		for _, c := range threads[i].Candidates {
			if c.Length < best {
				best = c.Length
			}
		}
		return best
	}
	chain := minLen(0) + minLen(2) + minLen(5)
	if pk.Height < chain {
		t.Errorf("makespan %d below critical chain %d", pk.Height, chain)
	}
}

func TestPackWithDepsCycleDetected(t *testing.T) {
	threads := figure13Threads()
	deps := [][]int{{5}, nil, nil, nil, nil, {0}}
	if _, err := PackWithDeps(threads, 8, deps); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	threads := []Thread{
		{Name: "a", Candidates: []Candidate{{Width: 2, Length: 2}}},
		{Name: "b", Candidates: []Candidate{{Width: 2, Length: 2}}},
	}
	pk := Packing{
		MachineWidth: 4,
		Height:       2,
		Placements: []Placement{
			{Thread: 0, Choice: 0, FU: 0, Addr: 0},
			{Thread: 1, Choice: 0, FU: 1, Addr: 0}, // overlaps column 1
		},
	}
	if err := pk.Validate(threads, nil); err == nil {
		t.Fatal("overlap not detected")
	}
}

func TestValidateCatchesMissingAndOutOfStrip(t *testing.T) {
	threads := []Thread{{Name: "a", Candidates: []Candidate{{Width: 2, Length: 2}}}}
	bad := Packing{MachineWidth: 1, Height: 2,
		Placements: []Placement{{Thread: 0, Choice: 0, FU: 0, Addr: 0}}}
	if err := bad.Validate(threads, nil); err == nil {
		t.Fatal("tile wider than strip not detected")
	}
	missing := Packing{MachineWidth: 4, Height: 2}
	if err := missing.Validate(threads, nil); err == nil {
		t.Fatal("missing placement not detected")
	}
}

func TestInfeasibleInputs(t *testing.T) {
	tooWide := []Thread{{Name: "w", Candidates: []Candidate{{Width: 9, Length: 1}}}}
	for _, f := range []func([]Thread, int) (Packing, error){PackShelfFFD, PackSkyline, PackExhaustive} {
		if _, err := f(tooWide, 8); err == nil {
			t.Error("accepted thread wider than the machine")
		}
	}
	none := []Thread{{Name: "n"}}
	if _, err := PackSkyline(none, 8); err == nil {
		t.Error("accepted thread without candidates")
	}
}

// Property: on random instances every packer yields a valid packing and
// the exhaustive packer is the best of the three.
func TestRandomPackingProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for iter := 0; iter < 60; iter++ {
		n := 2 + r.Intn(5)
		threads := make([]Thread, n)
		for i := range threads {
			base := 4 + r.Intn(40)
			for _, w := range []int{1, 2, 4, 8} {
				if r.Intn(4) == 0 {
					continue
				}
				length := base/w + 1 + r.Intn(3)
				threads[i].Candidates = append(threads[i].Candidates,
					Candidate{Width: w, Length: length})
			}
			if len(threads[i].Candidates) == 0 {
				threads[i].Candidates = []Candidate{{Width: 1, Length: base}}
			}
		}
		hMin := 1 << 30
		for _, f := range []func([]Thread, int) (Packing, error){PackShelfFFD, PackSkyline} {
			pk, err := f(threads, 8)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if err := pk.Validate(threads, nil); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if pk.Height < hMin {
				hMin = pk.Height
			}
		}
		ex, err := PackExhaustive(threads, 8)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := ex.Validate(threads, nil); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if ex.Height > hMin {
			t.Fatalf("iter %d: exhaustive %d worse than best heuristic %d", iter, ex.Height, hMin)
		}
	}
}
