package compiler

import (
	"fmt"

	"ximd/internal/isa"
)

// lowerer translates the AST into IR.
type lowerer struct {
	syms *SymTab
	fn   *Func
	cur  *Block
	// scopes is the stack of local-name -> vreg bindings.
	scopes []map[string]VReg
	// outer is the enclosing lowerer when lowering a par thread; outer
	// locals are readable (captured) but not assignable.
	outer *lowerer
}

// Lower builds the symbol table and lowers the program AST to IR.
func Lower(prog *Program) (*Func, *SymTab, error) {
	syms := newSymTab()
	for _, g := range prog.Globals {
		size := g.Size
		arr := size > 0
		if !arr {
			size = 1
		}
		if _, err := syms.add(g.Name, size, arr); err != nil {
			return nil, nil, &SyntaxError{Line: g.Line, Msg: err.Error()}
		}
	}
	lw := &lowerer{syms: syms, fn: &Func{Name: "main"}}
	lw.cur = lw.fn.newBlock()
	lw.fn.Entry = lw.cur.ID
	lw.pushScope()
	if err := lw.blockStmt(prog.Main); err != nil {
		return nil, nil, err
	}
	lw.cur.Term = Terminator{Kind: TermHalt}
	return lw.fn, syms, nil
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]VReg{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) errf(line int, format string, args ...interface{}) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lookupLocal resolves a name in local scopes. captured reports whether
// the binding came from the enclosing function (read-only).
func (lw *lowerer) lookupLocal(name string) (v VReg, ok, captured bool) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if v, ok := lw.scopes[i][name]; ok {
			return v, true, false
		}
	}
	if lw.outer != nil {
		if ov, ok, _ := lw.outer.lookupLocal(name); ok {
			if lw.fn.Captured == nil {
				lw.fn.Captured = map[VReg]VReg{}
			}
			alias := lw.fn.newVReg()
			lw.fn.Captured[alias] = ov
			return alias, true, true
		}
	}
	return 0, false, false
}

func (lw *lowerer) emit(in Inst) {
	if in.Sym == 0 {
		in.Sym = -1 // default alias class for non-memory instructions
	}
	lw.cur.Insts = append(lw.cur.Insts, in)
}

// startBlock begins a new current block and returns it.
func (lw *lowerer) startBlock() *Block {
	b := lw.fn.newBlock()
	lw.cur = b
	return b
}

func (lw *lowerer) blockStmt(b *BlockStmt) error {
	lw.pushScope()
	defer lw.popScope()
	for _, s := range b.Stmts {
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s Stmt) error {
	switch s := s.(type) {
	case *VarStmt:
		for i, name := range s.Names {
			if _, dup := lw.scopes[len(lw.scopes)-1][name]; dup {
				return lw.errf(s.Line, "variable %q redeclared in this scope", name)
			}
			v := lw.fn.newVReg()
			var init Arg = cArg(0)
			if s.Inits[i] != nil {
				a, err := lw.value(s.Inits[i])
				if err != nil {
					return err
				}
				init = a
			}
			lw.emit(Inst{Op: isa.OpIAdd, A: init, B: cArg(0), Dst: v, Line: s.Line})
			lw.scopes[len(lw.scopes)-1][name] = v
		}
		return nil

	case *AssignStmt:
		return lw.assign(s)

	case *StoreStmt:
		sym, ok := lw.syms.Lookup(s.Name)
		if !ok {
			return lw.errf(s.Line, "undefined global %q", s.Name)
		}
		if !sym.Arr {
			return lw.errf(s.Line, "%q is a scalar, not an array", s.Name)
		}
		symID, _ := lw.syms.index(s.Name)
		idx, err := lw.value(s.Index)
		if err != nil {
			return err
		}
		val, err := lw.value(s.Val)
		if err != nil {
			return err
		}
		addr := lw.materializeAddr(sym, idx, s.Line)
		lw.emit(Inst{Op: isa.OpStore, A: val, B: addr, Sym: symID + 1, Line: s.Line})
		return nil

	case *IfStmt:
		thenB := lw.fn.newBlock()
		var elseB *Block
		joinB := lw.fn.newBlock()
		elseTarget := joinB.ID
		if s.Else != nil {
			elseB = lw.fn.newBlock()
			elseTarget = elseB.ID
		}
		if err := lw.cond(s.Cond, thenB.ID, elseTarget); err != nil {
			return err
		}
		lw.cur = thenB
		if err := lw.blockStmt(s.Then); err != nil {
			return err
		}
		lw.cur.Term = Terminator{Kind: TermJmp, Then: joinB.ID}
		if s.Else != nil {
			lw.cur = elseB
			if err := lw.blockStmt(s.Else); err != nil {
				return err
			}
			lw.cur.Term = Terminator{Kind: TermJmp, Then: joinB.ID}
		}
		lw.cur = joinB
		return nil

	case *WhileStmt:
		headB := lw.fn.newBlock()
		bodyB := lw.fn.newBlock()
		exitB := lw.fn.newBlock()
		lw.cur.Term = Terminator{Kind: TermJmp, Then: headB.ID}
		lw.cur = headB
		if err := lw.cond(s.Cond, bodyB.ID, exitB.ID); err != nil {
			return err
		}
		lw.cur = bodyB
		if err := lw.blockStmt(s.Body); err != nil {
			return err
		}
		lw.cur.Term = Terminator{Kind: TermJmp, Then: headB.ID}
		lw.cur = exitB
		return nil

	case *ForStmt:
		if err := lw.assign(s.Init); err != nil {
			return err
		}
		return lw.stmt(&WhileStmt{
			Cond: s.Cond,
			Body: &BlockStmt{Stmts: append(append([]Stmt{}, s.Body.Stmts...), s.Post)},
			Line: s.Line,
		})

	case *ParStmt:
		return lw.parStmt(s)
	}
	return fmt.Errorf("compiler: unknown statement %T", s)
}

func (lw *lowerer) assign(s *AssignStmt) error {
	// Locals shadow globals.
	if v, ok, captured := lw.lookupLocal(s.Name); ok {
		if captured {
			return lw.errf(s.Line, "cannot assign to %q: outer locals are read-only inside a thread", s.Name)
		}
		val, err := lw.value(s.Val)
		if err != nil {
			return err
		}
		lw.emit(Inst{Op: isa.OpIAdd, A: val, B: cArg(0), Dst: v, Line: s.Line})
		return nil
	}
	sym, ok := lw.syms.Lookup(s.Name)
	if !ok {
		return lw.errf(s.Line, "undefined variable %q", s.Name)
	}
	if sym.Arr {
		return lw.errf(s.Line, "array %q needs an index to assign", s.Name)
	}
	symID, _ := lw.syms.index(s.Name)
	val, err := lw.value(s.Val)
	if err != nil {
		return err
	}
	lw.emit(Inst{Op: isa.OpStore, A: val, B: cArg(int32(sym.Addr)), Sym: symID + 1, Line: s.Line})
	return nil
}

// materializeAddr produces the full word address of sym[idx] as an Arg,
// emitting an add when the index is not constant.
func (lw *lowerer) materializeAddr(sym Symbol, idx Arg, line int) Arg {
	if idx.IsConst {
		return cArg(int32(sym.Addr) + idx.Const)
	}
	t := lw.fn.newVReg()
	lw.emit(Inst{Op: isa.OpIAdd, A: idx, B: cArg(int32(sym.Addr)), Dst: t, Line: line})
	return rArg(t)
}

// value lowers an expression in data context, returning its Arg.
// Constant subexpressions fold.
func (lw *lowerer) value(e Expr) (Arg, error) {
	switch e := e.(type) {
	case *NumExpr:
		return cArg(e.Val), nil

	case *NameExpr:
		if v, ok, _ := lw.lookupLocal(e.Name); ok {
			return rArg(v), nil
		}
		sym, ok := lw.syms.Lookup(e.Name)
		if !ok {
			return Arg{}, lw.errf(e.Line, "undefined variable %q", e.Name)
		}
		if sym.Arr {
			return Arg{}, lw.errf(e.Line, "array %q needs an index", e.Name)
		}
		symID, _ := lw.syms.index(e.Name)
		t := lw.fn.newVReg()
		lw.emit(Inst{Op: isa.OpLoad, A: cArg(int32(sym.Addr)), B: cArg(0), Dst: t, Sym: symID + 1, Line: e.Line})
		return rArg(t), nil

	case *IndexExpr:
		sym, ok := lw.syms.Lookup(e.Name)
		if !ok {
			return Arg{}, lw.errf(e.Line, "undefined global %q", e.Name)
		}
		if !sym.Arr {
			return Arg{}, lw.errf(e.Line, "%q is a scalar, not an array", e.Name)
		}
		symID, _ := lw.syms.index(e.Name)
		idx, err := lw.value(e.Index)
		if err != nil {
			return Arg{}, err
		}
		t := lw.fn.newVReg()
		lw.emit(Inst{Op: isa.OpLoad, A: cArg(int32(sym.Addr)), B: idx, Dst: t, Sym: symID + 1, Line: e.Line})
		return rArg(t), nil

	case *UnExpr:
		x, err := lw.value(e.X)
		if err != nil {
			return Arg{}, err
		}
		switch e.Op {
		case "-":
			if x.IsConst {
				return cArg(-x.Const), nil
			}
			t := lw.fn.newVReg()
			lw.emit(Inst{Op: isa.OpINeg, A: x, Dst: t, Line: e.Line})
			return rArg(t), nil
		case "~":
			if x.IsConst {
				return cArg(^x.Const), nil
			}
			t := lw.fn.newVReg()
			lw.emit(Inst{Op: isa.OpNot, A: x, Dst: t, Line: e.Line})
			return rArg(t), nil
		case "!":
			// Boolean value: materialize via a diamond.
			return lw.boolValue(e)
		}
		return Arg{}, lw.errf(e.Line, "unknown unary operator %q", e.Op)

	case *BinExpr:
		if op, ok := arithOps[e.Op]; ok {
			l, err := lw.value(e.L)
			if err != nil {
				return Arg{}, err
			}
			r, err := lw.value(e.R)
			if err != nil {
				return Arg{}, err
			}
			if l.IsConst && r.IsConst {
				if folded, ok := foldArith(op, l.Const, r.Const); ok {
					return cArg(folded), nil
				}
			}
			t := lw.fn.newVReg()
			lw.emit(Inst{Op: op, A: l, B: r, Dst: t, Line: e.Line})
			return rArg(t), nil
		}
		// Comparison or logical operator in value context.
		return lw.boolValue(e)
	}
	return Arg{}, fmt.Errorf("compiler: unknown expression %T", e)
}

// boolValue materializes a condition as a 0/1 value through a diamond.
func (lw *lowerer) boolValue(e Expr) (Arg, error) {
	t := lw.fn.newVReg()
	line := exprLine(e)
	lw.emit(Inst{Op: isa.OpIAdd, A: cArg(0), B: cArg(0), Dst: t, Line: line})
	oneB := lw.fn.newBlock()
	joinB := lw.fn.newBlock()
	if err := lw.cond(e, oneB.ID, joinB.ID); err != nil {
		return Arg{}, err
	}
	lw.cur = oneB
	lw.emit(Inst{Op: isa.OpIAdd, A: cArg(1), B: cArg(0), Dst: t, Line: line})
	lw.cur.Term = Terminator{Kind: TermJmp, Then: joinB.ID}
	lw.cur = joinB
	return rArg(t), nil
}

var arithOps = map[string]isa.Opcode{
	"+": isa.OpIAdd, "-": isa.OpISub, "*": isa.OpIMult, "/": isa.OpIDiv,
	"%": isa.OpIMod, "&": isa.OpAnd, "|": isa.OpOr, "^": isa.OpXor,
	"<<": isa.OpShl, ">>": isa.OpSra,
}

var cmpOps = map[string]isa.Opcode{
	"==": isa.OpEq, "!=": isa.OpNe, "<": isa.OpLt,
	"<=": isa.OpLe, ">": isa.OpGt, ">=": isa.OpGe,
}

func foldArith(op isa.Opcode, a, b int32) (int32, bool) {
	if (op == isa.OpIDiv || op == isa.OpIMod) && b == 0 {
		return 0, false // leave the trap to run time
	}
	w, _, err := isa.EvalALU(op, isa.WordFromInt(a), isa.WordFromInt(b))
	if err != nil {
		return 0, false
	}
	return w.Int(), true
}

// cond lowers an expression in control context: the current block ends
// with a branch to thenB when the condition holds, elseB otherwise.
func (lw *lowerer) cond(e Expr, thenB, elseB BlockID) error {
	switch e := e.(type) {
	case *BinExpr:
		if op, ok := cmpOps[e.Op]; ok {
			l, err := lw.value(e.L)
			if err != nil {
				return err
			}
			r, err := lw.value(e.R)
			if err != nil {
				return err
			}
			lw.cur.Term = Terminator{Kind: TermBr, CmpOp: op, A: l, B: r, Then: thenB, Else: elseB, Line: e.Line}
			return nil
		}
		switch e.Op {
		case "&&":
			mid := lw.fn.newBlock()
			if err := lw.cond(e.L, mid.ID, elseB); err != nil {
				return err
			}
			lw.cur = mid
			return lw.cond(e.R, thenB, elseB)
		case "||":
			mid := lw.fn.newBlock()
			if err := lw.cond(e.L, thenB, mid.ID); err != nil {
				return err
			}
			lw.cur = mid
			return lw.cond(e.R, thenB, elseB)
		}
		// Arithmetic result used as a condition: compare against zero.
		v, err := lw.value(e)
		if err != nil {
			return err
		}
		lw.cur.Term = Terminator{Kind: TermBr, CmpOp: isa.OpNe, A: v, B: cArg(0), Then: thenB, Else: elseB, Line: e.Line}
		return nil

	case *UnExpr:
		if e.Op == "!" {
			return lw.cond(e.X, elseB, thenB)
		}
	}
	v, err := lw.value(e)
	if err != nil {
		return err
	}
	lw.cur.Term = Terminator{Kind: TermBr, CmpOp: isa.OpNe, A: v, B: cArg(0), Then: thenB, Else: elseB, Line: exprLine(e)}
	return nil
}

func (lw *lowerer) parStmt(s *ParStmt) error {
	if lw.outer != nil {
		return lw.errf(s.Line, "nested par is not supported")
	}
	region := &ParRegion{}
	for i, th := range s.Threads {
		tl := &lowerer{
			syms:  lw.syms,
			fn:    &Func{Name: fmt.Sprintf("thread%d", i)},
			outer: lw,
		}
		tl.cur = tl.fn.newBlock()
		tl.fn.Entry = tl.cur.ID
		tl.pushScope()
		if err := tl.blockStmt(th.Body); err != nil {
			return err
		}
		tl.cur.Term = Terminator{Kind: TermHalt}
		region.Threads = append(region.Threads, tl.fn)
		region.Widths = append(region.Widths, th.Width)
	}
	next := lw.fn.newBlock()
	lw.cur.Term = Terminator{Kind: TermPar, Par: region, Then: next.ID, Line: s.Line}
	lw.cur = next
	return nil
}

func exprLine(e Expr) int {
	switch e := e.(type) {
	case *NumExpr:
		return e.Line
	case *NameExpr:
		return e.Line
	case *IndexExpr:
		return e.Line
	case *BinExpr:
		return e.Line
	case *UnExpr:
		return e.Line
	}
	return 0
}
