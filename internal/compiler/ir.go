package compiler

import (
	"fmt"
	"strings"

	"ximd/internal/isa"
)

// VReg is a virtual register id; 0 is invalid.
type VReg int

// Arg is an instruction operand: a virtual register or a constant.
type Arg struct {
	IsConst bool
	Const   int32
	Reg     VReg
}

func cArg(v int32) Arg { return Arg{IsConst: true, Const: v} }
func rArg(r VReg) Arg  { return Arg{Reg: r} }

func (a Arg) String() string {
	if a.IsConst {
		return fmt.Sprintf("#%d", a.Const)
	}
	return fmt.Sprintf("v%d", a.Reg)
}

// Inst is one IR instruction. The IR reuses the machine opcode set over
// virtual registers, so scheduling and code generation are one-to-one:
//   - ALU classes follow isa.ClassOf,
//   - OpLoad reads M(A+B) into Dst (A and B may both be constants),
//   - OpStore writes A to M(B) (B is a fully materialized address).
//
// Sym is the alias class for memory operations: the symbol-table id of
// the global the operation touches (-1 for non-memory instructions).
// Operations on distinct symbols never alias; loads on the same symbol
// may reorder; a store orders against every same-symbol access.
type Inst struct {
	Op   isa.Opcode
	A, B Arg
	Dst  VReg
	Sym  int
	Line int
}

func (in Inst) String() string {
	cl := isa.ClassOf(in.Op)
	switch {
	case cl.WritesReg():
		return fmt.Sprintf("v%d = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	default:
		return fmt.Sprintf("%s %s, %s", in.Op, in.A, in.B)
	}
}

// BlockID names a basic block within its function.
type BlockID int

// TermKind is the kind of a block terminator.
type TermKind int

// Terminator kinds.
const (
	// TermJmp transfers unconditionally to Then.
	TermJmp TermKind = iota
	// TermBr compares A and B with CmpOp and branches to Then/Else.
	TermBr
	// TermHalt ends the function (machine halt, or thread completion
	// inside a par thread).
	TermHalt
	// TermPar forks the attached par region, then continues at Then.
	TermPar
)

// Terminator ends a basic block.
type Terminator struct {
	Kind  TermKind
	CmpOp isa.Opcode // compare opcode for TermBr
	A, B  Arg
	Then  BlockID
	Else  BlockID
	Par   *ParRegion
	Line  int
}

// ParRegion is the body of a par statement: one sub-function per thread
// plus the functional-unit width assigned to each.
type ParRegion struct {
	Threads []*Func
	Widths  []int
}

// Block is one basic block.
type Block struct {
	ID    BlockID
	Insts []Inst
	Term  Terminator
}

// Func is a compiled function body (main, or one par thread): a CFG over
// basic blocks and a virtual register space.
type Func struct {
	Name   string
	Blocks []*Block
	Entry  BlockID
	// NumVRegs is one past the highest allocated vreg.
	NumVRegs int
	// Captured maps this function's vregs to the enclosing function's
	// vregs for outer locals read inside a par thread.
	Captured map[VReg]VReg
}

func (f *Func) block(id BlockID) *Block { return f.Blocks[id] }

func (f *Func) newBlock() *Block {
	b := &Block{ID: BlockID(len(f.Blocks))}
	f.Blocks = append(f.Blocks, b)
	return b
}

func (f *Func) newVReg() VReg {
	f.NumVRegs++
	return VReg(f.NumVRegs)
}

// String renders the function's IR for debugging and golden tests.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (entry B%d)\n", f.Name, f.Entry)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "B%d:\n", blk.ID)
		for _, in := range blk.Insts {
			fmt.Fprintf(&b, "  %s\n", in)
		}
		switch blk.Term.Kind {
		case TermJmp:
			fmt.Fprintf(&b, "  jmp B%d\n", blk.Term.Then)
		case TermBr:
			fmt.Fprintf(&b, "  br %s %s, %s -> B%d B%d\n",
				blk.Term.CmpOp, blk.Term.A, blk.Term.B, blk.Term.Then, blk.Term.Else)
		case TermHalt:
			fmt.Fprintf(&b, "  halt\n")
		case TermPar:
			fmt.Fprintf(&b, "  par %d threads -> B%d\n", len(blk.Term.Par.Threads), blk.Term.Then)
		}
	}
	return b.String()
}

// Symbol is one global in the data layout.
type Symbol struct {
	Name string
	Addr uint32 // word address of the scalar or array base
	Size int32  // 1 for scalars, element count for arrays
	Arr  bool
}

// SymTab is the program's global symbol table and data layout.
type SymTab struct {
	Syms   []Symbol
	byName map[string]int
}

// DataBase is the word address where compiler-managed globals begin.
const DataBase = 0x1000

func newSymTab() *SymTab {
	return &SymTab{byName: make(map[string]int)}
}

func (st *SymTab) add(name string, size int32, arr bool) (int, error) {
	if _, dup := st.byName[name]; dup {
		return 0, fmt.Errorf("global %q redeclared", name)
	}
	addr := uint32(DataBase)
	if n := len(st.Syms); n > 0 {
		last := st.Syms[n-1]
		addr = last.Addr + uint32(last.Size)
	}
	st.Syms = append(st.Syms, Symbol{Name: name, Addr: addr, Size: size, Arr: arr})
	st.byName[name] = len(st.Syms) - 1
	return len(st.Syms) - 1, nil
}

// Lookup returns the symbol with the given name.
func (st *SymTab) Lookup(name string) (Symbol, bool) {
	i, ok := st.byName[name]
	if !ok {
		return Symbol{}, false
	}
	return st.Syms[i], true
}

func (st *SymTab) index(name string) (int, bool) {
	i, ok := st.byName[name]
	return i, ok
}
